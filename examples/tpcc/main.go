// tpcc runs the TPC-C order-entry benchmark on two equi-cost storage
// hierarchies — a classic DRAM-SSD manager and Spitfire's lazy three-tier
// configuration — and reports committed throughput and the transaction mix,
// miniaturizing the comparison of §6.7.
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/tpcc"

	spitfire "github.com/spitfire-db/spitfire"
)

const MB = 1 << 20

func run(name string, cfg spitfire.Config) {
	bm, err := spitfire.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := engine.Open(engine.Options{BM: bm})
	if err != nil {
		log.Fatal(err)
	}
	warehouses := tpcc.DefaultScale.WarehousesForBytes(8 * MB)
	w, err := tpcc.Setup(db, warehouses, tpcc.DefaultScale)
	if err != nil {
		log.Fatal(err)
	}

	const workers, opsEach = 4, 2500
	wks := make([]*tpcc.Worker, workers)
	var wg sync.WaitGroup
	for i := range wks {
		wks[i] = w.NewWorker(uint64(i) + 1)
		wg.Add(1)
		go func(wk *tpcc.Worker) {
			defer wg.Done()
			if err := wk.Run(opsEach); err != nil {
				log.Fatal(err)
			}
		}(wks[i])
	}
	wg.Wait()

	var committed, aborted int64
	var perType [5]int64
	var maxElapsed float64
	for _, wk := range wks {
		committed += wk.Committed
		aborted += wk.Aborted
		for i, n := range wk.PerType {
			perType[i] += n
		}
		if s := wk.Ctx().Clock.Seconds(); s > maxElapsed {
			maxElapsed = s
		}
	}
	fmt.Printf("%-28s %8.1f ktxn/s  (%d warehouses, %d committed, %d aborted)\n",
		name, float64(committed)/maxElapsed/1000, warehouses, committed, aborted)
	fmt.Printf("%-28s mix:", "")
	for t := tpcc.TxnNewOrder; t <= tpcc.TxnStockLevel; t++ {
		fmt.Printf(" %s=%d", t, perType[t])
	}
	fmt.Println()
}

func main() {
	fmt.Println("TPC-C on two equi-cost hierarchies (throughput in simulated time):")
	// ~ $: 4 MB DRAM  ==  1 MB DRAM + 6.7 MB NVM (Table 1 prices).
	run("DRAM-SSD (4 MB DRAM)", spitfire.Config{
		DRAMBytes: 4 * MB,
		Policy:    spitfire.Policy{Dr: 1, Dw: 1},
	})
	run("three-tier lazy (1+6.7 MB)", spitfire.Config{
		DRAMBytes: 1 * MB,
		NVMBytes:  6700 * 1024,
		Policy:    spitfire.SpitfireLazy,
	})
}
