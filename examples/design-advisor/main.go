// design-advisor answers the storage-system design question of §5.3/§6.6:
// given a cost budget and a target workload, which DRAM/NVM/SSD hierarchy
// has the best performance per dollar? It measures every candidate on the
// actual workload (a miniature grid search) and prints a ranked
// recommendation.
package main

import (
	"fmt"
	"log"

	"github.com/spitfire-db/spitfire/internal/design"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/ycsb"

	spitfire "github.com/spitfire-db/spitfire"
)

const MB = 1 << 20

// measure loads a fresh YCSB-BA database on the hierarchy and returns
// steady-state throughput (ops per simulated second).
func measure(h design.Hierarchy) float64 {
	cfg := spitfire.Config{
		DRAMBytes: int64(h.DRAMGB * MB), // paper-GB -> simulated MB
		NVMBytes:  int64(h.NVMGB * MB),
		Policy:    spitfire.SpitfireLazy,
	}
	bm, err := spitfire.New(cfg)
	if err != nil {
		return 0 // bufferless candidates are infeasible
	}
	db, err := engine.Open(engine.Options{BM: bm})
	if err != nil {
		log.Fatal(err)
	}
	w, err := ycsb.Setup(db, ycsb.RecordsForBytes(24*MB), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	wk := w.NewWorker(11)
	if err := wk.Run(ycsb.Balanced, 2000); err != nil { // warm-up
		log.Fatal(err)
	}
	start, ops0 := wk.Ctx().Clock.Now(), wk.Committed
	if err := wk.Run(ycsb.Balanced, 4000); err != nil {
		log.Fatal(err)
	}
	elapsed := float64(wk.Ctx().Clock.Now()-start) / 1e9
	return float64(wk.Committed-ops0) / elapsed
}

func main() {
	// A reduced grid (the full Figure 14 grid lives in spitfire-bench).
	var candidates []design.Hierarchy
	for _, d := range []float64{0, 4, 8} {
		for _, n := range []float64{0, 20, 40} {
			if d == 0 && n == 0 {
				continue
			}
			candidates = append(candidates, design.Hierarchy{DRAMGB: d, NVMGB: n, SSDGB: 200})
		}
	}

	fmt.Println("Measuring candidate hierarchies on YCSB-BA (skew 0.5, 24 GB database)...")
	results := design.Search(candidates, measure)

	fmt.Printf("\n%-28s %10s %8s %12s\n", "hierarchy (paper-GB)", "kops/s", "cost $", "ops/s/$")
	for _, r := range results {
		fmt.Printf("%-28s %10.1f %8.0f %12.1f\n",
			r.Hierarchy, r.Throughput/1000, r.Cost, r.PerfPrice)
	}

	if best, ok := design.Best(results, 0); ok {
		fmt.Printf("\nunconstrained pick: %s (%.1f ops/s/$)\n", best.Hierarchy, best.PerfPrice)
	}
	if best, ok := design.Best(results, 700); ok {
		fmt.Printf("within a $700 budget: %s ($%.0f)\n", best.Hierarchy, best.Cost)
	}
}
