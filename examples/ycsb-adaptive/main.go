// ycsb-adaptive runs the paper's §6.4 scenario as a program: a YCSB
// workload starts under the eager migration policy and the
// simulated-annealing tuner adapts ⟨D, N⟩ epoch by epoch, converging
// toward the lazy policy without manual tuning.
package main

import (
	"fmt"
	"log"

	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/ycsb"

	spitfire "github.com/spitfire-db/spitfire"
)

func main() {
	const MB = 1 << 20

	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 2 * MB,
		NVMBytes:  10 * MB,
		Policy:    spitfire.SpitfireEager, // deliberately start eager
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := engine.Open(engine.Options{BM: bm})
	if err != nil {
		log.Fatal(err)
	}
	w, err := ycsb.Setup(db, ycsb.RecordsForBytes(16*MB), ycsb.DefaultTheta)
	if err != nil {
		log.Fatal(err)
	}

	tuner := spitfire.NewTuner(spitfire.TunerOptions{
		Initial:   spitfire.SpitfireEager,
		LockstepD: true,
		LockstepN: true,
		Seed:      7,
	})

	const (
		epochs      = 40
		opsPerEpoch = 4000
	)
	worker := w.NewWorker(1)
	cand := tuner.Propose()
	fmt.Println("epoch  policy                     kops/s")
	for ep := 0; ep < epochs; ep++ {
		if err := bm.SetPolicy(cand); err != nil {
			log.Fatal(err)
		}
		start := worker.Ctx().Clock.Now()
		startOps := worker.Committed
		if err := worker.Run(ycsb.ReadOnly, opsPerEpoch); err != nil {
			log.Fatal(err)
		}
		elapsed := float64(worker.Ctx().Clock.Now()-start) / 1e9
		tput := float64(worker.Committed-startOps) / elapsed
		if ep%4 == 0 || ep == epochs-1 {
			fmt.Printf("%5d  %-25s  %8.1f\n", ep, cand, tput/1000)
		}
		cand = tuner.Observe(tput)
	}
	best := tuner.Best()
	fmt.Printf("\nconverged toward %v (the paper's lazy optimum is ⟨D≈0.01, N lazy⟩)\n", best)
}
