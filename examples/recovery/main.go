// recovery demonstrates the paper's §5.2 durability story end to end:
// a database commits transactions whose durability rests only on the NVM
// log buffer and NVM-resident pages (no synchronous SSD writes), the
// machine "crashes", and recovery rebuilds the mapping table from the
// self-identifying NVM frames, completes the log, and runs
// analysis/redo/undo — after which exactly the committed state is visible.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/spitfire-db/spitfire/internal/engine"

	spitfire "github.com/spitfire-db/spitfire"
)

const (
	tableID   = 1
	tupleSize = 64
)

func payload(v uint64) []byte {
	p := make([]byte, tupleSize)
	binary.LittleEndian.PutUint64(p, v)
	return p
}

func value(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func main() {
	// Crash-tracked NVM arenas: writes are volatile until clwb+sfence.
	dataArena := spitfire.NewPMem(spitfire.PMemOptions{
		Size: 64 * (spitfire.PageSize + 64), TrackCrashes: true,
	})
	logArena := spitfire.NewPMem(spitfire.PMemOptions{
		Size: 1 << 18, TrackCrashes: true,
	})
	disk := spitfire.NewMemSSD(nil)
	logStore := spitfire.NewMemLog(nil)

	cfg := spitfire.Config{
		DRAMBytes: 8 * spitfire.PageSize,
		NVMBytes:  dataArena.Size(),
		Policy:    spitfire.SpitfireLazy,
		PMem:      dataArena,
		SSD:       disk,
	}
	bm, err := spitfire.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wal, err := spitfire.NewWAL(spitfire.WALOptions{Buffer: logArena, Store: logStore})
	if err != nil {
		log.Fatal(err)
	}
	db, err := spitfire.OpenDB(spitfire.DBOptions{BM: bm, WAL: wal})
	if err != nil {
		log.Fatal(err)
	}
	tb, err := db.CreateTable(tableID, "accounts", tupleSize)
	if err != nil {
		log.Fatal(err)
	}
	ctx := spitfire.NewCtx(1)

	// 100 accounts with balance 1000 each.
	if err := tb.Load(ctx, 100, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, 1000)
		return i
	}); err != nil {
		log.Fatal(err)
	}

	// Committed transfer: account 1 -> account 2, 250 units.
	xfer := db.Begin()
	buf := make([]byte, tupleSize)
	must(tb.Read(ctx, xfer, 1, buf))
	must(tb.Update(ctx, xfer, 1, payload(value(buf)-250)))
	must(tb.Read(ctx, xfer, 2, buf))
	must(tb.Update(ctx, xfer, 2, payload(value(buf)+250)))
	must(xfer.Commit(ctx))
	fmt.Println("committed: transfer of 250 from account 1 to account 2")

	// In-flight transfer that will NOT survive: account 3 -> 4.
	loser := db.Begin()
	must(tb.Read(ctx, loser, 3, buf))
	must(tb.Update(ctx, loser, 3, payload(value(buf)-999)))
	fmt.Println("in flight:  uncommitted withdrawal of 999 from account 3")

	// CRASH. Unpersisted stores in both arenas are lost.
	dataArena.Crash()
	logArena.Crash()
	fmt.Println("\n*** power failure ***")

	// Recovery: rebuild the buffer manager from the surviving arena, then
	// complete the log and run analysis/redo/undo.
	bm2, err := spitfire.Recover(spitfire.Config{
		DRAMBytes: cfg.DRAMBytes,
		NVMBytes:  cfg.NVMBytes,
		Policy:    cfg.Policy,
		PMem:      dataArena,
		SSD:       disk,
	})
	if err != nil {
		log.Fatal(err)
	}
	rctx := engine.NewRecoveryCtx()
	db2, rl, err := spitfire.RecoverDB(rctx, spitfire.RecoverOptions{
		BM:     bm2,
		WAL:    spitfire.WALOptions{Buffer: logArena, Store: logStore},
		Schema: []spitfire.TableDef{{ID: tableID, Name: "accounts", TupleSize: tupleSize}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d NVM pages rescanned, %d committed txns, %d losers rolled back\n\n",
		bm2.Stats().RecoveredNVMPages, len(rl.Committed), len(rl.Losers))

	check := db2.Begin()
	total := uint64(0)
	for _, acct := range []uint64{1, 2, 3, 4} {
		must(db2.Table(tableID).Read(rctx, check, acct, buf))
		fmt.Printf("account %d balance: %d\n", acct, value(buf))
		total += value(buf)
	}
	must(check.Commit(rctx))
	if total != 4000 {
		log.Fatalf("money not conserved: total = %d", total)
	}
	fmt.Println("\nmoney conserved; committed transfer durable; loser rolled back ✔")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
