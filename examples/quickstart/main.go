// Quickstart: build a three-tier buffer manager, watch pages migrate
// between DRAM, NVM and SSD under the lazy policy, and read the traffic
// statistics — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/spitfire-db/spitfire/internal/core"

	spitfire "github.com/spitfire-db/spitfire"
)

func main() {
	// A small hierarchy: 8 pages of DRAM, 32 pages of NVM, unbounded SSD.
	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 8 * spitfire.PageSize,
		NVMBytes:  32 * (spitfire.PageSize + 64), // +64: NVM frame headers
		Policy:    spitfire.SpitfireLazy,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := spitfire.NewCtx(42)

	// Create pages and write to them. Under the lazy policy (Dw = 0.01)
	// almost all of them are created directly on NVM, where writes are
	// immediately persistent.
	var pids []spitfire.PageID
	for i := 0; i < 64; i++ {
		pid, h, err := bm.NewPage(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.WriteAt(ctx, 0, fmt.Appendf(nil, "page %d payload", pid)); err != nil {
			log.Fatal(err)
		}
		h.Release()
		pids = append(pids, pid)
	}

	// Read everything back. 64 pages don't fit in 32 NVM frames, so the
	// buffer manager has been evicting cold pages to SSD; hot ones are
	// served from NVM in place, and the very hottest migrate up to DRAM
	// with probability Dr = 0.01 per access.
	buf := make([]byte, 32)
	tiers := map[spitfire.Tier]int{}
	for round := 0; round < 20; round++ {
		for _, pid := range pids[:16] { // a hot subset
			h, err := bm.FetchPage(ctx, pid, spitfire.ReadIntent)
			if err != nil {
				log.Fatal(err)
			}
			if err := h.ReadAt(ctx, 0, buf); err != nil {
				log.Fatal(err)
			}
			tiers[h.Tier()]++
			h.Release()
		}
	}

	st := bm.Stats()
	fmt.Println("Where the hot reads were served:")
	for _, tier := range []spitfire.Tier{spitfire.TierDRAM, spitfire.TierNVM} {
		fmt.Printf("  %-10s %4d\n", tier, tiers[tier])
	}
	fmt.Println("\nData-flow paths taken (Figure 3 of the paper):")
	fmt.Printf("  NVM→DRAM migrations: %d\n", st.NVMToDRAM)
	fmt.Printf("  SSD→NVM fetches:     %d\n", st.SSDToNVM)
	fmt.Printf("  SSD→DRAM fetches:    %d\n", st.SSDToDRAM)
	fmt.Printf("  DRAM→NVM evictions:  %d\n", st.DRAMToNVM)
	fmt.Printf("  NVM→SSD evictions:   %d\n", st.NVMToSSD)
	fmt.Printf("  inclusivity ratio:   %.3f\n", bm.Inclusivity())
	fmt.Printf("\nSimulated time elapsed: %.3f ms\n", float64(ctx.Clock.Now())/1e6)

	// The same API drives two-tier hierarchies: omit NVMBytes for a
	// classic DRAM-SSD manager, or DRAMBytes for NVM-SSD.
	flat, err := spitfire.New(spitfire.Config{
		DRAMBytes: 8 * spitfire.PageSize,
		Policy:    spitfire.Policy{Dr: 1, Dw: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = flat
	fmt.Println("\n(also built a DRAM-SSD manager with the same API)")

	// Interface check: the facade re-exports the core types.
	var _ *core.BufferManager = bm
}
