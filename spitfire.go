// Package spitfire is a Go implementation of Spitfire, the multi-threaded
// three-tier buffer manager for volatile and non-volatile memory of
// Zhou, Arulraj, Pavlo and Cohen (SIGMOD 2021), together with every
// substrate its evaluation depends on: calibrated device simulators for
// DRAM, Optane DC PMMs and SSD; a probabilistic data-migration policy
// ⟨Dr, Dw, Nr, Nw⟩ with HyMem's admission queue, cache-line-grained loading
// and mini pages; a simulated-annealing policy tuner; NVM-aware write-ahead
// logging and recovery; MVTO transactions; a latch-free-read B+Tree; and
// the YCSB and TPC-C workloads.
//
// The quickest way in:
//
//	bm, err := spitfire.New(spitfire.Config{
//		DRAMBytes: 64 << 20,
//		NVMBytes:  256 << 20,
//		Policy:    spitfire.SpitfireLazy,
//	})
//	ctx := spitfire.NewCtx(1)
//	pid, h, _ := bm.NewPage(ctx)
//	h.WriteAt(ctx, 0, []byte("hello"))
//	h.Release()
//
// Time in this package is *simulated*: device accesses charge calibrated
// nanosecond costs (Table 1 of the paper) to per-worker virtual clocks, so
// measured throughput reflects the modeled storage hierarchy rather than
// the host machine. See DESIGN.md for the calibration and substitution
// notes, and cmd/spitfire-bench for the reproduced evaluation.
package spitfire

import (
	"runtime"

	"github.com/spitfire-db/spitfire/internal/anneal"
	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/vclock"
	"github.com/spitfire-db/spitfire/internal/wal"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// PageSize is the database page size (16 KB).
const PageSize = core.PageSize

// Buffer manager core.
type (
	// BufferManager is the three-tier buffer manager (§5 of the paper).
	BufferManager = core.BufferManager
	// Config configures a BufferManager.
	Config = core.Config
	// Ctx carries a worker's virtual clock and PRNG through operations.
	Ctx = core.Ctx
	// Handle is a pinned reference to a buffered page.
	Handle = core.Handle
	// PageID identifies a logical page.
	PageID = core.PageID
	// Intent declares whether a fetch will read or write.
	Intent = core.Intent
	// Tier reports where a pinned copy resides.
	Tier = core.Tier
	// Stats snapshots buffer-manager counters.
	Stats = core.Stats
	// MemCharger prices DRAM-buffer traffic (used by memory-mode setups).
	MemCharger = core.MemCharger
	// CleanerConfig tunes the background page cleaner (watermarks, batch
	// size, poll interval). New and Recover enable the cleaner by default;
	// set CleanerConfig.Disable for paper-fidelity simulated-time runs.
	CleanerConfig = core.CleanerConfig
)

// Fetch intents and tiers.
const (
	ReadIntent  = core.ReadIntent
	WriteIntent = core.WriteIntent

	TierDRAM = core.TierDRAM
	TierMini = core.TierMini
	TierNVM  = core.TierNVM
)

// New creates a buffer manager. Unlike core.New, the facade applies the
// production posture: the background page cleaner is enabled by default
// (set Config.Cleaner.Disable to keep the paper's inline-eviction behavior)
// and the buffer pools are sharded RecommendedShards() ways (set
// Config.Shards = 1 explicitly for single-shard determinism-sensitive
// runs). Call BufferManager.Close to stop the cleaner goroutines when done.
func New(cfg Config) (*BufferManager, error) {
	defaultCleanerOn(&cfg)
	defaultShards(&cfg)
	return core.New(cfg)
}

// Recover rebuilds a buffer manager over a surviving NVM arena (§5.2). The
// cleaner and shard defaults match New; the cleaner starts only after the
// arena scan.
func Recover(cfg Config) (*BufferManager, error) {
	defaultCleanerOn(&cfg)
	defaultShards(&cfg)
	return core.Recover(cfg)
}

// defaultCleanerOn applies the facade's cleaner-on default: enabled unless
// the caller explicitly disabled (or already enabled) it.
func defaultCleanerOn(cfg *Config) {
	if !cfg.Cleaner.Enable && !cfg.Cleaner.Disable {
		cfg.Cleaner.Enable = true
	}
}

// defaultShards applies the facade's sharded-pool default: unset (zero)
// means RecommendedShards(). core itself keeps zero meaning single-shard so
// core-level tests and the experiment harness stay deterministic unless
// they opt in.
func defaultShards(cfg *Config) {
	if cfg.Shards == 0 {
		cfg.Shards = RecommendedShards()
	}
}

// RecommendedShards is the shard count the facade applies to concurrency-
// critical structures sized by worker parallelism: buffer-pool CLOCK hands
// and free lists (Config.Shards) and WAL append shards (WALOptions.Shards).
// It is GOMAXPROCS clamped to [1, 64] — one shard per schedulable core
// keeps each worker's allocations, releases and CLOCK sweeps on its own
// shard's cache lines, while more shards than cores would only spread
// frames thinner and raise the cross-shard steal rate. Pools additionally
// clamp so every shard holds at least two frames.
func RecommendedShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// NewCtx creates a worker context with a fresh virtual clock.
func NewCtx(seed uint64) *Ctx { return core.NewCtx(seed) }

// Migration policies (§3).
type (
	// Policy is the migration-policy tuple ⟨Dr, Dw, Nr, Nw⟩.
	Policy = policy.Policy
	// NwMode selects probabilistic vs admission-queue NVM admission.
	NwMode = policy.NwMode
)

// Table 3 policy presets and modes.
var (
	Hymem         = policy.Hymem
	SpitfireEager = policy.SpitfireEager
	SpitfireLazy  = policy.SpitfireLazy
)

// NVM admission modes.
const (
	NwProbabilistic  = policy.NwProbabilistic
	NwAdmissionQueue = policy.NwAdmissionQueue
)

// Devices and media (Table 1).
type (
	// Device simulates one storage device's latency/bandwidth/price.
	Device = device.Device
	// DeviceParams are a device's characteristics.
	DeviceParams = device.Params
	// PMem is a simulated persistent-memory arena (clwb/sfence semantics).
	PMem = pmem.PMem
	// PMemOptions configures a PMem arena.
	PMemOptions = pmem.Options
	// SSDStore is the page-granular block device interface.
	SSDStore = ssd.Store
	// Clock is a per-worker virtual clock (simulated nanoseconds).
	Clock = vclock.Clock
	// Rand is the worker-local PRNG used for policy trials and workloads.
	Rand = zipf.Rand
)

// Calibrated device parameter presets.
var (
	DRAMParams = device.DRAMParams
	NVMParams  = device.NVMParams
	SSDParams  = device.SSDParams
)

// NewDevice creates a simulated device.
func NewDevice(p DeviceParams) *Device { return device.New(p) }

// NewPMem creates a persistent-memory arena.
func NewPMem(opts PMemOptions) *PMem { return pmem.New(opts) }

// NewMemSSD creates an in-memory SSD (nil device = Table 1 SSD parameters).
func NewMemSSD(dev *Device) *ssd.MemStore { return ssd.NewMem(dev) }

// NewFileSSD creates a file-backed SSD.
func NewFileSSD(path string, dev *Device) (*ssd.FileStore, error) {
	return ssd.NewFile(path, dev)
}

// Fault injection and robustness (DESIGN.md §5-ter).
type (
	// FaultConfig is the fault mix a device injector draws from: transient
	// read/write errors, torn writes, latency stalls, and fail-after budgets.
	FaultConfig = device.FaultConfig
	// Injector is a seeded-deterministic per-device fault source; attach it
	// with Device.SetFaults.
	Injector = device.Injector
	// FaultStats counts what an injector actually did.
	FaultStats = device.FaultStats
	// CrashSwitch is a machine-wide crash point shared by several injectors:
	// the Nth checked write tears and everything after it fails with
	// ErrCrashed until the harness reboots it.
	CrashSwitch = device.CrashSwitch
	// RetryConfig bounds the buffer manager's retry/backoff loop around
	// fallible NVM and SSD operations.
	RetryConfig = core.RetryConfig
	// RecoveryStats counts the damage WAL recovery tolerated (torn tails,
	// checksum mismatches, resync skips, duplicate LSNs).
	RecoveryStats = wal.RecoveryStats
	// RecoveredLog is the completed, parsed log plus the analysis outcome.
	RecoveredLog = wal.RecoveredLog
)

// Typed fault classes. Every injected error wraps exactly one of these;
// classify with errors.Is.
var (
	ErrTransient = device.ErrTransient
	ErrPermanent = device.ErrPermanent
	ErrCrashed   = device.ErrCrashed
	ErrTorn      = device.ErrTorn
)

// NewInjector creates a fault injector with the given mix.
func NewInjector(cfg FaultConfig) *Injector { return device.NewInjector(cfg) }

// NewCrashSwitch creates a disarmed, untripped crash switch.
func NewCrashSwitch() *CrashSwitch { return device.NewCrashSwitch() }

// IsTorn extracts the torn fraction from an error chain.
func IsTorn(err error) (frac float64, ok bool) { return device.IsTorn(err) }

// Observability (DESIGN.md §5-quater): migration tracing, hot-path latency
// histograms, and live metrics exposition.
type (
	// Obs is the root observability object. Create one with NewObs, pass it
	// in Config.Obs (and WALOptions.Obs), and every hot path reports into
	// it; a nil Obs keeps the zero-overhead fast path.
	Obs = obs.Obs
	// ObsConfig sizes the observability layer (tracer ring capacity, ring
	// cap).
	ObsConfig = obs.Config
	// ObsServer is the live exposition HTTP server (Prometheus text, JSON
	// snapshots, Chrome trace export, pprof). Start it with Obs.Serve.
	ObsServer = obs.Server
	// ObsSample is one named counter or gauge reading from an ObsSource.
	ObsSample = obs.Sample
	// ObsSource supplies live counters and gauges for the exposition
	// endpoints; install one with Obs.SetSource.
	ObsSource = obs.Source
	// TraceEvent is one tracer event (migration, eviction, WAL append...).
	TraceEvent = obs.Event
	// TraceRing is a per-worker lock-free event ring.
	TraceRing = obs.Ring
)

// NewObs creates an observability instance (zero config takes defaults).
func NewObs(cfg ObsConfig) *Obs { return obs.New(cfg) }

// Adaptive tuning (§4).
type (
	// Tuner runs the simulated-annealing policy search.
	Tuner = anneal.Tuner
	// TunerOptions configures a Tuner.
	TunerOptions = anneal.Options
	// TunerEpochStep describes one completed annealing epoch to the
	// TunerOptions.OnEpoch observer hook.
	TunerEpochStep = anneal.EpochStep
)

// NewTuner creates a policy tuner.
func NewTuner(opts TunerOptions) *Tuner { return anneal.New(opts) }

// WearAwareCost extends the tuner's cost function with an NVM-endurance
// penalty (cost = γ/T + λ·W/T); see Tuner.ObserveWear.
type WearAwareCost = anneal.WearAwareCost

// Storage engine, transactions, logging (§5.2).
type (
	// DB is the storage engine: heap tables + MVTO + WAL over the buffer
	// manager.
	DB = engine.DB
	// DBOptions configures a DB.
	DBOptions = engine.Options
	// Table is a heap table with a B+Tree primary index.
	EngineTable = engine.Table
	// Txn is an MVTO transaction.
	Txn = engine.Txn
	// WAL is the NVM-aware write-ahead log manager.
	WAL = wal.Manager
	// WALOptions configures a WAL.
	WALOptions = wal.Options
	// LogRecord is one WAL record.
	LogRecord = wal.Record
	// TableDef declares a table schema for recovery.
	TableDef = engine.TableDef
	// RecoverOptions configures full database recovery.
	RecoverOptions = engine.RecoverOptions
)

// Engine errors.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = engine.ErrNotFound
	// ErrConflict aborts a transaction that lost an MVTO race.
	ErrConflict = engine.ErrConflict
)

// OpenDB opens a storage engine over a buffer manager.
func OpenDB(opts DBOptions) (*DB, error) { return engine.Open(opts) }

// RecommendedWALShards is the WALOptions.Shards value for multi-worker
// commit paths. It follows RecommendedShards() — one worker-affine append
// shard per schedulable core (BenchmarkWALAppendParallel showed commit
// throughput scaling with the shard count up to GOMAXPROCS, while
// per-shard regions stay large enough that group-commit flushes remain
// batched). The WAL's own default (Shards = 1) remains the right choice
// for single-worker and determinism-sensitive runs.
func RecommendedWALShards() int { return RecommendedShards() }

// NewWAL creates a write-ahead log manager.
func NewWAL(opts WALOptions) (*WAL, error) { return wal.New(opts) }

// NewMemLog creates an in-memory SSD log store.
func NewMemLog(dev *Device) *wal.MemLog { return wal.NewMemLog(dev) }

// NewFileLog creates a file-backed SSD log store.
func NewFileLog(path string, dev *Device) (*wal.FileLog, error) {
	return wal.NewFileLog(path, dev)
}

// RecoverDB recovers a database after a crash: pass a buffer manager
// already rebuilt with Recover, the surviving WAL options, and the schema.
func RecoverDB(ctx *Ctx, opts RecoverOptions) (*DB, *wal.RecoveredLog, error) {
	return engine.Recover(ctx, opts)
}
