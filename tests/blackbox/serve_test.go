//go:build blackbox

// Package blackbox drives a real spitfire-serve process over real sockets
// and asserts the robustness contract from the outside: overload turns into
// 429/503 (never an uncontrolled 5xx), SIGTERM drains without dropping an
// accepted request and checkpoints before exit, and the readiness probe
// flips under pressure while liveness stays green. Build-tag-gated because
// it compiles the binary and binds ports:
//
//	go test -tags blackbox ./tests/blackbox/
package blackbox

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/spitfire-db/spitfire/internal/harness"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// serveBinary builds cmd/spitfire-serve once per test run.
func serveBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "spitfire-blackbox")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "spitfire-serve")
		out, err := exec.Command("go", "build", "-o", binPath,
			"github.com/spitfire-db/spitfire/cmd/spitfire-serve").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// proc is one running spitfire-serve under test.
type proc struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *lockedBuf
}

type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

var servingRE = regexp.MustCompile(`serving on (http://[^/\s]+)/`)

// startServe launches the binary on an ephemeral port (-addr :0) and waits
// until it reports the resolved address and answers /healthz.
func startServe(t *testing.T, extraArgs ...string) *proc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(serveBinary(t), args...)
	buf := &lockedBuf{}
	cmd.Stderr = buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, stderr: buf}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := servingRE.FindStringSubmatch(buf.String()); m != nil {
			p.base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stderr:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never came up; stderr:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestOverloadSheds floods a deliberately tiny server and asserts every
// refusal is a clean 429/503 with Retry-After — zero uncontrolled 5xx, zero
// transport errors — and that the server still answers afterwards.
func TestOverloadSheds(t *testing.T) {
	p := startServe(t,
		"-max-inflight", "2", "-queue-depth", "2",
		"-per-client", "2", "-per-client-queue", "2",
		"-dram-mb", "4", "-nvm-mb", "8",
		"-test-hold", "5ms") // slow the server down so overload actually piles up

	res := harness.DriveLoad(harness.LoadOpts{
		BaseURL: p.base, Clients: 16, Ops: 800, Keys: 64, ReadFrac: 0.5,
	})
	t.Logf("overload: %s", res)
	if res.Other5xx != 0 {
		t.Fatalf("%d uncontrolled 5xx under overload; stderr:\n%s", res.Other5xx, p.stderr.String())
	}
	if res.NetErrors != 0 {
		t.Fatalf("%d transport errors under overload", res.NetErrors)
	}
	if res.Rejected429 == 0 {
		t.Fatal("8x overload produced no 429s — admission control not engaging")
	}
	if res.RetryAfter == 0 {
		t.Fatal("refusals carried no Retry-After hint")
	}
	if res.OK == 0 {
		t.Fatal("no request completed under overload")
	}

	// The server must still be healthy and serving once the storm passes.
	if code, _ := get(t, p.base+"/healthz"); code != 200 {
		t.Fatalf("healthz after overload = %d", code)
	}
	if code, body := get(t, p.base+"/readyz"); code != 200 {
		t.Fatalf("readyz after overload = %d %q", code, body)
	}
}

var drainedRE = regexp.MustCompile(`drained cleanly: (\d+) accepted, (\d+) completed, checkpoint ok`)

// TestSIGTERMDrain sends SIGTERM while writers are in flight and asserts the
// process exits 0 after completing every accepted request and checkpointing.
func TestSIGTERMDrain(t *testing.T) {
	p := startServe(t, "-drain-grace", "200ms")

	// Background load while the signal lands. Refusals (503 draining) and
	// connection errors after the listener closes are expected; what must
	// not happen is an accepted request getting dropped — the server's own
	// accepted/completed accounting below proves that.
	loadDone := make(chan harness.LoadResult, 1)
	go func() {
		loadDone <- harness.DriveLoad(harness.LoadOpts{
			BaseURL: p.base, Clients: 4, Ops: 2000, Keys: 64, ReadFrac: 0.5,
		})
	}()
	time.Sleep(100 * time.Millisecond) // let the load ramp

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("server exited non-zero after SIGTERM: %v\nstderr:\n%s", err, p.stderr.String())
	}
	res := <-loadDone
	t.Logf("drain load: %s", res)
	if res.Other5xx != 0 {
		t.Fatalf("%d uncontrolled 5xx during drain", res.Other5xx)
	}

	stderr := p.stderr.String()
	m := drainedRE.FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no clean-drain report in stderr:\n%s", stderr)
	}
	accepted, _ := strconv.Atoi(m[1])
	completed, _ := strconv.Atoi(m[2])
	if accepted != completed {
		t.Fatalf("drain dropped requests: %d accepted, %d completed", accepted, completed)
	}
	if accepted == 0 {
		t.Fatal("drain test raced: no request was accepted before SIGTERM")
	}
}

// TestReadyzFlipsUnderPressure runs a server whose shed threshold is above
// any possible free fraction, so the pressure monitor flips to shedding
// immediately: /readyz must go 503 while /healthz stays 200, in-capacity
// requests still serve, and refusals say why.
func TestReadyzFlipsUnderPressure(t *testing.T) {
	p := startServe(t, "-shed-frac", "1.5", "-pressure-interval", "1ms",
		"-max-inflight", "1", "-per-client", "1")

	deadline := time.Now().Add(5 * time.Second)
	var code int
	var body string
	for {
		code, body = get(t, p.base+"/readyz")
		if code == 503 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped: %d %q", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(body, "shedding") {
		t.Fatalf("readyz 503 body = %q, want shedding reason", body)
	}
	if code, _ := get(t, p.base+"/healthz"); code != 200 {
		t.Fatal("healthz must stay 200 while shedding")
	}

	// Shedding refuses what exceeds capacity but still serves what fits.
	if code, _ := get(t, p.base+"/kv/get?key=1"); code != 404 {
		t.Fatalf("in-capacity request while shedding = %d, want 404 (missing key)", code)
	}
	code, body = get(t, p.base+"/stats.json")
	if code != 200 || !strings.Contains(body, `"shedding":true`) {
		t.Fatalf("stats.json = %d %q, want shedding:true", code, body)
	}
}
