package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spitfire-db/spitfire/internal/obs"
)

// TestFixturesLintClean runs the linter over every checked-in exposition
// fixture. The fixtures are real scrapes (testdata/server_metrics.txt is a
// live spitfire-serve /metrics), so a lint regression in either the obs
// exposition writer or the validator shows up here without a server.
func TestFixturesLintClean(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.txt")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, path := range paths {
		payload, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidatePrometheus(string(payload)); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// TestServerFixtureFamilies pins the metric families the serve front-end
// exposes, so a rename in internal/server's Source breaks CI here instead of
// silently breaking dashboards.
func TestServerFixtureFamilies(t *testing.T) {
	payload, err := os.ReadFile("testdata/server_metrics.txt")
	if err != nil {
		t.Fatal(err)
	}
	body := string(payload)
	for _, want := range []string{
		// Admission counters.
		"spitfire_req_accepted_total",
		"spitfire_req_completed_total",
		"spitfire_req_rejected_queue_full_total",
		"spitfire_req_shed_total",
		"spitfire_req_queue_expired_total",
		"spitfire_req_rejected_draining_total",
		"spitfire_req_rejected_read_only_total",
		"spitfire_txn_retries_total",
		"spitfire_degraded_trips_total",
		// Admission gauges.
		"spitfire_inflight",
		"spitfire_queued",
		"spitfire_active_clients",
		"spitfire_draining",
		"spitfire_read_only",
		"spitfire_shedding",
		"spitfire_min_free_millifrac",
		"spitfire_nvm_degraded",
		// Request latency summaries.
		`spitfire_req_get_ns{quantile="0.99"}`,
		"spitfire_req_put_ns_count",
		// Engine counters must still ride along on the same endpoint.
		"spitfire_hit_dram_total",
		"spitfire_wal_commits_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("server_metrics.txt missing %q", want)
		}
	}
}
