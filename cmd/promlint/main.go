// Command promlint validates Prometheus text-exposition payloads with the
// same linter the obs tests use (obs.ValidatePrometheus). CI points it at a
// scrape of a live spitfire-bench -obs endpoint; it exits non-zero with the
// offending line on any format error.
//
// usage: promlint FILE...   (or pipe a payload on stdin with no arguments)
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/spitfire-db/spitfire/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		payload, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		lint("<stdin>", string(payload))
		return
	}
	for _, path := range os.Args[1:] {
		payload, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		lint(path, string(payload))
	}
}

func lint(name, payload string) {
	if err := obs.ValidatePrometheus(payload); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("promlint: %s ok\n", name)
}
