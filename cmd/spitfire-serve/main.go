// Command spitfire-serve exposes the Spitfire engine as an HTTP KV service
// with production-shaped robustness: bounded admission queues (429/503 +
// Retry-After on overload), backpressure wired to the buffer manager's
// free-list and degraded-mode signals, read-only fallback on permanent NVM
// failure, and a signal-driven graceful drain that checkpoints before exit.
//
// Endpoints:
//
//	GET    /kv/get?key=N                 value bytes (404 when missing)
//	PUT    /kv/put?key=N                 body is the value; 204
//	DELETE /kv/delete?key=N              204 (404 when missing)
//	GET    /kv/scan?from=N&limit=M       JSONL {"key":..,"value":"<base64>"}
//	POST   /kv/txn                       {"ops":[{"op":"put","key":..,"value":..},...]}
//	GET    /healthz                      liveness (200 while the process serves)
//	GET    /readyz                       readiness (503 while draining/shedding/read-only)
//	GET    /stats.json                   admission + robustness counters
//	GET    /metrics, /snapshot.json, ... obs exposition (with -obs, default on)
//
// Every request accepts ?deadline_ms=D. SIGTERM/SIGINT starts the drain:
// readiness flips immediately, the listener stays up for -drain-grace so
// load balancers notice, then in-flight requests finish and the engine
// checkpoints before exit 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/server"
	"github.com/spitfire-db/spitfire/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dramMB := flag.Int("dram-mb", 16, "DRAM buffer pool size (MiB)")
	nvmMB := flag.Int("nvm-mb", 64, "NVM buffer pool size (MiB), 0 for two-tier")
	pol := flag.String("policy", "lazy", "migration policy: lazy or eager")
	maxVal := flag.Int("max-value", 256, "largest value size in bytes")
	maxInflight := flag.Int("max-inflight", 64, "global concurrent admitted requests")
	queueDepth := flag.Int("queue-depth", 0, "global admission queue depth (default 4x max-inflight)")
	perClient := flag.Int("per-client", 16, "per-client concurrent admitted requests")
	perClientQueue := flag.Int("per-client-queue", 32, "per-client admission queue depth")
	deadline := flag.Duration("deadline", 2*time.Second, "default per-request deadline")
	shedFrac := flag.Float64("shed-frac", 0.05, "shed load when the buffer free-list fraction drops below this")
	pressureEvery := flag.Duration("pressure-interval", 50*time.Millisecond, "buffer pressure sampling interval")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond, "hold the listener open after the readiness flip before draining")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on waiting for in-flight requests during drain")
	withObs := flag.Bool("obs", true, "serve the observability endpoints (/metrics, /snapshot.json, ...)")
	seed := flag.Uint64("seed", 1, "base seed for per-request engine contexts")
	testHold := flag.Duration("test-hold", 0, "hold each admitted request this long before executing (overload-testing knob)")
	flag.Parse()

	p := policy.SpitfireLazy
	switch *pol {
	case "lazy":
	case "eager":
		p = policy.SpitfireEager
	default:
		fmt.Fprintf(os.Stderr, "spitfire-serve: unknown -policy %q (lazy or eager)\n", *pol)
		os.Exit(2)
	}

	bm, err := core.New(core.Config{
		DRAMBytes: int64(*dramMB) << 20,
		NVMBytes:  int64(*nvmMB) << 20,
		Policy:    p,
	})
	if err != nil {
		fatal("buffer manager", err)
	}
	w, err := wal.New(wal.Options{
		Buffer: pmem.New(pmem.Options{Size: 1 << 22}),
		Store:  wal.NewMemLog(nil),
	})
	if err != nil {
		fatal("wal", err)
	}
	db, err := engine.Open(engine.Options{BM: bm, WAL: w})
	if err != nil {
		fatal("engine", err)
	}
	kv, err := engine.OpenKV(db, 1, "kv", *maxVal)
	if err != nil {
		fatal("kv", err)
	}

	var o *obs.Obs
	if *withObs {
		o = obs.New(obs.Config{})
	}
	srv, err := server.New(server.Options{
		DB: db, KV: kv, Obs: o,
		MaxInflight:        *maxInflight,
		QueueDepth:         *queueDepth,
		PerClientInflight:  *perClient,
		PerClientQueue:     *perClientQueue,
		DefaultDeadline:    *deadline,
		ShedFreeFrac:       *shedFrac,
		PressureInterval:   *pressureEvery,
		DrainTimeout:       *drainTimeout,
		Seed:               *seed,
		TestHoldPerRequest: *testHold,
	})
	if err != nil {
		fatal("server", err)
	}
	if err := srv.Start(*addr); err != nil {
		fatal("listen", err)
	}
	fmt.Fprintf(os.Stderr, "spitfire-serve: serving on http://%s/ (dram %d MiB, nvm %d MiB, policy %s)\n",
		srv.Addr(), *dramMB, *nvmMB, *pol)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "spitfire-serve: %s received, draining (grace %s)\n", sig, *drainGrace)

	// Two-phase drain: flip readiness first and keep answering for the
	// grace period so load balancers stop routing, then shut down, finish
	// in-flight requests, and checkpoint.
	srv.StartDrain()
	time.Sleep(*drainGrace)
	if err := srv.Drain(); err != nil {
		fatal("drain", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "spitfire-serve: drained cleanly: %d accepted, %d completed, checkpoint ok\n",
		st.Accepted, st.Completed)
	bm.Close()
}

func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "spitfire-serve: %s: %v\n", what, err)
	os.Exit(1)
}
