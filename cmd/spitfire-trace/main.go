// Command spitfire-trace replays a recorded key-value trace against a
// configurable storage hierarchy and migration policy — the storage-system
// design question of §5.3, answered for a real workload.
//
// Usage:
//
//	spitfire-trace gen -ops 100000 -keys 50000 -theta 0.5 -writes 30 > trace.txt
//	spitfire-trace replay -dram 8 -nvm 32 -policy lazy  < trace.txt
//	spitfire-trace replay -dram 8 -nvm 32 -policy eager -workers 8 trace.txt
//	spitfire-trace diff before-snapshot.json after-snapshot.json
//
// Sizes are in MB. Policies: lazy (Spitfire-Lazy), eager (Spitfire-Eager),
// hymem (HyMem with the admission queue), or a custom tuple
// "dr,dw,nr,nw" such as "0.01,0.01,0.2,1".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/tracereplay"
)

const mb = 1 << 20

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

// compare replays one trace across equi-cost hierarchies and ranks them —
// the §5.3 design question answered for a recorded workload.
func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	budget := fs.Float64("budget", 64, "memory budget in MB-equivalents of DRAM dollars (DRAM $10/GB : NVM $4.5/GB)")
	workers := fs.Int("workers", 4, "concurrent workers")
	tupleSize := fs.Int("tuple", 1000, "tuple payload size in bytes")
	fs.Parse(args)

	in := io.Reader(os.Stdin)
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	ops, err := tracereplay.Parse(in)
	if err != nil {
		fatal(err)
	}

	// Candidate splits of the dollar budget between DRAM and NVM
	// (NVM buys 10/4.5 = 2.2x the capacity per dollar).
	const nvmPerDramDollar = 10.0 / 4.5
	type cand struct {
		name      string
		dram, nvm float64 // MB
		pol       policy.Policy
	}
	var cands []cand
	for _, split := range []struct {
		name string
		frac float64 // fraction of budget spent on DRAM
	}{{"all-DRAM", 1}, {"3/4 DRAM", 0.75}, {"half-half", 0.5}, {"1/4 DRAM", 0.25}, {"all-NVM", 0}} {
		d := *budget * split.frac
		n := (*budget - d) * nvmPerDramDollar
		for _, pc := range []struct {
			name string
			p    policy.Policy
		}{{"lazy", policy.SpitfireLazy}, {"eager", policy.SpitfireEager}} {
			if d == 0 || n == 0 {
				// Single-tier candidates need no policy variants.
				if pc.name == "eager" {
					continue
				}
			}
			cands = append(cands, cand{
				name: fmt.Sprintf("%s/%s", split.name, pc.name),
				dram: d, nvm: n, pol: pc.p,
			})
		}
	}

	fmt.Printf("%-22s %10s %10s %10s %10s\n", "hierarchy", "DRAM MB", "NVM MB", "kops/s", "p99 us")
	for _, c := range cands {
		bm, err := core.New(core.Config{
			DRAMBytes: int64(c.dram * mb),
			NVMBytes:  int64(c.nvm * mb),
			Policy:    c.pol,
		})
		if err != nil {
			continue // degenerate split
		}
		res, err := tracereplay.Replay(tracereplay.Config{
			BM: bm, Workers: *workers, TupleSize: *tupleSize,
		}, ops)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-22s %10.1f %10.1f %10.1f %10.1f\n",
			c.name, c.dram, c.nvm, res.Throughput/1000, float64(res.LatencyP99Ns)/1000)
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	ops := fs.Int("ops", 100_000, "operations to generate")
	keys := fs.Uint64("keys", 50_000, "key-space size")
	theta := fs.Float64("theta", 0.5, "zipfian skew (0 = uniform)")
	writes := fs.Int("writes", 30, "write percentage")
	seed := fs.Uint64("seed", 1, "random seed")
	fs.Parse(args)
	if err := tracereplay.Generate(os.Stdout, *ops, *keys, *theta, *writes, *seed); err != nil {
		fatal(err)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dram := fs.Float64("dram", 8, "DRAM buffer size in MB (0 disables)")
	nvm := fs.Float64("nvm", 32, "NVM buffer size in MB (0 disables)")
	pol := fs.String("policy", "lazy", "lazy | eager | hymem | dr,dw,nr,nw")
	workers := fs.Int("workers", 4, "concurrent workers")
	tupleSize := fs.Int("tuple", 1000, "tuple payload size in bytes")
	obsAddr := fs.String("obs", "", "serve live metrics on this address during the replay (/metrics, /snapshot.json, /debug/pprof/)")
	traceOut := fs.String("traceout", "", "write a Chrome trace_event JSON of buffer migrations here")
	fs.Parse(args)

	in := io.Reader(os.Stdin)
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if fs.NArg() > 1 {
		fatal(fmt.Errorf("at most one trace file"))
	}

	ops, err := tracereplay.Parse(in)
	if err != nil {
		fatal(err)
	}
	p, err := parsePolicy(*pol)
	if err != nil {
		fatal(err)
	}
	var o *obs.Obs
	if *obsAddr != "" || *traceOut != "" {
		o = obs.New(obs.Config{})
		if *obsAddr != "" {
			srv, err := o.Serve(*obsAddr)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "spitfire-trace: live metrics on http://%s/\n", srv.Addr())
			defer o.StartProgress(os.Stderr, 2*time.Second)()
		}
	}
	bm, err := core.New(core.Config{
		DRAMBytes: int64(*dram * mb),
		NVMBytes:  int64(*nvm * mb),
		Policy:    p,
		Obs:       o,
	})
	if err != nil {
		fatal(err)
	}
	res, err := tracereplay.Replay(tracereplay.Config{
		BM: bm, Workers: *workers, TupleSize: *tupleSize,
	}, ops)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := o.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "spitfire-trace: wrote Chrome trace to %s\n", *traceOut)
	}

	fmt.Printf("trace:        %d ops (%d committed, %d aborted)\n", res.Ops, res.Committed, res.Aborted)
	fmt.Printf("hierarchy:    DRAM %.0f MB + NVM %.0f MB + SSD, policy %v\n", *dram, *nvm, p)
	fmt.Printf("throughput:   %.1f kops per simulated second\n", res.Throughput/1000)
	fmt.Printf("latency:      p50 <= %d ns, p99 <= %d ns (simulated)\n", res.LatencyP50Ns, res.LatencyP99Ns)
	fmt.Printf("inclusivity:  %.3f\n", res.Inclusivity)
	s := res.Stats
	fmt.Printf("served from:  DRAM %d | NVM %d | SSD %d\n", s.HitDRAM+s.HitMini, s.HitNVM, s.MissSSD)
	fmt.Printf("migrations:   NVM->DRAM %d | SSD->NVM %d | SSD->DRAM %d | DRAM->NVM %d | NVM->SSD %d\n",
		s.NVMToDRAM, s.SSDToNVM, s.SSDToDRAM, s.DRAMToNVM, s.NVMToSSD)
}

func parsePolicy(s string) (policy.Policy, error) {
	switch strings.ToLower(s) {
	case "lazy":
		return policy.SpitfireLazy, nil
	case "eager":
		return policy.SpitfireEager, nil
	case "hymem":
		return policy.Hymem, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return policy.Policy{}, fmt.Errorf("policy %q: want lazy|eager|hymem or dr,dw,nr,nw", s)
	}
	var vals [4]float64
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return policy.Policy{}, fmt.Errorf("policy %q: %v", s, err)
		}
		vals[i] = v
	}
	p := policy.Policy{Dr: vals[0], Dw: vals[1], Nr: vals[2], Nw: vals[3]}
	return p, p.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spitfire-trace:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `spitfire-trace replays key-value traces against storage hierarchies.

usage:
  spitfire-trace gen     [-ops N] [-keys N] [-theta F] [-writes PCT] [-seed N]
  spitfire-trace replay  [-dram MB] [-nvm MB] [-policy P] [-workers N] [-obs ADDR] [-traceout FILE] [trace-file]
  spitfire-trace compare [-budget MB] [-workers N] [trace-file]
  spitfire-trace diff    [-all] before-snapshot.json after-snapshot.json
`)
}
