package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// snapshotDoc mirrors the JSON served at /snapshot.json (internal/obs).
// Fields the diff does not use (deltas, phase_histograms) are parsed but
// ignored: they describe the scrape interval of the capture, not the span
// between two captures.
type snapshotDoc struct {
	WallUnixNS int64                  `json:"wall_unix_ns"`
	Counters   map[string]int64       `json:"counters"`
	Gauges     map[string]int64       `json:"gauges"`
	Derived    map[string]float64     `json:"derived"`
	Histograms map[string]histSummary `json:"histograms"`
}

type histSummary struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// diff compares two /snapshot.json captures of the same server: counter
// deltas with per-second rates over the wall interval, gauge and derived
// hit-rate movement, and histogram quantile shifts.
func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	all := fs.Bool("all", false, "include counters whose delta is zero")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff: want exactly two snapshot.json files, got %d", fs.NArg()))
	}
	a, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		fatal(err)
	}

	dt := float64(b.WallUnixNS-a.WallUnixNS) / 1e9
	fmt.Printf("interval: %.3fs  (%s -> %s)\n", dt, fs.Arg(0), fs.Arg(1))
	if dt <= 0 {
		fmt.Println("warning: second capture is not newer than the first; rates omitted")
	}

	fmt.Println("\ncounters:")
	for _, name := range unionKeys(a.Counters, b.Counters) {
		av, aok := a.Counters[name]
		bv, bok := b.Counters[name]
		switch {
		case !aok:
			fmt.Printf("  %-32s %14d  (new)\n", name, bv)
		case !bok:
			fmt.Printf("  %-32s %14s  (gone, was %d)\n", name, "", av)
		default:
			d := bv - av
			if d == 0 && !*all {
				continue
			}
			if dt > 0 {
				fmt.Printf("  %-32s %+14d  (%.1f/s)\n", name, d, float64(d)/dt)
			} else {
				fmt.Printf("  %-32s %+14d\n", name, d)
			}
		}
	}

	fmt.Println("\ngauges:")
	for _, name := range unionKeys(a.Gauges, b.Gauges) {
		av, bv := a.Gauges[name], b.Gauges[name]
		if av == bv && !*all {
			continue
		}
		fmt.Printf("  %-32s %d -> %d\n", name, av, bv)
	}

	if len(a.Derived)+len(b.Derived) > 0 {
		fmt.Println("\nderived:")
		for _, name := range unionKeys(a.Derived, b.Derived) {
			fmt.Printf("  %-32s %.4f -> %.4f\n", name, a.Derived[name], b.Derived[name])
		}
	}

	fmt.Println("\nhistograms:")
	for _, name := range unionKeys(a.Histograms, b.Histograms) {
		ah, bh := a.Histograms[name], b.Histograms[name]
		fmt.Printf("  %s: count %+d\n", name, bh.Count-ah.Count)
		quantShift("p50_ns", ah.P50NS, bh.P50NS)
		quantShift("p90_ns", ah.P90NS, bh.P90NS)
		quantShift("p99_ns", ah.P99NS, bh.P99NS)
		quantShift("max_ns", ah.MaxNS, bh.MaxNS)
	}
}

// quantShift prints one quantile's movement with a signed percentage when
// the baseline is non-zero.
func quantShift(label string, from, to int64) {
	if from == to {
		return
	}
	if from != 0 {
		fmt.Printf("    %-8s %12d -> %-12d (%+.1f%%)\n", label, from, to,
			100*float64(to-from)/float64(from))
		return
	}
	fmt.Printf("    %-8s %12d -> %-12d\n", label, from, to)
}

func loadSnapshot(path string) (*snapshotDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc snapshotDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		set[k] = struct{}{}
	}
	for k := range b {
		set[k] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
