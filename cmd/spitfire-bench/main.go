// Command spitfire-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the same rows/series the paper
// reports, with throughput measured in operations per simulated second on
// the calibrated device models (see DESIGN.md for the substitution notes).
//
// Usage:
//
//	spitfire-bench list                 # show available experiments
//	spitfire-bench all [-quick]         # run everything in paper order
//	spitfire-bench fig6 [-quick]        # run one experiment
//	spitfire-bench fig14 fig15 -quick   # run several
//
// -quick shrinks database/buffer sizes by 4x (preserving every capacity
// ratio) and reduces operation counts, for fast sanity runs.
//
// Beyond the paper, extra-wear sweeps the wear-aware tuner and
// extra-cleaner sweeps the background page cleaner's watermark/batch
// settings (see DESIGN.md §5-bis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/spitfire-db/spitfire/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sizes and op counts for a fast run")
	seed := flag.Uint64("seed", 1, "workload random seed")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	opts := harness.Opts{Quick: *quick, Seed: *seed}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "spitfire-bench: %v\n", err)
			os.Exit(1)
		}
	}

	switch args[0] {
	case "verify":
		t, ok, err := harness.Verify(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spitfire-bench: verify: %v\n", err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		if !ok {
			fmt.Fprintln(os.Stderr, "spitfire-bench: some paper claims FAILED")
			os.Exit(1)
		}
		fmt.Println("all paper claims reproduced")
		return
	case "list":
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Description)
		}
		return
	case "all":
		for _, e := range harness.Experiments() {
			runOne(e, opts, *csvDir)
		}
		return
	}

	for _, name := range args {
		e, ok := harness.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "spitfire-bench: unknown experiment %q (try `spitfire-bench list`)\n", name)
			os.Exit(2)
		}
		runOne(e, opts, *csvDir)
	}
}

func runOne(e harness.Experiment, opts harness.Opts, csvDir string) {
	fmt.Printf("--- %s: %s\n", e.Name, e.Description)
	start := time.Now()
	tables, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spitfire-bench: %s: %v\n", e.Name, err)
		os.Exit(1)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
		if csvDir != "" {
			path := filepath.Join(csvDir, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spitfire-bench: %v\n", err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "spitfire-bench: %v\n", err)
			}
			f.Close()
		}
	}
	fmt.Printf("    (%s in %.1fs wall clock)\n\n", e.Name, time.Since(start).Seconds())
}

func usage() {
	fmt.Fprintf(os.Stderr, `spitfire-bench regenerates the paper's tables and figures.

usage:
  spitfire-bench [-quick] [-seed N] [-csv DIR] list | all | verify | <experiment>...

verify runs quick-scale checks of the paper's headline qualitative claims
and exits non-zero if any fails.

experiments:
`)
	for _, e := range harness.Experiments() {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Description)
	}
}
