// Command spitfire-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the same rows/series the paper
// reports, with throughput measured in operations per simulated second on
// the calibrated device models (see DESIGN.md for the substitution notes).
//
// Usage:
//
//	spitfire-bench list                 # show available experiments
//	spitfire-bench all [-quick]         # run everything in paper order
//	spitfire-bench fig6 [-quick]        # run one experiment
//	spitfire-bench fig14 fig15 -quick   # run several
//
// -quick shrinks database/buffer sizes by 4x (preserving every capacity
// ratio) and reduces operation counts, for fast sanity runs.
//
// Beyond the paper, extra-wear sweeps the wear-aware tuner and
// extra-cleaner sweeps the background page cleaner's watermark/batch
// settings (see DESIGN.md §5-bis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/spitfire-db/spitfire/internal/harness"
	"github.com/spitfire-db/spitfire/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sizes and op counts for a fast run")
	seed := flag.Uint64("seed", 1, "workload random seed")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	obsAddr := flag.String("obs", "", "serve live metrics on this address (e.g. :8080): /metrics, /snapshot.json, /trace.json, /events.jsonl, /debug/pprof/")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file (Perfetto-loadable) here on exit")
	progress := flag.Duration("progress", 0, "print a progress line to stderr at this interval (default 2s with -obs, off otherwise)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if *obsAddr != "" || *traceFile != "" || *progress > 0 {
		cleanup := setupObs(*obsAddr, *traceFile, *progress)
		defer cleanup()
	}

	opts := harness.Opts{Quick: *quick, Seed: *seed}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "spitfire-bench: %v\n", err)
			os.Exit(1)
		}
	}

	switch args[0] {
	case "verify":
		t, ok, err := harness.Verify(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spitfire-bench: verify: %v\n", err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		if !ok {
			fmt.Fprintln(os.Stderr, "spitfire-bench: some paper claims FAILED")
			os.Exit(1)
		}
		fmt.Println("all paper claims reproduced")
		return
	case "list":
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Description)
		}
		return
	case "all":
		for _, e := range harness.Experiments() {
			runOne(e, opts, *csvDir)
		}
		return
	case "torture":
		runTorture(args[1:], *seed)
		return
	case "serveload":
		runServeLoad(args[1:], *seed)
		return
	}

	for _, name := range args {
		e, ok := harness.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "spitfire-bench: unknown experiment %q (try `spitfire-bench list`)\n", name)
			os.Exit(2)
		}
		runOne(e, opts, *csvDir)
	}
}

// setupObs builds the process-wide observability instance, installs it as
// the harness default (every Env the experiments build attaches to it),
// optionally serves the live endpoints and a periodic stderr progress line,
// and returns a cleanup that writes the trace file and shuts everything
// down. Error paths that os.Exit lose the trace file; that is acceptable.
func setupObs(addr, traceFile string, progress time.Duration) (cleanup func()) {
	o := obs.New(obs.Config{})
	harness.SetDefaultObs(o)

	var srv *obs.Server
	if addr != "" {
		var err error
		srv, err = o.Serve(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spitfire-bench: -obs %s: %v\n", addr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "spitfire-bench: live metrics on http://%s/ (/metrics, /snapshot.json, /trace.json, /debug/pprof/)\n", srv.Addr())
		if progress == 0 {
			progress = 2 * time.Second
		}
	}
	var stopProgress func()
	if progress > 0 {
		stopProgress = o.StartProgress(os.Stderr, progress)
	}
	return func() {
		if stopProgress != nil {
			stopProgress()
		}
		if traceFile != "" {
			f, err := os.Create(traceFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spitfire-bench: -trace: %v\n", err)
			} else {
				if err := o.WriteChromeTrace(f); err != nil {
					fmt.Fprintf(os.Stderr, "spitfire-bench: -trace: %v\n", err)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "spitfire-bench: wrote Chrome trace to %s (open in Perfetto / chrome://tracing)\n", traceFile)
			}
		}
		if srv != nil {
			srv.Close()
		}
	}
}

func runOne(e harness.Experiment, opts harness.Opts, csvDir string) {
	fmt.Printf("--- %s: %s\n", e.Name, e.Description)
	start := time.Now()
	tables, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spitfire-bench: %s: %v\n", e.Name, err)
		os.Exit(1)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
		if csvDir != "" {
			path := filepath.Join(csvDir, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spitfire-bench: %v\n", err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "spitfire-bench: %v\n", err)
			}
			f.Close()
		}
	}
	fmt.Printf("    (%s in %.1fs wall clock)\n\n", e.Name, time.Since(start).Seconds())
}

// runTorture drives the crash-recovery torture harness (and, with -degraded,
// the two-tier degradation run) outside the paper's experiment set.
func runTorture(args []string, seed uint64) {
	fs := flag.NewFlagSet("torture", flag.ExitOnError)
	cycles := fs.Int("cycles", 100, "crash-recover cycles")
	workers := fs.Int("workers", 4, "writer goroutines")
	keys := fs.Int("keys", 2048, "distinct keys")
	ops := fs.Int("ops", 150, "updates per worker per cycle")
	transient := fs.Float64("transient", 0, "transient fault probability on the NVM data arena")
	finegrained := fs.Bool("finegrained", false, "torture the fine-grained (per-unit) loading path")
	shards := fs.Int("shards", 1, "WAL append shards and buffer-pool shards (worker-affine NVM regions, per-shard CLOCK hands and free lists)")
	degraded := fs.Bool("degraded", false, "also run the permanent-NVM-failure YCSB degradation check")
	verbose := fs.Bool("v", false, "log per-cycle progress")
	_ = fs.Parse(args)

	opts := harness.TortureOpts{
		Cycles: *cycles, Workers: *workers, Keys: *keys,
		OpsPerCycle: *ops, Seed: seed, TransientProb: *transient,
		FineGrained: *finegrained, Shards: *shards,
	}
	if *verbose {
		opts.Log = func(format string, a ...any) {
			fmt.Printf("  "+format+"\n", a...)
		}
	}
	start := time.Now()
	res, err := harness.Torture(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spitfire-bench: torture: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("torture: %d crash-recover cycles, %d commits, %d op errors, %d mid-run crashes, %d torn writes (%.1fs wall clock)\n",
		res.Cycles, res.Commits, res.OpErrors, res.MidRunTrips, res.TornWrites, time.Since(start).Seconds())
	fmt.Printf("torture: WAL recovery totals: %d buffer + %d file records, %d checksum mismatches, %d truncated-tail bytes, %d duplicate LSNs\n",
		res.Recovery.BufferRecords, res.Recovery.FileRecords,
		res.Recovery.ChecksumMismatches, res.Recovery.TruncatedTailBytes, res.Recovery.DuplicateLSNs)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "torture: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("torture: zero invariant violations")

	if *degraded {
		dres, err := harness.Degraded(harness.DegradedOpts{Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spitfire-bench: degraded: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("degraded: NVM tier failed permanently mid-run; %d commits (%d after degradation), %d op errors, %d orphaned pages — completed two-tier\n",
			dres.Committed, dres.TailCommits, dres.OpErrors, dres.Stats.NVMOrphanedPages)
	}
}

// runServeLoad drives a running spitfire-serve over its socket and reports
// the response-class tally. It is the operator-facing wrapper around
// harness.DriveLoad — the same driver the blackbox suite and the CI smoke
// use to prove overload turns into clean 429/503 refusals.
func runServeLoad(args []string, seed uint64) {
	fs := flag.NewFlagSet("serveload", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "base URL of the running spitfire-serve")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	ops := fs.Int("ops", 1000, "total requests")
	keys := fs.Int("keys", 1024, "key-space size")
	readFrac := fs.Float64("read-frac", 0.8, "fraction of GETs (rest are PUTs)")
	valueSize := fs.Int("value-size", 32, "PUT payload bytes")
	deadlineMS := fs.Int("deadline-ms", 0, "attach this deadline_ms to every request (0: server default)")
	_ = fs.Parse(args)

	start := time.Now()
	res := harness.DriveLoad(harness.LoadOpts{
		BaseURL: *url, Clients: *clients, Ops: *ops, Keys: *keys,
		ReadFrac: *readFrac, ValueSize: *valueSize,
		DeadlineMS: *deadlineMS, Seed: seed,
	})
	fmt.Printf("serveload: %s\n", res)
	fmt.Printf("serveload: %.0f req/s over %.1fs wall clock\n",
		float64(res.Ops)/time.Since(start).Seconds(), time.Since(start).Seconds())
	if res.Other5xx > 0 || res.NetErrors > 0 {
		fmt.Fprintf(os.Stderr, "serveload: FAILED: %d uncontrolled 5xx, %d transport errors\n",
			res.Other5xx, res.NetErrors)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `spitfire-bench regenerates the paper's tables and figures.

usage:
  spitfire-bench [-quick] [-seed N] [-csv DIR] [-obs ADDR] [-trace FILE] list | all | verify | torture | serveload | <experiment>...

-obs ADDR serves live observability over HTTP while experiments run:
/metrics (Prometheus text), /snapshot.json (interval deltas), /trace.json
(Chrome trace_event), /events.jsonl, and /debug/pprof/. -trace FILE writes
the Chrome trace at exit; -progress D prints periodic stderr stats.

verify runs quick-scale checks of the paper's headline qualitative claims
and exits non-zero if any fails.

torture runs the crash-recovery torture harness: randomized workloads killed
at injected crash points, recovered, and checked for lost or torn writes
(flags: -cycles -workers -keys -ops -transient -shards -degraded -v).

serveload drives a running spitfire-serve over its socket and tallies the
response classes; it exits non-zero on any uncontrolled 5xx or transport
error (flags: -url -clients -ops -keys -read-frac -value-size -deadline-ms).

experiments:
`)
	for _, e := range harness.Experiments() {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Description)
	}
}
