// Command spitfire-vet runs the repo's stdlib-only invariant analyzers
// (DESIGN.md §5-quinquies) over one or more package patterns:
//
//	go run ./cmd/spitfire-vet ./...
//	go run ./cmd/spitfire-vet -checks latchorder,obsguard ./internal/core
//
// It prints findings as "file:line: [check-id] message" and exits 1 when any
// finding survives //vet:allow filtering, so it can gate CI. -v surfaces
// loader warnings (partial type information makes the checks quieter, not
// wrong, so warnings are hidden by default).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/spitfire-db/spitfire/internal/vet"
)

func main() {
	var (
		dir     = flag.String("dir", ".", "module root to analyze")
		checks  = flag.String("checks", "", "comma-separated subset of "+strings.Join(vet.AllChecks, ",")+" (default all)")
		tests   = flag.Bool("tests", false, "also analyze _test.go files")
		verbose = flag.Bool("v", false, "print loader warnings")
	)
	flag.Parse()

	cfg := vet.Config{
		Dir:          *dir,
		Patterns:     flag.Args(),
		IncludeTests: *tests,
	}
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			if !known(c) {
				fmt.Fprintf(os.Stderr, "spitfire-vet: unknown check %q (have %s)\n", c, strings.Join(vet.AllChecks, ", "))
				os.Exit(2)
			}
			cfg.Checks = append(cfg.Checks, c)
		}
	}
	if *verbose {
		cfg.Warn = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	findings, err := vet.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spitfire-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "spitfire-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func known(id string) bool {
	for _, c := range vet.AllChecks {
		if c == id {
			return true
		}
	}
	return false
}
