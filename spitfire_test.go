// Black-box tests of the public API: everything a downstream user would do
// through the facade, exercised end to end.
package spitfire_test

import (
	"bytes"
	"errors"
	"testing"

	spitfire "github.com/spitfire-db/spitfire"
)

func TestPublicBufferManagerLifecycle(t *testing.T) {
	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 4 * spitfire.PageSize,
		NVMBytes:  16 * spitfire.PageSize,
		Policy:    spitfire.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := spitfire.NewCtx(1)

	pid, h, err := bm.NewPage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("public API round trip")
	if err := h.WriteAt(ctx, 64, want); err != nil {
		t.Fatal(err)
	}
	h.Release()

	h, err = bm.FetchPage(ctx, pid, spitfire.ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := h.ReadAt(ctx, 64, got); err != nil {
		t.Fatal(err)
	}
	h.Release()
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
	if ctx.Clock.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestPublicPolicyPresets(t *testing.T) {
	if spitfire.SpitfireLazy.Dr != 0.01 || spitfire.SpitfireLazy.Nr != 0.2 {
		t.Fatalf("SpitfireLazy = %v", spitfire.SpitfireLazy)
	}
	if spitfire.Hymem.NwMode != spitfire.NwAdmissionQueue {
		t.Fatal("Hymem preset lost its admission queue")
	}
	if err := (spitfire.Policy{Dr: 2}).Validate(); err == nil {
		t.Fatal("invalid policy validated")
	}
}

func TestPublicEngineTransaction(t *testing.T) {
	bm, err := spitfire.New(spitfire.Config{
		DRAMBytes: 8 * spitfire.PageSize,
		NVMBytes:  16 * spitfire.PageSize,
		Policy:    spitfire.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := spitfire.NewWAL(spitfire.WALOptions{
		Buffer: spitfire.NewPMem(spitfire.PMemOptions{Size: 1 << 17}),
		Store:  spitfire.NewMemLog(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := spitfire.OpenDB(spitfire.DBOptions{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(1, "t", 128)
	if err != nil {
		t.Fatal(err)
	}
	ctx := spitfire.NewCtx(2)
	txn := db.Begin()
	payload := make([]byte, 128)
	copy(payload, "row one")
	if err := tb.Insert(ctx, txn, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	check := db.Begin()
	got := make([]byte, 128)
	if err := tb.Read(ctx, check, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("engine round trip failed")
	}
	if err := tb.Read(ctx, check, 99, got); !errors.Is(err, spitfire.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := check.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTunerRoundTrip(t *testing.T) {
	tn := spitfire.NewTuner(spitfire.TunerOptions{
		Initial: spitfire.SpitfireEager, Seed: 3, LockstepD: true, LockstepN: true,
	})
	p := tn.Propose()
	for i := 0; i < 30; i++ {
		// Prefer lazy D.
		p = tn.Observe(1e6 * (1.5 - p.Dr))
	}
	if best := tn.Best(); best.Dr > 0.5 {
		t.Fatalf("tuner best %v did not move toward lazy D", best)
	}
	// Wear-aware variant is callable through the facade.
	cost := spitfire.WearAwareCost{Lambda: 0.1}
	_ = tn.ObserveWear(cost, 1e6, 1e8)
}

func TestPublicDeviceAndPMem(t *testing.T) {
	dev := spitfire.NewDevice(spitfire.NVMParams)
	pm := spitfire.NewPMem(spitfire.PMemOptions{Size: 4096, Device: dev, TrackCrashes: true})
	ctx := spitfire.NewCtx(4)
	pm.Write(ctx.Clock, 0, []byte("persist me"))
	pm.Persist(ctx.Clock, 0, 10)
	pm.Write(ctx.Clock, 128, []byte("lose me"))
	pm.Crash()
	got := make([]byte, 10)
	pm.Read(ctx.Clock, 0, got)
	if string(got) != "persist me" {
		t.Fatalf("persisted data lost: %q", got)
	}
	if dev.Stats().WriteOps == 0 {
		t.Fatal("device saw no traffic")
	}
}

func TestPublicCrashRecovery(t *testing.T) {
	data := spitfire.NewPMem(spitfire.PMemOptions{
		Size: 16 * (spitfire.PageSize + 64), TrackCrashes: true,
	})
	logs := spitfire.NewPMem(spitfire.PMemOptions{Size: 1 << 17, TrackCrashes: true})
	disk := spitfire.NewMemSSD(nil)
	store := spitfire.NewMemLog(nil)

	cfg := spitfire.Config{
		DRAMBytes: 4 * spitfire.PageSize,
		NVMBytes:  data.Size(),
		Policy:    spitfire.SpitfireLazy,
		PMem:      data,
		SSD:       disk,
	}
	bm, err := spitfire.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := spitfire.NewWAL(spitfire.WALOptions{Buffer: logs, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	db, err := spitfire.OpenDB(spitfire.DBOptions{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(7, "t", 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := spitfire.NewCtx(5)
	if err := tb.Load(ctx, 4, func(i uint64, p []byte) uint64 { p[0] = 1; return i }); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin()
	up := make([]byte, 64)
	up[0] = 9
	if err := tb.Update(ctx, txn, 2, up); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Stop background cleaners before simulating the crash: a crash kills
	// the whole process, and a cleaner left running would keep mutating the
	// arena the recovered manager scans.
	bm.Close()
	data.Crash()
	logs.Crash()

	bm2, err := spitfire.Recover(spitfire.Config{
		DRAMBytes: cfg.DRAMBytes, NVMBytes: cfg.NVMBytes,
		Policy: cfg.Policy, PMem: data, SSD: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := spitfire.NewCtx(6)
	db2, rl, err := spitfire.RecoverDB(rctx, spitfire.RecoverOptions{
		BM:     bm2,
		WAL:    spitfire.WALOptions{Buffer: logs, Store: store},
		Schema: []spitfire.TableDef{{ID: 7, Name: "t", TupleSize: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Committed) != 1 {
		t.Fatalf("recovered %d committed txns, want 1", len(rl.Committed))
	}
	check := db2.Begin()
	got := make([]byte, 64)
	if err := db2.Table(7).Read(rctx, check, 2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatalf("committed update lost across public-API recovery: %d", got[0])
	}
	if err := check.Commit(rctx); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFileBackedStores(t *testing.T) {
	dir := t.TempDir()
	fs, err := spitfire.NewFileSSD(dir+"/pages.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fl, err := spitfire.NewFileLog(dir+"/wal.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	ctx := spitfire.NewCtx(7)
	page := make([]byte, spitfire.PageSize)
	page[0] = 0x77
	if err := fs.WritePage(ctx.Clock, 0, page); err != nil {
		t.Fatal(err)
	}
	if err := fl.Append(ctx.Clock, []byte("rec")); err != nil {
		t.Fatal(err)
	}
	raw, err := fl.ReadAll(ctx.Clock)
	if err != nil || string(raw) != "rec" {
		t.Fatalf("file log round trip: %q, %v", raw, err)
	}
}
