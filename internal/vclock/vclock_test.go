package vclock

import "testing"

func TestAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("after Advance(100): %d", c.Now())
	}
	c.Advance(-50)
	if c.Now() != 100 {
		t.Fatalf("negative Advance moved clock to %d", c.Now())
	}
	c.Advance(0)
	if c.Now() != 100 {
		t.Fatalf("zero Advance moved clock to %d", c.Now())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := At(1000)
	if skipped := c.AdvanceTo(500); skipped != 0 {
		t.Fatalf("AdvanceTo past time skipped %d, want 0", skipped)
	}
	if c.Now() != 1000 {
		t.Fatalf("AdvanceTo past time moved clock to %d", c.Now())
	}
	if skipped := c.AdvanceTo(2500); skipped != 1500 {
		t.Fatalf("AdvanceTo(2500) skipped %d, want 1500", skipped)
	}
	if c.Now() != 2500 {
		t.Fatalf("clock at %d, want 2500", c.Now())
	}
}

func TestSeconds(t *testing.T) {
	c := At(2_500_000_000)
	if got := c.Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}
