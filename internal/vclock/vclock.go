// Package vclock provides per-worker virtual clocks measured in simulated
// nanoseconds.
//
// Spitfire's evaluation platform is a two-socket Optane machine; this
// reproduction runs on arbitrary hardware, so elapsed time is simulated
// rather than measured. Every worker goroutine owns a Clock. Devices and
// compute steps charge simulated nanoseconds to the clock of the worker that
// issued them; throughput is then operations per simulated second, which is
// deterministic and independent of the host's core count.
package vclock

// Clock is a virtual clock owned by a single worker goroutine. It is not
// safe for concurrent use; each worker must have its own.
type Clock struct {
	now int64 // simulated nanoseconds since the start of the run
}

// New returns a clock positioned at virtual time zero.
func New() *Clock { return &Clock{} }

// At returns a clock positioned at the given virtual time in nanoseconds.
func At(ns int64) *Clock { return &Clock{now: ns} }

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds. Negative d is ignored so
// that device queuing math can never move a worker backwards in time.
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to time t if t is in the future.
// It returns the amount of time skipped (zero if t is in the past).
func (c *Clock) AdvanceTo(t int64) int64 {
	if t <= c.now {
		return 0
	}
	d := t - c.now
	c.now = t
	return d
}

// Seconds returns the current virtual time in seconds.
func (c *Clock) Seconds() float64 { return float64(c.now) / 1e9 }
