// Package policy defines the paper's data-migration policy taxonomy (§3.5):
// a policy is the probability tuple ⟨Dr, Dw, Nr, Nw⟩ governing where pages
// move in the DRAM–NVM–SSD hierarchy.
//
//   - Dr: probability of migrating a page from NVM to DRAM while serving a
//     read (§3.1). Dr = 1 is the eager policy; small Dr is lazy and keeps
//     warm pages on NVM where the CPU can operate on them directly.
//   - Dw: probability of routing a write through DRAM rather than writing
//     directly to NVM (§3.2). Dw = 1 matches a canonical DRAM-SSD system.
//   - Nr: probability of installing a page fetched from SSD into the NVM
//     buffer; with probability 1-Nr the page goes straight to DRAM,
//     bypassing NVM (§3.3).
//   - Nw: probability of admitting a dirty page evicted from DRAM into the
//     NVM buffer; with probability 1-Nw it is written straight to SSD
//     (§3.4). HyMem replaces this Bernoulli trial with its admission queue.
//
// Table 3 of the paper defines three named policies, reproduced here as
// Hymem, SpitfireEager and SpitfireLazy.
package policy

import "fmt"

// NwMode selects how NVM admission on the DRAM-eviction path is decided.
type NwMode int

const (
	// NwProbabilistic admits with probability Nw (Spitfire's approach).
	NwProbabilistic NwMode = iota
	// NwAdmissionQueue admits using HyMem's admission queue; the Nw
	// probability is ignored.
	NwAdmissionQueue
)

// Policy is the migration-policy tuple ⟨Dr, Dw, Nr, Nw⟩.
type Policy struct {
	Dr, Dw, Nr, Nw float64
	NwMode         NwMode
}

// Table 3: migration policies used in the paper's ablation study.
var (
	// Hymem eagerly migrates to DRAM and gates NVM admission with the
	// admission queue (Nr = 0: SSD fetches bypass NVM).
	Hymem = Policy{Dr: 1, Dw: 1, Nr: 0, Nw: 1, NwMode: NwAdmissionQueue}
	// SpitfireEager uses the default (eager) paths everywhere.
	SpitfireEager = Policy{Dr: 1, Dw: 1, Nr: 1, Nw: 1}
	// SpitfireLazy is the paper's recommended lazy configuration:
	// Dr = Dw = 0.01, Nr = 0.2, Nw = 1 (§3.3, Table 3).
	SpitfireLazy = Policy{Dr: 0.01, Dw: 0.01, Nr: 0.2, Nw: 1}
)

// Uniform returns a policy with every probability set to p (used by the
// lockstep sweeps in Figures 6 and 7).
func Uniform(p float64) Policy { return Policy{Dr: p, Dw: p, Nr: p, Nw: p} }

// WithD returns a copy of p with Dr and Dw set to d in lockstep (Figure 6).
func (p Policy) WithD(d float64) Policy { p.Dr, p.Dw = d, d; return p }

// WithN returns a copy of p with Nr and Nw set to n in lockstep (Figure 7).
func (p Policy) WithN(n float64) Policy { p.Nr, p.Nw = n, n; return p }

// Validate reports an error if any probability lies outside [0, 1].
func (p Policy) Validate() error {
	for _, v := range [...]struct {
		name string
		val  float64
	}{{"Dr", p.Dr}, {"Dw", p.Dw}, {"Nr", p.Nr}, {"Nw", p.Nw}} {
		if v.val < 0 || v.val > 1 {
			return fmt.Errorf("policy: %s = %v outside [0, 1]", v.name, v.val)
		}
	}
	return nil
}

// String renders the tuple in the paper's notation.
func (p Policy) String() string {
	nw := fmt.Sprintf("%g", p.Nw)
	if p.NwMode == NwAdmissionQueue {
		nw = "AdmQueue"
	}
	return fmt.Sprintf("⟨Dr=%g, Dw=%g, Nr=%g, Nw=%s⟩", p.Dr, p.Dw, p.Nr, nw)
}

// Ladder is the discrete set of probabilities the adaptive tuner explores.
// It matches the values the paper sweeps in its policy experiments.
var Ladder = []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5, 1}

// LadderIndex returns the index of the ladder rung closest to v.
func LadderIndex(v float64) int {
	best, bestDist := 0, -1.0
	for i, r := range Ladder {
		d := v - r
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
