package policy

import "testing"

func TestTable3Presets(t *testing.T) {
	// Table 3 of the paper.
	if Hymem.Dr != 1 || Hymem.Dw != 1 || Hymem.Nr != 0 || Hymem.NwMode != NwAdmissionQueue {
		t.Fatalf("Hymem preset diverges from Table 3: %v", Hymem)
	}
	if SpitfireEager != (Policy{Dr: 1, Dw: 1, Nr: 1, Nw: 1}) {
		t.Fatalf("SpitfireEager preset diverges from Table 3: %v", SpitfireEager)
	}
	if SpitfireLazy.Dr != 0.01 || SpitfireLazy.Dw != 0.01 || SpitfireLazy.Nr != 0.2 || SpitfireLazy.Nw != 1 {
		t.Fatalf("SpitfireLazy preset diverges from Table 3: %v", SpitfireLazy)
	}
}

func TestValidate(t *testing.T) {
	if err := SpitfireLazy.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Policy{Dr: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("Dr = 1.5 validated")
	}
	bad = Policy{Nw: -0.1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Nw = -0.1 validated")
	}
}

func TestLockstepHelpers(t *testing.T) {
	p := SpitfireEager.WithD(0.1)
	if p.Dr != 0.1 || p.Dw != 0.1 || p.Nr != 1 || p.Nw != 1 {
		t.Fatalf("WithD: %v", p)
	}
	p = SpitfireEager.WithN(0.01)
	if p.Nr != 0.01 || p.Nw != 0.01 || p.Dr != 1 {
		t.Fatalf("WithN: %v", p)
	}
	u := Uniform(0.5)
	if u.Dr != 0.5 || u.Dw != 0.5 || u.Nr != 0.5 || u.Nw != 0.5 {
		t.Fatalf("Uniform: %v", u)
	}
}

func TestString(t *testing.T) {
	if s := Hymem.String(); s != "⟨Dr=1, Dw=1, Nr=0, Nw=AdmQueue⟩" {
		t.Fatalf("Hymem.String() = %q", s)
	}
	if s := SpitfireLazy.String(); s != "⟨Dr=0.01, Dw=0.01, Nr=0.2, Nw=1⟩" {
		t.Fatalf("SpitfireLazy.String() = %q", s)
	}
}

func TestLadder(t *testing.T) {
	// The ladder must be sorted and span [0, 1].
	for i := 1; i < len(Ladder); i++ {
		if Ladder[i] <= Ladder[i-1] {
			t.Fatalf("ladder not strictly increasing at %d", i)
		}
	}
	if Ladder[0] != 0 || Ladder[len(Ladder)-1] != 1 {
		t.Fatal("ladder does not span [0, 1]")
	}
	for i, v := range Ladder {
		if LadderIndex(v) != i {
			t.Fatalf("LadderIndex(%v) = %d, want %d", v, LadderIndex(v), i)
		}
	}
	if LadderIndex(0.009) != 1 { // closest to 0.01
		t.Fatalf("LadderIndex(0.009) = %d", LadderIndex(0.009))
	}
	if LadderIndex(0.9) != len(Ladder)-1 {
		t.Fatalf("LadderIndex(0.9) = %d", LadderIndex(0.9))
	}
}
