package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free histogram with logarithmic buckets (one per
// power of two), suitable for recording per-operation latencies from many
// workers. The paper reports only throughput; per-operation latency
// percentiles are a natural extension the harness exposes on top of the
// virtual clock.
type Histogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Observe records one value (e.g. simulated nanoseconds for one op).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns an upper bound on the p-th percentile (p in [0, 100]):
// the top of the bucket containing that rank, clamped to the observed max.
// Bucket resolution is one power of two.
func (h *Histogram) Percentile(p float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			top := int64(1)<<uint(i+1) - 1
			if m := h.max.Load(); top > m {
				top = m
			}
			return top
		}
	}
	return h.max.Load()
}

// HistSnapshot is a point-in-time copy of a histogram's state. Snapshots
// subtract, so callers can compute per-phase distributions (warmup vs
// measure) from one cumulative histogram.
type HistSnapshot struct {
	Buckets [64]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Snapshot copies the histogram's current state. Concurrent Observe calls
// may land between field reads; the skew is at most the handful of
// observations racing the copy.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Sub returns the observations recorded between base and s. Max cannot be
// windowed (the histogram keeps only a cumulative maximum), so the result
// carries s.Max — the max as of the later snapshot.
func (s HistSnapshot) Sub(base HistSnapshot) HistSnapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] -= base.Buckets[i]
	}
	out.Count -= base.Count
	out.Sum -= base.Sum
	return out
}

// Mean returns the snapshot's average observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile mirrors Histogram.Percentile over the snapshot's buckets.
func (s HistSnapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen >= rank {
			top := int64(1)<<uint(i+1) - 1
			if top > s.Max {
				top = s.Max
			}
			return top
		}
	}
	return s.Max
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50≤%d p99≤%d max=%d",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}
