package metrics

import (
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: %s", h)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 22 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
	// p100 is clamped to the true max.
	if h.Percentile(100) != 100 {
		t.Fatalf("p100 = %d", h.Percentile(100))
	}
	// The median of {1,2,3,4,100} is 3; the bucket bound for 3 is 3.
	if p := h.Percentile(50); p < 3 || p > 3 {
		t.Fatalf("p50 = %d, want 3 (bucket top)", p)
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// Bucketed upper bounds: the true p must not exceed the reported one,
	// and the reported one is at most 2x the true value (power-of-two
	// buckets).
	for _, tc := range []struct {
		p    float64
		true int64
	}{{50, 500}, {90, 900}, {99, 990}} {
		got := h.Percentile(tc.p)
		if got < tc.true {
			t.Fatalf("p%.0f = %d below true %d", tc.p, got, tc.true)
		}
		if got > 2*tc.true {
			t.Fatalf("p%.0f = %d more than 2x true %d", tc.p, got, tc.true)
		}
	}
	// Out-of-range p clamps.
	if h.Percentile(-5) == 0 || h.Percentile(200) != h.Max() {
		t.Fatal("percentile clamping broken")
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := NewHistogram()
	h.Observe(-7)
	h.Observe(0)
	if h.Count() != 2 || h.Max() != 0 {
		t.Fatalf("negative handling: %s", h)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				h.Observe(int64(w*1000 + i%997))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80_000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() < 7000 {
		t.Fatalf("max = %d", h.Max())
	}
}
