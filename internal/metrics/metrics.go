// Package metrics provides the low-overhead counters the buffer manager and
// the experiment harness use to report the statistics the paper measures:
// per-tier hits, migrations along each data-flow path of Figure 3, eviction
// and write-back counts, and NVM write volume.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is an atomic monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the value (used by Reset).
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Set is a named collection of counters with stable ordering, used for
// human-readable experiment reports.
type Set struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewSet creates an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns (creating if needed) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	s.mu.Unlock()
	return c
}

// Snapshot returns a copy of all counter values. Map iteration order is
// unspecified; renderers that need stable output use Names, Each or Format.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	out := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Load()
	}
	s.mu.Unlock()
	return out
}

// Names returns every counter name in sorted order.
func (s *Set) Names() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// Each calls fn once per counter in sorted name order. The values are read
// after the name list is built, so a counter created concurrently may be
// missed but an included value is never stale beyond its own load.
func (s *Set) Each(fn func(name string, value int64)) {
	for _, n := range s.Names() {
		fn(n, s.Counter(n).Load())
	}
}

// Format writes one "name value" line per counter in sorted name order —
// deterministic output for reports and golden tests.
func (s *Set) Format(w io.Writer) error {
	var err error
	s.Each(func(name string, value int64) {
		if err == nil {
			_, err = fmt.Fprintf(w, "%s %d\n", name, value)
		}
	})
	return err
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	s.mu.Lock()
	for _, c := range s.counters {
		c.Store(0)
	}
	s.mu.Unlock()
}

// String renders the set sorted by name.
func (s *Set) String() string {
	var b strings.Builder
	s.Each(func(name string, value int64) {
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, value)
	})
	return b.String()
}
