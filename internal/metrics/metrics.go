// Package metrics provides the low-overhead counters the buffer manager and
// the experiment harness use to report the statistics the paper measures:
// per-tier hits, migrations along each data-flow path of Figure 3, eviction
// and write-back counts, and NVM write volume.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is an atomic monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the value (used by Reset).
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Set is a named collection of counters with stable ordering, used for
// human-readable experiment reports.
type Set struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewSet creates an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns (creating if needed) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	s.mu.Unlock()
	return c
}

// Snapshot returns a copy of all counter values.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	out := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Load()
	}
	s.mu.Unlock()
	return out
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	s.mu.Lock()
	for _, c := range s.counters {
		c.Store(0)
	}
	s.mu.Unlock()
}

// String renders the set sorted by name.
func (s *Set) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", n, snap[n])
	}
	return b.String()
}
