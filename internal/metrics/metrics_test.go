package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d, want 5", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Load = %d, want 8000", c.Load())
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("a").Add(2)
	s.Counter("b").Inc()
	if s.Counter("a") != s.Counter("a") {
		t.Fatal("Counter not idempotent per name")
	}
	snap := s.Snapshot()
	if snap["a"] != 2 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if got := s.String(); got != "a=2 b=1" {
		t.Fatalf("String() = %q", got)
	}
	s.Reset()
	if s.Counter("a").Load() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}
