package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d, want 5", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Load = %d, want 8000", c.Load())
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("a").Add(2)
	s.Counter("b").Inc()
	if s.Counter("a") != s.Counter("a") {
		t.Fatal("Counter not idempotent per name")
	}
	snap := s.Snapshot()
	if snap["a"] != 2 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if got := s.String(); got != "a=2 b=1" {
		t.Fatalf("String() = %q", got)
	}
	s.Reset()
	if s.Counter("a").Load() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestSetStableOrdering(t *testing.T) {
	s := NewSet()
	// Register in deliberately unsorted order; exposition must still be
	// deterministic and sorted regardless of map iteration order.
	for i, name := range []string{"zeta", "alpha", "mu", "beta", "omega"} {
		s.Counter(name).Add(int64(i + 1))
	}
	wantNames := []string{"alpha", "beta", "mu", "omega", "zeta"}
	if got := s.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("Names() = %v, want %v", got, wantNames)
	}
	var seen []string
	s.Each(func(name string, value int64) { seen = append(seen, name) })
	if !reflect.DeepEqual(seen, wantNames) {
		t.Fatalf("Each order = %v, want %v", seen, wantNames)
	}
	var b strings.Builder
	if err := s.Format(&b); err != nil {
		t.Fatal(err)
	}
	want := "alpha 2\nbeta 4\nmu 3\nomega 5\nzeta 1\n"
	if b.String() != want {
		t.Fatalf("Format = %q, want %q", b.String(), want)
	}
	// Repeated renderings are identical (no map-order leakage).
	for i := 0; i < 20; i++ {
		var b2 strings.Builder
		if err := s.Format(&b2); err != nil {
			t.Fatal(err)
		}
		if b2.String() != want {
			t.Fatalf("Format unstable on iteration %d: %q", i, b2.String())
		}
	}
}
