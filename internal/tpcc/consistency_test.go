package tpcc

import (
	"testing"

	"github.com/spitfire-db/spitfire/internal/engine"
)

// TestConsistencyConditions runs a mixed workload and then audits the
// database against (scaled versions of) the TPC-C consistency conditions
// of clause 3.3.2.
func TestConsistencyConditions(t *testing.T) {
	w := newWorkload(t, 2)
	wk := w.NewWorker(71)
	if err := wk.Run(600); err != nil {
		t.Fatal(err)
	}
	ctx := wk.ctx
	txn := w.DB.Begin()
	defer txn.Commit(ctx)

	bufW := make([]byte, WarehouseSize)
	bufD := make([]byte, DistrictSize)
	bufO := make([]byte, OrderSize)

	for wh := 1; wh <= w.Warehouses; wh++ {
		// Condition 1-ish: warehouse YTD equals the sum of its districts'
		// YTDs (both start consistent and every Payment updates both).
		if err := w.warehouse.Read(ctx, txn, wKey(wh), bufW); err != nil {
			t.Fatal(err)
		}
		var wr Warehouse
		wr.decode(bufW)
		var sumYTD int64
		for d := 1; d <= w.Scale.Districts; d++ {
			if err := w.district.Read(ctx, txn, dKey(wh, d), bufD); err != nil {
				t.Fatal(err)
			}
			var dist District
			dist.decode(bufD)
			sumYTD += dist.YTD

			// Condition 2: d_next_o_id - 1 equals the maximum order id
			// present for the district.
			maxOID := 0
			w.order.ScanKeys(oKey(wh, d, 0), func(k uint64, _ engine.RID) bool {
				if k>>24 != dKey(wh, d) {
					return false
				}
				if oid := int(k & 0xFFFFFF); oid > maxOID {
					maxOID = oid
				}
				return true
			})
			if maxOID != int(dist.NextOID)-1 {
				t.Errorf("w%d d%d: max order id %d != next_o_id-1 %d",
					wh, d, maxOID, int(dist.NextOID)-1)
			}

			// Condition 3: every undelivered order (in new_order) exists in
			// orders with carrier 0; every delivered one has a carrier.
			w.newOrder.ScanKeys(oKey(wh, d, 0), func(k uint64, _ engine.RID) bool {
				if k>>24 != dKey(wh, d) {
					return false
				}
				if err := w.order.Read(ctx, txn, k, bufO); err != nil {
					t.Errorf("new_order %d has no order row: %v", k, err)
					return false
				}
				var ord Order
				ord.decode(bufO)
				if ord.Carrier != 0 {
					t.Errorf("order %d queued in new_order but already delivered", k)
					return false
				}
				return true
			})
		}
		if wr.YTD != sumYTD {
			t.Errorf("w%d: warehouse YTD %d != sum of district YTDs %d", wh, wr.YTD, sumYTD)
		}
	}

	// Condition 4-ish: every order's line count matches its stored
	// order-line rows (sampled on the first district).
	w.order.ScanKeys(oKey(1, 1, 0), func(k uint64, _ engine.RID) bool {
		if k>>24 != dKey(1, 1) {
			return false
		}
		if err := w.order.Read(ctx, txn, k, bufO); err != nil {
			return true // rolled-back insert; index entry pruned at commit only
		}
		var ord Order
		ord.decode(bufO)
		oid := int(k & 0xFFFFFF)
		lines := 0
		bufOL := make([]byte, OrderLineSize)
		for l := 1; l <= int(ord.OLCnt); l++ {
			if err := w.orderLine.Read(ctx, txn, olKey(1, 1, oid, l), bufOL); err == nil {
				lines++
			}
		}
		if lines != int(ord.OLCnt) {
			t.Errorf("order %d has %d lines, header says %d", k, lines, ord.OLCnt)
			return false
		}
		return true
	})
}

// TestOrderStatusSeesNewestOrder directs a NewOrder at a known customer and
// checks the by-customer index yields that order first.
func TestOrderStatusSeesNewestOrder(t *testing.T) {
	w := newWorkload(t, 1)
	wk := w.NewWorker(73)
	ctx := wk.ctx

	// Find the district 1 next order id, then commit a NewOrder for it.
	txn := w.DB.Begin()
	bufD := make([]byte, DistrictSize)
	if err := w.district.Read(ctx, txn, dKey(1, 1), bufD); err != nil {
		t.Fatal(err)
	}
	var dist District
	dist.decode(bufD)
	txn.Commit(ctx)

	committed := false
	for i := 0; i < 30 && !committed; i++ {
		txn := w.DB.Begin()
		// newOrder picks random (wh, d); retry until it hits (1, 1) by
		// running enough attempts (with one warehouse, d is 1-in-10).
		if err := wk.newOrder(txn); err != nil {
			txn.Abort(ctx)
			continue
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		committed = true
	}
	if !committed {
		t.Fatal("no NewOrder committed")
	}

	// The by-customer index must serve newest-first: scan any customer with
	// orders and verify descending order ids.
	checked := 0
	for c := 1; c <= w.Scale.CustomersPerDistrict && checked == 0; c++ {
		var oids []int
		from := orderByCustKey(1, 1, c, 0xFFFFFF)
		w.orderByCust.Scan(from, func(k, v uint64) bool {
			if k>>24 != cKey(1, 1, c) {
				return false
			}
			oids = append(oids, int(v&0xFFFFFF))
			return true
		})
		if len(oids) >= 2 {
			checked++
			for i := 1; i < len(oids); i++ {
				if oids[i] > oids[i-1] {
					t.Fatalf("customer %d orders not newest-first: %v", c, oids)
				}
			}
		}
	}
}
