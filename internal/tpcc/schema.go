// Package tpcc implements the TPC-C benchmark (§6.1 of the paper): an
// order-entry workload over nine tables with the five standard transaction
// types (New-Order, Payment, Order-Status, Delivery, Stock-Level), 88% of
// which modify the database.
//
// The implementation follows the TPC-C specification's transaction logic
// and non-uniform key distributions (NURand, the syllable-composed customer
// last names), with the per-warehouse cardinalities scaled down by the same
// factor as the rest of the reproduction (the paper's 350 warehouses ≈
// 100 GB becomes ≈ 100 MB; see ScaleConfig). Simplifications: no think
// times or keying times (the paper measures saturated throughput), and
// secondary indexes are maintained non-transactionally (dangling entries
// are filtered by MVCC visibility on the base table).
package tpcc

import (
	"encoding/binary"
	"fmt"
)

// Table identifiers.
const (
	TabWarehouse uint32 = 1
	TabDistrict  uint32 = 2
	TabCustomer  uint32 = 3
	TabHistory   uint32 = 4
	TabNewOrder  uint32 = 5
	TabOrder     uint32 = 6
	TabOrderLine uint32 = 7
	TabItem      uint32 = 8
	TabStock     uint32 = 9
)

// Tuple payload sizes (bytes). Fixed layouts, documented field by field on
// the encode/decode helpers below.
const (
	WarehouseSize = 96
	DistrictSize  = 96
	CustomerSize  = 560
	HistorySize   = 64
	NewOrderSize  = 16
	OrderSize     = 48
	OrderLineSize = 80
	ItemSize      = 96
	StockSize     = 320
)

// ScaleConfig holds the scaled-down per-warehouse cardinalities.
type ScaleConfig struct {
	Districts            int // spec: 10
	CustomersPerDistrict int // spec: 3000 -> scaled 30
	Items                int // spec: 100000 -> scaled 1000
	InitialOrders        int // spec: 3000 per district -> scaled 30
}

// DefaultScale matches the reproduction's 1 GB → 1 MB scaling.
var DefaultScale = ScaleConfig{
	Districts:            10,
	CustomersPerDistrict: 30,
	Items:                1000,
	InitialOrders:        30,
}

// BytesPerWarehouse estimates the loaded size of one warehouse, so callers
// can pick a warehouse count for a target database size.
func (s ScaleConfig) BytesPerWarehouse() int64 {
	perOrderLines := 10 // average ol_cnt
	n := int64(0)
	n += WarehouseSize + 16
	n += int64(s.Districts) * (DistrictSize + 16)
	n += int64(s.Districts*s.CustomersPerDistrict) * (CustomerSize + 16)
	n += int64(s.Items) * (StockSize + 16) // stock rows per warehouse
	n += int64(s.Districts*s.InitialOrders) * int64(OrderSize+16+perOrderLines*(OrderLineSize+16))
	return n
}

// WarehousesForBytes picks a warehouse count for a target database size.
func (s ScaleConfig) WarehousesForBytes(bytes int64) int {
	w := int(bytes / s.BytesPerWarehouse())
	if w < 1 {
		w = 1
	}
	return w
}

// ---- key packing ----------------------------------------------------------

// Primary keys are packed into uint64s: warehouse (16 bits), district
// (8 bits), and an entity-specific low field.

func wKey(w int) uint64       { return uint64(w) }
func dKey(w, d int) uint64    { return uint64(w)<<8 | uint64(d) }
func cKey(w, d, c int) uint64 { return dKey(w, d)<<20 | uint64(c) }
func iKey(i int) uint64       { return uint64(i) }
func sKey(w, i int) uint64    { return uint64(w)<<24 | uint64(i) }
func oKey(w, d, o int) uint64 { return dKey(w, d)<<24 | uint64(o) }
func olKey(w, d, o, l int) uint64 {
	return oKey(w, d, o)<<4 | uint64(l)
}

// orderByCustKey indexes a customer's orders so that an ascending scan
// yields the newest order first (the order id is bit-inverted).
func orderByCustKey(w, d, c, o int) uint64 {
	return cKey(w, d, c)<<24 | uint64(0xFFFFFF-o)
}

// custNameKey builds the sortable composite key for the customer-by-name
// secondary index.
func custNameKey(w, d int, last, first string, c int) string {
	return fmt.Sprintf("%05d.%03d.%-16s.%-16s.%07d", w, d, last, first, c)
}

// custNamePrefix is the scan prefix for all customers with a last name.
func custNamePrefix(w, d int, last string) string {
	return fmt.Sprintf("%05d.%03d.%-16s.", w, d, last)
}

// ---- tuple layouts ---------------------------------------------------------

var le = binary.LittleEndian

// Warehouse: [0,8) ytd cents | [8,16) tax basis points | [16,26) name.
type Warehouse struct {
	YTD  int64
	Tax  int64
	Name string
}

func (t *Warehouse) encode(p []byte) {
	le.PutUint64(p[0:], uint64(t.YTD))
	le.PutUint64(p[8:], uint64(t.Tax))
	copy(p[16:26], t.Name)
}

func (t *Warehouse) decode(p []byte) {
	t.YTD = int64(le.Uint64(p[0:]))
	t.Tax = int64(le.Uint64(p[8:]))
	t.Name = trim(p[16:26])
}

// District: [0,8) ytd | [8,16) tax | [16,20) next order id | [20,30) name.
type District struct {
	YTD     int64
	Tax     int64
	NextOID uint32
	Name    string
}

func (t *District) encode(p []byte) {
	le.PutUint64(p[0:], uint64(t.YTD))
	le.PutUint64(p[8:], uint64(t.Tax))
	le.PutUint32(p[16:], t.NextOID)
	copy(p[20:30], t.Name)
}

func (t *District) decode(p []byte) {
	t.YTD = int64(le.Uint64(p[0:]))
	t.Tax = int64(le.Uint64(p[8:]))
	t.NextOID = le.Uint32(p[16:])
	t.Name = trim(p[20:30])
}

// Customer: [0,8) balance cents | [8,16) ytd payment | [16,20) payment cnt |
// [20,24) delivery cnt | [24,40) last | [40,56) first | [56,64) discount |
// [64,66) credit | [72,472) data.
type Customer struct {
	Balance     int64
	YTDPayment  int64
	PaymentCnt  uint32
	DeliveryCnt uint32
	Last        string
	First       string
	Discount    int64
	Credit      string
}

func (t *Customer) encode(p []byte) {
	le.PutUint64(p[0:], uint64(t.Balance))
	le.PutUint64(p[8:], uint64(t.YTDPayment))
	le.PutUint32(p[16:], t.PaymentCnt)
	le.PutUint32(p[20:], t.DeliveryCnt)
	copy(p[24:40], t.Last)
	copy(p[40:56], t.First)
	le.PutUint64(p[56:], uint64(t.Discount))
	copy(p[64:66], t.Credit)
}

func (t *Customer) decode(p []byte) {
	t.Balance = int64(le.Uint64(p[0:]))
	t.YTDPayment = int64(le.Uint64(p[8:]))
	t.PaymentCnt = le.Uint32(p[16:])
	t.DeliveryCnt = le.Uint32(p[20:])
	t.Last = trim(p[24:40])
	t.First = trim(p[40:56])
	t.Discount = int64(le.Uint64(p[56:]))
	t.Credit = trim(p[64:66])
}

// History: [0,8) amount cents | [8,16) date | [16,24) customer key.
type History struct {
	Amount int64
	Date   uint64
	CKey   uint64
}

func (t *History) encode(p []byte) {
	le.PutUint64(p[0:], uint64(t.Amount))
	le.PutUint64(p[8:], t.Date)
	le.PutUint64(p[16:], t.CKey)
}

// Order: [0,4) customer id | [8,16) entry date | [16,17) carrier |
// [17,18) line count | [18,19) all-local flag.
type Order struct {
	CID      uint32
	EntryD   uint64
	Carrier  uint8
	OLCnt    uint8
	AllLocal uint8
}

func (t *Order) encode(p []byte) {
	le.PutUint32(p[0:], t.CID)
	le.PutUint64(p[8:], t.EntryD)
	p[16] = t.Carrier
	p[17] = t.OLCnt
	p[18] = t.AllLocal
}

func (t *Order) decode(p []byte) {
	t.CID = le.Uint32(p[0:])
	t.EntryD = le.Uint64(p[8:])
	t.Carrier = p[16]
	t.OLCnt = p[17]
	t.AllLocal = p[18]
}

// OrderLine: [0,4) item id | [4,6) supply warehouse | [6,7) quantity |
// [8,16) amount cents | [16,24) delivery date | [24,48) dist info.
type OrderLine struct {
	IID       uint32
	SupplyW   uint16
	Quantity  uint8
	Amount    int64
	DeliveryD uint64
}

func (t *OrderLine) encode(p []byte) {
	le.PutUint32(p[0:], t.IID)
	le.PutUint16(p[4:], t.SupplyW)
	p[6] = t.Quantity
	le.PutUint64(p[8:], uint64(t.Amount))
	le.PutUint64(p[16:], t.DeliveryD)
}

func (t *OrderLine) decode(p []byte) {
	t.IID = le.Uint32(p[0:])
	t.SupplyW = le.Uint16(p[4:])
	t.Quantity = p[6]
	t.Amount = int64(le.Uint64(p[8:]))
	t.DeliveryD = le.Uint64(p[16:])
}

// Item: [0,4) image id | [8,16) price cents | [16,40) name | [40,90) data.
type Item struct {
	ImageID uint32
	Price   int64
	Name    string
}

func (t *Item) encode(p []byte) {
	le.PutUint32(p[0:], t.ImageID)
	le.PutUint64(p[8:], uint64(t.Price))
	copy(p[16:40], t.Name)
}

func (t *Item) decode(p []byte) {
	t.ImageID = le.Uint32(p[0:])
	t.Price = int64(le.Uint64(p[8:]))
	t.Name = trim(p[16:40])
}

// Stock: [0,4) quantity | [4,8) ytd | [8,12) order cnt | [12,16) remote cnt |
// [16,66) data | [66,306) per-district info.
type Stock struct {
	Quantity  int32
	YTD       uint32
	OrderCnt  uint32
	RemoteCnt uint32
}

func (t *Stock) encode(p []byte) {
	le.PutUint32(p[0:], uint32(t.Quantity))
	le.PutUint32(p[4:], t.YTD)
	le.PutUint32(p[8:], t.OrderCnt)
	le.PutUint32(p[12:], t.RemoteCnt)
}

func (t *Stock) decode(p []byte) {
	t.Quantity = int32(le.Uint32(p[0:]))
	t.YTD = le.Uint32(p[4:])
	t.OrderCnt = le.Uint32(p[8:])
	t.RemoteCnt = le.Uint32(p[12:])
}

func trim(b []byte) string {
	end := len(b)
	for end > 0 && (b[end-1] == 0 || b[end-1] == ' ') {
		end--
	}
	return string(b[:end])
}

// ---- spec randomness --------------------------------------------------------

// lastNameSyllables are the ten syllables of clause 4.3.2.3.
var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName composes a customer last name from a number in [0, 999].
func LastName(num int) string {
	return lastNameSyllables[num/100] + lastNameSyllables[(num/10)%10] + lastNameSyllables[num%10]
}
