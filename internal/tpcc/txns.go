package tpcc

import (
	"errors"
	"fmt"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
)

// String names the transaction type.
func (t TxnType) String() string {
	switch t {
	case TxnNewOrder:
		return "NewOrder"
	case TxnPayment:
		return "Payment"
	case TxnOrderStatus:
		return "OrderStatus"
	case TxnDelivery:
		return "Delivery"
	case TxnStockLevel:
		return "StockLevel"
	}
	return fmt.Sprintf("TxnType(%d)", int(t))
}

// pickTxn draws a transaction type with the standard mix: 45% New-Order,
// 43% Payment, 4% each for the rest (clause 5.2.3 deck probabilities).
func pickTxn(rng *zipf.Rand) TxnType {
	r := rng.Uint64n(100)
	switch {
	case r < 45:
		return TxnNewOrder
	case r < 88:
		return TxnPayment
	case r < 92:
		return TxnOrderStatus
	case r < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// Worker drives the workload from one goroutine.
type Worker struct {
	w   *Workload
	ctx *core.Ctx
	rng *zipf.Rand

	bufC, bufD, bufW, bufO, bufOL, bufS, bufI, bufNO []byte

	Committed int64
	Aborted   int64
	PerType   [5]int64
}

// NewWorker creates a worker with its own virtual clock and PRNG.
func (w *Workload) NewWorker(seed uint64) *Worker {
	return &Worker{
		w:     w,
		ctx:   core.NewCtx(seed ^ 0x7CC5EED),
		rng:   zipf.NewRand(seed),
		bufC:  make([]byte, CustomerSize),
		bufD:  make([]byte, DistrictSize),
		bufW:  make([]byte, WarehouseSize),
		bufO:  make([]byte, OrderSize),
		bufOL: make([]byte, OrderLineSize),
		bufS:  make([]byte, StockSize),
		bufI:  make([]byte, ItemSize),
		bufNO: make([]byte, NewOrderSize),
	}
}

// Ctx exposes the worker's context (for throughput accounting).
func (wk *Worker) Ctx() *core.Ctx { return wk.ctx }

// Op runs one transaction from the standard mix and reports whether it
// committed (false means an MVTO conflict aborted it).
func (wk *Worker) Op() (bool, error) {
	t := pickTxn(wk.rng)
	txn := wk.w.DB.Begin()
	var err error
	switch t {
	case TxnNewOrder:
		err = wk.newOrder(txn)
	case TxnPayment:
		err = wk.payment(txn)
	case TxnOrderStatus:
		err = wk.orderStatus(txn)
	case TxnDelivery:
		err = wk.delivery(txn)
	case TxnStockLevel:
		err = wk.stockLevel(txn)
	}
	if err != nil {
		if aerr := txn.Abort(wk.ctx); aerr != nil {
			return false, aerr
		}
		if errors.Is(err, engine.ErrConflict) || errors.Is(err, engine.ErrNotFound) {
			// Not-found arises from racing deliveries and dangling
			// secondary-index entries; both roll back and retry later.
			wk.Aborted++
			return false, nil
		}
		return false, fmt.Errorf("tpcc: %s: %w", t, err)
	}
	if err := txn.Commit(wk.ctx); err != nil {
		return false, err
	}
	wk.Committed++
	wk.PerType[t]++
	return true, nil
}

// Run executes n transactions.
func (wk *Worker) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := wk.Op(); err != nil {
			return err
		}
	}
	return nil
}

func (wk *Worker) homeWarehouse() int {
	return 1 + int(wk.rng.Uint64n(uint64(wk.w.Warehouses)))
}

func (wk *Worker) randomCustomer() int {
	return 1 + int(nurand(wk.rng, 1023, 0, uint64(wk.w.Scale.CustomersPerDistrict-1)))
}

func (wk *Worker) randomItem() int {
	return 1 + int(nurand(wk.rng, 8191, 0, uint64(wk.w.Scale.Items-1)))
}

// newOrder implements the New-Order transaction (clause 2.4): read
// warehouse and customer, bump the district's next-order id, insert the
// order and its new-order queue entry, and for each of 5-15 lines read the
// item and update its stock.
func (wk *Worker) newOrder(txn *engine.Txn) error {
	w := wk.w
	ctx := wk.ctx
	wh := wk.homeWarehouse()
	d := 1 + int(wk.rng.Uint64n(uint64(w.Scale.Districts)))
	c := wk.randomCustomer()

	if err := w.warehouse.Read(ctx, txn, wKey(wh), wk.bufW); err != nil {
		return err
	}
	if err := w.customer.Read(ctx, txn, cKey(wh, d, c), wk.bufC); err != nil {
		return err
	}

	// District read-modify-write: allocate the order id.
	if err := w.district.Read(ctx, txn, dKey(wh, d), wk.bufD); err != nil {
		return err
	}
	var dist District
	dist.decode(wk.bufD)
	oid := int(dist.NextOID)
	dist.NextOID++
	dist.encode(wk.bufD)
	if err := w.district.Update(ctx, txn, dKey(wh, d), wk.bufD); err != nil {
		return err
	}

	olCnt := 5 + int(wk.rng.Uint64n(11))
	allLocal := uint8(1)

	ord := Order{CID: uint32(c), EntryD: uint64(ctx.Clock.Now()), OLCnt: uint8(olCnt), AllLocal: allLocal}
	ord.encode(wk.bufO)
	if err := w.order.Insert(ctx, txn, oKey(wh, d, oid), wk.bufO); err != nil {
		return err
	}
	no := NewOrder{}
	no.encode(wk.bufNO)
	if err := w.newOrder.Insert(ctx, txn, oKey(wh, d, oid), wk.bufNO); err != nil {
		return err
	}

	for l := 1; l <= olCnt; l++ {
		item := wk.randomItem()
		supplyW := wh
		if w.Warehouses > 1 && wk.rng.Uint64n(100) == 0 {
			// 1% of lines are supplied by a remote warehouse.
			for supplyW == wh {
				supplyW = 1 + int(wk.rng.Uint64n(uint64(w.Warehouses)))
			}
		}
		if err := w.item.Read(ctx, txn, iKey(item), wk.bufI); err != nil {
			return err
		}
		var it Item
		it.decode(wk.bufI)

		if err := w.stock.Read(ctx, txn, sKey(supplyW, item), wk.bufS); err != nil {
			return err
		}
		var st Stock
		st.decode(wk.bufS)
		qty := int32(1 + wk.rng.Uint64n(10))
		if st.Quantity >= qty+10 {
			st.Quantity -= qty
		} else {
			st.Quantity = st.Quantity - qty + 91
		}
		st.YTD += uint32(qty)
		st.OrderCnt++
		if supplyW != wh {
			st.RemoteCnt++
		}
		st.encode(wk.bufS)
		if err := w.stock.Update(ctx, txn, sKey(supplyW, item), wk.bufS); err != nil {
			return err
		}

		ol := OrderLine{IID: uint32(item), SupplyW: uint16(supplyW), Quantity: uint8(qty),
			Amount: int64(qty) * it.Price}
		ol.encode(wk.bufOL)
		if err := w.orderLine.Insert(ctx, txn, olKey(wh, d, oid, l), wk.bufOL); err != nil {
			return err
		}
	}
	// The order-by-customer secondary index is maintained by the engine.
	return nil
}

// payment implements the Payment transaction (clause 2.5): update the
// warehouse and district YTD, select the customer by last name 60% of the
// time, update their balance, and insert a history row.
func (wk *Worker) payment(txn *engine.Txn) error {
	w := wk.w
	ctx := wk.ctx
	wh := wk.homeWarehouse()
	d := 1 + int(wk.rng.Uint64n(uint64(w.Scale.Districts)))
	amount := int64(100 + wk.rng.Uint64n(499901)) // $1.00 - $5000.00 in cents

	if err := w.warehouse.Read(ctx, txn, wKey(wh), wk.bufW); err != nil {
		return err
	}
	var wr Warehouse
	wr.decode(wk.bufW)
	wr.YTD += amount
	wr.encode(wk.bufW)
	if err := w.warehouse.Update(ctx, txn, wKey(wh), wk.bufW); err != nil {
		return err
	}

	if err := w.district.Read(ctx, txn, dKey(wh, d), wk.bufD); err != nil {
		return err
	}
	var dist District
	dist.decode(wk.bufD)
	dist.YTD += amount
	dist.encode(wk.bufD)
	if err := w.district.Update(ctx, txn, dKey(wh, d), wk.bufD); err != nil {
		return err
	}

	// Customer selection: 60% by last name, 40% by id (clause 2.5.1.2).
	var custKey uint64
	if wk.rng.Uint64n(100) < 60 {
		last := LastName(int(nurand(wk.rng, 255, 0, 999)))
		if k, ok := w.customerByName(wh, d, last); ok {
			custKey = k
		} else {
			custKey = cKey(wh, d, wk.randomCustomer())
		}
	} else {
		custKey = cKey(wh, d, wk.randomCustomer())
	}
	if err := w.customer.Read(ctx, txn, custKey, wk.bufC); err != nil {
		return err
	}
	var cust Customer
	cust.decode(wk.bufC)
	cust.Balance -= amount
	cust.YTDPayment += amount
	cust.PaymentCnt++
	cust.encode(wk.bufC)
	if err := w.customer.Update(ctx, txn, custKey, wk.bufC); err != nil {
		return err
	}

	h := History{Amount: amount, Date: uint64(ctx.Clock.Now()), CKey: custKey}
	hp := make([]byte, HistorySize)
	h.encode(hp)
	hid := w.nextHID.Add(1)
	return w.history.Insert(ctx, txn, hid, hp)
}

// orderStatus implements Order-Status (clause 2.6): find the customer (by
// name 60% of the time), their most recent order, and read its lines.
func (wk *Worker) orderStatus(txn *engine.Txn) error {
	w := wk.w
	ctx := wk.ctx
	wh := wk.homeWarehouse()
	d := 1 + int(wk.rng.Uint64n(uint64(w.Scale.Districts)))

	var custKey uint64
	if wk.rng.Uint64n(100) < 60 {
		last := LastName(int(nurand(wk.rng, 255, 0, 999)))
		if k, ok := w.customerByName(wh, d, last); ok {
			custKey = k
		} else {
			custKey = cKey(wh, d, wk.randomCustomer())
		}
	} else {
		custKey = cKey(wh, d, wk.randomCustomer())
	}
	if err := w.customer.Read(ctx, txn, custKey, wk.bufC); err != nil {
		return err
	}
	c := int(custKey & 0xFFFFF)

	// Newest order: ascending scan over the bit-inverted order ids.
	var orderK uint64
	found := false
	from := orderByCustKey(wh, d, c, 0xFFFFFF) // smallest key for this customer
	w.orderByCust.Scan(from, func(k, v uint64) bool {
		if k>>24 != cKey(wh, d, c) {
			return false
		}
		orderK, found = v, true
		return false
	})
	if !found {
		return nil // customer has no orders yet
	}
	if err := w.order.Read(ctx, txn, orderK, wk.bufO); err != nil {
		return err
	}
	var ord Order
	ord.decode(wk.bufO)
	oid := int(orderK & 0xFFFFFF)
	for l := 1; l <= int(ord.OLCnt); l++ {
		if err := w.orderLine.Read(ctx, txn, olKey(wh, d, oid, l), wk.bufOL); err != nil {
			return err
		}
	}
	return nil
}

// delivery implements Delivery (clause 2.7): for each district, pop the
// oldest undelivered order, stamp its carrier and lines, and credit the
// customer.
func (wk *Worker) delivery(txn *engine.Txn) error {
	w := wk.w
	ctx := wk.ctx
	wh := wk.homeWarehouse()
	carrier := uint8(1 + wk.rng.Uint64n(10))

	for d := 1; d <= w.Scale.Districts; d++ {
		// Oldest new-order entry for this district.
		var noKeyFound uint64
		found := false
		w.newOrder.ScanKeys(oKey(wh, d, 0), func(k uint64, _ engine.RID) bool {
			if k>>24 != dKey(wh, d) {
				return false
			}
			noKeyFound, found = k, true
			return false
		})
		if !found {
			continue
		}
		if err := w.newOrder.Delete(ctx, txn, noKeyFound); err != nil {
			return err
		}
		oid := int(noKeyFound & 0xFFFFFF)

		if err := w.order.Read(ctx, txn, noKeyFound, wk.bufO); err != nil {
			return err
		}
		var ord Order
		ord.decode(wk.bufO)
		ord.Carrier = carrier
		ord.encode(wk.bufO)
		if err := w.order.Update(ctx, txn, noKeyFound, wk.bufO); err != nil {
			return err
		}

		var total int64
		now := uint64(ctx.Clock.Now())
		for l := 1; l <= int(ord.OLCnt); l++ {
			lk := olKey(wh, d, oid, l)
			if err := w.orderLine.Read(ctx, txn, lk, wk.bufOL); err != nil {
				return err
			}
			var ol OrderLine
			ol.decode(wk.bufOL)
			ol.DeliveryD = now
			total += ol.Amount
			ol.encode(wk.bufOL)
			if err := w.orderLine.Update(ctx, txn, lk, wk.bufOL); err != nil {
				return err
			}
		}

		ck := cKey(wh, d, int(ord.CID))
		if err := w.customer.Read(ctx, txn, ck, wk.bufC); err != nil {
			return err
		}
		var cust Customer
		cust.decode(wk.bufC)
		cust.Balance += total
		cust.DeliveryCnt++
		cust.encode(wk.bufC)
		if err := w.customer.Update(ctx, txn, ck, wk.bufC); err != nil {
			return err
		}
	}
	return nil
}

// stockLevel implements Stock-Level (clause 2.8): examine the district's
// last 20 orders and count distinct items whose stock is below a threshold.
func (wk *Worker) stockLevel(txn *engine.Txn) error {
	w := wk.w
	ctx := wk.ctx
	wh := wk.homeWarehouse()
	d := 1 + int(wk.rng.Uint64n(uint64(w.Scale.Districts)))
	threshold := int32(10 + wk.rng.Uint64n(11))

	if err := w.district.Read(ctx, txn, dKey(wh, d), wk.bufD); err != nil {
		return err
	}
	var dist District
	dist.decode(wk.bufD)

	lo := int(dist.NextOID) - 20
	if lo < 1 {
		lo = 1
	}
	seen := make(map[uint32]bool)
	low := 0
	for oid := lo; oid < int(dist.NextOID); oid++ {
		if err := w.order.Read(ctx, txn, oKey(wh, d, oid), wk.bufO); err != nil {
			if errors.Is(err, engine.ErrNotFound) {
				continue
			}
			return err
		}
		var ord Order
		ord.decode(wk.bufO)
		for l := 1; l <= int(ord.OLCnt); l++ {
			if err := w.orderLine.Read(ctx, txn, olKey(wh, d, oid, l), wk.bufOL); err != nil {
				if errors.Is(err, engine.ErrNotFound) {
					continue
				}
				return err
			}
			var ol OrderLine
			ol.decode(wk.bufOL)
			if seen[ol.IID] {
				continue
			}
			seen[ol.IID] = true
			if err := w.stock.Read(ctx, txn, sKey(wh, int(ol.IID)), wk.bufS); err != nil {
				return err
			}
			var st Stock
			st.decode(wk.bufS)
			if st.Quantity < threshold {
				low++
			}
		}
	}
	_ = low
	return nil
}
