package tpcc

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// Workload is a loaded TPC-C database.
type Workload struct {
	DB         *engine.DB
	Scale      ScaleConfig
	Warehouses int

	warehouse, district, customer, history  *engine.Table
	newOrder, order, orderLine, item, stock *engine.Table

	// Secondary indexes, maintained transactionally by the engine and
	// rebuilt by recovery's page scan.
	custByName  *engine.SecondaryIndex[string]
	orderByCust *engine.SecondaryIndex[uint64]

	nextHID atomic.Uint64
}

// custKeyParts unpacks a customer primary key.
func custKeyParts(ck uint64) (wh, d, c int) {
	return int(ck >> 28), int((ck >> 20) & 0xFF), int(ck & 0xFFFFF)
}

// orderKeyParts unpacks an order primary key.
func orderKeyParts(ok uint64) (wh, d, o int) {
	return int(ok >> 32), int((ok >> 24) & 0xFF), int(ok & 0xFFFFFF)
}

// Setup creates the nine tables and bulk-loads warehouses of data.
func Setup(db *engine.DB, warehouses int, scale ScaleConfig) (*Workload, error) {
	if warehouses < 1 {
		return nil, errors.New("tpcc: need at least one warehouse")
	}
	if scale.Districts == 0 {
		scale = DefaultScale
	}
	w := &Workload{DB: db, Scale: scale, Warehouses: warehouses}
	var err error
	mk := func(id uint32, name string, size int) *engine.Table {
		if err != nil {
			return nil
		}
		var tb *engine.Table
		tb, err = db.CreateTable(id, name, size)
		return tb
	}
	w.warehouse = mk(TabWarehouse, "warehouse", WarehouseSize)
	w.district = mk(TabDistrict, "district", DistrictSize)
	w.customer = mk(TabCustomer, "customer", CustomerSize)
	w.history = mk(TabHistory, "history", HistorySize)
	w.newOrder = mk(TabNewOrder, "new_order", NewOrderSize)
	w.order = mk(TabOrder, "orders", OrderSize)
	w.orderLine = mk(TabOrderLine, "order_line", OrderLineSize)
	w.item = mk(TabItem, "item", ItemSize)
	w.stock = mk(TabStock, "stock", StockSize)
	if err != nil {
		return nil, err
	}
	w.custByName, err = engine.AddSecondaryIndex(w.customer, "cust-by-name",
		func(primary uint64, payload []byte) string {
			var c Customer
			c.decode(payload)
			wh, d, cid := custKeyParts(primary)
			return custNameKey(wh, d, c.Last, c.First, cid)
		})
	if err != nil {
		return nil, err
	}
	w.orderByCust, err = engine.AddSecondaryIndex(w.order, "order-by-cust",
		func(primary uint64, payload []byte) uint64 {
			var o Order
			o.decode(payload)
			wh, d, oid := orderKeyParts(primary)
			return orderByCustKey(wh, d, int(o.CID), oid)
		})
	if err != nil {
		return nil, err
	}
	if err := w.load(); err != nil {
		return nil, err
	}
	return w, nil
}

// load bulk-loads the initial population (clause 4.3 of the spec, scaled).
func (w *Workload) load() error {
	ctx := core.NewCtx(0x7CC)
	rng := zipf.NewRand(0x7CC0)
	s := w.Scale

	loaders := map[*engine.Table]*engine.BulkLoader{}
	ld := func(tb *engine.Table) *engine.BulkLoader {
		l, ok := loaders[tb]
		if !ok {
			l = tb.NewBulkLoader(ctx)
			loaders[tb] = l
		}
		return l
	}
	app := func(tb *engine.Table, key uint64, t interface{ encode([]byte) }) error {
		p := make([]byte, tb.TupleSize())
		t.encode(p)
		return ld(tb).Append(key, p)
	}

	// Items (shared across warehouses).
	for i := 1; i <= s.Items; i++ {
		it := Item{ImageID: uint32(rng.Uint64n(10000)), Price: int64(100 + rng.Uint64n(9900)),
			Name: fmt.Sprintf("item-%d", i)}
		if err := app(w.item, iKey(i), &it); err != nil {
			return err
		}
	}

	for wh := 1; wh <= w.Warehouses; wh++ {
		whRow := Warehouse{YTD: 30000000, Tax: int64(rng.Uint64n(2001)), Name: fmt.Sprintf("W%05d", wh)}
		if err := app(w.warehouse, wKey(wh), &whRow); err != nil {
			return err
		}
		// Stock rows for every item.
		for i := 1; i <= s.Items; i++ {
			st := Stock{Quantity: int32(10 + rng.Uint64n(91))}
			if err := app(w.stock, sKey(wh, i), &st); err != nil {
				return err
			}
		}
		for d := 1; d <= s.Districts; d++ {
			dRow := District{Tax: int64(rng.Uint64n(2001)), YTD: 3000000,
				NextOID: uint32(s.InitialOrders) + 1, Name: fmt.Sprintf("D%d", d)}
			if err := app(w.district, dKey(wh, d), &dRow); err != nil {
				return err
			}
			for c := 1; c <= s.CustomersPerDistrict; c++ {
				nameNum := c - 1
				if nameNum >= 1000 {
					nameNum = int(nurand(rng, 255, 0, 999))
				}
				cust := Customer{
					Balance: -1000, Discount: int64(rng.Uint64n(5001)),
					Last:   LastName(nameNum % 1000),
					First:  fmt.Sprintf("FIRST%04d", c),
					Credit: map[bool]string{true: "GC", false: "BC"}[rng.Uint64n(10) != 0],
				}
				if err := app(w.customer, cKey(wh, d, c), &cust); err != nil {
					return err
				}
			}
			// Initial orders: one per customer id (permuted), each with
			// 5-15 order lines; the newest third are undelivered
			// (new-order rows), per clause 4.3.3.1.
			perm := permutation(rng, s.InitialOrders)
			for o := 1; o <= s.InitialOrders; o++ {
				c := perm[o-1]%s.CustomersPerDistrict + 1
				olCnt := 5 + int(rng.Uint64n(11))
				ord := Order{CID: uint32(c), EntryD: 1, OLCnt: uint8(olCnt), AllLocal: 1}
				if o <= s.InitialOrders*2/3 {
					ord.Carrier = uint8(1 + rng.Uint64n(10))
				}
				if err := app(w.order, oKey(wh, d, o), &ord); err != nil {
					return err
				}
				for l := 1; l <= olCnt; l++ {
					ol := OrderLine{IID: uint32(1 + rng.Uint64n(uint64(s.Items))),
						SupplyW: uint16(wh), Quantity: 5,
						Amount: int64(rng.Uint64n(999999))}
					if ord.Carrier != 0 {
						ol.DeliveryD = 1
					}
					if err := app(w.orderLine, olKey(wh, d, o, l), &ol); err != nil {
						return err
					}
				}
				if ord.Carrier == 0 {
					no := NewOrder{}
					if err := app(w.newOrder, oKey(wh, d, o), &no); err != nil {
						return err
					}
				}
			}
		}
	}
	for _, l := range loaders {
		if err := l.Close(); err != nil {
			return err
		}
	}
	return nil
}

// NewOrder rows carry no meaningful payload; their existence is the queue.
type NewOrder struct{}

func (t *NewOrder) encode(p []byte) {}

// permutation returns a pseudo-random permutation of [0, n).
func permutation(rng *zipf.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// nurand is the spec's non-uniform random function (clause 2.1.6) with a
// fixed C constant.
func nurand(rng *zipf.Rand, a, x, y uint64) uint64 {
	const c = 123
	return ((rng.Uint64n(a+1)|(x+rng.Uint64n(y-x+1)))+c)%(y-x+1) + x
}

// lastNameFromIndex walks the by-name index for (w, d, last) and returns
// the spec's "middle" customer key, or ok=false when no customer matches.
func (w *Workload) customerByName(wh, d int, last string) (uint64, bool) {
	prefix := custNamePrefix(wh, d, last)
	var matches []uint64
	w.custByName.Scan(prefix, func(k string, v uint64) bool {
		if !strings.HasPrefix(k, prefix) {
			return false
		}
		matches = append(matches, v)
		return true
	})
	if len(matches) == 0 {
		return 0, false
	}
	return matches[len(matches)/2], true
}
