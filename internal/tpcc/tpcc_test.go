package tpcc

import (
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

func newWorkload(t *testing.T, warehouses int) *Workload {
	t.Helper()
	bm, err := core.New(core.Config{
		DRAMBytes: 32 * core.PageSize,
		NVMBytes:  128 * core.PageSize,
		Policy:    policy.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(engine.Options{BM: bm})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Setup(db, warehouses, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLoadCardinalities(t *testing.T) {
	w := newWorkload(t, 2)
	s := w.Scale
	if n := w.warehouse.Index().Len(); n != 2 {
		t.Fatalf("warehouses = %d", n)
	}
	if n := w.district.Index().Len(); n != 2*s.Districts {
		t.Fatalf("districts = %d", n)
	}
	if n := w.customer.Index().Len(); n != 2*s.Districts*s.CustomersPerDistrict {
		t.Fatalf("customers = %d", n)
	}
	if n := w.item.Index().Len(); n != s.Items {
		t.Fatalf("items = %d", n)
	}
	if n := w.stock.Index().Len(); n != 2*s.Items {
		t.Fatalf("stock = %d", n)
	}
	if n := w.order.Index().Len(); n != 2*s.Districts*s.InitialOrders {
		t.Fatalf("orders = %d", n)
	}
	// The newest third of initial orders are undelivered.
	wantNO := 2 * s.Districts * (s.InitialOrders - s.InitialOrders*2/3)
	if n := w.newOrder.Index().Len(); n != wantNO {
		t.Fatalf("new orders = %d, want %d", n, wantNO)
	}
	if w.orderLine.Index().Len() < 5*w.order.Index().Len() {
		t.Fatalf("order lines = %d, implausibly few", w.orderLine.Index().Len())
	}
}

func TestLastNameGeneration(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
}

func TestCustomerByNameLookup(t *testing.T) {
	w := newWorkload(t, 1)
	// Customer 1 has last name LastName(0) = BARBARBAR by construction.
	k, ok := w.customerByName(1, 1, LastName(0))
	if !ok {
		t.Fatal("by-name lookup found nothing")
	}
	ctx := core.NewCtx(5)
	txn := w.DB.Begin()
	buf := make([]byte, CustomerSize)
	if err := w.customer.Read(ctx, txn, k, buf); err != nil {
		t.Fatal(err)
	}
	var c Customer
	c.decode(buf)
	if c.Last != LastName(0) {
		t.Fatalf("lookup returned customer with last name %q", c.Last)
	}
	txn.Commit(ctx)
}

func TestEachTransactionType(t *testing.T) {
	w := newWorkload(t, 2)
	wk := w.NewWorker(11)
	kinds := []struct {
		name string
		fn   func(*engine.Txn) error
	}{
		{"NewOrder", wk.newOrder},
		{"Payment", wk.payment},
		{"OrderStatus", wk.orderStatus},
		{"Delivery", wk.delivery},
		{"StockLevel", wk.stockLevel},
	}
	for _, k := range kinds {
		committed := false
		for attempt := 0; attempt < 20 && !committed; attempt++ {
			txn := w.DB.Begin()
			if err := k.fn(txn); err != nil {
				if aerr := txn.Abort(wk.ctx); aerr != nil {
					t.Fatalf("%s: abort: %v", k.name, aerr)
				}
				continue
			}
			if err := txn.Commit(wk.ctx); err != nil {
				t.Fatalf("%s: commit: %v", k.name, err)
			}
			committed = true
		}
		if !committed {
			t.Fatalf("%s never committed in 20 attempts", k.name)
		}
	}
}

func TestNewOrderConsistency(t *testing.T) {
	// Every committed NewOrder must bump the district's next order id and
	// leave a readable order with the right number of lines.
	w := newWorkload(t, 1)
	wk := w.NewWorker(13)
	ctx := wk.ctx

	before := districtNextOIDSum(t, w, ctx)
	committedOrders := 0
	for i := 0; i < 50; i++ {
		txn := w.DB.Begin()
		if err := wk.newOrder(txn); err != nil {
			txn.Abort(ctx)
			continue
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		committedOrders++
	}
	after := districtNextOIDSum(t, w, ctx)
	if after-before != committedOrders {
		t.Fatalf("next_o_id advanced by %d for %d committed orders", after-before, committedOrders)
	}
}

func districtNextOIDSum(t *testing.T, w *Workload, ctx *core.Ctx) int {
	t.Helper()
	txn := w.DB.Begin()
	defer txn.Commit(ctx)
	buf := make([]byte, DistrictSize)
	sum := 0
	for d := 1; d <= w.Scale.Districts; d++ {
		if err := w.district.Read(ctx, txn, dKey(1, d), buf); err != nil {
			t.Fatal(err)
		}
		var dist District
		dist.decode(buf)
		sum += int(dist.NextOID)
	}
	return sum
}

func TestPaymentMovesMoney(t *testing.T) {
	w := newWorkload(t, 1)
	wk := w.NewWorker(17)
	ctx := wk.ctx

	readYTD := func() int64 {
		txn := w.DB.Begin()
		defer txn.Commit(ctx)
		buf := make([]byte, WarehouseSize)
		if err := w.warehouse.Read(ctx, txn, wKey(1), buf); err != nil {
			t.Fatal(err)
		}
		var wr Warehouse
		wr.decode(buf)
		return wr.YTD
	}
	before := readYTD()
	committed := 0
	for i := 0; i < 20; i++ {
		txn := w.DB.Begin()
		if err := wk.payment(txn); err != nil {
			txn.Abort(ctx)
			continue
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		committed++
	}
	if committed == 0 {
		t.Fatal("no payment committed")
	}
	if readYTD() <= before {
		t.Fatal("warehouse YTD did not grow")
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	w := newWorkload(t, 1)
	wk := w.NewWorker(19)
	ctx := wk.ctx
	before := w.newOrder.Index().Len()
	committed := 0
	for i := 0; i < 10 && committed == 0; i++ {
		txn := w.DB.Begin()
		if err := wk.delivery(txn); err != nil {
			txn.Abort(ctx)
			continue
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		committed++
	}
	if committed == 0 {
		t.Fatal("delivery never committed")
	}
	after := w.newOrder.Index().Len()
	if after >= before {
		t.Fatalf("new-order queue did not shrink: %d -> %d", before, after)
	}
	if before-after > w.Scale.Districts {
		t.Fatalf("one delivery drained %d entries", before-after)
	}
}

func TestMixedRun(t *testing.T) {
	w := newWorkload(t, 2)
	wk := w.NewWorker(23)
	if err := wk.Run(400); err != nil {
		t.Fatal(err)
	}
	if wk.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if wk.PerType[TxnNewOrder] == 0 || wk.PerType[TxnPayment] == 0 {
		t.Fatalf("mix skewed: %v", wk.PerType)
	}
	// NewOrder should dominate roughly 45/43/4/4/4.
	if wk.PerType[TxnNewOrder] < wk.PerType[TxnStockLevel] {
		t.Fatalf("mix proportions wrong: %v", wk.PerType)
	}
}

func TestConcurrentWorkers(t *testing.T) {
	w := newWorkload(t, 2)
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wks := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		wks[i] = w.NewWorker(uint64(i) + 31)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = wks[i].Run(150)
		}(i)
	}
	wg.Wait()
	var committed int64
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		committed += wks[i].Committed
	}
	if committed == 0 {
		t.Fatal("no transactions committed under concurrency")
	}
}

func TestNURandRange(t *testing.T) {
	rng := zipf.NewRand(3)
	for i := 0; i < 10_000; i++ {
		v := nurand(rng, 255, 0, 999)
		if v > 999 {
			t.Fatalf("nurand out of range: %d", v)
		}
	}
}

func TestScaleSizing(t *testing.T) {
	s := DefaultScale
	per := s.BytesPerWarehouse()
	if per <= 0 {
		t.Fatal("non-positive bytes per warehouse")
	}
	if w := s.WarehousesForBytes(100 * per); w != 100 {
		t.Fatalf("WarehousesForBytes = %d, want 100", w)
	}
	if w := s.WarehousesForBytes(1); w != 1 {
		t.Fatalf("tiny budget -> %d warehouses", w)
	}
}
