//go:build lockcheck

package lockcheck

import (
	"fmt"
	"sort"
	"sync"
)

// Waitgraph mode augments the panic-on-violation discipline checker with a
// post-run report: while enabled, every *blocking* acquisition that finds
// its target latch held by another goroutine records wait-for edges from
// each rank the waiter already holds to the rank it wants. After the run,
// WaitGraphReport summarizes the observed edges and searches the rank
// digraph for cycles — the shape a deadlock would have had. The discipline
// rules make rank cycles panic before they can hang, so a clean run reports
// none; the report exists to show which cross-rank waits actually happened
// under a real workload (and to catch a future rule relaxation that opens a
// cycle the per-acquisition rules no longer reject).
var wgraph struct {
	mu      sync.Mutex
	enabled bool
	// holders maps a latch object to the goroutines that have recorded
	// (and not yet released) an acquisition of it. Counted, because a
	// goroutine may legally stack reacquisitions of distinct ranks on one
	// object but Release matches by (obj, rank) pairs.
	holders map[any]map[uint64]int
	// edges counts observed wait-for pairs: [heldRank, wantedRank] → n.
	edges map[[2]int]int64
}

// EnableWaitGraph resets and starts wait-for recording. Call it before the
// workload under test; recording costs one global mutex per blocking
// acquisition, which is acceptable in a -tags lockcheck debug build.
func EnableWaitGraph() {
	wgraph.mu.Lock()
	defer wgraph.mu.Unlock()
	wgraph.enabled = true
	wgraph.holders = map[any]map[uint64]int{}
	wgraph.edges = map[[2]int]int64{}
}

// DisableWaitGraph stops recording (the accumulated edges remain until the
// next EnableWaitGraph).
func DisableWaitGraph() {
	wgraph.mu.Lock()
	defer wgraph.mu.Unlock()
	wgraph.enabled = false
}

// noteAcquired records g as a holder of obj.
func noteAcquired(obj any, g uint64) {
	wgraph.mu.Lock()
	defer wgraph.mu.Unlock()
	if !wgraph.enabled {
		return
	}
	m := wgraph.holders[obj]
	if m == nil {
		m = map[uint64]int{}
		wgraph.holders[obj] = m
	}
	m[g]++
}

// noteReleased drops one holder count of obj by g.
func noteReleased(obj any, g uint64) {
	wgraph.mu.Lock()
	defer wgraph.mu.Unlock()
	if !wgraph.enabled {
		return
	}
	m := wgraph.holders[obj]
	if m == nil {
		return
	}
	if m[g]--; m[g] <= 0 {
		delete(m, g)
	}
	if len(m) == 0 {
		delete(wgraph.holders, obj)
	}
}

// noteWait records wait-for edges for goroutine g blocking on (obj, rank)
// while holding the ranks in stack. Edges are only recorded when some
// *other* goroutine currently holds obj — that is what makes it a wait.
func noteWait(obj any, rank int, g uint64, stack []held) {
	wgraph.mu.Lock()
	defer wgraph.mu.Unlock()
	if !wgraph.enabled || len(stack) == 0 {
		return
	}
	heldByOther := false
	for hg := range wgraph.holders[obj] {
		if hg != g {
			heldByOther = true
			break
		}
	}
	if !heldByOther {
		return
	}
	for i := range stack {
		wgraph.edges[[2]int{stack[i].rank, rank}]++
	}
}

// recordWaitEdge injects a synthetic edge. Test hook: real workloads cannot
// produce a rank cycle without panicking first, so the cycle detector is
// exercised with synthetic adjacency.
func recordWaitEdge(from, to int) {
	wgraph.mu.Lock()
	defer wgraph.mu.Unlock()
	if wgraph.edges == nil {
		wgraph.edges = map[[2]int]int64{}
	}
	wgraph.edges[[2]int{from, to}]++
}

// WaitGraphReport returns a deterministic summary of the recorded wait-for
// graph: one "wait: <held> → <wanted> (n)" line per observed edge in rank
// order, followed by one "CYCLE: a → b → ... → a" line per elementary cycle
// in the rank digraph. An empty slice means no cross-goroutine latch waits
// were observed at all.
func WaitGraphReport() []string {
	wgraph.mu.Lock()
	type edge struct {
		from, to int
		n        int64
	}
	var edges []edge
	for k, n := range wgraph.edges {
		edges = append(edges, edge{k[0], k[1], n})
	}
	wgraph.mu.Unlock()

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	var out []string
	adj := map[int][]int{}
	for _, e := range edges {
		out = append(out, fmt.Sprintf("wait: %s → %s (%d)", rankName(e.from), rankName(e.to), e.n))
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, cyc := range rankCycles(adj) {
		line := "CYCLE:"
		for _, r := range cyc {
			line += " " + rankName(r) + " →"
		}
		out = append(out, line+" "+rankName(cyc[0]))
	}
	return out
}

// rankCycles finds the elementary cycles of the (tiny) rank digraph by DFS
// from every node, canonicalized to start at their smallest rank and
// deduplicated. The graph has at most 8 nodes, so brute force is fine.
func rankCycles(adj map[int][]int) [][]int {
	var cycles [][]int
	seen := map[string]bool{}
	nodes := make([]int, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	var path []int
	onPath := map[int]bool{}
	var dfs func(n int)
	dfs = func(n int) {
		path = append(path, n)
		onPath[n] = true
		next := append([]int(nil), adj[n]...)
		sort.Ints(next)
		for _, m := range next {
			if onPath[m] {
				// Cycle: the slice of path from m's position onward.
				for i, p := range path {
					if p == m {
						cyc := canonicalCycle(path[i:])
						key := fmt.Sprint(cyc)
						if !seen[key] {
							seen[key] = true
							cycles = append(cycles, cyc)
						}
						break
					}
				}
				continue
			}
			dfs(m)
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		dfs(n)
	}
	sort.Slice(cycles, func(i, j int) bool { return fmt.Sprint(cycles[i]) < fmt.Sprint(cycles[j]) })
	return cycles
}

// canonicalCycle rotates a cycle to start at its smallest rank.
func canonicalCycle(c []int) []int {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	out := make([]int, 0, len(c))
	out = append(out, c[min:]...)
	out = append(out, c[:min]...)
	return out
}
