//go:build !lockcheck

// Without -tags lockcheck the checker compiles to empty inlinable calls;
// see lockcheck.go for the real implementation and the rules it enforces.
package lockcheck

// Latch ranks, mirrored from the checked build.
const (
	RankD        = 1
	RankN        = 2
	RankS        = 3
	RankMu       = 4
	RankFg       = 5
	RankWALShard = 6
	RankWALFlush = 7
	RankBMShard  = 8
)

// Enabled reports whether the checker is compiled in.
const Enabled = false

// Acquire is a no-op without the lockcheck build tag.
func Acquire(obj any, rank int) {}

// Acquired is a no-op without the lockcheck build tag.
func Acquired(obj any, rank int) {}

// Release is a no-op without the lockcheck build tag.
func Release(obj any, rank int) {}

// EnableWaitGraph is a no-op without the lockcheck build tag.
func EnableWaitGraph() {}

// DisableWaitGraph is a no-op without the lockcheck build tag.
func DisableWaitGraph() {}

// WaitGraphReport returns nil without the lockcheck build tag.
func WaitGraphReport() []string { return nil }
