//go:build lockcheck

package lockcheck

import (
	"strings"
	"testing"
)

// TestWaitGraphRecordsCrossGoroutineWait drives the one legal cross-rank
// blocking acquisition — descriptor.mu under fg.mu (rule 4) — while another
// goroutine holds the mu, and checks the wait edge shows up in the report.
func TestWaitGraphRecordsCrossGoroutineWait(t *testing.T) {
	EnableWaitGraph()
	defer DisableWaitGraph()

	muObj := new(int)
	fgObj := new(int)
	heldc := make(chan struct{})
	donec := make(chan struct{})
	go func() {
		Acquired(muObj, RankMu)
		close(heldc)
		<-donec
		Release(muObj, RankMu)
	}()
	<-heldc

	// This goroutine holds fg.mu and blocks wanting the mu the other
	// goroutine holds: a fg.mu → mu wait edge. (The real shim would now
	// call mutex.Lock; the recording happens at Acquire time.)
	Acquired(fgObj, RankFg)
	Acquire(muObj, RankMu)
	Release(muObj, RankMu)
	Release(fgObj, RankFg)
	close(donec)

	report := WaitGraphReport()
	found := false
	for _, line := range report {
		if strings.HasPrefix(line, "CYCLE:") {
			t.Fatalf("unexpected cycle in report: %q", line)
		}
		if strings.Contains(line, "fg.mu → mu") {
			found = true
		}
	}
	if !found {
		t.Fatalf("report missing fg.mu → mu wait edge: %q", report)
	}
}

// TestWaitGraphIgnoresUncontendedAndBareWaits checks the two non-edges: a
// blocking acquisition of an unheld latch, and a blocking acquisition by a
// goroutine that holds nothing (it cannot be part of a deadlock cycle).
func TestWaitGraphIgnoresUncontendedAndBareWaits(t *testing.T) {
	EnableWaitGraph()
	defer DisableWaitGraph()

	muObj := new(int)
	fgObj := new(int)

	// Uncontended: nothing holds muObj, so fg.mu → mu is not a wait.
	Acquired(fgObj, RankFg)
	Acquire(muObj, RankMu)
	Release(muObj, RankMu)
	Release(fgObj, RankFg)

	// Bare: another goroutine holds muObj but this one holds nothing.
	heldc := make(chan struct{})
	donec := make(chan struct{})
	go func() {
		Acquired(muObj, RankMu)
		close(heldc)
		<-donec
		Release(muObj, RankMu)
	}()
	<-heldc
	Acquire(muObj, RankMu)
	Release(muObj, RankMu)
	close(donec)

	if report := WaitGraphReport(); len(report) != 0 {
		t.Fatalf("expected empty report, got %q", report)
	}
}

// TestWaitGraphCycleDetection feeds the detector a synthetic rank cycle.
// Synthetic because a real one cannot happen: the discipline rules panic on
// the acquisition that would close it before any edge is recorded.
func TestWaitGraphCycleDetection(t *testing.T) {
	EnableWaitGraph()
	defer DisableWaitGraph()

	recordWaitEdge(RankD, RankN)
	recordWaitEdge(RankN, RankS)
	recordWaitEdge(RankS, RankD)
	recordWaitEdge(RankFg, RankMu) // acyclic bystander

	report := WaitGraphReport()
	var cycles []string
	for _, line := range report {
		if strings.HasPrefix(line, "CYCLE:") {
			cycles = append(cycles, line)
		}
	}
	if len(cycles) != 1 {
		t.Fatalf("expected exactly one cycle, got %q (full report %q)", cycles, report)
	}
	want := "CYCLE: latchD → latchN → latchS → latchD"
	if cycles[0] != want {
		t.Fatalf("cycle = %q, want %q", cycles[0], want)
	}

	// Two-node cycle on top: both cycles must be reported.
	recordWaitEdge(RankN, RankD)
	report = WaitGraphReport()
	cycles = cycles[:0]
	for _, line := range report {
		if strings.HasPrefix(line, "CYCLE:") {
			cycles = append(cycles, line)
		}
	}
	if len(cycles) != 2 {
		t.Fatalf("expected two cycles, got %q", cycles)
	}
}

// TestWaitGraphDisabledRecordsNothing checks recording is inert when off.
func TestWaitGraphDisabledRecordsNothing(t *testing.T) {
	EnableWaitGraph()
	DisableWaitGraph()

	muObj := new(int)
	fgObj := new(int)
	heldc := make(chan struct{})
	donec := make(chan struct{})
	go func() {
		Acquired(muObj, RankMu)
		close(heldc)
		<-donec
		Release(muObj, RankMu)
	}()
	<-heldc
	Acquired(fgObj, RankFg)
	Acquire(muObj, RankMu)
	Release(muObj, RankMu)
	Release(fgObj, RankFg)
	close(donec)

	if report := WaitGraphReport(); len(report) != 0 {
		t.Fatalf("expected empty report while disabled, got %q", report)
	}
}
