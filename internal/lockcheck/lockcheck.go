//go:build lockcheck

// Package lockcheck is a build-tag-gated runtime checker for the descriptor
// latch discipline (DESIGN.md §5-quinquies). Compiled with -tags lockcheck,
// every latch acquisition routed through internal/core's shims is recorded
// in a per-goroutine shadow stack; an acquisition that violates the
// discipline panics immediately with both the current stack and the stack
// recorded when the conflicting latch was taken — turning a
// would-be-deadlock (observable only as a hung test) into a deterministic
// failure with two readable stacks. Without the tag the package is the
// empty stub in stub.go and the shims cost one inlined empty call.
//
// The rules enforced mirror the static latchorder analyzer in internal/vet:
//
//  1. Tier latches of one descriptor in rank order RankD < RankN < RankS;
//     skipping ranks is fine, acquiring a rank ≤ one already held on the
//     same descriptor is not.
//  2. RankMu is a leaf: nothing may be acquired while any mu is held.
//  3. Blocking acquisition (Acquire) of a tier latch is illegal while a
//     tier latch of a different descriptor is held; TryLock acquisitions
//     (Acquired) of second descriptors are the sanctioned escape hatch.
//  4. RankFg (a frame group's fg.mu) may be taken under tier latches; the
//     only acquisition allowed while it is held is RankMu (the fine-grained
//     load path pins the NVM backing descriptor under fg.mu).
//  5. RankWALShard (a WAL shard's append mutex) is a leaf on the append
//     path. The one exception is the combining flusher, which drains every
//     shard while holding RankWALFlush: shard→shard acquisitions are legal
//     only under flushMu (where the flusher takes them in index order).
//  6. Under RankWALFlush only RankWALShard may be acquired.
//  7. RankBMShard (a buffer-pool shard's free-list mutex) is a strict leaf:
//     it may be taken under tier latches (allocation runs under latchD or
//     latchN) but nothing — not even another pool shard — may be acquired
//     while it is held. Work-stealing therefore drops one shard's mutex
//     before probing the next.
package lockcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Latch ranks, low acquired first. RankMu is a strict leaf; RankFg admits
// only RankMu under it; the WAL ranks form their own two-level order
// (flushMu → shard mu).
const (
	RankD        = 1
	RankN        = 2
	RankS        = 3
	RankMu       = 4
	RankFg       = 5
	RankWALShard = 6
	RankWALFlush = 7
	RankBMShard  = 8
)

// Enabled reports whether the checker is compiled in.
const Enabled = true

func rankName(r int) string {
	switch r {
	case RankD:
		return "latchD"
	case RankN:
		return "latchN"
	case RankS:
		return "latchS"
	case RankMu:
		return "mu"
	case RankFg:
		return "fg.mu"
	case RankWALShard:
		return "wal.shard"
	case RankWALFlush:
		return "wal.flushMu"
	case RankBMShard:
		return "pool.shard"
	}
	return "rank?"
}

// held is one latch on a goroutine's shadow stack.
type held struct {
	obj  any
	rank int
	pcs  [16]uintptr
	npc  int
}

// Shadow stacks are sharded by goroutine id: tracking must not serialize
// the very latch acquisitions it watches, or slow debug builds distort the
// interleavings they are meant to check.
type shard struct {
	mu     sync.Mutex
	byGoro map[uint64][]held
}

var shards [64]shard

func shardFor(g uint64) *shard {
	s := &shards[g%uint64(len(shards))]
	s.mu.Lock()
	if s.byGoro == nil {
		s.byGoro = map[uint64][]held{}
	}
	return s
}

// gid parses the current goroutine id from the first line of its stack
// ("goroutine 123 [running]:"). Slow, which is fine: lockcheck is a
// debugging build, not a production one.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(string(fields[1]), 10, 64)
	return id
}

// Acquire records an imminent *blocking* Lock of (obj, rank), panicking if
// the acquisition violates the discipline. Call immediately before
// mutex.Lock so the panic fires instead of the deadlock.
func Acquire(obj any, rank int) { check(obj, rank, true) }

// Acquired records a successful TryLock of (obj, rank). Cross-descriptor
// TryLocks are legal; same-descriptor order violations and
// anything-under-mu still panic.
func Acquired(obj any, rank int) { check(obj, rank, false) }

// Release pops (obj, rank) from the goroutine's shadow stack. Releasing a
// latch that was never recorded is ignored: a latch may legitimately be
// unlocked on a different goroutine than locked it (mutex handoff), and the
// checker only reasons about per-goroutine ordering.
func Release(obj any, rank int) {
	g := gid()
	s := shardFor(g)
	defer s.mu.Unlock()
	stack := s.byGoro[g]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].obj == obj && stack[i].rank == rank {
			stack = append(stack[:i], stack[i+1:]...)
			noteReleased(obj, g)
			break
		}
	}
	if len(stack) == 0 {
		delete(s.byGoro, g)
	} else {
		s.byGoro[g] = stack
	}
}

func check(obj any, rank int, blocking bool) {
	g := gid()
	s := shardFor(g)
	defer s.mu.Unlock()
	stack := s.byGoro[g]
	flushHeld := false
	for i := range stack {
		if stack[i].rank == RankWALFlush {
			flushHeld = true
		}
	}
	for i := range stack {
		h := &stack[i]
		switch {
		case h.rank == RankMu:
			fail(h, "lockcheck: acquiring %s(%p) while mu(%p) is held — mu is a leaf lock, acquire nothing under it",
				rankName(rank), obj, h.obj)
		case h.rank == RankBMShard:
			fail(h, "lockcheck: acquiring %s(%p) while pool.shard(%p) is held — a pool shard's free-list mutex is a strict leaf (steal by dropping one shard before probing the next)",
				rankName(rank), obj, h.obj)
		case h.rank == RankFg && rank == RankMu:
			// descriptor.mu under fg.mu: the fine-grained load path pins the
			// NVM backing (nvmBacking → mu) while holding the frame-group
			// lock. Legal because mu is a strict leaf — nothing is ever
			// acquired under it, so fg.mu → mu cannot cycle.
		case h.rank == RankFg:
			fail(h, "lockcheck: acquiring %s(%p) while fg.mu(%p) is held — only descriptor.mu may be taken under a frame-group lock",
				rankName(rank), obj, h.obj)
		case h.rank == RankWALShard && rank == RankWALShard && flushHeld:
			// The combining flusher drains every shard in index order while
			// holding flushMu; shard→shard is legal only in that context.
		case h.rank == RankWALShard:
			fail(h, "lockcheck: acquiring %s(%p) while wal.shard(%p) is held — a shard mutex is a leaf on the append path",
				rankName(rank), obj, h.obj)
		case h.rank == RankWALFlush && rank != RankWALShard:
			fail(h, "lockcheck: acquiring %s(%p) while wal.flushMu(%p) is held — only shard mutexes may be taken under flushMu",
				rankName(rank), obj, h.obj)
		case h.rank == RankWALFlush:
			// Shard mutex under flushMu: the combining flusher's order.
		case h.obj == obj && rank == RankMu:
			// mu under the same descriptor's tier latches: legal leaf use.
		case h.obj == obj && h.rank >= rank:
			fail(h, "lockcheck: acquiring %s(%p) while holding %s of the same descriptor — tier order is latchD → latchN → latchS",
				rankName(rank), obj, rankName(h.rank))
		case h.obj != obj && blocking && rank <= RankS && h.rank <= RankS:
			fail(h, "lockcheck: blocking Lock of %s(%p) while holding %s(%p) of another descriptor — second descriptors only via TryLock",
				rankName(rank), obj, rankName(h.rank), h.obj)
		}
	}
	if blocking {
		noteWait(obj, rank, g, stack)
	}
	noteAcquired(obj, g)
	e := held{obj: obj, rank: rank}
	e.npc = runtime.Callers(3, e.pcs[:])
	s.byGoro[g] = append(stack, e)
}

// fail panics with the violation message, the stack of the conflicting
// earlier acquisition, and (via the panic itself) the current stack.
func fail(h *held, format string, args ...any) {
	var b bytes.Buffer
	fmt.Fprintf(&b, format, args...)
	b.WriteString("\n\nearlier acquisition of ")
	b.WriteString(rankName(h.rank))
	b.WriteString(" at:\n")
	frames := runtime.CallersFrames(h.pcs[:h.npc])
	for {
		f, more := frames.Next()
		fmt.Fprintf(&b, "  %s\n      %s:%d\n", f.Function, f.File, f.Line)
		if !more {
			break
		}
	}
	b.WriteString("\ncurrent acquisition stack follows in the panic trace.")
	panic(b.String())
}
