package core

import "fmt"

// CheckConsistency walks the mapping table and frame metadata and verifies
// the structural invariants that migrations and recovery must preserve:
//
//   - every frame a descriptor points at is in range and agrees on the page
//     id in its frame metadata;
//   - no frame is referenced by two descriptors;
//   - attached frames are not frozen (pins >= 0);
//   - every attached NVM frame has a valid, checksummed header naming the
//     same page (the durable self-identification recovery depends on).
//
// The caller must be quiescent (no concurrent fetches, cleaners stopped).
// It returns nil, or an error describing the first few violations found.
func (bm *BufferManager) CheckConsistency() error {
	var violations []string
	add := func(format string, args ...any) {
		if len(violations) < 8 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
	}

	dramOwner := map[int32]PageID{}
	miniOwner := map[int32]PageID{}
	nvmOwner := map[int32]PageID{}

	bm.table.Range(func(pid PageID, d *descriptor) bool {
		loc := d.load()
		if f := loc.dramFrame; f != noFrame {
			if bm.dram == nil || int(f) >= bm.dram.nFrames || f < 0 {
				add("page %d: DRAM frame %d out of range", pid, f)
			} else {
				if prev, dup := dramOwner[f]; dup {
					add("DRAM frame %d claimed by pages %d and %d", f, prev, pid)
				}
				dramOwner[f] = pid
				if got := bm.dram.meta[f].pid.Load(); got != pid {
					add("page %d: DRAM frame %d tagged with page %d", pid, f, got)
				}
				if bm.dram.meta[f].pins.Load() < 0 {
					add("page %d: attached DRAM frame %d is frozen", pid, f)
				}
			}
		}
		if f := loc.dramMini; f != noFrame {
			if bm.dram == nil || bm.dram.mini == nil || int(f) >= bm.dram.mini.nFrames || f < 0 {
				add("page %d: mini frame %d out of range", pid, f)
			} else {
				if prev, dup := miniOwner[f]; dup {
					add("mini frame %d claimed by pages %d and %d", f, prev, pid)
				}
				miniOwner[f] = pid
				if got := bm.dram.mini.meta[f].pid.Load(); got != pid {
					add("page %d: mini frame %d tagged with page %d", pid, f, got)
				}
			}
		}
		if f := loc.nvmFrame; f != noFrame {
			if bm.nvm == nil || int(f) >= bm.nvm.nFrames || f < 0 {
				add("page %d: NVM frame %d out of range", pid, f)
			} else {
				if prev, dup := nvmOwner[f]; dup {
					add("NVM frame %d claimed by pages %d and %d", f, prev, pid)
				}
				nvmOwner[f] = pid
				if got := bm.nvm.meta[f].pid.Load(); got != pid {
					add("page %d: NVM frame %d tagged with page %d", pid, f, got)
				}
				hdrPID, valid := bm.nvm.readHeader(f)
				if !valid {
					add("page %d: NVM frame %d has no valid header", pid, f)
				} else if hdrPID != pid {
					add("page %d: NVM frame %d header names page %d", pid, f, hdrPID)
				}
			}
		}
		return true
	})

	if len(violations) > 0 {
		return fmt.Errorf("core: consistency check failed: %d violation(s): %v",
			len(violations), violations)
	}
	return nil
}
