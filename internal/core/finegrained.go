package core

import (
	"sync"
	"sync/atomic"
)

// miniSlots is the capacity of a mini page: up to sixteen loading units,
// exactly as in HyMem's layout (Figure 2b of the paper).
const miniSlots = 16

// noSlot marks an absent unit in a mini page's slot directory.
const noSlot = -1

// fgState tracks which loading units of a cache-line-grained page are
// resident in DRAM and which are dirty (Figure 2a). It exists only for DRAM
// frames backed by an NVM copy; pages loaded whole (from SSD, or with
// fine-grained loading disabled) have no fgState.
//
// All fields except residentCount are guarded by mu. residentCount is
// atomic so the NVM evictor can cheaply test full residency without taking
// the lock (it skips NVM frames that a partially resident DRAM page still
// depends on).
type fgState struct {
	mu   sync.Mutex
	unit int // loading unit size in bytes

	// Full-frame mode: one bit per unit.
	resident []uint64
	dirty    []uint64

	// Mini-page mode: a slot directory of logical unit numbers.
	mini      bool
	slots     [miniSlots]int32 // logical unit index per slot, or -1
	slotCount int
	slotDirty uint16 // per-slot dirty bits

	residentCount atomic.Int32
}

func newFullFG(unit int) *fgState {
	n := PageSize / unit
	return &fgState{
		unit:     unit,
		resident: make([]uint64, (n+63)/64),
		dirty:    make([]uint64, (n+63)/64),
	}
}

func newMiniFG(unit int) *fgState {
	fg := &fgState{unit: unit, mini: true}
	for i := range fg.slots {
		fg.slots[i] = noSlot
	}
	return fg
}

// unitsPerPage returns the number of loading units in a page.
func (fg *fgState) unitsPerPage() int { return PageSize / fg.unit }

// fullyResident reports whether every unit of the page is in DRAM. Safe to
// call without fg.mu.
func (fg *fgState) fullyResident() bool {
	if fg.mini {
		return false // a mini page can hold at most 16 of the page's units
	}
	return int(fg.residentCount.Load()) == fg.unitsPerPage()
}

// isResident reports whether unit u is resident. Caller holds fg.mu.
func (fg *fgState) isResident(u int) bool {
	return fg.resident[u>>6]&(1<<uint(u&63)) != 0
}

// setResident marks unit u resident. Caller holds fg.mu.
func (fg *fgState) setResident(u int) {
	w := &fg.resident[u>>6]
	bit := uint64(1) << uint(u&63)
	if *w&bit == 0 {
		*w |= bit
		fg.residentCount.Add(1)
	}
}

// setDirty marks unit u dirty. Caller holds fg.mu.
func (fg *fgState) setDirty(u int) {
	fg.dirty[u>>6] |= 1 << uint(u&63)
}

// isDirty reports whether unit u is dirty. Caller holds fg.mu.
func (fg *fgState) isDirty(u int) bool {
	return fg.dirty[u>>6]&(1<<uint(u&63)) != 0
}

// clearDirty resets every dirty bit. Caller holds fg.mu.
func (fg *fgState) clearDirty() {
	for i := range fg.dirty {
		fg.dirty[i] = 0
	}
	fg.slotDirty = 0
}

// findSlot returns the slot holding logical unit u, or noSlot. Caller holds
// fg.mu. Mini pages direct accesses through this linear directory scan,
// mirroring HyMem's slots array.
func (fg *fgState) findSlot(u int) int {
	for s := 0; s < fg.slotCount; s++ {
		if fg.slots[s] == int32(u) {
			return s
		}
	}
	return noSlot
}

// unitRange converts a byte range to the [first, last] units it touches.
func unitRange(unit, off, n int) (first, last int) {
	first = off / unit
	last = (off + n - 1) / unit
	return first, last
}
