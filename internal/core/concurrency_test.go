package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// TestConcurrentChurnIntegrity is the buffer manager's main stress test:
// several workers update disjoint counters on a shared set of pages far
// exceeding buffer capacity, under a policy mix that exercises every
// migration path. Afterwards every counter must equal the number of
// increments applied to it, and all pins must have drained.
func TestConcurrentChurnIntegrity(t *testing.T) {
	pols := map[string]policy.Policy{
		"eager": policy.SpitfireEager,
		"lazy":  policy.SpitfireLazy,
		"hymem": policy.Hymem,
		"mixed": {Dr: 0.5, Dw: 0.5, Nr: 0.5, Nw: 0.5},
	}
	for name, pol := range pols {
		t.Run(name, func(t *testing.T) {
			runChurn(t, Config{
				DRAMBytes: 4 * PageSize,
				NVMBytes:  8 * nvmFrameSlot,
				Policy:    pol,
			})
		})
	}
}

func TestConcurrentChurnFineGrained(t *testing.T) {
	runChurn(t, Config{
		DRAMBytes:   4 * PageSize,
		NVMBytes:    8 * nvmFrameSlot,
		Policy:      policy.SpitfireLazy,
		FineGrained: true,
		LoadingUnit: 256,
	})
}

func TestConcurrentChurnMiniPages(t *testing.T) {
	runChurn(t, Config{
		DRAMBytes:   6 * PageSize,
		NVMBytes:    8 * nvmFrameSlot,
		Policy:      policy.SpitfireEager,
		FineGrained: true,
		LoadingUnit: 256,
		MiniPages:   true,
	})
}

func runChurn(t *testing.T, cfg Config) {
	t.Helper()
	const (
		workers = 8
		pages   = 64
		opsEach = 800
	)
	bm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seedZero(t, bm, pages)

	// counters[w] tracks worker w's per-page increment counts; worker w
	// owns the 8-byte slot at offset w*8 on every page, so writers never
	// overlap.
	var counts [workers][pages]int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewCtx(uint64(w) + 100)
			rng := zipf.NewRand(uint64(w) * 977)
			buf := make([]byte, 8)
			for i := 0; i < opsEach; i++ {
				pid := rng.Uint64n(pages)
				h, err := bm.FetchPage(ctx, pid, WriteIntent)
				if err != nil {
					t.Errorf("worker %d: fetch: %v", w, err)
					failed.Store(true)
					return
				}
				off := w * 8
				if err := h.ReadAt(ctx, off, buf); err != nil {
					t.Errorf("worker %d: read: %v", w, err)
					h.Release()
					failed.Store(true)
					return
				}
				v := binary.LittleEndian.Uint64(buf)
				binary.LittleEndian.PutUint64(buf, v+1)
				if err := h.WriteAt(ctx, off, buf); err != nil {
					t.Errorf("worker %d: write: %v", w, err)
					h.Release()
					failed.Store(true)
					return
				}
				h.Release()
				counts[w][pid]++
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		return
	}

	// Verify every counter.
	ctx := NewCtx(999)
	buf := make([]byte, 8)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			if err := h.ReadAt(ctx, w*8, buf); err != nil {
				t.Fatal(err)
			}
			got := int64(binary.LittleEndian.Uint64(buf))
			if got != counts[w][pid] {
				t.Fatalf("page %d worker %d: counter = %d, want %d", pid, w, got, counts[w][pid])
			}
		}
		h.Release()
	}

	checkNoLeakedPins(t, bm)
}

// seedZero writes n zeroed pages to SSD.
func seedZero(t *testing.T, bm *BufferManager, n int) {
	t.Helper()
	ctx := NewCtx(1)
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < uint64(n); pid++ {
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// checkNoLeakedPins verifies that, quiesced, no frame holds a pin (frames
// are either frozen on the free list or resident with zero pins).
func checkNoLeakedPins(t *testing.T, bm *BufferManager) {
	t.Helper()
	check := func(name string, meta []frameMeta) {
		for i := range meta {
			p := meta[i].pins.Load()
			if p > 0 {
				t.Fatalf("%s frame %d leaked %d pins", name, i, p)
			}
			if p == 0 && meta[i].pid.Load() == InvalidPageID {
				t.Fatalf("%s frame %d unpinned but unowned (lost frame)", name, i)
			}
		}
	}
	if bm.dram != nil {
		check("dram", bm.dram.meta)
		if bm.dram.mini != nil {
			check("mini", bm.dram.mini.meta)
		}
	}
	if bm.nvm != nil {
		check("nvm", bm.nvm.meta)
	}
}

// TestConcurrentSamePage hammers a single page from many workers so the
// migrate-up wait-for-refs protocol (§5.2) and freeze/thaw transitions get
// exercised heavily.
func TestConcurrentSamePage(t *testing.T) {
	bm, err := New(Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  4 * nvmFrameSlot,
		Policy:    policy.Policy{Dr: 0.5, Dw: 0.5, Nr: 0.5, Nw: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	seedZero(t, bm, 1)

	const workers = 8
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewCtx(uint64(w) + 500)
			buf := make([]byte, 8)
			for i := 0; i < 500; i++ {
				h, err := bm.FetchPage(ctx, 0, WriteIntent)
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				off := w * 8
				if err := h.ReadAt(ctx, off, buf); err != nil {
					t.Errorf("read: %v", err)
					h.Release()
					return
				}
				v := binary.LittleEndian.Uint64(buf)
				binary.LittleEndian.PutUint64(buf, v+1)
				if err := h.WriteAt(ctx, off, buf); err != nil {
					t.Errorf("write: %v", err)
					h.Release()
					return
				}
				h.Release()
				total.Add(1)
			}
		}(w)
	}
	wg.Wait()

	ctx := NewCtx(1000)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	buf := make([]byte, 8)
	for w := 0; w < workers; w++ {
		if err := h.ReadAt(ctx, w*8, buf); err != nil {
			t.Fatal(err)
		}
		sum += int64(binary.LittleEndian.Uint64(buf))
	}
	h.Release()
	if sum != total.Load() {
		t.Fatalf("page counters sum to %d, want %d", sum, total.Load())
	}
}
