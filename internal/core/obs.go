package core

import "github.com/spitfire-db/spitfire/internal/obs"

// Obs returns the attached observability layer, or nil.
func (bm *BufferManager) Obs() *obs.Obs { return bm.obs }

// obsRing returns ctx's tracer ring, attaching one on first use. Once the
// registry has been consulted the answer (including a MaxRings refusal,
// recorded as a nil ring) is cached on the Ctx.
func (bm *BufferManager) obsRing(ctx *Ctx) *obs.Ring {
	if !ctx.ringInit {
		ctx.ringInit = true
		if bm.obs != nil {
			label := "worker"
			if ctx.cleaner {
				label = "cleaner"
			}
			ctx.ring = bm.obs.NewRing(label)
		}
	}
	return ctx.ring
}

// emit records one tracer event on ctx's ring; a no-op when observability is
// off. Events with TS zero are stamped with the worker's current clock.
func (bm *BufferManager) emit(ctx *Ctx, ev obs.Event) {
	if bm.obs == nil {
		return
	}
	if ev.TS == 0 {
		ev.TS = ctx.Clock.Now()
	}
	bm.obsRing(ctx).Emit(ev)
}

// obsTier maps a handle tier to the obs package's tier enum.
func obsTier(t Tier) obs.TierID {
	switch t {
	case TierDRAM:
		return obs.TierDRAM
	case TierMini:
		return obs.TierMini
	case TierNVM:
		return obs.TierNVM
	}
	return obs.TierNone
}
