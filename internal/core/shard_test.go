package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/lockcheck"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// TestNormalizePoolShards pins the clamp rules: at least one shard, at most
// maxPoolShards, and at least two frames per shard.
func TestNormalizePoolShards(t *testing.T) {
	cases := []struct {
		shards, nFrames, want int
	}{
		{0, 64, 1},                 // zero means single-shard (deterministic default)
		{1, 64, 1},                 // explicit single shard
		{4, 64, 4},                 // plain case
		{4, 4, 2},                  // ≥2 frames per shard: 4 frames cap at 2 shards
		{100, 1000, maxPoolShards}, // hard cap
		{8, 1, 1},                  // one frame: one shard
		{-3, 64, 1},                // negative treated as unset
	}
	for _, c := range cases {
		if got := normalizePoolShards(c.shards, c.nFrames); got != c.want {
			t.Errorf("normalizePoolShards(%d, %d) = %d, want %d", c.shards, c.nFrames, got, c.want)
		}
	}
}

// TestShardPartitionCoversPool checks the frame partition: every frame maps
// to exactly one shard whose [lo, hi) range contains it, and the per-shard
// free lists jointly hold every frame exactly once at start-up.
func TestShardPartitionCoversPool(t *testing.T) {
	for _, nFrames := range []int{2, 7, 8, 64, 65} {
		for _, shards := range []int{1, 2, 3, 4} {
			var p basePool
			p.init(nFrames, 1, shards)
			seen := make(map[int32]int)
			for si := range p.shards {
				sh := &p.shards[si]
				for _, f := range sh.free {
					seen[f]++
					if f < sh.lo || f >= sh.hi {
						t.Fatalf("frames=%d shards=%d: frame %d on shard %d outside [%d,%d)", nFrames, shards, f, si, sh.lo, sh.hi)
					}
					if got := p.shardOf(f); got != sh {
						t.Fatalf("frames=%d shards=%d: shardOf(%d) does not return home shard", nFrames, shards, f)
					}
				}
			}
			if len(seen) != nFrames {
				t.Fatalf("frames=%d shards=%d: free lists hold %d distinct frames", nFrames, shards, len(seen))
			}
			for f, n := range seen {
				if n != 1 {
					t.Fatalf("frames=%d shards=%d: frame %d appears %d times", nFrames, shards, f, n)
				}
			}
			if got := p.freeCount(); got != nFrames {
				t.Fatalf("frames=%d shards=%d: freeCount() = %d, want %d", nFrames, shards, got, nFrames)
			}
		}
	}
}

// TestTakeFreeStealsFromNeighbor drains one worker's home shard and checks
// that further allocations steal from the other shards rather than failing,
// and that the steal counter records them.
func TestTakeFreeStealsFromNeighbor(t *testing.T) {
	var p basePool
	p.init(8, 1, 4) // 4 shards × 2 frames
	ctx := NewCtx(1)
	got := make(map[int32]bool)
	for i := 0; i < 8; i++ {
		f, ok := p.takeFree(ctx)
		if !ok {
			t.Fatalf("takeFree failed on pop %d with %d frames free", i, 8-i)
		}
		if got[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		got[f] = true
	}
	if _, ok := p.takeFree(ctx); ok {
		t.Fatal("takeFree succeeded on an empty pool")
	}
	// One worker drained all 4 shards: 2 pops were local, 6 were steals.
	if p.Steals() != 6 {
		t.Fatalf("Steals() = %d, want 6", p.Steals())
	}
	if p.freeCount() != 0 {
		t.Fatalf("freeCount() = %d, want 0", p.freeCount())
	}
	// Releasing routes each frame back to its home shard.
	for f := range got {
		p.release(f)
	}
	for si := range p.shards {
		sh := &p.shards[si]
		if len(sh.free) != 2 {
			t.Fatalf("shard %d has %d free frames after release, want 2", si, len(sh.free))
		}
		for _, f := range sh.free {
			if f < sh.lo || f >= sh.hi {
				t.Fatalf("frame %d released to wrong shard %d [%d,%d)", f, si, sh.lo, sh.hi)
			}
		}
	}
}

// TestWorkerShardAffinity checks that a worker context is dealt a shard on
// first use and keeps it, and that distinct workers spread round-robin.
func TestWorkerShardAffinity(t *testing.T) {
	var p basePool
	p.init(16, 1, 4)
	ctxs := make([]*Ctx, 8)
	homes := make([]int, 8)
	for i := range ctxs {
		ctxs[i] = NewCtx(uint64(i + 1))
		homes[i] = p.shardIndexFor(ctxs[i])
	}
	counts := make(map[int]int)
	for i, ctx := range ctxs {
		if got := p.shardIndexFor(ctx); got != homes[i] {
			t.Fatalf("worker %d moved shard: %d then %d", i, homes[i], got)
		}
		counts[homes[i]]++
	}
	// 8 workers over 4 shards must deal 2 per shard.
	for si := 0; si < 4; si++ {
		if counts[si] != 2 {
			t.Fatalf("shard %d owns %d workers, want 2 (deal %v)", si, counts[si], homes)
		}
	}
}

// TestReleaseFreezeInvariant checks the debug assert: pushing a frame that
// is not frozen (pins != -1) onto a free list panics under -tags lockcheck.
func TestReleaseFreezeInvariant(t *testing.T) {
	if !lockcheck.Enabled {
		t.Skip("freeze-invariant assert compiled in only with -tags lockcheck")
	}
	var p basePool
	p.init(4, 1, 2)
	ctx := NewCtx(1)
	f, ok := p.takeFree(ctx)
	if !ok {
		t.Fatal("takeFree failed")
	}
	p.meta[f].pins.Store(1) // pinned, not frozen
	defer func() {
		if recover() == nil {
			t.Fatal("release of a pinned frame did not panic")
		}
	}()
	p.release(f)
}

// TestShardedPoolConcurrent hammers a small sharded three-tier manager with
// enough workers that home shards constantly run dry: cross-shard steals and
// cleaner refills race foreground eviction. Run with -race; correctness is
// "no data race, no lost frames, no leaked pins, free accounting intact".
func TestShardedPoolConcurrent(t *testing.T) {
	const (
		dramFrames = 16
		nvmFrames  = 32
		pages      = 128
		workers    = 8
		opsPer     = 400
	)
	bm := newBM(t, Config{
		DRAMBytes: dramFrames * PageSize,
		NVMBytes:  nvmFrames * nvmFrameSlot,
		Policy:    policy.SpitfireLazy,
		Shards:    4,
		Cleaner:   CleanerConfig{Enable: true, LowWater: 2, HighWater: 4},
	})
	defer bm.Close()
	seed(t, bm, pages)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewCtx(uint64(w + 1))
			buf := make([]byte, 8)
			for i := 0; i < opsPer; i++ {
				pid := uint64(ctx.RNG.Intn(pages))
				intent := ReadIntent
				if i%3 == 0 {
					intent = WriteIntent
				}
				h, err := bm.FetchPage(ctx, pid, intent)
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
				if intent == WriteIntent {
					if err := h.WriteAt(ctx, 0, buf); err != nil {
						h.Release()
						errs <- fmt.Errorf("worker %d op %d: write: %w", w, i, err)
						return
					}
				} else if err := h.ReadAt(ctx, 0, buf); err != nil {
					h.Release()
					errs <- fmt.Errorf("worker %d op %d: read: %w", w, i, err)
					return
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Stop the cleaners so the accounting checks below see a quiesced pool
	// (Close is idempotent; the deferred call becomes a no-op).
	bm.Close()

	checkNoLeakedPins(t, bm)

	// 8 workers on 4 shards of 4 DRAM frames churned far more pages than any
	// shard holds; the run must have exercised the steal path.
	st := bm.Stats()
	if st.DRAMFreeSteals+st.NVMFreeSteals == 0 {
		t.Fatal("no cross-shard free-list steals recorded under saturation")
	}

	// Quiesced free accounting: the atomic aggregate must equal the sum of
	// the per-shard stacks.
	for _, p := range []*basePool{&bm.dram.basePool, &bm.nvm.basePool} {
		sum := 0
		for si := range p.shards {
			sh := &p.shards[si]
			p.lockShard(sh)
			sum += len(sh.free)
			p.unlockShard(sh)
		}
		if got := p.freeCount(); got != sum {
			t.Fatalf("freeCount() = %d but shard stacks hold %d", got, sum)
		}
	}
}
