// Package core implements Spitfire's multi-threaded, three-tier buffer
// manager (§5 of the paper).
//
// A BufferManager keeps hot pages in a DRAM buffer, warm pages in an NVM
// buffer, and cold pages on SSD. A DRAM-resident mapping table (a concurrent
// hash table) maps each logical page to a *shared page descriptor* holding
// the page's frame locations and three per-tier latches; migrations along a
// data-flow path take only the latches of the two tiers involved, so (for
// example) writing a page back from NVM to SSD never blocks operations on
// the DRAM copy of the same page (§5.2).
//
// Where pages move is decided by the probabilistic migration policy
// ⟨Dr, Dw, Nr, Nw⟩ of §3; what is evicted is decided per buffer by a CLOCK
// replacement policy over a concurrent bitmap. The two mechanisms work in
// tandem to place pages in tiers according to their access frequency.
//
// The manager also implements the optimizations of HyMem (the paper's
// baseline, §2.1) so the ablation study of §6.5 can be reproduced:
// cache-line-grained loading at a configurable unit size, the mini-page
// layout, and the NVM admission queue.
package core

import (
	"errors"
	"fmt"

	"github.com/spitfire-db/spitfire/internal/admission"
	"github.com/spitfire-db/spitfire/internal/cht"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/vclock"
	"github.com/spitfire-db/spitfire/internal/zipf"
	"sync"
	"sync/atomic"
)

// PageSize is the database page size (16 KB, as in the paper).
const PageSize = ssd.PageSize

// nvmFrameHeaderSize is the per-frame metadata prefix on NVM frames. The
// header makes NVM frames self-identifying so recovery can rebuild the
// mapping table by scanning the arena (§5.2, "Recovery").
const nvmFrameHeaderSize = 64

// nvmFrameSlot is the arena stride of one NVM frame.
const nvmFrameSlot = nvmFrameHeaderSize + PageSize

// NVMFrameSlot is the exported arena stride, so harnesses can size NVM
// arenas to an exact frame count.
const NVMFrameSlot = nvmFrameSlot

// nvmFrameMagic marks a valid, occupied NVM frame header.
const nvmFrameMagic = 0x53504631 // "SPF1"

// PageID identifies a logical database page. Page pid occupies SSD block pid.
type PageID = uint64

// InvalidPageID is the reserved "no page" value.
const InvalidPageID = ^uint64(0)

// Intent declares why a page is being fetched; it selects which migration
// probability (Dr for reads, Dw for writes) applies on the NVM→DRAM path.
type Intent int

const (
	// ReadIntent fetches a page for reading.
	ReadIntent Intent = iota
	// WriteIntent fetches a page that will be modified.
	WriteIntent
)

// Ctx carries per-worker state through buffer-manager operations: the
// worker's virtual clock (all device costs are charged to it) and its
// private PRNG (all Bernoulli policy trials draw from it). A Ctx must not be
// shared between goroutines.
type Ctx struct {
	Clock *vclock.Clock
	RNG   *zipf.Rand

	scratch []byte // lazily allocated page-size staging buffer

	// ring is the worker's migration-tracer ring, lazily attached on first
	// instrumented operation against a manager with observability enabled.
	// ringInit distinguishes "not asked yet" from "asked and refused" so a
	// MaxRings-capped worker doesn't hit the registry on every fetch.
	ring     *obs.Ring
	ringInit bool

	// cleaner marks the context as belonging to a background cleaner
	// goroutine. Write-back admission treats cleaner evictions specially:
	// instead of flipping the Nw coin, dirty pages the cleaner pushes out
	// of DRAM consult the NVM admission queue, so the off-critical-path
	// write-back pre-seeds NVM with pages showing re-eviction pressure
	// without letting one cold sweep flood the buffer.
	cleaner bool

	// interrupt, when non-nil, is polled at the top of page-granular entry
	// points (FetchPage, NewPage, MaterializePage). A non-nil return aborts
	// the operation with that error before any device cost is charged — the
	// hook a network front-end uses to cut request deadlines into the
	// buffer-manager call path. The disabled fast path is one nil check.
	interrupt func() error
}

// NewCtx creates a worker context with a fresh clock and the given RNG seed.
func NewCtx(seed uint64) *Ctx {
	return &Ctx{Clock: vclock.New(), RNG: zipf.NewRand(seed)}
}

// SetInterrupt installs (or, with nil, clears) the cancellation hook polled
// at the start of page-granular operations. The hook runs on the worker's
// own goroutine; returning a non-nil error makes the pending operation fail
// with exactly that error. Server front-ends install a hook that reports the
// request context's deadline error, so an expired request stops consuming
// buffer-manager capacity at the next page boundary instead of running to
// completion. The hook must be cleared (or must start returning nil) before
// cleanup work — transaction abort, checkpointing — runs on the same Ctx,
// or that cleanup is interrupted too.
func (ctx *Ctx) SetInterrupt(f func() error) { ctx.interrupt = f }

// interrupted polls the interrupt hook; nil means proceed.
func (ctx *Ctx) interrupted() error {
	if ctx.interrupt == nil {
		return nil
	}
	return ctx.interrupt()
}

func (ctx *Ctx) buf() []byte {
	if ctx.scratch == nil {
		ctx.scratch = make([]byte, PageSize)
	}
	return ctx.scratch
}

// bernoulli draws a policy trial. p <= 0 is always false and p >= 1 always
// true, so the degenerate eager/disabled policies are exact.
func (ctx *Ctx) bernoulli(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return ctx.RNG.Float64() < p
}

// Config configures a BufferManager.
type Config struct {
	// DRAMBytes and NVMBytes size the two buffers. Either may be zero,
	// which disables that tier (yielding NVM-SSD or DRAM-SSD hierarchies);
	// at least one must be positive.
	DRAMBytes int64
	NVMBytes  int64

	// Policy is the initial migration policy (see policy.Policy). The
	// adaptive tuner may replace it at runtime via SetPolicy.
	Policy policy.Policy

	// FineGrained enables cache-line-grained loading on the NVM→DRAM path
	// (§2.1): DRAM frames backed by an NVM copy fault individual loading
	// units in on demand instead of copying the whole 16 KB page.
	FineGrained bool

	// LoadingUnit is the granularity of fine-grained loading in bytes
	// (Figure 11 sweeps 64–512). Defaults to 256, the Optane media block.
	LoadingUnit int

	// MiniPages enables HyMem's mini-page layout: pages with at most 16
	// resident loading units occupy a small mini frame with a slot
	// directory, transparently promoted to a full frame on overflow.
	// Requires FineGrained.
	MiniPages bool

	// MiniArenaFraction is the fraction of DRAMBytes reserved for mini
	// frames when MiniPages is on. Defaults to 1/8.
	MiniArenaFraction float64

	// AdmissionQueueCapacity sizes HyMem's NVM admission queue (every
	// admission in NwAdmissionQueue mode; cleaner write-backs in coin mode).
	// Defaults to half the NVM buffer's page count, the value §6.5 found to
	// work well.
	AdmissionQueueCapacity int

	// ClockWeight selects the replacement policy's reference weight:
	// 1 (default) is the paper's CLOCK; larger values use generalized
	// GCLOCK counters, letting hot frames survive that many sweeps.
	ClockWeight int

	// Shards partitions each pool's replacement state (CLOCK hands and
	// free lists) into this many worker-affine shards, removing the free-list
	// convoy on multi-core fetch/evict paths. 0 or 1 keeps the single-shard
	// layout (the deterministic default at the core level; the spitfire
	// facade defaults to RecommendedShards, sized from GOMAXPROCS). The
	// count is clamped so every shard owns at least two frames, and capped
	// at 64.
	Shards int

	// Cleaner configures the background page cleaner (DESIGN.md §5-bis).
	// The zero value disables it, keeping core-level simulated-time results
	// deterministic; the spitfire facade enables it by default.
	Cleaner CleanerConfig

	// SSD is the backing store. Defaults to a fresh in-memory store with
	// Table 1 SSD parameters.
	SSD ssd.Store

	// PMem is the NVM arena backing the NVM buffer. Defaults to a fresh
	// arena of NVMBytes. Pass an existing arena to Recover a buffer
	// manager after a simulated crash.
	PMem *pmem.PMem

	// DRAMCharger is the cost model for DRAM buffer traffic. Defaults to a
	// plain device with Table 1 DRAM parameters. The memory-mode
	// experiments (§6.2) inject a memmode-backed charger here.
	DRAMCharger MemCharger

	// Retry bounds the retry/backoff loop wrapped around fallible NVM and
	// SSD operations (meaningful only when fault injectors are attached to
	// the underlying devices; see device.Injector). Zero values take the
	// defaults documented on RetryConfig.
	Retry RetryConfig

	// Obs attaches the observability layer: per-worker migration tracing
	// and hot-path latency histograms. Nil (the default) disables both; the
	// only residual cost is one pointer nil-check per instrumented
	// operation (see BenchmarkFetchTraced).
	Obs *obs.Obs
}

// MemCharger prices accesses to the DRAM buffer. Offsets are relative to
// the buffer arena, which lets memory-mode simulations track cache lines.
type MemCharger interface {
	ChargeRead(c *vclock.Clock, off int64, n int)
	ChargeWrite(c *vclock.Clock, off int64, n int)
}

// DeviceCharger adapts a plain device.Device to the MemCharger interface.
type DeviceCharger struct{ Dev *device.Device }

// ChargeRead implements MemCharger.
func (d DeviceCharger) ChargeRead(c *vclock.Clock, _ int64, n int) { d.Dev.Read(c, n) }

// ChargeWrite implements MemCharger.
func (d DeviceCharger) ChargeWrite(c *vclock.Clock, _ int64, n int) { d.Dev.Write(c, n) }

// BufferManager is Spitfire's three-tier buffer manager.
type BufferManager struct {
	cfg Config

	table *cht.Map[PageID, *descriptor]
	disk  ssd.Store

	dram *dramPool // nil when the DRAM tier is disabled
	nvm  *nvmPool  // nil when the NVM tier is disabled

	pol      atomic.Pointer[policy.Policy]
	admQueue *admission.Queue // nil only when the NVM tier is disabled

	dramCleaner *cleaner // nil unless the cleaner is enabled
	nvmCleaner  *cleaner
	closeOnce   sync.Once

	// retry is the resolved retry policy for fallible device operations.
	retry RetryConfig

	// nvmFailed latches when the NVM tier fails permanently: the hierarchy
	// collapses to two-tier DRAM–SSD (see degradeNVM in retry.go).
	nvmFailed atomic.Bool

	nextPID atomic.Uint64

	stats bmStats

	// obs and the cached histogram pointers below are nil when observability
	// is disabled; every instrumented path nil-checks bm.obs first.
	obs           *obs.Obs
	hFetchDRAM    *metrics.Histogram
	hFetchMini    *metrics.Histogram
	hFetchNVM     *metrics.Histogram
	hFetchMiss    *metrics.Histogram
	hEvictDRAM    *metrics.Histogram
	hEvictNVM     *metrics.Histogram
	hCleanerBatch *metrics.Histogram
}

// New creates a buffer manager. See Config for the knobs.
func New(cfg Config) (*BufferManager, error) {
	if cfg.DRAMBytes <= 0 && cfg.NVMBytes <= 0 {
		return nil, errors.New("core: at least one of DRAMBytes and NVMBytes must be positive")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.LoadingUnit == 0 {
		cfg.LoadingUnit = 256
	}
	if cfg.LoadingUnit < 8 || cfg.LoadingUnit > PageSize || PageSize%cfg.LoadingUnit != 0 {
		return nil, fmt.Errorf("core: loading unit %d must divide the page size", cfg.LoadingUnit)
	}
	if cfg.MiniPages && !cfg.FineGrained {
		return nil, errors.New("core: MiniPages requires FineGrained")
	}
	if cfg.MiniArenaFraction == 0 {
		cfg.MiniArenaFraction = 1.0 / 8
	}
	if cfg.SSD == nil {
		cfg.SSD = ssd.NewMem(nil)
	}
	if err := cfg.Cleaner.validate(); err != nil {
		return nil, err
	}

	bm := &BufferManager{cfg: cfg, disk: cfg.SSD, retry: cfg.Retry.withDefaults()}
	bm.table = cht.New[PageID, *descriptor](cht.Uint64Hash)
	if cfg.Obs != nil {
		bm.obs = cfg.Obs
		bm.hFetchDRAM = cfg.Obs.Hist(obs.HFetchDRAM)
		bm.hFetchMini = cfg.Obs.Hist(obs.HFetchMini)
		bm.hFetchNVM = cfg.Obs.Hist(obs.HFetchNVM)
		bm.hFetchMiss = cfg.Obs.Hist(obs.HFetchMiss)
		bm.hEvictDRAM = cfg.Obs.Hist(obs.HEvictDRAM)
		bm.hEvictNVM = cfg.Obs.Hist(obs.HEvictNVM)
		bm.hCleanerBatch = cfg.Obs.Hist(obs.HCleanerBatch)
	}
	p := cfg.Policy
	bm.pol.Store(&p)

	if cfg.DRAMBytes > 0 {
		charger := cfg.DRAMCharger
		if charger == nil {
			charger = DeviceCharger{Dev: device.New(device.DRAMParams)}
		}
		dp, err := newDRAMPool(cfg, charger)
		if err != nil {
			return nil, err
		}
		bm.dram = dp
	}
	if cfg.NVMBytes > 0 {
		np, err := newNVMPool(cfg)
		if err != nil {
			return nil, err
		}
		bm.nvm = np
		cap := cfg.AdmissionQueueCapacity
		if cap == 0 {
			cap = np.nFrames / 2
		}
		// Always built when the NVM tier exists: NwAdmissionQueue mode uses
		// it for every admission, and in coin mode the background cleaner
		// feeds it so off-critical-path write-backs only admit pages with
		// demonstrated re-eviction pressure instead of bypassing the Nw coin.
		bm.admQueue = admission.New(cap)
	}
	bm.startCleaners()
	return bm, nil
}

// Policy returns the current migration policy.
func (bm *BufferManager) Policy() policy.Policy { return *bm.pol.Load() }

// SetPolicy atomically replaces the migration policy; the adaptive tuner of
// §4 calls this between epochs. After the NVM tier has failed permanently
// the NVM probabilities are forced to zero so no caller can re-route traffic
// to the dead tier. (The admission queue always exists alongside the NVM
// tier, so switching NwMode needs no setup here.)
func (bm *BufferManager) SetPolicy(p policy.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if bm.nvmFailed.Load() {
		p.Nr, p.Nw = 0, 0
		p.NwMode = policy.NwProbabilistic
	}
	bm.pol.Store(&p)
	return nil
}

// Disk returns the SSD store backing the manager.
func (bm *BufferManager) Disk() ssd.Store { return bm.disk }

// PMem returns the NVM arena, or nil if the NVM tier is disabled.
func (bm *BufferManager) PMem() *pmem.PMem {
	if bm.nvm == nil {
		return nil
	}
	return bm.nvm.pm
}

// DRAMFrames and NVMFrames report the capacity of each buffer in pages.
func (bm *BufferManager) DRAMFrames() int {
	if bm.dram == nil {
		return 0
	}
	return bm.dram.nFrames
}

// NVMFrames reports the capacity of the NVM buffer in pages.
func (bm *BufferManager) NVMFrames() int {
	if bm.nvm == nil {
		return 0
	}
	return bm.nvm.nFrames
}

// AllocatePageID reserves a fresh logical page identifier.
func (bm *BufferManager) AllocatePageID() PageID {
	return bm.nextPID.Add(1) - 1
}

// SetNextPageID positions the allocator (used by loaders and recovery).
func (bm *BufferManager) SetNextPageID(pid PageID) { bm.nextPID.Store(pid) }

// NextPageID reports the next identifier AllocatePageID would return.
func (bm *BufferManager) NextPageID() PageID { return bm.nextPID.Load() }
