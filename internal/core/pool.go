package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/bitmapclock"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// frameMeta is the volatile metadata of one buffer frame.
//
// pins encodes the frame's lifecycle: -1 means frozen (owned exclusively by
// an allocator/evictor/migrator and invisible to fetchers), 0 means resident
// and unpinned, >0 counts pinned users. Frames on the free list are frozen.
type frameMeta struct {
	pid     atomic.Uint64
	pins    atomic.Int32
	dirty   atomic.Bool
	fg      atomic.Pointer[fgState] // fine-grained residency; DRAM full frames only
	clAdmit atomic.Bool             // NVM frames: page was admitted by the background cleaner
}

// tryPin attempts to pin the frame; it fails if the frame is frozen.
func (f *frameMeta) tryPin() bool {
	for {
		p := f.pins.Load()
		if p < 0 {
			return false
		}
		if f.pins.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// unpin drops one pin.
func (f *frameMeta) unpin() { f.pins.Add(-1) }

// tryFreeze attempts to take exclusive ownership of an unpinned frame.
func (f *frameMeta) tryFreeze() bool { return f.pins.CompareAndSwap(0, -1) }

// freezeWait spins until the frame's pin count drains to zero and freezes
// it. It returns false if the wait budget is exhausted or the frame was
// freed/retargeted concurrently (detected via pid change).
func (f *frameMeta) freezeWait(pid PageID) bool {
	for i := 0; i < waitBudget; i++ {
		if f.pid.Load() != pid {
			return false
		}
		if f.tryFreeze() {
			return true
		}
		backoff(i)
	}
	return false
}

// thaw releases exclusive ownership, making the frame pinnable again.
func (f *frameMeta) thaw() { f.pins.Store(0) }

// replacer abstracts the page-replacement policy over a pool's frames.
// Both the concurrent-bitmap CLOCK the paper uses and the generalized
// (counter-based) GCLOCK of the cited NB-GCLOCK design satisfy it.
type replacer interface {
	Ref(i int)
	Unref(i int)
	Referenced(i int) bool
	Victim() int
	Len() int
}

// newReplacer picks the policy for a pool: weight <= 1 is classic CLOCK,
// larger weights give frames that many sweep-survivals (GCLOCK).
func newReplacer(nFrames, weight int) replacer {
	if weight > 1 {
		return bitmapclock.NewGClock(nFrames, weight)
	}
	return bitmapclock.New(nFrames)
}

// basePool holds the bookkeeping shared by the DRAM and NVM pools.
type basePool struct {
	nFrames int
	meta    []frameMeta
	clock   replacer
	free    chan int32
}

func newBasePool(nFrames, clockWeight int) basePool {
	p := basePool{
		nFrames: nFrames,
		meta:    make([]frameMeta, nFrames),
		clock:   newReplacer(nFrames, clockWeight),
		free:    make(chan int32, nFrames),
	}
	for i := range p.meta {
		p.meta[i].pid.Store(InvalidPageID)
		p.meta[i].pins.Store(-1) // free frames are frozen
		p.free <- int32(i)
	}
	return p
}

// takeFree pops a frame from the free list, if any. The frame is frozen.
func (p *basePool) takeFree() (int32, bool) {
	select {
	case f := <-p.free:
		return f, true
	default:
		return noFrame, false
	}
}

// release returns a frozen frame to the free list.
func (p *basePool) release(f int32) {
	p.meta[f].pid.Store(InvalidPageID)
	p.meta[f].dirty.Store(false)
	p.meta[f].fg.Store(nil)
	p.meta[f].clAdmit.Store(false)
	p.clock.Unref(int(f))
	p.free <- f
}

// dramPool is the DRAM buffer: a plain arena priced by a MemCharger.
// When mini pages are enabled a slice of the budget is carved into mini
// frames (16 loading units each) with their own CLOCK.
type dramPool struct {
	basePool
	arena  []byte
	charge MemCharger

	// mini-page arena (nil when disabled)
	mini *miniPool
}

type miniPool struct {
	basePool
	arena    []byte
	unit     int
	slotSize int // 16*unit bytes of data per mini frame
}

func newDRAMPool(cfg Config, charge MemCharger) (*dramPool, error) {
	budget := cfg.DRAMBytes
	var miniBudget int64
	if cfg.MiniPages {
		miniBudget = int64(float64(budget) * cfg.MiniArenaFraction)
		budget -= miniBudget
	}
	nFrames := int(budget / PageSize)
	if nFrames < 1 {
		return nil, fmt.Errorf("core: DRAM buffer of %d bytes holds no %d-byte page", cfg.DRAMBytes, PageSize)
	}
	dp := &dramPool{
		basePool: newBasePool(nFrames, cfg.ClockWeight),
		arena:    make([]byte, int64(nFrames)*PageSize),
		charge:   charge,
	}
	if cfg.MiniPages {
		slotSize := miniSlots * cfg.LoadingUnit
		nMini := int(miniBudget / int64(slotSize))
		if nMini < 1 {
			nMini = 1
		}
		dp.mini = &miniPool{
			basePool: newBasePool(nMini, cfg.ClockWeight),
			arena:    make([]byte, nMini*slotSize),
			unit:     cfg.LoadingUnit,
			slotSize: slotSize,
		}
	}
	return dp, nil
}

// frame returns the full-frame payload slice.
func (p *dramPool) frame(i int32) []byte {
	off := int64(i) * PageSize
	return p.arena[off : off+PageSize : off+PageSize]
}

// frameOffset is the arena offset of frame i (used for memory-mode pricing).
func (p *dramPool) frameOffset(i int32) int64 { return int64(i) * PageSize }

// data returns the mini-frame payload slice.
func (p *miniPool) data(i int32) []byte {
	off := int(i) * p.slotSize
	return p.arena[off : off+p.slotSize : off+p.slotSize]
}

// nvmPool is the NVM buffer, carved out of a persistent-memory arena. Each
// frame is prefixed with a self-identifying header so recovery can rebuild
// the mapping table by scanning the arena.
type nvmPool struct {
	basePool
	pm *pmem.PMem
}

func newNVMPool(cfg Config) (*nvmPool, error) {
	nFrames := int(cfg.NVMBytes / nvmFrameSlot)
	if nFrames < 1 {
		return nil, fmt.Errorf("core: NVM buffer of %d bytes holds no frame", cfg.NVMBytes)
	}
	pm := cfg.PMem
	if pm == nil {
		pm = pmem.New(pmem.Options{Size: int64(nFrames) * nvmFrameSlot})
	} else if pm.Size() < int64(nFrames)*nvmFrameSlot {
		nFrames = int(pm.Size() / nvmFrameSlot)
		if nFrames < 1 {
			return nil, fmt.Errorf("core: provided pmem arena of %d bytes holds no frame", pm.Size())
		}
	}
	return &nvmPool{basePool: newBasePool(nFrames, cfg.ClockWeight), pm: pm}, nil
}

// payloadOffset is the arena offset of frame i's page payload.
func (p *nvmPool) payloadOffset(i int32) int64 {
	return int64(i)*nvmFrameSlot + nvmFrameHeaderSize
}

// headerOffset is the arena offset of frame i's header.
func (p *nvmPool) headerOffset(i int32) int64 { return int64(i) * nvmFrameSlot }

// nvmHeaderTable is the CRC polynomial for the frame-header checksum.
var nvmHeaderTable = crc32.MakeTable(crc32.Castagnoli)

// headerSum checksums a frame header's magic and page-id words. The sum is
// stored at bytes [4:8) and validated by readHeader, so a torn header write
// — a crash mid-install — can never resurrect a frame under a garbage pid.
func headerSum(hdr []byte) uint32 {
	s := crc32.Checksum(hdr[0:4], nvmHeaderTable)
	return crc32.Update(s, nvmHeaderTable, hdr[8:16])
}

// writeHeader installs (and persists) frame i's self-identifying header. The
// 16-byte header is [magic u32][crc u32][pid u64]; a fault can tear it, which
// the checksum converts into "invalid frame" rather than silent corruption.
func (p *nvmPool) writeHeader(c *vclock.Clock, i int32, pid PageID, valid bool) error {
	var hdr [16]byte
	magic := uint32(0)
	if valid {
		magic = nvmFrameMagic
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint64(hdr[8:16], pid)
	binary.LittleEndian.PutUint32(hdr[4:8], headerSum(hdr[:]))
	if err := p.pm.WriteErr(c, p.headerOffset(i), hdr[:]); err != nil {
		return fmt.Errorf("core: nvm frame %d header: %w", i, err)
	}
	if err := p.pm.PersistErr(c, p.headerOffset(i), len(hdr)); err != nil {
		return fmt.Errorf("core: nvm frame %d header persist: %w", i, err)
	}
	return nil
}

// readHeader decodes frame i's header without charging a device (recovery
// scans charge separately). Frames with a bad magic or checksum — including
// headers torn by a crash mid-install — read as invalid.
func (p *nvmPool) readHeader(i int32) (pid PageID, valid bool) {
	hdr := p.pm.Bytes(p.headerOffset(i), 16)
	if binary.LittleEndian.Uint32(hdr[0:4]) != nvmFrameMagic {
		return InvalidPageID, false
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != headerSum(hdr) {
		return InvalidPageID, false
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), true
}

// writePayload stores (and persists) page data into frame i at the given
// offset within the page. A torn write leaves a prefix on media; callers
// retry the full write (the payload only becomes reachable once the header
// is installed after it, so a half-written payload is never served).
func (p *nvmPool) writePayload(c *vclock.Clock, i int32, off int, data []byte) error {
	base := p.payloadOffset(i) + int64(off)
	if err := p.pm.WriteErr(c, base, data); err != nil {
		return fmt.Errorf("core: nvm frame %d write: %w", i, err)
	}
	if err := p.pm.PersistErr(c, base, len(data)); err != nil {
		return fmt.Errorf("core: nvm frame %d persist: %w", i, err)
	}
	return nil
}

// readPayload loads page data from frame i at the given in-page offset.
func (p *nvmPool) readPayload(c *vclock.Clock, i int32, off int, buf []byte) error {
	if err := p.pm.ReadErr(c, p.payloadOffset(i)+int64(off), buf); err != nil {
		return fmt.Errorf("core: nvm frame %d read: %w", i, err)
	}
	return nil
}
