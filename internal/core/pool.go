package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/bitmapclock"
	"github.com/spitfire-db/spitfire/internal/lockcheck"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// frameMeta is the volatile metadata of one buffer frame.
//
// pins encodes the frame's lifecycle: -1 means frozen (owned exclusively by
// an allocator/evictor/migrator and invisible to fetchers), 0 means resident
// and unpinned, >0 counts pinned users. Frames on the free list are frozen.
type frameMeta struct {
	pid     atomic.Uint64
	pins    atomic.Int32
	dirty   atomic.Bool
	fg      atomic.Pointer[fgState] // fine-grained residency; DRAM full frames only
	clAdmit atomic.Bool             // NVM frames: page was admitted by the background cleaner
}

// tryPin attempts to pin the frame; it fails if the frame is frozen.
func (f *frameMeta) tryPin() bool {
	for {
		p := f.pins.Load()
		if p < 0 {
			return false
		}
		if f.pins.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// unpin drops one pin.
func (f *frameMeta) unpin() { f.pins.Add(-1) }

// tryFreeze attempts to take exclusive ownership of an unpinned frame.
func (f *frameMeta) tryFreeze() bool { return f.pins.CompareAndSwap(0, -1) }

// freezeWait spins until the frame's pin count drains to zero and freezes
// it. It returns false if the wait budget is exhausted or the frame was
// freed/retargeted concurrently (detected via pid change).
func (f *frameMeta) freezeWait(pid PageID) bool {
	for i := 0; i < waitBudget; i++ {
		if f.pid.Load() != pid {
			return false
		}
		if f.tryFreeze() {
			return true
		}
		backoff(i)
	}
	return false
}

// thaw releases exclusive ownership, making the frame pinnable again.
func (f *frameMeta) thaw() { f.pins.Store(0) }

// replacer abstracts the page-replacement policy over a pool's frames.
// Both the concurrent-bitmap CLOCK the paper uses and the generalized
// (counter-based) GCLOCK of the cited NB-GCLOCK design satisfy it.
type replacer interface {
	Ref(i int)
	Unref(i int)
	Referenced(i int) bool
	Victim() int
	Len() int
}

// newReplacer picks the policy for a pool: weight <= 1 is classic CLOCK,
// larger weights give frames that many sweep-survivals (GCLOCK).
func newReplacer(nFrames, weight int) replacer {
	if weight > 1 {
		return bitmapclock.NewGClock(nFrames, weight)
	}
	return bitmapclock.New(nFrames)
}

// maxPoolShards caps a pool's shard count (mirroring wal.MaxShards).
const maxPoolShards = 64

// normalizePoolShards clamps a configured shard count so every shard owns at
// least two frames: tiny test pools degrade gracefully to fewer (or one)
// shard instead of spreading a handful of frames across empty partitions.
func normalizePoolShards(shards, nFrames int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > maxPoolShards {
		shards = maxPoolShards
	}
	if lim := nFrames / 2; shards > lim {
		shards = lim
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// poolShard is one shard of a pool's replacement state: a private CLOCK (or
// GCLOCK) hand over the contiguous frame partition [lo, hi) and a free-frame
// stack. The mutex guards only the stack; the clock is lock-free on its own.
//
// The shard mutex has lockcheck rank RankBMShard: a strict leaf that may be
// taken under tier latches (allocation runs under latchD/latchN) but admits
// nothing under it — work-stealing drops one shard's mutex before probing
// the next, so two shard mutexes are never held together.
type poolShard struct {
	mu    sync.Mutex
	free  []int32 // frozen frames, LIFO
	freeN atomic.Int32

	lo, hi int32    // this shard's frame partition [lo, hi)
	clock  replacer // over hi-lo shard-local frame indices

	_ [64]byte // pad shards onto separate cache lines
}

// basePool holds the bookkeeping shared by the DRAM and NVM pools. Frames
// are partitioned contiguously across shards; each shard has its own CLOCK
// hand and free-frame stack, and workers are pinned to shards by their
// virtual clock (the same worker-affinity trick as the WAL's append shards).
type basePool struct {
	nFrames int
	meta    []frameMeta
	shards  []poolShard
	per     int // frames per shard (last shard absorbs the remainder)

	// freeLen approximates the total free-frame count across shards; it is
	// maintained outside the shard mutexes, so watermark checks read one
	// atomic instead of sweeping every shard.
	freeLen atomic.Int64

	// steals counts free-list pops served by a non-home shard.
	steals atomic.Uint64

	// affinity pins each worker clock to a shard; rr deals shards
	// round-robin to clocks seen for the first time.
	affinity sync.Map // *vclock.Clock -> int
	rr       atomic.Uint64
}

// init populates a freshly allocated (embedded) basePool in place — the
// struct holds atomics and a sync.Map, so it must never be copied.
func (p *basePool) init(nFrames, clockWeight, shards int) {
	shards = normalizePoolShards(shards, nFrames)
	ranges := bitmapclock.Ranges(nFrames, shards)
	p.nFrames = nFrames
	p.meta = make([]frameMeta, nFrames)
	p.shards = make([]poolShard, shards)
	p.per = nFrames / shards
	for si := range p.shards {
		sh := &p.shards[si]
		sh.lo, sh.hi = int32(ranges[si][0]), int32(ranges[si][1])
		sh.clock = newReplacer(int(sh.hi-sh.lo), clockWeight)
		sh.free = make([]int32, 0, sh.hi-sh.lo)
		// Push descending so low frame indices pop first.
		for f := sh.hi - 1; f >= sh.lo; f-- {
			sh.free = append(sh.free, f)
		}
		sh.freeN.Store(int32(len(sh.free)))
	}
	for i := range p.meta {
		p.meta[i].pid.Store(InvalidPageID)
		p.meta[i].pins.Store(-1) // free frames are frozen
	}
	p.freeLen.Store(int64(nFrames))
}

// shardOf maps a frame index to its home shard (partitions are contiguous,
// so this is one division; the last shard absorbs the remainder).
func (p *basePool) shardOf(f int32) *poolShard {
	si := int(f) / p.per
	if si >= len(p.shards) {
		si = len(p.shards) - 1
	}
	return &p.shards[si]
}

// shardIndexFor returns the worker's home shard. Clocks are dealt to shards
// round-robin on first use and stay pinned, so a worker's allocations,
// releases and CLOCK sweeps concentrate on one shard's cache lines.
func (p *basePool) shardIndexFor(ctx *Ctx) int {
	if len(p.shards) == 1 {
		return 0
	}
	if v, ok := p.affinity.Load(ctx.Clock); ok {
		return v.(int)
	}
	i := int((p.rr.Add(1) - 1) % uint64(len(p.shards)))
	v, _ := p.affinity.LoadOrStore(ctx.Clock, i)
	return v.(int)
}

// lockShard and unlockShard route the shard free-list mutex through the
// lockcheck shims so the -tags lockcheck build sees RankBMShard as a leaf.
func (p *basePool) lockShard(sh *poolShard) {
	lockcheck.Acquire(sh, lockcheck.RankBMShard)
	sh.mu.Lock()
}

func (p *basePool) unlockShard(sh *poolShard) {
	sh.mu.Unlock()
	lockcheck.Release(sh, lockcheck.RankBMShard)
}

// freeCount approximates the pool-wide free-list depth (watermarks and
// gauges only; never an invariant).
func (p *basePool) freeCount() int { return int(p.freeLen.Load()) }

// takeFree pops a frame from the caller's home shard, stealing from the
// other shards in wrap order when it runs dry. The frame is frozen. Only one
// shard mutex is ever held at a time.
func (p *basePool) takeFree(ctx *Ctx) (int32, bool) {
	home := p.shardIndexFor(ctx)
	n := len(p.shards)
	for k := 0; k < n; k++ {
		sh := &p.shards[(home+k)%n]
		if sh.freeN.Load() == 0 {
			continue // empty at a glance; steal onward without locking
		}
		p.lockShard(sh)
		if len(sh.free) == 0 {
			p.unlockShard(sh)
			continue
		}
		f := sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
		sh.freeN.Store(int32(len(sh.free)))
		p.unlockShard(sh)
		p.freeLen.Add(-1)
		if k > 0 {
			p.steals.Add(1)
		}
		return f, true
	}
	return noFrame, false
}

// victim picks a CLOCK victim from the given shard, returning a pool-global
// frame index. Victim selection itself is lock-free.
func (p *basePool) victim(si int) int32 {
	sh := &p.shards[si%len(p.shards)]
	return sh.lo + int32(sh.clock.Victim())
}

// ref, unref and referenced route a frame's reference bit to its home
// shard's CLOCK instance.
func (p *basePool) ref(f int32) {
	sh := p.shardOf(f)
	sh.clock.Ref(int(f - sh.lo))
}

func (p *basePool) unref(f int32) {
	sh := p.shardOf(f)
	sh.clock.Unref(int(f - sh.lo))
}

func (p *basePool) referenced(f int32) bool {
	sh := p.shardOf(f)
	return sh.clock.Referenced(int(f - sh.lo))
}

// release returns a frozen frame to its home shard's free list. The freeze
// invariant is asserted in debug builds: a frame entering a free list with
// pins != -1 could be surfaced thawed by a cross-shard steal.
func (p *basePool) release(f int32) {
	p.meta[f].pid.Store(InvalidPageID)
	p.meta[f].dirty.Store(false)
	p.meta[f].fg.Store(nil)
	p.meta[f].clAdmit.Store(false)
	if lockcheck.Enabled && p.meta[f].pins.Load() != -1 {
		panic(fmt.Sprintf("core: frame %d pushed to free list with pins=%d, want -1 (frozen)",
			f, p.meta[f].pins.Load()))
	}
	sh := p.shardOf(f)
	sh.clock.Unref(int(f - sh.lo))
	p.lockShard(sh)
	sh.free = append(sh.free, f)
	sh.freeN.Store(int32(len(sh.free)))
	p.unlockShard(sh)
	p.freeLen.Add(1)
}

// Steals reports how many free-list pops were served by a non-home shard.
func (p *basePool) Steals() uint64 { return p.steals.Load() }

// dramPool is the DRAM buffer: a plain arena priced by a MemCharger.
// When mini pages are enabled a slice of the budget is carved into mini
// frames (16 loading units each) with their own CLOCK.
type dramPool struct {
	basePool
	arena  []byte
	charge MemCharger

	// mini-page arena (nil when disabled)
	mini *miniPool
}

type miniPool struct {
	basePool
	arena    []byte
	unit     int
	slotSize int // 16*unit bytes of data per mini frame
}

func newDRAMPool(cfg Config, charge MemCharger) (*dramPool, error) {
	budget := cfg.DRAMBytes
	var miniBudget int64
	if cfg.MiniPages {
		miniBudget = int64(float64(budget) * cfg.MiniArenaFraction)
		budget -= miniBudget
	}
	nFrames := int(budget / PageSize)
	if nFrames < 1 {
		return nil, fmt.Errorf("core: DRAM buffer of %d bytes holds no %d-byte page", cfg.DRAMBytes, PageSize)
	}
	dp := &dramPool{
		arena:  make([]byte, int64(nFrames)*PageSize),
		charge: charge,
	}
	dp.basePool.init(nFrames, cfg.ClockWeight, cfg.Shards)
	if cfg.MiniPages {
		slotSize := miniSlots * cfg.LoadingUnit
		nMini := int(miniBudget / int64(slotSize))
		if nMini < 1 {
			nMini = 1
		}
		dp.mini = &miniPool{
			arena:    make([]byte, nMini*slotSize),
			unit:     cfg.LoadingUnit,
			slotSize: slotSize,
		}
		dp.mini.basePool.init(nMini, cfg.ClockWeight, cfg.Shards)
	}
	return dp, nil
}

// frame returns the full-frame payload slice.
func (p *dramPool) frame(i int32) []byte {
	off := int64(i) * PageSize
	return p.arena[off : off+PageSize : off+PageSize]
}

// frameOffset is the arena offset of frame i (used for memory-mode pricing).
func (p *dramPool) frameOffset(i int32) int64 { return int64(i) * PageSize }

// data returns the mini-frame payload slice.
func (p *miniPool) data(i int32) []byte {
	off := int(i) * p.slotSize
	return p.arena[off : off+p.slotSize : off+p.slotSize]
}

// nvmPool is the NVM buffer, carved out of a persistent-memory arena. Each
// frame is prefixed with a self-identifying header so recovery can rebuild
// the mapping table by scanning the arena.
type nvmPool struct {
	basePool
	pm *pmem.PMem
}

func newNVMPool(cfg Config) (*nvmPool, error) {
	nFrames := int(cfg.NVMBytes / nvmFrameSlot)
	if nFrames < 1 {
		return nil, fmt.Errorf("core: NVM buffer of %d bytes holds no frame", cfg.NVMBytes)
	}
	pm := cfg.PMem
	if pm == nil {
		pm = pmem.New(pmem.Options{Size: int64(nFrames) * nvmFrameSlot})
	} else if pm.Size() < int64(nFrames)*nvmFrameSlot {
		nFrames = int(pm.Size() / nvmFrameSlot)
		if nFrames < 1 {
			return nil, fmt.Errorf("core: provided pmem arena of %d bytes holds no frame", pm.Size())
		}
	}
	np := &nvmPool{pm: pm}
	np.basePool.init(nFrames, cfg.ClockWeight, cfg.Shards)
	return np, nil
}

// payloadOffset is the arena offset of frame i's page payload.
func (p *nvmPool) payloadOffset(i int32) int64 {
	return int64(i)*nvmFrameSlot + nvmFrameHeaderSize
}

// headerOffset is the arena offset of frame i's header.
func (p *nvmPool) headerOffset(i int32) int64 { return int64(i) * nvmFrameSlot }

// nvmHeaderTable is the CRC polynomial for the frame-header checksum.
var nvmHeaderTable = crc32.MakeTable(crc32.Castagnoli)

// headerSum checksums a frame header's magic and page-id words. The sum is
// stored at bytes [4:8) and validated by readHeader, so a torn header write
// — a crash mid-install — can never resurrect a frame under a garbage pid.
func headerSum(hdr []byte) uint32 {
	s := crc32.Checksum(hdr[0:4], nvmHeaderTable)
	return crc32.Update(s, nvmHeaderTable, hdr[8:16])
}

// writeHeader installs (and persists) frame i's self-identifying header. The
// 16-byte header is [magic u32][crc u32][pid u64]; a fault can tear it, which
// the checksum converts into "invalid frame" rather than silent corruption.
func (p *nvmPool) writeHeader(c *vclock.Clock, i int32, pid PageID, valid bool) error {
	var hdr [16]byte
	magic := uint32(0)
	if valid {
		magic = nvmFrameMagic
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint64(hdr[8:16], pid)
	binary.LittleEndian.PutUint32(hdr[4:8], headerSum(hdr[:]))
	if err := p.pm.WriteErr(c, p.headerOffset(i), hdr[:]); err != nil {
		return fmt.Errorf("core: nvm frame %d header: %w", i, err)
	}
	if err := p.pm.PersistErr(c, p.headerOffset(i), len(hdr)); err != nil {
		return fmt.Errorf("core: nvm frame %d header persist: %w", i, err)
	}
	return nil
}

// readHeader decodes frame i's header without charging a device (recovery
// scans charge separately). Frames with a bad magic or checksum — including
// headers torn by a crash mid-install — read as invalid.
func (p *nvmPool) readHeader(i int32) (pid PageID, valid bool) {
	hdr := p.pm.Bytes(p.headerOffset(i), 16)
	if binary.LittleEndian.Uint32(hdr[0:4]) != nvmFrameMagic {
		return InvalidPageID, false
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != headerSum(hdr) {
		return InvalidPageID, false
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), true
}

// writePayload stores (and persists) page data into frame i at the given
// offset within the page. A torn write leaves a prefix on media; callers
// retry the full write (the payload only becomes reachable once the header
// is installed after it, so a half-written payload is never served).
func (p *nvmPool) writePayload(c *vclock.Clock, i int32, off int, data []byte) error {
	base := p.payloadOffset(i) + int64(off)
	if err := p.pm.WriteErr(c, base, data); err != nil {
		return fmt.Errorf("core: nvm frame %d write: %w", i, err)
	}
	if err := p.pm.PersistErr(c, base, len(data)); err != nil {
		return fmt.Errorf("core: nvm frame %d persist: %w", i, err)
	}
	return nil
}

// readPayload loads page data from frame i at the given in-page offset.
func (p *nvmPool) readPayload(c *vclock.Clock, i int32, off int, buf []byte) error {
	if err := p.pm.ReadErr(c, p.payloadOffset(i)+int64(off), buf); err != nil {
		return fmt.Errorf("core: nvm frame %d read: %w", i, err)
	}
	return nil
}
