package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/bitmapclock"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// frameMeta is the volatile metadata of one buffer frame.
//
// pins encodes the frame's lifecycle: -1 means frozen (owned exclusively by
// an allocator/evictor/migrator and invisible to fetchers), 0 means resident
// and unpinned, >0 counts pinned users. Frames on the free list are frozen.
type frameMeta struct {
	pid   atomic.Uint64
	pins  atomic.Int32
	dirty atomic.Bool
	fg    atomic.Pointer[fgState] // fine-grained residency; DRAM full frames only
}

// tryPin attempts to pin the frame; it fails if the frame is frozen.
func (f *frameMeta) tryPin() bool {
	for {
		p := f.pins.Load()
		if p < 0 {
			return false
		}
		if f.pins.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// unpin drops one pin.
func (f *frameMeta) unpin() { f.pins.Add(-1) }

// tryFreeze attempts to take exclusive ownership of an unpinned frame.
func (f *frameMeta) tryFreeze() bool { return f.pins.CompareAndSwap(0, -1) }

// freezeWait spins until the frame's pin count drains to zero and freezes
// it. It returns false if the wait budget is exhausted or the frame was
// freed/retargeted concurrently (detected via pid change).
func (f *frameMeta) freezeWait(pid PageID) bool {
	for i := 0; i < waitBudget; i++ {
		if f.pid.Load() != pid {
			return false
		}
		if f.tryFreeze() {
			return true
		}
		backoff(i)
	}
	return false
}

// thaw releases exclusive ownership, making the frame pinnable again.
func (f *frameMeta) thaw() { f.pins.Store(0) }

// replacer abstracts the page-replacement policy over a pool's frames.
// Both the concurrent-bitmap CLOCK the paper uses and the generalized
// (counter-based) GCLOCK of the cited NB-GCLOCK design satisfy it.
type replacer interface {
	Ref(i int)
	Unref(i int)
	Referenced(i int) bool
	Victim() int
	Len() int
}

// newReplacer picks the policy for a pool: weight <= 1 is classic CLOCK,
// larger weights give frames that many sweep-survivals (GCLOCK).
func newReplacer(nFrames, weight int) replacer {
	if weight > 1 {
		return bitmapclock.NewGClock(nFrames, weight)
	}
	return bitmapclock.New(nFrames)
}

// basePool holds the bookkeeping shared by the DRAM and NVM pools.
type basePool struct {
	nFrames int
	meta    []frameMeta
	clock   replacer
	free    chan int32
}

func newBasePool(nFrames, clockWeight int) basePool {
	p := basePool{
		nFrames: nFrames,
		meta:    make([]frameMeta, nFrames),
		clock:   newReplacer(nFrames, clockWeight),
		free:    make(chan int32, nFrames),
	}
	for i := range p.meta {
		p.meta[i].pid.Store(InvalidPageID)
		p.meta[i].pins.Store(-1) // free frames are frozen
		p.free <- int32(i)
	}
	return p
}

// takeFree pops a frame from the free list, if any. The frame is frozen.
func (p *basePool) takeFree() (int32, bool) {
	select {
	case f := <-p.free:
		return f, true
	default:
		return noFrame, false
	}
}

// release returns a frozen frame to the free list.
func (p *basePool) release(f int32) {
	p.meta[f].pid.Store(InvalidPageID)
	p.meta[f].dirty.Store(false)
	p.meta[f].fg.Store(nil)
	p.clock.Unref(int(f))
	p.free <- f
}

// dramPool is the DRAM buffer: a plain arena priced by a MemCharger.
// When mini pages are enabled a slice of the budget is carved into mini
// frames (16 loading units each) with their own CLOCK.
type dramPool struct {
	basePool
	arena  []byte
	charge MemCharger

	// mini-page arena (nil when disabled)
	mini *miniPool
}

type miniPool struct {
	basePool
	arena    []byte
	unit     int
	slotSize int // 16*unit bytes of data per mini frame
}

func newDRAMPool(cfg Config, charge MemCharger) (*dramPool, error) {
	budget := cfg.DRAMBytes
	var miniBudget int64
	if cfg.MiniPages {
		miniBudget = int64(float64(budget) * cfg.MiniArenaFraction)
		budget -= miniBudget
	}
	nFrames := int(budget / PageSize)
	if nFrames < 1 {
		return nil, fmt.Errorf("core: DRAM buffer of %d bytes holds no %d-byte page", cfg.DRAMBytes, PageSize)
	}
	dp := &dramPool{
		basePool: newBasePool(nFrames, cfg.ClockWeight),
		arena:    make([]byte, int64(nFrames)*PageSize),
		charge:   charge,
	}
	if cfg.MiniPages {
		slotSize := miniSlots * cfg.LoadingUnit
		nMini := int(miniBudget / int64(slotSize))
		if nMini < 1 {
			nMini = 1
		}
		dp.mini = &miniPool{
			basePool: newBasePool(nMini, cfg.ClockWeight),
			arena:    make([]byte, nMini*slotSize),
			unit:     cfg.LoadingUnit,
			slotSize: slotSize,
		}
	}
	return dp, nil
}

// frame returns the full-frame payload slice.
func (p *dramPool) frame(i int32) []byte {
	off := int64(i) * PageSize
	return p.arena[off : off+PageSize : off+PageSize]
}

// frameOffset is the arena offset of frame i (used for memory-mode pricing).
func (p *dramPool) frameOffset(i int32) int64 { return int64(i) * PageSize }

// data returns the mini-frame payload slice.
func (p *miniPool) data(i int32) []byte {
	off := int(i) * p.slotSize
	return p.arena[off : off+p.slotSize : off+p.slotSize]
}

// nvmPool is the NVM buffer, carved out of a persistent-memory arena. Each
// frame is prefixed with a self-identifying header so recovery can rebuild
// the mapping table by scanning the arena.
type nvmPool struct {
	basePool
	pm *pmem.PMem
}

func newNVMPool(cfg Config) (*nvmPool, error) {
	nFrames := int(cfg.NVMBytes / nvmFrameSlot)
	if nFrames < 1 {
		return nil, fmt.Errorf("core: NVM buffer of %d bytes holds no frame", cfg.NVMBytes)
	}
	pm := cfg.PMem
	if pm == nil {
		pm = pmem.New(pmem.Options{Size: int64(nFrames) * nvmFrameSlot})
	} else if pm.Size() < int64(nFrames)*nvmFrameSlot {
		nFrames = int(pm.Size() / nvmFrameSlot)
		if nFrames < 1 {
			return nil, fmt.Errorf("core: provided pmem arena of %d bytes holds no frame", pm.Size())
		}
	}
	return &nvmPool{basePool: newBasePool(nFrames, cfg.ClockWeight), pm: pm}, nil
}

// payloadOffset is the arena offset of frame i's page payload.
func (p *nvmPool) payloadOffset(i int32) int64 {
	return int64(i)*nvmFrameSlot + nvmFrameHeaderSize
}

// headerOffset is the arena offset of frame i's header.
func (p *nvmPool) headerOffset(i int32) int64 { return int64(i) * nvmFrameSlot }

// writeHeader installs (and persists) frame i's self-identifying header.
func (p *nvmPool) writeHeader(c *vclock.Clock, i int32, pid PageID, valid bool) {
	var hdr [16]byte
	magic := uint32(0)
	if valid {
		magic = nvmFrameMagic
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint64(hdr[8:16], pid)
	p.pm.Write(c, p.headerOffset(i), hdr[:])
	p.pm.Persist(c, p.headerOffset(i), len(hdr))
}

// readHeader decodes frame i's header without charging a device (recovery
// scans charge separately).
func (p *nvmPool) readHeader(i int32) (pid PageID, valid bool) {
	hdr := p.pm.Bytes(p.headerOffset(i), 16)
	if binary.LittleEndian.Uint32(hdr[0:4]) != nvmFrameMagic {
		return InvalidPageID, false
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), true
}

// writePayload stores (and persists) page data into frame i at the given
// offset within the page.
func (p *nvmPool) writePayload(c *vclock.Clock, i int32, off int, data []byte) {
	base := p.payloadOffset(i) + int64(off)
	p.pm.Write(c, base, data)
	p.pm.Persist(c, base, len(data))
}

// readPayload loads page data from frame i at the given in-page offset.
func (p *nvmPool) readPayload(c *vclock.Clock, i int32, off int, buf []byte) {
	p.pm.Read(c, p.payloadOffset(i)+int64(off), buf)
}
