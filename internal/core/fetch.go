package core

import (
	"errors"
	"fmt"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// FetchPage returns a pinned handle to page pid, applying the data-migration
// policy of §3:
//
//   - DRAM hit: serve from DRAM.
//   - NVM hit: with probability Dr (reads) or Dw (writes) migrate the page
//     up to DRAM; otherwise serve it directly from NVM, which the CPU can
//     operate on in place.
//   - Miss: with probability Nr fetch SSD→NVM, otherwise SSD→DRAM
//     (bypassing NVM).
//
// The caller must Release the handle, and must not fetch a page while
// already holding a pinned handle to that same page.
//
// With observability attached, the fetch's simulated duration is recorded in
// the per-hit-tier latency histograms and a tracer event is emitted; with
// bm.obs nil the only cost over the raw fetch is this one nil check.
func (bm *BufferManager) FetchPage(ctx *Ctx, pid PageID, intent Intent) (*Handle, error) {
	if err := ctx.interrupted(); err != nil {
		return nil, err
	}
	if bm.obs == nil {
		return bm.fetchPage(ctx, pid, intent)
	}
	start := ctx.Clock.Now()
	h, err := bm.fetchPage(ctx, pid, intent)
	now := ctx.Clock.Now()
	dur := now - start
	ev := obs.Event{TS: now, Dur: dur, Type: obs.EvFetch, Page: pid}
	if err != nil {
		ev.Outcome = obs.OutError
	} else {
		switch h.how {
		case howHitDRAM:
			bm.hFetchDRAM.Observe(dur)
			ev.From, ev.To = obs.TierDRAM, obs.TierDRAM
		case howHitMini:
			bm.hFetchMini.Observe(dur)
			ev.From, ev.To = obs.TierMini, obs.TierMini
		case howHitNVM:
			bm.hFetchNVM.Observe(dur)
			ev.From, ev.To = obs.TierNVM, obs.TierNVM
		case howMigrated:
			bm.hFetchNVM.Observe(dur)
			ev.From, ev.To = obs.TierNVM, obsTier(h.tier)
		case howMissDRAM:
			bm.hFetchMiss.Observe(dur)
			ev.From, ev.To, ev.Outcome = obs.TierSSD, obs.TierDRAM, obs.OutMiss
		case howMissNVM:
			bm.hFetchMiss.Observe(dur)
			ev.From, ev.To, ev.Outcome = obs.TierSSD, obs.TierNVM, obs.OutMiss
		}
	}
	bm.obsRing(ctx).Emit(ev)
	return h, err
}

// fetchPage is the uninstrumented fetch; see FetchPage for the contract.
func (bm *BufferManager) fetchPage(ctx *Ctx, pid PageID, intent Intent) (*Handle, error) {
	d := bm.descriptorFor(pid)
	pol := bm.pol.Load()

	for attempt := 0; ; attempt++ {
		d.lockMu()
		// DRAM full frame.
		if f := d.dramFrame; f != noFrame {
			if bm.dram.meta[f].tryPin() {
				d.unlockMu()
				bm.dram.ref(f)
				bm.stats.hitDRAM.Inc()
				return &Handle{bm: bm, d: d, tier: TierDRAM, frame: f, how: howHitDRAM}, nil
			}
			d.unlockMu() // frozen mid-eviction; wait it out
			backoff(attempt)
			continue
		}
		// DRAM mini frame.
		if f := d.dramMini; f != noFrame {
			mp := bm.dram.mini
			if mp.meta[f].tryPin() {
				d.unlockMu()
				mp.ref(f)
				bm.stats.hitMini.Inc()
				return &Handle{bm: bm, d: d, tier: TierMini, frame: f, how: howHitMini}, nil
			}
			d.unlockMu()
			backoff(attempt)
			continue
		}
		// NVM frame.
		if f := d.nvmFrame; f != noFrame {
			if bm.nvmDown() {
				// The tier died; this descriptor raced the degradation walk.
				// Detach its dead copy inline and retry as a miss/DRAM hit.
				d.unlockMu()
				bm.detachDeadNVM(d)
				continue
			}
			migrate := false
			if bm.dram != nil {
				p := pol.Dr
				if intent == WriteIntent {
					p = pol.Dw
				}
				migrate = ctx.bernoulli(p)
			}
			if !migrate {
				if bm.nvm.meta[f].tryPin() {
					d.unlockMu()
					bm.nvm.ref(f)
					bm.stats.hitNVM.Inc()
					if bm.nvm.meta[f].clAdmit.Load() {
						bm.stats.hitNVMCleanerAdmitted.Inc()
					}
					return &Handle{bm: bm, d: d, tier: TierNVM, frame: f, how: howHitNVM}, nil
				}
				d.unlockMu()
				backoff(attempt)
				continue
			}
			d.unlockMu()
			if h, err := bm.migrateUp(ctx, d); err != nil {
				return nil, err
			} else if h != nil {
				return h, nil
			}
			continue // state changed under us; retry
		}
		d.unlockMu()

		// Miss on both buffers: fetch from SSD.
		h, err := bm.fetchMiss(ctx, d, pol)
		if err != nil {
			return nil, err
		}
		if h != nil {
			bm.stats.missSSD.Inc()
			return h, nil
		}
		// Lost an install race; retry.
	}
}

// migrateUp moves page d from NVM to DRAM along path ❻ of Figure 3, keeping
// the NVM copy (which the replacement policy will age out; the coexistence
// of the two copies is what the inclusivity ratio of §3.3 measures).
//
// Per §5.2, it (1) acquires the DRAM and NVM latches, (2) waits for all
// references to the NVM copy to drain so the DRAM copy cannot miss
// concurrent modifications, and (3) copies and publishes. It returns
// (nil, nil) if the descriptor changed underneath and the caller should
// retry.
func (bm *BufferManager) migrateUp(ctx *Ctx, d *descriptor) (*Handle, error) {
	d.lockD()
	d.lockN()
	defer d.unlockN()
	defer d.unlockD()

	loc := d.load()
	if loc.dramFrame != noFrame || loc.dramMini != noFrame || loc.nvmFrame == noFrame {
		return nil, nil
	}
	nf := loc.nvmFrame
	if !bm.nvm.meta[nf].freezeWait(d.pid) {
		return nil, nil // long-held pins; let the caller serve from NVM
	}
	defer bm.nvm.meta[nf].thaw()

	if bm.cfg.FineGrained {
		// Fine-grained loading: install an empty cache-line-grained page
		// (mini if enabled); units fault in on demand, so no bulk copy.
		if bm.dram.mini != nil {
			mf, err := bm.dram.allocMini(bm, ctx)
			if err != nil {
				if isIOErr(err) {
					return nil, fmt.Errorf("core: migrate page %d up: %w", d.pid, err)
				}
				return nil, nil // DRAM churn; serve from NVM this time
			}
			mp := bm.dram.mini
			mp.meta[mf].pid.Store(d.pid)
			mp.meta[mf].dirty.Store(false)
			mp.meta[mf].fg.Store(newMiniFG(bm.cfg.LoadingUnit))
			d.lockMu()
			d.dramMini = mf
			d.unlockMu()
			mp.meta[mf].pins.Store(1)
			mp.ref(mf)
			bm.stats.migNVMToDRAM.Inc()
			return &Handle{bm: bm, d: d, tier: TierMini, frame: mf, how: howMigrated}, nil
		}
		f, err := bm.dram.alloc(bm, ctx)
		if err != nil {
			if isIOErr(err) {
				return nil, fmt.Errorf("core: migrate page %d up: %w", d.pid, err)
			}
			return nil, nil
		}
		bm.dram.meta[f].pid.Store(d.pid)
		bm.dram.meta[f].dirty.Store(false)
		bm.dram.meta[f].fg.Store(newFullFG(bm.cfg.LoadingUnit))
		d.lockMu()
		d.dramFrame = f
		d.unlockMu()
		bm.dram.meta[f].pins.Store(1)
		bm.dram.ref(f)
		bm.stats.migNVMToDRAM.Inc()
		return &Handle{bm: bm, d: d, tier: TierDRAM, frame: f, how: howMigrated}, nil
	}

	// Whole-page migration.
	f, err := bm.dram.alloc(bm, ctx)
	if err != nil {
		if isIOErr(err) {
			return nil, fmt.Errorf("core: migrate page %d up: %w", d.pid, err)
		}
		return nil, nil
	}
	if err := bm.nvmReadPayload(ctx.Clock, nf, 0, bm.dram.frame(f)); err != nil {
		bm.dram.release(f)
		if errors.Is(err, device.ErrPermanent) && !errors.Is(err, device.ErrCrashed) {
			// nvmReadPayload already degraded the tier; the caller's retry
			// loop detaches the dead copy and falls back to the SSD route.
			return nil, nil
		}
		return nil, fmt.Errorf("core: migrate page %d up: %w", d.pid, err)
	}
	bm.dram.charge.ChargeWrite(ctx.Clock, bm.dram.frameOffset(f), PageSize)
	bm.dram.meta[f].pid.Store(d.pid)
	bm.dram.meta[f].dirty.Store(false)
	bm.dram.meta[f].fg.Store(nil)
	d.lockMu()
	d.dramFrame = f
	d.unlockMu()
	bm.dram.meta[f].pins.Store(1)
	bm.dram.ref(f)
	bm.stats.migNVMToDRAM.Inc()
	return &Handle{bm: bm, d: d, tier: TierDRAM, frame: f, how: howMigrated}, nil
}

// fetchMiss brings page d in from SSD. With probability Nr it installs the
// page in the NVM buffer (path ❼ of Figure 3); otherwise it bypasses NVM
// and loads straight into DRAM (path ❾, §3.3). It returns (nil, nil) if a
// concurrent fetch installed the page first.
//
// If the NVM route fails with an I/O error and a DRAM tier exists, the fetch
// falls back to the DRAM route: a dying NVM buffer degrades service rather
// than failing reads the SSD can still satisfy.
func (bm *BufferManager) fetchMiss(ctx *Ctx, d *descriptor, pol *policy.Policy) (*Handle, error) {
	toNVM := bm.nvm != nil && !bm.nvmDown() && (bm.dram == nil || ctx.bernoulli(pol.Nr))

	if toNVM {
		h, err := bm.fetchMissNVM(ctx, d)
		if err == nil {
			return h, nil // h == nil means an install race; the caller retries
		}
		if bm.dram == nil || errors.Is(err, device.ErrCrashed) {
			return nil, fmt.Errorf("core: fetch page %d: %w", d.pid, err)
		}
		// NVM route failed; fall through to the DRAM route below.
	}

	d.lockD()
	d.lockS()
	defer d.unlockS()
	defer d.unlockD()
	loc := d.load()
	if loc.dramFrame != noFrame || loc.dramMini != noFrame || loc.nvmFrame != noFrame {
		return nil, nil
	}
	f, err := bm.dram.alloc(bm, ctx)
	if err != nil {
		return nil, err
	}
	if err := bm.diskReadPage(ctx.Clock, d.pid, bm.dram.frame(f)); err != nil {
		bm.dram.release(f)
		return nil, fmt.Errorf("core: fetch page %d: %w", d.pid, err)
	}
	bm.dram.charge.ChargeWrite(ctx.Clock, bm.dram.frameOffset(f), PageSize)
	bm.dram.meta[f].pid.Store(d.pid)
	bm.dram.meta[f].dirty.Store(false)
	bm.dram.meta[f].fg.Store(nil)
	d.lockMu()
	d.dramFrame = f
	d.unlockMu()
	bm.dram.meta[f].pins.Store(1)
	bm.dram.ref(f)
	bm.stats.ssdToDRAM.Inc()
	return &Handle{bm: bm, d: d, tier: TierDRAM, frame: f, how: howMissDRAM}, nil
}

// fetchMissNVM is fetchMiss's SSD→NVM route (path ❼). It returns (nil, nil)
// on an install race and a typed error on I/O failure; the payload is written
// and persisted before the self-identifying header, so a crash mid-install
// leaves an invalid frame, never a valid header over torn data.
func (bm *BufferManager) fetchMissNVM(ctx *Ctx, d *descriptor) (*Handle, error) {
	d.lockN()
	d.lockS()
	defer d.unlockS()
	defer d.unlockN()
	loc := d.load()
	if loc.dramFrame != noFrame || loc.dramMini != noFrame || loc.nvmFrame != noFrame {
		return nil, nil
	}
	nf, err := bm.nvm.alloc(bm, ctx)
	if err != nil {
		return nil, err
	}
	buf := ctx.buf()
	if err := bm.diskReadPage(ctx.Clock, d.pid, buf); err != nil {
		bm.nvm.release(nf)
		return nil, err
	}
	if err := bm.installNVMPage(ctx.Clock, nf, d.pid, buf); err != nil {
		bm.nvm.release(nf)
		return nil, err
	}
	bm.nvm.meta[nf].pid.Store(d.pid)
	bm.nvm.meta[nf].dirty.Store(false)
	bm.nvm.meta[nf].clAdmit.Store(false)
	d.lockMu()
	d.nvmFrame = nf
	d.unlockMu()
	bm.nvm.meta[nf].pins.Store(1)
	bm.nvm.ref(nf)
	bm.stats.ssdToNVM.Inc()
	return &Handle{bm: bm, d: d, tier: TierNVM, frame: nf, how: howMissNVM}, nil
}

// NewPage allocates a fresh, zeroed page and returns it pinned. Placement
// follows Dw (§3.2): with probability Dw the page is buffered in DRAM (the
// group-commit-style route through volatile memory); otherwise it is
// created directly in the NVM buffer, where writes are immediately durable.
func (bm *BufferManager) NewPage(ctx *Ctx) (PageID, *Handle, error) {
	if err := ctx.interrupted(); err != nil {
		return 0, nil, err
	}
	pid := bm.AllocatePageID()
	h, err := bm.materialize(ctx, pid)
	if err != nil {
		return 0, nil, err
	}
	return pid, h, nil
}

// materialize creates a zeroed, dirty, pinned frame for pid, which must not
// be resident anywhere.
func (bm *BufferManager) materialize(ctx *Ctx, pid PageID) (*Handle, error) {
	d := bm.descriptorFor(pid)
	pol := bm.pol.Load()
	toDRAM := bm.dram != nil && (bm.nvm == nil || bm.nvmDown() || ctx.bernoulli(pol.Dw))

	if toDRAM {
		d.lockD()
		defer d.unlockD()
		f, err := bm.dram.alloc(bm, ctx)
		if err != nil {
			return nil, err
		}
		fr := bm.dram.frame(f)
		for i := range fr {
			fr[i] = 0
		}
		bm.dram.charge.ChargeWrite(ctx.Clock, bm.dram.frameOffset(f), PageSize)
		bm.dram.meta[f].pid.Store(pid)
		bm.dram.meta[f].dirty.Store(true)
		bm.dram.meta[f].fg.Store(nil)
		d.lockMu()
		d.dramFrame = f
		d.unlockMu()
		bm.dram.meta[f].pins.Store(1)
		bm.dram.ref(f)
		return &Handle{bm: bm, d: d, tier: TierDRAM, frame: f}, nil
	}

	d.lockN()
	defer d.unlockN()
	nf, err := bm.nvm.alloc(bm, ctx)
	if err != nil {
		return nil, err
	}
	buf := ctx.buf()
	for i := range buf {
		buf[i] = 0
	}
	if err := bm.installNVMPage(ctx.Clock, nf, pid, buf); err != nil {
		bm.nvm.release(nf)
		return nil, fmt.Errorf("core: materialize page %d: %w", pid, err)
	}
	bm.nvm.meta[nf].pid.Store(pid)
	bm.nvm.meta[nf].dirty.Store(true)
	bm.nvm.meta[nf].clAdmit.Store(false)
	d.lockMu()
	d.nvmFrame = nf
	d.unlockMu()
	bm.nvm.meta[nf].pins.Store(1)
	bm.nvm.ref(nf)
	return &Handle{bm: bm, d: d, tier: TierNVM, frame: nf}, nil
}

// MaterializePage returns a pinned handle to page pid, creating a zeroed
// frame if the page exists nowhere (neither buffered nor on SSD). Recovery
// uses it to re-create pages whose only record is in the log.
func (bm *BufferManager) MaterializePage(ctx *Ctx, pid PageID) (*Handle, error) {
	d := bm.descriptorFor(pid)
	loc := d.load()
	if loc.dramFrame != noFrame || loc.dramMini != noFrame || loc.nvmFrame != noFrame ||
		bm.disk.Contains(pid) {
		return bm.FetchPage(ctx, pid, WriteIntent)
	}
	if bm.nextPID.Load() <= pid {
		bm.nextPID.Store(pid + 1)
	}
	return bm.materialize(ctx, pid)
}

// SeedPage writes a page directly to SSD, bypassing the buffers. Loaders
// use it to build fixtures; it also bumps the page-id allocator past pid.
func (bm *BufferManager) SeedPage(ctx *Ctx, pid PageID, data []byte) error {
	if err := bm.diskWritePage(ctx.Clock, pid, data); err != nil {
		return err
	}
	for {
		next := bm.nextPID.Load()
		if next > pid {
			return nil
		}
		if bm.nextPID.CompareAndSwap(next, pid+1) {
			return nil
		}
	}
}
