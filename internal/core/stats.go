package core

import "github.com/spitfire-db/spitfire/internal/metrics"

// bmStats counts the buffer manager's traffic along the data-flow paths of
// Figure 3 plus hit/miss/eviction activity.
type bmStats struct {
	hitDRAM, hitMini, hitNVM, missSSD metrics.Counter
	migNVMToDRAM, ssdToDRAM, ssdToNVM metrics.Counter
	dramToNVM, dramToSSD, nvmToSSD    metrics.Counter
	evictDRAM, evictMini, evictNVM    metrics.Counter
	fgUnitLoads, miniPromotions       metrics.Counter
	flushedDRAMPages, flushedNVMPages metrics.Counter
	recoveredNVMPages                 metrics.Counter

	// Background cleaner activity (DESIGN.md §5-bis).
	cleanerBatches     metrics.Counter
	cleanerCleanedDRAM metrics.Counter
	cleanerCleanedNVM  metrics.Counter
	cleanerStalls      metrics.Counter
	fgEvicts           metrics.Counter
	fgBatchCleaned     metrics.Counter

	// Fault handling (DESIGN.md §5-ter).
	ioRetries             metrics.Counter
	ioGiveUps             metrics.Counter
	nvmDegraded           metrics.Counter
	nvmOrphanedPages      metrics.Counter
	cleanerAdmittedNVM    metrics.Counter
	hitNVMCleanerAdmitted metrics.Counter
}

// Stats is a snapshot of the buffer manager's counters.
type Stats struct {
	HitDRAM, HitMini, HitNVM, MissSSD int64 // where fetches were served

	// Migrations along the Figure 3 data-flow paths.
	NVMToDRAM int64 // path ❻ (upward migration on access)
	SSDToDRAM int64 // path ❾ (NVM bypass on reads)
	SSDToNVM  int64 // path ❼ (default read path, probability Nr)
	DRAMToNVM int64 // path ❹ (NVM admission on DRAM eviction)
	DRAMToSSD int64 // path ❿ (NVM bypass on writes)
	NVMToSSD  int64 // path ❽ (NVM eviction write-back)

	EvictDRAM, EvictMini, EvictNVM int64
	FGUnitLoads, MiniPromotions    int64
	FlushedDRAMPages               int64
	FlushedNVMPages                int64
	RecoveredNVMPages              int64

	// Background cleaner activity. CleanerCleaned* count frames the cleaner
	// pre-cleaned and pushed onto a free list; ForegroundEvicts counts
	// allocations that had to evict inline (the fallback path — with the
	// cleaner keeping up this stays near zero); CleanerStalls counts
	// replenish passes that made no progress because every victim was
	// pinned or under migration. ForegroundBatchCleaned counts the extra
	// frames an inline eviction stole into the free list beyond its own —
	// the foreground assist that amortizes one victim scan across the
	// allocators queued behind it when the cleaner is behind.
	CleanerBatches         int64
	CleanerCleanedDRAM     int64
	CleanerCleanedNVM      int64
	CleanerStalls          int64
	ForegroundEvicts       int64
	ForegroundBatchCleaned int64

	// Fault handling (DESIGN.md §5-ter). IORetries counts individual retried
	// device operations, IOGiveUps operations abandoned after the retry
	// budget (or on a permanent/crash error). NVMDegraded is 1 once the NVM
	// tier has permanently failed and the manager collapsed to two-tier
	// DRAM–SSD mode; NVMOrphanedPages counts pages whose newest content was
	// lost with the tier.
	IORetries        int64
	IOGiveUps        int64
	NVMDegraded      int64
	NVMOrphanedPages int64

	// Cleaner admission bias: CleanerAdmittedNVM counts NVM installs made by
	// the background cleaner, which feeds the NVM admission queue instead of
	// flipping the Nw coin; HitNVMCleanerAdmitted is the subset of HitNVM
	// served from such frames. Comparing the two hit rates
	// (HitNVMCleanerAdmitted/CleanerAdmittedNVM vs HitNVM/SSDToNVM+
	// DRAMToNVM) shows whether queue-gated cleaner admission picks useful
	// pages.
	CleanerAdmittedNVM    int64
	HitNVMCleanerAdmitted int64

	// Sharded free-list activity: allocations that could not pop their home
	// shard's free list and stole a frame from another shard instead. A high
	// steal rate relative to allocations means the shard count outstrips the
	// worker count (or affinity churns) and frames slosh between shards.
	DRAMFreeSteals int64
	NVMFreeSteals  int64
}

// Stats snapshots the manager's counters.
func (bm *BufferManager) Stats() Stats {
	s := &bm.stats
	var dramSteals, nvmSteals int64
	if bm.dram != nil {
		dramSteals = int64(bm.dram.Steals())
	}
	if bm.nvm != nil {
		nvmSteals = int64(bm.nvm.Steals())
	}
	return Stats{
		DRAMFreeSteals: dramSteals,
		NVMFreeSteals:  nvmSteals,
		HitDRAM:        s.hitDRAM.Load(), HitMini: s.hitMini.Load(),
		HitNVM: s.hitNVM.Load(), MissSSD: s.missSSD.Load(),
		NVMToDRAM: s.migNVMToDRAM.Load(),
		SSDToDRAM: s.ssdToDRAM.Load(), SSDToNVM: s.ssdToNVM.Load(),
		DRAMToNVM: s.dramToNVM.Load(), DRAMToSSD: s.dramToSSD.Load(),
		NVMToSSD:  s.nvmToSSD.Load(),
		EvictDRAM: s.evictDRAM.Load(), EvictMini: s.evictMini.Load(),
		EvictNVM:    s.evictNVM.Load(),
		FGUnitLoads: s.fgUnitLoads.Load(), MiniPromotions: s.miniPromotions.Load(),
		FlushedDRAMPages:   s.flushedDRAMPages.Load(),
		FlushedNVMPages:    s.flushedNVMPages.Load(),
		RecoveredNVMPages:  s.recoveredNVMPages.Load(),
		CleanerBatches:     s.cleanerBatches.Load(),
		CleanerCleanedDRAM: s.cleanerCleanedDRAM.Load(),
		CleanerCleanedNVM:  s.cleanerCleanedNVM.Load(),
		CleanerStalls:      s.cleanerStalls.Load(),
		ForegroundEvicts:   s.fgEvicts.Load(),

		ForegroundBatchCleaned: s.fgBatchCleaned.Load(),

		IORetries:             s.ioRetries.Load(),
		IOGiveUps:             s.ioGiveUps.Load(),
		NVMDegraded:           s.nvmDegraded.Load(),
		NVMOrphanedPages:      s.nvmOrphanedPages.Load(),
		CleanerAdmittedNVM:    s.cleanerAdmittedNVM.Load(),
		HitNVMCleanerAdmitted: s.hitNVMCleanerAdmitted.Load(),
	}
}

// ResetStats zeroes the hit/migration counters (buffer contents are kept).
func (bm *BufferManager) ResetStats() {
	s := &bm.stats
	for _, c := range []*metrics.Counter{
		&s.hitDRAM, &s.hitMini, &s.hitNVM, &s.missSSD,
		&s.migNVMToDRAM, &s.ssdToDRAM, &s.ssdToNVM,
		&s.dramToNVM, &s.dramToSSD, &s.nvmToSSD,
		&s.evictDRAM, &s.evictMini, &s.evictNVM,
		&s.fgUnitLoads, &s.miniPromotions,
		&s.flushedDRAMPages, &s.flushedNVMPages, &s.recoveredNVMPages,
		&s.cleanerBatches, &s.cleanerCleanedDRAM, &s.cleanerCleanedNVM,
		&s.cleanerStalls, &s.fgEvicts, &s.fgBatchCleaned,
		&s.ioRetries, &s.ioGiveUps,
		&s.nvmOrphanedPages,
		&s.cleanerAdmittedNVM, &s.hitNVMCleanerAdmitted,
	} {
		c.Store(0)
	}
}

// PoolGauges is a point-in-time occupancy snapshot of the buffer pools,
// exposed to the observability layer as gauges: per-tier capacity, free-list
// depth, occupied frames, and dirty frames.
type PoolGauges struct {
	DRAMFrames, DRAMFree, DRAMUsed, DRAMDirty int
	MiniFrames, MiniFree, MiniUsed, MiniDirty int
	NVMFrames, NVMFree, NVMUsed, NVMDirty     int
}

// poolGauges scans a pool's frame metadata. The scan is racy by design —
// gauges are monitoring data, not invariants — but every load is atomic.
func poolGauges(p *basePool) (free, used, dirty int) {
	free = p.freeCount()
	for i := range p.meta {
		if p.meta[i].pid.Load() == InvalidPageID {
			continue
		}
		used++
		if p.meta[i].dirty.Load() {
			dirty++
		}
	}
	return free, used, dirty
}

// PoolGauges snapshots buffer-pool occupancy for live exposition.
func (bm *BufferManager) PoolGauges() PoolGauges {
	var g PoolGauges
	if bm.dram != nil {
		g.DRAMFrames = bm.dram.nFrames
		g.DRAMFree, g.DRAMUsed, g.DRAMDirty = poolGauges(&bm.dram.basePool)
		if bm.dram.mini != nil {
			g.MiniFrames = bm.dram.mini.nFrames
			g.MiniFree, g.MiniUsed, g.MiniDirty = poolGauges(&bm.dram.mini.basePool)
		}
	}
	if bm.nvm != nil {
		g.NVMFrames = bm.nvm.nFrames
		g.NVMFree, g.NVMUsed, g.NVMDirty = poolGauges(&bm.nvm.basePool)
	}
	return g
}

// Pressure is the buffer manager's load-shedding signal set, sampled by
// admission-control front-ends (internal/server) so they can refuse work
// *before* the manager saturates: free-list depth per tier, the counters
// that rise when the cleaner falls behind (foreground evictions, cleaner
// stalls), and the permanent-degradation flag. Unlike PoolGauges it never
// scans frame metadata — every read is one atomic load — so it is cheap
// enough to sample on a tight monitoring loop.
type Pressure struct {
	// DRAMFree/NVMFree are the current free-list depths in frames;
	// DRAMFrames/NVMFrames the tier capacities (0 when the tier is absent
	// or, for NVM, permanently failed).
	DRAMFree, DRAMFrames int
	NVMFree, NVMFrames   int

	// DRAMFreeFrac and NVMFreeFrac are free/capacity, reported as 1 for an
	// absent tier so "min over tiers" works without special cases.
	DRAMFreeFrac, NVMFreeFrac float64

	// ForegroundEvicts and CleanerStalls are cumulative counters; a rising
	// delta between two samples means allocations are outpacing the
	// background cleaner (the onset of an eviction convoy).
	ForegroundEvicts int64
	CleanerStalls    int64

	// Degraded latches true once the NVM tier has failed permanently and
	// the hierarchy collapsed to two-tier DRAM–SSD mode.
	Degraded bool
}

// MinFreeFrac returns the scarcest tier's free-list fraction.
func (p Pressure) MinFreeFrac() float64 {
	if p.DRAMFreeFrac < p.NVMFreeFrac {
		return p.DRAMFreeFrac
	}
	return p.NVMFreeFrac
}

// Pressure samples the load-shedding signals. Safe to call concurrently
// with a running workload; the snapshot is racy by design (monitoring data,
// not an invariant).
func (bm *BufferManager) Pressure() Pressure {
	p := Pressure{DRAMFreeFrac: 1, NVMFreeFrac: 1}
	if bm.dram != nil {
		p.DRAMFrames = bm.dram.nFrames
		p.DRAMFree = bm.dram.freeCount()
		if p.DRAMFrames > 0 {
			p.DRAMFreeFrac = float64(p.DRAMFree) / float64(p.DRAMFrames)
		}
	}
	p.Degraded = bm.nvmFailed.Load()
	if bm.nvm != nil && !p.Degraded {
		p.NVMFrames = bm.nvm.nFrames
		p.NVMFree = bm.nvm.freeCount()
		if p.NVMFrames > 0 {
			p.NVMFreeFrac = float64(p.NVMFree) / float64(p.NVMFrames)
		}
	}
	p.ForegroundEvicts = bm.stats.fgEvicts.Load()
	p.CleanerStalls = bm.stats.cleanerStalls.Load()
	return p
}

// Inclusivity computes the paper's inclusivity ratio (§3.3):
//
//	#pages in both DRAM and NVM buffers / #pages in either buffer
//
// Lower non-zero values mean less duplication and therefore more effective
// combined buffer capacity (Table 2).
func (bm *BufferManager) Inclusivity() float64 {
	both, either := 0, 0
	bm.table.Range(func(_ PageID, d *descriptor) bool {
		l := d.load()
		inDRAM := l.dramFrame != noFrame || l.dramMini != noFrame
		inNVM := l.nvmFrame != noFrame
		if inDRAM || inNVM {
			either++
		}
		if inDRAM && inNVM {
			both++
		}
		return true
	})
	if either == 0 {
		return 0
	}
	return float64(both) / float64(either)
}

// ResidentPages reports how many distinct pages currently sit in each
// buffer (diagnostics for the capacity experiments).
func (bm *BufferManager) ResidentPages() (dram, nvm int) {
	bm.table.Range(func(_ PageID, d *descriptor) bool {
		l := d.load()
		if l.dramFrame != noFrame || l.dramMini != noFrame {
			dram++
		}
		if l.nvmFrame != noFrame {
			nvm++
		}
		return true
	})
	return dram, nvm
}
