package core

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/spitfire-db/spitfire/internal/lockcheck"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// cleanerBM builds a manager with the cleaner configured as given.
func cleanerBM(t *testing.T, dramFrames, nvmFrames int, cc CleanerConfig) *BufferManager {
	t.Helper()
	cfg := Config{
		DRAMBytes: int64(dramFrames) * PageSize,
		Policy:    policy.SpitfireLazy,
		Cleaner:   cc,
	}
	if nvmFrames > 0 {
		cfg.NVMBytes = int64(nvmFrames) * nvmFrameSlot
	}
	bm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bm.Close)
	return bm
}

// waitFor polls cond until it holds or the deadline passes. The lockcheck
// build pays a shadow-stack bookkeeping cost on every latch, so its wall
// deadline is proportionally longer.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	budget := 5 * time.Second
	if lockcheck.Enabled {
		budget = 30 * time.Second
	}
	deadline := time.Now().Add(budget)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestCleanerWatermarkReplenish drives the free list to empty and checks the
// watermark protocol: the cleaner refills to the high watermark, then idles
// above it.
func TestCleanerWatermarkReplenish(t *testing.T) {
	const frames = 8
	bm := cleanerBM(t, frames, 0, CleanerConfig{
		Enable: true, LowWater: 2, HighWater: 5, Interval: 100 * time.Microsecond,
	})
	ctx := NewCtx(1)
	page := make([]byte, PageSize)
	for pid := PageID(0); pid < 64; pid++ {
		if err := bm.SeedPage(ctx, pid, page); err != nil {
			t.Fatal(err)
		}
	}
	// Churn through far more pages than the pool holds, draining the free
	// list; the cleaner replenishes concurrently.
	for pid := PageID(0); pid < 64; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// The churn's organic kicks race the replenisher: its last batch can
	// finish mid-churn and leave the list idling in [low, high), which is
	// legal under the hysteresis protocol. One explicit post-churn kick
	// makes the refill-to-high assertion deterministic.
	bm.dramCleaner.wake(0)
	waitFor(t, "free list to reach the high watermark", func() bool {
		return bm.dram.freeCount() >= 5
	})
	// Above the high watermark the cleaner must idle: batch and cleaned
	// counters stop moving.
	st := bm.Stats()
	time.Sleep(5 * time.Millisecond)
	st2 := bm.Stats()
	if st2.CleanerBatches != st.CleanerBatches || st2.CleanerCleanedDRAM != st.CleanerCleanedDRAM {
		t.Fatalf("cleaner kept working above the high watermark: %+v -> %+v", st, st2)
	}
	if got := bm.dram.freeCount(); got < 5 || got > frames {
		t.Fatalf("free list holds %d frames, want within [5, %d]", got, frames)
	}
	if st2.CleanerCleanedDRAM == 0 {
		t.Fatal("cleaner never pre-cleaned a frame")
	}
}

// TestCleanerStallsWhenAllPinned pins every frame and checks the cleaner
// records a stall instead of spinning or evicting pinned pages.
func TestCleanerStallsWhenAllPinned(t *testing.T) {
	const frames = 8
	bm := cleanerBM(t, frames, 0, CleanerConfig{
		Enable: true, LowWater: frames - 1, HighWater: frames, Interval: 100 * time.Microsecond,
	})
	ctx := NewCtx(1)
	page := make([]byte, PageSize)
	for pid := PageID(0); pid < frames; pid++ {
		if err := bm.SeedPage(ctx, pid, page); err != nil {
			t.Fatal(err)
		}
	}
	handles := make([]*Handle, 0, frames)
	for pid := PageID(0); pid < frames; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	waitFor(t, "a cleaner stall with every frame pinned", func() bool {
		return bm.Stats().CleanerStalls > 0
	})
	for _, h := range handles {
		h.Release()
	}
	// Pins drained: the cleaner must now recover the pool to the high
	// watermark on its own.
	waitFor(t, "replenish after pins drain", func() bool {
		return bm.dram.freeCount() >= frames-1
	})
}

// TestForegroundFallbackWhenCleanerStalled checks that allocation still
// succeeds — via inline eviction — when the cleaner is wedged (simulated by
// stopping it), and that the fallback counter records the inline work.
func TestForegroundFallbackWhenCleanerStalled(t *testing.T) {
	bm := cleanerBM(t, 8, 0, CleanerConfig{Enable: true, Interval: time.Hour})
	bm.Close() // wedge the cleaner: kicks and ticks now go nowhere
	ctx := NewCtx(1)
	page := make([]byte, PageSize)
	for pid := PageID(0); pid < 64; pid++ {
		if err := bm.SeedPage(ctx, pid, page); err != nil {
			t.Fatal(err)
		}
	}
	for pid := PageID(0); pid < 64; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if st := bm.Stats(); st.ForegroundEvicts == 0 {
		t.Fatal("no foreground evictions with the cleaner stalled")
	}
}

// TestCleanerInvariantsConcurrent runs concurrent writers and readers with
// both cleaners active (run it under -race): afterwards every page must hold
// the last value its writer stored (no page lost, no torn migration) and
// every frame's pin count must have drained.
func TestCleanerInvariantsConcurrent(t *testing.T) {
	const (
		workers = 4
		pages   = 96
		ops     = 1500
	)
	bm := cleanerBM(t, 8, 24, CleanerConfig{Enable: true, Interval: 50 * time.Microsecond})
	seedCtx := NewCtx(1)
	page := make([]byte, PageSize)
	for pid := PageID(0); pid < pages; pid++ {
		binary.LittleEndian.PutUint64(page, uint64(pid)<<32)
		if err := bm.SeedPage(seedCtx, pid, page); err != nil {
			t.Fatal(err)
		}
	}

	// Each page has exactly one writer (pid % workers), so the expected
	// final value is deterministic per page. Same-page accesses are
	// serialized with per-page locks — the buffer manager hands out
	// concurrent handles to one page by design and leaves record-level
	// concurrency control to the engine, so the test must play that role or
	// its own reads race its writes.
	shadow := make([]uint64, pages)
	pageLocks := make([]sync.Mutex, pages)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewCtx(uint64(w) + 10)
			rng := uint64(w)*2654435761 + 99
			var buf [8]byte
			for i := 0; i < ops; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				pid := PageID((rng >> 33) % pages)
				if pid%workers == PageID(w) {
					val := uint64(pid)<<32 | uint64(i+1)
					pageLocks[pid].Lock()
					h, err := bm.FetchPage(ctx, pid, WriteIntent)
					if err != nil {
						pageLocks[pid].Unlock()
						errs <- err
						return
					}
					binary.LittleEndian.PutUint64(buf[:], val)
					err = h.WriteAt(ctx, 0, buf[:])
					h.Release()
					if err == nil {
						shadow[pid] = val // single writer per page
					}
					pageLocks[pid].Unlock()
					if err != nil {
						errs <- err
						return
					}
				} else {
					pageLocks[pid].Lock()
					h, err := bm.FetchPage(ctx, pid, ReadIntent)
					if err != nil {
						pageLocks[pid].Unlock()
						errs <- err
						return
					}
					err = h.ReadAt(ctx, 0, buf[:])
					h.Release()
					pageLocks[pid].Unlock()
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	bm.Close()

	// No page lost, no stale copy served: every page readable with the last
	// written value (or its seed value if never written).
	checkCtx := NewCtx(7)
	var buf [8]byte
	for pid := PageID(0); pid < pages; pid++ {
		h, err := bm.FetchPage(checkCtx, pid, ReadIntent)
		if err != nil {
			t.Fatalf("page %d unfetchable: %v", pid, err)
		}
		if err := h.ReadAt(checkCtx, 0, buf[:]); err != nil {
			t.Fatal(err)
		}
		h.Release()
		want := shadow[pid]
		if want == 0 {
			want = uint64(pid) << 32
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != want {
			t.Fatalf("page %d = %#x, want %#x", pid, got, want)
		}
	}
	// Pin counts drained: every frame is either resident-unpinned (0) or
	// free/frozen (-1).
	for i := range bm.dram.meta {
		if p := bm.dram.meta[i].pins.Load(); p > 0 {
			t.Fatalf("DRAM frame %d still pinned (%d)", i, p)
		}
	}
	for i := range bm.nvm.meta {
		if p := bm.nvm.meta[i].pins.Load(); p > 0 {
			t.Fatalf("NVM frame %d still pinned (%d)", i, p)
		}
	}
}

// TestCleanerConfigValidate rejects inverted watermarks and accepts the
// defaults.
func TestCleanerConfigValidate(t *testing.T) {
	_, err := New(Config{
		DRAMBytes: 4 * PageSize,
		Policy:    policy.SpitfireLazy,
		Cleaner:   CleanerConfig{Enable: true, LowWater: 6, HighWater: 3},
	})
	if err == nil {
		t.Fatal("inverted watermarks validated")
	}
	bm, err := New(Config{
		DRAMBytes: 4 * PageSize,
		Policy:    policy.SpitfireLazy,
		Cleaner:   CleanerConfig{Enable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	bm.Close()
	bm.Close() // idempotent
}

// TestCleanerFeedsAdmissionQueue checks the coin-mode cleaner bias: a
// cleaner-context write-back consults the NVM admission queue instead of
// flipping the Nw coin, so its pages land on NVM only after a second
// eviction within the queue's horizon. With Nw = 1 a foreground eviction
// would admit every page on the first try — zero first-pass admissions is
// the proof the queue, not the coin, is deciding.
func TestCleanerFeedsAdmissionQueue(t *testing.T) {
	// Nr = 0 keeps the read path off NVM so evicted pages have no NVM copy
	// to refresh and must face the §3.4 admission decision; Nw = 1 in coin
	// mode would then admit every foreground eviction unconditionally.
	bm := newBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  16 * nvmFrameSlot,
		Policy:    policy.Policy{Dr: 1, Dw: 1, Nr: 0, Nw: 1},
	})
	ctx := NewCtx(29)
	ctx.cleaner = true // evictions below run with the cleaner's bias
	seed(t, bm, 8)

	dirtyAll := func() {
		for pid := uint64(0); pid < 8; pid++ {
			h, err := bm.FetchPage(ctx, pid, WriteIntent)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.WriteAt(ctx, 0, []byte{byte(pid)}); err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	dirtyAll()
	st := bm.Stats()
	if st.DRAMToNVM != 0 || st.CleanerAdmittedNVM != 0 {
		t.Fatalf("first-eviction cleaner admissions = %d (counted %d), want 0 (queue denies)",
			st.DRAMToNVM, st.CleanerAdmittedNVM)
	}
	dirtyAll()
	st = bm.Stats()
	if st.CleanerAdmittedNVM == 0 {
		t.Fatal("second-eviction cleaner admissions = 0, want > 0 (queue admits)")
	}
	if st.CleanerAdmittedNVM > st.DRAMToNVM {
		t.Fatalf("CleanerAdmittedNVM = %d exceeds DRAMToNVM = %d", st.CleanerAdmittedNVM, st.DRAMToNVM)
	}
}

// TestForegroundBatchStealSaturated drives a saturated closed loop against a
// wedged cleaner: with the free list permanently empty, every allocation
// falls into inline eviction, and successful inline evicts should steal
// extra frames into the free list (ForegroundBatchCleaned) so the writers
// queued behind them skip the victim scan. Page contents must survive the
// churn intact.
func TestForegroundBatchStealSaturated(t *testing.T) {
	bm := cleanerBM(t, 16, 0, CleanerConfig{Enable: true, Interval: time.Hour})
	bm.Close() // wedge the cleaner: all reclamation now happens inline
	seed(t, bm, 64)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewCtx(uint64(w) + 77)
			for i := 0; i < 300; i++ {
				pid := uint64((w*131 + i*17) % 64)
				h, err := bm.FetchPage(ctx, pid, WriteIntent)
				if err != nil {
					t.Error(err)
					return
				}
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], pid)
				if err := h.WriteAt(ctx, 0, b[:]); err != nil {
					h.Release()
					t.Error(err)
					return
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()

	st := bm.Stats()
	if st.ForegroundEvicts == 0 {
		t.Fatal("saturated closed loop never hit inline eviction")
	}
	if st.ForegroundBatchCleaned == 0 {
		t.Fatalf("inline evictions (%d) stole no frames into the free list", st.ForegroundEvicts)
	}

	// Every page must read back the value its last writer stored.
	ctx := NewCtx(99)
	for pid := uint64(0); pid < 64; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		var b [8]byte
		if err := h.ReadAt(ctx, 0, b[:]); err != nil {
			t.Fatal(err)
		}
		h.Release()
		if got := binary.LittleEndian.Uint64(b[:]); got != pid && got != 0 {
			t.Fatalf("page %d content = %d after churn, want %d or 0 (never written)", pid, got, pid)
		}
	}
}
