package core

import "fmt"

// Tier identifies where a pinned page copy resides.
type Tier int

const (
	// TierDRAM is a full frame in the DRAM buffer.
	TierDRAM Tier = iota
	// TierMini is a mini frame in the DRAM buffer (HyMem's mini-page layout).
	TierMini
	// TierNVM is a frame in the NVM buffer, operated on in place.
	TierNVM
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "DRAM"
	case TierMini:
		return "DRAM/mini"
	case TierNVM:
		return "NVM"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// how classifies the path a fetch took to produce a handle, so FetchPage's
// observability wrapper can attribute latency to the right histogram and
// trace the tier pair without re-deriving the route.
const (
	howNone uint8 = iota
	howHitDRAM
	howHitMini
	howHitNVM
	howMigrated // NVM hit migrated up to DRAM (full or mini frame)
	howMissDRAM // SSD miss loaded straight into DRAM (path ❾)
	howMissNVM  // SSD miss installed in NVM (path ❼)
)

// Handle is a pinned reference to a page copy. All data access goes through
// ReadAt/WriteAt, which charge the correct device and maintain fine-grained
// residency. A handle is owned by the worker that fetched it and must be
// Released exactly once.
type Handle struct {
	bm       *BufferManager
	d        *descriptor
	tier     Tier
	frame    int32
	how      uint8
	released bool
}

// PageID returns the logical page this handle pins.
func (h *Handle) PageID() PageID { return h.d.pid }

// Tier returns where the pinned copy currently resides. A mini-page
// promotion inside WriteAt/ReadAt may upgrade TierMini to TierDRAM.
func (h *Handle) Tier() Tier { return h.tier }

// Release unpins the page. The handle must not be used afterwards.
func (h *Handle) Release() {
	if h.released {
		panic("core: handle released twice")
	}
	h.released = true
	switch h.tier {
	case TierDRAM:
		h.bm.dram.meta[h.frame].unpin()
	case TierMini:
		h.bm.dram.mini.meta[h.frame].unpin()
	case TierNVM:
		h.bm.nvm.meta[h.frame].unpin()
	}
}

func (h *Handle) checkRange(off, n int) error {
	if h.released {
		return fmt.Errorf("core: page %d: access through released handle", h.d.pid)
	}
	if off < 0 || n < 0 || off+n > PageSize {
		return fmt.Errorf("core: page %d: access [%d, %d) out of page bounds", h.d.pid, off, off+n)
	}
	return nil
}

// ReadAt copies n = len(buf) bytes at in-page offset off into buf.
func (h *Handle) ReadAt(ctx *Ctx, off int, buf []byte) error {
	if err := h.checkRange(off, len(buf)); err != nil {
		return err
	}
	if len(buf) == 0 {
		return nil
	}
	switch h.tier {
	case TierDRAM:
		p := h.bm.dram
		if fg := p.meta[h.frame].fg.Load(); fg != nil {
			return h.fgRead(ctx, fg, off, buf)
		}
		p.charge.ChargeRead(ctx.Clock, p.frameOffset(h.frame)+int64(off), len(buf))
		copy(buf, p.frame(h.frame)[off:off+len(buf)])
		return nil
	case TierMini:
		return h.miniAccess(ctx, off, buf, nil)
	case TierNVM:
		if err := h.bm.nvmReadPayload(ctx.Clock, h.frame, off, buf); err != nil {
			return fmt.Errorf("core: page %d: %w", h.d.pid, err)
		}
		return nil
	}
	return fmt.Errorf("core: unknown tier %v", h.tier)
}

// WriteAt stores data at in-page offset off and marks the page dirty. For
// NVM-resident pages the write is persisted immediately (clwb+sfence), which
// is what lets recovery treat the NVM buffer as durable (§5.2).
func (h *Handle) WriteAt(ctx *Ctx, off int, data []byte) error {
	if err := h.checkRange(off, len(data)); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	switch h.tier {
	case TierDRAM:
		p := h.bm.dram
		if fg := p.meta[h.frame].fg.Load(); fg != nil {
			return h.fgWrite(ctx, fg, off, data)
		}
		p.charge.ChargeWrite(ctx.Clock, p.frameOffset(h.frame)+int64(off), len(data))
		copy(p.frame(h.frame)[off:off+len(data)], data)
		p.meta[h.frame].dirty.Store(true)
		return nil
	case TierMini:
		return h.miniAccess(ctx, off, nil, data)
	case TierNVM:
		if err := h.bm.nvmWritePayload(ctx.Clock, h.frame, off, data); err != nil {
			return fmt.Errorf("core: page %d: %w", h.d.pid, err)
		}
		h.bm.nvm.meta[h.frame].dirty.Store(true)
		return nil
	}
	return fmt.Errorf("core: unknown tier %v", h.tier)
}

// nvmBacking returns the page's current NVM frame, or noFrame.
func (h *Handle) nvmBacking() int32 {
	h.d.lockMu()
	nf := h.d.nvmFrame
	h.d.unlockMu()
	return nf
}

// fgLoadUnits faults the non-resident units in [first, last] in from the
// NVM copy. The unit loads of one access are charged as a single NVM read
// operation (one latency, summed media traffic): the CPU issues them as
// pipelined loads, which is why HyMem's 64 B granularity costs only modest
// extra bandwidth on Optane rather than a per-line latency each (§6.5,
// Figure 11). forWrite skips units the caller will fully overwrite.
// Caller holds fg.mu.
func (h *Handle) fgLoadUnits(ctx *Ctx, fg *fgState, first, last, off, n int, forWrite bool) error {
	p := h.bm.dram
	// Gather the units that need an NVM fill before touching the arena, so
	// an injected fault loads nothing: residency only advances after the
	// device read below succeeds.
	var need []int
	for u := first; u <= last; u++ {
		if fg.isResident(u) {
			continue
		}
		uo := u * fg.unit
		if forWrite && off <= uo && uo+fg.unit <= off+n {
			fg.setResident(u) // fully overwritten; no fill needed
			continue
		}
		need = append(need, u)
	}
	if len(need) == 0 {
		return nil
	}
	nf := h.nvmBacking()
	if nf == noFrame {
		return fmt.Errorf("core: page %d: fine-grained page lost its NVM backing", h.d.pid)
	}
	// The demand loads of one access are charged as a single NVM read
	// operation (one latency, summed media traffic): the CPU issues them as
	// pipelined loads, but units smaller than the device block (256 B on
	// Optane) still transfer a whole block each — the I/O amplification
	// Figure 11 measures. The read is checked: per-unit NVM faults surface
	// here (retried, degradation-aware) instead of being absorbed silently.
	dev := h.bm.nvm.pm.Device()
	g := dev.Params().Granularity
	mediaPer := (fg.unit + g - 1) / g * g
	err := h.bm.retryIO(ctx.Clock, func() error {
		_, rerr := dev.ReadErr(ctx.Clock, len(need)*mediaPer)
		return rerr
	})
	h.bm.noteNVMErr(err)
	if err != nil {
		return fmt.Errorf("core: page %d: load %d fine-grained units: %w", h.d.pid, len(need), err)
	}
	for _, u := range need {
		uo := u * fg.unit
		src := h.bm.nvm.pm.Bytes(h.bm.nvm.payloadOffset(nf)+int64(uo), fg.unit)
		copy(p.frame(h.frame)[uo:uo+fg.unit], src)
		fg.setResident(u)
		h.bm.stats.fgUnitLoads.Inc()
	}
	p.charge.ChargeWrite(ctx.Clock, p.frameOffset(h.frame), len(need)*fg.unit)
	return nil
}

// fgRead serves a read from a cache-line-grained full frame, faulting
// missing units in from the NVM copy.
func (h *Handle) fgRead(ctx *Ctx, fg *fgState, off int, buf []byte) error {
	p := h.bm.dram
	first, last := unitRange(fg.unit, off, len(buf))
	fg.lock()
	if err := h.fgLoadUnits(ctx, fg, first, last, off, len(buf), false); err != nil {
		fg.unlock()
		return err
	}
	p.charge.ChargeRead(ctx.Clock, p.frameOffset(h.frame)+int64(off), len(buf))
	copy(buf, p.frame(h.frame)[off:off+len(buf)])
	fg.unlock()
	return nil
}

// fgWrite serves a write on a cache-line-grained full frame. Units only
// partially covered by the write are faulted in first so their untouched
// bytes stay correct.
func (h *Handle) fgWrite(ctx *Ctx, fg *fgState, off int, data []byte) error {
	p := h.bm.dram
	first, last := unitRange(fg.unit, off, len(data))
	fg.lock()
	if err := h.fgLoadUnits(ctx, fg, first, last, off, len(data), true); err != nil {
		fg.unlock()
		return err
	}
	p.charge.ChargeWrite(ctx.Clock, p.frameOffset(h.frame)+int64(off), len(data))
	copy(p.frame(h.frame)[off:off+len(data)], data)
	for u := first; u <= last; u++ {
		fg.setDirty(u)
	}
	fg.unlock()
	p.meta[h.frame].dirty.Store(true)
	return nil
}

// miniAccess serves a read (buf != nil) or write (data != nil) on a mini
// page. Units present in the slot directory are served from the mini frame;
// absent units are loaded into free slots. When the directory overflows the
// page is promoted to a full frame (as HyMem does, §2.1); if promotion is
// not possible right now, slot-less units are served directly against the
// NVM copy — which is safe because an NVM frame backing a mini page is
// never evicted out from under it.
func (h *Handle) miniAccess(ctx *Ctx, off int, buf, data []byte) error {
	mp := h.bm.dram.mini
	fg := mp.meta[h.frame].fg.Load()
	if fg == nil {
		return fmt.Errorf("core: page %d: mini frame without fine-grained state", h.d.pid)
	}
	n := len(buf) + len(data) // exactly one of buf/data is non-nil
	first, last := unitRange(fg.unit, off, n)

	fg.lock()
	// Give every touched unit a slot while capacity lasts.
	overflow := false
	for u := first; u <= last; u++ {
		if fg.findSlot(u) != noSlot {
			continue
		}
		if fg.slotCount >= miniSlots {
			overflow = true
			break
		}
		nf := h.nvmBacking()
		if nf == noFrame {
			fg.unlock()
			return fmt.Errorf("core: page %d: mini page lost its NVM backing", h.d.pid)
		}
		s := fg.slotCount
		fg.slots[s] = int32(u)
		fg.slotCount++
		dst := mp.data(h.frame)[s*fg.unit : (s+1)*fg.unit]
		if err := h.bm.nvmReadPayload(ctx.Clock, nf, u*fg.unit, dst); err != nil {
			fg.slotCount-- // roll the half-filled slot back
			fg.unlock()
			return fmt.Errorf("core: page %d: %w", h.d.pid, err)
		}
		h.bm.dram.charge.ChargeWrite(ctx.Clock, int64(int(h.frame)*mp.slotSize+s*fg.unit), fg.unit)
		h.bm.stats.fgUnitLoads.Inc()
	}
	if overflow {
		fg.unlock()
		if h.promoteMini(ctx) {
			// Re-dispatch on the upgraded (full-frame) handle.
			if buf != nil {
				return h.ReadAt(ctx, off, buf)
			}
			return h.WriteAt(ctx, off, data)
		}
		fg.lock() // promotion contended; serve mixed below
	}

	// Serve the access unit by unit: slotted units from the mini frame,
	// slot-less units (overflow fallback) directly against the NVM copy.
	frame := mp.data(h.frame)
	dirtied := false
	for u := first; u <= last; u++ {
		uo := u * fg.unit
		lo, hi := max(off, uo), min(off+n, uo+fg.unit)
		s := fg.findSlot(u)
		if s == noSlot {
			nf := h.nvmBacking()
			if nf == noFrame {
				fg.unlock()
				return fmt.Errorf("core: page %d: mini page lost its NVM backing", h.d.pid)
			}
			if buf != nil {
				if err := h.bm.nvmReadPayload(ctx.Clock, nf, lo, buf[lo-off:hi-off]); err != nil {
					fg.unlock()
					return fmt.Errorf("core: page %d: %w", h.d.pid, err)
				}
			} else {
				if err := h.bm.nvmWritePayload(ctx.Clock, nf, lo, data[lo-off:hi-off]); err != nil {
					fg.unlock()
					return fmt.Errorf("core: page %d: %w", h.d.pid, err)
				}
				h.bm.nvm.meta[nf].dirty.Store(true)
			}
			continue
		}
		slotOff := s*fg.unit + (lo - uo)
		if buf != nil {
			h.bm.dram.charge.ChargeRead(ctx.Clock, int64(int(h.frame)*mp.slotSize+slotOff), hi-lo)
			copy(buf[lo-off:hi-off], frame[slotOff:slotOff+(hi-lo)])
		} else {
			h.bm.dram.charge.ChargeWrite(ctx.Clock, int64(int(h.frame)*mp.slotSize+slotOff), hi-lo)
			copy(frame[slotOff:slotOff+(hi-lo)], data[lo-off:hi-off])
			fg.slotDirty |= 1 << uint(s)
			dirtied = true
		}
	}
	fg.unlock()
	if dirtied {
		mp.meta[h.frame].dirty.Store(true)
	}
	return nil
}

// promoteMini upgrades the handle's mini page to a full cache-line-grained
// frame, as HyMem does transparently on overflow (§2.1). It requires being
// the page's only pinner; on contention it reports false and the caller
// falls back to accessing the NVM copy directly.
func (h *Handle) promoteMini(ctx *Ctx) bool {
	mp := h.bm.dram.mini
	m := &mp.meta[h.frame]
	// Wait to be the sole pinner, then freeze (pins 1 -> -1 via our own pin).
	frozen := false
	for i := 0; i < waitBudget; i++ {
		if m.pins.CompareAndSwap(1, -1) {
			frozen = true
			break
		}
		backoff(i)
	}
	if !frozen {
		return false
	}
	fg := m.fg.Load()

	f, err := h.bm.dram.alloc(h.bm, ctx)
	if err != nil {
		m.pins.Store(1) // un-freeze back to our single pin
		return false
	}

	newFG := newFullFG(fg.unit)
	full := h.bm.dram.frame(f)
	fg.lock()
	src := mp.data(h.frame)
	for s := 0; s < fg.slotCount; s++ {
		u := int(fg.slots[s])
		uo := u * fg.unit
		copy(full[uo:uo+fg.unit], src[s*fg.unit:(s+1)*fg.unit])
		newFG.setResident(u)
		if fg.slotDirty&(1<<uint(s)) != 0 {
			newFG.setDirty(u)
		}
	}
	h.bm.dram.charge.ChargeWrite(ctx.Clock, h.bm.dram.frameOffset(f), fg.slotCount*fg.unit)
	fg.unlock()

	dirty := m.dirty.Load()
	h.bm.dram.meta[f].pid.Store(h.d.pid)
	h.bm.dram.meta[f].dirty.Store(dirty)
	h.bm.dram.meta[f].fg.Store(newFG)

	old := h.frame
	h.d.lockMu()
	h.d.dramMini = noFrame
	h.d.dramFrame = f
	h.d.unlockMu()

	h.bm.dram.meta[f].pins.Store(1) // transfer our pin to the full frame
	h.bm.dram.ref(f)
	mp.release(old)
	h.tier = TierDRAM
	h.frame = f
	h.bm.stats.miniPromotions.Inc()
	return true
}
