package core

import (
	"errors"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

// TestCtxInterrupt: an installed interrupt hook aborts FetchPage and NewPage
// with exactly the hook's error before any work happens; clearing the hook
// restores normal operation.
func TestCtxInterrupt(t *testing.T) {
	bm, err := New(Config{DRAMBytes: 4 * PageSize, Policy: policy.Policy{Dr: 1, Dw: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()

	ctx := NewCtx(1)
	pid, h, err := bm.NewPage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()

	sentinel := errors.New("deadline exceeded (test)")
	ctx.SetInterrupt(func() error { return sentinel })

	if _, err := bm.FetchPage(ctx, pid, ReadIntent); !errors.Is(err, sentinel) {
		t.Fatalf("interrupted FetchPage error = %v, want %v", err, sentinel)
	}
	if _, _, err := bm.NewPage(ctx); !errors.Is(err, sentinel) {
		t.Fatalf("interrupted NewPage error = %v, want %v", err, sentinel)
	}

	// A hook returning nil lets operations through.
	calls := 0
	ctx.SetInterrupt(func() error { calls++; return nil })
	h, err = bm.FetchPage(ctx, pid, ReadIntent)
	if err != nil {
		t.Fatalf("FetchPage with nil-returning hook: %v", err)
	}
	h.Release()
	if calls == 0 {
		t.Error("interrupt hook was not polled")
	}

	ctx.SetInterrupt(nil)
	h, err = bm.FetchPage(ctx, pid, ReadIntent)
	if err != nil {
		t.Fatalf("FetchPage after clearing hook: %v", err)
	}
	h.Release()
}

// TestPressureSignals: the Pressure snapshot tracks free-list depth and tier
// capacities, reports absent tiers as fully free, and latches Degraded after
// a permanent NVM failure (with the dead tier dropped from the min).
func TestPressureSignals(t *testing.T) {
	bm, err := New(Config{
		DRAMBytes: 4 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()

	p := bm.Pressure()
	if p.DRAMFrames != 4 || p.NVMFrames != 8 {
		t.Fatalf("frames = %d/%d, want 4/8", p.DRAMFrames, p.NVMFrames)
	}
	if p.DRAMFreeFrac != 1 || p.NVMFreeFrac != 1 || p.MinFreeFrac() != 1 {
		t.Fatalf("fresh manager free fracs = %v/%v, want 1/1", p.DRAMFreeFrac, p.NVMFreeFrac)
	}
	if p.Degraded {
		t.Fatal("fresh manager reports Degraded")
	}

	// Occupy DRAM frames; the free fraction must fall.
	ctx := NewCtx(2)
	for i := 0; i < 3; i++ {
		_, h, err := bm.NewPage(ctx)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	p = bm.Pressure()
	if p.DRAMFree > 1 {
		t.Fatalf("DRAMFree = %d after filling 3 of 4 frames", p.DRAMFree)
	}
	if p.MinFreeFrac() >= 1 {
		t.Fatalf("MinFreeFrac = %v after churn, want < 1", p.MinFreeFrac())
	}

	// DRAM-only hierarchy: the absent NVM tier reads as fully free.
	bm2, err := New(Config{DRAMBytes: 4 * PageSize, Policy: policy.Policy{Dr: 1, Dw: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer bm2.Close()
	if p := bm2.Pressure(); p.NVMFreeFrac != 1 || p.NVMFrames != 0 {
		t.Fatalf("absent NVM tier pressure = %+v, want free frac 1, 0 frames", p)
	}
}

// TestPressureDegraded: after a permanent NVM failure Pressure reports
// Degraded and stops counting the dead tier against MinFreeFrac.
func TestPressureDegraded(t *testing.T) {
	bm, _, nvmInj := faultBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
	})
	seed(t, bm, 4)

	ctx := NewCtx(3)
	data := make([]byte, PageSize)
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}

	nvmInj.FailNow()
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatalf("fetch after NVM failure: %v", err)
		}
		h.Release()
	}
	if !bm.NVMDegraded() {
		t.Fatal("manager did not degrade")
	}
	p := bm.Pressure()
	if !p.Degraded {
		t.Fatal("Pressure.Degraded = false after permanent NVM failure")
	}
	if p.NVMFreeFrac != 1 || p.NVMFrames != 0 {
		t.Fatalf("degraded NVM tier pressure = %+v, want dropped from the min", p)
	}
}
