//go:build lockcheck

package core

import (
	"fmt"
	"strings"
	"testing"
)

// mustPanic runs f and returns the lockcheck panic message, failing the
// test if f completes without panicking.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a lockcheck panic, got none")
			}
			msg = fmt.Sprint(r)
		}()
		f()
	}()
	return msg
}

// TestLockcheckPanicsOnInversion proves the runtime checker catches a
// deliberately inverted latchS → latchN acquisition before it can block.
func TestLockcheckPanicsOnInversion(t *testing.T) {
	d := &descriptor{}
	d.lockS()
	defer d.unlockS()
	msg := mustPanic(t, func() { d.lockN() })
	if !strings.Contains(msg, "tier order is latchD → latchN → latchS") {
		t.Fatalf("panic message missing tier-order explanation: %q", msg)
	}
	if !strings.Contains(msg, "earlier acquisition of latchS") {
		t.Fatalf("panic message missing the conflicting acquisition stack: %q", msg)
	}
}

// TestLockcheckPanicsUnderMu proves mu is enforced as a leaf lock.
func TestLockcheckPanicsUnderMu(t *testing.T) {
	d := &descriptor{}
	d.lockMu()
	defer d.unlockMu()
	msg := mustPanic(t, func() { d.lockD() })
	if !strings.Contains(msg, "mu is a leaf lock") {
		t.Fatalf("panic message missing leaf-lock explanation: %q", msg)
	}
}

// TestLockcheckPanicsOnSecondDescriptorBlocking proves a blocking tier Lock
// on a second descriptor panics while a TryLock is accepted.
func TestLockcheckPanicsOnSecondDescriptorBlocking(t *testing.T) {
	a, b := &descriptor{}, &descriptor{}
	a.lockD()
	defer a.unlockD()
	msg := mustPanic(t, func() { b.lockD() })
	if !strings.Contains(msg, "second descriptors only via TryLock") {
		t.Fatalf("panic message missing TryLock guidance: %q", msg)
	}
	if !b.tryLockD() {
		t.Fatal("uncontended TryLock on second descriptor failed")
	}
	b.unlockD()
}

// TestLockcheckAllowsDiscipline runs the full legal sequence — tiers in
// order with skips, mu as a leaf under a tier latch, TryLock on a second
// descriptor — and expects no panic.
func TestLockcheckAllowsDiscipline(t *testing.T) {
	a, b := &descriptor{}, &descriptor{}
	a.lockD()
	a.lockS() // skipping latchN is legal
	a.lockMu()
	a.unlockMu()
	if b.tryLockN() {
		b.unlockN()
	}
	b.lockMu() // blocking mu on a second descriptor is legal (leaf)
	b.unlockMu()
	a.unlockS()
	a.unlockD()
}
