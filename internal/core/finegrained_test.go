package core

import (
	"bytes"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

func fgConfig(mini bool) Config {
	return Config{
		DRAMBytes:   8 * PageSize,
		NVMBytes:    32 * nvmFrameSlot,
		Policy:      policy.SpitfireEager,
		FineGrained: true,
		LoadingUnit: 256,
		MiniPages:   mini,
	}
}

// intoNVM gets page pid resident in NVM only (fetch once with Nr=1, Dr
// irrelevant because first fetch installs in NVM and serves from there).
func intoNVM(t *testing.T, bm *BufferManager, ctx *Ctx, pid uint64) {
	t.Helper()
	h, err := bm.FetchPage(ctx, pid, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierNVM {
		t.Fatalf("setup: first fetch served from %v, want NVM", h.Tier())
	}
	h.Release()
}

func TestFineGrainedLoadsOnlyTouchedUnits(t *testing.T) {
	bm := newBM(t, fgConfig(false))
	seed(t, bm, 1)
	ctx := NewCtx(20)
	intoNVM(t, bm, ctx, 0)

	// Second fetch migrates up as a cache-line-grained page.
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierDRAM {
		t.Fatalf("served from %v, want DRAM", h.Tier())
	}
	buf := make([]byte, 64)
	if err := h.ReadAt(ctx, 1000, buf); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, PageSize)
	marker(want, 0, 0)
	if !bytes.Equal(buf, want[1000:1064]) {
		t.Fatal("fine-grained read returned wrong bytes")
	}
	h.Release()

	st := bm.Stats()
	// A 64-byte read at offset 1000 spans at most two 256-byte units.
	if st.FGUnitLoads == 0 || st.FGUnitLoads > 2 {
		t.Fatalf("unit loads = %d, want 1-2", st.FGUnitLoads)
	}
}

func TestFineGrainedWriteBack(t *testing.T) {
	bm := newBM(t, fgConfig(false))
	seed(t, bm, 1)
	ctx := NewCtx(21)
	intoNVM(t, bm, ctx, 0)

	h, err := bm.FetchPage(ctx, 0, WriteIntent)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(ctx, 512, []byte("grained-update")); err != nil {
		t.Fatal(err)
	}
	h.Release()

	// Flush the dirty units down and verify via a lazy (NVM-direct) read.
	if skipped, err := bm.FlushDirtyDRAM(ctx); err != nil || skipped != 0 {
		t.Fatalf("flush: skipped=%d err=%v", skipped, err)
	}
	if err := bm.SetPolicy(policy.Policy{Dr: 0, Dw: 0, Nr: 1, Nw: 1}); err != nil {
		t.Fatal(err)
	}
	// Evict the DRAM copy path is already exercised by flush; read directly
	// from the NVM copy. Need a fresh manager view: fetch with Dr=0 still
	// prefers the DRAM copy, so read through the NVM payload directly.
	d := bm.descriptorFor(0)
	loc := d.load()
	if loc.nvmFrame == noFrame {
		t.Fatal("page lost its NVM copy")
	}
	got := make([]byte, 14)
	bm.nvm.readPayload(ctx.Clock, loc.nvmFrame, 512, got)
	if string(got) != "grained-update" {
		t.Fatalf("NVM copy holds %q after flush", got)
	}
}

func TestFineGrainedPartialUnitWriteLoadsUnit(t *testing.T) {
	bm := newBM(t, fgConfig(false))
	seed(t, bm, 1)
	ctx := NewCtx(22)
	intoNVM(t, bm, ctx, 0)

	h, err := bm.FetchPage(ctx, 0, WriteIntent)
	if err != nil {
		t.Fatal(err)
	}
	// Write 4 bytes in the middle of a unit: the unit's other bytes must
	// be preserved from the NVM copy.
	if err := h.WriteAt(ctx, 300, []byte("ABCD")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := h.ReadAt(ctx, 256, got); err != nil {
		t.Fatal(err)
	}
	h.Release()
	want := make([]byte, PageSize)
	marker(want, 0, 0)
	copy(want[300:304], "ABCD")
	if !bytes.Equal(got, want[256:512]) {
		t.Fatal("partial-unit write corrupted surrounding bytes")
	}
}

func TestMiniPagePromotion(t *testing.T) {
	bm := newBM(t, fgConfig(true))
	seed(t, bm, 1)
	ctx := NewCtx(23)
	intoNVM(t, bm, ctx, 0)

	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierMini {
		t.Fatalf("migrated page served from %v, want mini frame", h.Tier())
	}
	// Touch 17 distinct units: the 17th overflows the 16-slot directory
	// and promotes the page to a full frame.
	buf := make([]byte, 8)
	for u := 0; u < miniSlots+1; u++ {
		if err := h.ReadAt(ctx, u*256, buf); err != nil {
			t.Fatal(err)
		}
	}
	if h.Tier() != TierDRAM {
		t.Fatalf("after overflow handle is %v, want DRAM (promoted)", h.Tier())
	}
	want := make([]byte, PageSize)
	marker(want, 0, 0)
	got := make([]byte, 256)
	// Every previously loaded unit must carry correct bytes post-promotion.
	for u := 0; u < miniSlots+1; u++ {
		if err := h.ReadAt(ctx, u*256, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[u*256:(u+1)*256]) {
			t.Fatalf("unit %d corrupted by promotion", u)
		}
	}
	h.Release()
	if st := bm.Stats(); st.MiniPromotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.MiniPromotions)
	}
}

func TestMiniPageDirtySlotsSurviveEviction(t *testing.T) {
	bm := newBM(t, Config{
		DRAMBytes:         4 * PageSize,
		NVMBytes:          32 * nvmFrameSlot,
		Policy:            policy.SpitfireEager,
		FineGrained:       true,
		LoadingUnit:       256,
		MiniPages:         true,
		MiniArenaFraction: 0.25,
	})
	const pages = 16
	seed(t, bm, pages)
	ctx := NewCtx(24)
	for pid := uint64(0); pid < pages; pid++ {
		intoNVM(t, bm, ctx, pid)
	}
	// Dirty one unit of each page through mini frames, churning the small
	// mini arena so evictions write the dirty slots back to NVM.
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(ctx, 512, []byte{0xAB, byte(pid)}); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	got := make([]byte, 2)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ReadAt(ctx, 512, got); err != nil {
			t.Fatal(err)
		}
		h.Release()
		if got[0] != 0xAB || got[1] != byte(pid) {
			t.Fatalf("page %d dirty mini slot lost: %v", pid, got)
		}
	}
}

func TestLoadingUnitSweepChangesTraffic(t *testing.T) {
	// Larger loading units move more bytes per faulted unit; at 64 B the
	// NVM device still transfers 256 B media blocks (I/O amplification,
	// the Figure 11 effect).
	traffic := func(unit int) int64 {
		cfg := fgConfig(false)
		cfg.LoadingUnit = unit
		bm := newBM(t, cfg)
		seed(t, bm, 1)
		ctx := NewCtx(25)
		intoNVM(t, bm, ctx, 0)
		bm.PMem().Device().ResetStats()
		h, err := bm.FetchPage(ctx, 0, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		// Touch 8 scattered spots.
		for i := 0; i < 8; i++ {
			if err := h.ReadAt(ctx, i*2048, buf); err != nil {
				t.Fatal(err)
			}
		}
		h.Release()
		return bm.PMem().Device().Stats().BytesRead
	}
	t64, t256, t4096 := traffic(64), traffic(256), traffic(4096)
	if t64 != t256 {
		t.Fatalf("64 B and 256 B units should cost the same media traffic (got %d vs %d)", t64, t256)
	}
	if t4096 <= t256 {
		t.Fatalf("4 KB units should move more media bytes (%d vs %d)", t4096, t256)
	}
}
