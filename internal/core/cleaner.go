package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spitfire-db/spitfire/internal/obs"
)

// CleanerConfig configures the background page-cleaning / free-list
// replenishment subsystem (DESIGN.md §5-bis).
//
// A per-pool cleaner goroutine (one for DRAM, one for NVM) keeps each pool's
// free list stocked between a low and a high free-frame watermark: it
// pre-selects CLOCK victims in batches, migrates dirty victims down-tier off
// the critical path, and pushes the frozen, clean frames onto the free list.
// A buffer miss then allocates with a near-lock-free free-list pop instead
// of an inline evict-and-write-back. Device latency and bandwidth for
// cleaner traffic are charged to the cleaner's own virtual clock, so the
// shared-bandwidth device model still sees every byte it moves.
//
// The zero value leaves the cleaner DISABLED: core-level users (tests, the
// experiment harness) stay deterministic in simulated time. The spitfire
// facade enables it by default; set Disable there to keep paper-fidelity
// behavior.
type CleanerConfig struct {
	// Enable starts the cleaner goroutines. Takes precedence over Disable.
	Enable bool

	// Disable is consumed by the spitfire facade, whose default is
	// cleaner-on: New/Recover enable the cleaner unless Disable is set.
	// core.New itself only reads Enable.
	Disable bool

	// LowWater and HighWater are free-frame watermarks in frames. The
	// cleaner starts replenishing when a pool's free list drops below
	// LowWater and works until it reaches HighWater. Zero values default to
	// 1/8 and 1/4 of the pool (minimums 1 and 2), clamped to the pool size.
	LowWater, HighWater int

	// BatchSize bounds how many frames the cleaner reclaims between
	// watermark re-checks (default 8).
	BatchSize int

	// Interval is the idle poll period of a cleaner goroutine (default
	// 200µs). Foreground allocators also kick the cleaner directly when a
	// free list runs empty, so the interval only bounds how stale the
	// watermark check can get on an otherwise idle pool.
	Interval time.Duration
}

// validate rejects explicitly inconsistent watermarks.
func (c CleanerConfig) validate() error {
	if c.Enable && c.LowWater > 0 && c.HighWater > 0 && c.HighWater <= c.LowWater {
		return fmt.Errorf("core: cleaner HighWater %d must exceed LowWater %d", c.HighWater, c.LowWater)
	}
	return nil
}

// watermarks resolves the configured watermarks against a pool's size.
func (c CleanerConfig) watermarks(nFrames int) (low, high int) {
	low = c.LowWater
	if low <= 0 {
		low = nFrames / 8
	}
	if low < 1 {
		low = 1
	}
	high = c.HighWater
	if high <= 0 {
		high = nFrames / 4
	}
	if high <= low {
		high = low + 1
	}
	if high > nFrames {
		high = nFrames
	}
	if low >= high {
		low = high - 1
	}
	if low < 1 {
		low = 1
	}
	return low, high
}

// cleanerTier selects which pool a cleaner serves.
type cleanerTier int

const (
	cleanDRAM cleanerTier = iota
	cleanNVM
)

// cleaner is one pool's background page cleaner.
type cleaner struct {
	bm   *BufferManager
	tier cleanerTier
	pool *basePool

	low, high int
	batch     int
	interval  time.Duration

	// ctx is the cleaner's private worker context: all device costs of
	// pre-cleaning are charged to this clock, which shares every device's
	// bandwidth horizon with the foreground workers.
	ctx *Ctx

	// needy is a shard hint: the index of the shard whose allocator kicked
	// the cleaner most recently. Replenishment starts its victim sweep there
	// so the shard under pressure is restocked first; -1 means no hint.
	needy atomic.Int32

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// startCleaners launches the per-pool cleaner goroutines if the manager's
// cleaner config enables them. Recovery calls it after the arena scan so the
// cleaners never race the free-list rebuild.
func (bm *BufferManager) startCleaners() {
	cc := bm.cfg.Cleaner
	if !cc.Enable {
		return
	}
	if bm.dram != nil {
		bm.dramCleaner = newCleaner(bm, cleanDRAM, &bm.dram.basePool, cc, 0xD7A3C1EA)
	}
	if bm.nvm != nil {
		bm.nvmCleaner = newCleaner(bm, cleanNVM, &bm.nvm.basePool, cc, 0x4E7EC1EA)
	}
}

func newCleaner(bm *BufferManager, tier cleanerTier, pool *basePool, cc CleanerConfig, seed uint64) *cleaner {
	low, high := cc.watermarks(pool.nFrames)
	batch := cc.BatchSize
	if batch <= 0 {
		batch = 8
	}
	interval := cc.Interval
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}
	c := &cleaner{
		bm: bm, tier: tier, pool: pool,
		low: low, high: high, batch: batch, interval: interval,
		ctx:  NewCtx(seed),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Mark the context so write-back admission can apply the cleaner bias
	// (route dirty DRAM pages through the NVM admission queue instead of
	// the Nw coin, so only pages with repeated eviction pressure land).
	c.ctx.cleaner = true
	if bm.obs != nil {
		label := "cleaner-dram"
		if tier == cleanNVM {
			label = "cleaner-nvm"
		}
		c.ctx.ring = bm.obs.NewRing(label)
		c.ctx.ringInit = true
	}
	go c.run()
	return c
}

// wake nudges the cleaner without blocking; allocators call it when a free
// list runs low or empty, passing their home shard so replenishment sweeps
// the starved shard first.
func (c *cleaner) wake(si int) {
	c.needy.Store(int32(si))
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// close stops the cleaner and waits for its goroutine to exit. It is
// idempotent so Close can race a cleaner that already shut itself down (the
// NVM cleaner exits on its own when its tier permanently fails).
func (c *cleaner) close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

func (c *cleaner) freeCount() int { return c.pool.freeCount() }

func (c *cleaner) run() {
	defer close(c.done)
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		case <-tick.C:
			if c.freeCount() >= c.low {
				continue // above the low watermark: stay idle
			}
		}
		if c.tier == cleanNVM && c.bm.nvmDown() {
			// The NVM tier failed permanently: there is nothing left to
			// clean and nothing will allocate from this pool again.
			return
		}
		c.replenish()
	}
}

// replenish reclaims frames in batches until the free list reaches the high
// watermark. It gives up (counting a stall) when a full batch of victim
// attempts makes no progress — every frame pinned or under migration — and
// leaves the foreground fallback path to cover the pool until pins drain.
func (c *cleaner) replenish() {
	st := &c.bm.stats
	for c.freeCount() < c.high {
		select {
		case <-c.stop:
			return
		default:
		}
		var bStart int64
		if c.bm.obs != nil {
			bStart = c.ctx.Clock.Now()
		}
		produced := 0
		attempts := c.batch*2 + c.pool.nFrames
		// Start the victim sweep at the shard whose allocator kicked us (if
		// any) and rotate across all shard hands as attempts accumulate.
		si := int(c.needy.Load())
		if si < 0 {
			si = 0
		}
		for produced < c.batch && attempts > 0 && c.freeCount() < c.high {
			attempts--
			if c.reclaimOne(si + attempts) {
				produced++
			}
		}
		if produced == 0 {
			st.cleanerStalls.Inc()
			return
		}
		st.cleanerBatches.Inc()
		if c.bm.obs != nil {
			now := c.ctx.Clock.Now()
			c.bm.hCleanerBatch.Observe(now - bStart)
			tier := obs.TierDRAM
			if c.tier == cleanNVM {
				tier = obs.TierNVM
			}
			c.ctx.ring.Emit(obs.Event{
				TS: now, Dur: now - bStart,
				Type: obs.EvCleanerBatch, From: tier,
				Page: obs.NoPage, Arg: int64(produced),
			})
		}
	}
}

// reclaimOne freezes one CLOCK victim from shard si's hand (wrapped across
// shards), pre-cleans it (migrating its page down-tier exactly as a
// foreground eviction would, charged to the cleaner's clock), and pushes the
// frozen clean frame onto its home shard's free list.
func (c *cleaner) reclaimOne(si int) bool {
	p := c.pool
	v := p.victim(si)
	m := &p.meta[v]
	if !m.tryFreeze() {
		return false
	}
	if m.pid.Load() != InvalidPageID {
		var ok bool
		var err error
		switch c.tier {
		case cleanDRAM:
			ok, err = c.bm.evictDRAMFrame(c.ctx, v)
		case cleanNVM:
			ok, err = c.bm.evictNVMFrame(c.ctx, v)
		}
		if !ok {
			// The evict thawed the frame. An I/O error (err != nil) already
			// exhausted its retries and, if permanent, degraded the tier;
			// replenish's no-progress bailout keeps a failing device from
			// spinning the cleaner, and allocation falls back to foreground
			// eviction where the error surfaces to the caller.
			_ = err
			return false
		}
		switch c.tier {
		case cleanDRAM:
			c.bm.stats.cleanerCleanedDRAM.Inc()
		case cleanNVM:
			c.bm.stats.cleanerCleanedNVM.Inc()
		}
	}
	// The frame is frozen, clean and unlinked from its descriptor; release
	// re-marks it free and pushes it onto the free list.
	p.release(v)
	return true
}

// Close stops the background cleaners (if any). The manager remains usable:
// allocation falls back to inline eviction, exactly as with the cleaner
// disabled. Close is idempotent, safe to call concurrently (later callers
// block until the first finishes), and safe on a nil receiver — so callers
// can unconditionally Close whatever a failed Recover returned.
func (bm *BufferManager) Close() {
	if bm == nil {
		return
	}
	bm.closeOnce.Do(func() {
		if bm.dramCleaner != nil {
			bm.dramCleaner.close()
		}
		if bm.nvmCleaner != nil {
			bm.nvmCleaner.close()
		}
	})
}
