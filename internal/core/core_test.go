package core

import (
	"bytes"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

// newBM builds a small three-tier manager for tests.
func newBM(t *testing.T, cfg Config) *BufferManager {
	t.Helper()
	if cfg.DRAMBytes == 0 && cfg.NVMBytes == 0 {
		cfg.DRAMBytes = 8 * PageSize
		cfg.NVMBytes = 32 * nvmFrameSlot
	}
	bm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bm
}

// marker fills buf with a pattern unique to (pid, version).
func marker(buf []byte, pid uint64, version byte) {
	for i := range buf {
		buf[i] = byte(pid)*31 + byte(i) + version
	}
}

// seed writes n marked pages straight to SSD.
func seed(t *testing.T, bm *BufferManager, n int) {
	t.Helper()
	ctx := NewCtx(1)
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < uint64(n); pid++ {
		marker(buf, pid, 0)
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{DRAMBytes: PageSize, Policy: policy.Policy{Dr: 2}}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if _, err := New(Config{DRAMBytes: PageSize, LoadingUnit: 100}); err == nil {
		t.Fatal("non-dividing loading unit accepted")
	}
	if _, err := New(Config{DRAMBytes: PageSize, MiniPages: true}); err == nil {
		t.Fatal("MiniPages without FineGrained accepted")
	}
	if _, err := New(Config{DRAMBytes: 100}); err == nil {
		t.Fatal("sub-page DRAM budget accepted")
	}
}

func TestFetchMissingPageFails(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	ctx := NewCtx(2)
	if _, err := bm.FetchPage(ctx, 999, ReadIntent); err == nil {
		t.Fatal("fetch of nonexistent page succeeded")
	}
}

func TestReadBackFromSSD(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	seed(t, bm, 4)
	ctx := NewCtx(3)
	want := make([]byte, PageSize)
	got := make([]byte, PageSize)
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		marker(want, pid, 0)
		if err := h.ReadAt(ctx, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d content mismatch", pid)
		}
		h.Release()
	}
}

func TestWriteSurvivesEvictionChurn(t *testing.T) {
	// More pages than DRAM+NVM can hold: every page is repeatedly evicted
	// through NVM or straight to SSD, and every version must survive.
	const pages = 128
	bm := newBM(t, Config{
		DRAMBytes: 4 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
	})
	seed(t, bm, pages)
	ctx := NewCtx(4)
	data := make([]byte, PageSize)

	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		marker(data, pid, 7)
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// Re-read everything (forcing another full churn).
	got := make([]byte, PageSize)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ReadAt(ctx, 0, got); err != nil {
			t.Fatal(err)
		}
		marker(data, pid, 7)
		if !bytes.Equal(got, data) {
			t.Fatalf("page %d lost its update through eviction churn", pid)
		}
		h.Release()
	}
}

func TestLazyPolicyServesFromNVM(t *testing.T) {
	// With Dr = 0 a page resident in NVM must never migrate to DRAM.
	bm := newBM(t, Config{Policy: policy.Policy{Dr: 0, Dw: 0, Nr: 1, Nw: 1}})
	seed(t, bm, 1)
	ctx := NewCtx(5)
	for i := 0; i < 50; i++ {
		h, err := bm.FetchPage(ctx, 0, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && h.Tier() != TierNVM {
			t.Fatalf("access %d served from %v, want NVM", i, h.Tier())
		}
		h.Release()
	}
	st := bm.Stats()
	if st.NVMToDRAM != 0 {
		t.Fatalf("Dr=0 produced %d upward migrations", st.NVMToDRAM)
	}
	if st.HitNVM == 0 {
		t.Fatal("no NVM hits recorded")
	}
}

func TestEagerPolicyMigratesToDRAM(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	seed(t, bm, 1)
	ctx := NewCtx(6)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// Nr=1 put it in NVM; the second access must migrate it up (Dr=1).
	h, err = bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierDRAM {
		t.Fatalf("eager fetch served from %v, want DRAM", h.Tier())
	}
	h.Release()
	if st := bm.Stats(); st.NVMToDRAM != 1 {
		t.Fatalf("NVMToDRAM = %d, want 1", st.NVMToDRAM)
	}
	// Inclusivity: the page is now in both buffers.
	if inc := bm.Inclusivity(); inc != 1 {
		t.Fatalf("inclusivity = %v, want 1 (single page in both buffers)", inc)
	}
}

func TestNrZeroBypassesNVM(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.Policy{Dr: 1, Dw: 1, Nr: 0, Nw: 0}})
	seed(t, bm, 4)
	ctx := NewCtx(7)
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if h.Tier() != TierDRAM {
			t.Fatalf("Nr=0 fetch served from %v, want DRAM", h.Tier())
		}
		h.Release()
	}
	st := bm.Stats()
	if st.SSDToNVM != 0 {
		t.Fatalf("Nr=0 installed %d pages in NVM", st.SSDToNVM)
	}
	if st.SSDToDRAM != 4 {
		t.Fatalf("SSDToDRAM = %d, want 4", st.SSDToDRAM)
	}
}

func TestDRAMOnlyHierarchy(t *testing.T) {
	bm := newBM(t, Config{DRAMBytes: 4 * PageSize, Policy: policy.Policy{Dr: 1, Dw: 1}})
	seed(t, bm, 16)
	ctx := NewCtx(8)
	data := make([]byte, 64)
	for pid := uint64(0); pid < 16; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		marker(data, pid, 9)
		if err := h.WriteAt(ctx, 128, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	got := make([]byte, 64)
	want := make([]byte, 64)
	for pid := uint64(0); pid < 16; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ReadAt(ctx, 128, got); err != nil {
			t.Fatal(err)
		}
		marker(want, pid, 9)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d corrupted in DRAM-SSD hierarchy", pid)
		}
		h.Release()
	}
}

func TestNVMOnlyHierarchy(t *testing.T) {
	bm := newBM(t, Config{NVMBytes: 4 * nvmFrameSlot, Policy: policy.SpitfireEager})
	seed(t, bm, 16)
	ctx := NewCtx(9)
	data := []byte("nvm-direct")
	for pid := uint64(0); pid < 16; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if h.Tier() != TierNVM {
			t.Fatalf("NVM-SSD hierarchy served from %v", h.Tier())
		}
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	got := make([]byte, len(data))
	for pid := uint64(0); pid < 16; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ReadAt(ctx, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("page %d corrupted in NVM-SSD hierarchy", pid)
		}
		h.Release()
	}
}

func TestNewPageRoundTrip(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	ctx := NewCtx(10)
	pid, h, err := bm.NewPage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh pages are zeroed.
	got := make([]byte, 32)
	if err := h.ReadAt(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("new page not zeroed")
		}
	}
	if err := h.WriteAt(ctx, 100, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	h.Release()

	h, err = bm.FetchPage(ctx, pid, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := h.ReadAt(ctx, 100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "fresh" {
		t.Fatalf("new page content = %q", buf)
	}
	h.Release()
}

func TestHandleBounds(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	seed(t, bm, 1)
	ctx := NewCtx(11)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ReadAt(ctx, PageSize-1, make([]byte, 2)); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := h.WriteAt(ctx, -1, []byte{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := h.ReadAt(ctx, 0, nil); err != nil {
		t.Fatal("empty read rejected")
	}
	h.Release()
	if err := h.ReadAt(ctx, 0, make([]byte, 1)); err == nil {
		t.Fatal("read through released handle accepted")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	seed(t, bm, 1)
	ctx := NewCtx(12)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	h.Release()
}

func TestAdmissionQueuePolicy(t *testing.T) {
	// HyMem mode: a dirty page evicted from DRAM bypasses NVM on its first
	// eviction and is admitted on the second.
	bm := newBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  16 * nvmFrameSlot,
		Policy:    policy.Hymem,
	})
	seed(t, bm, 8)
	ctx := NewCtx(13)

	dirtyAll := func() {
		for pid := uint64(0); pid < 8; pid++ {
			h, err := bm.FetchPage(ctx, pid, WriteIntent)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.WriteAt(ctx, 0, []byte{byte(pid)}); err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	dirtyAll()
	st := bm.Stats()
	if st.DRAMToNVM != 0 {
		t.Fatalf("first-eviction admissions = %d, want 0 (queue denies)", st.DRAMToNVM)
	}
	if st.DRAMToSSD == 0 {
		t.Fatal("no DRAM→SSD write-backs on denied admission")
	}
	dirtyAll()
	if st := bm.Stats(); st.DRAMToNVM == 0 {
		t.Fatal("second-eviction admissions = 0, want > 0 (queue admits)")
	}
}

func TestSetPolicySwitchesBehavior(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.Policy{Dr: 0, Dw: 0, Nr: 1, Nw: 1}})
	seed(t, bm, 1)
	ctx := NewCtx(14)
	h, _ := bm.FetchPage(ctx, 0, ReadIntent)
	h.Release()
	if err := bm.SetPolicy(policy.SpitfireEager); err != nil {
		t.Fatal(err)
	}
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierDRAM {
		t.Fatalf("after eager switch, fetch served from %v", h.Tier())
	}
	h.Release()
	if err := bm.SetPolicy(policy.Policy{Dr: 5}); err == nil {
		t.Fatal("invalid policy accepted by SetPolicy")
	}
}

func TestInclusivityEmpty(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	if inc := bm.Inclusivity(); inc != 0 {
		t.Fatalf("inclusivity of empty manager = %v", inc)
	}
}

func TestFlushDirtyDRAM(t *testing.T) {
	bm := newBM(t, Config{
		DRAMBytes: 8 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.Policy{Dr: 1, Dw: 1, Nr: 0, Nw: 0},
	})
	seed(t, bm, 4)
	ctx := NewCtx(15)
	for pid := uint64(0); pid < 4; pid++ {
		h, _ := bm.FetchPage(ctx, pid, WriteIntent)
		if err := h.WriteAt(ctx, 0, []byte{0xEE}); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	skipped, err := bm.FlushDirtyDRAM(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("quiescent flush skipped %d pages", skipped)
	}
	if st := bm.Stats(); st.FlushedDRAMPages != 4 {
		t.Fatalf("flushed %d pages, want 4", st.FlushedDRAMPages)
	}
	// With Nr=0/Nw=0 the pages had no NVM copies, so they went to SSD:
	// the SSD image must now carry the update.
	buf := make([]byte, PageSize)
	if err := bm.Disk().ReadPage(ctx.Clock, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xEE {
		t.Fatal("flush did not reach SSD")
	}
}

func TestFlushAllCleansEverything(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	seed(t, bm, 8)
	ctx := NewCtx(16)
	for pid := uint64(0); pid < 8; pid++ {
		h, _ := bm.FetchPage(ctx, pid, WriteIntent)
		if err := h.WriteAt(ctx, 0, []byte{0xDD}); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if err := bm.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < 8; pid++ {
		if err := bm.Disk().ReadPage(ctx.Clock, pid, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xDD {
			t.Fatalf("page %d not flushed to SSD", pid)
		}
	}
}

// TestTheoreticalMigrationProbability reproduces the §3.5 analysis: after N
// read requests, the probability that a page has been brought into DRAM is
// approximately 1-(1-Dr)^N. We estimate it over many independent pages.
func TestTheoreticalMigrationProbability(t *testing.T) {
	const (
		dr     = 0.1
		reads  = 10
		trials = 400
	)
	bm := newBM(t, Config{
		DRAMBytes: 512 * PageSize, // large enough that nothing evicts
		NVMBytes:  512 * nvmFrameSlot,
		Policy:    policy.Policy{Dr: dr, Dw: dr, Nr: 1, Nw: 1},
	})
	seed(t, bm, trials)
	ctx := NewCtx(77)

	inDRAM := 0
	for pid := uint64(0); pid < trials; pid++ {
		migrated := false
		for r := 0; r < reads; r++ {
			h, err := bm.FetchPage(ctx, pid, ReadIntent)
			if err != nil {
				t.Fatal(err)
			}
			if h.Tier() == TierDRAM {
				migrated = true
			}
			h.Release()
		}
		if migrated {
			inDRAM++
		}
	}
	got := float64(inDRAM) / trials
	// First fetch installs in NVM (Nr=1) and serves from there, so the
	// page sees reads-1 = 9 migration trials: 1-(0.9)^9 = 0.613.
	want := 1 - pow(1-dr, reads-1)
	if got < want-0.08 || got > want+0.08 {
		t.Fatalf("P(migrated after %d reads) = %.3f, want ~%.3f (§3.5)", reads, got, want)
	}
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}
