package core

import (
	"errors"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// RetryConfig bounds the retry/backoff loop wrapped around fallible device
// operations (NVM payload/header writes, SSD page I/O). Transient faults —
// device.ErrTransient, including torn writes — are retried with exponential
// backoff charged to the calling worker's virtual clock; permanent failures
// and machine crashes are never retried.
type RetryConfig struct {
	// MaxRetries is how many times a failed operation is re-attempted
	// (default 4; negative disables retries).
	MaxRetries int
	// BackoffNs is the first backoff, doubling per attempt (default 20µs).
	BackoffNs int64
	// BackoffMaxNs caps the backoff (default 2ms).
	BackoffMaxNs int64
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxRetries == 0 {
		r.MaxRetries = 4
	}
	if r.MaxRetries < 0 {
		r.MaxRetries = 0
	}
	if r.BackoffNs <= 0 {
		r.BackoffNs = 20_000
	}
	if r.BackoffMaxNs <= 0 {
		r.BackoffMaxNs = 2_000_000
	}
	return r
}

// retryIO runs op under the manager's retry policy. Retries and the final
// give-up are counted; backoff is simulated time on c, so retry storms are
// visible in the experiment clocks rather than wall time.
func (bm *BufferManager) retryIO(c *vclock.Clock, op func() error) error {
	back := bm.retry.BackoffNs
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if errors.Is(err, device.ErrPermanent) || errors.Is(err, device.ErrCrashed) ||
			attempt >= bm.retry.MaxRetries {
			bm.stats.ioGiveUps.Inc()
			return err
		}
		bm.stats.ioRetries.Inc()
		c.Advance(back)
		if back *= 2; back > bm.retry.BackoffMaxNs {
			back = bm.retry.BackoffMaxNs
		}
	}
}

// nvmReadPayload / nvmWritePayload / nvmWriteHeader are the retrying,
// degradation-aware forms of the nvmPool primitives. All NVM I/O on the
// migration paths goes through them.
func (bm *BufferManager) nvmReadPayload(c *vclock.Clock, f int32, off int, buf []byte) error {
	err := bm.retryIO(c, func() error { return bm.nvm.readPayload(c, f, off, buf) })
	bm.noteNVMErr(err)
	return err
}

func (bm *BufferManager) nvmWritePayload(c *vclock.Clock, f int32, off int, data []byte) error {
	err := bm.retryIO(c, func() error { return bm.nvm.writePayload(c, f, off, data) })
	bm.noteNVMErr(err)
	return err
}

func (bm *BufferManager) nvmWriteHeader(c *vclock.Clock, f int32, pid PageID, valid bool) error {
	err := bm.retryIO(c, func() error { return bm.nvm.writeHeader(c, f, pid, valid) })
	bm.noteNVMErr(err)
	return err
}

// installNVMPage writes a full page into frozen NVM frame nf and then its
// self-identifying header, in that order: the header (whose checksum covers
// the frame id) only becomes valid after the payload is durably in place, so
// a crash between the two steps leaves an invalid frame that recovery simply
// frees — never a valid-looking frame over a half-written payload.
func (bm *BufferManager) installNVMPage(c *vclock.Clock, nf int32, pid PageID, data []byte) error {
	if err := bm.nvmWritePayload(c, nf, 0, data); err != nil {
		return err
	}
	return bm.nvmWriteHeader(c, nf, pid, true)
}

// diskReadPage / diskWritePage wrap SSD page I/O with the retry policy.
func (bm *BufferManager) diskReadPage(c *vclock.Clock, pid PageID, buf []byte) error {
	return bm.retryIO(c, func() error { return bm.disk.ReadPage(c, pid, buf) })
}

func (bm *BufferManager) diskWritePage(c *vclock.Clock, pid PageID, data []byte) error {
	return bm.retryIO(c, func() error { return bm.disk.WritePage(c, pid, data) })
}

// isIOErr distinguishes typed device faults from structural failures such as
// pool exhaustion: only the former should surface as fetch errors where the
// legacy behavior was to shrug and retry.
func isIOErr(err error) bool {
	return errors.Is(err, device.ErrTransient) ||
		errors.Is(err, device.ErrPermanent) ||
		errors.Is(err, device.ErrCrashed)
}

// nvmDown reports whether the NVM tier has failed permanently.
func (bm *BufferManager) nvmDown() bool { return bm.nvmFailed.Load() }

// NVMDegraded reports whether the manager is running in two-tier DRAM–SSD
// degraded mode after a permanent NVM failure.
func (bm *BufferManager) NVMDegraded() bool { return bm.nvmFailed.Load() }

// noteNVMErr inspects the outcome of an NVM operation and collapses the
// hierarchy to two tiers on permanent failure. Transient errors (already
// retried) and crashes (the whole machine is going down) do not degrade.
func (bm *BufferManager) noteNVMErr(err error) {
	if err != nil && errors.Is(err, device.ErrPermanent) {
		bm.degradeNVM()
	}
}

// degradeNVM transitions the manager into two-tier DRAM–SSD mode after a
// permanent NVM failure:
//
//   - the migration policy is forced to ⟨Dr, Dw, 0, 0⟩ so no path routes new
//     traffic to the dead tier (SetPolicy keeps enforcing this afterwards);
//   - every descriptor's NVM copy is detached. A page whose DRAM copy is
//     fully resident is re-marked dirty so its latest content reaches SSD on
//     eviction; a page whose newest content lived only on the failed NVM
//     (dirty there, and not fully shadowed in DRAM) is counted as orphaned —
//     the typed-error analogue of losing a device.
//
// Exactly one caller performs the transition; later calls are no-ops.
func (bm *BufferManager) degradeNVM() {
	if bm.nvm == nil || !bm.nvmFailed.CompareAndSwap(false, true) {
		return
	}
	bm.stats.nvmDegraded.Inc()

	p := *bm.pol.Load()
	p.Nr, p.Nw = 0, 0
	p.NwMode = policy.NwProbabilistic
	bm.pol.Store(&p)

	bm.table.Range(func(_ PageID, d *descriptor) bool {
		bm.detachDeadNVM(d)
		return true
	})
}

// detachDeadNVM unlinks d's NVM copy after the tier has failed, salvaging
// through the DRAM copy when possible. Safe to call on descriptors without
// an NVM copy. FetchPage also calls it inline for descriptors that raced the
// degradation walk.
func (bm *BufferManager) detachDeadNVM(d *descriptor) {
	d.lockMu()
	nf := d.nvmFrame
	if nf == noFrame {
		d.unlockMu()
		return
	}
	d.nvmFrame = noFrame
	df := d.dramFrame
	d.unlockMu()

	wasDirty := bm.nvm.meta[nf].dirty.Load()
	bm.nvm.meta[nf].pid.Store(InvalidPageID)
	bm.nvm.meta[nf].dirty.Store(false)
	bm.nvm.meta[nf].clAdmit.Store(false)

	salvaged := false
	if df != noFrame && bm.dram != nil {
		if fg := bm.dram.meta[df].fg.Load(); fg == nil || fg.fullyResident() {
			// The DRAM copy shadows the page in full; conservatively dirty it
			// so the content reaches SSD even if the NVM copy was the newer.
			bm.dram.meta[df].dirty.Store(true)
			salvaged = true
		}
	}
	if wasDirty && !salvaged {
		bm.stats.nvmOrphanedPages.Inc()
	}
}

// StartCleaners launches the background cleaner goroutines if they are not
// already running. Recovery flows construct the manager with cleaners off,
// audit it (CheckConsistency), and then call this; the explicit call enables
// the cleaner even when the construction-time config left it off.
func (bm *BufferManager) StartCleaners() {
	if bm.dramCleaner != nil || bm.nvmCleaner != nil {
		return
	}
	bm.cfg.Cleaner.Enable = true
	bm.startCleaners()
}
