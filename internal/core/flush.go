package core

// FlushDirtyDRAM flushes every dirty DRAM page down to durable media — the
// page's NVM copy if one exists, otherwise SSD. This is the checkpointing
// step of §5.2: it bounds recovery time and allows log truncation. Pages in
// the NVM buffer are deliberately *not* flushed, since NVM is persistent.
//
// Pages that are pinned or under concurrent migration are skipped; the
// number of skipped pages is returned so callers can re-run until zero
// (checkpoints are quiescent in the experiments).
func (bm *BufferManager) FlushDirtyDRAM(ctx *Ctx) (skipped int, err error) {
	if bm.dram == nil {
		return 0, nil
	}
	var descs []*descriptor
	bm.table.Range(func(_ PageID, d *descriptor) bool {
		descs = append(descs, d)
		return true
	})
	for _, d := range descs {
		ok, ferr := bm.flushOne(ctx, d)
		if ferr != nil {
			return skipped, ferr
		}
		if !ok {
			skipped++
		}
	}
	return skipped, nil
}

// flushOne flushes d's DRAM copy if dirty. It reports false if the page was
// busy and should be retried.
func (bm *BufferManager) flushOne(ctx *Ctx, d *descriptor) (bool, error) {
	loc := d.load()
	mini := loc.dramMini != noFrame
	full := loc.dramFrame != noFrame
	if !mini && !full {
		return true, nil
	}
	var m *frameMeta
	var v int32
	if full {
		v = loc.dramFrame
		m = &bm.dram.meta[v]
	} else {
		v = loc.dramMini
		m = &bm.dram.mini.meta[v]
	}
	if !m.dirty.Load() {
		return true, nil
	}
	if !d.tryLockD() {
		return false, nil
	}
	defer d.unlockD()
	// Re-verify under the latch.
	loc = d.load()
	if full && loc.dramFrame != v || mini && loc.dramMini != v {
		return false, nil
	}
	if !m.freezeWait(d.pid) {
		return false, nil
	}
	defer m.thaw()

	if mini {
		// Reuse the eviction write-back logic for mini slots, but keep the
		// page resident: write dirty slots into the NVM copy.
		fg := m.fg.Load()
		if fg == nil || !fg.slotDirtyAny() {
			m.dirty.Store(false)
			return true, nil
		}
		if loc.nvmFrame == noFrame {
			return false, nil
		}
		if !d.tryLockN() {
			return false, nil
		}
		defer d.unlockN()
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(d.pid) {
			return false, nil
		}
		defer nm.thaw()
		fg.lock()
		data := bm.dram.mini.data(v)
		var werr error
		for s := 0; s < fg.slotCount; s++ {
			if fg.slotDirty&(1<<uint(s)) == 0 {
				continue
			}
			u := int(fg.slots[s])
			if werr = bm.nvmWritePayload(ctx.Clock, loc.nvmFrame, u*fg.unit, data[s*fg.unit:(s+1)*fg.unit]); werr != nil {
				break
			}
		}
		if werr == nil {
			fg.clearDirty()
		}
		fg.unlock()
		if werr != nil {
			return false, werr
		}
		nm.dirty.Store(true)
		m.dirty.Store(false)
		bm.stats.flushedDRAMPages.Inc()
		return true, nil
	}

	fg := m.fg.Load()
	frame := bm.dram.frame(v)
	if loc.nvmFrame != noFrame {
		if !d.tryLockN() {
			return false, nil
		}
		defer d.unlockN()
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(d.pid) {
			return false, nil
		}
		defer nm.thaw()
		if fg != nil {
			fg.lock()
			var werr error
			for u := 0; u < fg.unitsPerPage(); u++ {
				if fg.isDirty(u) {
					off := u * fg.unit
					if werr = bm.nvmWritePayload(ctx.Clock, loc.nvmFrame, off, frame[off:off+fg.unit]); werr != nil {
						break
					}
				}
			}
			if werr == nil {
				fg.clearDirty()
			}
			fg.unlock()
			if werr != nil {
				return false, werr
			}
		} else {
			bm.dram.charge.ChargeRead(ctx.Clock, bm.dram.frameOffset(v), PageSize)
			if err := bm.nvmWritePayload(ctx.Clock, loc.nvmFrame, 0, frame); err != nil {
				return false, err
			}
		}
		nm.dirty.Store(true)
		m.dirty.Store(false)
		bm.stats.flushedDRAMPages.Inc()
		return true, nil
	}

	// No NVM copy: checkpoint straight to SSD. (A fine-grained page with
	// no NVM copy is fully resident by invariant.)
	if !d.tryLockS() {
		return false, nil
	}
	defer d.unlockS()
	bm.dram.charge.ChargeRead(ctx.Clock, bm.dram.frameOffset(v), PageSize)
	if err := bm.diskWritePage(ctx.Clock, d.pid, frame); err != nil {
		return false, err
	}
	if fg != nil {
		fg.lock()
		fg.clearDirty()
		fg.unlock()
	}
	m.dirty.Store(false)
	bm.stats.flushedDRAMPages.Inc()
	return true, nil
}

// FlushAll flushes dirty DRAM pages (as FlushDirtyDRAM) and then writes
// every dirty NVM page back to SSD, leaving the whole database clean on
// disk. Used for orderly shutdown and by tests that compare against the SSD
// image. The caller must be quiescent.
func (bm *BufferManager) FlushAll(ctx *Ctx) error {
	for i := 0; i < 16; i++ {
		skipped, err := bm.FlushDirtyDRAM(ctx)
		if err != nil {
			return err
		}
		if skipped == 0 {
			break
		}
	}
	if bm.nvm == nil {
		return nil
	}
	var descs []*descriptor
	bm.table.Range(func(_ PageID, d *descriptor) bool {
		descs = append(descs, d)
		return true
	})
	for _, d := range descs {
		loc := d.load()
		if loc.nvmFrame == noFrame {
			continue
		}
		m := &bm.nvm.meta[loc.nvmFrame]
		if !m.dirty.Load() {
			continue
		}
		d.lockN()
		d.lockS()
		loc = d.load()
		if loc.nvmFrame != noFrame && bm.nvm.meta[loc.nvmFrame].dirty.Load() {
			buf := ctx.buf()
			err := bm.nvmReadPayload(ctx.Clock, loc.nvmFrame, 0, buf)
			if err == nil {
				err = bm.diskWritePage(ctx.Clock, d.pid, buf)
			}
			if err != nil {
				d.unlockS()
				d.unlockN()
				return err
			}
			bm.nvm.meta[loc.nvmFrame].dirty.Store(false)
			bm.stats.flushedNVMPages.Inc()
		}
		d.unlockS()
		d.unlockN()
	}
	return nil
}
