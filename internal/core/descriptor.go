package core

import (
	"runtime"
	"sync"
)

// noFrame marks an empty frame slot in a descriptor.
const noFrame = int32(-1)

// descriptor is the shared page descriptor of §5.1 (Figure 4): one exists
// per logical page known to the mapping table. It records where copies of
// the page live and carries one latch per storage tier for thread-safe
// migration.
//
// Locking rules (see DESIGN.md):
//
//  1. Tier latches of one descriptor are acquired in the fixed order
//     latchD → latchN → latchS (skipping is allowed, reordering is not).
//  2. mu is a leaf lock: no I/O and no other lock acquisition under it.
//     The frame-slot fields are read and written only under mu.
//  3. A thread holding latches of one descriptor may touch a *second*
//     descriptor (the eviction victim's) only via TryLock.
type descriptor struct {
	pid PageID

	// latchD/latchN/latchS guard migrations into/out of the DRAM, NVM and
	// SSD copies of this page, respectively.
	latchD, latchN, latchS sync.Mutex

	mu        sync.Mutex
	dramFrame int32 // full DRAM frame index, or noFrame
	dramMini  int32 // mini DRAM frame index, or noFrame
	nvmFrame  int32 // NVM frame index, or noFrame
}

func newDescriptor(pid PageID) *descriptor {
	return &descriptor{pid: pid, dramFrame: noFrame, dramMini: noFrame, nvmFrame: noFrame}
}

// location is a snapshot of the descriptor's frame slots.
type location struct {
	dramFrame, dramMini, nvmFrame int32
}

// load snapshots the frame slots under mu.
func (d *descriptor) load() location {
	d.lockMu()
	l := location{d.dramFrame, d.dramMini, d.nvmFrame}
	d.unlockMu()
	return l
}

// descriptorFor returns (creating if needed) the shared descriptor of pid.
func (bm *BufferManager) descriptorFor(pid PageID) *descriptor {
	d, _ := bm.table.GetOrInsert(pid, func() *descriptor { return newDescriptor(pid) })
	return d
}

// waitBudget bounds the spin-waits used when draining pins off a frame
// before migrating or overwriting it. On exhaustion the caller falls back
// to a non-blocking plan (skip the victim, or serve the access in place),
// which keeps the manager deadlock-free even if a caller violates the
// single-pin discipline.
const waitBudget = 1 << 14

// backoff yields the processor inside spin loops.
func backoff(i int) {
	if i%64 == 63 {
		runtime.Gosched()
	}
}
