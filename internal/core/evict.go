package core

import (
	"errors"
	"time"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// errPoolExhausted is returned when no frame can be reclaimed: every frame
// is pinned or under concurrent migration for the whole attempt budget.
var errPoolExhausted = errors.New("core: buffer pool exhausted (all frames pinned)")

// allocDeadline bounds the victim search in wall-clock time. Pins are
// short-lived (the engine releases a handle before fetching the next page),
// so allocation waits patiently — yielding via backoff — rather than
// failing the moment more workers hold pins than the pool has frames. A
// generous real-time deadline (rather than an iteration count) keeps the
// search robust on heavily loaded hosts; it only expires if callers wedge
// frames essentially forever.
var allocDeadline = 10 * time.Second

// allocExpired checks the deadline every few thousand iterations (time.Now
// is too expensive to call per attempt).
func allocExpired(i int, start *time.Time) bool {
	if i&8191 != 8191 {
		return false
	}
	if start.IsZero() {
		*start = time.Now() //vet:allow determinism allocDeadline is a host-side liveness bound, never feeds simulated time
		return false
	}
	return time.Since(*start) > allocDeadline //vet:allow determinism allocDeadline is a host-side liveness bound, never feeds simulated time
}

// alloc returns a frozen, clean DRAM frame, evicting a victim if the free
// list is empty. With the background cleaner enabled the common case is a
// free-list pop; the inline eviction loop below is the fallback when the
// cleaner cannot keep up. An I/O error from a victim's write-back surfaces
// immediately (retries already ran inside the eviction) rather than spinning
// the victim search against a failing device.
func (p *dramPool) alloc(bm *BufferManager, ctx *Ctx) (int32, error) {
	home := p.shardIndexFor(ctx)
	if f, ok := p.takeFree(ctx); ok {
		if cl := bm.dramCleaner; cl != nil && p.freeCount() < cl.low {
			cl.wake(home)
		}
		return f, nil
	}
	if cl := bm.dramCleaner; cl != nil {
		cl.wake(home)
	}
	var searchStart time.Time
	for i := 0; ; i++ {
		if allocExpired(i, &searchStart) {
			break
		}
		if f, ok := p.takeFree(ctx); ok {
			return f, nil
		}
		// Sweep the home shard's hand first; rotate to the other shards'
		// hands as attempts accumulate so a fully pinned shard cannot wedge
		// the search.
		v := p.victim(home + i)
		if !p.meta[v].tryFreeze() {
			backoff(i)
			continue
		}
		if p.meta[v].pid.Load() == InvalidPageID {
			// Defensive: a frozen frame with no page should only live on
			// the free list; hand it out rather than losing it.
			return v, nil
		}
		ok, err := bm.evictDRAMFrame(ctx, v)
		if err != nil {
			return noFrame, err
		}
		if ok {
			bm.stats.fgEvicts.Inc()
			bm.fgBatchClean(ctx, &p.basePool, bm.evictDRAMFrame)
			return v, nil
		}
	}
	return noFrame, errPoolExhausted
}

// fgBatchSteal is how many extra frames an inline eviction pushes onto the
// free list beyond the one it keeps. Small: the point is amortizing the
// cache-cold victim scan the foreground thread already paid for, not
// re-implementing the cleaner inline.
const fgBatchSteal = 3

// fgBatchClean runs after an inline eviction succeeded — the free list was
// empty and the cleaner behind, so the allocators right behind this thread
// would each pay their own victim scan too. Having eaten the scan's cache
// misses already, steal a few more victims into the free list (mirroring the
// cleaner's reclaim: evict, then release). Strictly best-effort: contended or
// pinned victims are skipped, an I/O error stops the assist (the caller's own
// frame is already secured; a failing device should not be hammered from the
// allocation path), and the loop quits as soon as the free list has stock.
func (bm *BufferManager) fgBatchClean(ctx *Ctx, p *basePool, evict func(*Ctx, int32) (bool, error)) {
	steal := fgBatchSteal
	if lim := p.nFrames / 4; steal > lim {
		steal = lim // tiny pools: don't sweep the whole CLOCK at once
	}
	home := p.shardIndexFor(ctx)
	stolen := 0
	for attempts := steal * 2; stolen < steal && attempts > 0 && p.freeCount() < steal; attempts-- {
		v := p.victim(home + attempts)
		if !p.meta[v].tryFreeze() {
			continue
		}
		if p.meta[v].pid.Load() != InvalidPageID {
			ok, err := evict(ctx, v)
			if err != nil {
				return // evict thawed the frame; stop assisting the failing tier
			}
			if !ok {
				continue // contended victim, already thawed
			}
		}
		p.release(v)
		stolen++
		bm.stats.fgBatchCleaned.Inc()
	}
}

// evictDRAMFrame evicts the page occupying frozen frame v, leaving the
// frame frozen and clean for reuse. On failure the frame is thawed; a
// non-nil error reports an unretryable I/O failure (contention is (false,
// nil) and is retried by the caller's victim loop).
func (bm *BufferManager) evictDRAMFrame(ctx *Ctx, v int32) (bool, error) {
	p := bm.dram
	m := &p.meta[v]
	pid := m.pid.Load()
	var evStart int64
	if bm.obs != nil {
		evStart = ctx.Clock.Now()
	}
	d, ok := bm.table.Get(pid)
	if !ok {
		m.thaw()
		return false, nil
	}
	d.lockMu()
	match := d.dramFrame == v
	d.unlockMu()
	if !match {
		m.thaw()
		return false, nil
	}
	if !d.tryLockD() {
		m.thaw()
		return false, nil
	}
	ok, err := bm.writeBackDRAM(ctx, d, v)
	if !ok {
		d.unlockD()
		m.thaw()
		return false, err
	}
	d.lockMu()
	d.dramFrame = noFrame
	d.unlockMu()
	d.unlockD()
	m.pid.Store(InvalidPageID)
	m.dirty.Store(false)
	m.fg.Store(nil)
	p.unref(v)
	bm.stats.evictDRAM.Inc()
	if bm.obs != nil {
		now := ctx.Clock.Now()
		bm.hEvictDRAM.Observe(now - evStart)
		bm.obsRing(ctx).Emit(obs.Event{
			TS: now, Dur: now - evStart,
			Type: obs.EvEvict, From: obs.TierDRAM, Page: pid,
		})
	}
	return true, nil
}

// writeBackDRAM makes frame v's contents durable-enough to drop: dirty data
// is pushed to the NVM copy if one exists, otherwise admitted to NVM per Nw
// (or HyMem's admission queue), otherwise written straight to SSD (§3.4).
// Caller holds d.latchD and the frozen frame.
//
// Fault handling: all NVM and SSD writes run under the retry policy. If an
// NVM *admission* fails, the page falls back to SSD — admission is an
// optimization, not a correctness requirement. If refreshing an *existing*
// NVM copy fails, the eviction is abandoned with the error: dropping the
// DRAM copy while a stale NVM copy stays reachable (and durable) would let
// recovery resurrect old data over a newer SSD image.
func (bm *BufferManager) writeBackDRAM(ctx *Ctx, d *descriptor, v int32) (bool, error) {
	p := bm.dram
	m := &p.meta[v]
	fg := m.fg.Load()
	dirty := m.dirty.Load()
	loc := d.load()
	nvmOK := bm.nvm != nil && !bm.nvmDown()

	// Cache-line-grained page backed by an NVM copy: write only the dirty
	// units back (the bandwidth saving of HyMem's layout, Figure 2a).
	if fg != nil && loc.nvmFrame != noFrame {
		if !dirty {
			return true, nil
		}
		if !d.tryLockN() {
			return false, nil
		}
		defer d.unlockN()
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(d.pid) {
			return false, nil
		}
		defer nm.thaw()
		fg.lock()
		frame := p.frame(v)
		var werr error
		for u := 0; u < fg.unitsPerPage(); u++ {
			if fg.isDirty(u) {
				off := u * fg.unit
				p.charge.ChargeRead(ctx.Clock, p.frameOffset(v)+int64(off), fg.unit)
				if werr = bm.nvmWritePayload(ctx.Clock, loc.nvmFrame, off, frame[off:off+fg.unit]); werr != nil {
					break
				}
			}
		}
		if werr == nil {
			fg.clearDirty()
		}
		fg.unlock()
		if werr != nil {
			return false, werr
		}
		nm.dirty.Store(true)
		bm.stats.dramToNVM.Inc()
		bm.emit(ctx, obs.Event{Type: obs.EvWriteBack, From: obs.TierDRAM, To: obs.TierNVM, Page: d.pid})
		return true, nil
	}
	// A fine-grained page without an NVM copy is fully resident by
	// invariant (the NVM evictor refuses to orphan partial pages), so the
	// whole-page paths below are safe for it.

	if !dirty {
		// Spitfire simply discards clean pages (§3.3: only modified pages
		// are considered for NVM admission). HyMem's admission queue,
		// however, sees *every* page evicted from DRAM — its NVM buffer is
		// a second-level cache — so in queue mode a clean page that earns
		// admission is installed on NVM (clean: SSD already has it).
		pol := bm.pol.Load()
		if pol.NwMode != policy.NwAdmissionQueue || bm.admQueue == nil ||
			!nvmOK || loc.nvmFrame != noFrame || !bm.admQueue.Admit(d.pid) {
			return true, nil
		}
		if !d.tryLockN() {
			return true, nil // clean: safe to just drop instead
		}
		nf, err := bm.nvm.alloc(bm, ctx)
		if err == nil {
			frame := p.frame(v)
			p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
			if ierr := bm.installNVMPage(ctx.Clock, nf, d.pid, frame); ierr != nil {
				bm.nvm.release(nf) // clean page: dropping is always safe
			} else {
				bm.nvm.meta[nf].pid.Store(d.pid)
				bm.nvm.meta[nf].dirty.Store(false)
				bm.nvm.meta[nf].clAdmit.Store(ctx.cleaner)
				if ctx.cleaner {
					bm.stats.cleanerAdmittedNVM.Inc()
				}
				d.lockMu()
				d.nvmFrame = nf
				d.unlockMu()
				bm.nvm.meta[nf].thaw()
				bm.nvm.ref(nf)
				bm.stats.dramToNVM.Inc()
				bm.emit(ctx, obs.Event{Type: obs.EvAdmit, From: obs.TierDRAM, To: obs.TierNVM, Page: d.pid})
			}
		}
		d.unlockN()
		return true, nil
	}

	frame := p.frame(v)
	if loc.nvmFrame != noFrame {
		// Refresh the page's existing NVM copy so NVM never goes stale
		// ahead of SSD write-back.
		if !d.tryLockN() {
			return false, nil
		}
		defer d.unlockN()
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(d.pid) {
			return false, nil
		}
		defer nm.thaw()
		p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
		if err := bm.nvmWritePayload(ctx.Clock, loc.nvmFrame, 0, frame); err != nil {
			return false, err
		}
		nm.dirty.Store(true)
		bm.stats.dramToNVM.Inc()
		bm.emit(ctx, obs.Event{Type: obs.EvWriteBack, From: obs.TierDRAM, To: obs.TierNVM, Page: d.pid})
		return true, nil
	}

	// NVM admission decision (§3.4). HyMem consults its admission queue;
	// Spitfire flips a Bernoulli(Nw) coin. The background cleaner does
	// neither blindly: it feeds the admission queue even in coin mode, so
	// its off-critical-path write-backs pre-warm NVM with pages that have
	// shown repeated eviction pressure, while a single cold sweep cannot
	// flood the buffer the way always-admit did. (With Nw forced to zero —
	// NVM disabled or degraded — the cleaner bias is off too.)
	admit := false
	if nvmOK {
		pol := bm.pol.Load()
		if pol.NwMode == policy.NwAdmissionQueue && bm.admQueue != nil {
			admit = bm.admQueue.Admit(d.pid)
		} else if ctx.cleaner {
			admit = pol.Nw > 0 && bm.admQueue != nil && bm.admQueue.Admit(d.pid)
		} else {
			admit = ctx.bernoulli(pol.Nw)
		}
	}
	if admit {
		if !d.tryLockN() {
			return false, nil
		}
		nf, err := bm.nvm.alloc(bm, ctx)
		if err == nil {
			p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
			if ierr := bm.installNVMPage(ctx.Clock, nf, d.pid, frame); ierr != nil {
				// Admission failed mid-install; the page has no NVM copy yet,
				// so fall back to writing it straight to SSD below.
				bm.nvm.release(nf)
				d.unlockN()
			} else {
				bm.nvm.meta[nf].pid.Store(d.pid)
				bm.nvm.meta[nf].dirty.Store(true)
				bm.nvm.meta[nf].clAdmit.Store(ctx.cleaner)
				if ctx.cleaner {
					bm.stats.cleanerAdmittedNVM.Inc()
				}
				d.lockMu()
				d.nvmFrame = nf
				d.unlockMu()
				bm.nvm.meta[nf].thaw()
				bm.nvm.ref(nf)
				d.unlockN()
				bm.stats.dramToNVM.Inc()
				bm.emit(ctx, obs.Event{Type: obs.EvAdmit, From: obs.TierDRAM, To: obs.TierNVM, Page: d.pid})
				return true, nil
			}
		} else {
			// NVM itself is unevictable right now; fall through to SSD.
			d.unlockN()
			if isIOErr(err) && !errors.Is(err, device.ErrCrashed) {
				// note and keep going: SSD can still take the page
				bm.noteNVMErr(err)
			} else if errors.Is(err, device.ErrCrashed) {
				return false, err
			}
		}
	}

	if !d.tryLockS() {
		return false, nil
	}
	defer d.unlockS()
	p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
	if err := bm.diskWritePage(ctx.Clock, d.pid, frame); err != nil {
		return false, err
	}
	bm.stats.dramToSSD.Inc()
	bm.emit(ctx, obs.Event{Type: obs.EvWriteBack, From: obs.TierDRAM, To: obs.TierSSD, Page: d.pid})
	return true, nil
}

// allocMini returns a frozen, clean mini frame.
func (p *dramPool) allocMini(bm *BufferManager, ctx *Ctx) (int32, error) {
	mp := p.mini
	home := mp.shardIndexFor(ctx)
	if f, ok := mp.takeFree(ctx); ok {
		return f, nil
	}
	var searchStart time.Time
	for i := 0; ; i++ {
		if allocExpired(i, &searchStart) {
			break
		}
		if f, ok := mp.takeFree(ctx); ok {
			return f, nil
		}
		v := mp.victim(home + i)
		if !mp.meta[v].tryFreeze() {
			backoff(i)
			continue
		}
		if mp.meta[v].pid.Load() == InvalidPageID {
			return v, nil
		}
		ok, err := bm.evictMiniFrame(ctx, v)
		if err != nil {
			return noFrame, err
		}
		if ok {
			return v, nil
		}
	}
	return noFrame, errPoolExhausted
}

// evictMiniFrame evicts the mini page in frozen mini frame v, writing dirty
// slots back to the page's NVM copy.
func (bm *BufferManager) evictMiniFrame(ctx *Ctx, v int32) (bool, error) {
	mp := bm.dram.mini
	m := &mp.meta[v]
	pid := m.pid.Load()
	d, ok := bm.table.Get(pid)
	if !ok {
		m.thaw()
		return false, nil
	}
	d.lockMu()
	match := d.dramMini == v
	d.unlockMu()
	if !match {
		m.thaw()
		return false, nil
	}
	if !d.tryLockD() {
		m.thaw()
		return false, nil
	}
	fg := m.fg.Load()
	if m.dirty.Load() && fg != nil && fg.slotDirtyAny() {
		loc := d.load()
		if loc.nvmFrame == noFrame {
			// Invariant violation guard: never drop dirty mini slots with
			// no backing copy.
			d.unlockD()
			m.thaw()
			return false, nil
		}
		if !d.tryLockN() {
			d.unlockD()
			m.thaw()
			return false, nil
		}
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(pid) {
			d.unlockN()
			d.unlockD()
			m.thaw()
			return false, nil
		}
		fg.lock()
		data := mp.data(v)
		var werr error
		for s := 0; s < fg.slotCount; s++ {
			if fg.slotDirty&(1<<uint(s)) == 0 {
				continue
			}
			u := int(fg.slots[s])
			bm.dram.charge.ChargeRead(ctx.Clock, int64(int(v)*mp.slotSize+s*fg.unit), fg.unit)
			if werr = bm.nvmWritePayload(ctx.Clock, loc.nvmFrame, u*fg.unit, data[s*fg.unit:(s+1)*fg.unit]); werr != nil {
				break
			}
		}
		if werr == nil {
			fg.clearDirty()
		}
		fg.unlock()
		if werr != nil {
			nm.thaw()
			d.unlockN()
			d.unlockD()
			m.thaw()
			return false, werr
		}
		nm.dirty.Store(true)
		nm.thaw()
		d.unlockN()
		bm.stats.dramToNVM.Inc()
	}
	d.lockMu()
	d.dramMini = noFrame
	d.unlockMu()
	d.unlockD()
	m.pid.Store(InvalidPageID)
	m.dirty.Store(false)
	m.fg.Store(nil)
	mp.unref(v)
	bm.stats.evictMini.Inc()
	return true, nil
}

// slotDirtyAny reports whether any mini slot is dirty (lock-free peek; the
// caller revalidates under fg.mu).
func (fg *fgState) slotDirtyAny() bool { return fg.slotDirty != 0 }

// alloc returns a frozen, clean NVM frame, evicting a victim if needed. As
// with the DRAM pool, the cleaner-stocked free list is the fast path and the
// inline eviction loop the fallback.
func (np *nvmPool) alloc(bm *BufferManager, ctx *Ctx) (int32, error) {
	home := np.shardIndexFor(ctx)
	if f, ok := np.takeFree(ctx); ok {
		if cl := bm.nvmCleaner; cl != nil && np.freeCount() < cl.low {
			cl.wake(home)
		}
		return f, nil
	}
	if cl := bm.nvmCleaner; cl != nil {
		cl.wake(home)
	}
	var searchStart time.Time
	for i := 0; ; i++ {
		if allocExpired(i, &searchStart) {
			break
		}
		if f, ok := np.takeFree(ctx); ok {
			return f, nil
		}
		v := np.victim(home + i)
		if !np.meta[v].tryFreeze() {
			backoff(i)
			continue
		}
		if np.meta[v].pid.Load() == InvalidPageID {
			return v, nil
		}
		ok, err := bm.evictNVMFrame(ctx, v)
		if err != nil {
			return noFrame, err
		}
		if ok {
			bm.stats.fgEvicts.Inc()
			bm.fgBatchClean(ctx, &np.basePool, bm.evictNVMFrame)
			return v, nil
		}
	}
	return noFrame, errPoolExhausted
}

// evictNVMFrame evicts the page in frozen NVM frame v, writing it back to
// SSD if dirty (path ❽). Pages whose DRAM copy is only partially resident
// (cache-line-grained or mini) are skipped: evicting their backing store
// would orphan them.
func (bm *BufferManager) evictNVMFrame(ctx *Ctx, v int32) (bool, error) {
	np := bm.nvm
	m := &np.meta[v]
	pid := m.pid.Load()
	var evStart int64
	if bm.obs != nil {
		evStart = ctx.Clock.Now()
	}
	d, ok := bm.table.Get(pid)
	if !ok {
		m.thaw()
		return false, nil
	}
	d.lockMu()
	match := d.nvmFrame == v
	d.unlockMu()
	if !match {
		m.thaw()
		return false, nil
	}
	if !d.tryLockN() {
		m.thaw()
		return false, nil
	}
	// Re-check DRAM dependencies under latchN (migrations up require it,
	// so no new fine-grained page can appear once we hold it).
	d.lockMu()
	mini := d.dramMini != noFrame
	df := d.dramFrame
	d.unlockMu()
	if mini {
		d.unlockN()
		m.thaw()
		return false, nil
	}
	if df != noFrame && bm.dram != nil {
		if fg := bm.dram.meta[df].fg.Load(); fg != nil && !fg.fullyResident() {
			d.unlockN()
			m.thaw()
			return false, nil
		}
	}
	if m.dirty.Load() {
		if !d.tryLockS() {
			d.unlockN()
			m.thaw()
			return false, nil
		}
		buf := ctx.buf()
		err := bm.nvmReadPayload(ctx.Clock, v, 0, buf)
		if err == nil {
			err = bm.diskWritePage(ctx.Clock, pid, buf)
		}
		d.unlockS()
		if err != nil {
			d.unlockN()
			m.thaw()
			return false, err
		}
		bm.stats.nvmToSSD.Inc()
		bm.emit(ctx, obs.Event{Type: obs.EvWriteBack, From: obs.TierNVM, To: obs.TierSSD, Page: pid})
	}
	// Invalidate the frame's durable header so recovery cannot resurrect it.
	// An invalidation failure keeps the frame attached (thawed, consistent):
	// abandoning it here while its valid header survives in the arena would
	// let a crash-recovery scan revive a page the manager thinks it evicted.
	if err := bm.nvmWriteHeader(ctx.Clock, v, InvalidPageID, false); err != nil {
		d.unlockN()
		m.thaw()
		return false, err
	}
	d.lockMu()
	d.nvmFrame = noFrame
	d.unlockMu()
	d.unlockN()
	m.pid.Store(InvalidPageID)
	m.dirty.Store(false)
	m.clAdmit.Store(false)
	np.unref(v)
	bm.stats.evictNVM.Inc()
	if bm.obs != nil {
		now := ctx.Clock.Now()
		bm.hEvictNVM.Observe(now - evStart)
		bm.obsRing(ctx).Emit(obs.Event{
			TS: now, Dur: now - evStart,
			Type: obs.EvEvict, From: obs.TierNVM, Page: pid,
		})
	}
	return true, nil
}
