package core

import (
	"errors"
	"time"

	"github.com/spitfire-db/spitfire/internal/policy"
)

// errPoolExhausted is returned when no frame can be reclaimed: every frame
// is pinned or under concurrent migration for the whole attempt budget.
var errPoolExhausted = errors.New("core: buffer pool exhausted (all frames pinned)")

// allocDeadline bounds the victim search in wall-clock time. Pins are
// short-lived (the engine releases a handle before fetching the next page),
// so allocation waits patiently — yielding via backoff — rather than
// failing the moment more workers hold pins than the pool has frames. A
// generous real-time deadline (rather than an iteration count) keeps the
// search robust on heavily loaded hosts; it only expires if callers wedge
// frames essentially forever.
var allocDeadline = 10 * time.Second

// allocExpired checks the deadline every few thousand iterations (time.Now
// is too expensive to call per attempt).
func allocExpired(i int, start *time.Time) bool {
	if i&8191 != 8191 {
		return false
	}
	if start.IsZero() {
		*start = time.Now()
		return false
	}
	return time.Since(*start) > allocDeadline
}

// alloc returns a frozen, clean DRAM frame, evicting a victim if the free
// list is empty. With the background cleaner enabled the common case is a
// free-list pop; the inline eviction loop below is the fallback when the
// cleaner cannot keep up.
func (p *dramPool) alloc(bm *BufferManager, ctx *Ctx) (int32, error) {
	if f, ok := p.takeFree(); ok {
		if cl := bm.dramCleaner; cl != nil && len(p.free) < cl.low {
			cl.wake()
		}
		return f, nil
	}
	if cl := bm.dramCleaner; cl != nil {
		cl.wake()
	}
	var searchStart time.Time
	for i := 0; ; i++ {
		if allocExpired(i, &searchStart) {
			break
		}
		if f, ok := p.takeFree(); ok {
			return f, nil
		}
		v := int32(p.clock.Victim())
		if !p.meta[v].tryFreeze() {
			backoff(i)
			continue
		}
		if p.meta[v].pid.Load() == InvalidPageID {
			// Defensive: a frozen frame with no page should only live on
			// the free list; hand it out rather than losing it.
			return v, nil
		}
		if bm.evictDRAMFrame(ctx, v) {
			bm.stats.fgEvicts.Inc()
			return v, nil
		}
	}
	return noFrame, errPoolExhausted
}

// evictDRAMFrame evicts the page occupying frozen frame v, leaving the
// frame frozen and clean for reuse. On failure the frame is thawed.
func (bm *BufferManager) evictDRAMFrame(ctx *Ctx, v int32) bool {
	p := bm.dram
	m := &p.meta[v]
	pid := m.pid.Load()
	d, ok := bm.table.Get(pid)
	if !ok {
		m.thaw()
		return false
	}
	d.mu.Lock()
	match := d.dramFrame == v
	d.mu.Unlock()
	if !match {
		m.thaw()
		return false
	}
	if !d.latchD.TryLock() {
		m.thaw()
		return false
	}
	if !bm.writeBackDRAM(ctx, d, v) {
		d.latchD.Unlock()
		m.thaw()
		return false
	}
	d.mu.Lock()
	d.dramFrame = noFrame
	d.mu.Unlock()
	d.latchD.Unlock()
	m.pid.Store(InvalidPageID)
	m.dirty.Store(false)
	m.fg.Store(nil)
	p.clock.Unref(int(v))
	bm.stats.evictDRAM.Inc()
	return true
}

// writeBackDRAM makes frame v's contents durable-enough to drop: dirty data
// is pushed to the NVM copy if one exists, otherwise admitted to NVM per Nw
// (or HyMem's admission queue), otherwise written straight to SSD (§3.4).
// Caller holds d.latchD and the frozen frame.
func (bm *BufferManager) writeBackDRAM(ctx *Ctx, d *descriptor, v int32) bool {
	p := bm.dram
	m := &p.meta[v]
	fg := m.fg.Load()
	dirty := m.dirty.Load()
	loc := d.load()

	// Cache-line-grained page backed by an NVM copy: write only the dirty
	// units back (the bandwidth saving of HyMem's layout, Figure 2a).
	if fg != nil && loc.nvmFrame != noFrame {
		if !dirty {
			return true
		}
		if !d.latchN.TryLock() {
			return false
		}
		defer d.latchN.Unlock()
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(d.pid) {
			return false
		}
		defer nm.thaw()
		fg.mu.Lock()
		frame := p.frame(v)
		for u := 0; u < fg.unitsPerPage(); u++ {
			if fg.isDirty(u) {
				off := u * fg.unit
				p.charge.ChargeRead(ctx.Clock, p.frameOffset(v)+int64(off), fg.unit)
				bm.nvm.writePayload(ctx.Clock, loc.nvmFrame, off, frame[off:off+fg.unit])
			}
		}
		fg.clearDirty()
		fg.mu.Unlock()
		nm.dirty.Store(true)
		bm.stats.dramToNVM.Inc()
		return true
	}
	// A fine-grained page without an NVM copy is fully resident by
	// invariant (the NVM evictor refuses to orphan partial pages), so the
	// whole-page paths below are safe for it.

	if !dirty {
		// Spitfire simply discards clean pages (§3.3: only modified pages
		// are considered for NVM admission). HyMem's admission queue,
		// however, sees *every* page evicted from DRAM — its NVM buffer is
		// a second-level cache — so in queue mode a clean page that earns
		// admission is installed on NVM (clean: SSD already has it).
		pol := bm.pol.Load()
		if pol.NwMode != policy.NwAdmissionQueue || bm.admQueue == nil ||
			bm.nvm == nil || loc.nvmFrame != noFrame || !bm.admQueue.Admit(d.pid) {
			return true
		}
		if !d.latchN.TryLock() {
			return true // clean: safe to just drop instead
		}
		nf, err := bm.nvm.alloc(bm, ctx)
		if err == nil {
			frame := p.frame(v)
			p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
			bm.nvm.writeHeader(ctx.Clock, nf, d.pid, true)
			bm.nvm.writePayload(ctx.Clock, nf, 0, frame)
			bm.nvm.meta[nf].pid.Store(d.pid)
			bm.nvm.meta[nf].dirty.Store(false)
			d.mu.Lock()
			d.nvmFrame = nf
			d.mu.Unlock()
			bm.nvm.meta[nf].thaw()
			bm.nvm.clock.Ref(int(nf))
			bm.stats.dramToNVM.Inc()
		}
		d.latchN.Unlock()
		return true
	}

	frame := p.frame(v)
	if loc.nvmFrame != noFrame {
		// Refresh the page's existing NVM copy so NVM never goes stale
		// ahead of SSD write-back.
		if !d.latchN.TryLock() {
			return false
		}
		defer d.latchN.Unlock()
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(d.pid) {
			return false
		}
		defer nm.thaw()
		p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
		bm.nvm.writePayload(ctx.Clock, loc.nvmFrame, 0, frame)
		nm.dirty.Store(true)
		bm.stats.dramToNVM.Inc()
		return true
	}

	// NVM admission decision (§3.4). HyMem consults its admission queue;
	// Spitfire flips a Bernoulli(Nw) coin.
	admit := false
	if bm.nvm != nil {
		pol := bm.pol.Load()
		if pol.NwMode == policy.NwAdmissionQueue && bm.admQueue != nil {
			admit = bm.admQueue.Admit(d.pid)
		} else {
			admit = ctx.bernoulli(pol.Nw)
		}
	}
	if admit {
		if !d.latchN.TryLock() {
			return false
		}
		nf, err := bm.nvm.alloc(bm, ctx)
		if err == nil {
			p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
			bm.nvm.writeHeader(ctx.Clock, nf, d.pid, true)
			bm.nvm.writePayload(ctx.Clock, nf, 0, frame)
			bm.nvm.meta[nf].pid.Store(d.pid)
			bm.nvm.meta[nf].dirty.Store(true)
			d.mu.Lock()
			d.nvmFrame = nf
			d.mu.Unlock()
			bm.nvm.meta[nf].thaw()
			bm.nvm.clock.Ref(int(nf))
			d.latchN.Unlock()
			bm.stats.dramToNVM.Inc()
			return true
		}
		// NVM itself is unevictable right now; fall through to SSD.
		d.latchN.Unlock()
	}

	if !d.latchS.TryLock() {
		return false
	}
	defer d.latchS.Unlock()
	p.charge.ChargeRead(ctx.Clock, p.frameOffset(v), PageSize)
	if err := bm.disk.WritePage(ctx.Clock, d.pid, frame); err != nil {
		return false
	}
	bm.stats.dramToSSD.Inc()
	return true
}

// allocMini returns a frozen, clean mini frame.
func (p *dramPool) allocMini(bm *BufferManager, ctx *Ctx) (int32, error) {
	mp := p.mini
	if f, ok := mp.takeFree(); ok {
		return f, nil
	}
	var searchStart time.Time
	for i := 0; ; i++ {
		if allocExpired(i, &searchStart) {
			break
		}
		if f, ok := mp.takeFree(); ok {
			return f, nil
		}
		v := int32(mp.clock.Victim())
		if !mp.meta[v].tryFreeze() {
			backoff(i)
			continue
		}
		if mp.meta[v].pid.Load() == InvalidPageID {
			return v, nil
		}
		if bm.evictMiniFrame(ctx, v) {
			return v, nil
		}
	}
	return noFrame, errPoolExhausted
}

// evictMiniFrame evicts the mini page in frozen mini frame v, writing dirty
// slots back to the page's NVM copy.
func (bm *BufferManager) evictMiniFrame(ctx *Ctx, v int32) bool {
	mp := bm.dram.mini
	m := &mp.meta[v]
	pid := m.pid.Load()
	d, ok := bm.table.Get(pid)
	if !ok {
		m.thaw()
		return false
	}
	d.mu.Lock()
	match := d.dramMini == v
	d.mu.Unlock()
	if !match {
		m.thaw()
		return false
	}
	if !d.latchD.TryLock() {
		m.thaw()
		return false
	}
	fg := m.fg.Load()
	if m.dirty.Load() && fg != nil && fg.slotDirtyAny() {
		loc := d.load()
		if loc.nvmFrame == noFrame {
			// Invariant violation guard: never drop dirty mini slots with
			// no backing copy.
			d.latchD.Unlock()
			m.thaw()
			return false
		}
		if !d.latchN.TryLock() {
			d.latchD.Unlock()
			m.thaw()
			return false
		}
		nm := &bm.nvm.meta[loc.nvmFrame]
		if !nm.freezeWait(pid) {
			d.latchN.Unlock()
			d.latchD.Unlock()
			m.thaw()
			return false
		}
		fg.mu.Lock()
		data := mp.data(v)
		for s := 0; s < fg.slotCount; s++ {
			if fg.slotDirty&(1<<uint(s)) == 0 {
				continue
			}
			u := int(fg.slots[s])
			bm.dram.charge.ChargeRead(ctx.Clock, int64(int(v)*mp.slotSize+s*fg.unit), fg.unit)
			bm.nvm.writePayload(ctx.Clock, loc.nvmFrame, u*fg.unit, data[s*fg.unit:(s+1)*fg.unit])
		}
		fg.clearDirty()
		fg.mu.Unlock()
		nm.dirty.Store(true)
		nm.thaw()
		d.latchN.Unlock()
		bm.stats.dramToNVM.Inc()
	}
	d.mu.Lock()
	d.dramMini = noFrame
	d.mu.Unlock()
	d.latchD.Unlock()
	m.pid.Store(InvalidPageID)
	m.dirty.Store(false)
	m.fg.Store(nil)
	mp.clock.Unref(int(v))
	bm.stats.evictMini.Inc()
	return true
}

// slotDirtyAny reports whether any mini slot is dirty (lock-free peek; the
// caller revalidates under fg.mu).
func (fg *fgState) slotDirtyAny() bool { return fg.slotDirty != 0 }

// alloc returns a frozen, clean NVM frame, evicting a victim if needed. As
// with the DRAM pool, the cleaner-stocked free list is the fast path and the
// inline eviction loop the fallback.
func (np *nvmPool) alloc(bm *BufferManager, ctx *Ctx) (int32, error) {
	if f, ok := np.takeFree(); ok {
		if cl := bm.nvmCleaner; cl != nil && len(np.free) < cl.low {
			cl.wake()
		}
		return f, nil
	}
	if cl := bm.nvmCleaner; cl != nil {
		cl.wake()
	}
	var searchStart time.Time
	for i := 0; ; i++ {
		if allocExpired(i, &searchStart) {
			break
		}
		if f, ok := np.takeFree(); ok {
			return f, nil
		}
		v := int32(np.clock.Victim())
		if !np.meta[v].tryFreeze() {
			backoff(i)
			continue
		}
		if np.meta[v].pid.Load() == InvalidPageID {
			return v, nil
		}
		if bm.evictNVMFrame(ctx, v) {
			bm.stats.fgEvicts.Inc()
			return v, nil
		}
	}
	return noFrame, errPoolExhausted
}

// evictNVMFrame evicts the page in frozen NVM frame v, writing it back to
// SSD if dirty (path ❽). Pages whose DRAM copy is only partially resident
// (cache-line-grained or mini) are skipped: evicting their backing store
// would orphan them.
func (bm *BufferManager) evictNVMFrame(ctx *Ctx, v int32) bool {
	np := bm.nvm
	m := &np.meta[v]
	pid := m.pid.Load()
	d, ok := bm.table.Get(pid)
	if !ok {
		m.thaw()
		return false
	}
	d.mu.Lock()
	match := d.nvmFrame == v
	d.mu.Unlock()
	if !match {
		m.thaw()
		return false
	}
	if !d.latchN.TryLock() {
		m.thaw()
		return false
	}
	// Re-check DRAM dependencies under latchN (migrations up require it,
	// so no new fine-grained page can appear once we hold it).
	d.mu.Lock()
	mini := d.dramMini != noFrame
	df := d.dramFrame
	d.mu.Unlock()
	if mini {
		d.latchN.Unlock()
		m.thaw()
		return false
	}
	if df != noFrame && bm.dram != nil {
		if fg := bm.dram.meta[df].fg.Load(); fg != nil && !fg.fullyResident() {
			d.latchN.Unlock()
			m.thaw()
			return false
		}
	}
	if m.dirty.Load() {
		if !d.latchS.TryLock() {
			d.latchN.Unlock()
			m.thaw()
			return false
		}
		buf := ctx.buf()
		np.readPayload(ctx.Clock, v, 0, buf)
		err := bm.disk.WritePage(ctx.Clock, pid, buf)
		d.latchS.Unlock()
		if err != nil {
			d.latchN.Unlock()
			m.thaw()
			return false
		}
		bm.stats.nvmToSSD.Inc()
	}
	np.writeHeader(ctx.Clock, v, InvalidPageID, false)
	d.mu.Lock()
	d.nvmFrame = noFrame
	d.mu.Unlock()
	d.latchN.Unlock()
	m.pid.Store(InvalidPageID)
	m.dirty.Store(false)
	np.clock.Unref(int(v))
	bm.stats.evictNVM.Inc()
	return true
}
