package core

import "github.com/spitfire-db/spitfire/internal/lockcheck"

// Latch shims: every descriptor latch acquisition in this package goes
// through these so the -tags lockcheck runtime checker (internal/lockcheck)
// sees the full acquisition order. Without the tag the lockcheck calls are
// inlined no-ops and the shims compile down to the bare mutex operations.
//
// The discipline they witness is the one documented on descriptor:
// latchD → latchN → latchS on one descriptor (skipping allowed), mu a
// strict leaf, and second descriptors only via TryLock.

func (d *descriptor) lockMu() {
	lockcheck.Acquire(d, lockcheck.RankMu)
	d.mu.Lock()
}

func (d *descriptor) unlockMu() {
	d.mu.Unlock()
	lockcheck.Release(d, lockcheck.RankMu)
}

func (d *descriptor) lockD() {
	lockcheck.Acquire(d, lockcheck.RankD)
	d.latchD.Lock()
}

func (d *descriptor) tryLockD() bool {
	if !d.latchD.TryLock() {
		return false
	}
	lockcheck.Acquired(d, lockcheck.RankD)
	return true
}

func (d *descriptor) unlockD() {
	d.latchD.Unlock()
	lockcheck.Release(d, lockcheck.RankD)
}

func (d *descriptor) lockN() {
	lockcheck.Acquire(d, lockcheck.RankN)
	d.latchN.Lock()
}

func (d *descriptor) tryLockN() bool {
	if !d.latchN.TryLock() {
		return false
	}
	lockcheck.Acquired(d, lockcheck.RankN)
	return true
}

func (d *descriptor) unlockN() {
	d.latchN.Unlock()
	lockcheck.Release(d, lockcheck.RankN)
}

// lock acquires a frame group's mutex. fg.mu guards the residency/dirty
// bitmaps and mini-page slot directory; the only latch that may be taken
// while it is held is descriptor.mu (the fine-grained load path pins the
// NVM backing under fg.mu, safe because mu is a strict leaf).
func (fg *fgState) lock() {
	lockcheck.Acquire(fg, lockcheck.RankFg)
	fg.mu.Lock()
}

func (fg *fgState) unlock() {
	fg.mu.Unlock()
	lockcheck.Release(fg, lockcheck.RankFg)
}

func (d *descriptor) lockS() {
	lockcheck.Acquire(d, lockcheck.RankS)
	d.latchS.Lock()
}

func (d *descriptor) tryLockS() bool {
	if !d.latchS.TryLock() {
		return false
	}
	lockcheck.Acquired(d, lockcheck.RankS)
	return true
}

func (d *descriptor) unlockS() {
	d.latchS.Unlock()
	lockcheck.Release(d, lockcheck.RankS)
}
