package core

import (
	"errors"
	"fmt"
)

// Recover builds a buffer manager on top of a surviving NVM arena after a
// (simulated) crash. This is the first step of the paper's recovery
// protocol (§5.2): the NVM buffer is scanned to collect the page ids of its
// self-identifying frames and the mapping table is reconstructed, so the
// latest durable version of every NVM-resident page is immediately
// available. (Completing the log and running analysis/redo/undo is the WAL
// manager's job, layered on top of the recovered buffer manager.)
//
// cfg must carry the surviving PMem arena and the same geometry the crashed
// manager used. Recovered pages are conservatively marked dirty relative to
// SSD so they are written back when evicted.
func Recover(cfg Config) (*BufferManager, error) {
	if cfg.PMem == nil {
		return nil, errors.New("core: Recover requires the surviving PMem arena")
	}
	// Defer cleaner startup until after the scan: the cleaners must not race
	// the free-list rebuild below.
	enableCleaner := cfg.Cleaner.Enable
	cfg.Cleaner.Enable = false
	bm, err := New(cfg)
	if err != nil {
		return nil, err
	}
	np := bm.nvm
	if np == nil {
		return nil, errors.New("core: Recover requires an NVM tier")
	}

	ctx := NewCtx(0)

	// Drain the free lists so we can re-seed them with only the frames that
	// are actually free. takeFree sweeps every shard, so draining until it
	// fails empties all of them.
	for {
		if _, ok := np.takeFree(ctx); !ok {
			break
		}
	}

	maxPID := PageID(0)
	seen := make(map[PageID]int32)
	for i := 0; i < np.nFrames; i++ {
		f := int32(i)
		// The scan itself reads every header from NVM; charge it.
		np.pm.Device().Read(ctx.Clock, 16)
		pid, valid := np.readHeader(f)
		if !valid {
			np.meta[f].pid.Store(InvalidPageID)
			np.meta[f].pins.Store(-1)
			np.release(f)
			continue
		}
		if dup, ok := seen[pid]; ok {
			// Two frames claim the same page (a crash between header
			// persist and descriptor publish can leave a torn install).
			// Keep the first and retire the other.
			_ = dup
			if err := np.writeHeader(ctx.Clock, f, InvalidPageID, false); err != nil {
				// Leaving the stale header durable would let the *next*
				// recovery resurrect it; fail loudly instead.
				bm.Close()
				return nil, fmt.Errorf("core: recover: retiring duplicate frame %d: %w", f, err)
			}
			np.meta[f].pid.Store(InvalidPageID)
			np.meta[f].pins.Store(-1)
			np.release(f)
			continue
		}
		seen[pid] = f
		np.meta[f].pid.Store(pid)
		np.meta[f].dirty.Store(true) // conservatively newer than SSD
		np.meta[f].pins.Store(0)
		d := bm.descriptorFor(pid)
		d.lockMu()
		d.nvmFrame = f
		d.unlockMu()
		bm.stats.recoveredNVMPages.Inc()
		if pid >= maxPID {
			maxPID = pid + 1
		}
	}
	if bm.nextPID.Load() < maxPID {
		bm.nextPID.Store(maxPID)
	}
	if enableCleaner {
		bm.cfg.Cleaner.Enable = true
		bm.startCleaners()
	}
	return bm, nil
}
