package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
)

// TestObsFetchEvictTraced: with observability attached, fetch/evict churn
// populates the per-tier latency histograms and tracer rings, and both
// exporters produce parseable output (Chrome trace JSON, Prometheus text).
func TestObsFetchEvictTraced(t *testing.T) {
	o := obs.New(obs.Config{RingSize: 256})
	// Device-level histograms are wired by whoever owns the devices (the
	// harness, normally) — mirror that here with a real SSD device.
	ssdDev := device.New(device.SSDParams)
	ssdDev.SetLatencyHistograms(o.Hist(obs.HDevSSDRead), o.Hist(obs.HDevSSDWrite))
	bm := newBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  4 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
		SSD:       ssd.NewMem(ssdDev),
		Obs:       o,
	})
	seed(t, bm, 8)

	ctx := NewCtx(20)
	data := make([]byte, PageSize)
	for round := 0; round < 3; round++ {
		for pid := uint64(0); pid < 8; pid++ {
			h, err := bm.FetchPage(ctx, pid, WriteIntent)
			if err != nil {
				t.Fatal(err)
			}
			marker(data, pid, byte(round))
			if err := h.WriteAt(ctx, 0, data); err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}

	st := bm.Stats()
	var fetches int64
	for _, h := range []obs.Hist{obs.HFetchDRAM, obs.HFetchMini, obs.HFetchNVM, obs.HFetchMiss} {
		fetches += o.Hist(h).Count()
	}
	if want := st.HitDRAM + st.HitMini + st.HitNVM + st.MissSSD; fetches != want {
		t.Errorf("fetch histograms hold %d observations, stats count %d fetches", fetches, want)
	}
	if st.EvictDRAM > 0 && o.Hist(obs.HEvictDRAM).Count() == 0 {
		t.Error("DRAM evictions happened but HEvictDRAM is empty")
	}
	if o.Hist(obs.HDevSSDRead).Count() == 0 {
		t.Error("SSD reads happened but the device read histogram is empty")
	}
	if rings, _ := o.RingCount(); rings == 0 {
		t.Fatal("no tracer ring was allocated for the worker context")
	}

	var trace bytes.Buffer
	if err := o.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &parsed); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	sawFetch := false
	for _, ev := range parsed.TraceEvents {
		if name, _ := ev["name"].(string); strings.HasPrefix(name, "fetch") {
			sawFetch = true
			break
		}
	}
	if !sawFetch {
		t.Error("Chrome trace holds no fetch events")
	}

	var prom bytes.Buffer
	if err := o.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(prom.String()); err != nil {
		t.Fatalf("Prometheus exposition does not lint: %v", err)
	}
}

// TestObsConcurrentChurn drives parallel workers through fetch/write/evict
// churn with tracing on while exporters snapshot concurrently — the
// race-detector check that per-worker rings and shared histograms are safe.
func TestObsConcurrentChurn(t *testing.T) {
	o := obs.New(obs.Config{RingSize: 128})
	bm := newBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  4 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
		Obs:       o,
	})
	const pages = 12
	seed(t, bm, pages)

	const workers = 8
	const opsPer = 300
	var wg, wgExp sync.WaitGroup
	stop := make(chan struct{})
	// Exporters race the workers: snapshots must never block or tear.
	wgExp.Add(1)
	go func() {
		defer wgExp.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sink bytes.Buffer
			_ = o.WriteJSONL(&sink)
			sink.Reset()
			_ = o.WritePrometheus(&sink)
		}
	}()
	errs := make([]error, workers)
	// Per-page locks stand in for the engine's record-level concurrency
	// control: the buffer manager hands out concurrent handles to one page
	// by design, so unsynchronized test reads would race test writes.
	var pageLocks [pages]sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewCtx(uint64(100 + w))
			data := make([]byte, 64)
			for i := 0; i < opsPer; i++ {
				pid := uint64((i*7 + w*13) % pages)
				intent := ReadIntent
				if i%3 == 0 {
					intent = WriteIntent
				}
				pageLocks[pid].Lock()
				h, err := bm.FetchPage(ctx, pid, intent)
				if err != nil {
					pageLocks[pid].Unlock()
					errs[w] = err
					return
				}
				if intent == WriteIntent {
					marker(data, pid, byte(i))
					err = h.WriteAt(ctx, 0, data)
				} else {
					err = h.ReadAt(ctx, 0, data)
				}
				h.Release()
				pageLocks[pid].Unlock()
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	wgExp.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	var total int64
	for _, h := range []obs.Hist{obs.HFetchDRAM, obs.HFetchMini, obs.HFetchNVM, obs.HFetchMiss} {
		total += o.Hist(h).Count()
	}
	if want := int64(workers * opsPer); total != want {
		t.Errorf("fetch histograms hold %d observations, want %d", total, want)
	}
}

// benchSetup builds a manager whose working set fits in DRAM, so the
// benchmark measures the fetch fast path (hit, pin, release) rather than
// device traffic.
func benchSetup(b *testing.B, o *obs.Obs) (*BufferManager, *Ctx) {
	b.Helper()
	bm, err := New(Config{
		DRAMBytes: 16 * PageSize,
		Policy:    policy.Policy{Dr: 1, Dw: 1},
		Obs:       o,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(bm.Close)
	ctx := NewCtx(1)
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < 8; pid++ {
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			b.Fatal(err)
		}
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
	return bm, ctx
}

// BenchmarkFetchDisabled is the baseline: observability not attached, so
// FetchPage takes the single-nil-check fast path. Compare against
// BenchmarkFetchTraced to see the cost of full tracing; the <5%-when-off
// acceptance number is this benchmark against the pre-instrumentation
// fetch, which differs from it by exactly one pointer nil check.
func BenchmarkFetchDisabled(b *testing.B) {
	bm, ctx := benchSetup(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := bm.FetchPage(ctx, uint64(i%8), ReadIntent)
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}

// BenchmarkFetchTraced measures the same DRAM-hit loop with tracing on:
// clock reads, one histogram observation and one ring emit per fetch.
func BenchmarkFetchTraced(b *testing.B) {
	o := obs.New(obs.Config{})
	bm, ctx := benchSetup(b, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := bm.FetchPage(ctx, uint64(i%8), ReadIntent)
		if err != nil {
			b.Fatal(err)
		}
		h.Release()
	}
}
