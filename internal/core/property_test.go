package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// TestQuickShadowStore is the buffer manager's black-box property test:
// any single-threaded sequence of reads and writes over any policy must
// behave exactly like a flat byte array, regardless of which tier serves
// each access or how often pages migrate and evict.
func TestQuickShadowStore(t *testing.T) {
	type op struct {
		Page  uint8 // mod pages
		Off   uint16
		Len   uint8
		Write bool
		Fill  byte
		// PolicySwitch rotates through preset policies mid-sequence.
		PolicySwitch bool
	}
	policies := []policy.Policy{
		policy.SpitfireLazy,
		policy.SpitfireEager,
		policy.Hymem,
		{Dr: 0.5, Dw: 0.5, Nr: 0.5, Nw: 0.5},
		{Dr: 0, Dw: 0, Nr: 0, Nw: 0},
	}
	const pages = 12

	f := func(ops []op, fineGrained bool) bool {
		cfg := Config{
			DRAMBytes: 3 * PageSize,
			NVMBytes:  5 * nvmFrameSlot,
			Policy:    policies[0],
		}
		if fineGrained {
			cfg.FineGrained = true
			cfg.LoadingUnit = 128
		}
		bm, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewCtx(77)
		shadow := make([][]byte, pages)
		zero := make([]byte, PageSize)
		for pid := range shadow {
			shadow[pid] = make([]byte, PageSize)
			if err := bm.SeedPage(ctx, uint64(pid), zero); err != nil {
				t.Fatal(err)
			}
		}
		polIdx := 0
		scratch := make([]byte, 256)
		for _, o := range ops {
			if o.PolicySwitch {
				polIdx = (polIdx + 1) % len(policies)
				if err := bm.SetPolicy(policies[polIdx]); err != nil {
					t.Fatal(err)
				}
			}
			pid := uint64(o.Page) % pages
			off := int(o.Off) % PageSize
			n := int(o.Len)
			if off+n > PageSize {
				n = PageSize - off
			}
			if o.Write {
				h, err := bm.FetchPage(ctx, pid, WriteIntent)
				if err != nil {
					t.Fatal(err)
				}
				data := scratch[:n]
				for i := range data {
					data[i] = o.Fill + byte(i)
				}
				if err := h.WriteAt(ctx, off, data); err != nil {
					t.Fatal(err)
				}
				h.Release()
				copy(shadow[pid][off:off+n], data)
			} else {
				h, err := bm.FetchPage(ctx, pid, ReadIntent)
				if err != nil {
					t.Fatal(err)
				}
				got := scratch[:n]
				if err := h.ReadAt(ctx, off, got); err != nil {
					t.Fatal(err)
				}
				h.Release()
				if !bytes.Equal(got, shadow[pid][off:off+n]) {
					return false
				}
			}
		}
		// Final sweep: every page must match its shadow in full.
		full := make([]byte, PageSize)
		for pid := range shadow {
			h, err := bm.FetchPage(ctx, uint64(pid), ReadIntent)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.ReadAt(ctx, 0, full); err != nil {
				t.Fatal(err)
			}
			h.Release()
			if !bytes.Equal(full, shadow[pid]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// faultStore injects write failures into an inner SSD store.
type faultStore struct {
	ssd.Store
	failWrites bool
}

var errInjected = errors.New("injected SSD failure")

func (f *faultStore) WritePage(c *vclock.Clock, pid uint64, buf []byte) error {
	if f.failWrites {
		return errInjected
	}
	return f.Store.WritePage(c, pid, buf)
}

func TestSSDWriteFailureDoesNotLosePages(t *testing.T) {
	// When SSD writes fail, evictions that need them must fail too — and
	// the victim page must remain intact and reachable. Shorten the
	// allocator's patience so the expected failure is fast.
	old := allocDeadline
	allocDeadline = 50 * time.Millisecond
	defer func() { allocDeadline = old }()
	fs := &faultStore{Store: ssd.NewMem(nil)}
	bm, err := New(Config{
		DRAMBytes: 2 * PageSize,
		Policy:    policy.Policy{Dr: 1, Dw: 1}, // DRAM-SSD only
		SSD:       fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(5)
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < 4; pid++ {
		marker(buf, pid, 0)
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Dirty both DRAM frames.
	for pid := uint64(0); pid < 2; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(ctx, 0, []byte{0xAA}); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	fs.failWrites = true
	// Fetching new pages requires evicting a dirty page, whose write-back
	// now fails: the fetch must error out rather than drop data.
	if _, err := bm.FetchPage(ctx, 3, ReadIntent); err == nil {
		t.Fatal("fetch succeeded despite uncompletable eviction")
	}
	fs.failWrites = false
	// Everything recovers once the device heals.
	h, err := bm.FetchPage(ctx, 3, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// The dirtied pages kept their updates.
	got := make([]byte, 1)
	for pid := uint64(0); pid < 2; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ReadAt(ctx, 0, got); err != nil {
			t.Fatal(err)
		}
		h.Release()
		if got[0] != 0xAA {
			t.Fatalf("page %d lost its update across failed eviction", pid)
		}
	}
}

func TestMemoryModeCharger(t *testing.T) {
	// A custom MemCharger must see every DRAM-buffer access with arena
	// offsets.
	rec := &recordingCharger{}
	bm, err := New(Config{
		DRAMBytes:   4 * PageSize,
		Policy:      policy.Policy{Dr: 1, Dw: 1},
		DRAMCharger: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(6)
	_, h, err := bm.NewPage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(ctx, 100, []byte("x")); err != nil {
		t.Fatal(err)
	}
	h.Release()
	if rec.writes == 0 {
		t.Fatal("charger saw no writes")
	}
}

type recordingCharger struct{ reads, writes int }

func (r *recordingCharger) ChargeRead(c *vclock.Clock, off int64, n int)  { r.reads++ }
func (r *recordingCharger) ChargeWrite(c *vclock.Clock, off int64, n int) { r.writes++ }

func TestStatsPathsAccounted(t *testing.T) {
	// Drive each data-flow path at least once and confirm the counters
	// move: ❼ SSD→NVM, ❻ NVM→DRAM, ❹ DRAM→NVM, ❽ NVM→SSD, ❾ SSD→DRAM,
	// ❿ DRAM→SSD.
	bm := newBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  6 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
	})
	const pages = 10
	seed(t, bm, pages)
	ctx := NewCtx(7)
	touch := func(pid uint64) {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(ctx, 0, []byte{byte(pid)}); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// A hot set that lives in NVM and repeatedly migrates up into the tiny
	// DRAM buffer (eager Dr/Dw), plus cold pages that churn NVM.
	for round := 0; round < 6; round++ {
		for pid := uint64(0); pid < 4; pid++ {
			touch(pid)
			touch(pid) // second touch: NVM hit -> migrate up
		}
		for pid := uint64(4); pid < pages; pid++ {
			touch(pid)
		}
	}
	st := bm.Stats()
	for name, v := range map[string]int64{
		"SSDToNVM":  st.SSDToNVM,
		"NVMToDRAM": st.NVMToDRAM,
		"DRAMToNVM": st.DRAMToNVM,
		"NVMToSSD":  st.NVMToSSD,
		"EvictDRAM": st.EvictDRAM,
		"EvictNVM":  st.EvictNVM,
	} {
		if v == 0 {
			t.Errorf("path %s never taken: %+v", name, st)
		}
	}
	bm.ResetStats()
	if st := bm.Stats(); st.SSDToNVM != 0 || st.HitDRAM != 0 {
		t.Fatal("ResetStats left counters")
	}
}

func TestResidentPages(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	seed(t, bm, 4)
	ctx := NewCtx(8)
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	_, nvm := bm.ResidentPages()
	if nvm != 4 {
		t.Fatalf("NVM resident = %d, want 4 (Nr=1 installs everything)", nvm)
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierDRAM: "DRAM", TierMini: "DRAM/mini", TierNVM: "NVM",
	} {
		if tier.String() != want {
			t.Fatalf("Tier(%d) = %q", int(tier), tier.String())
		}
	}
	if s := Tier(9).String(); s != "Tier(9)" {
		t.Fatalf("unknown tier = %q", s)
	}
}

func TestSeedPageAdvancesAllocator(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	ctx := NewCtx(9)
	if err := bm.SeedPage(ctx, 41, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if got := bm.AllocatePageID(); got != 42 {
		t.Fatalf("allocator returned %d after seeding pid 41", got)
	}
}

// Ensure the device-sharing contract holds: a manager built over an
// explicit pmem arena charges that arena's device.
func TestExplicitArenaCharged(t *testing.T) {
	dev := device.New(device.NVMParams)
	bm := newBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  4 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
		PMem:      pmem.New(pmem.Options{Size: 4 * nvmFrameSlot, Device: dev}),
	})
	seed(t, bm, 2)
	ctx := NewCtx(10)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if dev.Stats().WriteOps == 0 {
		t.Fatal("explicit arena's device saw no traffic")
	}
}
