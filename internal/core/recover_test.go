package core

import (
	"bytes"
	"testing"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
)

// crashConfig builds a manager whose NVM arena tracks crashes and whose SSD
// is shared, so a successor manager can be built on the survivors.
func crashConfig(nvmFrames int) (Config, *pmem.PMem, ssd.Store) {
	pm := pmem.New(pmem.Options{
		Size:         int64(nvmFrames) * nvmFrameSlot,
		TrackCrashes: true,
	})
	disk := ssd.NewMem(nil)
	return Config{
		DRAMBytes: 4 * PageSize,
		NVMBytes:  int64(nvmFrames) * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
		PMem:      pm,
		SSD:       disk,
	}, pm, disk
}

func TestRecoverRebuildsNVMBuffer(t *testing.T) {
	cfg, pm, disk := crashConfig(8)
	bm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(30)
	// Seed four pages and update them through the NVM buffer. NVM writes
	// are persisted (clwb+sfence) by the write path.
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < 4; pid++ {
		marker(buf, pid, 0)
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Pull pages into NVM (first fetch installs there under Nr=1) and
	// update them in place.
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if h.Tier() != TierNVM {
			t.Fatalf("setup: page %d served from %v", pid, h.Tier())
		}
		if err := h.WriteAt(ctx, 64, []byte("survivor")); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}

	// Crash: unpersisted state is lost; NVM page writes were persisted.
	pm.Crash()

	cfg2 := cfg
	cfg2.PMem = pm
	cfg2.SSD = disk
	bm2, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if st := bm2.Stats(); st.RecoveredNVMPages != 4 {
		t.Fatalf("recovered %d pages, want 4", st.RecoveredNVMPages)
	}
	got := make([]byte, 8)
	for pid := uint64(0); pid < 4; pid++ {
		h, err := bm2.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.ReadAt(ctx, 64, got); err != nil {
			t.Fatal(err)
		}
		h.Release()
		if string(got) != "survivor" {
			t.Fatalf("page %d lost NVM update across crash: %q", pid, got)
		}
	}
	// The allocator must not reuse recovered ids.
	if bm2.NextPageID() < 4 {
		t.Fatalf("next page id %d would collide with recovered pages", bm2.NextPageID())
	}
}

func TestRecoverEmptyArena(t *testing.T) {
	cfg, _, _ := crashConfig(8)
	bm, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := bm.Stats(); st.RecoveredNVMPages != 0 {
		t.Fatalf("recovered %d pages from an empty arena", st.RecoveredNVMPages)
	}
	// All frames must be allocatable.
	ctx := NewCtx(31)
	for i := 0; i < 8; i++ {
		_, h, err := bm.NewPage(ctx)
		if err != nil {
			t.Fatalf("frame %d unavailable after empty recovery: %v", i, err)
		}
		h.Release()
	}
}

func TestRecoverRequiresArena(t *testing.T) {
	if _, err := Recover(Config{DRAMBytes: PageSize, NVMBytes: nvmFrameSlot}); err == nil {
		t.Fatal("Recover without an arena succeeded")
	}
}

func TestRecoveredPagesEvictToSSD(t *testing.T) {
	// Recovered pages are conservatively dirty: churning them out of a
	// small recovered NVM buffer must write them to SSD, not lose them.
	cfg, pm, disk := crashConfig(4)
	cfg.DRAMBytes = 0 // NVM-SSD hierarchy for simplicity
	bm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(32)
	buf := make([]byte, PageSize)
	for pid := uint64(0); pid < 4; pid++ {
		marker(buf, pid, 0)
		if err := bm.SeedPage(ctx, pid, buf); err != nil {
			t.Fatal(err)
		}
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(ctx, 0, []byte{0xC7}); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	pm.Crash()

	cfg2 := cfg
	cfg2.PMem = pm
	cfg2.SSD = disk
	bm2, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the 4-frame NVM buffer with 4 new pages, evicting the
	// recovered ones to SSD.
	for i := 0; i < 4; i++ {
		pid := uint64(100 + i)
		marker(buf, pid, 0)
		if err := bm2.SeedPage(ctx, pid, buf); err != nil {
			t.Fatal(err)
		}
		h, err := bm2.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// The recovered updates must now be on SSD.
	for pid := uint64(0); pid < 4; pid++ {
		want := make([]byte, PageSize)
		marker(want, pid, 0)
		want[0] = 0xC7
		got := make([]byte, PageSize)
		if err := disk.ReadPage(ctx.Clock, pid, got); err != nil {
			t.Fatalf("page %d missing from SSD after recovered eviction: %v", pid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d content wrong after recovered eviction", pid)
		}
	}
}
