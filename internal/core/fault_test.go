package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
)

// faultBM builds a manager whose SSD device (and NVM device, when the config
// has an NVM tier) carries a fault injector, initially injecting nothing.
func faultBM(t *testing.T, cfg Config) (*BufferManager, *device.Injector, *device.Injector) {
	t.Helper()
	ssdDev := device.New(device.SSDParams)
	ssdInj := device.NewInjector(device.FaultConfig{Seed: 1})
	ssdDev.SetFaults(ssdInj)
	cfg.SSD = ssd.NewMem(ssdDev)

	var nvmInj *device.Injector
	if cfg.NVMBytes > 0 {
		nvmDev := device.New(device.NVMParams)
		nvmInj = device.NewInjector(device.FaultConfig{Seed: 2})
		nvmDev.SetFaults(nvmInj)
		cfg.PMem = pmem.New(pmem.Options{Size: cfg.NVMBytes, Device: nvmDev})
	}
	bm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bm.Close)
	return bm, ssdInj, nvmInj
}

// TestFetchSurfacesSSDReadError: an injected SSD read fault during a fetch
// miss is retried, then surfaces as a typed error instead of panicking or
// returning garbage; once the fault clears, the same fetch succeeds.
func TestFetchSurfacesSSDReadError(t *testing.T) {
	bm, ssdInj, _ := faultBM(t, Config{
		DRAMBytes: 4 * PageSize,
		Policy:    policy.Policy{Dr: 1, Dw: 1},
	})
	seed(t, bm, 2)

	ssdInj.Rearm(device.FaultConfig{Seed: 3, ReadErrProb: 1})
	ctx := NewCtx(7)
	if _, err := bm.FetchPage(ctx, 0, ReadIntent); err == nil {
		t.Fatal("fetch with a failing SSD succeeded")
	} else if !errors.Is(err, device.ErrTransient) {
		t.Fatalf("fetch error = %v, want one wrapping device.ErrTransient", err)
	}
	st := bm.Stats()
	if st.IORetries == 0 {
		t.Error("failing fetch was not retried")
	}
	if st.IOGiveUps == 0 {
		t.Error("exhausted retries were not counted as a give-up")
	}

	ssdInj.Rearm(device.FaultConfig{Seed: 3})
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatalf("fetch after the fault cleared: %v", err)
	}
	want := make([]byte, PageSize)
	got := make([]byte, PageSize)
	marker(want, 0, 0)
	if err := h.ReadAt(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	h.Release()
	if !bytes.Equal(got, want) {
		t.Fatal("page content corrupted by the transient fault episode")
	}
}

// TestEvictionNVMWriteErrorFallsBackToSSD: when every NVM write fails
// transiently, DRAM eviction gives up on NVM admission and writes dirty
// pages straight to SSD; no data is lost and the tier is not degraded
// (transient faults never collapse the hierarchy).
func TestEvictionNVMWriteErrorFallsBackToSSD(t *testing.T) {
	const pages = 6
	bm, _, nvmInj := faultBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		// Nr = 0 keeps fetch misses on the DRAM route; Nw = 1 makes every
		// DRAM eviction attempt NVM admission.
		Policy: policy.Policy{Dr: 1, Dw: 1, Nr: 0, Nw: 1},
	})
	seed(t, bm, pages)

	nvmInj.Rearm(device.FaultConfig{Seed: 4, WriteErrProb: 1})
	ctx := NewCtx(8)
	data := make([]byte, PageSize)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatalf("write fetch of page %d: %v", pid, err)
		}
		marker(data, pid, 1)
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if bm.NVMDegraded() {
		t.Fatal("transient NVM faults degraded the tier")
	}
	if st := bm.Stats(); st.IOGiveUps == 0 {
		t.Error("no NVM admission give-ups recorded")
	} else if st.DRAMToSSD == 0 {
		t.Error("no DRAM→SSD bypass writes recorded; evictions did not fall back")
	}

	// With the fault cleared, every page must read back at its latest version.
	nvmInj.Rearm(device.FaultConfig{Seed: 4})
	want := make([]byte, PageSize)
	got := make([]byte, PageSize)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatalf("read back page %d: %v", pid, err)
		}
		marker(want, pid, 1)
		if err := h.ReadAt(ctx, 0, got); err != nil {
			t.Fatal(err)
		}
		h.Release()
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d lost its update during NVM-fault fallback", pid)
		}
	}
}

// TestPermanentNVMFailureDegrades: a permanently failed NVM device collapses
// the manager to two-tier DRAM–SSD mode — the policy is forced to
// ⟨Dr,Dw,0,0⟩ (and stays forced across SetPolicy) and the workload keeps
// running with full data integrity for everything written after the failure.
func TestPermanentNVMFailureDegrades(t *testing.T) {
	const pages = 6
	bm, _, nvmInj := faultBM(t, Config{
		DRAMBytes: 2 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
	})
	seed(t, bm, pages)

	// Churn everything through the healthy three-tier hierarchy first so NVM
	// holds copies when it dies.
	ctx := NewCtx(9)
	data := make([]byte, PageSize)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		marker(data, pid, 1)
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}

	nvmInj.FailNow()
	// Full-page writes after the failure: fetches may hit the dead tier and
	// must fall back; the writes land in DRAM and reach SSD via eviction.
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatalf("write fetch of page %d after NVM failure: %v", pid, err)
		}
		marker(data, pid, 2)
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}

	if !bm.NVMDegraded() {
		t.Fatal("manager did not degrade after permanent NVM failure")
	}
	if p := bm.Policy(); p.Nr != 0 || p.Nw != 0 {
		t.Fatalf("degraded policy = %+v, want Nr = Nw = 0", p)
	}
	if err := bm.SetPolicy(policy.SpitfireEager); err != nil {
		t.Fatal(err)
	}
	if p := bm.Policy(); p.Nr != 0 || p.Nw != 0 {
		t.Fatalf("SetPolicy re-enabled the dead tier: %+v", p)
	}
	if st := bm.Stats(); st.NVMDegraded != 1 {
		t.Errorf("NVMDegraded stat = %d, want 1", st.NVMDegraded)
	}

	want := make([]byte, PageSize)
	got := make([]byte, PageSize)
	for pid := uint64(0); pid < pages; pid++ {
		h, err := bm.FetchPage(ctx, pid, ReadIntent)
		if err != nil {
			t.Fatalf("two-tier read of page %d: %v", pid, err)
		}
		marker(want, pid, 2)
		if err := h.ReadAt(ctx, 0, got); err != nil {
			t.Fatal(err)
		}
		h.Release()
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d lost its post-degradation update", pid)
		}
	}
	if err := bm.CheckConsistency(); err != nil {
		t.Errorf("consistency audit after degradation: %v", err)
	}
}

// TestCleanerAllFailSurfacesInForeground: with every SSD write failing and
// only dirty DRAM frames to reclaim, the background cleaner stalls (bounded,
// no spin) and foreground allocation surfaces the typed error to the caller
// instead of hanging; clearing the fault restores service.
func TestCleanerAllFailSurfacesInForeground(t *testing.T) {
	const frames = 4
	bm, ssdInj, _ := faultBM(t, Config{
		DRAMBytes: frames * PageSize,
		Policy:    policy.Policy{Dr: 1, Dw: 1},
		Cleaner:   CleanerConfig{Enable: true, Interval: 100 * time.Microsecond},
	})
	seed(t, bm, frames+1)

	ctx := NewCtx(10)
	data := make([]byte, PageSize)
	for pid := uint64(0); pid < frames; pid++ {
		h, err := bm.FetchPage(ctx, pid, WriteIntent)
		if err != nil {
			t.Fatal(err)
		}
		marker(data, pid, 1)
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}

	// Every frame is dirty and the free list is empty; now fail all
	// write-backs and demand a new frame.
	ssdInj.Rearm(device.FaultConfig{Seed: 5, WriteErrProb: 1})
	_, err := bm.FetchPage(ctx, frames, ReadIntent)
	if err == nil {
		t.Fatal("fetch succeeded with no evictable frame")
	}
	if !errors.Is(err, device.ErrTransient) {
		t.Fatalf("foreground fetch error = %v, want one wrapping device.ErrTransient", err)
	}

	// The cleaner must record stalls rather than spinning on the dead disk.
	deadline := time.Now().Add(2 * time.Second)
	for bm.Stats().CleanerStalls == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bm.Stats().CleanerStalls == 0 {
		t.Error("cleaner recorded no stalls while all write-backs failed")
	}

	// Clear the fault: foreground allocation recovers immediately.
	ssdInj.Rearm(device.FaultConfig{Seed: 5})
	h, err := bm.FetchPage(ctx, frames, ReadIntent)
	if err != nil {
		t.Fatalf("fetch after the fault cleared: %v", err)
	}
	h.Release()
}

// fgConfig is the fine-grained-loading fault fixture: Nr = 1 sends the first
// fetch of a page into NVM, Dr = 1 migrates the second fetch up into an
// empty cache-line-grained DRAM frame whose units fault in on demand.
func fgFaultConfig() Config {
	return Config{
		DRAMBytes:   4 * PageSize,
		NVMBytes:    8 * nvmFrameSlot,
		FineGrained: true,
		LoadingUnit: 256,
		Policy:      policy.Policy{Dr: 1, Dw: 1, Nr: 1, Nw: 1},
	}
}

// fgDRAMHandle drives pid into a fine-grained DRAM frame backed by an NVM
// copy and returns the pinned handle.
func fgDRAMHandle(t *testing.T, bm *BufferManager, ctx *Ctx, pid uint64) *Handle {
	t.Helper()
	h, err := bm.FetchPage(ctx, pid, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierNVM {
		t.Fatalf("first fetch tier = %v, want NVM (Nr=1 miss route)", h.Tier())
	}
	h.Release()
	h, err = bm.FetchPage(ctx, pid, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierDRAM {
		t.Fatalf("second fetch tier = %v, want DRAM (Dr=1 fine-grained migration)", h.Tier())
	}
	return h
}

// TestFineGrainedLoadSurfacesNVMReadError: an injected NVM fault during a
// fine-grained unit fill is retried and then surfaces through Handle.ReadAt
// as a typed error — it is not absorbed silently — and residency does NOT
// advance, so the same read succeeds with correct data once the fault
// clears.
func TestFineGrainedLoadSurfacesNVMReadError(t *testing.T) {
	bm, _, nvmInj := faultBM(t, fgFaultConfig())
	seed(t, bm, 2)
	ctx := NewCtx(12)
	h := fgDRAMHandle(t, bm, ctx, 0)
	defer h.Release()

	base := bm.Stats()
	nvmInj.Rearm(device.FaultConfig{Seed: 6, ReadErrProb: 1})
	got := make([]byte, 512)
	if err := h.ReadAt(ctx, 0, got); err == nil {
		t.Fatal("fine-grained read with a failing NVM device succeeded")
	} else if !errors.Is(err, device.ErrTransient) {
		t.Fatalf("ReadAt error = %v, want one wrapping device.ErrTransient", err)
	}
	st := bm.Stats()
	if st.IORetries == base.IORetries {
		t.Error("failing unit fill was not retried")
	}
	if st.FGUnitLoads != base.FGUnitLoads {
		t.Errorf("residency advanced on a failed fill: FGUnitLoads %d -> %d",
			base.FGUnitLoads, st.FGUnitLoads)
	}
	if bm.NVMDegraded() {
		t.Fatal("transient unit-fill faults degraded the NVM tier")
	}

	nvmInj.Rearm(device.FaultConfig{Seed: 6})
	if err := h.ReadAt(ctx, 0, got); err != nil {
		t.Fatalf("read after the fault cleared: %v", err)
	}
	want := make([]byte, PageSize)
	marker(want, 0, 0)
	if !bytes.Equal(got, want[:512]) {
		t.Fatal("unit contents corrupted by the transient fault episode")
	}
	if loads := bm.Stats().FGUnitLoads; loads != base.FGUnitLoads+2 {
		t.Errorf("FGUnitLoads = %d, want %d (two 256 B units)", loads, base.FGUnitLoads+2)
	}
}

// TestFineGrainedOverwriteSkipsFaultingNVM: a write that fully covers its
// units needs no NVM fill, so it must succeed even while every NVM read
// fails; a partial write of a non-resident unit needs the fill and must
// surface the fault instead. After the episode both the overwrite and the
// preserved bytes are intact.
func TestFineGrainedOverwriteSkipsFaultingNVM(t *testing.T) {
	bm, _, nvmInj := faultBM(t, fgFaultConfig())
	seed(t, bm, 2)
	ctx := NewCtx(13)
	h := fgDRAMHandle(t, bm, ctx, 0)
	defer h.Release()

	nvmInj.Rearm(device.FaultConfig{Seed: 7, ReadErrProb: 1})
	fresh := make([]byte, 256)
	for i := range fresh {
		fresh[i] = 0xAB
	}
	// Unit-aligned full overwrite of unit 1: no fill, must succeed.
	if err := h.WriteAt(ctx, 256, fresh); err != nil {
		t.Fatalf("fully-overwriting write hit the faulting NVM device: %v", err)
	}
	// Partial write into non-resident unit 0: needs a fill, must fail typed.
	if err := h.WriteAt(ctx, 10, fresh[:100]); err == nil {
		t.Fatal("partial write with a failing NVM device succeeded")
	} else if !errors.Is(err, device.ErrTransient) {
		t.Fatalf("WriteAt error = %v, want one wrapping device.ErrTransient", err)
	}

	nvmInj.Rearm(device.FaultConfig{Seed: 7})
	got := make([]byte, 512)
	if err := h.ReadAt(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, PageSize)
	marker(want, 0, 0)
	if !bytes.Equal(got[:256], want[:256]) {
		t.Fatal("unit 0 lost its seeded bytes across the fault episode")
	}
	if !bytes.Equal(got[256:512], fresh) {
		t.Fatal("fully-overwritten unit lost the write that succeeded during the fault")
	}
}

// TestFineGrainedPermanentNVMFaultDegrades: a permanent NVM fault during a
// unit fill degrades the tier (collapse to DRAM-SSD) exactly like the
// whole-page paths do, instead of retrying forever.
func TestFineGrainedPermanentNVMFaultDegrades(t *testing.T) {
	bm, _, nvmInj := faultBM(t, fgFaultConfig())
	seed(t, bm, 2)
	ctx := NewCtx(14)
	h := fgDRAMHandle(t, bm, ctx, 0)
	defer h.Release()

	nvmInj.FailNow()
	got := make([]byte, 256)
	if err := h.ReadAt(ctx, 0, got); err == nil {
		t.Fatal("fine-grained read on a dead NVM device succeeded")
	} else if !errors.Is(err, device.ErrPermanent) {
		t.Fatalf("ReadAt error = %v, want one wrapping device.ErrPermanent", err)
	}
	if !bm.NVMDegraded() {
		t.Fatal("permanent unit-fill fault did not degrade the NVM tier")
	}
}

// TestCloseConcurrentAndIdempotent: Close is safe under concurrent callers,
// repeatable, and leaves the manager usable for inline-eviction service.
func TestCloseConcurrentAndIdempotent(t *testing.T) {
	bm, _, _ := faultBM(t, Config{
		DRAMBytes: 4 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
		Cleaner:   CleanerConfig{Enable: true},
	})
	seed(t, bm, 2)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bm.Close()
		}()
	}
	wg.Wait()
	bm.Close() // once more, for idempotence

	// The manager still serves fetches via inline eviction after Close.
	ctx := NewCtx(11)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatalf("fetch after Close: %v", err)
	}
	h.Release()
}

// TestCloseNilAndFailedRecover: Close on a nil receiver (what a failed
// Recover returns) must be a no-op, so callers can unconditionally
// defer-Close whatever Recover handed back.
func TestCloseNilAndFailedRecover(t *testing.T) {
	var nilBM *BufferManager
	nilBM.Close()

	bm, err := Recover(Config{DRAMBytes: 8 * PageSize}) // no PMem arena: must fail
	if err == nil {
		t.Fatal("Recover without a surviving arena succeeded")
	}
	bm.Close()
}
