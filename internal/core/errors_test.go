package core

import (
	"testing"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
)

func TestNVMOnlyRejectsTinyArena(t *testing.T) {
	if _, err := New(Config{NVMBytes: 100, Policy: policy.SpitfireEager}); err == nil {
		t.Fatal("sub-frame NVM budget accepted")
	}
	// A provided arena smaller than NVMBytes shrinks the pool instead of
	// failing.
	pm := pmem.New(pmem.Options{Size: 2 * nvmFrameSlot})
	bm, err := New(Config{NVMBytes: 10 * nvmFrameSlot, Policy: policy.SpitfireEager, PMem: pm})
	if err != nil {
		t.Fatal(err)
	}
	if bm.NVMFrames() != 2 {
		t.Fatalf("NVM frames = %d, want clamped to 2", bm.NVMFrames())
	}
	// An arena with no room at all fails.
	tiny := pmem.New(pmem.Options{Size: 10})
	if _, err := New(Config{NVMBytes: nvmFrameSlot, Policy: policy.SpitfireEager, PMem: tiny}); err == nil {
		t.Fatal("frameless arena accepted")
	}
}

func TestAdmissionQueueBuiltWithNVMTier(t *testing.T) {
	// The queue exists from construction whenever the NVM tier does: coin
	// mode needs it for cleaner write-backs, queue mode for every admission.
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	if bm.admQueue == nil {
		t.Fatal("NVM-backed manager built without an admission queue")
	}
	if err := bm.SetPolicy(policy.Hymem); err != nil {
		t.Fatal(err)
	}
	if bm.admQueue == nil {
		t.Fatal("admission queue lost across a policy switch")
	}
	// No NVM tier → no queue to feed.
	dramOnly := newBM(t, Config{DRAMBytes: 2 * PageSize, Policy: policy.Policy{Dr: 1, Dw: 1}})
	if dramOnly.admQueue != nil {
		t.Fatal("DRAM-only manager built an admission queue")
	}
}

func TestFrameCounts(t *testing.T) {
	bm := newBM(t, Config{
		DRAMBytes: 4 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.SpitfireEager,
	})
	if bm.DRAMFrames() != 4 || bm.NVMFrames() != 8 {
		t.Fatalf("frames = %d/%d", bm.DRAMFrames(), bm.NVMFrames())
	}
	nvmOnly := newBM(t, Config{NVMBytes: 2 * nvmFrameSlot, Policy: policy.SpitfireEager})
	if nvmOnly.DRAMFrames() != 0 {
		t.Fatal("DRAM frames nonzero for NVM-only hierarchy")
	}
	if nvmOnly.PMem() == nil {
		t.Fatal("PMem accessor nil for NVM hierarchy")
	}
	dramOnly := newBM(t, Config{DRAMBytes: 2 * PageSize, Policy: policy.Policy{Dr: 1, Dw: 1}})
	if dramOnly.PMem() != nil {
		t.Fatal("PMem accessor non-nil for DRAM-only hierarchy")
	}
}

func TestIntentSelectsDwOnNVMHit(t *testing.T) {
	// Dr=0, Dw=1: reads stay on NVM, writes migrate up.
	bm := newBM(t, Config{Policy: policy.Policy{Dr: 0, Dw: 1, Nr: 1, Nw: 1}})
	seed(t, bm, 1)
	ctx := NewCtx(60)
	h, err := bm.FetchPage(ctx, 0, ReadIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierNVM {
		t.Fatalf("read served from %v", h.Tier())
	}
	h.Release()
	h, err = bm.FetchPage(ctx, 0, WriteIntent)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tier() != TierDRAM {
		t.Fatalf("write-intent fetch served from %v, want DRAM (Dw=1)", h.Tier())
	}
	h.Release()
}

func TestMaterializePageIdempotent(t *testing.T) {
	bm := newBM(t, Config{Policy: policy.SpitfireEager})
	ctx := NewCtx(61)
	h, err := bm.MaterializePage(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(ctx, 0, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	h.Release()
	// Second materialize must fetch the existing page, not zero it.
	h, err = bm.MaterializePage(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := h.ReadAt(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got[0] != 0x42 {
		t.Fatal("MaterializePage zeroed an existing page")
	}
	if bm.NextPageID() < 10 {
		t.Fatalf("allocator not advanced past materialized pid: %d", bm.NextPageID())
	}
}

func TestFlushSkipsPinnedPages(t *testing.T) {
	bm := newBM(t, Config{
		DRAMBytes: 4 * PageSize,
		NVMBytes:  8 * nvmFrameSlot,
		Policy:    policy.Policy{Dr: 1, Dw: 1, Nr: 0, Nw: 0},
	})
	seed(t, bm, 1)
	ctx := NewCtx(62)
	h, err := bm.FetchPage(ctx, 0, WriteIntent)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteAt(ctx, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Flush while the dirty page is pinned: it must be skipped, not
	// deadlocked on.
	skipped, err := bm.FlushDirtyDRAM(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the pinned page)", skipped)
	}
	h.Release()
	if skipped, _ := bm.FlushDirtyDRAM(ctx); skipped != 0 {
		t.Fatalf("skipped = %d after release", skipped)
	}
}
