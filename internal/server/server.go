// Package server is the robustness layer between a socket and the engine:
// spitfire-serve's KV front-end. It exists to keep the buffer manager's
// failure modes — eviction convoys under memory pressure, permanent NVM
// loss, shutdown with dirty pages — from becoming client-visible chaos.
//
// Three mechanisms, in request order:
//
//   - Admission control: every request passes a per-client gate and a
//     global gate (bounded concurrency, bounded queue). Overflow is refused
//     immediately with 429/503 + Retry-After instead of parking without
//     bound; queued waiters are cancelled when their deadline expires.
//   - Backpressure: a monitor goroutine watches the buffer manager's
//     exported Pressure signals (free-list depth, cleaner stalls, the
//     degraded-mode latch). Low free headroom flips the server into
//     shedding (no queuing, excess load refused) *before* fetches start
//     evicting synchronously; a permanent NVM failure flips it into
//     read-only mode so the surviving tiers serve reads indefinitely.
//   - Graceful drain: Drain stops admission, lets in-flight requests finish
//     inside their deadlines, checkpoints the engine, and closes the
//     listener — so SIGTERM never drops an accepted request.
//
// The package uses wall-clock time throughout: it serves real sockets, so
// its deadlines and latency histograms are host-side quantities, unlike the
// simulated-time core it fronts.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/obs"
)

// Options configures a Server. Zero values take the documented defaults.
type Options struct {
	// DB and KV are the engine and the KV facade requests run against.
	// Both required.
	DB *engine.DB
	KV *engine.KV
	// Obs, when non-nil, receives request latency histograms and serves the
	// exposition endpoints (/metrics, /snapshot.json, ...) from this
	// server's listener; the Server installs itself as the obs Source.
	Obs *obs.Obs

	// MaxInflight bounds globally concurrent admitted requests (default 64).
	// QueueDepth bounds waiters behind them (default 4×MaxInflight).
	MaxInflight int
	QueueDepth  int
	// PerClientInflight / PerClientQueue bound any single client's share
	// (defaults 16 and 32). Clients are keyed by the X-Client-ID header,
	// falling back to the remote IP.
	PerClientInflight int
	PerClientQueue    int

	// DefaultDeadline applies when a request carries no deadline_ms query
	// parameter (default 2s); MaxDeadline clamps what clients may ask for
	// (default 30s). RetryAfter is the hint attached to 429/503 responses
	// (default 1s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	RetryAfter      time.Duration

	// ShedFreeFrac is the buffer free-list fraction below which the server
	// sheds load (default 0.05); shedding clears with hysteresis at twice
	// this mark. PressureInterval paces the monitor (default 50ms).
	ShedFreeFrac     float64
	PressureInterval time.Duration

	// DrainTimeout bounds how long Drain waits for in-flight requests
	// (default 30s). SkipDrainCheckpoint suppresses the drain-time engine
	// checkpoint (tests; the default drain checkpoints).
	DrainTimeout        time.Duration
	SkipDrainCheckpoint bool

	// Seed bases the per-request core.Ctx seeds (default 1).
	Seed uint64

	// TestHoldPerRequest makes every admitted KV request hold its admission
	// slot this long before executing. Test-only: it turns "overload" into a
	// deterministic condition instead of a race against the engine's speed.
	TestHoldPerRequest time.Duration
}

func (o *Options) setDefaults() error {
	if o.DB == nil || o.KV == nil {
		return errors.New("server: Options.DB and Options.KV are required")
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.MaxInflight
	}
	if o.PerClientInflight <= 0 {
		o.PerClientInflight = 16
	}
	if o.PerClientQueue <= 0 {
		o.PerClientQueue = 32
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 2 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.ShedFreeFrac <= 0 {
		o.ShedFreeFrac = 0.05
	}
	if o.PressureInterval <= 0 {
		o.PressureInterval = 50 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// Server is the KV front-end. Create with New, serve with Start (or mount
// Handler under a test server), stop with Drain or Close.
type Server struct {
	opts Options
	db   *engine.DB
	kv   *engine.KV
	bm   *core.BufferManager

	handler http.Handler
	adm     *admitter

	// Lifecycle state. draining refuses everything; readOnly refuses
	// writes (latched by the monitor on permanent NVM failure); shedding
	// disables queuing so overflow is refused instantly.
	draining atomic.Bool
	readOnly atomic.Bool
	shedding atomic.Bool

	// ctxPool recycles per-request core.Ctx values. A Ctx is single-
	// goroutine state, so each request checks one out for its whole
	// engine interaction and returns it with the interrupt hook cleared.
	ctxPool sync.Pool
	ctxSeq  atomic.Uint64

	cnt   counters
	hists struct {
		get, put, del, scan, txn *metrics.Histogram
	}

	ln      net.Listener
	srv     *http.Server
	monStop chan struct{}
	monWG   sync.WaitGroup
	stopped atomic.Bool
}

// New validates opts, builds the request router, and starts the pressure
// monitor. The server is usable immediately via Handler; Start adds a real
// listener.
func New(opts Options) (*Server, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		db:      opts.DB,
		kv:      opts.KV,
		bm:      opts.DB.BM(),
		adm:     newAdmitter(opts.MaxInflight, opts.QueueDepth, opts.PerClientInflight, opts.PerClientQueue),
		monStop: make(chan struct{}),
	}
	s.cnt.minFreeFrac.Store(math.Float64bits(1))
	s.ctxPool.New = func() any {
		return core.NewCtx(s.opts.Seed + s.ctxSeq.Add(1))
	}
	if o := opts.Obs; o != nil {
		s.hists.get = o.NamedHist("req_get")
		s.hists.put = o.NamedHist("req_put")
		s.hists.del = o.NamedHist("req_delete")
		s.hists.scan = o.NamedHist("req_scan")
		s.hists.txn = o.NamedHist("req_txn")
		o.SetSource(s)
	}
	s.handler = s.routes()
	s.monWG.Add(1)
	go s.monitorLoop()
	return s, nil
}

// Handler returns the full request router (KV API, health endpoints, and —
// when configured — the obs exposition endpoints).
func (s *Server) Handler() http.Handler { return s.handler }

// Start binds addr (e.g. ":7070" or "127.0.0.1:0") and serves on a
// background goroutine until Drain or Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.handler}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cnt.errors.Add(1)
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// StartDrain flips the server into draining — /readyz goes not-ready and
// new requests are refused — without closing the listener. It is the notice
// phase before Drain: the socket keeps answering so load balancers observe
// the readiness flip and stop routing before the listener disappears.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain performs the graceful shutdown sequence: flip to draining (new
// requests get 503, /readyz goes not-ready), wait up to DrainTimeout for
// in-flight requests to finish (their own deadlines cancel stragglers),
// checkpoint the quiesced engine, and stop the monitor. It is safe to call
// once; the error reports the first step that failed.
func (s *Server) Drain() error {
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	s.draining.Store(true)
	var err error
	if s.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer cancel()
		err = s.srv.Shutdown(ctx)
	}
	s.stopMonitor()
	if cerr := s.checkpoint(); err == nil {
		err = cerr
	}
	return err
}

// Close stops immediately: in-flight requests are abandoned and no
// checkpoint runs. Drain is the polite path.
func (s *Server) Close() error {
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	s.draining.Store(true)
	s.stopMonitor()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) stopMonitor() {
	close(s.monStop)
	s.monWG.Wait()
}

// checkpoint flushes dirty DRAM and truncates the log once the server is
// quiescent (Drain guarantees no in-flight transactions remain).
func (s *Server) checkpoint() error {
	if s.opts.SkipDrainCheckpoint {
		return nil
	}
	cc := s.ctxPool.Get().(*core.Ctx)
	defer s.ctxPool.Put(cc)
	skipped, err := s.db.Checkpoint(cc)
	s.cnt.checkpointSkipped.Store(int64(skipped))
	s.cnt.checkpoints.Add(1)
	if err != nil {
		return fmt.Errorf("server: drain checkpoint: %w", err)
	}
	if skipped > 0 {
		return fmt.Errorf("server: drain checkpoint skipped %d dirty pages (engine not quiescent)", skipped)
	}
	return nil
}

// monitorLoop samples buffer-manager pressure on a wall-clock ticker and
// drives the shedding / read-only state machine.
func (s *Server) monitorLoop() {
	defer s.monWG.Done()
	tick := time.NewTicker(s.opts.PressureInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.monStop:
			return
		case <-tick.C:
		}
		s.pollPressure()
	}
}

// pollPressure takes one pressure sample and updates server state:
//
//   - Permanent NVM failure (Pressure.Degraded) latches read-only mode.
//     The flag never clears — the engine's degradation is itself permanent —
//     so reads keep flowing off DRAM+SSD while writes get a clean 503.
//   - Free-list headroom below ShedFreeFrac starts shedding (admission
//     stops queuing); headroom above twice the mark stops it. The gap is
//     hysteresis so the flag doesn't flap at the boundary.
func (s *Server) pollPressure() {
	p := s.bm.Pressure()
	frac := p.MinFreeFrac()
	s.noteFreeFrac(frac)
	if p.Degraded && s.readOnly.CompareAndSwap(false, true) {
		s.cnt.degradedTrips.Add(1)
	}
	if frac < s.opts.ShedFreeFrac {
		if s.shedding.CompareAndSwap(false, true) {
			s.cnt.shedEnters.Add(1)
		}
	} else if frac >= 2*s.opts.ShedFreeFrac {
		s.shedding.CompareAndSwap(true, false)
	}
}

// noteFreeFrac records the lowest free-list fraction ever observed (the
// overload tests assert the pool never ran dry through Stats).
func (s *Server) noteFreeFrac(frac float64) {
	for {
		old := s.cnt.minFreeFrac.Load()
		if math.Float64frombits(old) <= frac {
			return
		}
		if s.cnt.minFreeFrac.CompareAndSwap(old, math.Float64bits(frac)) {
			return
		}
	}
}

// txnRetries bounds transparent retries of ErrConflict losers before the
// conflict surfaces to the client as 409.
const txnRetries = 3

// runTxn checks a core.Ctx out of the pool, installs the request deadline
// as its interrupt hook, and runs fn inside a transaction, retrying MVTO
// conflicts. The hook is cleared before any abort: abort restores
// before-images through the same Ctx, and cutting that short would leave
// torn tuples behind (see core.Ctx.SetInterrupt).
func (s *Server) runTxn(reqCtx context.Context, fn func(cc *core.Ctx, txn *engine.Txn) error) error {
	cc := s.ctxPool.Get().(*core.Ctx)
	defer s.ctxPool.Put(cc)
	var err error
	for attempt := 0; attempt <= txnRetries; attempt++ {
		cc.SetInterrupt(reqCtx.Err)
		txn := s.db.Begin()
		err = fn(cc, txn)
		if err == nil {
			err = txn.Commit(cc)
		}
		cc.SetInterrupt(nil)
		if err == nil {
			return nil
		}
		if aerr := txn.Abort(cc); aerr != nil {
			return fmt.Errorf("server: abort after %w: %v", err, aerr)
		}
		if !errors.Is(err, engine.ErrConflict) {
			return err
		}
		s.cnt.txnRetries.Add(1)
	}
	return err
}
