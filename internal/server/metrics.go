package server

import (
	"math"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/obs"
)

// counters are the server's monotonic totals (plus the min-free-frac
// low-water mark). They surface three ways: Stats for tests and
// /stats.json, ObsCounters/ObsGauges for /metrics and /snapshot.json.
type counters struct {
	accepted          atomic.Int64
	completed         atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedDraining  atomic.Int64
	rejectedReadOnly  atomic.Int64
	shed              atomic.Int64
	queueExpired      atomic.Int64
	deadlineExceeded  atomic.Int64
	conflicts         atomic.Int64
	notFound          atomic.Int64
	errors            atomic.Int64
	txnRetries        atomic.Int64
	shedEnters        atomic.Int64
	degradedTrips     atomic.Int64
	checkpoints       atomic.Int64
	checkpointSkipped atomic.Int64
	minFreeFrac       atomic.Uint64 // math.Float64bits
}

// Stats is a point-in-time snapshot of the server's request accounting and
// robustness state, exported over /stats.json.
type Stats struct {
	Accepted          int64 `json:"accepted"`
	Completed         int64 `json:"completed"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	RejectedReadOnly  int64 `json:"rejected_read_only"`
	Shed              int64 `json:"shed"`
	QueueExpired      int64 `json:"queue_expired"`
	DeadlineExceeded  int64 `json:"deadline_exceeded"`
	Conflicts         int64 `json:"conflicts"`
	NotFound          int64 `json:"not_found"`
	Errors            int64 `json:"errors"`
	TxnRetries        int64 `json:"txn_retries"`
	ShedEnters        int64 `json:"shed_enters"`
	DegradedTrips     int64 `json:"degraded_trips"`
	Checkpoints       int64 `json:"checkpoints"`
	CheckpointSkipped int64 `json:"checkpoint_skipped"`

	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Clients  int   `json:"clients"`

	Draining bool `json:"draining"`
	ReadOnly bool `json:"read_only"`
	Shedding bool `json:"shedding"`

	// MinFreeFracSeen is the lowest buffer free-list fraction observed by
	// any pressure sample since startup: the overload tests assert it never
	// reached zero (load was shed before the pool ran dry).
	MinFreeFracSeen float64 `json:"min_free_frac_seen"`
}

// Stats snapshots the server's counters and state.
func (s *Server) Stats() Stats {
	inflight, queued, clients := s.adm.gauges()
	return Stats{
		Accepted:          s.cnt.accepted.Load(),
		Completed:         s.cnt.completed.Load(),
		RejectedQueueFull: s.cnt.rejectedQueueFull.Load(),
		RejectedDraining:  s.cnt.rejectedDraining.Load(),
		RejectedReadOnly:  s.cnt.rejectedReadOnly.Load(),
		Shed:              s.cnt.shed.Load(),
		QueueExpired:      s.cnt.queueExpired.Load(),
		DeadlineExceeded:  s.cnt.deadlineExceeded.Load(),
		Conflicts:         s.cnt.conflicts.Load(),
		NotFound:          s.cnt.notFound.Load(),
		Errors:            s.cnt.errors.Load(),
		TxnRetries:        s.cnt.txnRetries.Load(),
		ShedEnters:        s.cnt.shedEnters.Load(),
		DegradedTrips:     s.cnt.degradedTrips.Load(),
		Checkpoints:       s.cnt.checkpoints.Load(),
		CheckpointSkipped: s.cnt.checkpointSkipped.Load(),
		Inflight:          inflight,
		Queued:            queued,
		Clients:           clients,
		Draining:          s.draining.Load(),
		ReadOnly:          s.readOnly.Load(),
		Shedding:          s.shedding.Load(),
		MinFreeFracSeen:   math.Float64frombits(s.cnt.minFreeFrac.Load()),
	}
}

// ObsCounters implements obs.Source: the request/admission families plus
// the buffer manager's tier counters (hit_dram / hit_mini / hit_nvm /
// miss_ssd are load-bearing — the snapshot endpoint derives hit rates from
// them) and WAL totals when logging is enabled.
func (s *Server) ObsCounters() []obs.Sample {
	st := s.Stats()
	bs := s.bm.Stats()
	out := []obs.Sample{
		{Name: "req_accepted", Value: st.Accepted},
		{Name: "req_completed", Value: st.Completed},
		{Name: "req_rejected_queue_full", Value: st.RejectedQueueFull},
		{Name: "req_rejected_draining", Value: st.RejectedDraining},
		{Name: "req_rejected_read_only", Value: st.RejectedReadOnly},
		{Name: "req_shed", Value: st.Shed},
		{Name: "req_queue_expired", Value: st.QueueExpired},
		{Name: "req_deadline_exceeded", Value: st.DeadlineExceeded},
		{Name: "req_conflicts", Value: st.Conflicts},
		{Name: "req_not_found", Value: st.NotFound},
		{Name: "req_errors", Value: st.Errors},
		{Name: "txn_retries", Value: st.TxnRetries},
		{Name: "shed_enters", Value: st.ShedEnters},
		{Name: "degraded_trips", Value: st.DegradedTrips},
		{Name: "checkpoints", Value: st.Checkpoints},
		{Name: "hit_dram", Value: bs.HitDRAM},
		{Name: "hit_mini", Value: bs.HitMini},
		{Name: "hit_nvm", Value: bs.HitNVM},
		{Name: "miss_ssd", Value: bs.MissSSD},
		{Name: "evict_dram", Value: bs.EvictDRAM},
		{Name: "evict_nvm", Value: bs.EvictNVM},
		{Name: "foreground_evicts", Value: bs.ForegroundEvicts},
		{Name: "cleaner_batches", Value: bs.CleanerBatches},
		{Name: "cleaner_stalls", Value: bs.CleanerStalls},
	}
	if w := s.db.WAL(); w != nil {
		appends, flushes, commits := w.Stats()
		out = append(out,
			obs.Sample{Name: "wal_appends", Value: appends},
			obs.Sample{Name: "wal_flushes", Value: flushes},
			obs.Sample{Name: "wal_commits", Value: commits},
		)
	}
	return out
}

// ObsGauges implements obs.Source: instantaneous admission occupancy,
// robustness state (0/1 flags), and buffer-pool headroom.
func (s *Server) ObsGauges() []obs.Sample {
	st := s.Stats()
	p := s.bm.Pressure()
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	return []obs.Sample{
		{Name: "inflight", Value: st.Inflight},
		{Name: "queued", Value: st.Queued},
		{Name: "active_clients", Value: int64(st.Clients)},
		{Name: "draining", Value: b2i(st.Draining)},
		{Name: "read_only", Value: b2i(st.ReadOnly)},
		{Name: "shedding", Value: b2i(st.Shedding)},
		{Name: "dram_frames", Value: int64(p.DRAMFrames)},
		{Name: "dram_free_frames", Value: int64(p.DRAMFree)},
		{Name: "nvm_frames", Value: int64(p.NVMFrames)},
		{Name: "nvm_free_frames", Value: int64(p.NVMFree)},
		{Name: "min_free_millifrac", Value: int64(p.MinFreeFrac() * 1000)},
		{Name: "nvm_degraded", Value: b2i(p.Degraded)},
	}
}
