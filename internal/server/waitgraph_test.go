package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spitfire-db/spitfire/internal/lockcheck"
)

// TestWaitGraphUnderLoad runs concurrent mixed KV traffic with lockcheck's
// waitgraph recording enabled and asserts the observed cross-goroutine
// latch waits form no rank cycle. This is the dynamic complement of the
// per-acquisition discipline rules: the rules panic on any single
// acquisition that could close a cycle, and this test checks the aggregate
// wait-for graph of a real server workload stays acyclic too. It only does
// anything under `go test -race -tags lockcheck ./internal/server/`; in the
// default build the stub checker records nothing and the test skips.
func TestWaitGraphUnderLoad(t *testing.T) {
	if !lockcheck.Enabled {
		t.Skip("needs -tags lockcheck")
	}
	db, kv, _ := newTestEngine(t, false)
	_, ts := newTestServer(t, Options{
		DB: db, KV: kv,
		MaxInflight:     16,
		DefaultDeadline: 10 * time.Second,
	})

	lockcheck.EnableWaitGraph()
	defer lockcheck.DisableWaitGraph()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := (w*7 + i) % 16 // overlapping keys force latch contention
				url := fmt.Sprintf("%s/kv/put?key=%d", ts.URL, key)
				req, _ := http.NewRequest("PUT", url, strings.NewReader("v"))
				req.Header.Set("X-Client-ID", fmt.Sprintf("w%d", w))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("worker %d: status %d", w, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()

	report := lockcheck.WaitGraphReport()
	for _, line := range report {
		if strings.HasPrefix(line, "CYCLE:") {
			t.Errorf("wait-for cycle under load: %s", line)
		}
	}
	t.Logf("waitgraph: %d lines", len(report))
	for _, line := range report {
		t.Logf("  %s", line)
	}
}
