package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/wal"
)

// newTestEngine builds a small DB+KV over an optionally fault-injected NVM
// tier. The injector is nil when faulty is false.
func newTestEngine(t *testing.T, faulty bool) (*engine.DB, *engine.KV, *device.Injector) {
	t.Helper()
	cfg := core.Config{
		DRAMBytes: 8 * core.PageSize,
		NVMBytes:  32 * core.PageSize,
		Policy:    policy.SpitfireLazy,
	}
	var inj *device.Injector
	if faulty {
		cfg.DRAMBytes = 2 * core.PageSize
		cfg.Policy = policy.SpitfireEager
		nvmDev := device.New(device.NVMParams)
		inj = device.NewInjector(device.FaultConfig{Seed: 2})
		nvmDev.SetFaults(inj)
		cfg.PMem = pmem.New(pmem.Options{Size: cfg.NVMBytes, Device: nvmDev})
	}
	bm, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bm.Close)
	w, err := wal.New(wal.Options{
		Buffer: pmem.New(pmem.Options{Size: 1 << 18}),
		Store:  wal.NewMemLog(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(engine.Options{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := engine.OpenKV(db, 1, "kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	return db, kv, inj
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.DB == nil {
		opts.DB, opts.KV, _ = newTestEngine(t, false)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// seedKey commits key→val directly through the engine (no HTTP counters).
func seedKey(t *testing.T, db *engine.DB, kv *engine.KV, key uint64, val string) {
	t.Helper()
	ctx := core.NewCtx(77)
	txn := db.Begin()
	if err := kv.Put(ctx, txn, key, []byte(val)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func doReq(t *testing.T, method, url string, body []byte) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKVEndpoints: the basic API contract — put/get/delete/scan/txn
// round-trips, 404 on missing keys, 400 on malformed requests, 413 on
// oversized values.
func TestKVEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	_ = s

	if code, _, _ := doReq(t, "PUT", ts.URL+"/kv/put?key=1", []byte("hello")); code != 204 {
		t.Fatalf("put status = %d", code)
	}
	code, body, _ := doReq(t, "GET", ts.URL+"/kv/get?key=1", nil)
	if code != 200 || body != "hello" {
		t.Fatalf("get = %d %q", code, body)
	}
	if code, _, _ = doReq(t, "GET", ts.URL+"/kv/get?key=999", nil); code != 404 {
		t.Fatalf("missing key status = %d", code)
	}
	if code, _, _ = doReq(t, "GET", ts.URL+"/kv/get?key=bogus", nil); code != 400 {
		t.Fatalf("bad key status = %d", code)
	}
	if code, _, _ = doReq(t, "PUT", ts.URL+"/kv/put?key=2", make([]byte, 100)); code != 413 {
		t.Fatalf("oversized put status = %d", code)
	}
	if code, _, _ = doReq(t, "DELETE", ts.URL+"/kv/delete?key=1", nil); code != 204 {
		t.Fatalf("delete status = %d", code)
	}
	if code, _, _ = doReq(t, "DELETE", ts.URL+"/kv/delete?key=1", nil); code != 404 {
		t.Fatalf("double delete status = %d", code)
	}

	for k := 10; k < 15; k++ {
		if code, _, _ := doReq(t, "PUT", fmt.Sprintf("%s/kv/put?key=%d", ts.URL, k), []byte("v")); code != 204 {
			t.Fatalf("put %d status = %d", k, code)
		}
	}
	code, body, _ = doReq(t, "GET", ts.URL+"/kv/scan?from=11&limit=2", nil)
	if code != 200 {
		t.Fatalf("scan status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"key":11`) || !strings.Contains(lines[1], `"key":12`) {
		t.Fatalf("scan body = %q", body)
	}

	// Batch transaction: one put + one get + one delete, atomically.
	txnBody := `{"ops":[{"op":"put","key":20,"value":"` + "YmF0Y2g=" + `"},{"op":"get","key":10},{"op":"delete","key":14},{"op":"get","key":999}]}`
	code, body, _ = doReq(t, "POST", ts.URL+"/kv/txn", []byte(txnBody))
	if code != 200 {
		t.Fatalf("txn status = %d: %s", code, body)
	}
	var res struct {
		Results []struct {
			Op    string `json:"op"`
			Key   uint64 `json:"key"`
			Found bool   `json:"found"`
			Value []byte `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("txn response not JSON: %v", err)
	}
	if len(res.Results) != 4 || !res.Results[0].Found || string(res.Results[1].Value) != "v" ||
		!res.Results[2].Found || res.Results[3].Found {
		t.Fatalf("txn results wrong: %s", body)
	}
	if code, body, _ = doReq(t, "GET", ts.URL+"/kv/get?key=20", nil); code != 200 || body != "batch" {
		t.Fatalf("batch put not visible: %d %q", code, body)
	}
	if code, _, _ = doReq(t, "GET", ts.URL+"/kv/get?key=14", nil); code != 404 {
		t.Fatalf("batch delete not applied: %d", code)
	}
	if code, _, _ = doReq(t, "POST", ts.URL+"/kv/txn", []byte(`{"ops":[{"op":"frob","key":1}]}`)); code != 400 {
		t.Fatalf("unknown op status = %d", code)
	}

	// Health endpoints on a healthy server.
	if code, _, _ = doReq(t, "GET", ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	code, body, _ = doReq(t, "GET", ts.URL+"/readyz", nil)
	if code != 200 || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("readyz = %d %q", code, body)
	}
}

// TestOverloadSheds is the overload acceptance test: with admission
// capacity K and far more concurrent clients, the excess is refused with
// 429 within the deadline, every accepted request completes, and the
// buffer free list never runs dry.
func TestOverloadSheds(t *testing.T) {
	db, kv, _ := newTestEngine(t, false)
	s, ts := newTestServer(t, Options{
		DB: db, KV: kv,
		MaxInflight:        4,
		QueueDepth:         4,
		PerClientInflight:  4,
		PerClientQueue:     4,
		DefaultDeadline:    5 * time.Second,
		TestHoldPerRequest: 100 * time.Millisecond,
	})
	seedKey(t, db, kv, 1, "v")

	const clients = 32
	var ok200, rej429, other atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/kv/get?key=1")
			if err != nil {
				other.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case 200:
				ok200.Add(1)
			case 429:
				rej429.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if other.Load() != 0 {
		t.Fatalf("%d requests got a status other than 200/429", other.Load())
	}
	if rej429.Load() == 0 {
		t.Fatal("no request was refused with 429 under 8x overload")
	}
	if ok200.Load() == 0 {
		t.Fatal("no request completed")
	}
	if ok200.Load()+rej429.Load() != clients {
		t.Fatalf("accounting: %d + %d != %d", ok200.Load(), rej429.Load(), clients)
	}
	// Refusals must be immediate: total wall time is a couple of hold
	// periods (admitted + queued wave), nowhere near clients×hold.
	if elapsed > 2*time.Second {
		t.Fatalf("overload took %v; refusals were not prompt", elapsed)
	}

	st := s.Stats()
	if st.Accepted != ok200.Load() || st.Completed != ok200.Load() {
		t.Fatalf("stats accepted/completed = %d/%d, want %d", st.Accepted, st.Completed, ok200.Load())
	}
	if st.RejectedQueueFull != rej429.Load() {
		t.Fatalf("stats rejected_queue_full = %d, want %d", st.RejectedQueueFull, rej429.Load())
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("stats show leaked slots: inflight=%d queued=%d", st.Inflight, st.Queued)
	}
	if st.MinFreeFracSeen <= 0 {
		t.Fatalf("buffer free list ran dry under overload: min frac %v", st.MinFreeFracSeen)
	}
}

// TestQueueDeadline: a request that expires while parked in the admission
// queue gets 503 + Retry-After, not an unbounded wait.
func TestQueueDeadline(t *testing.T) {
	db, kv, _ := newTestEngine(t, false)
	s, ts := newTestServer(t, Options{
		DB: db, KV: kv,
		MaxInflight:        1,
		PerClientInflight:  1,
		TestHoldPerRequest: 300 * time.Millisecond,
	})
	seedKey(t, db, kv, 1, "v")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _ := doReq(t, "GET", ts.URL+"/kv/get?key=1", nil)
		if code != 200 {
			t.Errorf("slot holder status = %d", code)
		}
	}()
	waitFor(t, "first request admitted", func() bool { return s.Stats().Accepted == 1 })

	code, body, hdr := doReq(t, "GET", ts.URL+"/kv/get?key=1&deadline_ms=50", nil)
	if code != 503 || !strings.Contains(body, "queued") {
		t.Fatalf("queued-expiry response = %d %q", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	wg.Wait()
	if st := s.Stats(); st.QueueExpired != 1 {
		t.Fatalf("queue_expired = %d, want 1", st.QueueExpired)
	}
}

// TestSheddingDisablesQueuing: when the pressure monitor flips shedding,
// requests that cannot run immediately are refused with 503 instead of
// queuing, and /readyz reports not-ready.
func TestSheddingDisablesQueuing(t *testing.T) {
	db, kv, _ := newTestEngine(t, false)
	// ShedFreeFrac above 1 means every sample is "under pressure": the
	// state machine is exercised without having to actually starve a pool.
	s, ts := newTestServer(t, Options{
		DB: db, KV: kv,
		MaxInflight:        1,
		PerClientInflight:  1,
		ShedFreeFrac:       1.5,
		PressureInterval:   time.Millisecond,
		TestHoldPerRequest: 300 * time.Millisecond,
	})
	seedKey(t, db, kv, 1, "v")
	waitFor(t, "monitor to start shedding", func() bool { return s.Stats().Shedding })

	code, body, _ := doReq(t, "GET", ts.URL+"/readyz", nil)
	if code != 503 || !strings.Contains(body, "shedding") {
		t.Fatalf("readyz while shedding = %d %q", code, body)
	}
	if code, _, _ := doReq(t, "GET", ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz must stay 200 while shedding")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Shedding still serves what fits in capacity.
		code, _, _ := doReq(t, "GET", ts.URL+"/kv/get?key=1", nil)
		if code != 200 {
			t.Errorf("in-capacity request while shedding = %d", code)
		}
	}()
	waitFor(t, "slot holder admitted", func() bool { return s.Stats().Accepted == 1 })

	code, _, hdr := doReq(t, "GET", ts.URL+"/kv/get?key=1", nil)
	if code != 503 {
		t.Fatalf("over-capacity request while shedding = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	wg.Wait()
	if st := s.Stats(); st.Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

// TestDrainingSemantics: StartDrain (the notice phase before Drain) flips
// /readyz to 503 while /healthz stays 200, and refuses new KV work.
func TestDrainingSemantics(t *testing.T) {
	db, kv, _ := newTestEngine(t, false)
	s, ts := newTestServer(t, Options{DB: db, KV: kv})
	seedKey(t, db, kv, 1, "v")

	s.StartDrain()
	code, body, _ := doReq(t, "GET", ts.URL+"/readyz", nil)
	if code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("readyz while draining = %d %q", code, body)
	}
	if code, _, _ := doReq(t, "GET", ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz must stay 200 while draining")
	}
	code, _, hdr := doReq(t, "GET", ts.URL+"/kv/get?key=1", nil)
	if code != 503 {
		t.Fatalf("kv request while draining = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if st := s.Stats(); st.RejectedDraining != 1 {
		t.Fatalf("rejected_draining = %d, want 1", st.RejectedDraining)
	}
}

// TestDrainGraceful is the graceful-drain acceptance test over a real
// listener: in-flight requests complete, Drain checkpoints the quiesced
// engine, and the listener is closed afterwards.
func TestDrainGraceful(t *testing.T) {
	db, kv, _ := newTestEngine(t, false)
	s, err := New(Options{
		DB: db, KV: kv,
		MaxInflight:        4,
		TestHoldPerRequest: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	seedKey(t, db, kv, 1, "v")
	base := "http://" + s.Addr()

	const inflight = 3
	var done sync.WaitGroup
	codes := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			code, _, _ := doReq(t, "PUT", fmt.Sprintf("%s/kv/put?key=%d", base, 100+i), []byte("payload"))
			codes[i] = code
		}(i)
	}
	waitFor(t, "in-flight writes admitted", func() bool { return s.Stats().Accepted == inflight })

	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	done.Wait()
	for i, code := range codes {
		if code != 204 {
			t.Fatalf("in-flight request %d finished with %d during drain, want 204", i, code)
		}
	}
	st := s.Stats()
	if !st.Draining {
		t.Fatal("stats do not show draining")
	}
	if st.Checkpoints != 1 || st.CheckpointSkipped != 0 {
		t.Fatalf("drain checkpoint: ran=%d skipped=%d, want 1/0", st.Checkpoints, st.CheckpointSkipped)
	}
	if st.Completed != inflight {
		t.Fatalf("completed = %d, want %d", st.Completed, inflight)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after Drain")
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("second Drain not idempotent: %v", err)
	}
}

// TestReadOnlyOnDegraded: a permanent NVM failure flips the server into
// read-only mode — writes get a clean 503, reads keep working off the
// surviving tiers, and /readyz reports the degradation.
func TestReadOnlyOnDegraded(t *testing.T) {
	db, kv, inj := newTestEngine(t, true)
	s, ts := newTestServer(t, Options{
		DB: db, KV: kv,
		PressureInterval: time.Millisecond,
	})
	bm := db.BM()

	// Churn raw pages through the NVM tier, then fail it permanently and
	// keep writing until the buffer manager latches degraded mode (the
	// same sequence core's fault tests use). The churned pages live only on
	// the dead tier and are lost with it; the engine's own data is seeded
	// afterwards, through the surviving two-tier (DRAM+SSD) path.
	ctx := core.NewCtx(9)
	data := make([]byte, core.PageSize)
	var pids []uint64
	for i := 0; i < 4; i++ {
		pid, h, err := bm.NewPage(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteAt(ctx, 0, data); err != nil {
			t.Fatal(err)
		}
		h.Release()
		pids = append(pids, pid)
	}
	inj.FailNow()
	waitFor(t, "buffer manager to degrade", func() bool {
		for _, pid := range pids {
			if h, err := bm.FetchPage(ctx, pid, core.WriteIntent); err == nil {
				h.Release()
			}
		}
		return bm.NVMDegraded()
	})
	waitFor(t, "server to latch read-only", func() bool { return s.Stats().ReadOnly })
	seedKey(t, db, kv, 1, "survivor")

	code, body, _ := doReq(t, "PUT", ts.URL+"/kv/put?key=2", []byte("nope"))
	if code != 503 || !strings.Contains(body, "read-only") {
		t.Fatalf("write while degraded = %d %q", code, body)
	}
	code, body, _ = doReq(t, "GET", ts.URL+"/kv/get?key=1", nil)
	if code != 200 || body != "survivor" {
		t.Fatalf("read while degraded = %d %q, want the seeded value", code, body)
	}
	code, body, _ = doReq(t, "GET", ts.URL+"/readyz", nil)
	if code != 503 || !strings.Contains(body, "read-only") {
		t.Fatalf("readyz while degraded = %d %q", code, body)
	}
	if code, _, _ := doReq(t, "GET", ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz must stay 200 while degraded")
	}
	if st := s.Stats(); st.DegradedTrips != 1 || st.RejectedReadOnly == 0 {
		t.Fatalf("degraded accounting: trips=%d rejected=%d", st.DegradedTrips, st.RejectedReadOnly)
	}
}

// TestObsIntegration: with an Obs attached, the server serves /metrics from
// its own mux (lint-clean, with the request/admission families), records
// request latency histograms, and feeds the snapshot source.
func TestObsIntegration(t *testing.T) {
	db, kv, _ := newTestEngine(t, false)
	o := obs.New(obs.Config{})
	s, ts := newTestServer(t, Options{DB: db, KV: kv, Obs: o})
	_ = s

	if code, _, _ := doReq(t, "PUT", ts.URL+"/kv/put?key=1", []byte("x")); code != 204 {
		t.Fatal("put failed")
	}
	if code, _, _ := doReq(t, "GET", ts.URL+"/kv/get?key=1", nil); code != 200 {
		t.Fatal("get failed")
	}

	code, body, _ := doReq(t, "GET", ts.URL+"/metrics", nil)
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if err := obs.ValidatePrometheus(body); err != nil {
		t.Fatalf("/metrics fails the linter: %v", err)
	}
	for _, want := range []string{
		"spitfire_req_accepted_total",
		"spitfire_req_rejected_queue_full_total",
		"spitfire_req_shed_total",
		"spitfire_inflight",
		"spitfire_req_get_ns_count 1",
		"spitfire_req_put_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body, _ = doReq(t, "GET", ts.URL+"/snapshot.json", nil)
	if code != 200 || !strings.Contains(body, `"req_accepted": 2`) {
		t.Fatalf("/snapshot.json = %d, missing server counters: %s", code, body)
	}
}

// TestAdmitterUnit: the two-stage gate's bookkeeping — slot reuse, queue
// caps, idempotent release, client-map cleanup.
func TestAdmitterUnit(t *testing.T) {
	a := newAdmitter(2, 1, 1, 1)
	ctx := t.Context()

	rel1, err := a.admit(ctx, "alice", false)
	if err != nil {
		t.Fatal(err)
	}
	// alice is at her per-client cap (1): her next request queues, a third
	// would overflow, but bob still gets in on the global gate.
	relB, err := a.admit(ctx, "bob", false)
	if err != nil {
		t.Fatalf("second client refused: %v", err)
	}
	if _, err := a.admit(ctx, "bob", true); err != ErrShedding {
		t.Fatalf("noQueue admit error = %v, want ErrShedding", err)
	}
	if inflight, _, clients := a.gauges(); inflight != 2 || clients != 2 {
		t.Fatalf("gauges = %d inflight %d clients", inflight, clients)
	}
	rel1()
	rel1() // idempotent
	relB()
	if inflight, queued, clients := a.gauges(); inflight != 0 || queued != 0 || clients != 0 {
		t.Fatalf("post-release gauges = %d/%d/%d, want zeros", inflight, queued, clients)
	}
}
