package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/metrics"
)

// scanLimitCap bounds a single /kv/scan response; scanLimitDefault applies
// when the client names no limit.
const (
	scanLimitDefault = 100
	scanLimitCap     = 10000
)

// routes builds the request router: the KV API, the health endpoints, and
// (when configured) the obs exposition endpoints as the fallback handler.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/get", s.handleGet)
	mux.HandleFunc("/kv/put", s.handlePut)
	mux.HandleFunc("/kv/delete", s.handleDelete)
	mux.HandleFunc("/kv/scan", s.handleScan)
	mux.HandleFunc("/kv/txn", s.handleTxn)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats.json", s.handleStats)
	if s.opts.Obs != nil {
		mux.Handle("/", s.opts.Obs.Handler())
	}
	return mux
}

// refuse writes a load-management refusal: status, a one-line reason, and —
// when hinted — a Retry-After so well-behaved clients back off instead of
// hammering the admission queue.
func (s *Server) refuse(w http.ResponseWriter, status int, reason string, retry bool) {
	if retry {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
	}
	http.Error(w, reason, status)
}

// clientID keys the per-client admission gate: the X-Client-ID header when
// present, else the remote IP (not IP:port — one client, many sockets).
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// deadline resolves the request's deadline from deadline_ms, clamped to
// [1ms, MaxDeadline], defaulting to DefaultDeadline.
func (s *Server) deadline(r *http.Request) time.Duration {
	d := s.opts.DefaultDeadline
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.opts.MaxDeadline {
		d = s.opts.MaxDeadline
	}
	return d
}

// admitted is the per-request state begin hands to an accepted handler.
type admitted struct {
	ctx     context.Context
	cancel  context.CancelFunc
	release func()
	start   time.Time
}

// begin runs the admission prologue shared by every KV endpoint: drain and
// read-only refusals, deadline resolution, then the two-stage admission
// gate. On refusal it writes the response itself and returns ok=false; on
// success the caller must defer s.finish.
func (s *Server) begin(w http.ResponseWriter, r *http.Request, write bool) (admitted, bool) {
	if s.draining.Load() {
		s.cnt.rejectedDraining.Add(1)
		s.refuse(w, http.StatusServiceUnavailable, "draining", true)
		return admitted{}, false
	}
	if write && s.readOnly.Load() {
		s.cnt.rejectedReadOnly.Add(1)
		s.refuse(w, http.StatusServiceUnavailable, "read-only: NVM tier permanently failed", false)
		return admitted{}, false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(r))
	release, err := s.adm.admit(ctx, clientID(r), s.shedding.Load())
	if err != nil {
		cancel()
		switch {
		case errors.Is(err, ErrQueueFull):
			s.cnt.rejectedQueueFull.Add(1)
			s.refuse(w, http.StatusTooManyRequests, err.Error(), true)
		case errors.Is(err, ErrShedding):
			s.cnt.shed.Add(1)
			s.refuse(w, http.StatusServiceUnavailable, err.Error(), true)
		default: // ErrExpired
			s.cnt.queueExpired.Add(1)
			s.refuse(w, http.StatusServiceUnavailable, err.Error(), true)
		}
		return admitted{}, false
	}
	s.cnt.accepted.Add(1)
	s.noteFreeFrac(s.bm.Pressure().MinFreeFrac())
	if hold := s.opts.TestHoldPerRequest; hold > 0 {
		time.Sleep(hold) //vet:allow determinism TestHoldPerRequest is a host-side test knob, not simulated time
	}
	return admitted{
		ctx:     ctx,
		cancel:  cancel,
		release: release,
		start:   time.Now(), //vet:allow determinism begin stamps wall-clock request latency for the obs histograms
	}, true
}

// finish releases the admission slot and records the request latency.
func (s *Server) finish(a admitted, h *metrics.Histogram) {
	a.release()
	a.cancel()
	s.cnt.completed.Add(1)
	if h != nil {
		h.Observe(time.Since(a.start).Nanoseconds()) //vet:allow determinism finish records wall-clock request latency
	}
}

// writeErr maps engine/context errors onto the API's status contract:
// 404 missing key, 409 conflict after retries, 503 deadline, 500 bug.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrNotFound):
		s.cnt.notFound.Add(1)
		http.Error(w, "key not found", http.StatusNotFound)
	case errors.Is(err, engine.ErrConflict):
		s.cnt.conflicts.Add(1)
		s.refuse(w, http.StatusConflict, "write conflict; retry", true)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.cnt.deadlineExceeded.Add(1)
		s.refuse(w, http.StatusServiceUnavailable, "deadline exceeded", true)
	default:
		s.cnt.errors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// keyParam parses the required key query parameter.
func keyParam(r *http.Request) (uint64, error) {
	v := r.URL.Query().Get("key")
	if v == "" {
		return 0, errors.New("missing key parameter")
	}
	return strconv.ParseUint(v, 10, 64)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	key, err := keyParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a, ok := s.begin(w, r, false)
	if !ok {
		return
	}
	defer s.finish(a, s.hists.get)
	var val []byte
	err = s.runTxn(a.ctx, func(cc *core.Ctx, txn *engine.Txn) error {
		var gerr error
		val, gerr = s.kv.Get(cc, txn, key)
		return gerr
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(val)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		http.Error(w, "PUT or POST only", http.StatusMethodNotAllowed)
		return
	}
	key, err := keyParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.kv.MaxValue())+1))
	if err != nil || len(val) > s.kv.MaxValue() {
		http.Error(w, fmt.Sprintf("value exceeds %d bytes", s.kv.MaxValue()),
			http.StatusRequestEntityTooLarge)
		return
	}
	a, ok := s.begin(w, r, true)
	if !ok {
		return
	}
	defer s.finish(a, s.hists.put)
	err = s.runTxn(a.ctx, func(cc *core.Ctx, txn *engine.Txn) error {
		return s.kv.Put(cc, txn, key, val)
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete && r.Method != http.MethodPost {
		http.Error(w, "DELETE or POST only", http.StatusMethodNotAllowed)
		return
	}
	key, err := keyParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a, ok := s.begin(w, r, true)
	if !ok {
		return
	}
	defer s.finish(a, s.hists.del)
	err = s.runTxn(a.ctx, func(cc *core.Ctx, txn *engine.Txn) error {
		return s.kv.Delete(cc, txn, key)
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	var from uint64
	if v := q.Get("from"); v != "" {
		var err error
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			http.Error(w, "bad from parameter", http.StatusBadRequest)
			return
		}
	}
	limit := scanLimitDefault
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit parameter", http.StatusBadRequest)
			return
		}
		limit = n
	}
	if limit > scanLimitCap {
		limit = scanLimitCap
	}
	a, ok := s.begin(w, r, false)
	if !ok {
		return
	}
	defer s.finish(a, s.hists.scan)
	// Buffer the whole result inside the transaction so a mid-scan error
	// never leaves a half-written 200 on the wire.
	var buf bytes.Buffer
	err := s.runTxn(a.ctx, func(cc *core.Ctx, txn *engine.Txn) error {
		buf.Reset()
		return s.kv.Scan(cc, txn, from, limit, func(k uint64, v []byte) bool {
			fmt.Fprintf(&buf, "{\"key\":%d,\"value\":%q}\n", k, base64.StdEncoding.EncodeToString(v))
			return true
		})
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(buf.Bytes())
}

// txnOp is one operation in a /kv/txn batch. Value travels base64-encoded
// (encoding/json's []byte convention).
type txnOp struct {
	Op    string `json:"op"` // "get", "put", or "delete"
	Key   uint64 `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// txnOpResult reports one batch operation's outcome. Found is false when a
// get or delete addressed a missing key — op-level, not a batch failure.
type txnOpResult struct {
	Op    string `json:"op"`
	Key   uint64 `json:"key"`
	Found bool   `json:"found"`
	Value []byte `json:"value,omitempty"`
}

// handleTxn executes a batch of operations in one transaction: all-or-
// nothing under MVTO, with conflicts retried like single operations.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Ops []txnOp `json:"ops"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty ops", http.StatusBadRequest)
		return
	}
	write := false
	for _, op := range req.Ops {
		switch op.Op {
		case "get":
		case "put":
			write = true
			if len(op.Value) > s.kv.MaxValue() {
				http.Error(w, fmt.Sprintf("value exceeds %d bytes", s.kv.MaxValue()),
					http.StatusRequestEntityTooLarge)
				return
			}
		case "delete":
			write = true
		default:
			http.Error(w, fmt.Sprintf("unknown op %q", op.Op), http.StatusBadRequest)
			return
		}
	}
	a, ok := s.begin(w, r, write)
	if !ok {
		return
	}
	defer s.finish(a, s.hists.txn)
	results := make([]txnOpResult, len(req.Ops))
	err := s.runTxn(a.ctx, func(cc *core.Ctx, txn *engine.Txn) error {
		for i, op := range req.Ops {
			res := txnOpResult{Op: op.Op, Key: op.Key}
			switch op.Op {
			case "get":
				v, err := s.kv.Get(cc, txn, op.Key)
				switch {
				case errors.Is(err, engine.ErrNotFound):
				case err != nil:
					return err
				default:
					res.Found, res.Value = true, v
				}
			case "put":
				if err := s.kv.Put(cc, txn, op.Key, op.Value); err != nil {
					return err
				}
				res.Found = true
			case "delete":
				err := s.kv.Delete(cc, txn, op.Key)
				switch {
				case errors.Is(err, engine.ErrNotFound):
				case err != nil:
					return err
				default:
					res.Found = true
				}
			}
			results[i] = res
		}
		return nil
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"results": results})
}

// handleHealthz is liveness: 200 for as long as the process can serve HTTP,
// including while draining or degraded — restarting a draining process
// would defeat the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 with a reason whenever the server would
// refuse (some) work — draining, shedding, or read-only — so load balancers
// steer traffic away before it burns an admission attempt.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	reason := ""
	switch {
	case s.draining.Load():
		reason = "draining"
	case s.readOnly.Load():
		reason = "read-only: NVM tier permanently failed"
	case s.shedding.Load():
		reason = "shedding: buffer free list under pressure"
	}
	w.Header().Set("Content-Type", "application/json")
	p := s.bm.Pressure()
	if reason != "" {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"ready\":false,\"reason\":%q,\"min_free_frac\":%.4f}\n", reason, p.MinFreeFrac())
		return
	}
	fmt.Fprintf(w, "{\"ready\":true,\"min_free_frac\":%.4f}\n", p.MinFreeFrac())
}

// handleStats serves the server's own Stats as JSON (the blackbox tests
// assert on it without needing the obs stack).
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		s.cnt.errors.Add(1)
	}
}
