package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Admission refusal reasons. The handlers map these onto HTTP statuses:
// a full queue is the client's pace problem (429 Too Many Requests), while
// shedding and queue-deadline expiry are the server's capacity problem
// (503 Service Unavailable). Both carry Retry-After.
var (
	ErrQueueFull = errors.New("server: admission queue full")
	ErrShedding  = errors.New("server: shedding load under buffer pressure")
	ErrExpired   = errors.New("server: deadline expired while queued")
)

// gate is one bounded admission stage: at most cap(slots) concurrent
// holders, and at most queueCap waiters parked behind them. Everything past
// that is refused immediately — the queue is the only place a request ever
// waits, so total latency stays bounded by the request deadline.
type gate struct {
	slots    chan struct{}
	queueCap int64
	queued   atomic.Int64
}

func newGate(capacity, queueCap int) *gate {
	return &gate{slots: make(chan struct{}, capacity), queueCap: int64(queueCap)}
}

// acquire takes a slot, queuing up to the gate's cap while ctx lives.
// noQueue (load shedding) refuses to wait at all: under buffer-pool
// pressure a parked request only deepens the eviction convoy it would
// eventually join.
func (g *gate) acquire(ctx context.Context, noQueue bool) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if noQueue {
		return ErrShedding
	}
	if g.queued.Add(1) > g.queueCap {
		g.queued.Add(-1)
		return ErrQueueFull
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ErrExpired
	}
}

func (g *gate) release() { <-g.slots }

// inflight reports the number of currently held slots.
func (g *gate) inflight() int64 { return int64(len(g.slots)) }

// clientGate is a per-client gate plus the registry refcount that lets the
// admitter drop idle clients (one entry per *active* client, not per client
// ever seen — a scan of misbehaving client IDs cannot grow the map without
// also holding requests open).
type clientGate struct {
	*gate
	refs int
}

// admitter is the two-stage admission controller: a per-client gate bounds
// any one client's share, then the global gate bounds the process. Slots are
// acquired client-first so a client storm fills its own queue and starts
// eating 429s before it can saturate the global queue everyone shares.
type admitter struct {
	global      *gate
	perInflight int
	perQueue    int

	mu      sync.Mutex
	clients map[string]*clientGate
}

func newAdmitter(maxInflight, queueDepth, perInflight, perQueue int) *admitter {
	return &admitter{
		global:      newGate(maxInflight, queueDepth),
		perInflight: perInflight,
		perQueue:    perQueue,
		clients:     make(map[string]*clientGate),
	}
}

// admit reserves capacity for one request from client. On success it
// returns an idempotent release func; on refusal it returns one of
// ErrQueueFull, ErrShedding, ErrExpired.
func (a *admitter) admit(ctx context.Context, client string, noQueue bool) (func(), error) {
	cg := a.checkout(client)
	if err := cg.acquire(ctx, noQueue); err != nil {
		a.checkin(client, cg)
		return nil, err
	}
	if err := a.global.acquire(ctx, noQueue); err != nil {
		cg.release()
		a.checkin(client, cg)
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			a.global.release()
			cg.release()
			a.checkin(client, cg)
		})
	}, nil
}

// checkout returns client's gate, creating it on first use.
func (a *admitter) checkout(client string) *clientGate {
	a.mu.Lock()
	defer a.mu.Unlock()
	cg := a.clients[client]
	if cg == nil {
		cg = &clientGate{gate: newGate(a.perInflight, a.perQueue)}
		a.clients[client] = cg
	}
	cg.refs++
	return cg
}

// checkin drops one reference; the last reference retires the gate.
func (a *admitter) checkin(client string, cg *clientGate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cg.refs--
	if cg.refs == 0 {
		delete(a.clients, client)
	}
}

// gauges reports instantaneous admission occupancy.
func (a *admitter) gauges() (inflight, queued int64, clients int) {
	a.mu.Lock()
	clients = len(a.clients)
	a.mu.Unlock()
	return a.global.inflight(), a.global.queued.Load(), clients
}
