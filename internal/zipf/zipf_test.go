package zipf

import (
	"math"
	"testing"
)

func TestRangeAndDeterminism(t *testing.T) {
	g1 := NewGenerator(1000, 0.5, NewRand(42))
	g2 := NewGenerator(1000, 0.5, NewRand(42))
	for i := 0; i < 10_000; i++ {
		v1, v2 := g1.Next(), g2.Next()
		if v1 != v2 {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, v1, v2)
		}
		if v1 >= 1000 {
			t.Fatalf("value %d out of range", v1)
		}
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	// With theta = 0.99 the hottest 10% of keys should receive far more
	// than 10% of draws; with theta = 0 they should receive about 10%.
	frac := func(theta float64) float64 {
		g := NewGenerator(1000, theta, NewRand(7))
		hot := 0
		const draws = 50_000
		for i := 0; i < draws; i++ {
			if g.Next() < 100 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	if f := frac(0); math.Abs(f-0.1) > 0.02 {
		t.Fatalf("uniform hot fraction = %v, want ~0.1", f)
	}
	if f := frac(0.99); f < 0.5 {
		t.Fatalf("skewed hot fraction = %v, want > 0.5", f)
	}
	// The paper's z = 0.3 workload is mildly skewed.
	f03 := frac(0.3)
	if f03 < 0.12 || f03 > 0.5 {
		t.Fatalf("z=0.3 hot fraction = %v, out of plausible band", f03)
	}
}

func TestRankZeroIsHottest(t *testing.T) {
	g := NewGenerator(100, 0.9, NewRand(3))
	counts := make([]int, 100)
	for i := 0; i < 100_000; i++ {
		counts[g.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 drawn %d times, rank 50 %d times", counts[0], counts[50])
	}
}

func TestZeroNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator(0, ...) did not panic")
		}
	}()
	NewGenerator(0, 0.5, NewRand(1))
}

func TestRandFloat64InUnitInterval(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(5)
	buckets := make([]int, 10)
	const draws = 100_000
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	for b, n := range buckets {
		got := float64(n) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ~0.1", b, got)
		}
	}
}
