// Package zipf implements the Zipfian key generator of Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases" (SIGMOD '94),
// which the YCSB workloads in the paper use for key selection.
//
// Unlike math/rand's Zipf (which requires s > 1), this generator supports
// the 0 < theta < 1 skews used in the paper (z = 0.3 and z = 0.5).
package zipf

import "math"

// Generator produces values in [0, n) with Zipfian skew theta. theta = 0 is
// uniform; larger theta is more skewed. It is not safe for concurrent use;
// give each worker its own Generator seeded distinctly.
type Generator struct {
	n     uint64
	theta float64

	alpha, zetan, eta float64
	zeta2             float64

	rng *Rand
}

// NewGenerator creates a generator over [0, n) with the given skew,
// using the supplied pseudo-random source.
func NewGenerator(n uint64, theta float64, rng *Rand) *Generator {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	g := &Generator{n: n, theta: theta, rng: rng}
	g.zeta2 = zeta(2, theta)
	g.zetan = zeta(n, theta)
	g.alpha = 1.0 / (1.0 - theta)
	g.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - g.zeta2/g.zetan)
	return g
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// For the n used by experiments (≤ a few hundred thousand keys) the direct
// sum is fast enough and exact.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the size of the key space.
func (g *Generator) N() uint64 { return g.n }

// Next returns the next Zipfian-distributed value in [0, n). Rank 0 is the
// hottest key.
func (g *Generator) Next() uint64 {
	if g.theta == 0 {
		return g.rng.Uint64n(g.n)
	}
	u := g.rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	return uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
}

// Rand is a small, fast SplitMix64 PRNG. Each worker owns one, which keeps
// workload generation allocation-free and deterministic per seed.
type Rand struct{ state uint64 }

// NewRand returns a PRNG seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed + 0x9E3779B97F4A7C15} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random value in [0, n).
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("zipf: Uint64n with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a pseudo-random value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("zipf: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}
