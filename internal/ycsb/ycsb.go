// Package ycsb implements the YCSB key-value workload used throughout the
// paper's evaluation (§6.1): a single table of ~1 KB tuples (4 B key +
// 10 × 100 B columns), keys drawn from a Zipfian distribution, and three
// mixes:
//
//	YCSB-RO — 100% reads
//	YCSB-BA — 50% reads, 50% updates
//	YCSB-WH — 10% reads, 90% updates
//
// Each transaction touches a single tuple by primary key, exactly as the
// paper describes.
package ycsb

import (
	"errors"
	"fmt"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// TupleSize is the YCSB tuple payload: ten 100 B columns (the 4 B key lives
// in the engine's slot header).
const TupleSize = 1000

// TableID identifies the YCSB table within the engine.
const TableID = 100

// DefaultTheta is the Zipfian skew used unless stated otherwise (z = 0.3).
const DefaultTheta = 0.3

// Mix is a read/update transaction mixture.
type Mix struct {
	Name    string
	ReadPct int // percentage of read transactions; the rest are updates
}

// The paper's three mixes.
var (
	ReadOnly   = Mix{Name: "YCSB-RO", ReadPct: 100}
	Balanced   = Mix{Name: "YCSB-BA", ReadPct: 50}
	WriteHeavy = Mix{Name: "YCSB-WH", ReadPct: 10}
)

// Workload is a loaded YCSB database.
type Workload struct {
	DB      *engine.DB
	Table   *engine.Table
	Records uint64
	Theta   float64
}

// Setup creates and bulk-loads the YCSB table.
func Setup(db *engine.DB, records uint64, theta float64) (*Workload, error) {
	if records == 0 {
		return nil, errors.New("ycsb: need at least one record")
	}
	tb, err := db.CreateTable(TableID, "usertable", TupleSize)
	if err != nil {
		return nil, err
	}
	ctx := core.NewCtx(0xCB)
	err = tb.Load(ctx, records, func(i uint64, p []byte) uint64 {
		fill(p, i, 0)
		return i
	})
	if err != nil {
		return nil, err
	}
	return &Workload{DB: db, Table: tb, Records: records, Theta: theta}, nil
}

// fill synthesizes the ten 100 B columns for a key.
func fill(p []byte, key uint64, version byte) {
	for col := 0; col < 10; col++ {
		base := col * 100
		seed := key*31 + uint64(col) + uint64(version)*131
		for i := 0; i < 100; i++ {
			p[base+i] = byte(seed>>(uint(i)%8) + uint64(i))
		}
	}
}

// RecordsForBytes returns how many tuples make a database of roughly the
// given size (the paper speaks of database sizes in bytes; each ~1 KB tuple
// occupies one slot).
func RecordsForBytes(bytes int64) uint64 {
	n := bytes / (TupleSize + 16) // slot = header + key + payload
	if n < 1 {
		n = 1
	}
	return uint64(n)
}

// Worker drives the workload from one goroutine.
type Worker struct {
	w    *Workload
	ctx  *core.Ctx
	gen  *zipf.Generator
	rng  *zipf.Rand
	buf  []byte
	vers byte

	Committed int64
	Aborted   int64
}

// NewWorker creates a worker with its own virtual clock and PRNG.
func (w *Workload) NewWorker(seed uint64) *Worker {
	rng := zipf.NewRand(seed)
	return &Worker{
		w:   w,
		ctx: core.NewCtx(seed ^ 0x5EED),
		gen: zipf.NewGenerator(w.Records, w.Theta, rng),
		rng: rng,
		buf: make([]byte, TupleSize),
	}
}

// Ctx exposes the worker's context (for throughput accounting).
func (wk *Worker) Ctx() *core.Ctx { return wk.ctx }

// Op runs one transaction of the mix and reports whether it committed.
func (wk *Worker) Op(mix Mix) (bool, error) {
	key := wk.gen.Next()
	isRead := int(wk.rng.Uint64n(100)) < mix.ReadPct
	txn := wk.w.DB.Begin()
	var err error
	if isRead {
		err = wk.w.Table.Read(wk.ctx, txn, key, wk.buf)
	} else {
		wk.vers++
		fill(wk.buf, key, wk.vers)
		err = wk.w.Table.Update(wk.ctx, txn, key, wk.buf)
	}
	if err != nil {
		if aerr := txn.Abort(wk.ctx); aerr != nil {
			return false, aerr
		}
		if errors.Is(err, engine.ErrConflict) {
			wk.Aborted++
			return false, nil
		}
		return false, fmt.Errorf("ycsb: %w", err)
	}
	if err := txn.Commit(wk.ctx); err != nil {
		return false, err
	}
	wk.Committed++
	return true, nil
}

// Run executes n transactions of the mix.
func (wk *Worker) Run(mix Mix, n int) error {
	for i := 0; i < n; i++ {
		if _, err := wk.Op(mix); err != nil {
			return err
		}
	}
	return nil
}
