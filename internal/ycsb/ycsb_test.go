package ycsb

import (
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/policy"
)

func newWorkload(t *testing.T, records uint64) *Workload {
	t.Helper()
	bm, err := core.New(core.Config{
		DRAMBytes: 16 * core.PageSize,
		NVMBytes:  64 * core.PageSize,
		Policy:    policy.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(engine.Options{BM: bm})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Setup(db, records, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSetupLoadsRecords(t *testing.T) {
	w := newWorkload(t, 200)
	if w.Table.Index().Len() != 200 {
		t.Fatalf("index holds %d keys", w.Table.Index().Len())
	}
	// ~16 tuples per page -> ~13 pages.
	pages := len(w.Table.Pages())
	if pages < 12 || pages > 14 {
		t.Fatalf("loader used %d pages for 200 x 1 KB tuples", pages)
	}
}

func TestMixesRun(t *testing.T) {
	w := newWorkload(t, 100)
	for _, mix := range []Mix{ReadOnly, Balanced, WriteHeavy} {
		wk := w.NewWorker(42)
		if err := wk.Run(mix, 200); err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
		if wk.Committed == 0 {
			t.Fatalf("%s: nothing committed", mix.Name)
		}
		if wk.Ctx().Clock.Now() == 0 {
			t.Fatalf("%s: virtual time did not advance", mix.Name)
		}
	}
}

func TestReadOnlyNeverWrites(t *testing.T) {
	w := newWorkload(t, 100)
	wk := w.NewWorker(7)
	if err := wk.Run(ReadOnly, 300); err != nil {
		t.Fatal(err)
	}
	commits, _ := w.DB.TxnStats()
	if commits != wk.Committed {
		t.Fatalf("engine commits %d != worker commits %d", commits, wk.Committed)
	}
	// No tuple was updated, so no MVTO conflicts are possible.
	if wk.Aborted != 0 {
		t.Fatalf("read-only mix aborted %d times", wk.Aborted)
	}
}

func TestConcurrentWorkers(t *testing.T) {
	w := newWorkload(t, 128)
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wks := make([]*Worker, workers)
	for i := 0; i < workers; i++ {
		wks[i] = w.NewWorker(uint64(i) + 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = wks[i].Run(Balanced, 200)
		}(i)
	}
	wg.Wait()
	var committed int64
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		committed += wks[i].Committed
	}
	if committed == 0 {
		t.Fatal("no worker committed anything")
	}
}

func TestRecordsForBytes(t *testing.T) {
	if n := RecordsForBytes(1 << 20); n < 1000 || n > 1100 {
		t.Fatalf("1 MB -> %d records, want ~1032", n)
	}
	if n := RecordsForBytes(1); n != 1 {
		t.Fatalf("tiny size -> %d records", n)
	}
}

func TestDeterministicFill(t *testing.T) {
	a, b := make([]byte, TupleSize), make([]byte, TupleSize)
	fill(a, 99, 1)
	fill(b, 99, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fill not deterministic")
		}
	}
	fill(b, 99, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different versions produced identical tuples")
	}
}
