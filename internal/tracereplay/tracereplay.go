// Package tracereplay drives a Spitfire hierarchy from a recorded key-value
// trace instead of a synthetic generator, so real access patterns can be
// analyzed against candidate hierarchies and migration policies (the
// storage-system design question of §5.3, answered for *your* workload).
//
// The trace format is one operation per line:
//
//	R <key>          read the tuple under key
//	W <key>          update the tuple under key
//	# comment        ignored, as are blank lines
//
// Keys are decimal uint64s. The replayer loads a table covering every key
// in the trace, then streams the operations through one or more workers in
// round-robin shards, measuring virtual-time throughput and latency.
package tracereplay

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// Op is one trace operation.
type Op struct {
	Write bool
	Key   uint64
}

// Parse reads a trace. It fails on the first malformed line.
func Parse(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("tracereplay: line %d: want `R|W <key>`, got %q", lineNo, line)
		}
		var write bool
		switch fields[0] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("tracereplay: line %d: unknown op %q", lineNo, fields[0])
		}
		key, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tracereplay: line %d: bad key: %v", lineNo, err)
		}
		ops = append(ops, Op{Write: write, Key: key})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, errors.New("tracereplay: empty trace")
	}
	return ops, nil
}

// Generate writes a synthetic Zipfian trace (for demos and tests).
func Generate(w io.Writer, ops int, keys uint64, theta float64, writePct int, seed uint64) error {
	rng := zipf.NewRand(seed)
	gen := zipf.NewGenerator(keys, theta, rng)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# synthetic trace: %d ops over %d keys, zipf %.2f, %d%% writes\n",
		ops, keys, theta, writePct)
	for i := 0; i < ops; i++ {
		op := "R"
		if int(rng.Uint64n(100)) < writePct {
			op = "W"
		}
		fmt.Fprintf(bw, "%s %d\n", op, gen.Next())
	}
	return bw.Flush()
}

// Config configures a replay.
type Config struct {
	// BM is the hierarchy under test.
	BM *core.BufferManager
	// TupleSize defaults to 1000 (YCSB-sized tuples).
	TupleSize int
	// Workers shard the trace round-robin; defaults to 1.
	Workers int
}

// Result summarizes a replay.
type Result struct {
	Ops, Committed, Aborted int64
	ElapsedSec              float64 // mean per-worker simulated elapsed time
	Throughput              float64
	LatencyP50Ns            int64
	LatencyP99Ns            int64
	Stats                   core.Stats
	Inclusivity             float64
}

// Replay loads a table covering the trace's key space and streams the
// operations through the configured hierarchy.
func Replay(cfg Config, ops []Op) (Result, error) {
	if cfg.BM == nil {
		return Result{}, errors.New("tracereplay: a buffer manager is required")
	}
	if cfg.TupleSize == 0 {
		cfg.TupleSize = 1000
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}

	db, err := engine.Open(engine.Options{BM: cfg.BM})
	if err != nil {
		return Result{}, err
	}
	tb, err := db.CreateTable(1, "trace", cfg.TupleSize)
	if err != nil {
		return Result{}, err
	}

	// Load every key referenced by the trace.
	maxKey := uint64(0)
	for _, op := range ops {
		if op.Key > maxKey {
			maxKey = op.Key
		}
	}
	ctx := core.NewCtx(0x7ACE)
	if err := tb.Load(ctx, maxKey+1, func(i uint64, p []byte) uint64 { return i }); err != nil {
		return Result{}, err
	}

	lat := metrics.NewHistogram()
	type wres struct {
		committed, aborted int64
		elapsed            int64
		err                error
	}
	results := make([]wres, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			wctx := core.NewCtx(uint64(w) + 0x7ACE0)
			payload := make([]byte, cfg.TupleSize)
			buf := make([]byte, cfg.TupleSize)
			start := wctx.Clock.Now()
			for i := w; i < len(ops); i += cfg.Workers {
				op := ops[i]
				opStart := wctx.Clock.Now()
				txn := db.Begin()
				var err error
				if op.Write {
					payload[0]++
					err = tb.Update(wctx, txn, op.Key, payload)
				} else {
					err = tb.Read(wctx, txn, op.Key, buf)
				}
				if err != nil {
					if aerr := txn.Abort(wctx); aerr != nil {
						r.err = aerr
						return
					}
					if errors.Is(err, engine.ErrConflict) {
						r.aborted++
						continue
					}
					r.err = err
					return
				}
				if err := txn.Commit(wctx); err != nil {
					r.err = err
					return
				}
				r.committed++
				lat.Observe(wctx.Clock.Now() - opStart)
			}
			r.elapsed = wctx.Clock.Now() - start
		}(w)
	}
	wg.Wait()

	var out Result
	var sumElapsed int64
	for i := range results {
		if results[i].err != nil {
			return out, results[i].err
		}
		out.Committed += results[i].committed
		out.Aborted += results[i].aborted
		sumElapsed += results[i].elapsed
	}
	out.Ops = int64(len(ops))
	out.ElapsedSec = float64(sumElapsed) / float64(cfg.Workers) / 1e9
	if out.ElapsedSec > 0 {
		out.Throughput = float64(out.Committed) / out.ElapsedSec
	}
	out.LatencyP50Ns = lat.Percentile(50)
	out.LatencyP99Ns = lat.Percentile(99)
	out.Stats = cfg.BM.Stats()
	out.Inclusivity = cfg.BM.Inclusivity()
	return out, nil
}
