package tracereplay

import (
	"bytes"
	"strings"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/policy"
)

func TestParse(t *testing.T) {
	in := strings.NewReader(`
# a comment
R 5
W 17

r 0
w 99
`)
	ops, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{{false, 5}, {true, 17}, {false, 0}, {true, 99}}
	if len(ops) != len(want) {
		t.Fatalf("parsed %d ops", len(ops))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"X 5", "R", "R five", "R 5 6"} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	if _, err := Parse(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("accepted empty trace")
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, 500, 64, 0.5, 30, 7); err != nil {
		t.Fatal(err)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 500 {
		t.Fatalf("generated %d ops", len(ops))
	}
	writes := 0
	for _, op := range ops {
		if op.Key >= 64 {
			t.Fatalf("key %d out of range", op.Key)
		}
		if op.Write {
			writes++
		}
	}
	if writes < 100 || writes > 200 {
		t.Fatalf("writes = %d of 500, want ~30%%", writes)
	}
}

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, 800, 128, 0.3, 50, 3); err != nil {
		t.Fatal(err)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := core.New(core.Config{
		DRAMBytes: 4 * core.PageSize,
		NVMBytes:  16 * core.PageSize,
		Policy:    policy.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(Config{BM: bm, Workers: 2}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 800 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Committed+res.Aborted != 800 {
		t.Fatalf("committed %d + aborted %d != 800", res.Committed, res.Aborted)
	}
	if res.Throughput <= 0 || res.ElapsedSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.LatencyP99Ns < res.LatencyP50Ns || res.LatencyP50Ns <= 0 {
		t.Fatalf("latency percentiles wrong: %+v", res)
	}
}

func TestReplayRequiresBM(t *testing.T) {
	if _, err := Replay(Config{}, []Op{{false, 0}}); err == nil {
		t.Fatal("nil buffer manager accepted")
	}
}

// Replaying the same trace on two hierarchies must rank them sensibly: a
// bigger buffer wins on an uncachable trace.
func TestReplayComparesHierarchies(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, 3000, 2000, 0.3, 10, 9); err != nil {
		t.Fatal(err)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	run := func(nvmPages int64) float64 {
		bm, err := core.New(core.Config{
			DRAMBytes: 4 * core.PageSize,
			NVMBytes:  nvmPages * (core.PageSize + 64),
			Policy:    policy.SpitfireLazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(Config{BM: bm, Workers: 2}, ops)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	small, big := run(8), run(96)
	if big <= small {
		t.Fatalf("bigger NVM buffer not faster: %v vs %v", big, small)
	}
}
