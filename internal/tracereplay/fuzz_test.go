package tracereplay

import (
	"strings"
	"testing"
)

// FuzzParse: arbitrary text must never panic the trace parser, and every
// accepted op must carry a valid opcode.
func FuzzParse(f *testing.F) {
	f.Add("R 1\nW 2\n")
	f.Add("# c\n\nr 0\n")
	f.Add("X 1")
	f.Add("R 99999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		ops, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		if len(ops) == 0 {
			t.Fatal("accepted trace with zero ops")
		}
	})
}
