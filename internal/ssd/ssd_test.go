package ssd

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/vclock"
)

func page(fill byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func testStore(t *testing.T, s Store) {
	t.Helper()
	c := vclock.New()

	buf := make([]byte, PageSize)
	if err := s.ReadPage(c, 7, buf); err == nil {
		t.Fatal("read of missing page succeeded")
	}
	if s.Contains(7) {
		t.Fatal("Contains(7) before write")
	}

	want := page(0xAB)
	if err := s.WritePage(c, 7, want); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(7) {
		t.Fatal("Contains(7) false after write")
	}
	if err := s.ReadPage(c, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("read back wrong contents")
	}

	// Overwrite.
	want2 := page(0xCD)
	if err := s.WritePage(c, 7, want2); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadPage(c, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want2) {
		t.Fatal("overwrite not visible")
	}

	// Wrong-size buffers are rejected.
	if err := s.ReadPage(c, 7, make([]byte, 10)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := s.WritePage(c, 7, make([]byte, 10)); err == nil {
		t.Fatal("short write buffer accepted")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMem(nil)) }

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ssd.db")
	s, err := NewFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStore(t, s)
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ssd.db")
	c := vclock.New()
	s, err := NewFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := page(0x5A)
	if err := s.WritePage(c, 3, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := NewFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	buf := make([]byte, PageSize)
	if err := s2.ReadPage(c, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("page lost across reopen")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMem(nil)
	const workers = 8
	const pagesPerWorker = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vclock.New()
			for i := 0; i < pagesPerWorker; i++ {
				pid := uint64(w*pagesPerWorker + i)
				if err := s.WritePage(c, pid, page(byte(pid))); err != nil {
					t.Error(err)
					return
				}
			}
			buf := make([]byte, PageSize)
			for i := 0; i < pagesPerWorker; i++ {
				pid := uint64(w*pagesPerWorker + i)
				if err := s.ReadPage(c, pid, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(pid) {
					t.Errorf("page %d corrupted", pid)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*pagesPerWorker {
		t.Fatalf("store has %d pages, want %d", s.Len(), workers*pagesPerWorker)
	}
}

func TestChargesDevice(t *testing.T) {
	s := NewMem(nil)
	c := vclock.New()
	if err := s.WritePage(c, 0, page(1)); err != nil {
		t.Fatal(err)
	}
	if c.Now() == 0 {
		t.Fatal("write did not advance virtual time")
	}
	if st := s.Device().Stats(); st.BytesWritten != PageSize {
		t.Fatalf("device recorded %d bytes, want %d", st.BytesWritten, PageSize)
	}
	// Failed reads must not charge the device.
	before := s.Device().Stats().ReadOps
	_ = s.ReadPage(c, 999, page(0))
	if s.Device().Stats().ReadOps != before {
		t.Fatal("failed read charged the device")
	}
}
