// Package ssd simulates the block-addressable tier of the hierarchy: an
// Optane DC SSD that transfers whole 16 KB pages (Table 1 of the paper).
//
// Two implementations are provided. MemStore keeps pages in memory and is
// what the experiments use (the device model supplies the SSD's cost; the
// host's RAM merely stores the bytes). FileStore is backed by a real file
// so the recovery example can survive process restarts.
package ssd

import (
	"fmt"
	"os"
	"sync"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// PageSize is the database page size, matching the paper's 16 KB pages.
const PageSize = 16384

// Store is a page-granular block device.
type Store interface {
	// ReadPage copies page pid into buf (len(buf) == PageSize).
	// It returns an error if the page was never written.
	ReadPage(c *vclock.Clock, pid uint64, buf []byte) error
	// WritePage durably stores buf as page pid.
	WritePage(c *vclock.Clock, pid uint64, buf []byte) error
	// Contains reports whether the page exists on the device.
	Contains(pid uint64) bool
	// MaxPageID returns the largest page id ever written (ok=false when
	// the device is empty). Recovery uses it to bound page scans.
	MaxPageID() (pid uint64, ok bool)
	// Device returns the cost model in use.
	Device() *device.Device
}

// shardCount spreads the page map across locks; must be a power of two.
const shardCount = 64

type shard struct {
	mu    sync.RWMutex
	pages map[uint64][]byte
}

// MemStore is an in-memory Store.
type MemStore struct {
	dev    *device.Device
	shards [shardCount]shard
}

// NewMem creates an in-memory SSD. If dev is nil a fresh device with
// Table 1 SSD parameters is used.
func NewMem(dev *device.Device) *MemStore {
	if dev == nil {
		dev = device.New(device.SSDParams)
	}
	s := &MemStore{dev: dev}
	for i := range s.shards {
		s.shards[i].pages = make(map[uint64][]byte)
	}
	return s
}

func (s *MemStore) shard(pid uint64) *shard {
	return &s.shards[pid&(shardCount-1)]
}

// Device returns the cost model in use.
func (s *MemStore) Device() *device.Device { return s.dev }

// ReadPage implements Store.
func (s *MemStore) ReadPage(c *vclock.Clock, pid uint64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("ssd: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	sh := s.shard(pid)
	sh.mu.RLock()
	p, ok := sh.pages[pid]
	if ok {
		copy(buf, p)
	}
	sh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("ssd: page %d does not exist", pid)
	}
	if _, err := s.dev.ReadErr(c, PageSize); err != nil {
		return fmt.Errorf("ssd: read page %d: %w", pid, err)
	}
	return nil
}

// WritePage implements Store. Page writes are modeled failure-atomic: real
// SSDs complete or discard a sector-aligned page program from their
// power-loss-protected buffer, so an injected torn write surfaces as an
// error without corrupting the previous page image (torn-write *data*
// effects belong to the byte-addressable NVM tier and the log).
func (s *MemStore) WritePage(c *vclock.Clock, pid uint64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("ssd: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if _, err := s.dev.WriteErr(c, PageSize); err != nil {
		return fmt.Errorf("ssd: write page %d: %w", pid, err)
	}
	sh := s.shard(pid)
	sh.mu.Lock()
	p, ok := sh.pages[pid]
	if !ok {
		p = make([]byte, PageSize)
		sh.pages[pid] = p
	}
	copy(p, buf)
	sh.mu.Unlock()
	return nil
}

// Contains implements Store.
func (s *MemStore) Contains(pid uint64) bool {
	sh := s.shard(pid)
	sh.mu.RLock()
	_, ok := sh.pages[pid]
	sh.mu.RUnlock()
	return ok
}

// MaxPageID implements Store.
func (s *MemStore) MaxPageID() (uint64, bool) {
	var max uint64
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for pid := range sh.pages {
			if !found || pid > max {
				max, found = pid, true
			}
		}
		sh.mu.RUnlock()
	}
	return max, found
}

// Len reports the number of pages stored.
func (s *MemStore) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].pages)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// FileStore is a Store backed by a file; page pid lives at offset
// pid*PageSize. Pages are considered present once written in this or any
// previous process (tracked via a header-free existence bitmap persisted as
// written ranges — for simplicity, any read within the file's extent
// succeeds).
type FileStore struct {
	dev *device.Device
	mu  sync.Mutex
	f   *os.File
}

// NewFile opens (creating if necessary) a file-backed SSD at path.
func NewFile(path string, dev *device.Device) (*FileStore, error) {
	if dev == nil {
		dev = device.New(device.SSDParams)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ssd: open %s: %w", path, err)
	}
	return &FileStore{dev: dev, f: f}, nil
}

// Device returns the cost model in use.
func (s *FileStore) Device() *device.Device { return s.dev }

// ReadPage implements Store.
func (s *FileStore) ReadPage(c *vclock.Clock, pid uint64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("ssd: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if !s.Contains(pid) {
		return fmt.Errorf("ssd: page %d does not exist", pid)
	}
	if _, err := s.f.ReadAt(buf, int64(pid)*PageSize); err != nil {
		return fmt.Errorf("ssd: read page %d: %w", pid, err)
	}
	if _, err := s.dev.ReadErr(c, PageSize); err != nil {
		return fmt.Errorf("ssd: read page %d: %w", pid, err)
	}
	return nil
}

// WritePage implements Store. As with MemStore, page writes are
// failure-atomic: injected faults fail the write without touching the file.
func (s *FileStore) WritePage(c *vclock.Clock, pid uint64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("ssd: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if _, err := s.dev.WriteErr(c, PageSize); err != nil {
		return fmt.Errorf("ssd: write page %d: %w", pid, err)
	}
	if _, err := s.f.WriteAt(buf, int64(pid)*PageSize); err != nil {
		return fmt.Errorf("ssd: write page %d: %w", pid, err)
	}
	return nil
}

// Contains implements Store.
func (s *FileStore) Contains(pid uint64) bool {
	st, err := s.f.Stat()
	if err != nil {
		return false
	}
	return int64(pid+1)*PageSize <= st.Size()
}

// MaxPageID implements Store.
func (s *FileStore) MaxPageID() (uint64, bool) {
	st, err := s.f.Stat()
	if err != nil || st.Size() < PageSize {
		return 0, false
	}
	return uint64(st.Size()/PageSize) - 1, true
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close closes the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }
