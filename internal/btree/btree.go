// Package btree implements the concurrent B+Tree index Spitfire layers on
// top of its buffer manager (§5.2 of the paper), using optimistic,
// latch-free reads with write exclusion.
//
// The paper uses optimistic lock coupling (Leis et al.): readers read node
// contents without latches and re-validate a version counter afterwards.
// The classical formulation reads memory that a writer may be mutating,
// which the Go memory model forbids (and the race detector rejects), so
// this implementation uses the race-free variant from the same line of work
// (ROWEX — read-optimized write exclusion, Leis et al., "The ART of
// Practical Synchronization"):
//
//   - Node contents are immutable snapshots behind an atomic pointer.
//     Readers load them without any latch — they keep the property the
//     paper wants from optimistic coupling: zero reader-side cache-line
//     contention — and validate a per-node version across parent→child
//     steps to detect splits, restarting from the root when one hits.
//   - Writers use lock coupling (hand-over-hand mutexes) with preemptive
//     splits and publish modified nodes by swapping the content pointer.
//
// Keys are any ordered type; values are uint64 (record identifiers).
// Deletion removes entries from leaves without rebalancing, the common
// simplification for workloads whose key population does not shrink.
package btree

import (
	"cmp"
	"sync"
	"sync/atomic"
)

// order is the fan-out: maximum keys per node.
const order = 64

// content is an immutable snapshot of a node. Writers build a new content
// and publish it atomically; readers never observe a partially modified
// node.
type content[K cmp.Ordered] struct {
	leaf bool
	keys []K

	// Inner nodes: children[i] is the subtree for keys < keys[i];
	// children[len(keys)] is the rightmost subtree.
	children []*node[K]

	// Leaves: values[i] pairs with keys[i]; next chains leaves for scans.
	values []uint64
	next   *node[K]
}

type node[K cmp.Ordered] struct {
	mu      sync.Mutex // writers only
	version atomic.Uint64
	content atomic.Pointer[content[K]]
}

func newNode[K cmp.Ordered](c *content[K]) *node[K] {
	n := &node[K]{}
	n.content.Store(c)
	return n
}

// publish installs a new content snapshot and bumps the version so
// validating readers notice.
func (nd *node[K]) publish(c *content[K]) {
	nd.content.Store(c)
	nd.version.Add(1)
}

// lowerBound returns the first index i with keys[i] >= k.
func (c *content[K]) lowerBound(k K) int {
	lo, hi := 0, len(c.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child slot to descend into for key k.
func (c *content[K]) childIndex(k K) int {
	i := c.lowerBound(k)
	if i < len(c.keys) && c.keys[i] == k {
		i++ // inner separators route equal keys right
	}
	return i
}

// Tree is a concurrent B+Tree.
type Tree[K cmp.Ordered] struct {
	root atomic.Pointer[node[K]]
	size atomic.Int64
}

// New creates an empty tree.
func New[K cmp.Ordered]() *Tree[K] {
	t := &Tree[K]{}
	t.root.Store(newNode(&content[K]{leaf: true}))
	return t
}

// Len returns the number of entries.
func (t *Tree[K]) Len() int { return int(t.size.Load()) }

// Get returns the value stored under k. Readers take no latches.
func (t *Tree[K]) Get(k K) (uint64, bool) {
	c := t.findLeafContent(k)
	i := c.lowerBound(k)
	if i < len(c.keys) && c.keys[i] == k {
		return c.values[i], true
	}
	return 0, false
}

// findLeafContent descends, latch-free, to the leaf snapshot covering k.
//
// Validation protocol: at each level the child's version is loaded *before*
// its content, and the parent's version is re-checked *after* the child's
// content is loaded. Splits publish the parent's new content (bumping its
// version) before truncating the child, so any reader that observes a
// truncated child through a stale parent also observes the parent's version
// change and restarts. The root is validated by identity instead (root
// splits install a fresh root node before truncating the old one).
func (t *Tree[K]) findLeafContent(k K) *content[K] {
restart:
	for {
		nd := t.root.Load()
		ver := nd.version.Load()
		c := nd.content.Load()
		if t.root.Load() != nd {
			continue
		}
		for !c.leaf {
			child := c.children[c.childIndex(k)]
			cv := child.version.Load()
			cc := child.content.Load()
			if nd.version.Load() != ver {
				continue restart
			}
			nd, ver, c = child, cv, cc
		}
		return c
	}
}

// Insert stores v under k, replacing any previous value. It reports whether
// the key was newly inserted (false means replaced).
func (t *Tree[K]) Insert(k K, v uint64) bool {
	for {
		inserted, restart := t.tryInsert(k, v)
		if !restart {
			if inserted {
				t.size.Add(1)
			}
			return inserted
		}
	}
}

// tryInsert performs one lock-coupled descent with preemptive splits.
func (t *Tree[K]) tryInsert(k K, v uint64) (inserted, restart bool) {
	nd := t.root.Load()
	nd.mu.Lock()
	if t.root.Load() != nd {
		nd.mu.Unlock()
		return false, true
	}
	c := nd.content.Load()
	if len(c.keys) == order {
		t.splitRoot(nd, c)
		nd.mu.Unlock()
		return false, true
	}

	for !c.leaf {
		childIdx := c.childIndex(k)
		child := c.children[childIdx]
		child.mu.Lock()
		cc := child.content.Load()
		if len(cc.keys) == order {
			// Preemptive split: nd (the parent) is locked and not full.
			t.splitChild(nd, c, childIdx, child, cc)
			child.mu.Unlock()
			// nd's content changed; reload and re-route within nd.
			c = nd.content.Load()
			continue
		}
		nd.mu.Unlock()
		nd, c = child, cc
	}

	// nd is the locked, non-full leaf.
	i := c.lowerBound(k)
	if i < len(c.keys) && c.keys[i] == k {
		nc := &content[K]{leaf: true, keys: c.keys, next: c.next}
		nc.values = make([]uint64, len(c.values))
		copy(nc.values, c.values)
		nc.values[i] = v
		nd.publish(nc)
		nd.mu.Unlock()
		return false, false
	}
	nc := &content[K]{leaf: true, next: c.next}
	nc.keys = make([]K, len(c.keys)+1)
	nc.values = make([]uint64, len(c.values)+1)
	copy(nc.keys, c.keys[:i])
	copy(nc.values, c.values[:i])
	nc.keys[i] = k
	nc.values[i] = v
	copy(nc.keys[i+1:], c.keys[i:])
	copy(nc.values[i+1:], c.values[i:])
	nd.publish(nc)
	nd.mu.Unlock()
	return true, false
}

// splitHalves builds the separator and the two replacement contents for a
// full node.
func splitHalves[K cmp.Ordered](c *content[K], right *node[K]) (sep K, left, rightC *content[K]) {
	mid := len(c.keys) / 2
	if c.leaf {
		sep = c.keys[mid]
		left = &content[K]{leaf: true, keys: clone(c.keys[:mid]), values: clone(c.values[:mid]), next: right}
		rightC = &content[K]{leaf: true, keys: clone(c.keys[mid:]), values: clone(c.values[mid:]), next: c.next}
		return sep, left, rightC
	}
	sep = c.keys[mid]
	left = &content[K]{keys: clone(c.keys[:mid]), children: clone(c.children[:mid+1])}
	rightC = &content[K]{keys: clone(c.keys[mid+1:]), children: clone(c.children[mid+1:])}
	return sep, left, rightC
}

func clone[T any](s []T) []T {
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// splitRoot splits the locked, full root nd and installs a new root.
// Publication order matters for latch-free readers: the new root is
// published before the truncated left half, so a reader that observes the
// truncated node must also observe the root change (and restarts via its
// root identity check).
func (t *Tree[K]) splitRoot(nd *node[K], c *content[K]) {
	right := newNode[K](nil)
	sep, leftC, rightC := splitHalves(c, right)
	right.content.Store(rightC)
	newRoot := newNode(&content[K]{
		keys:     []K{sep},
		children: []*node[K]{nd, right},
	})
	t.root.Store(newRoot)
	nd.publish(leftC)
}

// splitChild splits the locked, full child (slot childIdx of the locked
// parent nd). The parent's new content is published before the child's
// truncated content, so readers holding the old parent still see the
// child's full content, and readers that observe the truncated child also
// observe the parent's version bump.
func (t *Tree[K]) splitChild(nd *node[K], c *content[K], childIdx int, child *node[K], cc *content[K]) {
	right := newNode[K](nil)
	sep, leftC, rightC := splitHalves(cc, right)
	right.content.Store(rightC)

	pc := &content[K]{leaf: false}
	pc.keys = make([]K, len(c.keys)+1)
	pc.children = make([]*node[K], len(c.children)+1)
	copy(pc.keys, c.keys[:childIdx])
	copy(pc.children, c.children[:childIdx+1])
	pc.keys[childIdx] = sep
	pc.children[childIdx+1] = right
	copy(pc.keys[childIdx+1:], c.keys[childIdx:])
	copy(pc.children[childIdx+2:], c.children[childIdx+1:])

	nd.publish(pc)
	child.publish(leftC)
}

// Delete removes k. It reports whether the key was present. Leaves are not
// rebalanced.
func (t *Tree[K]) Delete(k K) bool {
	for {
		deleted, restart := t.tryDelete(k)
		if !restart {
			if deleted {
				t.size.Add(-1)
			}
			return deleted
		}
	}
}

func (t *Tree[K]) tryDelete(k K) (deleted, restart bool) {
	nd := t.root.Load()
	nd.mu.Lock()
	if t.root.Load() != nd {
		nd.mu.Unlock()
		return false, true
	}
	c := nd.content.Load()
	for !c.leaf {
		child := c.children[c.childIndex(k)]
		child.mu.Lock()
		nd.mu.Unlock()
		nd = child
		c = nd.content.Load()
	}
	i := c.lowerBound(k)
	if i >= len(c.keys) || c.keys[i] != k {
		nd.mu.Unlock()
		return false, false
	}
	nc := &content[K]{leaf: true, next: c.next}
	nc.keys = make([]K, 0, len(c.keys)-1)
	nc.values = make([]uint64, 0, len(c.values)-1)
	nc.keys = append(append(nc.keys, c.keys[:i]...), c.keys[i+1:]...)
	nc.values = append(append(nc.values, c.values[:i]...), c.values[i+1:]...)
	nd.publish(nc)
	nd.mu.Unlock()
	return true, false
}

// Scan visits entries with k >= from in ascending key order until fn
// returns false or the tree is exhausted. Each leaf is a consistent
// snapshot; the scan as a whole is not a point-in-time snapshot.
func (t *Tree[K]) Scan(from K, fn func(k K, v uint64) bool) {
	c := t.findLeafContent(from)
	start := c.lowerBound(from)
	for {
		for i := start; i < len(c.keys); i++ {
			if !fn(c.keys[i], c.values[i]) {
				return
			}
		}
		if c.next == nil {
			return
		}
		c = c.next.content.Load()
		start = 0
	}
}
