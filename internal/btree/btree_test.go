package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[uint64]()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree found a key")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree reported success")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New[uint64]()
	if !tr.Insert(10, 100) {
		t.Fatal("fresh insert reported replacement")
	}
	if tr.Insert(10, 200) {
		t.Fatal("replacement reported fresh insert")
	}
	if v, ok := tr.Get(10); !ok || v != 200 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if !tr.Delete(10) {
		t.Fatal("Delete of present key failed")
	}
	if _, ok := tr.Get(10); ok {
		t.Fatal("deleted key still found")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
}

func TestManyKeysForceSplits(t *testing.T) {
	tr := New[uint64]()
	const n = 50_000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Insert(uint64(k), uint64(k)*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tr.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestScanOrderAndRange(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 1000; k += 3 {
		tr.Insert(k, k)
	}
	var got []uint64
	tr.Scan(100, func(k, v uint64) bool {
		if k != v {
			t.Fatalf("scan pair %d != %d", k, v)
		}
		got = append(got, k)
		return k < 200
	})
	if got[0] != 102 {
		t.Fatalf("scan started at %d, want 102", got[0])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	if last := got[len(got)-1]; last != 201 {
		t.Fatalf("scan stopped at %d, want 201", last)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string]()
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, w := range words {
		tr.Insert(w, uint64(i))
	}
	var got []string
	tr.Scan("", func(k string, _ uint64) bool {
		got = append(got, k)
		return true
	})
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Prefix-style range: everything >= "b" and < "c".
	var inRange []string
	tr.Scan("b", func(k string, _ uint64) bool {
		if k >= "c" {
			return false
		}
		inRange = append(inRange, k)
		return true
	})
	if len(inRange) != 1 || inRange[0] != "bravo" {
		t.Fatalf("range scan = %v", inRange)
	}
}

// Property: the tree agrees with a model map under random operation
// sequences, and Scan("") enumerates exactly the sorted model keys.
func TestQuickMatchesModel(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val uint64
		Op  uint8
	}) bool {
		tr := New[uint64]()
		model := make(map[uint64]uint64)
		for _, op := range ops {
			k := op.Key % 512
			switch op.Op % 3 {
			case 0:
				tr.Insert(k, op.Val)
				model[k] = op.Val
			case 1:
				got, ok := tr.Get(k)
				want, wok := model[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				_, wok := model[k]
				if tr.Delete(k) != wok {
					return false
				}
				delete(model, k)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		var keys []uint64
		tr.Scan(0, func(k, v uint64) bool {
			if model[k] != v {
				return false
			}
			keys = append(keys, k)
			return true
		})
		if len(keys) != len(model) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	tr := New[uint64]()
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * each
			for i := uint64(0); i < each; i++ {
				tr.Insert(base+i, base+i+1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*each {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*each)
	}
	for k := uint64(0); k < workers*each; k++ {
		if v, ok := tr.Get(k); !ok || v != k+1 {
			t.Fatalf("lost key %d (got %d,%v)", k, v, ok)
		}
	}
}

func TestConcurrentReadersDuringInserts(t *testing.T) {
	tr := New[uint64]()
	const n = 20_000
	// Pre-populate evens; writers add odds while readers check evens.
	for k := uint64(0); k < n; k += 2 {
		tr.Insert(k, k)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(1); k < n; k += 2 {
			tr.Insert(k, k)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 20_000; i++ {
				k := uint64(rng.Intn(n/2)) * 2
				if v, ok := tr.Get(k); !ok || v != k {
					t.Errorf("reader lost even key %d (%d,%v)", k, v, ok)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	tr := New[uint64]()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(2048))
				switch rng.Intn(4) {
				case 0, 1:
					tr.Insert(k, k)
				case 2:
					tr.Get(k)
				case 3:
					tr.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Invariant: every surviving entry maps k -> k and the scan is sorted.
	prev := uint64(0)
	first := true
	tr.Scan(0, func(k, v uint64) bool {
		if v != k {
			t.Errorf("corrupted entry %d -> %d", k, v)
			return false
		}
		if !first && k <= prev {
			t.Errorf("scan out of order: %d after %d", k, prev)
			return false
		}
		prev, first = k, false
		return true
	})
}
