// Package cht provides a concurrent hash table with lock-free reads.
//
// The paper uses Intel TBB's concurrent hash map for the DRAM-resident
// mapping table from logical page identifiers to shared page descriptors
// (§5.2); its scalability evaluation (§6) depends on that table never
// serializing fetches. This package is the stdlib-only stand-in: keys are
// sharded across 2^k stripes, each holding a chained hash table whose bucket
// heads and chain links are atomic pointers. Get walks a bucket chain with
// plain atomic loads and never takes a lock; Put/Delete/GetOrInsert
// serialize per stripe under the stripe mutex and publish every structural
// change with atomic stores, so readers always observe a consistent chain.
// All operations are linearizable per key.
//
// Updates never mutate a published node: replacing a value splices in a
// fresh node, and a stripe resize copies every node into a new bucket array
// before swinging the stripe's table pointer. A reader that entered the old
// table keeps walking an immutable-enough snapshot (nodes it can reach are
// never relinked into the new table), so it sees every key that was present
// when it loaded the table pointer — its linearization point.
package cht

import (
	"sync"
	"sync/atomic"
)

const defaultShardBits = 8

// stripeInitBuckets is each stripe's initial bucket count; stripes double
// their table when the entry count passes loadFactor entries per bucket.
const (
	stripeInitBuckets = 8
	loadFactor        = 4
)

// Map is a concurrent hash map from K to V.
type Map[K comparable, V any] struct {
	stripes []stripe[K, V]
	mask    uint64
	hash    func(K) uint64
}

// node is one immutable key/value pair on a bucket chain. The chain link is
// atomic so writers can splice nodes in and out under readers; key and val
// are never written after the node is published.
type node[K comparable, V any] struct {
	key  K
	val  V
	next atomic.Pointer[node[K, V]]
}

// table is one stripe's bucket array. Resizes publish a whole new table
// (with copied nodes) rather than rehashing in place.
type table[K comparable, V any] struct {
	buckets []atomic.Pointer[node[K, V]]
	mask    uint64
}

type stripe[K comparable, V any] struct {
	mu     sync.Mutex // writers only; Get never touches it
	tab    atomic.Pointer[table[K, V]]
	count  int            // entries, guarded by mu
	hashFn func(K) uint64 // the map's hash, needed to rehash during grow
	_      [24]byte       // pad to reduce false sharing between neighboring stripes
}

// New creates a map using the given hash function with the default stripe
// count.
func New[K comparable, V any](hash func(K) uint64) *Map[K, V] {
	return NewWithShards[K, V](hash, 1<<defaultShardBits)
}

// NewWithShards creates a map with the given stripe count, which must be a
// power of two.
func NewWithShards[K comparable, V any](hash func(K) uint64, shards int) *Map[K, V] {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("cht: shard count must be a positive power of two")
	}
	m := &Map[K, V]{
		stripes: make([]stripe[K, V], shards),
		mask:    uint64(shards - 1),
		hash:    hash,
	}
	for i := range m.stripes {
		m.stripes[i].hashFn = hash
		m.stripes[i].tab.Store(newTable[K, V](stripeInitBuckets))
	}
	return m
}

func newTable[K comparable, V any](buckets int) *table[K, V] {
	return &table[K, V]{
		buckets: make([]atomic.Pointer[node[K, V]], buckets),
		mask:    uint64(buckets - 1),
	}
}

// Uint64Hash is a Fibonacci/avalanche hash suitable for integer keys such as
// page identifiers.
func Uint64Hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

func (m *Map[K, V]) stripeFor(h uint64) *stripe[K, V] {
	return &m.stripes[h&m.mask]
}

// Get returns the value for k, if present. It is lock-free: a table-pointer
// load, a bucket-head load, and a chain walk over atomic links.
func (m *Map[K, V]) Get(k K) (V, bool) {
	h := m.hash(k)
	t := m.stripeFor(h).tab.Load()
	for n := t.buckets[h&t.mask].Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put stores v under k, replacing any existing value.
func (m *Map[K, V]) Put(k K, v V) {
	h := m.hash(k)
	s := m.stripeFor(h)
	s.mu.Lock()
	s.put(h, k, v)
	s.mu.Unlock()
}

// put inserts or replaces (k, v); the caller holds s.mu.
func (s *stripe[K, V]) put(h uint64, k K, v V) {
	t := s.tab.Load()
	b := &t.buckets[h&t.mask]
	var prev *node[K, V]
	for n := b.Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			// Replace by splicing in a fresh node: published nodes are
			// immutable so concurrent readers see either the old or the new
			// value, never a torn one.
			repl := &node[K, V]{key: k, val: v}
			repl.next.Store(n.next.Load())
			if prev == nil {
				b.Store(repl)
			} else {
				prev.next.Store(repl)
			}
			return
		}
		prev = n
	}
	fresh := &node[K, V]{key: k, val: v}
	fresh.next.Store(b.Load())
	b.Store(fresh)
	s.count++
	if s.count > len(t.buckets)*loadFactor {
		s.grow(t)
	}
}

// grow doubles the stripe's bucket array. Every node is copied — relinking
// published nodes would corrupt the chains concurrent readers are walking in
// the old table — and the new table is published with one atomic store.
func (s *stripe[K, V]) grow(old *table[K, V]) {
	t := newTable[K, V](len(old.buckets) * 2)
	for i := range old.buckets {
		for n := old.buckets[i].Load(); n != nil; n = n.next.Load() {
			h := s.rehash(n.key)
			b := &t.buckets[h&t.mask]
			c := &node[K, V]{key: n.key, val: n.val}
			c.next.Store(b.Load())
			b.Store(c)
		}
	}
	s.tab.Store(t)
}

// rehash recomputes a key's hash during a resize. Stored on the stripe via
// the owning map's hash function pointer, captured at construction.
func (s *stripe[K, V]) rehash(k K) uint64 { return s.hashFn(k) }

// Delete removes k. It reports whether the key was present.
func (m *Map[K, V]) Delete(k K) bool {
	h := m.hash(k)
	s := m.stripeFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tab.Load()
	b := &t.buckets[h&t.mask]
	var prev *node[K, V]
	for n := b.Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			if prev == nil {
				b.Store(n.next.Load())
			} else {
				prev.next.Store(n.next.Load())
			}
			s.count--
			return true
		}
		prev = n
	}
	return false
}

// GetOrInsert returns the existing value for k, or stores and returns the
// value produced by mk. mk is called at most once, under the stripe lock,
// and only if the key is absent. loaded reports whether the value already
// existed.
func (m *Map[K, V]) GetOrInsert(k K, mk func() V) (v V, loaded bool) {
	if v, ok := m.Get(k); ok {
		return v, true
	}
	h := m.hash(k)
	s := m.stripeFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tab.Load()
	for n := t.buckets[h&t.mask].Load(); n != nil; n = n.next.Load() {
		if n.key == k {
			return n.val, true
		}
	}
	v = mk()
	s.put(h, k, v)
	return v, false
}

// Len returns the number of entries. It is a snapshot, not a fence.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.stripes {
		m.stripes[i].mu.Lock()
		n += m.stripes[i].count
		m.stripes[i].mu.Unlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Entries inserted or
// removed concurrently may or may not be observed; each stripe is walked
// lock-free over the table snapshot current when the stripe is reached.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for i := range m.stripes {
		t := m.stripes[i].tab.Load()
		for b := range t.buckets {
			for n := t.buckets[b].Load(); n != nil; n = n.next.Load() {
				if !f(n.key, n.val) {
					return
				}
			}
		}
	}
}
