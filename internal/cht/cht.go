// Package cht provides a lock-striped concurrent hash table.
//
// The paper uses Intel TBB's concurrent hash map for the DRAM-resident
// mapping table from logical page identifiers to shared page descriptors
// (§5.2). This package is the stdlib-only stand-in: a generic map sharded
// across 2^k stripes, each guarded by its own RWMutex. All operations are
// linearizable per key.
package cht

import "sync"

const defaultShardBits = 8

// Map is a concurrent hash map from K to V.
type Map[K comparable, V any] struct {
	shards []mapShard[K, V]
	mask   uint64
	hash   func(K) uint64
}

type mapShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	_  [40]byte // pad to reduce false sharing between neighboring stripes
}

// New creates a map using the given hash function with the default stripe
// count.
func New[K comparable, V any](hash func(K) uint64) *Map[K, V] {
	return NewWithShards[K, V](hash, 1<<defaultShardBits)
}

// NewWithShards creates a map with the given stripe count, which must be a
// power of two.
func NewWithShards[K comparable, V any](hash func(K) uint64, shards int) *Map[K, V] {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("cht: shard count must be a positive power of two")
	}
	m := &Map[K, V]{
		shards: make([]mapShard[K, V], shards),
		mask:   uint64(shards - 1),
		hash:   hash,
	}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

// Uint64Hash is a Fibonacci/avalanche hash suitable for integer keys such as
// page identifiers.
func Uint64Hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

func (m *Map[K, V]) shard(k K) *mapShard[K, V] {
	return &m.shards[m.hash(k)&m.mask]
}

// Get returns the value for k, if present.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Put stores v under k, replacing any existing value.
func (m *Map[K, V]) Put(k K, v V) {
	s := m.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes k. It reports whether the key was present.
func (m *Map[K, V]) Delete(k K) bool {
	s := m.shard(k)
	s.mu.Lock()
	_, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return ok
}

// GetOrInsert returns the existing value for k, or stores and returns the
// value produced by mk. mk is called at most once, under the stripe lock,
// and only if the key is absent. loaded reports whether the value already
// existed.
func (m *Map[K, V]) GetOrInsert(k K, mk func() V) (v V, loaded bool) {
	s := m.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return v, true
	}
	s.mu.Lock()
	v, ok = s.m[k]
	if !ok {
		v = mk()
		s.m[k] = v
	}
	s.mu.Unlock()
	return v, ok
}

// Len returns the number of entries. It is a snapshot, not a fence.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.RLock()
		n += len(m.shards[i].m)
		m.shards[i].mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Entries inserted or
// removed concurrently may or may not be observed; each stripe is visited
// under its read lock.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
