package cht

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetLockFreeUnderWriterLock proves the hit path takes no mutex: every
// stripe's writer lock is held for the duration, and Get must still return.
// Under the previous RWMutex design this test deadlocks (Get's RLock blocks
// behind the held write lock); with atomic-pointer bucket reads it cannot.
func TestGetLockFreeUnderWriterLock(t *testing.T) {
	m := New[uint64, int](Uint64Hash)
	for k := uint64(0); k < 4096; k++ {
		m.Put(k, int(k))
	}
	for i := range m.stripes {
		m.stripes[i].mu.Lock()
	}
	defer func() {
		for i := range m.stripes {
			m.stripes[i].mu.Unlock()
		}
	}()

	done := make(chan bool, 1)
	go func() {
		for k := uint64(0); k < 4096; k++ {
			if v, ok := m.Get(k); !ok || v != int(k) {
				done <- false
				return
			}
		}
		done <- true
	}()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Get returned a wrong value with all stripe locks held")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Get blocked with a stripe writer lock held — the read path is not lock-free")
	}
}

// TestGetSeesConsistentChainDuringGrow hammers one stripe through repeated
// resizes while readers walk it: a reader must never miss a key that was
// present before the churn started (run under -race).
func TestGetSeesConsistentChainDuringGrow(t *testing.T) {
	m := NewWithShards[uint64, int](Uint64Hash, 1) // one stripe: every op contends
	const stable = 512
	for k := uint64(0); k < stable; k++ {
		m.Put(k, int(k))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for k := uint64(0); k < stable; k++ {
					if v, ok := m.Get(k); !ok || v != int(k) {
						t.Errorf("Get(%d) = %d,%v during growth", k, v, ok)
						return
					}
				}
			}
		}()
	}
	// Writer: churn keys above the stable range, forcing repeated grows and
	// value replacements.
	for i := 0; i < 20000; i++ {
		k := stable + uint64(i%4096)
		m.Put(k, i)
		if i%3 == 0 {
			m.Delete(k)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// BenchmarkGetHit measures the lock-free hit path.
func BenchmarkGetHit(b *testing.B) {
	m := New[uint64, int](Uint64Hash)
	for k := uint64(0); k < 1024; k++ {
		m.Put(k, int(k))
	}
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			k = (k + 7) & 1023
			if _, ok := m.Get(k); !ok {
				b.Fatal("miss")
			}
		}
	})
}
