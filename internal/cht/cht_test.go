package cht

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTestMap() *Map[uint64, int] {
	return New[uint64, int](Uint64Hash)
}

func TestBasicOps(t *testing.T) {
	m := newTestMap()
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on empty map returned ok")
	}
	m.Put(1, 10)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	m.Put(1, 20)
	if v, _ := m.Get(1); v != 20 {
		t.Fatalf("Put did not replace: %d", v)
	}
	if !m.Delete(1) {
		t.Fatal("Delete of present key returned false")
	}
	if m.Delete(1) {
		t.Fatal("Delete of absent key returned true")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after delete", m.Len())
	}
}

func TestGetOrInsert(t *testing.T) {
	m := newTestMap()
	calls := 0
	v, loaded := m.GetOrInsert(5, func() int { calls++; return 50 })
	if loaded || v != 50 || calls != 1 {
		t.Fatalf("first GetOrInsert: v=%d loaded=%v calls=%d", v, loaded, calls)
	}
	v, loaded = m.GetOrInsert(5, func() int { calls++; return 99 })
	if !loaded || v != 50 || calls != 1 {
		t.Fatalf("second GetOrInsert: v=%d loaded=%v calls=%d", v, loaded, calls)
	}
}

func TestGetOrInsertConcurrentSingleWinner(t *testing.T) {
	m := newTestMap()
	const workers = 16
	var mu sync.Mutex
	calls := 0
	var wg sync.WaitGroup
	results := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, _ := m.GetOrInsert(42, func() int {
				mu.Lock()
				calls++
				id := calls
				mu.Unlock()
				return id
			})
			results[w] = v
		}(w)
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("constructor called %d times, want 1", calls)
	}
	for w, v := range results {
		if v != results[0] {
			t.Fatalf("worker %d saw %d, worker 0 saw %d", w, v, results[0])
		}
	}
}

func TestRange(t *testing.T) {
	m := newTestMap()
	for i := uint64(0); i < 100; i++ {
		m.Put(i, int(i))
	}
	seen := make(map[uint64]bool)
	m.Range(func(k uint64, v int) bool {
		if int(k) != v {
			t.Errorf("Range saw %d -> %d", k, v)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d keys, want 100", len(seen))
	}
	// Early termination.
	n := 0
	m.Range(func(uint64, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range after false visited %d keys", n)
	}
}

func TestBadShardCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two shards")
		}
	}()
	NewWithShards[uint64, int](Uint64Hash, 3)
}

// Property: a cht behaves like a plain map under any sequence of operations.
func TestQuickMatchesModel(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val int
		Op  uint8
	}) bool {
		m := newTestMap()
		model := make(map[uint64]int)
		for _, op := range ops {
			k := op.Key % 64
			switch op.Op % 3 {
			case 0:
				m.Put(k, op.Val)
				model[k] = op.Val
			case 1:
				got, ok := m.Get(k)
				want, wok := model[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				if m.Delete(k) != (func() bool { _, ok := model[k]; return ok })() {
					return false
				}
				delete(model, k)
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	m := newTestMap()
	const workers = 8
	const keysPerWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * keysPerWorker)
			for i := uint64(0); i < keysPerWorker; i++ {
				m.Put(base+i, int(base+i))
			}
			for i := uint64(0); i < keysPerWorker; i++ {
				if v, ok := m.Get(base + i); !ok || v != int(base+i) {
					t.Errorf("lost key %d", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*keysPerWorker {
		t.Fatalf("Len = %d, want %d", m.Len(), workers*keysPerWorker)
	}
}
