// Package design implements the storage-system design problem of §5.3 and
// §6.6 of the paper: given a cost budget and a target workload, find the
// multi-tier hierarchy (DRAM, NVM, SSD capacities) with the best
// performance/price number.
//
// Prices come from Table 1 ($/GB: DRAM 10, NVM 4.5, SSD 2.8); the paper's
// Figure 14a cost matrix is reproduced exactly by Cost. The grid search
// itself simply evaluates a caller-supplied throughput function over the
// candidate grid — the harness plugs in actual Spitfire runs.
package design

import (
	"fmt"
	"sort"

	"github.com/spitfire-db/spitfire/internal/device"
)

// Hierarchy is a candidate storage system. Sizes are in "paper GB", which
// the scaled reproduction maps to MB.
type Hierarchy struct {
	DRAMGB, NVMGB, SSDGB float64
}

// String renders the hierarchy compactly.
func (h Hierarchy) String() string {
	return fmt.Sprintf("DRAM=%g NVM=%g SSD=%g", h.DRAMGB, h.NVMGB, h.SSDGB)
}

// Cost returns the hierarchy's total device cost in dollars, using
// Table 1's per-GB prices.
func Cost(h Hierarchy) float64 {
	return h.DRAMGB*device.DRAMParams.PricePerGB +
		h.NVMGB*device.NVMParams.PricePerGB +
		h.SSDGB*device.SSDParams.PricePerGB
}

// Grid is the candidate grid of Figure 14: DRAM {0,4,8,16,32} GB ×
// NVM {0,40,80,160} GB on top of a 200 GB SSD, excluding the empty
// (0 DRAM, 0 NVM) corner which has no buffer at all.
func Grid() []Hierarchy {
	var out []Hierarchy
	for _, d := range []float64{0, 4, 8, 16, 32} {
		for _, n := range []float64{0, 40, 80, 160} {
			if d == 0 && n == 0 {
				continue
			}
			out = append(out, Hierarchy{DRAMGB: d, NVMGB: n, SSDGB: 200})
		}
	}
	return out
}

// Result pairs a hierarchy with its measured throughput.
type Result struct {
	Hierarchy  Hierarchy
	Throughput float64 // operations per second
	Cost       float64
	PerfPrice  float64 // operations per second per dollar
}

// Search evaluates throughput for every candidate and ranks by
// performance/price (§6.6). Candidates whose evaluation fails (throughput
// <= 0) are kept with zero perf/price so heat-map outputs stay rectangular.
func Search(candidates []Hierarchy, throughput func(Hierarchy) float64) []Result {
	out := make([]Result, 0, len(candidates))
	for _, h := range candidates {
		t := throughput(h)
		c := Cost(h)
		r := Result{Hierarchy: h, Throughput: t, Cost: c}
		if t > 0 && c > 0 {
			r.PerfPrice = t / c
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].PerfPrice > out[j].PerfPrice })
	return out
}

// Best returns the highest perf/price result within an optional budget
// (budget <= 0 means unconstrained).
func Best(results []Result, budget float64) (Result, bool) {
	for _, r := range results {
		if budget > 0 && r.Cost > budget {
			continue
		}
		if r.PerfPrice > 0 {
			return r, true
		}
	}
	return Result{}, false
}
