package design

import (
	"math"
	"testing"
)

func TestCostMatchesFigure14a(t *testing.T) {
	// Spot-check against the cost matrix of Figure 14a (200 GB SSD).
	cases := []struct {
		dram, nvm float64
		want      float64
	}{
		{0, 0, 560},  // SSD only: 200 * 2.8
		{4, 0, 600},  // + 4 GB DRAM * 10
		{4, 40, 780}, // + 40 GB NVM * 4.5
		{4, 80, 960},
		{8, 0, 640},
		{8, 80, 1000},
	}
	for _, c := range cases {
		got := Cost(Hierarchy{DRAMGB: c.dram, NVMGB: c.nvm, SSDGB: 200})
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Cost(DRAM=%g, NVM=%g) = %g, want %g", c.dram, c.nvm, got, c.want)
		}
	}
}

func TestGridShape(t *testing.T) {
	g := Grid()
	if len(g) != 5*4-1 {
		t.Fatalf("grid has %d candidates, want 19", len(g))
	}
	for _, h := range g {
		if h.SSDGB != 200 {
			t.Fatalf("candidate %v lacks the 200 GB SSD", h)
		}
		if h.DRAMGB == 0 && h.NVMGB == 0 {
			t.Fatal("bufferless candidate included")
		}
	}
}

func TestSearchRanksByPerfPrice(t *testing.T) {
	// Synthetic response: throughput grows with buffer bytes but with
	// diminishing returns, so mid-size hierarchies win on perf/price.
	tput := func(h Hierarchy) float64 {
		buf := h.DRAMGB*2 + h.NVMGB // DRAM counts double
		return 1e5 * buf / (buf + 50)
	}
	res := Search(Grid(), tput)
	for i := 1; i < len(res); i++ {
		if res[i].PerfPrice > res[i-1].PerfPrice {
			t.Fatalf("results not sorted at %d", i)
		}
	}
	best, ok := Best(res, 0)
	if !ok {
		t.Fatal("no best result")
	}
	if best.PerfPrice != res[0].PerfPrice {
		t.Fatal("Best disagrees with sort order")
	}
	// A budget below the cheapest candidate yields nothing.
	if _, ok := Best(res, 1); ok {
		t.Fatal("impossible budget produced a result")
	}
	// A tight budget excludes expensive hierarchies.
	budget := 700.0
	capped, ok := Best(res, budget)
	if !ok {
		t.Fatal("feasible budget produced nothing")
	}
	if capped.Cost > budget {
		t.Fatalf("Best returned cost %g over budget %g", capped.Cost, budget)
	}
}

func TestSearchHandlesFailures(t *testing.T) {
	res := Search(Grid(), func(Hierarchy) float64 { return 0 })
	for _, r := range res {
		if r.PerfPrice != 0 {
			t.Fatal("zero-throughput candidate got nonzero perf/price")
		}
	}
	if _, ok := Best(res, 0); ok {
		t.Fatal("Best found a candidate among failures")
	}
}
