package vet_test

import (
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spitfire-db/spitfire/internal/vet"
)

// fixtureConfig points the analyzers at the fixture module, whose packages
// play the roles of the real tree (fix/devio = internal/device, fix/obs =
// internal/obs, …).
func fixtureConfig(t *testing.T) vet.Config {
	t.Helper()
	return vet.Config{
		Dir:              filepath.Join("testdata", "mod"),
		DeterminismScope: []string{"fix/determ"},
		ErrPackages:      []string{"fix/devio"},
		IOPackages:       []string{"fix/devio"},
		ObsTypes:         []string{"fix/obs.Obs", "fix/obs.Histogram"},
		ObsScope:         []string{"fix/obsuse"},
		Warn: func(format string, args ...any) {
			t.Logf(format, args...)
		},
	}
}

// TestFixturesFireEachCheck runs the full suite over the fixture module and
// compares findings against the `// want <check>` markers in the fixtures
// (plus the implied "vet" findings at malformed //vet:allow directives).
// Exact set equality also proves that the clean code paths stay silent and
// that well-formed //vet:allow directives suppress.
func TestFixturesFireEachCheck(t *testing.T) {
	cfg := fixtureConfig(t)
	findings, err := vet.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	got := map[string]int{}
	perCheck := map[string]int{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Check)]++
		perCheck[f.Check]++
	}

	want, err := expectedFindings(cfg.Dir)
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}

	for k, n := range want {
		if got[k] != n {
			t.Errorf("want %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Errorf("unexpected finding at %s (%d)", k, n)
		}
	}

	for _, check := range vet.AllChecks {
		if perCheck[check] == 0 {
			t.Errorf("check %q produced no findings on its fixture", check)
		}
	}
}

// expectedFindings scans the fixture tree for `// want <check>` markers and
// for malformed //vet:allow directives (which must surface as check "vet").
func expectedFindings(dir string) (map[string]int, error) {
	want := map[string]int{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			lineNo := i + 1
			if idx := strings.LastIndex(line, "// want "); idx >= 0 {
				check := strings.TrimSpace(line[idx+len("// want "):])
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(path), lineNo, check)]++
			}
			trimmed := strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(trimmed, "//vet:allow"); ok {
				fields := strings.Fields(rest)
				if len(fields) < 2 || !knownCheck(fields[0]) {
					want[fmt.Sprintf("%s:%d:vet", filepath.ToSlash(path), lineNo)]++
				}
			}
		}
		return nil
	})
	return want, err
}

func knownCheck(id string) bool {
	for _, c := range vet.AllChecks {
		if c == id {
			return true
		}
	}
	return false
}

// TestCheckSubset proves -checks style filtering: with only droppederr
// enabled, the determinism fixture stays silent.
func TestCheckSubset(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Checks = []string{"droppederr"}
	findings, err := vet.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("droppederr-only run found nothing")
	}
	for _, f := range findings {
		// Directive hygiene ("vet" findings) is enforced regardless of the
		// check filter; everything else must be droppederr.
		if f.Check != "droppederr" && f.Check != "vet" {
			t.Errorf("unexpected check %q in filtered run: %s", f.Check, f)
		}
	}
}

// TestFindingString pins the canonical "file:line: [check-id] msg" key.
func TestFindingString(t *testing.T) {
	f := vet.Finding{
		Pos:   token.Position{Filename: "internal/core/flush.go", Line: 205},
		Check: "latchorder",
		Msg:   "example",
	}
	want := "internal/core/flush.go:205: [latchorder] example"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
