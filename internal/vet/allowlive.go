package vet

import (
	"go/ast"
	"go/token"
)

// checkAllowLive verifies that every //vet:allow directive's reason is
// anchored to the code it excuses: at least one identifier-like token of
// the reason must name a symbol declared in the same package (a top-level
// func or method, type, const, var, or a field of a top-level struct).
//
// Suppression reasons rot silently — "allocDeadline is a host-side bound"
// stops meaning anything the day allocDeadline is renamed, and nothing
// forces the stale comment to follow. Anchoring the reason to a live
// symbol makes the rot visible: rename or delete the symbol and the
// directive's reason fails this check until it is rewritten against the
// code that actually exists.
func checkAllowLive(p *pass) {
	names := declaredNames(p.unit.files)
	// Malformed directives are already reported by applyAllows; stay quiet
	// about them here.
	discard := func(pos token.Pos, check, format string, args ...any) {}
	for _, f := range p.unit.files {
		for _, d := range parseAllows(p.fset, f, discard) {
			if reasonNamesLive(d.reason, names) {
				continue
			}
			p.report(d.pos, "allowlive",
				"//vet:allow %s reason names no symbol declared in this package (anchor the reason to a live identifier, e.g. the deadline var or function it excuses)",
				d.check)
		}
	}
}

// declaredNames collects the package's top-level identifiers: functions and
// methods, types (plus their struct field names), consts and vars. Local
// variables are deliberately excluded — a reason should cite the durable
// symbol the exemption is about, not a loop temporary.
func declaredNames(files []*ast.File) map[string]bool {
	names := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				names[d.Name.Name] = true
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						names[s.Name.Name] = true
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, fld := range st.Fields.List {
								for _, n := range fld.Names {
									names[n.Name] = true
								}
							}
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							names[n.Name] = true
						}
					}
				}
			}
		}
	}
	return names
}

// reasonNamesLive reports whether any identifier-like token of the reason
// matches a declared name. Matching is case-sensitive: "clock" in prose
// does not accidentally satisfy a Clock type.
func reasonNamesLive(reason string, names map[string]bool) bool {
	for _, tok := range identTokens(reason) {
		if names[tok] {
			return true
		}
	}
	return false
}

// identTokens splits free text into maximal identifier-shaped runs
// ([A-Za-z_][A-Za-z0-9_]*), so "allocDeadline is host-side" yields
// {"allocDeadline", "is", "host", "side"}.
func identTokens(s string) []string {
	var out []string
	start := -1
	isIdent := func(c byte, first bool) bool {
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
			return true
		case c >= '0' && c <= '9':
			return !first
		}
		return false
	}
	for i := 0; i <= len(s); i++ {
		if i < len(s) && isIdent(s[i], start < 0) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}
