package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkLatchOrder enforces the descriptor locking discipline documented in
// internal/core/descriptor.go:
//
//  1. Tier latches of one descriptor are taken in the fixed order
//     latchD → latchN → latchS. Skipping a tier is fine; reordering is not.
//  2. mu is a leaf lock: no latch acquisition and no device/vclock/WAL call
//     may happen while any mu is held.
//  3. A thread already holding a tier latch may touch a second descriptor's
//     tier latches only via TryLock — a blocking Lock on a second
//     descriptor is a lock-cycle waiting to happen.
//  4. A frame group's fg.mu may be taken under tier latches, but the only
//     acquisition allowed while it is held is descriptor.mu (the
//     fine-grained load path pins the NVM backing under fg.mu; legal
//     because mu is a strict leaf).
//  5. A WAL shard's append mutex is a leaf on the append path; shard→shard
//     acquisitions are legal only while the WAL's flushMu is held (the
//     combining flusher draining shards in index order).
//  6. Under flushMu only shard mutexes may be acquired.
//  7. A buffer-pool shard's free-list mutex (poolShard.mu) is a strict
//     leaf: taking it under tier latches is the normal allocation order,
//     but nothing — not even another pool shard's mutex — may be acquired
//     while one is held. Work-stealing drops the dry shard's mutex before
//     probing the next shard.
//
// The analysis is intra-function: it simulates the held-latch set over each
// function body, recognizing both the raw field forms (d.latchN.Lock(),
// fg.mu.Lock(), sh.mu.Lock(), m.flushMu.Lock()) and the lockcheck shim
// methods (d.lockN(), fg.lock(), m.lockShard(sh), m.tryLockFlush(), …). It
// is a static complement to the -tags lockcheck runtime checker, which
// catches the inter-procedural cases this pass cannot see.
func checkLatchOrder(p *pass) {
	for _, f := range p.unit.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &latchWalker{pass: p, held: map[string]map[int]bool{}}
			w.block(fd.Body.List)
		}
	}
}

// Latch ranks, mirroring internal/lockcheck. Lower must be acquired first
// among the tier latches; mu is a strict leaf; fg admits only mu under it;
// the WAL ranks form their own two-level order (flushMu → shard mu).
const (
	rankD        = 1
	rankN        = 2
	rankS        = 3
	rankMu       = 4
	rankFg       = 5
	rankWALShard = 6
	rankWALFlush = 7
	rankBMShard  = 8
)

func rankName(r int) string {
	switch r {
	case rankD:
		return "latchD"
	case rankN:
		return "latchN"
	case rankS:
		return "latchS"
	case rankMu:
		return "mu"
	case rankFg:
		return "fg.mu"
	case rankWALShard:
		return "shard.mu"
	case rankWALFlush:
		return "flushMu"
	case rankBMShard:
		return "pool.shard"
	}
	return "?"
}

// latchOp is one classified latch call site.
type latchOp struct {
	base ast.Expr // the descriptor expression
	rank int
	kind string // "lock", "try", "unlock"
}

// latchWalker simulates the held-latch set over one function body.
// held maps a canonical descriptor expression to the set of ranks held.
type latchWalker struct {
	pass *pass
	held map[string]map[int]bool
}

func (w *latchWalker) clone() *latchWalker {
	c := &latchWalker{pass: w.pass, held: map[string]map[int]bool{}}
	for base, ranks := range w.held {
		rs := map[int]bool{}
		for r := range ranks {
			rs[r] = true
		}
		c.held[base] = rs
	}
	return c
}

func (w *latchWalker) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		w.stmt(st)
	}
}

func (w *latchWalker) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := w.pass.latchCall(call); ok {
				w.apply(op, call.Pos())
				return
			}
		}
		w.scanExpr(s.X)
	case *ast.IfStmt:
		w.ifStmt(s)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			// `got := d.latchN.TryLock()` followed by a branch: assume the
			// success path so inversions on it are still caught.
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				if op, ok := w.pass.latchCall(call); ok && op.kind == "try" {
					w.apply(op, call.Pos())
					continue
				}
			}
			w.scanExpr(r)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the latch held to the end of the linear
		// walk, which is exactly the model we want. A deferred closure runs
		// after the function's latches are gone.
		w.scanFuncLits(s.Call)
	case *ast.GoStmt:
		w.scanFuncLits(s.Call)
		for _, a := range s.Call.Args {
			w.scanExpr(a)
		}
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond)
		}
		w.clone().block(s.Body.List)
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.clone().block(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.clone().block(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.clone().block(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.clone().block(cc.Body)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
	case *ast.IncDecStmt:
		w.scanExpr(s.X)
	}
}

// ifStmt handles the TryLock idioms:
//
//	if !d.tryLockN() { return }   // held after the if
//	if d.tryLockN() { ...body... } // held inside the body only
func (w *latchWalker) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		w.stmt(s.Init)
	}
	cond := ast.Unparen(s.Cond)

	// Negated try: `if !try { ... }`.
	if un, ok := cond.(*ast.UnaryExpr); ok && un.Op == token.NOT {
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok {
			if op, ok := w.pass.latchCall(call); ok && op.kind == "try" {
				w.clone().block(s.Body.List) // failure path: not held
				if s.Else != nil {
					els := w.clone()
					els.apply(op, call.Pos())
					els.elseBranch(s.Else)
				}
				if terminates(s.Body) {
					w.apply(op, call.Pos()) // success path continues below
				}
				return
			}
		}
	}
	// Positive try: `if try { ... }`.
	if call, ok := cond.(*ast.CallExpr); ok {
		if op, ok := w.pass.latchCall(call); ok && op.kind == "try" {
			then := w.clone()
			then.apply(op, call.Pos())
			then.block(s.Body.List)
			if s.Else != nil {
				w.clone().elseBranch(s.Else)
			}
			return
		}
	}

	w.scanExpr(s.Cond)
	w.clone().block(s.Body.List)
	if s.Else != nil {
		w.clone().elseBranch(s.Else)
	}
}

func (w *latchWalker) elseBranch(s ast.Stmt) {
	switch e := s.(type) {
	case *ast.BlockStmt:
		w.block(e.List)
	case *ast.IfStmt:
		w.ifStmt(e)
	}
}

// scanExpr visits an expression for nested latch calls, I/O-under-mu
// violations and function literals.
func (w *latchWalker) scanExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			inner := &latchWalker{pass: w.pass, held: map[string]map[int]bool{}}
			inner.block(x.Body.List)
			return false
		case *ast.CallExpr:
			if op, ok := w.pass.latchCall(x); ok {
				w.apply(op, x.Pos())
				return true
			}
			w.ioCheck(x)
		}
		return true
	})
}

// scanFuncLits visits only the function literals of a call (for go/defer,
// whose direct call does not execute at this program point).
func (w *latchWalker) scanFuncLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			inner := &latchWalker{pass: w.pass, held: map[string]map[int]bool{}}
			inner.block(fl.Body.List)
			return false
		}
		return true
	})
}

// apply mutates the held set for one latch operation, reporting violations.
func (w *latchWalker) apply(op latchOp, pos token.Pos) {
	base := exprKey(op.base)
	switch op.kind {
	case "unlock":
		if rs := w.held[base]; rs != nil {
			delete(rs, op.rank)
			if len(rs) == 0 {
				delete(w.held, base)
			}
		}
		return
	}

	// Rule 2 (mu is a leaf): nothing is acquired while any mu is held.
	for heldBase, rs := range w.held {
		if rs[rankMu] {
			w.pass.report(pos, "latchorder",
				"acquiring %s.%s while %s.mu is held (mu is a leaf lock: acquire nothing under it)",
				base, rankName(op.rank), heldBase)
			break
		}
	}

	// Rule 4 (frame groups): only descriptor.mu may be acquired under fg.mu.
	if op.rank != rankMu {
		for heldBase, rs := range w.held {
			if rs[rankFg] {
				w.pass.report(pos, "latchorder",
					"acquiring %s.%s while %s (a frame-group lock) is held (only descriptor.mu may be taken under fg.mu)",
					base, rankName(op.rank), heldBase)
				break
			}
		}
	}

	// Rule 7 (BM pool shards): a pool shard's free-list mutex is a strict
	// leaf — nothing may be acquired while one is held (work-stealing drops
	// the dry shard before probing the next).
	for heldBase, rs := range w.held {
		if rs[rankBMShard] {
			w.pass.report(pos, "latchorder",
				"acquiring %s.%s while %s (a buffer-pool shard mutex) is held (pool shards are strict leaves: drop one shard before probing the next)",
				base, rankName(op.rank), heldBase)
			break
		}
	}

	// Rules 5 and 6 (WAL order): a shard mutex is a leaf on the append path —
	// shard→shard only under flushMu (the combining flusher) — and flushMu
	// admits nothing but shard mutexes under it.
	flushHeld := false
	for _, rs := range w.held {
		if rs[rankWALFlush] {
			flushHeld = true
			break
		}
	}
	for heldBase, rs := range w.held {
		if rs[rankWALShard] && !(op.rank == rankWALShard && flushHeld) {
			w.pass.report(pos, "latchorder",
				"acquiring %s.%s while %s (a WAL shard mutex) is held (shard mutexes are leaves on the append path; shard→shard only under flushMu)",
				base, rankName(op.rank), heldBase)
			break
		}
	}
	if flushHeld && op.rank != rankWALShard {
		w.pass.report(pos, "latchorder",
			"acquiring %s.%s while flushMu is held (only shard mutexes may be taken under flushMu)",
			base, rankName(op.rank))
	}

	if op.rank == rankMu {
		if w.held[base] != nil && w.held[base][rankMu] {
			w.pass.report(pos, "latchorder",
				"re-acquiring %s.mu already held on this path", base)
		}
		w.hold(base, op.rank)
		return
	}

	// Rule 1 (tier order on one descriptor): a new tier latch must outrank
	// every tier latch already held on the same descriptor. Only the tier
	// ranks participate — fg/WAL locks have their own rules above.
	if rs := w.held[base]; rs != nil && op.rank <= rankS {
		for r := range rs {
			if r <= rankS && r >= op.rank {
				w.pass.report(pos, "latchorder",
					"acquiring %s.%s while holding %s.%s (tier order is latchD → latchN → latchS)",
					base, rankName(op.rank), base, rankName(r))
				break
			}
		}
	}

	// Rule 3 (second descriptor): blocking Lock of a tier latch is illegal
	// while any other descriptor's tier latch is held. Tier latches only:
	// taking fg.mu or a WAL lock under a tier latch is the normal order.
	if op.kind == "lock" && op.rank <= rankS {
	outer:
		for heldBase, rs := range w.held {
			if heldBase == base {
				continue
			}
			for r := range rs {
				if r <= rankS {
					w.pass.report(pos, "latchorder",
						"blocking Lock of %s.%s while holding %s.%s on another descriptor (use TryLock for second descriptors)",
						base, rankName(op.rank), heldBase, rankName(r))
					break outer
				}
			}
		}
	}

	w.hold(base, op.rank)
}

func (w *latchWalker) hold(base string, rank int) {
	if w.held[base] == nil {
		w.held[base] = map[int]bool{}
	}
	w.held[base][rank] = true
}

// muHeld reports whether any descriptor's mu is in the held set.
func (w *latchWalker) muHeld() (string, bool) {
	for base, rs := range w.held {
		if rs[rankMu] {
			return base, true
		}
	}
	return "", false
}

// ioCheck flags a call into the device/vclock/WAL surface while mu is held.
func (w *latchWalker) ioCheck(call *ast.CallExpr) {
	muBase, ok := w.muHeld()
	if !ok {
		return
	}
	fn := w.pass.calleeIn(call, w.pass.cfg.IOPackages)
	if fn == nil {
		return
	}
	w.pass.report(call.Pos(), "latchorder",
		"call to %s.%s while %s.mu is held (mu is a leaf lock: no device/vclock I/O under it)",
		pkgShort(fn), fn.Name(), muBase)
}

// calleeIn resolves a call's static callee when it belongs to one of the
// given import-path suffixes.
func (p *pass) calleeIn(call *ast.CallExpr, pkgs []string) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.unit.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.unit.info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), pkgs) {
		return nil
	}
	return fn
}

// latchShims maps the internal/core shim method names to (rank, kind).
var latchShims = map[string]latchOp{
	"lockD":     {rank: rankD, kind: "lock"},
	"tryLockD":  {rank: rankD, kind: "try"},
	"unlockD":   {rank: rankD, kind: "unlock"},
	"lockN":     {rank: rankN, kind: "lock"},
	"tryLockN":  {rank: rankN, kind: "try"},
	"unlockN":   {rank: rankN, kind: "unlock"},
	"lockS":     {rank: rankS, kind: "lock"},
	"tryLockS":  {rank: rankS, kind: "try"},
	"unlockS":   {rank: rankS, kind: "unlock"},
	"lockMu":    {rank: rankMu, kind: "lock"},
	"tryLockMu": {rank: rankMu, kind: "try"},
	"unlockMu":  {rank: rankMu, kind: "unlock"},
}

func latchFieldRank(name string) int {
	switch name {
	case "latchD":
		return rankD
	case "latchN":
		return rankN
	case "latchS":
		return rankS
	case "mu":
		return rankMu
	}
	return 0
}

// latchCall classifies one call expression as a latch operation on a
// descriptor-shaped value, recognizing the raw field form
// (d.latchN.Lock() / .TryLock() / .Unlock()) and the shim method form
// (d.lockN() / d.tryLockN() / d.unlockN()).
func (p *pass) latchCall(call *ast.CallExpr) (latchOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return latchOp{}, false
	}
	name := sel.Sel.Name

	// Raw field form: <base>.<latchField>.<Lock|TryLock|Unlock>().
	var kind string
	switch name {
	case "Lock":
		kind = "lock"
	case "TryLock":
		kind = "try"
	case "Unlock":
		kind = "unlock"
	}
	if kind != "" {
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return latchOp{}, false
		}
		baseT := p.unit.info.Types[inner.X].Type
		switch {
		case inner.Sel.Name == "mu" && p.isFrameGroupType(baseT):
			return latchOp{base: inner.X, rank: rankFg, kind: kind}, true
		case inner.Sel.Name == "mu" && p.isWALShardType(baseT):
			return latchOp{base: inner.X, rank: rankWALShard, kind: kind}, true
		case inner.Sel.Name == "mu" && p.isBMShardType(baseT):
			return latchOp{base: inner.X, rank: rankBMShard, kind: kind}, true
		case inner.Sel.Name == "flushMu" && p.isWALManagerType(baseT):
			return latchOp{base: inner.X, rank: rankWALFlush, kind: kind}, true
		}
		rank := latchFieldRank(inner.Sel.Name)
		if rank == 0 || !p.isDescriptorType(baseT) {
			return latchOp{}, false
		}
		return latchOp{base: inner.X, rank: rank, kind: kind}, true
	}

	// Frame-group shim form: fg.lock() / fg.unlock() on an fgState-shaped
	// receiver. The generic names make the type gate load-bearing.
	if name == "lock" || name == "unlock" {
		if p.isFrameGroupType(p.unit.info.Types[sel.X].Type) {
			k := "lock"
			if name == "unlock" {
				k = "unlock"
			}
			return latchOp{base: sel.X, rank: rankFg, kind: k}, true
		}
		return latchOp{}, false
	}

	// Shard shim forms carry the shard as an argument, so the *argument* is
	// the latch's base. The receiver's shape picks the rank: a WAL manager
	// (flushMu) routes to the WAL shard rank, a buffer pool (shards +
	// freeLen) to the pool shard rank.
	if name == "lockShard" || name == "unlockShard" {
		if len(call.Args) == 1 {
			recvT := p.unit.info.Types[sel.X].Type
			k := "lock"
			if name == "unlockShard" {
				k = "unlock"
			}
			if p.isWALManagerType(recvT) {
				return latchOp{base: call.Args[0], rank: rankWALShard, kind: k}, true
			}
			if p.isBMPoolType(recvT) {
				return latchOp{base: call.Args[0], rank: rankBMShard, kind: k}, true
			}
		}
		return latchOp{}, false
	}
	if name == "lockFlush" || name == "tryLockFlush" || name == "unlockFlush" {
		if p.isWALManagerType(p.unit.info.Types[sel.X].Type) {
			k := "lock"
			switch name {
			case "tryLockFlush":
				k = "try"
			case "unlockFlush":
				k = "unlock"
			}
			return latchOp{base: sel.X, rank: rankWALFlush, kind: k}, true
		}
		return latchOp{}, false
	}

	// Descriptor shim method form.
	op, ok := latchShims[name]
	if !ok || !p.isDescriptorType(p.unit.info.Types[sel.X].Type) {
		return latchOp{}, false
	}
	op.base = sel.X
	return op, true
}

// isFrameGroupType reports whether t (possibly a pointer) is shaped like
// internal/core's fgState: a struct with a mu sync.Mutex plus resident and
// dirty bitmap fields. Only on such structs does a bare lock()/unlock()
// method or a .mu field carry frame-group locking semantics.
func (p *pass) isFrameGroupType(t types.Type) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	var hasMu, hasResident, hasDirty bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "mu":
			hasMu = isSyncMutex(f.Type())
		case "resident":
			hasResident = true
		case "dirty":
			hasDirty = true
		}
	}
	return hasMu && hasResident && hasDirty
}

// isWALShardType recognizes internal/wal's walShard shape: a struct with a
// mu sync.Mutex and a bufOff append cursor.
func (p *pass) isWALShardType(t types.Type) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	var hasMu, hasBufOff bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "mu":
			hasMu = isSyncMutex(f.Type())
		case "bufOff":
			hasBufOff = true
		}
	}
	return hasMu && hasBufOff
}

// isBMShardType recognizes internal/core's poolShard shape: a struct with a
// mu sync.Mutex and a freeN free-list depth counter.
func (p *pass) isBMShardType(t types.Type) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	var hasMu, hasFreeN bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "mu":
			hasMu = isSyncMutex(f.Type())
		case "freeN":
			hasFreeN = true
		}
	}
	return hasMu && hasFreeN
}

// isBMPoolType recognizes internal/core's basePool shape: a struct with a
// shards slice and a freeLen aggregate counter.
func (p *pass) isBMPoolType(t types.Type) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	var hasShards, hasFreeLen bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "shards":
			hasShards = true
		case "freeLen":
			hasFreeLen = true
		}
	}
	return hasShards && hasFreeLen
}

// isWALManagerType recognizes internal/wal's Manager shape: any struct with
// a flushMu sync.Mutex.
func (p *pass) isWALManagerType(t types.Type) bool {
	st := structOf(t)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "flushMu" && isSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

// structOf strips pointers and returns t's underlying struct, or nil.
func structOf(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// isDescriptorType reports whether t (possibly a pointer) is a struct with
// at least one tier-latch field (latchD/latchN/latchS of type sync.Mutex) —
// the structural signature of a page descriptor. Only on such structs do
// the field names carry locking semantics.
func (p *pass) isDescriptorType(t types.Type) bool {
	if t == nil {
		return false
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if latchFieldRank(f.Name()) == 0 || f.Name() == "mu" {
			continue
		}
		if isSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	return pkg == "sync" && (name == "Mutex" || name == "RWMutex")
}
