package vet

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read or wait on
// the host's wall clock. time.NewTicker/NewTimer are deliberately absent:
// background goroutines (the page cleaner) legitimately pace themselves on
// wall time, which cannot leak into simulated-time results.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
	"After": true,
	"Tick":  true,
}

// globalRandFuncs are the math/rand functions that draw from the shared,
// unseeded global source. Constructors (New, NewSource, NewZipf) are fine:
// the repo's convention is per-worker seeded RNGs (internal/zipf.Rand).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint64N": true,
	"Uint": true, "Uint32N": true,
}

// checkDeterminism flags wall-clock and global-RNG use inside the simulated
// packages (cfg.DeterminismScope): reproducible sweeps (§6) require every
// latency to come from internal/vclock and every coin flip from a seeded
// per-worker RNG.
func checkDeterminism(p *pass) {
	if !pathContains(p.unit.path, p.cfg.DeterminismScope) {
		return
	}
	for _, f := range p.unit.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.unit.info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					p.report(sel.Pos(), "determinism",
						"wall-clock call time.%s in simulated package %s (use internal/vclock)",
						sel.Sel.Name, p.unit.path)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[sel.Sel.Name] {
					p.report(sel.Pos(), "determinism",
						"global math/rand source rand.%s in simulated package %s (use a seeded per-worker RNG)",
						sel.Sel.Name, p.unit.path)
				}
			}
			return true
		})
	}
}
