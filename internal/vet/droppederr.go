package vet

import (
	"go/ast"
	"go/types"
)

// checkDroppedErr flags call sites that discard an error result from the
// fault-injected layers (cfg.ErrPackages): a bare call statement, a
// blank-assigned error, or a go/defer of an error-returning call. Those
// errors carry the typed fault classification (device.ErrTransient & co.)
// that PR 2's retry/degradation hardening depends on; dropping one silently
// converts an injected fault into data loss.
func checkDroppedErr(p *pass) {
	for _, f := range p.unit.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					p.flagIfDropsErr(call, "result discarded by bare call")
				}
			case *ast.GoStmt:
				p.flagIfDropsErr(st.Call, "result discarded by go statement")
			case *ast.DeferStmt:
				p.flagIfDropsErr(st.Call, "result discarded by defer")
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := p.errSourceCallee(call)
				if fn == nil {
					return true
				}
				res := fn.Type().(*types.Signature).Results()
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" || i >= res.Len() {
						continue
					}
					if isErrorType(res.At(i).Type()) {
						p.report(call.Pos(), "droppederr",
							"error result of %s.%s blank-assigned", pkgShort(fn), fn.Name())
					}
				}
			}
			return true
		})
	}
}

// flagIfDropsErr reports call if its callee comes from an ErrPackages
// package and returns an error that the statement form cannot consume.
func (p *pass) flagIfDropsErr(call *ast.CallExpr, how string) {
	fn := p.errSourceCallee(call)
	if fn == nil {
		return
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			p.report(call.Pos(), "droppederr",
				"error %s: %s.%s", how, pkgShort(fn), fn.Name())
			return
		}
	}
}

// errSourceCallee resolves call's static callee and returns it only when it
// is a function (or method) defined in one of cfg.ErrPackages.
func (p *pass) errSourceCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.unit.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.unit.info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if !pathMatches(fn.Pkg().Path(), p.cfg.ErrPackages) {
		return nil
	}
	return fn
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func pkgShort(fn *types.Func) string {
	if fn.Pkg() == nil {
		return "?"
	}
	return fn.Pkg().Name()
}
