package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkObsGuard flags method calls on the observability types (cfg.ObsTypes:
// *obs.Obs, *obs.Ring, *metrics.Histogram) that are not dominated by a nil
// check. The disabled fast path costs one pointer nil-check per operation
// (~92 ns on a DRAM hit, DESIGN.md §5-quater); an unguarded Observe/Emit on
// a hot path would either pay clock reads with observability off or panic on
// the nil histogram pointers a disabled manager carries.
//
// The domination analysis is a pragmatic intra-function walk, not SSA: a
// call is considered guarded when it sits under (a) an if-condition that
// checked its receiver expression against nil, (b) any active nil check of a
// *obs.Obs-typed expression — the codebase's convention is that the cached
// histogram/ring pointers are non-nil exactly when the Obs pointer is — or
// (c) a receiver chained from a local built by an obs/metrics constructor in
// the same function (provably non-nil).
func checkObsGuard(p *pass) {
	if !pathContains(p.unit.path, p.cfg.ObsScope) {
		return
	}
	// The packages defining the observability types check their own
	// receivers (nil-receiver methods are part of their API contract).
	for _, t := range p.cfg.ObsTypes {
		if i := strings.LastIndex(t, "."); i > 0 && p.unit.path == t[:i] {
			return
		}
	}
	for _, f := range p.unit.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := &guardWalker{pass: p, env: map[string]types.Type{}, locals: map[types.Object]bool{}}
			g.block(fd.Body.List)
		}
		// Function literals at file scope (var initializers) are rare;
		// literals inside functions are visited by the walker itself.
	}
}

// guardWalker walks one function body tracking which expressions are known
// non-nil on the current path.
type guardWalker struct {
	pass *pass
	// env maps canonical expression strings known non-nil to their type.
	env map[string]types.Type
	// locals marks objects assigned from an obs/metrics constructor call.
	locals map[types.Object]bool
}

func (g *guardWalker) clone() *guardWalker {
	c := &guardWalker{pass: g.pass, env: map[string]types.Type{}, locals: map[types.Object]bool{}}
	for k, v := range g.env {
		c.env[k] = v
	}
	for k, v := range g.locals {
		c.locals[k] = v
	}
	return c
}

// block analyzes a statement list, mutating g.env as guards accumulate.
func (g *guardWalker) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		g.stmt(st)
	}
}

func (g *guardWalker) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			g.stmt(s.Init)
		}
		g.exprs(s.Cond)
		pos, neg := splitNilChecks(g.pass, s.Cond)
		then := g.clone()
		for k, t := range pos {
			then.env[k] = t
		}
		then.block(s.Body.List)
		if s.Else != nil {
			els := g.clone()
			for k, t := range neg {
				els.env[k] = t
			}
			g.elseStmt(els, s.Else)
		}
		// Early-exit pattern: `if x == nil { return }` guards the rest of
		// the enclosing block.
		if s.Else == nil && terminates(s.Body) {
			for k, t := range neg {
				g.env[k] = t
			}
		}
	case *ast.BlockStmt:
		g.clone().block(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			g.stmt(s.Init)
		}
		if s.Cond != nil {
			g.exprs(s.Cond)
		}
		g.clone().block(s.Body.List)
	case *ast.RangeStmt:
		g.exprs(s.X)
		g.clone().block(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init)
		}
		if s.Tag != nil {
			g.exprs(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					g.exprs(e)
				}
				g.clone().block(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.clone().block(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				g.clone().block(cc.Body)
			}
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			g.exprs(r)
		}
		g.trackConstructor(s)
		// An assignment to a guarded expression invalidates its guard.
		for _, l := range s.Lhs {
			delete(g.env, exprKey(l))
		}
	case *ast.ExprStmt:
		g.exprs(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			g.exprs(r)
		}
	case *ast.GoStmt:
		g.exprs(s.Call)
	case *ast.DeferStmt:
		g.exprs(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.exprs(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		g.stmt(s.Stmt)
	case *ast.SendStmt:
		g.exprs(s.Chan)
		g.exprs(s.Value)
	case *ast.IncDecStmt:
		g.exprs(s.X)
	}
}

func (g *guardWalker) elseStmt(els *guardWalker, s ast.Stmt) {
	switch e := s.(type) {
	case *ast.BlockStmt:
		els.block(e.List)
	case *ast.IfStmt:
		els.stmt(e)
	}
}

// exprs scans an expression tree for protected calls and nested function
// literals.
func (g *guardWalker) exprs(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A closure runs later: guards active here may be stale, but
			// the codebase's closures re-check. Analyze with a fresh env to
			// stay conservative yet closure-local.
			inner := &guardWalker{pass: g.pass, env: map[string]types.Type{}, locals: g.locals}
			inner.block(x.Body.List)
			return false
		case *ast.CallExpr:
			g.checkCall(x)
		}
		return true
	})
}

// checkCall reports x when it is an unguarded protected method call.
func (g *guardWalker) checkCall(x *ast.CallExpr) {
	sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only method calls (selection on a value, not a package).
	if _, isPkg := g.pass.unit.info.Uses[selRootIdent(sel)].(*types.PkgName); isPkg && selRootIdent(sel) != nil && sel.X == ast.Expr(selRootIdent(sel)) {
		return
	}
	recvType := g.pass.unit.info.Types[sel.X].Type
	tn := protectedTypeName(g.pass, recvType)
	if tn == "" {
		return
	}
	if g.guarded(sel.X) {
		return
	}
	g.pass.report(x.Pos(), "obsguard",
		"call to (*%s).%s not dominated by a nil check (guard it or hoist it under the obs != nil fast-path check)",
		tn, sel.Sel.Name)
}

// guarded reports whether recv is covered by an active guard.
func (g *guardWalker) guarded(recv ast.Expr) bool {
	if _, ok := g.env[exprKey(recv)]; ok {
		return true
	}
	// Convention guard: any live *obs.Obs nil check covers the cached
	// histogram/ring pointers derived from it.
	for _, t := range g.env {
		if n := namedPtrName(t); n != "" && strings.HasSuffix(n, ".Obs") {
			return true
		}
	}
	// Constructor-derived locals are provably non-nil.
	if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
		if obj := g.pass.unit.info.Uses[id]; obj != nil && g.locals[obj] {
			return true
		}
	}
	return false
}

// trackConstructor marks locals assigned from an obs/metrics constructor
// (`o := obs.New(...)`, `h := o.Hist(...)`) as non-nil.
func (g *guardWalker) trackConstructor(s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	retType := g.pass.unit.info.Types[call].Type
	if protectedTypeName(g.pass, retType) == "" {
		return
	}
	// Methods on a protected type returning a protected type (Obs.Hist,
	// Obs.NewRing) only run under a guard themselves; plain constructors
	// (obs.New) always return non-nil. Either way the local is safe only if
	// the call itself was guarded — checkCall already policed that — so
	// record it.
	var obj types.Object
	if def := g.pass.unit.info.Defs[id]; def != nil {
		obj = def
	} else {
		obj = g.pass.unit.info.Uses[id]
	}
	if obj != nil {
		g.locals[obj] = true
	}
}

// splitNilChecks extracts nil-comparison guards from an if condition:
// pos holds expressions non-nil when the condition is true, neg those
// non-nil when it is false.
func splitNilChecks(p *pass, cond ast.Expr) (pos, neg map[string]types.Type) {
	pos, neg = map[string]types.Type{}, map[string]types.Type{}
	var walk func(e ast.Expr, invert bool)
	walk = func(e ast.Expr, invert bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch x.Op.String() {
			case "&&", "||":
				// Conservative: a != nil conjunct guards the true branch of
				// &&; a == nil disjunct guards the false branch of ||.
				walk(x.X, invert)
				walk(x.Y, invert)
			case "!=", "==":
				other, okNil := nilComparand(x)
				if !okNil {
					return
				}
				nonNilWhenTrue := x.Op.String() == "!="
				if invert {
					nonNilWhenTrue = !nonNilWhenTrue
				}
				t := p.unit.info.Types[other].Type
				if nonNilWhenTrue {
					pos[exprKey(other)] = t
				} else {
					neg[exprKey(other)] = t
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "!" {
				walk(x.X, !invert)
			}
		}
	}
	walk(cond, false)
	return pos, neg
}

// nilComparand returns the non-nil side of a comparison against nil.
func nilComparand(b *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilIdent(b.Y) {
		return b.X, true
	}
	if isNilIdent(b.X) {
		return b.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// protectedTypeName returns the short "pkg.Type" name when t is a pointer to
// one of cfg.ObsTypes, else "".
func protectedTypeName(p *pass, t types.Type) string {
	n := namedPtrName(t)
	if n == "" {
		return ""
	}
	for _, want := range p.cfg.ObsTypes {
		if n == want || strings.HasSuffix(n, "/"+shortOf(want)) || n == shortOf(want) {
			i := strings.LastIndex(want, "/")
			return want[i+1:]
		}
	}
	return ""
}

// shortOf reduces "path/to/pkg.Type" to "pkg.Type".
func shortOf(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}

// namedPtrName renders *pkgpath.Type as "pkgpath.Type", else "".
func namedPtrName(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// terminates reports whether a block always leaves the enclosing scope.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// selRootIdent returns sel.X when it is a bare identifier.
func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	id, _ := sel.X.(*ast.Ident)
	return id
}

// exprKey canonicalizes an expression for guard matching.
func exprKey(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(b, x.X)
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.ParenExpr:
		writeExpr(b, x.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, x.X)
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		writeExpr(b, x.X)
	case *ast.IndexExpr:
		writeExpr(b, x.X)
		b.WriteByte('[')
		writeExpr(b, x.Index)
		b.WriteByte(']')
	case *ast.CallExpr:
		writeExpr(b, x.Fun)
		b.WriteString("(…)")
	case *ast.BasicLit:
		b.WriteString(x.Value)
	default:
		b.WriteString("?")
	}
}
