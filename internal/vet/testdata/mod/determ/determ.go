// Package determ is a vet fixture: wall-clock and global-RNG use inside a
// simulated package. The trailing expectation markers on the offending
// lines are parsed by vet_test.go.
package determ

import (
	"math/rand"
	"time"
)

// Tick mixes wall time and the global RNG into "simulation" state.
func Tick() int64 {
	start := time.Now() // want determinism
	n := rand.Intn(10)  // want determinism
	return start.UnixNano() + int64(n)
}

// LastWall is exposition-only and may read the host clock.
//vet:allow determinism LastWall is exposition-only, never feeds simulated time
func LastWall() time.Time { return time.Now() }

// StaleWall carries a suppression whose reason cites nothing that exists:
// the allowlive check flags it even though the determinism finding itself
// stays suppressed.
func StaleWall() time.Time {
	return time.Now() //vet:allow determinism legacy exemption kept from the prototype // want allowlive
}
