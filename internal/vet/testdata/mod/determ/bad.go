package determ

import "time"

// A directive with no reason is itself reported and suppresses nothing.
//vet:allow determinism
func Missing() time.Time { return time.Now() } // want determinism

// An unknown check id is reported and suppresses nothing.
//vet:allow nosuchcheck because reasons
func Unknown() time.Time { return time.Now() } // want determinism
