// Package obs is a vet fixture mirroring the observability layer's shape:
// a facade type plus a histogram handle, both nil when disabled.
package obs

type Obs struct{ n int }

func New() *Obs { return &Obs{} }

func (o *Obs) Emit(ev string) { _ = ev; o.n++ }

type Histogram struct{ sum float64 }

func (o *Obs) Hist(name string) *Histogram { _ = name; return &Histogram{} }

func (h *Histogram) Observe(v float64) { h.sum += v }
