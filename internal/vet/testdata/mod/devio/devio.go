// Package devio is a vet fixture standing in for the fault-injected device
// layer: its error results must never be discarded.
package devio

import "errors"

// ErrTransient mimics the typed fault classification of internal/device.
var ErrTransient = errors.New("transient")

func WriteAt(off int64, b []byte) error { _ = off; _ = b; return ErrTransient }

func ReadAt(off int64, b []byte) (int, error) { _ = off; _ = b; return 0, ErrTransient }

func Sync() error { return nil }

// Size returns no error; calls to it are never flagged.
func Size() int64 { return 0 }
