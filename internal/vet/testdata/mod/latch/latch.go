// Package latch is a vet fixture: a descriptor-shaped struct exercised
// against each rule of the latch discipline.
package latch

import (
	"sync"

	"fix/devio"
)

type descriptor struct {
	latchD sync.Mutex
	latchN sync.Mutex
	latchS sync.Mutex
	mu     sync.Mutex
}

// Shims mirroring internal/core's lockcheck routing.
func (d *descriptor) lockS() { d.latchS.Lock() }

func (d *descriptor) unlockS() { d.latchS.Unlock() }

func (d *descriptor) tryLockN() bool { return d.latchN.TryLock() }

// Inverted acquires tier latches out of order.
func Inverted(d *descriptor) {
	d.latchS.Lock()
	d.latchN.Lock() // want latchorder
	d.latchN.Unlock()
	d.latchS.Unlock()
}

// ShimInverted does the same inversion through the shim methods.
func ShimInverted(d *descriptor) {
	d.lockS()
	if !d.tryLockN() { // want latchorder
		return
	}
	d.latchN.Unlock()
	d.unlockS()
}

// UnderMu acquires a latch and performs device I/O under the leaf lock.
func UnderMu(d *descriptor, b []byte) {
	d.mu.Lock()
	d.latchD.Lock()                             // want latchorder
	if err := devio.WriteAt(0, b); err != nil { // want latchorder
		_ = err
	}
	d.latchD.Unlock()
	d.mu.Unlock()
}

// SecondBlocking takes a blocking tier latch on a second descriptor.
func SecondBlocking(a, b *descriptor) {
	a.latchD.Lock()
	b.latchD.Lock() // want latchorder
	b.latchD.Unlock()
	a.latchD.Unlock()
}

// Clean follows the discipline: tiers in order with skips, TryLock for the
// second descriptor, mu taken strictly as a leaf (nothing under it), and a
// blocking mu on a second descriptor (legal: mu is a leaf everywhere).
func Clean(a, b *descriptor, buf []byte) error {
	a.latchD.Lock()
	defer a.latchD.Unlock()
	if err := devio.WriteAt(0, buf); err != nil { // I/O under tier latch is fine
		return err
	}
	a.latchS.Lock() // skipping latchN is fine
	a.latchS.Unlock()
	if b.latchN.TryLock() {
		b.latchN.Unlock()
	}
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
	return nil
}
