// Package latch is a vet fixture: a descriptor-shaped struct exercised
// against each rule of the latch discipline.
package latch

import (
	"sync"

	"fix/devio"
)

type descriptor struct {
	latchD sync.Mutex
	latchN sync.Mutex
	latchS sync.Mutex
	mu     sync.Mutex
}

// Shims mirroring internal/core's lockcheck routing.
func (d *descriptor) lockS() { d.latchS.Lock() }

func (d *descriptor) unlockS() { d.latchS.Unlock() }

func (d *descriptor) tryLockN() bool { return d.latchN.TryLock() }

// Inverted acquires tier latches out of order.
func Inverted(d *descriptor) {
	d.latchS.Lock()
	d.latchN.Lock() // want latchorder
	d.latchN.Unlock()
	d.latchS.Unlock()
}

// ShimInverted does the same inversion through the shim methods.
func ShimInverted(d *descriptor) {
	d.lockS()
	if !d.tryLockN() { // want latchorder
		return
	}
	d.latchN.Unlock()
	d.unlockS()
}

// UnderMu acquires a latch and performs device I/O under the leaf lock.
func UnderMu(d *descriptor, b []byte) {
	d.mu.Lock()
	d.latchD.Lock()                             // want latchorder
	if err := devio.WriteAt(0, b); err != nil { // want latchorder
		_ = err
	}
	d.latchD.Unlock()
	d.mu.Unlock()
}

// SecondBlocking takes a blocking tier latch on a second descriptor.
func SecondBlocking(a, b *descriptor) {
	a.latchD.Lock()
	b.latchD.Lock() // want latchorder
	b.latchD.Unlock()
	a.latchD.Unlock()
}

// Clean follows the discipline: tiers in order with skips, TryLock for the
// second descriptor, mu taken strictly as a leaf (nothing under it), and a
// blocking mu on a second descriptor (legal: mu is a leaf everywhere).
func Clean(a, b *descriptor, buf []byte) error {
	a.latchD.Lock()
	defer a.latchD.Unlock()
	if err := devio.WriteAt(0, buf); err != nil { // I/O under tier latch is fine
		return err
	}
	a.latchS.Lock() // skipping latchN is fine
	a.latchS.Unlock()
	if b.latchN.TryLock() {
		b.latchN.Unlock()
	}
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
	return nil
}

// fgroup mirrors internal/core's fgState shape: mu plus residency/dirty
// bitmaps. Its bare lock/unlock methods are the frame-group shims.
type fgroup struct {
	mu       sync.Mutex
	resident []uint64
	dirty    []uint64
}

func (fg *fgroup) lock() { fg.mu.Lock() }

func (fg *fgroup) unlock() { fg.mu.Unlock() }

// walShard mirrors internal/wal's shard shape (mu + bufOff cursor).
type walShard struct {
	mu     sync.Mutex
	bufOff int64
}

// walManager mirrors internal/wal's Manager shape (flushMu + shards).
type walManager struct {
	flushMu sync.Mutex
	shards  []*walShard
}

func (m *walManager) lockShard(sh *walShard) { sh.mu.Lock() }

func (m *walManager) unlockShard(sh *walShard) { sh.mu.Unlock() }

func (m *walManager) lockFlush() { m.flushMu.Lock() }

func (m *walManager) tryLockFlush() bool { return m.flushMu.TryLock() }

func (m *walManager) unlockFlush() { m.flushMu.Unlock() }

// FgNotLeaf acquires a tier latch under a frame-group lock.
func FgNotLeaf(d *descriptor, fg *fgroup) {
	fg.lock()
	d.latchD.Lock() // want latchorder
	d.latchD.Unlock()
	fg.unlock()
}

// ShardShardNoFlush chains two WAL shard mutexes outside the flusher.
func ShardShardNoFlush(m *walManager, a, b *walShard) {
	m.lockShard(a)
	m.lockShard(b) // want latchorder
	m.unlockShard(b)
	m.unlockShard(a)
}

// FlushUnderShard inverts the WAL order (flushMu must come first).
func FlushUnderShard(m *walManager, sh *walShard) {
	m.lockShard(sh)
	m.lockFlush() // want latchorder
	m.unlockFlush()
	m.unlockShard(sh)
}

// FlushAdmitsOnlyShards takes a non-shard latch under flushMu.
func FlushAdmitsOnlyShards(m *walManager, d *descriptor) {
	m.lockFlush()
	d.latchD.Lock() // want latchorder
	d.latchD.Unlock()
	m.unlockFlush()
}

// bmShard mirrors internal/core's poolShard shape (mu + freeN free-list
// depth): its mutex is the buffer-pool shard leaf.
type bmShard struct {
	mu    sync.Mutex
	freeN int32
}

// bmPool mirrors internal/core's basePool shape (shards + freeLen).
type bmPool struct {
	shards  []*bmShard
	freeLen int64
}

func (p *bmPool) lockShard(sh *bmShard) { sh.mu.Lock() }

func (p *bmPool) unlockShard(sh *bmShard) { sh.mu.Unlock() }

// PoolShardUnderShard holds two pool shard mutexes at once; work-stealing
// must drop the dry shard before probing the next.
func PoolShardUnderShard(p *bmPool, a, b *bmShard) {
	p.lockShard(a)
	p.lockShard(b) // want latchorder
	p.unlockShard(b)
	p.unlockShard(a)
}

// LatchUnderPoolShard acquires a tier latch under a pool shard mutex (raw
// field form; pool shards are strict leaves).
func LatchUnderPoolShard(sh *bmShard, d *descriptor) {
	sh.mu.Lock()
	d.latchD.Lock() // want latchorder
	d.latchD.Unlock()
	sh.mu.Unlock()
}

// CleanSharded is the legal direction: shard mutexes taken (and dropped)
// under tier latches, one at a time, stealing by releasing the dry shard
// before probing its neighbor.
func CleanSharded(p *bmPool, a, b *bmShard, d *descriptor) {
	d.latchD.Lock()
	d.latchN.Lock()
	p.lockShard(a)
	p.unlockShard(a)
	p.lockShard(b)
	p.unlockShard(b)
	d.latchN.Unlock()
	d.latchD.Unlock()
}

// CleanExtended follows the extended discipline: fg.mu under a tier latch
// with only descriptor.mu beneath it, the shard mutex as an append-path
// leaf, the combining flusher's flushMu → shard order (shim and raw forms),
// and a TryLock skip-out on flushMu.
func CleanExtended(d *descriptor, fg *fgroup, m *walManager, a, b *walShard) {
	d.latchS.Lock()
	fg.lock()
	d.mu.Lock() // the one legal acquisition under fg.mu
	d.mu.Unlock()
	fg.unlock()
	d.latchS.Unlock()

	m.lockShard(a)
	m.unlockShard(a)

	m.lockFlush()
	m.lockShard(a)
	m.unlockShard(a)
	m.lockShard(b)
	m.unlockShard(b)
	m.unlockFlush()

	if !m.tryLockFlush() {
		return
	}
	m.flushMu.Unlock()
}
