// Package dropped is a vet fixture: every way to discard a devio error.
package dropped

import "fix/devio"

func Flush(b []byte) {
	devio.WriteAt(0, b)        // want droppederr
	n, _ := devio.ReadAt(0, b) // want droppederr
	_ = n
	go devio.Sync()    // want droppederr
	defer devio.Sync() // want droppederr

	// Consumed results are clean.
	if err := devio.WriteAt(4, b); err != nil {
		_ = err
	}
	_ = devio.Size() // no error in the signature: clean
}
