// Package obsuse is a vet fixture: consumers of fix/obs with and without
// the nil-check fast path.
package obsuse

import "fix/obs"

type manager struct {
	obs  *obs.Obs
	hist *obs.Histogram
}

// Unguarded emits without a nil check.
func (m *manager) Unguarded() {
	m.obs.Emit("event") // want obsguard
}

// UnguardedHist observes without any guard in scope.
func (m *manager) UnguardedHist(v float64) {
	m.hist.Observe(v) // want obsguard
}

// Guarded is the canonical early-return fast path; the histogram call is
// covered by the convention that cached handles are non-nil iff obs is.
func (m *manager) Guarded(v float64) {
	if m.obs == nil {
		return
	}
	m.obs.Emit("event")
	m.hist.Observe(v)
}

// GuardedBranch guards inside if bodies.
func (m *manager) GuardedBranch(v float64) {
	if m.obs != nil {
		m.obs.Emit("event")
	}
	if m.hist != nil {
		m.hist.Observe(v)
	}
}

// Constructed locals from the obs constructors are provably non-nil.
func Constructed() {
	o := obs.New()
	o.Emit("boot")
	h := o.Hist("lat")
	h.Observe(2)
}
