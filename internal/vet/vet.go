// Package vet implements spitfire-vet, a static-analysis suite for the
// invariants the Go compiler cannot see but this codebase's correctness
// rests on (DESIGN.md §5-quinquies):
//
//   - determinism: no wall-clock or global-RNG use inside the simulation
//     packages — simulated time (internal/vclock) and seeded per-worker RNGs
//     are what make experiment results reproducible.
//   - droppederr: no discarded error results from the fault-injected I/O
//     layers (internal/device, internal/wal, internal/core) — the failure
//     mode the retry/degradation hardening exists to prevent.
//   - latchorder: descriptor tier latches acquired in the fixed order
//     latchD → latchN → latchS, mu used strictly as a leaf lock (no latch
//     acquisition and no device/vclock call while it is held), and no
//     blocking acquisition of a second descriptor's tier latch.
//   - obsguard: calls into the observability layer (*obs.Obs, *obs.Ring,
//     *metrics.Histogram) dominated by a nil check, protecting the ~92 ns
//     disabled fast path.
//   - allowlive: every //vet:allow reason names a symbol declared in its
//     package, so suppression justifications rot visibly when the code
//     they cite is renamed or removed.
//
// The implementation uses only the standard library (go/parser, go/ast,
// go/types and the stdlib source importer) — no golang.org/x/tools — per
// the repo's stdlib-only rule. Findings are keyed "file:line: [check-id]"
// and can be suppressed inline with
//
//	//vet:allow <check-id> <reason>
//
// placed on the offending line or on the line directly above it.
package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the canonical "file:line: [check-id] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// AllChecks lists the check identifiers in their documented order.
var AllChecks = []string{"determinism", "droppederr", "latchorder", "obsguard", "allowlive"}

// Config configures a vet run. The zero value (plus Dir) analyzes every
// non-test package under Dir with all four checks and the defaults below.
type Config struct {
	// Dir is the module root (or, for fixture runs, a bare package
	// directory with no go.mod). Defaults to ".".
	Dir string

	// Patterns selects what to analyze: "./..." (default), "sub/dir/...",
	// or plain package directories relative to Dir.
	Patterns []string

	// Checks restricts the run to a subset of AllChecks. Empty = all.
	Checks []string

	// IncludeTests also analyzes _test.go files (off by default: tests
	// legitimately use wall-clock deadlines and discard cleanup errors).
	IncludeTests bool

	// DeterminismScope limits the determinism check to packages whose
	// import path contains one of these substrings.
	// Default: {"/internal/"}.
	DeterminismScope []string

	// ErrPackages lists import-path suffixes whose functions' error
	// results must never be discarded.
	// Default: {"internal/device", "internal/wal", "internal/core"}.
	ErrPackages []string

	// ObsTypes lists the "package/path.Type" names whose method calls must
	// be nil-guarded. Default: internal/obs.Obs, internal/obs.Ring,
	// internal/metrics.Histogram.
	ObsTypes []string

	// ObsScope limits the obsguard check to packages whose import path
	// contains one of these substrings (the packages defining ObsTypes are
	// always exempt). Default: {"/internal/"}.
	ObsScope []string

	// IOPackages lists import-path suffixes considered device-I/O or
	// simulated-clock surface for latchorder's mu-is-a-leaf rule.
	// Default: {"internal/device", "internal/ssd", "internal/pmem",
	// "internal/vclock", "internal/wal"}.
	IOPackages []string

	// Warn receives non-fatal loader diagnostics (type-check hiccups in
	// packages the source importer could not fully resolve). Nil discards.
	Warn func(format string, args ...any)
}

func (cfg *Config) withDefaults() *Config {
	c := *cfg
	if c.Dir == "" {
		c.Dir = "."
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if len(c.Checks) == 0 {
		c.Checks = AllChecks
	}
	if len(c.DeterminismScope) == 0 {
		c.DeterminismScope = []string{"/internal/"}
	}
	if len(c.ErrPackages) == 0 {
		c.ErrPackages = []string{"internal/device", "internal/wal", "internal/core"}
	}
	if len(c.ObsTypes) == 0 {
		c.ObsTypes = []string{
			"github.com/spitfire-db/spitfire/internal/obs.Obs",
			"github.com/spitfire-db/spitfire/internal/obs.Ring",
			"github.com/spitfire-db/spitfire/internal/metrics.Histogram",
		}
	}
	if len(c.ObsScope) == 0 {
		c.ObsScope = []string{"/internal/"}
	}
	if len(c.IOPackages) == 0 {
		c.IOPackages = []string{
			"internal/device", "internal/ssd", "internal/pmem",
			"internal/vclock", "internal/wal",
		}
	}
	if c.Warn == nil {
		c.Warn = func(string, ...any) {}
	}
	return &c
}

func (cfg *Config) wants(check string) bool {
	for _, c := range cfg.Checks {
		if c == check {
			return true
		}
	}
	return false
}

// pkgUnit is one parsed-and-typed package.
type pkgUnit struct {
	dir     string
	path    string // import path (module-relative for module packages)
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	imports []string // module-internal imports
}

// pass is the per-package context handed to each check.
type pass struct {
	cfg    *Config
	fset   *token.FileSet
	unit   *pkgUnit
	report func(pos token.Pos, check, format string, args ...any)
}

// Run loads the packages selected by cfg and applies the enabled checks,
// returning findings sorted by position with //vet:allow suppressions
// already filtered out.
func Run(cfg Config) ([]Finding, error) {
	c := cfg.withDefaults()
	fset := token.NewFileSet()
	units, err := load(c, fset)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, u := range units {
		p := &pass{
			cfg:  c,
			fset: fset,
			unit: u,
			report: func(pos token.Pos, check, format string, args ...any) {
				findings = append(findings, Finding{
					Pos:   fset.Position(pos),
					Check: check,
					Msg:   fmt.Sprintf(format, args...),
				})
			},
		}
		if c.wants("determinism") {
			checkDeterminism(p)
		}
		if c.wants("droppederr") {
			checkDroppedErr(p)
		}
		if c.wants("latchorder") {
			checkLatchOrder(p)
		}
		if c.wants("obsguard") {
			checkObsGuard(p)
		}
		if c.wants("allowlive") {
			checkAllowLive(p)
		}
	}

	findings = applyAllows(fset, units, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return findings, nil
}

// modulePath reads the module declaration from dir/go.mod, or "" when the
// directory is not a module root (fixture mode).
func modulePath(dir string) string {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// load parses and type-checks the selected packages in dependency order.
func load(cfg *Config, fset *token.FileSet) ([]*pkgUnit, error) {
	modPath := modulePath(cfg.Dir)

	dirs, err := expandPatterns(cfg)
	if err != nil {
		return nil, err
	}

	var units []*pkgUnit
	byPath := map[string]*pkgUnit{}
	for _, dir := range dirs {
		u, err := parseDir(cfg, fset, dir, modPath)
		if err != nil {
			return nil, err
		}
		if u == nil {
			continue // no buildable files
		}
		units = append(units, u)
		byPath[u.path] = u
	}

	order, err := topoSort(units, byPath)
	if err != nil {
		return nil, err
	}

	// The stdlib source importer resolves everything outside the module
	// (with cgo off so GOROOT packages type-check from pure-Go sources).
	build.Default.CgoEnabled = false
	src := importer.ForCompiler(fset, "source", nil)
	imp := &moduleImporter{module: byPath, fallback: src}

	for _, u := range order {
		u.info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tc := &types.Config{
			Importer: imp,
			Error: func(err error) {
				cfg.Warn("vet: type-check %s: %v", u.path, err)
			},
		}
		pkg, _ := tc.Check(u.path, fset, u.files, u.info)
		u.pkg = pkg
	}
	return order, nil
}

// moduleImporter resolves module-internal paths from the already-checked
// set and delegates everything else to the stdlib source importer.
type moduleImporter struct {
	module   map[string]*pkgUnit
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if u, ok := m.module[path]; ok {
		if u.pkg == nil {
			return nil, fmt.Errorf("vet: import cycle or unchecked package %q", path)
		}
		return u.pkg, nil
	}
	return m.fallback.Import(path)
}

// expandPatterns resolves cfg.Patterns to package directories.
func expandPatterns(cfg *Config) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range cfg.Patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkPackages(cfg.Dir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(cfg.Dir, strings.TrimSuffix(pat, "/..."))
			if err := walkPackages(root, add); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(cfg.Dir, pat))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// walkPackages visits every directory under root that may hold a package,
// skipping testdata, VCS metadata and hidden/underscore directories.
func walkPackages(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				add(path)
				break
			}
		}
		return nil
	})
}

// parseDir parses the buildable, non-test files of one directory into a
// pkgUnit, or nil when nothing survives filtering.
func parseDir(cfg *Config, fset *token.FileSet, dir, modPath string) (*pkgUnit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: %w", err)
		}
		if !buildableFile(file) {
			continue
		}
		pkgName := file.Name.Name
		if byName[pkgName] == nil {
			names = append(names, pkgName)
		}
		byName[pkgName] = append(byName[pkgName], file)
	}
	if len(byName) == 0 {
		return nil, nil
	}
	// A directory can legally mix package foo with an external foo_test;
	// with tests included, keep the largest group.
	best := names[0]
	for _, n := range names[1:] {
		if len(byName[n]) > len(byName[best]) {
			best = n
		}
	}

	importPath := filepath.Base(dir)
	if modPath != "" {
		rel, err := filepath.Rel(cfg.Dir, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			importPath = modPath
		} else {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
	}

	u := &pkgUnit{dir: dir, path: importPath, files: byName[best]}
	mod := modPath + "/"
	for _, f := range u.files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if modPath != "" && (p == modPath || strings.HasPrefix(p, mod)) {
				u.imports = append(u.imports, p)
			}
		}
	}
	return u, nil
}

// buildableFile evaluates a file's //go:build constraint for the default
// build (host GOOS/GOARCH, no extra tags — so lockcheck-tagged files are
// analyzed as the no-op stub, matching what `go build` compiles).
func buildableFile(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "unix" || strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// topoSort orders units so that every module-internal import is checked
// before its importers.
func topoSort(units []*pkgUnit, byPath map[string]*pkgUnit) ([]*pkgUnit, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[*pkgUnit]int{}
	var order []*pkgUnit
	var visit func(u *pkgUnit) error
	visit = func(u *pkgUnit) error {
		switch state[u] {
		case grey:
			return fmt.Errorf("vet: import cycle through %q", u.path)
		case black:
			return nil
		}
		state[u] = grey
		for _, dep := range u.imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[u] = black
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// pathMatches reports whether an import path ends with one of the given
// suffixes (each matched at a path-segment boundary).
func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) || strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// pathContains reports whether the import path contains any substring.
func pathContains(path string, subs []string) bool {
	for _, s := range subs {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}
