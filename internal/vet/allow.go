package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //vet:allow comment.
type allowDirective struct {
	check  string
	reason string
	line   int
	file   string
	pos    token.Pos
}

// parseAllows extracts every //vet:allow directive from a file, reporting a
// finding (check id "vet") for directives missing a check id or a reason —
// an unexplained suppression is itself a violation of the convention.
func parseAllows(fset *token.FileSet, f *ast.File, report func(pos token.Pos, check, format string, args ...any)) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//vet:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 || !knownCheck(fields[0]) {
				report(c.Pos(), "vet", "malformed //vet:allow: want \"//vet:allow <check-id> <reason>\" with check-id one of %s",
					strings.Join(AllChecks, "|"))
				continue
			}
			if len(fields) < 2 {
				report(c.Pos(), "vet", "//vet:allow %s needs a reason", fields[0])
				continue
			}
			pos := fset.Position(c.Pos())
			out = append(out, allowDirective{
				check:  fields[0],
				reason: strings.Join(fields[1:], " "),
				line:   pos.Line,
				file:   pos.Filename,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

func knownCheck(id string) bool {
	for _, c := range AllChecks {
		if c == id {
			return true
		}
	}
	return false
}

// applyAllows filters findings through the //vet:allow directives of the
// analyzed files. A directive suppresses findings of its check on its own
// line and on the line directly below it (the standalone-comment form).
func applyAllows(fset *token.FileSet, units []*pkgUnit, findings []Finding) []Finding {
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := map[key]bool{}
	var malformed []Finding
	report := func(pos token.Pos, check, format string, args ...any) {
		malformed = append(malformed, Finding{
			Pos:   fset.Position(pos),
			Check: check,
			Msg:   fmt.Sprintf(format, args...),
		})
	}
	for _, u := range units {
		for _, f := range u.files {
			for _, d := range parseAllows(fset, f, report) {
				allowed[key{d.file, d.line, d.check}] = true
				allowed[key{d.file, d.line + 1, d.check}] = true
			}
		}
	}
	out := findings[:0]
	for _, f := range findings {
		if allowed[key{f.Pos.Filename, f.Pos.Line, f.Check}] {
			continue
		}
		out = append(out, f)
	}
	return append(out, malformed...)
}
