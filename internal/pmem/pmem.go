// Package pmem simulates an Optane DC Persistent Memory Module exposed in
// app-direct (fsdax) mode.
//
// The paper maps a file on /mnt/pmem0 and manages the resulting pointer
// directly, persisting cache lines with clwb+sfence. Go cannot map real
// persistent memory, so this package provides the same contract over a
// byte-addressable arena:
//
//   - Read/Write access arbitrary byte ranges and charge the NVM device
//     model (256 B media granularity, Table 1 latencies/bandwidths).
//   - Write is *not* durable by itself: stores land in the simulated CPU
//     cache. Persist(off, n) models clwb of the covered cache lines followed
//     by an sfence; only then is the range durable.
//   - Crash() models power loss: every store that was never persisted is
//     rolled back to its last persisted contents. Recovery tests restart a
//     buffer manager on top of the surviving arena.
//
// The rollback log ("shadow") keeps the previous persisted image of each
// dirty cache line, so memory overhead is proportional to the volume of
// unpersisted data, not to the arena size.
package pmem

import (
	"fmt"
	"sync"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// CacheLineSize is the CPU cache-line granularity at which clwb operates.
const CacheLineSize = 64

// PMem is a simulated persistent-memory arena.
type PMem struct {
	dev  *device.Device
	data []byte

	// trackCrashes enables the shadow log. Experiments that never crash
	// (throughput sweeps) disable it to avoid bookkeeping overhead.
	trackCrashes bool

	mu     sync.Mutex
	shadow map[int64][]byte // line index -> last persisted image of that line
}

// Options configures a PMem arena.
type Options struct {
	// Size of the arena in bytes.
	Size int64
	// Device is the cost model to charge; if nil a fresh device with
	// Table 1 NVM parameters is created.
	Device *device.Device
	// TrackCrashes enables Crash()/Persist() shadow bookkeeping.
	TrackCrashes bool
}

// New creates an arena of the given size.
func New(opts Options) *PMem {
	dev := opts.Device
	if dev == nil {
		dev = device.New(device.NVMParams)
	}
	p := &PMem{
		dev:          dev,
		data:         make([]byte, opts.Size),
		trackCrashes: opts.TrackCrashes,
	}
	if opts.TrackCrashes {
		p.shadow = make(map[int64][]byte)
	}
	return p
}

// Size returns the arena size in bytes.
func (p *PMem) Size() int64 { return int64(len(p.data)) }

// Device returns the underlying cost model (for traffic statistics).
func (p *PMem) Device() *device.Device { return p.dev }

func (p *PMem) check(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(p.data)) {
		panic(fmt.Sprintf("pmem: access [%d, %d) out of bounds of arena of %d bytes",
			off, off+int64(n), len(p.data)))
	}
}

// Read copies len(buf) bytes at off into buf, charging the NVM device.
func (p *PMem) Read(c *vclock.Clock, off int64, buf []byte) {
	p.check(off, len(buf))
	p.dev.Read(c, len(buf))
	copy(buf, p.data[off:off+int64(len(buf))])
}

// Write copies data to off, charging the NVM device. The write is volatile
// until the range is covered by a Persist call.
func (p *PMem) Write(c *vclock.Clock, off int64, data []byte) {
	p.check(off, len(data))
	p.dev.Write(c, len(data))
	if p.trackCrashes {
		p.saveShadow(off, len(data))
	}
	copy(p.data[off:off+int64(len(data))], data)
}

// ReadErr is the checked variant of Read: it consults the device's fault
// injector (if attached) and fails without copying when the read faults.
func (p *PMem) ReadErr(c *vclock.Clock, off int64, buf []byte) error {
	p.check(off, len(buf))
	if _, err := p.dev.ReadErr(c, len(buf)); err != nil {
		return err
	}
	copy(buf, p.data[off:off+int64(len(buf))])
	return nil
}

// WriteErr is the checked variant of Write. On a torn write, the fault's
// prefix fraction of data genuinely reaches the arena AND is persisted
// (power loss flushes lines in arbitrary order, so the torn prefix must be
// assumed durable); the remainder of the range is untouched. Callers that
// need crash-atomic installs must therefore order payload writes before the
// validity marker.
func (p *PMem) WriteErr(c *vclock.Clock, off int64, data []byte) error {
	p.check(off, len(data))
	if _, err := p.dev.WriteErr(c, len(data)); err != nil {
		if frac, torn := device.IsTorn(err); torn {
			n := int(frac * float64(len(data)))
			if n > len(data) {
				n = len(data)
			}
			// Aligned stores of at most 8 bytes are torn-atomic (x86-64
			// guarantees 8-byte store atomicity on pmem): model "nothing
			// landed" rather than a garbled word. The WAL's extent word
			// relies on this.
			if len(data) <= 8 && off%8 == 0 {
				n = 0
			}
			if n > 0 {
				if p.trackCrashes {
					p.saveShadow(off, n)
				}
				copy(p.data[off:off+int64(n)], data[:n])
				p.dropShadows(off, n)
			}
		}
		return err
	}
	if p.trackCrashes {
		p.saveShadow(off, len(data))
	}
	copy(p.data[off:off+int64(len(data))], data)
	return nil
}

// PersistErr is the checked variant of Persist: it fails (without dropping
// shadows) when the device is crashed or permanently failed, so an sfence
// on a dead DIMM does not count as durability.
func (p *PMem) PersistErr(c *vclock.Clock, off int64, n int) error {
	if in := p.dev.Faults(); in != nil {
		if in.Crashed() {
			return fmt.Errorf("%s persist: %w", p.dev.Kind(), device.ErrCrashed)
		}
		if in.Failed() {
			return fmt.Errorf("%s persist: %w", p.dev.Kind(), device.ErrPermanent)
		}
	}
	p.Persist(c, off, n)
	return nil
}

// dropShadows marks the covered lines persisted without charging the clock
// (used for torn prefixes, which power loss itself flushes).
func (p *PMem) dropShadows(off int64, n int) {
	if !p.trackCrashes || n <= 0 {
		return
	}
	first := off / CacheLineSize
	last := (off + int64(n) - 1) / CacheLineSize
	p.mu.Lock()
	for line := first; line <= last; line++ {
		delete(p.shadow, line)
	}
	p.mu.Unlock()
}

// saveShadow records the pre-image of every cache line the write touches,
// unless a pre-image for that line is already pending.
func (p *PMem) saveShadow(off int64, n int) {
	first := off / CacheLineSize
	last := (off + int64(n) - 1) / CacheLineSize
	p.mu.Lock()
	for line := first; line <= last; line++ {
		if _, ok := p.shadow[line]; ok {
			continue
		}
		img := make([]byte, CacheLineSize)
		copy(img, p.data[line*CacheLineSize:(line+1)*CacheLineSize])
		p.shadow[line] = img
	}
	p.mu.Unlock()
}

// Persist models `clwb` over every cache line intersecting [off, off+n)
// followed by an `sfence`: after it returns, the range survives Crash.
// A small fixed cost is charged per line to model the write-back.
func (p *PMem) Persist(c *vclock.Clock, off int64, n int) {
	if n <= 0 {
		return
	}
	p.check(off, n)
	first := off / CacheLineSize
	last := (off + int64(n) - 1) / CacheLineSize
	// clwb is asynchronous; the sfence pays for the slowest line. Model the
	// pair as one NVM write-latency stall plus per-line media occupancy,
	// which the device's Write path already accounts; here we only drop
	// shadows and charge the fence.
	c.Advance(device.NVMParams.WriteLatency)
	if !p.trackCrashes {
		return
	}
	p.mu.Lock()
	for line := first; line <= last; line++ {
		delete(p.shadow, line)
	}
	p.mu.Unlock()
}

// PersistAll persists the entire arena (used when seeding test fixtures).
func (p *PMem) PersistAll(c *vclock.Clock) {
	p.Persist(c, 0, len(p.data))
}

// Crash simulates power failure: every cache line with unpersisted stores
// reverts to its last persisted image. Callers must guarantee no concurrent
// access (the machine is "off").
func (p *PMem) Crash() {
	if !p.trackCrashes {
		panic("pmem: Crash called on an arena created without TrackCrashes")
	}
	p.mu.Lock()
	for line, img := range p.shadow {
		copy(p.data[line*CacheLineSize:(line+1)*CacheLineSize], img)
	}
	p.shadow = make(map[int64][]byte)
	p.mu.Unlock()
}

// UnpersistedLines reports how many cache lines currently hold unpersisted
// stores. Useful for asserting that persistence points were honored.
func (p *PMem) UnpersistedLines() int {
	if !p.trackCrashes {
		return 0
	}
	p.mu.Lock()
	n := len(p.shadow)
	p.mu.Unlock()
	return n
}

// Bytes exposes the raw arena. It exists so the buffer manager can hand out
// zero-copy NVM frame slices; callers must charge traffic via Read/Write or
// the device directly, and must not retain slices across Crash.
func (p *PMem) Bytes(off int64, n int) []byte {
	p.check(off, n)
	return p.data[off : off+int64(n) : off+int64(n)]
}
