package pmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/spitfire-db/spitfire/internal/vclock"
)

func TestReadWriteRoundTrip(t *testing.T) {
	p := New(Options{Size: 4096})
	c := vclock.New()
	data := []byte("hello, persistent world")
	p.Write(c, 100, data)
	got := make([]byte, len(data))
	p.Read(c, 100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q, want %q", got, data)
	}
}

func TestCrashRevertsUnpersistedWrites(t *testing.T) {
	p := New(Options{Size: 4096, TrackCrashes: true})
	c := vclock.New()

	p.Write(c, 0, []byte("durable"))
	p.Persist(c, 0, 7)
	p.Write(c, 0, []byte("ephemer"))
	if p.UnpersistedLines() == 0 {
		t.Fatal("expected unpersisted lines after write")
	}

	p.Crash()

	got := make([]byte, 7)
	p.Read(c, 0, got)
	if string(got) != "durable" {
		t.Fatalf("after crash: %q, want %q", got, "durable")
	}
	if p.UnpersistedLines() != 0 {
		t.Fatal("crash left unpersisted lines")
	}
}

func TestPersistMakesWritesDurable(t *testing.T) {
	p := New(Options{Size: 4096, TrackCrashes: true})
	c := vclock.New()
	p.Write(c, 256, []byte("committed"))
	p.Persist(c, 256, 9)
	p.Crash()
	got := make([]byte, 9)
	p.Read(c, 256, got)
	if string(got) != "committed" {
		t.Fatalf("persisted data lost in crash: %q", got)
	}
}

func TestPartialPersist(t *testing.T) {
	// Two writes to different cache lines; only one persisted.
	p := New(Options{Size: 4096, TrackCrashes: true})
	c := vclock.New()
	p.Write(c, 0, []byte("AAAA"))
	p.Write(c, 128, []byte("BBBB"))
	p.Persist(c, 0, 4)
	p.Crash()
	a, b := make([]byte, 4), make([]byte, 4)
	p.Read(c, 0, a)
	p.Read(c, 128, b)
	if string(a) != "AAAA" {
		t.Fatalf("persisted line lost: %q", a)
	}
	if string(b) != "\x00\x00\x00\x00" {
		t.Fatalf("unpersisted line survived crash: %q", b)
	}
}

func TestCrashWithoutTrackingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Crash on untracked arena did not panic")
		}
	}()
	New(Options{Size: 64}).Crash()
}

func TestOutOfBoundsPanics(t *testing.T) {
	p := New(Options{Size: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds write did not panic")
		}
	}()
	p.Write(vclock.New(), 60, []byte("overflow"))
}

func TestBytesAlias(t *testing.T) {
	p := New(Options{Size: 1024})
	c := vclock.New()
	p.Write(c, 512, []byte{1, 2, 3})
	b := p.Bytes(512, 3)
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("Bytes view = %v", b)
	}
	if len(b) != 3 || cap(b) != 3 {
		t.Fatalf("Bytes view not capacity-clamped: len=%d cap=%d", len(b), cap(b))
	}
}

func TestChargesDevice(t *testing.T) {
	p := New(Options{Size: 4096})
	c := vclock.New()
	p.Write(c, 0, make([]byte, 256))
	if c.Now() == 0 {
		t.Fatal("write did not advance virtual time")
	}
	st := p.Device().Stats()
	if st.BytesWritten != 256 {
		t.Fatalf("device recorded %d bytes written, want 256", st.BytesWritten)
	}
}

// Property: for any sequence of (write, maybe-persist) operations followed
// by a crash, every byte equals the last persisted write covering it (or
// zero). We model with a shadow array updated only at persist points.
func TestQuickCrashConsistency(t *testing.T) {
	const size = 2048
	f := func(ops []struct {
		Off     uint16
		Val     byte
		Persist bool
	}) bool {
		p := New(Options{Size: size, TrackCrashes: true})
		c := vclock.New()
		model := make([]byte, size)   // persisted state
		current := make([]byte, size) // in-cache state
		for _, op := range ops {
			off := int64(op.Off) % size
			p.Write(c, off, []byte{op.Val})
			current[off] = op.Val
			if op.Persist {
				p.Persist(c, off, 1)
				// Persisting one byte persists its whole cache line.
				line := off / CacheLineSize * CacheLineSize
				copy(model[line:line+CacheLineSize], current[line:line+CacheLineSize])
			}
		}
		p.Crash()
		got := make([]byte, size)
		p.Read(c, 0, got)
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
