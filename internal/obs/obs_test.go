package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingEmitSnapshot(t *testing.T) {
	o := New(Config{RingSize: 8})
	r := o.NewRing("w0")
	for i := 0; i < 5; i++ {
		r.Emit(Event{TS: int64(i), Type: EvFetch, From: TierSSD, To: TierDRAM, Page: uint64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.TS != int64(i) || ev.Page != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
		if ev.Type != EvFetch || ev.From != TierSSD || ev.To != TierDRAM {
			t.Fatalf("event %d fields mangled: %+v", i, ev)
		}
	}
}

func TestRingWraps(t *testing.T) {
	o := New(Config{RingSize: 8})
	r := o.NewRing("w0")
	for i := 0; i < 20; i++ {
		r.Emit(Event{TS: int64(i), Type: EvEvict, Page: uint64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("got %d events after wrap, want 8", len(evs))
	}
	if evs[0].TS != 12 || evs[7].TS != 19 {
		t.Fatalf("wrap window wrong: first=%d last=%d", evs[0].TS, evs[7].TS)
	}
	if r.Len() != 20 {
		t.Fatalf("Len=%d, want 20", r.Len())
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	var r *Ring
	r.Emit(Event{Type: EvFetch}) // must not panic
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Fatal("nil ring should be empty")
	}
	if o.Hist(HFetchDRAM) != nil {
		t.Fatal("nil obs must hand out nil histograms")
	}
	if o.NewRing("x") != nil {
		t.Fatal("nil obs must hand out nil rings")
	}
	o.SetSource(nil)
	stop := o.StartProgress(io.Discard, time.Second)
	stop()
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRingsCap(t *testing.T) {
	o := New(Config{RingSize: 8, MaxRings: 3})
	for i := 0; i < 3; i++ {
		if o.NewRing(fmt.Sprintf("w%d", i)) == nil {
			t.Fatalf("ring %d refused below cap", i)
		}
	}
	if o.NewRing("over") != nil {
		t.Fatal("ring above cap should be nil")
	}
	alloc, capped := o.RingCount()
	if alloc != 3 || capped != 1 {
		t.Fatalf("RingCount = (%d, %d), want (3, 1)", alloc, capped)
	}
}

// TestRingConcurrentSnapshot hammers one producer per ring while other
// goroutines snapshot and export continuously; run under -race this is the
// tracer's data-race proof.
func TestRingConcurrentSnapshot(t *testing.T) {
	o := New(Config{RingSize: 64})
	const workers = 8
	const events = 2000
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	for w := 0; w < workers; w++ {
		r := o.NewRing(fmt.Sprintf("w%d", w))
		wg.Add(1)
		go func(r *Ring, w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Emit(Event{
					TS:   int64(i),
					Dur:  3,
					Type: EventType(1 + i%9),
					From: TierID(i % 5),
					To:   TierID((i + 1) % 5),
					Page: uint64(w*events + i),
					Arg:  int64(i),
				})
			}
		}(r, w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				o.WriteJSONL(io.Discard)
				o.WriteChromeTrace(io.Discard)
			}
		}()
	}
	wg.Wait()
	close(stopRead)
	readers.Wait()
	// After producers stop, snapshots must be complete and self-consistent.
	total := uint64(0)
	o.mu.Lock()
	rings := append([]*Ring(nil), o.rings...)
	o.mu.Unlock()
	for _, r := range rings {
		evs := r.Snapshot()
		if len(evs) != 64 {
			t.Fatalf("quiescent snapshot has %d events, want 64", len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].TS != evs[i-1].TS+1 {
				t.Fatalf("snapshot not contiguous at %d: %d -> %d", i, evs[i-1].TS, evs[i].TS)
			}
		}
		total += r.Len()
	}
	if total != workers*events {
		t.Fatalf("lost events: %d emitted, want %d", total, workers*events)
	}
}

func TestChromeTraceParses(t *testing.T) {
	o := New(Config{RingSize: 16})
	r := o.NewRing("worker-0")
	r.Emit(Event{TS: 1000, Dur: 700, Type: EvFetch, From: TierSSD, To: TierDRAM, Page: 7})
	r.Emit(Event{TS: 2000, Type: EvPolicyStep, Page: NoPage, Arg: 42})
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 thread_name metadata + 2 events.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	var sawComplete, sawInstant, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			sawComplete = true
			if ev["ts"].(float64) != 0.3 { // (1000-700)/1e3 µs
				t.Fatalf("complete event ts = %v, want 0.3", ev["ts"])
			}
			if ev["dur"].(float64) != 0.7 {
				t.Fatalf("complete event dur = %v, want 0.7", ev["dur"])
			}
		case "i":
			sawInstant = true
		case "M":
			sawMeta = true
			args := ev["args"].(map[string]any)
			if args["name"] != "worker-0" {
				t.Fatalf("thread_name = %v", args["name"])
			}
		}
	}
	if !sawComplete || !sawInstant || !sawMeta {
		t.Fatalf("missing phases: X=%v i=%v M=%v", sawComplete, sawInstant, sawMeta)
	}
}

func TestJSONLParses(t *testing.T) {
	o := New(Config{RingSize: 16})
	r := o.NewRing("w")
	r.Emit(Event{TS: 5, Type: EvWALAppend, Page: NoPage, Arg: 9})
	r.Emit(Event{TS: 6, Type: EvEvict, From: TierDRAM, To: TierNVM, Page: 3})
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["type"] != "wal-append" {
		t.Fatalf("type = %v", rec["type"])
	}
	if _, hasPage := rec["page"]; hasPage {
		t.Fatal("NoPage event must omit the page field")
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec["from"] != "dram" || rec["to"] != "nvm" || rec["page"].(float64) != 3 {
		t.Fatalf("tier/page fields wrong: %v", rec)
	}
}

type fakeSource struct{}

func (fakeSource) ObsCounters() []Sample {
	return []Sample{
		{Name: "hit_dram", Value: 90},
		{Name: "hit_nvm", Value: 5},
		{Name: "miss_ssd", Value: 5},
	}
}
func (fakeSource) ObsGauges() []Sample {
	return []Sample{{Name: "dram_free_frames", Value: 12}}
}

func TestWritePrometheusValidates(t *testing.T) {
	o := New(Config{})
	o.SetSource(fakeSource{})
	o.Hist(HFetchDRAM).Observe(150)
	o.Hist(HFetchDRAM).Observe(90)
	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidatePrometheus(text); err != nil {
		t.Fatalf("own output fails linter: %v\n%s", err, text)
	}
	for _, want := range []string{
		"spitfire_hit_dram_total 90",
		"spitfire_dram_free_frames 12",
		`spitfire_fetch_dram_ns{quantile="0.99"}`,
		"spitfire_fetch_dram_ns_count 2",
		"# TYPE spitfire_fetch_dram_ns summary",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	// Output must be byte-identical across scrapes (deterministic ordering).
	var buf2 bytes.Buffer
	o.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("Prometheus output not deterministic")
	}
}

func TestValidatePrometheusCatchesGarbage(t *testing.T) {
	cases := map[string]string{
		"bad name":       "9metric 1\n",
		"bad value":      "metric one\n",
		"unclosed brace": "metric{a=\"b\" 1\n",
		"unquoted label": "metric{a=b} 1\n",
		"bad type":       "# TYPE m widget\nm 1\n",
		"orphan type":    "# TYPE m counter\n",
		"dup type":       "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"dup help":       "# HELP m a\n# HELP m b\nm 1\n",
		"type after":     "m 1\n# TYPE m counter\n",
		"help after":     "m 1\n# HELP m text\n",
		"split family":   "a 1\nb 2\na 3\n",
		"split summary":  "m_sum 1\nm_count 1\nother 2\nm{quantile=\"0.5\"} 1\n",
	}
	for name, payload := range cases {
		if err := ValidatePrometheus(payload); err == nil {
			t.Errorf("%s: linter accepted %q", name, payload)
		}
	}
	good := "# HELP m help text\n# TYPE m counter\nm{a=\"b\",c=\"d\"} 42 1700000000\nplain 3.5\n"
	if err := ValidatePrometheus(good); err != nil {
		t.Errorf("linter rejected valid payload: %v", err)
	}
}

func TestServeEndpoints(t *testing.T) {
	o := New(Config{RingSize: 16})
	o.SetSource(fakeSource{})
	o.Hist(HFetchNVM).Observe(321)
	r := o.NewRing("w")
	r.Emit(Event{TS: 10, Dur: 4, Type: EvFetch, From: TierNVM, To: TierDRAM, Page: 1})
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if err := ValidatePrometheus(get("/metrics")); err != nil {
		t.Fatalf("/metrics fails linter: %v", err)
	}

	snap1 := get("/snapshot.json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(snap1), &doc); err != nil {
		t.Fatalf("/snapshot.json not JSON: %v\n%s", err, snap1)
	}
	if doc["counters"].(map[string]any)["hit_dram"].(float64) != 90 {
		t.Fatalf("snapshot counters wrong: %v", doc["counters"])
	}
	if doc["derived"].(map[string]any)["hit_rate"].(float64) != 0.95 {
		t.Fatalf("derived hit_rate wrong: %v", doc["derived"])
	}
	// Second scrape carries interval deltas (zero here; the source is static).
	snap2 := get("/snapshot.json")
	if err := json.Unmarshal([]byte(snap2), &doc); err != nil {
		t.Fatal(err)
	}
	deltas := doc["deltas"].(map[string]any)
	if deltas["hit_dram"].(map[string]any)["delta"].(float64) != 0 {
		t.Fatalf("expected zero delta on static source: %v", deltas)
	}

	trace := get("/trace.json")
	var td struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &td); err != nil {
		t.Fatalf("/trace.json not JSON: %v", err)
	}
	if len(td.TraceEvents) < 2 {
		t.Fatalf("trace too small: %d events", len(td.TraceEvents))
	}

	if !strings.Contains(get("/events.jsonl"), `"type":"fetch"`) {
		t.Fatal("/events.jsonl missing the fetch event")
	}

	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("pprof index not served")
	}
}

func TestStartProgress(t *testing.T) {
	o := New(Config{})
	o.SetSource(fakeSource{})
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := o.StartProgress(w, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "[obs]") || !strings.Contains(out, "dram_free_frames=12") {
		t.Fatalf("progress line missing content: %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestJSONLPageFilter: WriteJSONLFiltered and the /events.jsonl?pid= query
// restrict the export to events touching the requested pages.
func TestJSONLPageFilter(t *testing.T) {
	o := New(Config{RingSize: 16})
	r := o.NewRing("w")
	r.Emit(Event{TS: 1, Type: EvFetch, From: TierSSD, To: TierDRAM, Page: 7})
	r.Emit(Event{TS: 2, Type: EvEvict, From: TierDRAM, To: TierNVM, Page: 9})
	r.Emit(Event{TS: 3, Type: EvWALFlush, Page: NoPage})

	var buf bytes.Buffer
	if err := o.WriteJSONLFiltered(&buf, func(ev Event) bool { return ev.Page == 7 }); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"page":7`) {
		t.Fatalf("filtered export = %q, want exactly the page-7 event", buf.String())
	}

	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/events.jsonl?pid=9")
	if code != http.StatusOK {
		t.Fatalf("?pid=9 status = %d", code)
	}
	if strings.Count(strings.TrimSpace(body), "\n")+1 != 1 || !strings.Contains(body, `"page":9`) {
		t.Fatalf("?pid=9 body = %q, want only the page-9 event", body)
	}
	// Multi-pid (comma form) keeps both pages but still drops NoPage events.
	code, body = get("/events.jsonl?pid=7,9")
	if code != http.StatusOK || strings.Contains(body, "wal-flush") {
		t.Fatalf("?pid=7,9 = %d %q, want both page events and no wal-flush", code, body)
	}
	if !strings.Contains(body, `"page":7`) || !strings.Contains(body, `"page":9`) {
		t.Fatalf("?pid=7,9 body = %q, want pages 7 and 9", body)
	}
	// No filter exports everything, including NoPage events.
	if _, body = get("/events.jsonl"); !strings.Contains(body, "wal-flush") {
		t.Fatalf("unfiltered export lost the NoPage event: %q", body)
	}
	// Garbage pid is a client error, not a 200 with everything.
	if code, _ = get("/events.jsonl?pid=bogus"); code != http.StatusBadRequest {
		t.Fatalf("?pid=bogus status = %d, want 400", code)
	}
}
