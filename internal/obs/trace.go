package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// EventType enumerates the migration-tracer event kinds. They mirror the
// data-flow activity of Figure 3 plus the subsystems around it: fetches,
// evictions, write-backs/admissions, cleaner batches, WAL activity, and the
// adaptive tuner's policy steps.
type EventType uint8

const (
	EvFetch EventType = iota + 1
	EvEvict
	EvAdmit
	EvWriteBack
	EvCleanerBatch
	EvWALAppend
	EvWALFlush
	EvPolicyStep
	EvRetry
	EvWALGroupCommit
)

// String names the event type (used in JSONL and Chrome trace output).
func (t EventType) String() string {
	switch t {
	case EvFetch:
		return "fetch"
	case EvEvict:
		return "evict"
	case EvAdmit:
		return "admit"
	case EvWriteBack:
		return "writeback"
	case EvCleanerBatch:
		return "cleaner-batch"
	case EvWALAppend:
		return "wal-append"
	case EvWALFlush:
		return "wal-flush"
	case EvPolicyStep:
		return "policy-step"
	case EvRetry:
		return "retry"
	case EvWALGroupCommit:
		return "wal-group-commit"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// TierID identifies a storage tier in an event's from/to pair. The obs
// package keeps its own copy of the tier enum so that core (and wal, and the
// harness) can depend on obs without a cycle.
type TierID uint8

const (
	TierNone TierID = iota
	TierDRAM
	TierMini
	TierNVM
	TierSSD
)

// String names the tier.
func (t TierID) String() string {
	switch t {
	case TierNone:
		return "-"
	case TierDRAM:
		return "dram"
	case TierMini:
		return "mini"
	case TierNVM:
		return "nvm"
	case TierSSD:
		return "ssd"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Outcome classifies how a traced operation ended.
type Outcome uint8

const (
	OutOK Outcome = iota
	OutMiss
	OutError
	OutSkipped
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutOK:
		return "ok"
	case OutMiss:
		return "miss"
	case OutError:
		return "error"
	case OutSkipped:
		return "skipped"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Event is one migration-tracer record. TS is the emitting worker's virtual
// clock (simulated nanoseconds) at the *end* of the operation; Dur is the
// operation's simulated duration (0 for instant events). Page is the logical
// page id (^uint64(0) when not applicable), From/To the tier pair the data
// moved between, and Arg an event-specific payload (batch size, LSN, bytes).
type Event struct {
	TS      int64
	Dur     int64
	Type    EventType
	From    TierID
	To      TierID
	Outcome Outcome
	Page    uint64
	Arg     int64
}

// NoPage is the Page value for events that do not concern a single page.
const NoPage = ^uint64(0)

// ringSlot is one seqlock-protected event slot. The sequence word is odd
// while the (single) producer is writing and even once the write is
// committed; all payload words are atomics so concurrent snapshot readers
// are race-free without any lock.
type ringSlot struct {
	seq atomic.Uint64
	w   [5]atomic.Uint64
}

func packMeta(ev *Event) uint64 {
	return uint64(ev.Type) | uint64(ev.From)<<8 | uint64(ev.To)<<16 | uint64(ev.Outcome)<<24
}

func unpackMeta(m uint64, ev *Event) {
	ev.Type = EventType(m)
	ev.From = TierID(m >> 8)
	ev.To = TierID(m >> 16)
	ev.Outcome = Outcome(m >> 24)
}

// Ring is a single-producer, multi-reader event ring buffer. Exactly one
// goroutine (the owning worker) may Emit; any goroutine may Snapshot
// concurrently. A full ring overwrites its oldest events, so a live export
// sees the most recent window of activity. A nil *Ring is a valid no-op
// emitter, which is what a capped-out Obs hands to surplus workers.
type Ring struct {
	id    int
	label string
	mask  uint64
	seq   atomic.Uint64 // next position to write
	slots []ringSlot
}

// ID returns the ring's tracer id (the Chrome trace "tid").
func (r *Ring) ID() int { return r.id }

// Label returns the ring's human-readable worker label.
func (r *Ring) Label() string { return r.label }

// Emit records one event. Safe on a nil ring (no-op). Must only be called
// from the ring's owning goroutine.
func (r *Ring) Emit(ev Event) {
	if r == nil {
		return
	}
	i := r.seq.Load()
	s := &r.slots[i&r.mask]
	s.seq.Store(2*i + 1) // writing
	s.w[0].Store(uint64(ev.TS))
	s.w[1].Store(uint64(ev.Dur))
	s.w[2].Store(ev.Page)
	s.w[3].Store(uint64(ev.Arg))
	s.w[4].Store(packMeta(&ev))
	s.seq.Store(2*i + 2) // committed
	r.seq.Store(i + 1)
}

// Len reports how many events the ring has ever recorded (not its current
// occupancy; a full ring wraps).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot copies the ring's current contents, oldest first. Slots being
// overwritten mid-read are detected via their sequence word and skipped, so
// a snapshot taken during a live run is consistent but may miss the events
// racing it.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	end := r.seq.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		s := &r.slots[i&r.mask]
		want := 2*i + 2
		if s.seq.Load() != want {
			continue // being overwritten (or already wrapped past)
		}
		var ev Event
		ev.TS = int64(s.w[0].Load())
		ev.Dur = int64(s.w[1].Load())
		ev.Page = s.w[2].Load()
		ev.Arg = int64(s.w[3].Load())
		unpackMeta(s.w[4].Load(), &ev)
		if s.seq.Load() != want {
			continue // torn read; producer lapped us
		}
		out = append(out, ev)
	}
	return out
}

// tracedEvent pairs an event with its source ring for export.
type tracedEvent struct {
	Event
	tid   int
	label string
}

// events gathers a merged, TS-sorted snapshot of every ring.
func (o *Obs) events() []tracedEvent {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	rings := make([]*Ring, len(o.rings))
	copy(rings, o.rings)
	o.mu.Unlock()
	var all []tracedEvent
	for _, r := range rings {
		for _, ev := range r.Snapshot() {
			all = append(all, tracedEvent{Event: ev, tid: r.id, label: r.label})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	return all
}

// WriteJSONL writes the merged event snapshot as JSON Lines: one event
// object per line, sorted by virtual timestamp.
func (o *Obs) WriteJSONL(w io.Writer) error {
	return o.WriteJSONLFiltered(w, nil)
}

// WriteJSONLFiltered is WriteJSONL restricted to events matching keep. A nil
// keep exports everything. The exposition server uses this for per-page-id
// trace filtering (/events.jsonl?pid=N).
func (o *Obs) WriteJSONLFiltered(w io.Writer, keep func(Event) bool) error {
	bw := bufio.NewWriter(w)
	for _, ev := range o.events() {
		if keep != nil && !keep(ev.Event) {
			continue
		}
		page := ""
		if ev.Page != NoPage {
			page = fmt.Sprintf(`,"page":%d`, ev.Page)
		}
		fmt.Fprintf(bw,
			`{"ts":%d,"dur":%d,"type":%q,"from":%q,"to":%q,"outcome":%q%s,"arg":%d,"worker":%q}`+"\n",
			ev.TS, ev.Dur, ev.Type.String(), ev.From.String(), ev.To.String(),
			ev.Outcome.String(), page, ev.Arg, ev.label)
	}
	return bw.Flush()
}

// WriteChromeTrace writes the merged event snapshot in Chrome trace_event
// JSON object format, loadable in chrome://tracing and Perfetto. Timestamps
// are the workers' *virtual* clocks (simulated nanoseconds, exported in
// microseconds as the format requires): the timeline shows where simulated
// time went, which is the quantity the reproduction measures.
func (o *Obs) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, a ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, a...)
	}
	// Thread-name metadata so Perfetto labels each worker track.
	o.mu.Lock()
	rings := make([]*Ring, len(o.rings))
	copy(rings, o.rings)
	o.mu.Unlock()
	for _, r := range rings {
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, r.id, r.label)
	}
	for _, ev := range o.events() {
		name := ev.Type.String()
		if ev.From != TierNone || ev.To != TierNone {
			name = fmt.Sprintf("%s %s→%s", ev.Type, ev.From, ev.To)
		}
		page := ""
		if ev.Page != NoPage {
			page = fmt.Sprintf(`,"page":%d`, ev.Page)
		}
		args := fmt.Sprintf(`{"outcome":%q,"arg":%d%s}`, ev.Outcome.String(), ev.Arg, page)
		if ev.Dur > 0 {
			// Complete event: ts is the start in microseconds.
			emit(`{"name":%q,"cat":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":%s}`,
				name, ev.Type.String(), ev.tid,
				float64(ev.TS-ev.Dur)/1e3, float64(ev.Dur)/1e3, args)
		} else {
			emit(`{"name":%q,"cat":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":%s}`,
				name, ev.Type.String(), ev.tid, float64(ev.TS)/1e3, args)
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}
