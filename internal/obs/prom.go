package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/spitfire-db/spitfire/internal/metrics"
)

// promName sanitizes a sample name into a Prometheus metric name component:
// lowercase, [a-z0-9_] only.
func promName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// writeHistogram renders one latency histogram as a Prometheus summary:
// quantile-labelled gauges plus _sum/_count, which is the natural fit for
// metrics.Histogram's percentile API (bucket bounds are powers of two and
// would make poor le= boundaries).
func writeHistogram(w io.Writer, name string, h *metrics.Histogram) {
	fq := "spitfire_" + name + "_ns"
	fmt.Fprintf(w, "# HELP %s Simulated latency of %s in nanoseconds.\n", fq, name)
	fmt.Fprintf(w, "# TYPE %s summary\n", fq)
	// Quantile labels are spelled out: 99.9/100 in float64 would render as
	// 0.9990000000000001.
	for _, q := range []struct {
		pct   float64
		label string
	}{{50, "0.5"}, {90, "0.9"}, {99, "0.99"}, {99.9, "0.999"}} {
		fmt.Fprintf(w, "%s{quantile=%q} %d\n", fq, q.label, h.Percentile(q.pct))
	}
	fmt.Fprintf(w, "%s_sum %.0f\n", fq, h.Mean()*float64(h.Count()))
	fmt.Fprintf(w, "%s_count %d\n", fq, h.Count())
}

// WritePrometheus renders the full metric surface in Prometheus text
// exposition format (version 0.0.4): source counters as counters, source
// gauges as gauges, and every hot-path histogram as a summary. Output is
// sorted by name so scrapes are deterministic.
func (o *Obs) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if src := o.getSource(); src != nil {
		for _, s := range sortedSamples(src.ObsCounters()) {
			fq := "spitfire_" + promName(s.Name) + "_total"
			fmt.Fprintf(bw, "# HELP %s Total %s.\n", fq, s.Name)
			fmt.Fprintf(bw, "# TYPE %s counter\n", fq)
			fmt.Fprintf(bw, "%s %d\n", fq, s.Value)
		}
		for _, s := range sortedSamples(src.ObsGauges()) {
			fq := "spitfire_" + promName(s.Name)
			fmt.Fprintf(bw, "# HELP %s Current %s.\n", fq, s.Name)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", fq)
			fmt.Fprintf(bw, "%s %d\n", fq, s.Value)
		}
	}
	if o != nil {
		for h := Hist(0); h < NumHists; h++ {
			writeHistogram(bw, h.Name(), o.hists[h])
		}
		for _, nh := range o.NamedHists() {
			writeHistogram(bw, promName(nh.Name), nh.H)
		}
		alloc, capped := o.RingCount()
		fmt.Fprintf(bw, "# HELP spitfire_obs_rings Allocated tracer rings.\n")
		fmt.Fprintf(bw, "# TYPE spitfire_obs_rings gauge\n")
		fmt.Fprintf(bw, "spitfire_obs_rings %d\n", alloc)
		fmt.Fprintf(bw, "# HELP spitfire_obs_rings_capped_total Workers refused a tracer ring by MaxRings.\n")
		fmt.Fprintf(bw, "# TYPE spitfire_obs_rings_capped_total counter\n")
		fmt.Fprintf(bw, "spitfire_obs_rings_capped_total %d\n", capped)
	}
	return bw.Flush()
}

// ValidatePrometheus is a minimal linter for the text exposition format,
// strict enough to catch the mistakes a hand-rolled writer can make:
// malformed metric names, values that don't parse as numbers, TYPE lines
// for metrics that never appear, HELP/TYPE lines that trail their samples
// (the spec requires metadata to precede its series), duplicate HELP/TYPE
// declarations, non-contiguous (duplicate) metric families, and unbalanced
// label braces. Returns nil when the payload parses.
func ValidatePrometheus(payload string) error {
	typed := map[string]string{} // metric family -> declared type
	helped := map[string]bool{}  // families with a HELP line
	seen := map[string]bool{}    // families with at least one sample
	lastFam := ""                // family of the previous sample line
	for ln, line := range strings.Split(payload, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 {
					return fmt.Errorf("line %d: %s without metric name", lineNo, fields[1])
				}
				if !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
				}
				// Metadata must precede the series it describes.
				if seen[fields[2]] {
					return fmt.Errorf("line %d: %s for %q after its samples", lineNo, fields[1], fields[2])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return fmt.Errorf("line %d: TYPE needs exactly a name and a type", lineNo)
					}
					switch fields[3] {
					case "counter", "gauge", "summary", "histogram", "untyped":
					default:
						return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
					}
					if _, dup := typed[fields[2]]; dup {
						return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
					}
					typed[fields[2]] = fields[3]
				} else {
					if helped[fields[2]] {
						return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, fields[2])
					}
					helped[fields[2]] = true
				}
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp]
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid sample name %q", lineNo, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unbalanced label braces", lineNo)
			}
			labels := rest[1:end]
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					eq := strings.Index(pair, "=")
					if eq <= 0 {
						return fmt.Errorf("line %d: malformed label %q", lineNo, pair)
					}
					val := pair[eq+1:]
					if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
						return fmt.Errorf("line %d: label value %q not quoted", lineNo, val)
					}
				}
			}
			rest = rest[end+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("line %d: expected value (and optional timestamp), got %q", lineNo, rest)
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			return fmt.Errorf("line %d: value %q is not a number", lineNo, fields[0])
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return fmt.Errorf("line %d: timestamp %q is not an integer", lineNo, fields[1])
			}
		}
		// A family's samples must be contiguous: seeing it again after
		// another family's samples means the family was emitted twice.
		fam := familyOf(name)
		if fam != lastFam && seen[fam] {
			return fmt.Errorf("line %d: duplicate metric family %q (samples not contiguous)", lineNo, fam)
		}
		seen[fam] = true
		lastFam = fam
	}
	for fam := range typed {
		if !seen[fam] {
			return fmt.Errorf("TYPE declared for %q but no samples follow", fam)
		}
	}
	return nil
}

// familyOf strips summary/histogram suffixes so samples map back to their
// TYPE declaration.
func familyOf(name string) string {
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
