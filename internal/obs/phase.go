package obs

import "github.com/spitfire-db/spitfire/internal/metrics"

// PhaseSnapshot is the per-phase view of every latency histogram: the
// observations recorded between BeginPhase and EndPhase, keyed by the
// histogram's exposition name. Max carries the cumulative maximum as of the
// phase's end (the lock-free histograms keep no windowed maximum).
type PhaseSnapshot struct {
	Name  string
	Hists map[string]metrics.HistSnapshot
}

// snapshotAll copies every histogram — the fixed registry plus the named
// ones — keyed by exposition name.
func (o *Obs) snapshotAll() map[string]metrics.HistSnapshot {
	out := make(map[string]metrics.HistSnapshot, int(NumHists))
	for h := Hist(0); h < NumHists; h++ {
		out[h.Name()] = o.hists[h].Snapshot()
	}
	for _, nh := range o.NamedHists() {
		out[nh.Name] = nh.H.Snapshot()
	}
	return out
}

// BeginPhase marks the start of a named experiment phase (e.g. "warmup",
// "measure"). If a phase is already open it is closed first, so sequential
// phases need only BeginPhase calls. Safe on a nil receiver.
func (o *Obs) BeginPhase(name string) {
	if o == nil {
		return
	}
	o.phaseMu.Lock()
	defer o.phaseMu.Unlock()
	o.endPhaseLocked()
	o.phaseName = name
	o.phaseBase = o.snapshotAll()
}

// EndPhase closes the open phase, recording the delta of every histogram
// against the phase's baseline. A no-op when no phase is open or o is nil.
func (o *Obs) EndPhase() {
	if o == nil {
		return
	}
	o.phaseMu.Lock()
	defer o.phaseMu.Unlock()
	o.endPhaseLocked()
}

func (o *Obs) endPhaseLocked() {
	if o.phaseName == "" {
		return
	}
	o.phases = append(o.phases, PhaseSnapshot{
		Name:  o.phaseName,
		Hists: o.phaseDeltaLocked(),
	})
	o.phaseName = ""
	o.phaseBase = nil
}

// phaseDeltaLocked computes the open phase's histogram deltas. Histograms
// registered after BeginPhase (an empty baseline) contribute their full
// contents. Caller holds phaseMu.
func (o *Obs) phaseDeltaLocked() map[string]metrics.HistSnapshot {
	cur := o.snapshotAll()
	out := make(map[string]metrics.HistSnapshot, len(cur))
	for name, s := range cur {
		out[name] = s.Sub(o.phaseBase[name])
	}
	return out
}

// PhaseSnapshots returns every completed phase, oldest first, plus — when a
// phase is open — that phase's live delta as the final element. The result
// is a deep-enough copy: callers may hold it across further observations.
func (o *Obs) PhaseSnapshots() []PhaseSnapshot {
	if o == nil {
		return nil
	}
	o.phaseMu.Lock()
	defer o.phaseMu.Unlock()
	out := make([]PhaseSnapshot, len(o.phases), len(o.phases)+1)
	copy(out, o.phases)
	if o.phaseName != "" {
		out = append(out, PhaseSnapshot{Name: o.phaseName, Hists: o.phaseDeltaLocked()})
	}
	return out
}
