// Package obs is the observability layer for the Spitfire reproduction:
// a lock-free per-worker migration tracer, latency histograms over every
// hot path, and live exposition (Prometheus text, JSON snapshots with
// interval deltas, Chrome trace_event export, pprof).
//
// The package sits below every subsystem it observes: it imports only
// internal/metrics and the standard library, so core, device, wal, anneal
// and the harness can all depend on it without cycles. A nil *Obs (and a
// nil *Ring) is a valid no-op everywhere — the disabled fast path is a
// single nil check, benchmarked in core's BenchmarkFetchTraced.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/metrics"
)

// Config sizes the observability layer.
type Config struct {
	// RingSize is the per-worker event ring capacity, rounded up to a power
	// of two. Default 1024. A full ring overwrites its oldest events.
	RingSize int
	// MaxRings caps how many tracer rings are ever allocated. Workers past
	// the cap get a nil (no-op) ring, so experiment sweeps that churn
	// through thousands of short-lived contexts don't accumulate memory.
	// Default 256.
	MaxRings int
}

// Hist identifies one of the fixed hot-path latency histograms.
type Hist int

// The hot-path histogram registry. All record simulated nanoseconds.
const (
	HFetchDRAM    Hist = iota // fetch that hit a full DRAM page
	HFetchMini                // fetch that hit a DRAM mini page
	HFetchNVM                 // fetch served from NVM (direct or promoted)
	HFetchMiss                // fetch that went to SSD
	HEvictDRAM                // DRAM frame eviction (incl. write-back)
	HEvictNVM                 // NVM frame eviction
	HDevNVMRead               // NVM device read (per op, incl. retries)
	HDevNVMWrite              // NVM device write
	HDevSSDRead               // SSD device read
	HDevSSDWrite              // SSD device write
	HWALAppend                // WAL append (buffer copy + flush if forced)
	HWALFlush                 // WAL buffer flush to the log device
	HCleanerBatch             // one cleaner replenish batch
	NumHists
)

// histNames index by Hist; these become Prometheus metric names
// (spitfire_<name>_ns) and snapshot keys.
var histNames = [NumHists]string{
	"fetch_dram", "fetch_mini", "fetch_nvm", "fetch_miss",
	"evict_dram", "evict_nvm",
	"dev_nvm_read", "dev_nvm_write", "dev_ssd_read", "dev_ssd_write",
	"wal_append", "wal_flush", "cleaner_batch",
}

// Name returns the histogram's snake_case exposition name.
func (h Hist) Name() string { return histNames[h] }

// Sample is one named numeric reading from a Source.
type Sample struct {
	Name  string
	Value int64
}

// Source is implemented by whatever owns the system under observation
// (typically a harness Env): it supplies monotonic counters and point-in-
// time gauges for the live exposition endpoints. Both methods must be safe
// to call from the HTTP serving goroutine while the run is in progress.
type Source interface {
	// ObsCounters returns monotonically increasing totals (hits per tier,
	// migrations, device bytes, WAL appends...).
	ObsCounters() []Sample
	// ObsGauges returns instantaneous values (free frames, dirty frames,
	// resident pages per tier, virtual seconds elapsed).
	ObsGauges() []Sample
}

// Obs is the root observability object. One instance observes one system
// (buffer manager + devices + WAL); share it across the subsystems via
// their configs. All methods are safe on a nil receiver.
type Obs struct {
	cfg   Config
	hists [NumHists]*metrics.Histogram

	// Counters holds event totals owned by obs itself (events emitted,
	// rings capped). Subsystem counters stay in their owners and surface
	// through the Source.
	Counters *metrics.Set

	mu     sync.Mutex
	rings  []*Ring
	capped int // workers refused a ring by MaxRings

	// Auxiliary histograms created on demand by name (per-WAL-shard
	// latencies and the like); exposed after the fixed registry so the
	// default exposition is unchanged when nothing registers one.
	namedMu sync.Mutex
	named   map[string]*metrics.Histogram

	// Experiment-phase tracking (warmup vs measure): baselines taken at
	// BeginPhase, per-phase deltas computed at EndPhase.
	phaseMu   sync.Mutex
	phaseName string
	phaseBase map[string]metrics.HistSnapshot
	phases    []PhaseSnapshot

	source atomic.Pointer[sourceBox]
}

// sourceBox wraps a Source so atomic.Pointer works with interface values.
type sourceBox struct{ s Source }

// New creates an Obs with the given sizing (zero values take defaults).
func New(cfg Config) *Obs {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	// Round up to a power of two for the ring mask.
	sz := 1
	for sz < cfg.RingSize {
		sz <<= 1
	}
	cfg.RingSize = sz
	if cfg.MaxRings <= 0 {
		cfg.MaxRings = 256
	}
	o := &Obs{cfg: cfg, Counters: metrics.NewSet()}
	for i := range o.hists {
		o.hists[i] = metrics.NewHistogram()
	}
	return o
}

// Hist returns the named hot-path histogram, or nil when o is nil. Callers
// keep the returned pointer and nil-check it on the hot path.
func (o *Obs) Hist(h Hist) *metrics.Histogram {
	if o == nil {
		return nil
	}
	return o.hists[h]
}

// NamedHistogram pairs an on-demand histogram with its exposition name.
type NamedHistogram struct {
	Name string
	H    *metrics.Histogram
}

// NamedHist returns the auxiliary histogram registered under name, creating
// it on first use. Returns nil (a valid no-op observer is not available for
// histograms, so callers nil-check) when o is nil.
func (o *Obs) NamedHist(name string) *metrics.Histogram {
	if o == nil {
		return nil
	}
	o.namedMu.Lock()
	defer o.namedMu.Unlock()
	if o.named == nil {
		o.named = map[string]*metrics.Histogram{}
	}
	h := o.named[name]
	if h == nil {
		h = metrics.NewHistogram()
		o.named[name] = h
	}
	return h
}

// NamedHists returns a name-sorted copy of the auxiliary histogram registry.
func (o *Obs) NamedHists() []NamedHistogram {
	if o == nil {
		return nil
	}
	o.namedMu.Lock()
	defer o.namedMu.Unlock()
	out := make([]NamedHistogram, 0, len(o.named))
	for name, h := range o.named {
		out = append(out, NamedHistogram{Name: name, H: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NewRing allocates (and registers) a tracer ring for one worker. Returns
// nil — a valid no-op ring — when o is nil or MaxRings is exhausted.
func (o *Obs) NewRing(label string) *Ring {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.rings) >= o.cfg.MaxRings {
		o.capped++
		return nil
	}
	r := &Ring{
		id:    len(o.rings) + 1,
		label: label,
		mask:  uint64(o.cfg.RingSize - 1),
		slots: make([]ringSlot, o.cfg.RingSize),
	}
	o.rings = append(o.rings, r)
	return r
}

// RingCount reports allocated rings and how many workers were refused one.
func (o *Obs) RingCount() (allocated, capped int) {
	if o == nil {
		return 0, 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.rings), o.capped
}

// SetSource installs the live counter/gauge source for exposition. Safe to
// call at any time, including nil to detach.
func (o *Obs) SetSource(s Source) {
	if o == nil {
		return
	}
	if s == nil {
		o.source.Store(nil)
		return
	}
	o.source.Store(&sourceBox{s: s})
}

// getSource returns the installed Source or nil.
func (o *Obs) getSource() Source {
	if o == nil {
		return nil
	}
	if b := o.source.Load(); b != nil {
		return b.s
	}
	return nil
}

// sortedSamples returns a name-sorted copy (exposition must be stable).
func sortedSamples(in []Sample) []Sample {
	out := make([]Sample, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
