package obs

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server is a live exposition endpoint over one Obs:
//
//	/metrics                 Prometheus text format
//	/snapshot.json           counters, gauges, histogram quantiles, and
//	                         interval deltas/rates since the previous snapshot
//	/trace.json              Chrome trace_event export of the tracer rings
//	/events.jsonl            JSONL export of the tracer rings
//	/debug/pprof/...         the standard pprof handlers
type Server struct {
	obs *Obs
	srv *http.Server
	ln  net.Listener

	mu       sync.Mutex
	lastWall time.Time
	lastCtrs map[string]int64
}

// Serve starts the exposition HTTP server on addr (e.g. ":8080" or
// "127.0.0.1:0"). It returns once the listener is bound; requests are
// served on a background goroutine until Close.
func (o *Obs) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{obs: o, ln: ln}
	s.srv = &http.Server{Handler: s.mux()}
	go s.srv.Serve(ln)
	return s, nil
}

// Handler returns the exposition endpoints as an http.Handler, for mounting
// inside another server's mux (spitfire-serve embeds it under its own
// listener instead of opening a second port). The handler keeps its own
// snapshot-delta state, independent of any Serve instance.
func (o *Obs) Handler() http.Handler {
	s := &Server{obs: o}
	return s.mux()
}

// mux builds the endpoint routing table shared by Serve and Handler.
func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot.json", s.handleSnapshot)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/events.jsonl", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "spitfire obs endpoints: /metrics /snapshot.json /trace.json /events.jsonl /debug/pprof/\n")
	})
	return mux
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.obs.WriteChromeTrace(w)
}

// handleEvents serves the merged event snapshot as JSONL. An optional
// ?pid=<page-id> query (repeatable, comma-separable) narrows the export to
// events touching those logical pages — the per-page forensic view used when
// chasing a single page's migration history.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	keep, err := pageFilter(r.URL.Query()["pid"])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.obs.WriteJSONLFiltered(w, keep)
}

// pageFilter parses pid query values ("7", "7,9") into an event predicate.
// No values means no filtering (nil predicate).
func pageFilter(vals []string) (func(Event) bool, error) {
	if len(vals) == 0 {
		return nil, nil
	}
	pids := map[uint64]bool{}
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			pid, err := strconv.ParseUint(part, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: bad pid %q: %v", part, err)
			}
			pids[pid] = true
		}
	}
	if len(pids) == 0 {
		return nil, nil
	}
	return func(ev Event) bool { return ev.Page != NoPage && pids[ev.Page] }, nil
}

// handleSnapshot serves a JSON snapshot: absolute counters and gauges from
// the Source, per-histogram quantiles, and — when a previous snapshot
// exists — per-counter interval deltas and rates over the wall-clock
// interval between the two scrapes, plus derived hit rates.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	now := time.Now() //vet:allow determinism handleSnapshot scrape-interval rates are wall-clock by definition

	var counters, gauges []Sample
	if src := s.obs.getSource(); src != nil {
		counters = sortedSamples(src.ObsCounters())
		gauges = sortedSamples(src.ObsGauges())
	}

	s.mu.Lock()
	var dt float64
	prev := s.lastCtrs
	if !s.lastWall.IsZero() {
		dt = now.Sub(s.lastWall).Seconds()
	}
	cur := make(map[string]int64, len(counters))
	for _, c := range counters {
		cur[c.Name] = c.Value
	}
	s.lastWall = now
	s.lastCtrs = cur
	s.mu.Unlock()

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\n  \"wall_unix_ns\": %d,\n", now.UnixNano())
	fmt.Fprintf(bw, "  \"interval_seconds\": %.3f,\n", dt)

	writeSampleObj(bw, "counters", counters)
	bw.WriteString(",\n")
	writeSampleObj(bw, "gauges", gauges)
	bw.WriteString(",\n")

	// Interval deltas and per-wall-second rates for every counter that
	// existed in the previous scrape.
	bw.WriteString("  \"deltas\": {")
	first := true
	for _, c := range counters {
		p, ok := prev[c.Name]
		if !ok {
			continue
		}
		if !first {
			bw.WriteString(",")
		}
		first = false
		d := c.Value - p
		rate := 0.0
		if dt > 0 {
			rate = float64(d) / dt
		}
		fmt.Fprintf(bw, "\n    %q: {\"delta\": %d, \"per_second\": %.1f}", c.Name, d, rate)
	}
	bw.WriteString("\n  },\n")

	// Derived hit rates when the source exposes the standard tier counters.
	bw.WriteString("  \"derived\": {")
	writeHitRates(bw, cur, prev)
	bw.WriteString("\n  },\n")

	bw.WriteString("  \"histograms\": {")
	if s.obs != nil {
		for h := Hist(0); h < NumHists; h++ {
			if h > 0 {
				bw.WriteString(",")
			}
			hist := s.obs.hists[h]
			fmt.Fprintf(bw,
				"\n    %q: {\"count\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d}",
				h.Name(), hist.Count(), hist.Mean(),
				hist.Percentile(50), hist.Percentile(90), hist.Percentile(99), hist.Max())
		}
		for _, nh := range s.obs.NamedHists() {
			fmt.Fprintf(bw,
				",\n    %q: {\"count\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d}",
				nh.Name, nh.H.Count(), nh.H.Mean(),
				nh.H.Percentile(50), nh.H.Percentile(90), nh.H.Percentile(99), nh.H.Max())
		}
	}
	bw.WriteString("\n  },\n")

	// Per-phase histogram windows (warmup vs measure): the observations each
	// experiment phase recorded, rather than the cumulative totals above.
	// max_ns is cumulative as of the phase's end — the lock-free histograms
	// keep no windowed maximum.
	bw.WriteString("  \"phase_histograms\": {")
	if s.obs != nil {
		for pi, ph := range s.obs.PhaseSnapshots() {
			if pi > 0 {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "\n    %q: {", ph.Name)
			names := make([]string, 0, len(ph.Hists))
			for name := range ph.Hists {
				names = append(names, name)
			}
			sort.Strings(names)
			first := true
			for _, name := range names {
				hs := ph.Hists[name]
				if hs.Count == 0 {
					continue
				}
				if !first {
					bw.WriteString(",")
				}
				first = false
				fmt.Fprintf(bw,
					"\n      %q: {\"count\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d}",
					name, hs.Count, hs.Mean(),
					hs.Percentile(50), hs.Percentile(90), hs.Percentile(99), hs.Max)
			}
			bw.WriteString("\n    }")
		}
	}
	bw.WriteString("\n  }\n}\n")
	bw.Flush()
}

func writeSampleObj(w io.Writer, key string, samples []Sample) {
	fmt.Fprintf(w, "  %q: {", key)
	for i, s := range samples {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "\n    %q: %d", s.Name, s.Value)
	}
	fmt.Fprint(w, "\n  }")
}

// writeHitRates derives cumulative and interval hit rates from the
// conventional counter names the harness source exposes (hit_dram,
// hit_mini, hit_nvm, miss_ssd). Missing counters simply produce no output.
func writeHitRates(w io.Writer, cur, prev map[string]int64) {
	hitNames := []string{"hit_dram", "hit_mini", "hit_nvm"}
	var hits, total, dHits, dTotal int64
	any := false
	for _, n := range hitNames {
		if v, ok := cur[n]; ok {
			any = true
			hits += v
			total += v
			dHits += v - prev[n]
			dTotal += v - prev[n]
		}
	}
	if v, ok := cur["miss_ssd"]; ok {
		any = true
		total += v
		dTotal += v - prev["miss_ssd"]
	}
	if !any || total == 0 {
		return
	}
	fmt.Fprintf(w, "\n    \"hit_rate\": %.4f", float64(hits)/float64(total))
	if dTotal > 0 {
		fmt.Fprintf(w, ",\n    \"hit_rate_interval\": %.4f", float64(dHits)/float64(dTotal))
	}
}

// StartProgress launches a goroutine that writes a one-line progress report
// to w every interval (default 5s when zero): source gauges plus counter
// rates since the previous tick. The returned stop function halts the
// reporter and waits for it to exit.
func (o *Obs) StartProgress(w io.Writer, interval time.Duration) (stop func()) {
	if o == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		prev := map[string]int64{}
		last := time.Now() //vet:allow determinism StartProgress pacing is wall-clock exposition
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			src := o.getSource()
			if src == nil {
				continue
			}
			now := time.Now() //vet:allow determinism StartProgress pacing is wall-clock exposition
			dt := now.Sub(last).Seconds()
			last = now
			counters := src.ObsCounters()
			cur := make(map[string]int64, len(counters))
			for _, c := range counters {
				cur[c.Name] = c.Value
			}
			var parts []string
			for _, g := range sortedSamples(src.ObsGauges()) {
				parts = append(parts, fmt.Sprintf("%s=%d", g.Name, g.Value))
			}
			// Rate for the busiest few counters keeps the line readable.
			type rate struct {
				name string
				per  float64
			}
			var rates []rate
			for n, v := range cur {
				if d := v - prev[n]; d > 0 && dt > 0 {
					rates = append(rates, rate{n, float64(d) / dt})
				}
			}
			sort.Slice(rates, func(i, j int) bool {
				if rates[i].per != rates[j].per {
					return rates[i].per > rates[j].per
				}
				return rates[i].name < rates[j].name
			})
			if len(rates) > 5 {
				rates = rates[:5]
			}
			for _, r := range rates {
				parts = append(parts, fmt.Sprintf("%s/s=%.0f", r.name, r.per))
			}
			prev = cur
			fmt.Fprintf(w, "[obs] %s\n", joinSpace(parts))
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
