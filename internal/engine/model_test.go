package engine

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// TestQuickTxnModel runs random single-threaded transactions — inserts,
// updates, deletes, reads, with random commit/abort decisions — against a
// reference map. After every transaction boundary the engine must agree
// with the model exactly: committed effects visible, aborted ones gone.
func TestQuickTxnModel(t *testing.T) {
	type op struct {
		Kind  uint8 // insert/update/delete/read
		Key   uint8
		Val   uint8
		Abort bool // whether the enclosing txn aborts
		Split bool // close the current txn and start a new one
	}
	f := func(ops []op) bool {
		bm, err := core.New(core.Config{
			DRAMBytes: 4 * core.PageSize,
			NVMBytes:  8 * core.PageSize,
			Policy:    policy.SpitfireLazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{BM: bm})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := db.CreateTable(1, "model", 64)
		if err != nil {
			t.Fatal(err)
		}
		ctx := core.NewCtx(3)

		model := map[uint64][]byte{}   // committed state
		pending := map[uint64][]byte{} // current txn's view (nil = deleted)
		payload := func(v uint8) []byte {
			p := make([]byte, 64)
			p[0] = v
			p[1] = v ^ 0xFF
			return p
		}

		txn := db.Begin()
		txnAborts := false
		inTxnOps := 0

		closeTxn := func() bool {
			if txnAborts && inTxnOps > 0 {
				if err := txn.Abort(ctx); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := txn.Commit(ctx); err != nil {
					t.Fatal(err)
				}
				for k, v := range pending {
					if v == nil {
						delete(model, k)
					} else {
						model[k] = v
					}
				}
			}
			pending = map[uint64][]byte{}
			txn = db.Begin()
			txnAborts = false
			inTxnOps = 0
			return true
		}

		// view resolves a key through pending then committed state.
		view := func(k uint64) ([]byte, bool) {
			if v, ok := pending[k]; ok {
				return v, v != nil
			}
			v, ok := model[k]
			return v, ok
		}

		for _, o := range ops {
			if o.Split {
				closeTxn()
			}
			if inTxnOps == 0 {
				txnAborts = o.Abort
			}
			k := uint64(o.Key % 24)
			cur, exists := view(k)
			_ = cur
			switch o.Kind % 4 {
			case 0: // insert
				// A key deleted earlier in this same transaction keeps its
				// index entry until commit, so re-insert is rejected even
				// though reads see it as gone.
				_, pendEntry := pending[k]
				_, committed := model[k]
				insertBlocked := pendEntry || committed
				err := tb.Insert(ctx, txn, k, payload(o.Val))
				if insertBlocked {
					if err == nil {
						t.Fatalf("insert of indexed key %d succeeded", k)
					}
				} else {
					if err != nil {
						t.Fatalf("insert of fresh key %d: %v", k, err)
					}
					pending[k] = payload(o.Val)
					inTxnOps++
				}
			case 1: // update
				err := tb.Update(ctx, txn, k, payload(o.Val))
				if !exists {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("update of missing key %d: %v", k, err)
					}
				} else {
					if err != nil {
						t.Fatalf("update of key %d: %v", k, err)
					}
					pending[k] = payload(o.Val)
					inTxnOps++
				}
			case 2: // delete
				err := tb.Delete(ctx, txn, k)
				if !exists {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("delete of missing key %d: %v", k, err)
					}
				} else {
					if err != nil {
						t.Fatalf("delete of key %d: %v", k, err)
					}
					pending[k] = nil
					inTxnOps++
				}
			case 3: // read
				buf := make([]byte, 64)
				err := tb.Read(ctx, txn, k, buf)
				want, ok := view(k)
				if !ok {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("read of missing key %d: %v", k, err)
					}
				} else {
					if err != nil {
						t.Fatalf("read of key %d: %v", k, err)
					}
					if !bytes.Equal(buf, want) {
						t.Fatalf("read of key %d returned wrong payload", k)
					}
				}
			}
		}
		// Close the final txn and audit the whole key space.
		txnAborts = txnAborts && inTxnOps > 0
		closeTxn()
		audit := db.Begin()
		buf := make([]byte, 64)
		for k := uint64(0); k < 24; k++ {
			err := tb.Read(ctx, audit, k, buf)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("audit: key %d should be missing: %v", k, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("audit: key %d: %v", k, err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("audit: key %d wrong payload", k)
			}
		}
		audit.Commit(ctx)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
