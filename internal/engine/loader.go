package engine

import (
	"fmt"

	"github.com/spitfire-db/spitfire/internal/core"
)

// BulkLoader streams pre-committed rows into a table, bypassing
// transactions and the buffer pool: complete pages are composed in memory
// and seeded straight to SSD, exactly how the experiments build their
// (scaled) ~100 GB databases before warm-up. Loaded tuples carry write
// timestamp 1 (committed before any transaction).
//
// A loader is single-threaded and must be Closed to flush its last page.
// Loading must not run concurrently with transactions on the same table.
type BulkLoader struct {
	tb   *Table
	ctx  *core.Ctx
	page []byte
	pid  core.PageID
	slot int
	open bool
}

// NewBulkLoader starts a bulk load into the table.
func (tb *Table) NewBulkLoader(ctx *core.Ctx) *BulkLoader {
	return &BulkLoader{tb: tb, ctx: ctx, page: make([]byte, core.PageSize)}
}

// Append adds one row.
func (l *BulkLoader) Append(key uint64, payload []byte) error {
	tb := l.tb
	if len(payload) != tb.tupleSize {
		return fmt.Errorf("engine: %s: payload is %d bytes, want %d", tb.name, len(payload), tb.tupleSize)
	}
	if !l.open {
		l.pid = tb.db.bm.AllocatePageID()
		for j := range l.page {
			l.page[j] = 0
		}
		encodePageHeader(l.page, tb.id, tb.tupleSize)
		l.slot = 0
		l.open = true
	}
	ss := slotSize(tb.tupleSize)
	off := pageHeaderSize + l.slot*ss
	buildSlot(l.page[off:off+ss], tupleHeader(1, false), key, payload)
	if !tb.index.Insert(key, makeRID(l.pid, l.slot)) {
		return fmt.Errorf("engine: %s: duplicate key %d during load", tb.name, key)
	}
	for _, sec := range tb.secondaries {
		sec.onLoad(key, payload)
	}
	l.slot++
	if l.slot >= tb.slots {
		return l.flush()
	}
	return nil
}

// Close flushes the trailing partial page.
func (l *BulkLoader) Close() error { return l.flush() }

func (l *BulkLoader) flush() error {
	if !l.open {
		return nil
	}
	if err := l.tb.db.bm.SeedPage(l.ctx, l.pid, l.page); err != nil {
		return err
	}
	l.tb.registerPage(l.pid)
	l.open = false
	return nil
}

// Load bulk-inserts n rows via a BulkLoader. Row i's key and payload come
// from gen, which must fill payload (TupleSize bytes) and return the key.
func (tb *Table) Load(ctx *core.Ctx, n uint64, gen func(i uint64, payload []byte) (key uint64)) error {
	l := tb.NewBulkLoader(ctx)
	payload := make([]byte, tb.tupleSize)
	for i := uint64(0); i < n; i++ {
		for j := range payload {
			payload[j] = 0
		}
		key := gen(i, payload)
		if err := l.Append(key, payload); err != nil {
			return err
		}
	}
	return l.Close()
}
