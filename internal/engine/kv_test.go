package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestKV(t *testing.T) (*DB, *KV) {
	t.Helper()
	db := newTestDB(t, true)
	kv, err := OpenKV(db, 7, "kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	return db, kv
}

// TestKVRoundtrip: put/get/overwrite/delete with variable-length values,
// including the empty value and the max-size value.
func TestKVRoundtrip(t *testing.T) {
	db, kv := newTestKV(t)
	ctx := newCtx(1)

	vals := map[uint64][]byte{
		1: []byte("hello"),
		2: {},
		3: bytes.Repeat([]byte{0xab}, kv.MaxValue()),
	}
	txn := db.Begin()
	for k, v := range vals {
		if err := kv.Put(ctx, txn, k, v); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	for k, want := range vals {
		got, err := kv.Get(ctx, txn, k)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("get %d = %q, want %q", k, got, want)
		}
	}
	if _, err := kv.Get(ctx, txn, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing key error = %v, want ErrNotFound", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Overwrite via the update path, then delete.
	txn = db.Begin()
	if err := kv.Put(ctx, txn, 1, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete(ctx, txn, 2); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	got, err := kv.Get(ctx, txn, 1)
	if err != nil || string(got) != "rewritten" {
		t.Fatalf("get after overwrite = %q, %v", got, err)
	}
	if _, err := kv.Get(ctx, txn, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted key error = %v, want ErrNotFound", err)
	}
	if err := kv.Delete(ctx, txn, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing key error = %v, want ErrNotFound", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestKVValueTooLarge: oversized values are rejected before touching pages.
func TestKVValueTooLarge(t *testing.T) {
	db, kv := newTestKV(t)
	ctx := newCtx(2)
	txn := db.Begin()
	defer txn.Commit(ctx)
	if err := kv.Put(ctx, txn, 1, make([]byte, kv.MaxValue()+1)); err == nil {
		t.Fatal("oversized put succeeded")
	}
	if _, err := OpenKV(db, 8, "bad", 0); err == nil {
		t.Fatal("OpenKV with maxVal 0 succeeded")
	}
}

// TestKVScan: scans respect from/limit and decode the stored lengths.
func TestKVScan(t *testing.T) {
	db, kv := newTestKV(t)
	ctx := newCtx(3)
	txn := db.Begin()
	for k := uint64(0); k < 10; k++ {
		if err := kv.Put(ctx, txn, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	defer txn.Commit(ctx)
	var keys []uint64
	err := kv.Scan(ctx, txn, 4, 3, func(k uint64, v []byte) bool {
		if string(v) != fmt.Sprintf("v%d", k) {
			t.Errorf("scan value for %d = %q", k, v)
		}
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 4 || keys[2] != 6 {
		t.Fatalf("scan keys = %v, want [4 5 6]", keys)
	}
}

// TestKVConcurrentUpserts: concurrent first-writes of the same keys must
// never produce duplicate-key failures — losers see ErrConflict (retryable)
// or win cleanly. Every key holds exactly one committed value at the end.
func TestKVConcurrentUpserts(t *testing.T) {
	db, kv := newTestKV(t)
	const workers, keys = 8, 16

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := newCtx(uint64(100 + w))
			for k := uint64(0); k < keys; k++ {
				val := []byte(fmt.Sprintf("w%d", w))
				for attempt := 0; ; attempt++ {
					txn := db.Begin()
					err := kv.Put(ctx, txn, k, val)
					if err == nil {
						err = txn.Commit(ctx)
						if err == nil {
							break
						}
					} else {
						if aerr := txn.Abort(ctx); aerr != nil {
							errs <- aerr
							return
						}
					}
					if !errors.Is(err, ErrConflict) {
						errs <- fmt.Errorf("worker %d key %d: %v", w, k, err)
						return
					}
					if attempt > 1000 {
						errs <- fmt.Errorf("worker %d key %d: livelock", w, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ctx := newCtx(999)
	txn := db.Begin()
	defer txn.Commit(ctx)
	for k := uint64(0); k < keys; k++ {
		v, err := kv.Get(ctx, txn, k)
		if err != nil {
			t.Fatalf("get %d after concurrent upserts: %v", k, err)
		}
		if len(v) < 2 || v[0] != 'w' {
			t.Fatalf("get %d = %q, want one worker's value", k, v)
		}
	}
}
