package engine

import (
	"errors"
	"testing"
)

func TestReviewDeleteThenPutSameTxn(t *testing.T) {
	db, kv := newTestKV(t)
	ctx := newCtx(42)
	txn := db.Begin()
	if err := kv.Put(ctx, txn, 7, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	if err := kv.Delete(ctx, txn, 7); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(ctx, txn, 7, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	got, err := kv.Get(ctx, txn, 7)
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("key 7 lost after delete-then-put in one txn: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q want v2", got)
	}
	txn.Commit(ctx)
}
