package engine

import (
	"bytes"
	"errors"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// TestIndexLookupSurvivesTransientNVMFaults drives index lookups against a
// buffer manager whose NVM data arena injects transient read faults. Faults
// that outlast the retry budget must surface from Table.Read / Table.Scan as
// device.ErrTransient (not as corruption, a wrong tuple, or a panic), and
// once the fault source clears every key must read back with the payload the
// loader wrote.
func TestIndexLookupSurvivesTransientNVMFaults(t *testing.T) {
	// ~140 tuples fit one 16 KiB page, so 2000 keys spread across ~15 pages
	// — far more than the two DRAM frames, forcing lookups through NVM.
	const keys = 2000

	// NVM arena with an attached fault injector, initially injecting nothing
	// so the load phase is clean. DRAM holds only two frames, so index
	// lookups fault most pages in through the NVM tier.
	nvmDev := device.New(device.NVMParams)
	inj := device.NewInjector(device.FaultConfig{Seed: 0x1D8})
	nvmDev.SetFaults(inj)
	const nvmBytes = 256 * core.PageSize
	bm, err := core.New(core.Config{
		DRAMBytes: 2 * core.PageSize,
		NVMBytes:  nvmBytes,
		Policy:    policy.SpitfireEager,
		PMem:      pmem.New(pmem.Options{Size: nvmBytes, Device: nvmDev}),
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{BM: bm})
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()
	tb, err := db.CreateTable(1, "kv", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}

	ctx := newCtx(0x1D8)
	txn := db.Begin()
	for k := uint64(0); k < keys; k++ {
		if err := tb.Insert(ctx, txn, k, payloadFor(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Fault phase: every checked NVM read fails, which exhausts the retry
	// budget deterministically. Point lookups and the B+Tree-ordered scan
	// must both report the fault as device.ErrTransient.
	inj.Rearm(device.FaultConfig{Seed: 0x1D9, ReadErrProb: 1})
	sawTransient := false
	buf := make([]byte, testTupleSize)
	for k := uint64(0); k < keys; k++ {
		txn = db.Begin()
		err := tb.Read(ctx, txn, k, buf)
		_ = txn.Commit(ctx)
		if err == nil {
			continue // page happened to be DRAM-resident
		}
		if !errors.Is(err, device.ErrTransient) {
			t.Fatalf("key %d: fault surfaced as %v, want device.ErrTransient", k, err)
		}
		sawTransient = true
	}
	if !sawTransient {
		t.Fatal("no lookup touched the faulting NVM tier; geometry does not exercise the fault path")
	}
	txn = db.Begin()
	err = tb.Scan(ctx, txn, 0, func(uint64, []byte) bool { return true })
	_ = txn.Commit(ctx)
	if err != nil && !errors.Is(err, device.ErrTransient) {
		t.Fatalf("scan fault surfaced as %v, want device.ErrTransient", err)
	}

	// Fault source clears: every key must be readable again with the loaded
	// payload, and the ordered scan must visit the full key range.
	inj.Rearm(device.FaultConfig{Seed: 0x1DA})
	for k := uint64(0); k < keys; k++ {
		txn = db.Begin()
		if err := tb.Read(ctx, txn, k, buf); err != nil {
			t.Fatalf("key %d unreadable after faults cleared: %v", k, err)
		}
		if !bytes.Equal(buf, payloadFor(k, 1)) {
			t.Fatalf("key %d: payload corrupted across fault phase", k)
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	txn = db.Begin()
	next := uint64(0)
	err = tb.Scan(ctx, txn, 0, func(key uint64, payload []byte) bool {
		if key != next {
			t.Fatalf("scan out of order: got key %d, want %d", key, next)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatalf("scan after faults cleared: %v", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if next != keys {
		t.Fatalf("scan visited %d keys, want %d", next, keys)
	}
	if st := inj.Stats(); st.ReadErrors == 0 {
		t.Fatal("injector recorded no read errors; fault phase never reached the device")
	}
}
