package engine

import (
	"encoding/binary"
	"fmt"

	"github.com/spitfire-db/spitfire/internal/core"
)

// Page layout (within the 16 KB buffer-managed page):
//
//	[0,  4)  magic
//	[4,  8)  table id
//	[8, 12)  tuple payload size
//	[12, 64) reserved
//	[64, …)  fixed-size tuple slots
//
// Each slot is: 8-byte tuple header | 8-byte key | payload. The tuple
// header carries the version's write timestamp plus occupancy/tombstone
// flags, which is all MVTO needs to decide visibility (§5.2). Page LSNs are
// unnecessary: the WAL logs full slot images, so redo is a blind physical
// replay in LSN order.
const (
	pageHeaderSize = 64
	pageMagic      = 0x53504750 // "SPGP"

	tupleHeaderSize = 8
	keySize         = 8

	// Tuple header flags (top bits of the 64-bit header; the rest is the
	// write timestamp).
	flagOccupied  = uint64(1) << 62
	flagTombstone = uint64(1) << 63
	wtsMask       = flagOccupied - 1
)

// slotSize returns the on-page size of one tuple slot.
func slotSize(tupleSize int) int { return tupleHeaderSize + keySize + tupleSize }

// slotsPerPage returns how many tuples of the given payload size fit.
func slotsPerPage(tupleSize int) int {
	return (core.PageSize - pageHeaderSize) / slotSize(tupleSize)
}

// slotOffset returns the page offset of slot s.
func slotOffset(tupleSize, s int) int {
	return pageHeaderSize + s*slotSize(tupleSize)
}

// RID identifies a tuple: page id in the high bits, slot in the low 12.
type RID = uint64

const ridSlotBits = 12

// makeRID packs a page id and slot.
func makeRID(pid core.PageID, slot int) RID {
	return pid<<ridSlotBits | uint64(slot)
}

// splitRID unpacks a RID.
func splitRID(rid RID) (core.PageID, int) {
	return rid >> ridSlotBits, int(rid & (1<<ridSlotBits - 1))
}

// tupleHeader packs flags and a write timestamp.
func tupleHeader(wts uint64, tombstone bool) uint64 {
	h := flagOccupied | (wts & wtsMask)
	if tombstone {
		h |= flagTombstone
	}
	return h
}

// parseTupleHeader unpacks a tuple header.
func parseTupleHeader(h uint64) (wts uint64, occupied, tombstone bool) {
	return h & wtsMask, h&flagOccupied != 0, h&flagTombstone != 0
}

// encodePageHeader writes the page header into buf.
func encodePageHeader(buf []byte, tableID uint32, tupleSize int) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], pageMagic)
	le.PutUint32(buf[4:], tableID)
	le.PutUint32(buf[8:], uint32(tupleSize))
}

// decodePageHeader parses a page header.
func decodePageHeader(buf []byte) (tableID uint32, tupleSize int, ok bool) {
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != pageMagic {
		return 0, 0, false
	}
	return le.Uint32(buf[4:]), int(le.Uint32(buf[8:])), true
}

// slotImage is a helper bundling a full slot's bytes with parsed fields.
type slotImage struct {
	header  uint64
	key     uint64
	payload []byte // aliases the raw slot buffer
	raw     []byte
}

func parseSlot(raw []byte) slotImage {
	le := binary.LittleEndian
	return slotImage{
		header:  le.Uint64(raw[0:]),
		key:     le.Uint64(raw[8:]),
		payload: raw[tupleHeaderSize+keySize:],
		raw:     raw,
	}
}

// buildSlot serializes a slot image into dst.
func buildSlot(dst []byte, header, key uint64, payload []byte) {
	le := binary.LittleEndian
	le.PutUint64(dst[0:], header)
	le.PutUint64(dst[8:], key)
	copy(dst[tupleHeaderSize+keySize:], payload)
}

// validateSlot bounds-checks a slot index for a table.
func validateSlot(tupleSize, slot int) error {
	if slot < 0 || slot >= slotsPerPage(tupleSize) {
		return fmt.Errorf("engine: slot %d out of range for %d-byte tuples", slot, tupleSize)
	}
	return nil
}
