package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/wal"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

const testTupleSize = 100

func newTestDB(t *testing.T, withWAL bool) *DB {
	t.Helper()
	bm, err := core.New(core.Config{
		DRAMBytes: 8 * core.PageSize,
		NVMBytes:  32 * core.PageSize,
		Policy:    policy.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	var w *wal.Manager
	if withWAL {
		w, err = wal.New(wal.Options{
			Buffer: pmem.New(pmem.Options{Size: 1 << 18}),
			Store:  wal.NewMemLog(nil),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	db, err := Open(Options{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func newCtx(seed uint64) *core.Ctx { return core.NewCtx(seed) }

func payloadFor(key uint64, version byte) []byte {
	p := make([]byte, testTupleSize)
	binary.LittleEndian.PutUint64(p, key)
	p[9] = version
	return p
}

func TestInsertReadUpdateDelete(t *testing.T) {
	db := newTestDB(t, true)
	tb, err := db.CreateTable(1, "kv", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(1)

	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 42, payloadFor(42, 1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	buf := make([]byte, testTupleSize)
	if err := tb.Read(ctx, txn, 42, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payloadFor(42, 1)) {
		t.Fatal("read returned wrong payload")
	}
	if err := tb.Update(ctx, txn, 42, payloadFor(42, 2)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	if err := tb.Read(ctx, txn, 42, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] != 2 {
		t.Fatalf("update lost: version byte %d", buf[9])
	}
	if err := tb.Delete(ctx, txn, 42); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	if err := tb.Read(ctx, txn, 42, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateInsertFails(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(2)
	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 7, payloadFor(7, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(ctx, txn, 7, payloadFor(7, 2)); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	txn.Commit(ctx)
}

func TestAbortRollsBack(t *testing.T) {
	db := newTestDB(t, true)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(3)

	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 1, payloadFor(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Update then abort: the old value must come back and the aborted
	// insert must vanish from the index.
	txn = db.Begin()
	if err := tb.Update(ctx, txn, 1, payloadFor(1, 9)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(ctx, txn, 2, payloadFor(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	buf := make([]byte, testTupleSize)
	if err := tb.Read(ctx, txn, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] != 1 {
		t.Fatalf("aborted update visible: version %d", buf[9])
	}
	if err := tb.Read(ctx, txn, 2, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert visible: %v", err)
	}
	txn.Commit(ctx)
}

func TestSnapshotReadSeesOldVersion(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(4)

	setup := db.Begin()
	if err := tb.Insert(ctx, setup, 5, payloadFor(5, 1)); err != nil {
		t.Fatal(err)
	}
	setup.Commit(ctx)

	older := db.Begin() // snapshot before the update below
	writer := db.Begin()
	if err := tb.Update(ctx, writer, 5, payloadFor(5, 2)); err != nil {
		t.Fatal(err)
	}
	writer.Commit(ctx)

	buf := make([]byte, testTupleSize)
	if err := tb.Read(ctx, older, 5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] != 1 {
		t.Fatalf("older snapshot saw version %d, want 1", buf[9])
	}
	older.Commit(ctx)

	fresh := db.Begin()
	if err := tb.Read(ctx, fresh, 5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] != 2 {
		t.Fatalf("fresh snapshot saw version %d, want 2", buf[9])
	}
	fresh.Commit(ctx)
}

func TestLoadBulk(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(5)
	const rows = 100
	err := tb.Load(ctx, rows, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, i)
		p[9] = 1
		return i
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Index().Len() != rows {
		t.Fatalf("index holds %d keys, want %d", tb.Index().Len(), rows)
	}
	txn := db.Begin()
	buf := make([]byte, testTupleSize)
	for k := uint64(0); k < rows; k++ {
		if err := tb.Read(ctx, txn, k, buf); err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if binary.LittleEndian.Uint64(buf) != k {
			t.Fatalf("key %d read wrong payload", k)
		}
	}
	txn.Commit(ctx)
	// 100 rows x 116-byte slots at 16 slots/page... actually
	// (16384-64)/116 = 140 slots/page -> 1 page.
	if got := len(tb.Pages()); got != 1 {
		t.Fatalf("loader used %d pages", got)
	}
}

func TestScanKeys(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(6)
	tb.Load(ctx, 50, func(i uint64, p []byte) uint64 { return i * 2 })
	var got []uint64
	tb.ScanKeys(10, func(k uint64, _ RID) bool {
		if k >= 20 {
			return false
		}
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

func TestConcurrentTransactions(t *testing.T) {
	db := newTestDB(t, true)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	loadCtx := newCtx(7)
	const keys = 64
	tb.Load(loadCtx, keys, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, 0)
		return i
	})

	const workers, opsEach = 8, 300
	var committed atomic64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := newCtx(uint64(w) + 100)
			rng := zipf.NewRand(uint64(w) * 31)
			buf := make([]byte, testTupleSize)
			for i := 0; i < opsEach; i++ {
				key := rng.Uint64n(keys)
				txn := db.Begin()
				if err := tb.Read(ctx, txn, key, buf); err != nil {
					txn.Abort(ctx)
					continue
				}
				v := binary.LittleEndian.Uint64(buf)
				binary.LittleEndian.PutUint64(buf, v+1)
				if err := tb.Update(ctx, txn, key, buf); err != nil {
					txn.Abort(ctx)
					continue
				}
				if err := txn.Commit(ctx); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				committed.inc()
			}
		}(w)
	}
	wg.Wait()

	// Sum of counters must equal the number of committed increments.
	ctx := newCtx(999)
	txn := db.Begin()
	var sum uint64
	buf := make([]byte, testTupleSize)
	for k := uint64(0); k < keys; k++ {
		if err := tb.Read(ctx, txn, k, buf); err != nil {
			t.Fatal(err)
		}
		sum += binary.LittleEndian.Uint64(buf)
	}
	txn.Commit(ctx)
	if sum != committed.load() {
		t.Fatalf("counter sum %d != committed increments %d", sum, committed.load())
	}
	commits, aborts := db.TxnStats()
	t.Logf("commits=%d aborts=%d", commits, aborts)
}

type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) inc()         { a.mu.Lock(); a.v++; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestCrashRecoveryEndToEnd(t *testing.T) {
	// Build a database with shared crash-tracked NVM arenas, run committed
	// and uncommitted work, crash, recover, and verify exactly the
	// committed state survives.
	dataArena := pmem.New(pmem.Options{Size: 32 * (core.PageSize + 64), TrackCrashes: true})
	logArena := pmem.New(pmem.Options{Size: 1 << 18, TrackCrashes: true})
	disk := ssd.NewMem(nil)
	logStore := wal.NewMemLog(nil)

	bmCfg := core.Config{
		DRAMBytes: 8 * core.PageSize,
		NVMBytes:  dataArena.Size(),
		Policy:    policy.SpitfireLazy,
		PMem:      dataArena,
		SSD:       disk,
	}
	bm, err := core.New(bmCfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.New(wal.Options{Buffer: logArena, Store: logStore})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(1, "kv", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(8)
	tb.Load(ctx, 32, func(i uint64, p []byte) uint64 {
		p[9] = 1
		return i
	})

	// Committed update on key 3.
	txn := db.Begin()
	if err := tb.Update(ctx, txn, 3, payloadFor(3, 7)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Committed insert of key 100.
	txn = db.Begin()
	if err := tb.Insert(ctx, txn, 100, payloadFor(100, 7)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Uncommitted update on key 5 — must be rolled back by recovery.
	loser := db.Begin()
	if err := tb.Update(ctx, loser, 5, payloadFor(5, 66)); err != nil {
		t.Fatal(err)
	}

	// CRASH: both arenas lose unpersisted state.
	dataArena.Crash()
	logArena.Crash()

	bm2, err := core.Recover(core.Config{
		DRAMBytes: bmCfg.DRAMBytes,
		NVMBytes:  bmCfg.NVMBytes,
		Policy:    bmCfg.Policy,
		PMem:      dataArena,
		SSD:       disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := NewRecoveryCtx()
	db2, rl, err := Recover(rctx, RecoverOptions{
		BM:     bm2,
		WAL:    wal.Options{Buffer: logArena, Store: logStore},
		Schema: []TableDef{{ID: 1, Name: "kv", TupleSize: testTupleSize}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Losers) != 1 {
		t.Fatalf("losers = %v, want exactly the in-flight txn", rl.Losers)
	}

	tb2 := db2.Table(1)
	buf := make([]byte, testTupleSize)
	check := db2.Begin()
	if err := tb2.Read(rctx, check, 3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] != 7 {
		t.Fatalf("committed update lost: version %d", buf[9])
	}
	if err := tb2.Read(rctx, check, 100, buf); err != nil {
		t.Fatalf("committed insert lost: %v", err)
	}
	if err := tb2.Read(rctx, check, 5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] == 66 {
		t.Fatal("uncommitted update survived recovery")
	}
	check.Commit(rctx)

	// The database stays usable after recovery.
	txn2 := db2.Begin()
	if err := tb2.Update(rctx, txn2, 5, payloadFor(5, 8)); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Commit(rctx); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryIdempotentReplay(t *testing.T) {
	// Recover twice in a row (second crash immediately after recovery):
	// state must be identical.
	dataArena := pmem.New(pmem.Options{Size: 16 * (core.PageSize + 64), TrackCrashes: true})
	logArena := pmem.New(pmem.Options{Size: 1 << 17, TrackCrashes: true})
	disk := ssd.NewMem(nil)
	logStore := wal.NewMemLog(nil)

	mk := func() (*DB, *Table) {
		bm, err := core.New(core.Config{
			DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
			Policy: policy.SpitfireEager, PMem: dataArena, SSD: disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := wal.New(wal.Options{Buffer: logArena, Store: logStore})
		if err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{BM: bm, WAL: w})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := db.CreateTable(1, "kv", testTupleSize)
		if err != nil {
			t.Fatal(err)
		}
		return db, tb
	}
	db, tb := mk()
	ctx := newCtx(9)
	tb.Load(ctx, 8, func(i uint64, p []byte) uint64 { p[9] = 1; return i })
	txn := db.Begin()
	if err := tb.Update(ctx, txn, 2, payloadFor(2, 5)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	recover := func() *DB {
		dataArena.Crash()
		logArena.Crash()
		bm2, err := core.Recover(core.Config{
			DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
			Policy: policy.SpitfireEager, PMem: dataArena, SSD: disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		rctx := NewRecoveryCtx()
		db2, _, err := Recover(rctx, RecoverOptions{
			BM:     bm2,
			WAL:    wal.Options{Buffer: logArena, Store: logStore},
			Schema: []TableDef{{ID: 1, Name: "kv", TupleSize: testTupleSize}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return db2
	}

	db2 := recover()
	db3 := recover() // crash again right after recovery

	for _, d := range []*DB{db2, db3} {
		rctx := NewRecoveryCtx()
		txn := d.Begin()
		buf := make([]byte, testTupleSize)
		if err := d.Table(1).Read(rctx, txn, 2, buf); err != nil {
			t.Fatal(err)
		}
		if buf[9] != 5 {
			t.Fatalf("committed version lost on replay: %d", buf[9])
		}
		txn.Commit(rctx)
	}
}
