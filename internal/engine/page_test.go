package engine

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/spitfire-db/spitfire/internal/core"
)

func TestSlotGeometry(t *testing.T) {
	// YCSB: 1000 B payloads yield 16 slots per 16 KB page, matching the
	// paper's ~16 x 1 KB tuples per page.
	if got := slotsPerPage(1000); got != 16 {
		t.Fatalf("slotsPerPage(1000) = %d, want 16", got)
	}
	// Slots never overflow the page.
	for _, size := range []int{8, 64, 100, 256, 560, 1000, 4000} {
		n := slotsPerPage(size)
		if n < 1 {
			t.Fatalf("tuple size %d fits no slot", size)
		}
		end := slotOffset(size, n-1) + slotSize(size)
		if end > core.PageSize {
			t.Fatalf("tuple size %d: slot %d ends at %d", size, n-1, end)
		}
		if err := validateSlot(size, n-1); err != nil {
			t.Fatal(err)
		}
		if err := validateSlot(size, n); err == nil {
			t.Fatalf("slot %d validated for tuple size %d", n, size)
		}
	}
}

func TestRIDPacking(t *testing.T) {
	f := func(pid uint64, slot uint16) bool {
		pid %= 1 << 50
		s := int(slot) % (1 << ridSlotBits)
		gp, gs := splitRID(makeRID(pid, s))
		return gp == pid && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleHeaderRoundTrip(t *testing.T) {
	f := func(wts uint64, tomb bool) bool {
		wts &= wtsMask
		h := tupleHeader(wts, tomb)
		gw, occ, gt := parseTupleHeader(h)
		return gw == wts && occ && gt == tomb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// The zero header is unoccupied.
	if _, occ, _ := parseTupleHeader(0); occ {
		t.Fatal("zero header parsed as occupied")
	}
}

func TestPageHeaderRoundTrip(t *testing.T) {
	buf := make([]byte, pageHeaderSize)
	encodePageHeader(buf, 42, 1000)
	id, size, ok := decodePageHeader(buf)
	if !ok || id != 42 || size != 1000 {
		t.Fatalf("decode = (%d, %d, %v)", id, size, ok)
	}
	// Garbage is rejected.
	if _, _, ok := decodePageHeader(make([]byte, pageHeaderSize)); ok {
		t.Fatal("zero header decoded")
	}
}

func TestSlotImageRoundTrip(t *testing.T) {
	f := func(key uint64, payload []byte) bool {
		if len(payload) > 128 {
			payload = payload[:128]
		}
		size := 128
		raw := make([]byte, slotSize(size))
		p := make([]byte, size)
		copy(p, payload)
		buildSlot(raw, tupleHeader(77, false), key, p)
		img := parseSlot(raw)
		wts, occ, tomb := parseTupleHeader(img.header)
		return wts == 77 && occ && !tomb && img.key == key && bytes.Equal(img.payload, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTableLimits(t *testing.T) {
	db := newTestDB(t, false)
	if _, err := db.CreateTable(1, "too-big", core.PageSize); err == nil {
		t.Fatal("page-sized tuple accepted")
	}
	if _, err := db.CreateTable(1, "zero", 0); err == nil {
		t.Fatal("zero tuple accepted")
	}
	// Even the smallest tuples stay under the RID slot bits (a 17-byte
	// slot yields at most 960 slots per page, < 2^12).
	if _, err := db.CreateTable(1, "tiny", 1); err != nil {
		t.Fatalf("1-byte tuples rejected: %v", err)
	}
	if _, err := db.CreateTable(2, "ok", 16); err != nil {
		t.Fatalf("16-byte tuples rejected: %v", err)
	}
	if _, err := db.CreateTable(2, "dup", 16); err == nil {
		t.Fatal("duplicate table id accepted")
	}
}
