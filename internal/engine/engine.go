// Package engine is the storage engine the paper's workloads run against:
// heap tables of fixed-size tuples on buffer-managed 16 KB pages, a
// B+Tree primary index per table, MVTO transactions, and NVM-aware
// write-ahead logging — the full stack of §5.
//
// The engine deliberately keeps I/O on the measured paths: every tuple read
// and write flows through the buffer manager (charging the simulated
// devices), every transactional update is logged to the NVM log buffer, and
// commits persist there exactly as §5.2 describes.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/mvto"
	"github.com/spitfire-db/spitfire/internal/wal"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("engine: key not found")

// ErrConflict re-exports the MVTO conflict error; transactions hitting it
// must Abort and may retry.
var ErrConflict = mvto.ErrConflict

// Options configures a DB.
type Options struct {
	// BM is the buffer manager. Required.
	BM *core.BufferManager
	// WAL enables write-ahead logging when non-nil. Pure buffer-manager
	// benchmarks may run without it.
	WAL *wal.Manager
	// ComputeCost is the simulated CPU time (ns) charged per tuple
	// operation on top of device costs. Defaults to 200 ns.
	ComputeCost int64
	// GCEvery runs MVTO version garbage collection after this many
	// commits. Defaults to 65536; 0 keeps the default, negative disables.
	GCEvery int64
}

// DB is an open database.
type DB struct {
	bm          *core.BufferManager
	wal         *wal.Manager
	tm          *mvto.Manager
	computeCost int64
	gcEvery     int64

	mu     sync.RWMutex
	tables map[uint32]*Table

	commitCount atomic.Int64
}

// Open creates a database over the given buffer manager.
func Open(opt Options) (*DB, error) {
	if opt.BM == nil {
		return nil, errors.New("engine: a buffer manager is required")
	}
	if opt.ComputeCost == 0 {
		opt.ComputeCost = 200
	}
	if opt.GCEvery == 0 {
		opt.GCEvery = 65536
	}
	return &DB{
		bm:          opt.BM,
		wal:         opt.WAL,
		tm:          mvto.NewManager(),
		computeCost: opt.ComputeCost,
		gcEvery:     opt.GCEvery,
		tables:      make(map[uint32]*Table),
	}, nil
}

// BM returns the underlying buffer manager.
func (db *DB) BM() *core.BufferManager { return db.bm }

// WAL returns the log manager (nil when logging is disabled).
func (db *DB) WAL() *wal.Manager { return db.wal }

// TxnStats reports transaction commit/abort counts.
func (db *DB) TxnStats() (commits, aborts int64) { return db.tm.Stats() }

// chargeCompute accounts the per-operation CPU cost.
func (db *DB) chargeCompute(ctx *core.Ctx) {
	ctx.Clock.Advance(db.computeCost)
}

// CreateTable registers a table of fixed-size tuples. IDs must be unique.
func (db *DB) CreateTable(id uint32, name string, tupleSize int) (*Table, error) {
	if tupleSize <= 0 || slotSize(tupleSize) > core.PageSize-pageHeaderSize {
		return nil, fmt.Errorf("engine: tuple size %d does not fit a page", tupleSize)
	}
	if int(1)<<ridSlotBits <= slotsPerPage(tupleSize) {
		return nil, fmt.Errorf("engine: %d slots per page exceeds RID slot bits", slotsPerPage(tupleSize))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[id]; dup {
		return nil, fmt.Errorf("engine: table id %d already exists", id)
	}
	tb := newTable(db, id, name, tupleSize)
	db.tables[id] = tb
	return tb, nil
}

// Table returns the table with the given id, or nil.
func (db *DB) Table(id uint32) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[id]
}

// Txn is a transaction handle. It is owned by one worker goroutine.
type Txn struct {
	db      *DB
	inner   *mvto.Txn
	lastLSN uint64
	began   bool // BEGIN record written

	// idxInserts tracks (table, key) pairs added to indexes by this
	// transaction, removed again on abort.
	idxInserts []idxOp
	// idxDeletes tracks (table, key) pairs to remove at commit.
	idxDeletes []idxOp
	// secUndos undo secondary-index changes on abort; secDeletes apply
	// secondary-index removals at commit.
	secUndos   []func()
	secDeletes []func()
}

type idxOp struct {
	table *Table
	key   uint64
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	return &Txn{db: db, inner: db.tm.Begin()}
}

// TS returns the transaction's start timestamp.
func (t *Txn) TS() uint64 { return t.inner.TS }

// log appends a WAL record for this transaction (no-op without a WAL).
func (t *Txn) log(ctx *core.Ctx, rec *wal.Record) error {
	if t.db.wal == nil {
		return nil
	}
	if !t.began {
		t.began = true
		lsn, err := t.db.wal.Append(ctx.Clock, &wal.Record{TxnID: t.inner.TS, Type: wal.RecBegin})
		if err != nil {
			return err
		}
		t.lastLSN = lsn
	}
	rec.TxnID = t.inner.TS
	rec.PrevLSN = t.lastLSN
	lsn, err := t.db.wal.Append(ctx.Clock, rec)
	if err != nil {
		return err
	}
	t.lastLSN = lsn
	return nil
}

// Commit makes the transaction durable: its commit record is persisted in
// the NVM log buffer (§5.2), after which its in-place versions are the
// committed state.
func (t *Txn) Commit(ctx *core.Ctx) error {
	if t.began {
		if err := t.log(ctx, &wal.Record{Type: wal.RecCommit}); err != nil {
			return err
		}
	}
	for _, op := range t.idxDeletes {
		op.table.index.Delete(op.key)
	}
	for _, f := range t.secDeletes {
		f()
	}
	t.db.tm.Commit(t.inner)
	if n := t.db.commitCount.Add(1); t.db.gcEvery > 0 && n%t.db.gcEvery == 0 {
		t.db.tm.GC()
	}
	return nil
}

// Abort rolls the transaction back: every written slot is restored from its
// parked before-image and index insertions are removed.
func (t *Txn) Abort(ctx *core.Ctx) error {
	undos := t.db.tm.AbortStart(t.inner)
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		pid, slot := splitRID(u.RID)
		h, err := t.db.bm.FetchPage(ctx, pid, core.WriteIntent)
		if err != nil {
			return fmt.Errorf("engine: abort restore of rid %d: %w", u.RID, err)
		}
		tb := t.db.tableForRIDLocked(u.RID)
		if tb == nil {
			h.Release()
			return fmt.Errorf("engine: abort: no table for rid %d", u.RID)
		}
		err = h.WriteAt(ctx, slotOffset(tb.tupleSize, slot), u.Before)
		h.Release()
		if err != nil {
			return err
		}
	}
	for _, op := range t.idxInserts {
		op.table.index.Delete(op.key)
	}
	for i := len(t.secUndos) - 1; i >= 0; i-- {
		t.secUndos[i]()
	}
	if t.began {
		if err := t.log(ctx, &wal.Record{Type: wal.RecAbort}); err != nil {
			return err
		}
	}
	t.db.tm.AbortFinish(t.inner)
	return nil
}

// Checkpoint implements the paper's log-truncation protocol (§5.2): flush
// every dirty DRAM page down to durable media (NVM copies stay in place —
// NVM is persistent), force the log, write a checkpoint record, and
// truncate the log file. It must run quiescently (no concurrent
// transactions); it returns the number of pages it could not flush, which
// is non-zero only if that requirement was violated.
func (db *DB) Checkpoint(ctx *core.Ctx) (skipped int, err error) {
	skipped, err = db.bm.FlushDirtyDRAM(ctx)
	if err != nil || skipped > 0 {
		return skipped, err
	}
	if db.wal == nil {
		return 0, nil
	}
	if err := db.wal.Flush(ctx.Clock); err != nil {
		return 0, err
	}
	if err := db.wal.Truncate(ctx.Clock); err != nil {
		return 0, err
	}
	_, err = db.wal.Append(ctx.Clock, &wal.Record{Type: wal.RecCheckpoint})
	return 0, err
}

// tableForRIDLocked finds the table owning a RID via its registered page
// set. RIDs are dense per table, so this consults the owning table map.
func (db *DB) tableForRIDLocked(rid RID) *Table {
	pid, _ := splitRID(rid)
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, tb := range db.tables {
		if tb.ownsPage(pid) {
			return tb
		}
	}
	return nil
}
