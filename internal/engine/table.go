package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/spitfire-db/spitfire/internal/btree"
	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/wal"
)

// Table is a heap of fixed-size tuples with a B+Tree primary index.
type Table struct {
	db        *DB
	id        uint32
	name      string
	tupleSize int
	slots     int // slots per page

	index *btree.Tree[uint64]

	allocMu  chan struct{} // binary semaphore guarding the allocation cursor
	curPage  core.PageID
	curSlot  int
	havePage bool
	pages    map[core.PageID]bool
	pageList []core.PageID

	secondaries []secondary
}

func newTable(db *DB, id uint32, name string, tupleSize int) *Table {
	tb := &Table{
		db:        db,
		id:        id,
		name:      name,
		tupleSize: tupleSize,
		slots:     slotsPerPage(tupleSize),
		index:     btree.New[uint64](),
		allocMu:   make(chan struct{}, 1),
		pages:     make(map[core.PageID]bool),
	}
	tb.allocMu <- struct{}{}
	return tb
}

// ID returns the table id.
func (tb *Table) ID() uint32 { return tb.id }

// Name returns the table name.
func (tb *Table) Name() string { return tb.name }

// TupleSize returns the tuple payload size.
func (tb *Table) TupleSize() int { return tb.tupleSize }

// Index exposes the primary index (key → RID) for range scans.
func (tb *Table) Index() *btree.Tree[uint64] { return tb.index }

// Pages returns a snapshot of the table's page list.
func (tb *Table) Pages() []core.PageID {
	<-tb.allocMu
	out := append([]core.PageID(nil), tb.pageList...)
	tb.allocMu <- struct{}{}
	return out
}

func (tb *Table) ownsPage(pid core.PageID) bool {
	<-tb.allocMu
	ok := tb.pages[pid]
	tb.allocMu <- struct{}{}
	return ok
}

// registerPage records a page as belonging to this table (loader/recovery).
func (tb *Table) registerPage(pid core.PageID) {
	<-tb.allocMu
	if !tb.pages[pid] {
		tb.pages[pid] = true
		tb.pageList = append(tb.pageList, pid)
	}
	tb.allocMu <- struct{}{}
}

// allocRID reserves a fresh slot, creating (and header-initializing) a new
// page through the buffer manager when the current one fills up.
func (tb *Table) allocRID(ctx *core.Ctx) (RID, error) {
	<-tb.allocMu
	defer func() { tb.allocMu <- struct{}{} }()
	if !tb.havePage || tb.curSlot >= tb.slots {
		pid, h, err := tb.db.bm.NewPage(ctx)
		if err != nil {
			return 0, err
		}
		var hdr [pageHeaderSize]byte
		encodePageHeader(hdr[:], tb.id, tb.tupleSize)
		if err := h.WriteAt(ctx, 0, hdr[:]); err != nil {
			h.Release()
			return 0, err
		}
		h.Release()
		tb.curPage, tb.curSlot, tb.havePage = pid, 0, true
		tb.pages[pid] = true
		tb.pageList = append(tb.pageList, pid)
	}
	rid := makeRID(tb.curPage, tb.curSlot)
	tb.curSlot++
	return rid, nil
}

// readSlot copies the full slot image at rid via the handle.
func (tb *Table) readSlot(ctx *core.Ctx, h *core.Handle, slot int, buf []byte) error {
	return h.ReadAt(ctx, slotOffset(tb.tupleSize, slot), buf)
}

// slotWTS reads just the tuple header at rid via the handle.
func (tb *Table) slotWTS(ctx *core.Ctx, h *core.Handle, slot int) (uint64, error) {
	var hdr [tupleHeaderSize]byte
	if err := h.ReadAt(ctx, slotOffset(tb.tupleSize, slot), hdr[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(hdr[:]), nil
}

// Insert adds a tuple under key. It fails if the key already exists.
func (tb *Table) Insert(ctx *core.Ctx, txn *Txn, key uint64, payload []byte) error {
	if len(payload) != tb.tupleSize {
		return fmt.Errorf("engine: %s: payload is %d bytes, want %d", tb.name, len(payload), tb.tupleSize)
	}
	if _, exists := tb.index.Get(key); exists {
		return fmt.Errorf("engine: %s: duplicate key %d", tb.name, key)
	}
	tb.db.chargeCompute(ctx)
	rid, err := tb.allocRID(ctx)
	if err != nil {
		return err
	}
	pid, slot := splitRID(rid)
	h, err := tb.db.bm.FetchPage(ctx, pid, core.WriteIntent)
	if err != nil {
		return err
	}
	defer h.Release()

	ss := slotSize(tb.tupleSize)
	err = tb.db.tm.Write(txn.inner, rid,
		func() uint64 {
			wts, _ := tb.slotWTS(ctx, h, slot)
			w, _, _ := parseTupleHeader(wts)
			return w
		},
		func() ([]byte, error) {
			before := make([]byte, ss)
			if err := tb.readSlot(ctx, h, slot, before); err != nil {
				return nil, err
			}
			after := make([]byte, ss)
			buildSlot(after, tupleHeader(txn.inner.TS, false), key, payload)
			if err := txn.log(ctx, &wal.Record{
				Type: wal.RecInsert, TableID: tb.id, PageID: pid, Slot: uint16(slot),
				Before: before, After: after,
			}); err != nil {
				return nil, err
			}
			if err := h.WriteAt(ctx, slotOffset(tb.tupleSize, slot), after); err != nil {
				return nil, err
			}
			return before, nil
		})
	if err != nil {
		return err
	}
	tb.index.Insert(key, rid)
	txn.idxInserts = append(txn.idxInserts, idxOp{table: tb, key: key})
	for _, sec := range tb.secondaries {
		sec.onInsert(txn, key, payload)
	}
	return nil
}

// Read copies the tuple under key into buf (tupleSize bytes), honoring MVTO
// visibility.
func (tb *Table) Read(ctx *core.Ctx, txn *Txn, key uint64, buf []byte) error {
	rid, ok := tb.index.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s key %d", ErrNotFound, tb.name, key)
	}
	return tb.ReadRID(ctx, txn, rid, buf)
}

// ReadRID reads the tuple at rid.
func (tb *Table) ReadRID(ctx *core.Ctx, txn *Txn, rid RID, buf []byte) error {
	if len(buf) != tb.tupleSize {
		return fmt.Errorf("engine: %s: read buffer is %d bytes, want %d", tb.name, len(buf), tb.tupleSize)
	}
	pid, slot := splitRID(rid)
	if err := validateSlot(tb.tupleSize, slot); err != nil {
		return err
	}
	tb.db.chargeCompute(ctx)
	h, err := tb.db.bm.FetchPage(ctx, pid, core.ReadIntent)
	if err != nil {
		return err
	}
	defer h.Release()

	ss := slotSize(tb.tupleSize)
	return tb.db.tm.Read(txn.inner, rid,
		func() uint64 {
			hdr, _ := tb.slotWTS(ctx, h, slot)
			w, _, _ := parseTupleHeader(hdr)
			return w
		},
		func(hist []byte) error {
			var img slotImage
			if hist != nil {
				img = parseSlot(hist)
			} else {
				raw := make([]byte, ss)
				if err := tb.readSlot(ctx, h, slot, raw); err != nil {
					return err
				}
				img = parseSlot(raw)
			}
			_, occupied, tomb := parseTupleHeader(img.header)
			if !occupied || tomb {
				return fmt.Errorf("%w: %s rid %d", ErrNotFound, tb.name, rid)
			}
			copy(buf, img.payload)
			return nil
		})
}

// Update overwrites the tuple under key, honoring MVTO write rules.
func (tb *Table) Update(ctx *core.Ctx, txn *Txn, key uint64, payload []byte) error {
	if len(payload) != tb.tupleSize {
		return fmt.Errorf("engine: %s: payload is %d bytes, want %d", tb.name, len(payload), tb.tupleSize)
	}
	rid, ok := tb.index.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s key %d", ErrNotFound, tb.name, key)
	}
	return tb.writeRID(ctx, txn, rid, key, payload, false)
}

// Delete tombstones the tuple under key. The index entry is removed at
// commit so older snapshots can still locate prior versions.
func (tb *Table) Delete(ctx *core.Ctx, txn *Txn, key uint64) error {
	rid, ok := tb.index.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s key %d", ErrNotFound, tb.name, key)
	}
	if err := tb.writeRID(ctx, txn, rid, key, make([]byte, tb.tupleSize), true); err != nil {
		return err
	}
	txn.idxDeletes = append(txn.idxDeletes, idxOp{table: tb, key: key})
	return nil
}

// writeRID applies an update or delete at rid.
func (tb *Table) writeRID(ctx *core.Ctx, txn *Txn, rid RID, key uint64, payload []byte, tombstone bool) error {
	pid, slot := splitRID(rid)
	if err := validateSlot(tb.tupleSize, slot); err != nil {
		return err
	}
	tb.db.chargeCompute(ctx)
	h, err := tb.db.bm.FetchPage(ctx, pid, core.WriteIntent)
	if err != nil {
		return err
	}
	defer h.Release()

	ss := slotSize(tb.tupleSize)
	recType := wal.RecUpdate
	if tombstone {
		recType = wal.RecDelete
	}
	var beforePayload []byte
	if len(tb.secondaries) > 0 {
		beforePayload = make([]byte, tb.tupleSize)
	}
	err = tb.db.tm.Write(txn.inner, rid,
		func() uint64 {
			hdr, _ := tb.slotWTS(ctx, h, slot)
			w, _, _ := parseTupleHeader(hdr)
			return w
		},
		func() ([]byte, error) {
			before := make([]byte, ss)
			if err := tb.readSlot(ctx, h, slot, before); err != nil {
				return nil, err
			}
			img := parseSlot(before)
			if _, occupied, tomb := parseTupleHeader(img.header); !occupied || tomb {
				return nil, fmt.Errorf("%w: %s rid %d", ErrNotFound, tb.name, rid)
			}
			if beforePayload != nil {
				copy(beforePayload, img.payload)
			}
			after := make([]byte, ss)
			buildSlot(after, tupleHeader(txn.inner.TS, tombstone), key, payload)
			if err := txn.log(ctx, &wal.Record{
				Type: recType, TableID: tb.id, PageID: pid, Slot: uint16(slot),
				Before: before, After: after,
			}); err != nil {
				return nil, err
			}
			if err := h.WriteAt(ctx, slotOffset(tb.tupleSize, slot), after); err != nil {
				return nil, err
			}
			return before, nil
		})
	if err != nil {
		return err
	}
	for _, sec := range tb.secondaries {
		if tombstone {
			sec.onDelete(txn, key, beforePayload)
		} else {
			sec.onUpdate(txn, key, beforePayload, payload)
		}
	}
	return nil
}

// ScanKeys visits index entries with key >= from in ascending order until
// fn returns false. Tuples are read separately via ReadRID under the
// caller's transaction.
func (tb *Table) ScanKeys(from uint64, fn func(key uint64, rid RID) bool) {
	tb.index.Scan(from, fn)
}

// Scan visits live tuples with key >= from in primary-key order under the
// transaction's snapshot, until fn returns false. Tuples invisible to the
// snapshot (deleted, or inserted by concurrent transactions) are skipped;
// a visibility conflict aborts the scan with ErrConflict.
func (tb *Table) Scan(ctx *core.Ctx, txn *Txn, from uint64, fn func(key uint64, payload []byte) bool) error {
	buf := make([]byte, tb.tupleSize)
	var scanErr error
	tb.index.Scan(from, func(key uint64, rid RID) bool {
		err := tb.ReadRID(ctx, txn, rid, buf)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				return true // invisible to this snapshot; keep going
			}
			scanErr = err
			return false
		}
		return fn(key, buf)
	})
	return scanErr
}
