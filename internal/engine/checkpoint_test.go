package engine

import (
	"errors"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/wal"
)

func TestCheckpointTruncatesLogAndSurvivesCrash(t *testing.T) {
	dataArena := pmem.New(pmem.Options{Size: 16 * (core.PageSize + 64), TrackCrashes: true})
	logArena := pmem.New(pmem.Options{Size: 1 << 17, TrackCrashes: true})
	disk := ssd.NewMem(nil)
	logStore := wal.NewMemLog(nil)

	bm, err := core.New(core.Config{
		DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
		Policy: policy.SpitfireLazy, PMem: dataArena, SSD: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.New(wal.Options{Buffer: logArena, Store: logStore})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(1, "kv", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(40)
	tb.Load(ctx, 8, func(i uint64, p []byte) uint64 { p[9] = 1; return i })

	// Commit a batch of updates, then checkpoint.
	for k := uint64(0); k < 8; k++ {
		txn := db.Begin()
		if err := tb.Update(ctx, txn, k, payloadFor(k, 3)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	skipped, err := db.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("quiescent checkpoint skipped %d pages", skipped)
	}
	// Only the checkpoint record remains in the log pipeline.
	if err := w.Flush(ctx.Clock); err != nil {
		t.Fatal(err)
	}
	raw, _ := logStore.ReadAll(ctx.Clock)
	if len(raw) > 256 {
		t.Fatalf("log holds %d bytes after checkpoint; truncation failed", len(raw))
	}

	// Crash and recover: the updates must survive purely via pages (the
	// truncated log contributes nothing).
	dataArena.Crash()
	logArena.Crash()
	bm2, err := core.Recover(core.Config{
		DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
		Policy: policy.SpitfireLazy, PMem: dataArena, SSD: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := NewRecoveryCtx()
	db2, rl, err := Recover(rctx, RecoverOptions{
		BM:     bm2,
		WAL:    wal.Options{Buffer: logArena, Store: logStore},
		Schema: []TableDef{{ID: 1, Name: "kv", TupleSize: testTupleSize}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Losers) != 0 {
		t.Fatalf("losers after clean checkpointed crash: %v", rl.Losers)
	}
	check := db2.Begin()
	buf := make([]byte, testTupleSize)
	for k := uint64(0); k < 8; k++ {
		if err := db2.Table(1).Read(rctx, check, k, buf); err != nil {
			t.Fatal(err)
		}
		if buf[9] != 3 {
			t.Fatalf("key %d lost checkpointed update: version %d", k, buf[9])
		}
	}
	check.Commit(rctx)
}

func TestCheckpointWithoutWAL(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(41)
	tb.Load(ctx, 4, func(i uint64, p []byte) uint64 { return i })
	txn := db.Begin()
	if err := tb.Update(ctx, txn, 0, payloadFor(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if skipped, err := db.Checkpoint(ctx); err != nil || skipped != 0 {
		t.Fatalf("checkpoint without WAL: skipped=%d err=%v", skipped, err)
	}
}

func TestDeleteAbortKeepsIndexEntry(t *testing.T) {
	db := newTestDB(t, true)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(42)
	tb.Load(ctx, 2, func(i uint64, p []byte) uint64 { p[9] = 1; return i })

	txn := db.Begin()
	if err := tb.Delete(ctx, txn, 1); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	// The aborted delete must leave the row fully readable.
	check := db.Begin()
	buf := make([]byte, testTupleSize)
	if err := tb.Read(ctx, check, 1, buf); err != nil {
		t.Fatalf("aborted delete removed the row: %v", err)
	}
	if buf[9] != 1 {
		t.Fatalf("row content corrupted: %d", buf[9])
	}
	check.Commit(ctx)
}

func TestDeleteThenReinsert(t *testing.T) {
	db := newTestDB(t, true)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(43)
	tb.Load(ctx, 2, func(i uint64, p []byte) uint64 { p[9] = 1; return i })

	txn := db.Begin()
	if err := tb.Delete(ctx, txn, 0); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	txn = db.Begin()
	if err := tb.Insert(ctx, txn, 0, payloadFor(0, 5)); err != nil {
		t.Fatalf("re-insert of deleted key: %v", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	check := db.Begin()
	buf := make([]byte, testTupleSize)
	if err := tb.Read(ctx, check, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[9] != 5 {
		t.Fatalf("re-inserted row has version %d", buf[9])
	}
	check.Commit(ctx)
}

func TestUpdateMissingKey(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(44)
	txn := db.Begin()
	if err := tb.Update(ctx, txn, 7, payloadFor(7, 1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update of missing key: %v", err)
	}
	if err := tb.Delete(ctx, txn, 7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete of missing key: %v", err)
	}
	txn.Commit(ctx)
}

func TestWrongPayloadSizes(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(45)
	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 1, make([]byte, 3)); err == nil {
		t.Fatal("short insert accepted")
	}
	if err := tb.Insert(ctx, txn, 1, payloadFor(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(ctx, txn, 1, make([]byte, 3)); err == nil {
		t.Fatal("short update accepted")
	}
	buf := make([]byte, 3)
	if err := tb.Read(ctx, txn, 1, buf); err == nil {
		t.Fatal("short read buffer accepted")
	}
	txn.Commit(ctx)
}

func TestGCRunsAutomatically(t *testing.T) {
	bm, err := core.New(core.Config{
		DRAMBytes: 8 * core.PageSize, NVMBytes: 16 * core.PageSize,
		Policy: policy.SpitfireLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{BM: bm, GCEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := db.CreateTable(1, "kv", testTupleSize)
	ctx := newCtx(46)
	tb.Load(ctx, 1, func(i uint64, p []byte) uint64 { return i })
	// 32 updates of the same key with GCEvery=8: the version chain must
	// stay shallow instead of growing to 32.
	for i := 0; i < 32; i++ {
		txn := db.Begin()
		if err := tb.Update(ctx, txn, 0, payloadFor(0, byte(i))); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Depth is not directly observable; rely on GC() being exercised and
	// reads still working.
	check := db.Begin()
	buf := make([]byte, testTupleSize)
	if err := tb.Read(ctx, check, 0, buf); err != nil {
		t.Fatal(err)
	}
	check.Commit(ctx)
}
