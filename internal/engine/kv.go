package engine

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/spitfire-db/spitfire/internal/core"
)

// kvStripes is the number of per-key upsert serialization stripes. Upserts
// on distinct stripes never contend; 256 keeps contention negligible for a
// front-end's worth of concurrent writers.
const kvStripes = 256

// KV is a variable-length-value key-value facade over a heap Table, built
// for the socket front-end (internal/server): values up to MaxValue bytes
// are stored length-prefixed inside the table's fixed-size tuples, and Put
// is an upsert whose insert-vs-update decision is serialized per key so two
// concurrent first-writes of the same key cannot both take the insert path.
//
// All operations run inside a caller-owned transaction and inherit the
// engine's MVTO semantics: concurrent writers of the same key lose with
// ErrConflict and should abort and retry.
type KV struct {
	db     *DB
	tb     *Table
	maxVal int

	// stripes serialize the index-probe→Insert window of Put per key. MVTO
	// already rejects write-write races on existing tuples; the stripe only
	// closes the gap where two inserts of a missing key both pass the
	// duplicate check.
	stripes [kvStripes]sync.Mutex
}

// OpenKV creates the backing table (id/name as given) and returns the KV
// facade over it. maxVal bounds the value size; the tuple size is
// 2+maxVal bytes (a little-endian length prefix plus the padded value) and
// must fit a page like any other tuple.
func OpenKV(db *DB, tableID uint32, name string, maxVal int) (*KV, error) {
	if maxVal <= 0 || maxVal > 0xffff {
		return nil, fmt.Errorf("engine: kv max value size %d out of range [1, 65535]", maxVal)
	}
	tb, err := db.CreateTable(tableID, name, 2+maxVal)
	if err != nil {
		return nil, err
	}
	return &KV{db: db, tb: tb, maxVal: maxVal}, nil
}

// Table exposes the backing heap table.
func (kv *KV) Table() *Table { return kv.tb }

// MaxValue reports the largest storable value size in bytes.
func (kv *KV) MaxValue() int { return kv.maxVal }

// encode builds the fixed-size tuple payload for val.
func (kv *KV) encode(val []byte) []byte {
	buf := make([]byte, 2+kv.maxVal)
	binary.LittleEndian.PutUint16(buf, uint16(len(val)))
	copy(buf[2:], val)
	return buf
}

// Get returns the value under key, honoring the transaction's snapshot.
// Missing keys report ErrNotFound.
func (kv *KV) Get(ctx *core.Ctx, txn *Txn, key uint64) ([]byte, error) {
	buf := make([]byte, 2+kv.maxVal)
	if err := kv.tb.Read(ctx, txn, key, buf); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if n > kv.maxVal {
		return nil, fmt.Errorf("engine: kv key %d: corrupt length prefix %d (max %d)", key, n, kv.maxVal)
	}
	return buf[2 : 2+n : 2+n], nil
}

// Put upserts key → val: an update when the key exists, an insert when it
// does not. Concurrent writers of an existing key race under MVTO and the
// loser gets ErrConflict.
func (kv *KV) Put(ctx *core.Ctx, txn *Txn, key uint64, val []byte) error {
	if len(val) > kv.maxVal {
		return fmt.Errorf("engine: kv value is %d bytes, max %d", len(val), kv.maxVal)
	}
	mu := &kv.stripes[key%kvStripes]
	mu.Lock()
	defer mu.Unlock()
	payload := kv.encode(val)
	if _, exists := kv.tb.Index().Get(key); exists {
		return kv.tb.Update(ctx, txn, key, payload)
	}
	return kv.tb.Insert(ctx, txn, key, payload)
}

// Delete removes key. Missing keys report ErrNotFound.
func (kv *KV) Delete(ctx *core.Ctx, txn *Txn, key uint64) error {
	return kv.tb.Delete(ctx, txn, key)
}

// Scan visits live entries with key >= from in key order until fn returns
// false or limit entries have been visited (limit <= 0 means unbounded).
// The value slice is only valid during the callback.
func (kv *KV) Scan(ctx *core.Ctx, txn *Txn, from uint64, limit int, fn func(key uint64, val []byte) bool) error {
	seen := 0
	return kv.tb.Scan(ctx, txn, from, func(key uint64, payload []byte) bool {
		n := int(binary.LittleEndian.Uint16(payload))
		if n > kv.maxVal {
			n = kv.maxVal
		}
		seen++
		if !fn(key, payload[2:2+n]) {
			return false
		}
		return limit <= 0 || seen < limit
	})
}
