package engine

import (
	"errors"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/wal"
)

// TestCheckpointSurvivesTransientFaults drives db.Checkpoint through each of
// its three device-touching legs with transient write faults armed: the
// dirty-DRAM write-back (NVM arena + SSD), then the WAL flush/truncate
// against the log store. Every fault must surface as device.ErrTransient —
// never as corruption or a panic — and once the injectors clear, a retried
// checkpoint must succeed, truncate the log, and leave a state that survives
// a crash.
func TestCheckpointSurvivesTransientFaults(t *testing.T) {
	nvmDev := device.New(device.NVMParams)
	dataInj := device.NewInjector(device.FaultConfig{Seed: 0x2A1})
	nvmDev.SetFaults(dataInj)
	dataArena := pmem.New(pmem.Options{Size: 16 * (core.PageSize + 64), TrackCrashes: true, Device: nvmDev})

	ssdDev := device.New(device.SSDParams)
	ssdInj := device.NewInjector(device.FaultConfig{Seed: 0x2A2})
	ssdDev.SetFaults(ssdInj)
	disk := ssd.NewMem(ssdDev)

	logDev := device.New(device.SSDParams)
	logInj := device.NewInjector(device.FaultConfig{Seed: 0x2A3})
	logDev.SetFaults(logInj)
	logStore := wal.NewMemLog(logDev)
	logArena := pmem.New(pmem.Options{Size: 1 << 17, TrackCrashes: true})

	bm, err := core.New(core.Config{
		DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
		Policy: policy.SpitfireLazy, PMem: dataArena, SSD: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.New(wal.Options{Buffer: logArena, Store: logStore})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{BM: bm, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(1, "kv", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(0x2A1)
	if err := tb.Load(ctx, 8, func(i uint64, p []byte) uint64 { p[9] = 1; return i }); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 8; k++ {
		txn := db.Begin()
		if err := tb.Update(ctx, txn, k, payloadFor(k, 3)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Leg 1: every data-path write (NVM arena and SSD) fails, so the
	// dirty-DRAM flush exhausts its retry budget before the WAL is touched.
	dataInj.Rearm(device.FaultConfig{Seed: 0x2B1, WriteErrProb: 1})
	ssdInj.Rearm(device.FaultConfig{Seed: 0x2B2, WriteErrProb: 1})
	if _, err := db.Checkpoint(ctx); err == nil {
		t.Fatal("checkpoint succeeded with all data-path writes faulting")
	} else if !errors.Is(err, device.ErrTransient) {
		t.Fatalf("data-path fault surfaced as %v, want device.ErrTransient", err)
	}

	// Leg 2: data path clean, log store faulting. The flush leg now
	// completes and the WAL flush/truncate must report the fault.
	dataInj.Rearm(device.FaultConfig{Seed: 0x2B1})
	ssdInj.Rearm(device.FaultConfig{Seed: 0x2B2})
	logInj.Rearm(device.FaultConfig{Seed: 0x2B3, WriteErrProb: 1})
	if _, err := db.Checkpoint(ctx); err == nil {
		t.Fatal("checkpoint succeeded with log-store writes faulting")
	} else if !errors.Is(err, device.ErrTransient) {
		t.Fatalf("log-store fault surfaced as %v, want device.ErrTransient", err)
	}

	// Clean retry: the checkpoint must now complete quiescently and
	// truncate the log down to (at most) the checkpoint record.
	logInj.Rearm(device.FaultConfig{Seed: 0x2B3})
	skipped, err := db.Checkpoint(ctx)
	if err != nil {
		t.Fatalf("clean checkpoint after faults cleared: %v", err)
	}
	if skipped != 0 {
		t.Fatalf("quiescent checkpoint skipped %d pages", skipped)
	}
	if err := w.Flush(ctx.Clock); err != nil {
		t.Fatal(err)
	}
	raw, _ := logStore.ReadAll(ctx.Clock)
	if len(raw) > 256 {
		t.Fatalf("log holds %d bytes after checkpoint; truncation failed", len(raw))
	}

	// Crash and recover purely from pages: the failed checkpoint attempts
	// must not have corrupted anything the clean one depends on.
	dataArena.Crash()
	logArena.Crash()
	bm2, err := core.Recover(core.Config{
		DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
		Policy: policy.SpitfireLazy, PMem: dataArena, SSD: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx := NewRecoveryCtx()
	db2, rl, err := Recover(rctx, RecoverOptions{
		BM:     bm2,
		WAL:    wal.Options{Buffer: logArena, Store: logStore},
		Schema: []TableDef{{ID: 1, Name: "kv", TupleSize: testTupleSize}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Losers) != 0 {
		t.Fatalf("losers after checkpointed crash: %v", rl.Losers)
	}
	check := db2.Begin()
	buf := make([]byte, testTupleSize)
	for k := uint64(0); k < 8; k++ {
		if err := db2.Table(1).Read(rctx, check, k, buf); err != nil {
			t.Fatal(err)
		}
		if buf[9] != 3 {
			t.Fatalf("key %d lost checkpointed update: version %d", k, buf[9])
		}
	}
	check.Commit(rctx)
}
