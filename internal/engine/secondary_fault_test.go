package engine

import (
	"encoding/binary"
	"errors"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// TestSecondaryMaintenanceSurvivesTransientNVMFaults hammers the secondary
// index maintenance paths (insert, key-moving update, delete, and the abort
// undo) against a buffer manager whose NVM arena injects transient read
// faults. Operations that hit the fault must surface device.ErrTransient and
// abort cleanly; whatever the outcome, the secondary index must stay exactly
// consistent with the committed base-table state once the injector clears.
func TestSecondaryMaintenanceSurvivesTransientNVMFaults(t *testing.T) {
	const keys = 300

	nvmDev := device.New(device.NVMParams)
	inj := device.NewInjector(device.FaultConfig{Seed: 0x35C})
	nvmDev.SetFaults(inj)
	const nvmBytes = 256 * core.PageSize
	bm, err := core.New(core.Config{
		DRAMBytes: 2 * core.PageSize,
		NVMBytes:  nvmBytes,
		Policy:    policy.SpitfireEager,
		PMem:      pmem.New(pmem.Options{Size: nvmBytes, Device: nvmDev}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()
	db, err := Open(Options{BM: bm})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(1, "people", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}
	// Derived key: the payload's leading uint64, kept globally unique below.
	ix, err := AddSecondaryIndex(tb, "by-val", func(_ uint64, payload []byte) uint64 {
		return binary.LittleEndian.Uint64(payload)
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := newCtx(0x35C)
	if err := tb.Load(ctx, keys, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, i)
		return i
	}); err != nil {
		t.Fatal(err)
	}

	valPayload := func(v uint64) []byte {
		p := make([]byte, testTupleSize)
		binary.LittleEndian.PutUint64(p, v)
		return p
	}

	// model maps committed primary keys to their derived value; live keeps
	// them in a slice so the RNG picks targets without map-range order.
	model := map[uint64]uint64{}
	var live []uint64
	for k := uint64(0); k < keys; k++ {
		model[k] = k
		live = append(live, k)
	}
	nextVal := uint64(1 << 20) // fresh derived values, disjoint from loads
	nextKey := uint64(keys)

	faulty := device.FaultConfig{Seed: 0x35D, ReadErrProb: 1}
	clean := device.FaultConfig{Seed: 0x35D}
	rng := ctx.RNG
	sawTransient := false
	committed := [3]int{} // per-op commit counts: update, insert, delete
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			inj.Rearm(faulty)
		} else {
			inj.Rearm(clean)
		}
		op := rng.Intn(3)
		txn := db.Begin()
		var opErr error
		var k, v uint64
		var li int
		switch op {
		case 0: // update: move the derived key
			li = rng.Intn(len(live))
			k, v = live[li], nextVal
			opErr = tb.Update(ctx, txn, k, valPayload(v))
		case 1: // insert a fresh primary with a fresh derived key
			k, v = nextKey, nextVal
			opErr = tb.Insert(ctx, txn, k, valPayload(v))
		case 2: // delete (secondary entry drops at commit)
			li = rng.Intn(len(live))
			k = live[li]
			opErr = tb.Delete(ctx, txn, k)
		}
		if opErr != nil {
			if !errors.Is(opErr, device.ErrTransient) {
				t.Fatalf("op %d iter %d: fault surfaced as %v, want device.ErrTransient", op, i, opErr)
			}
			sawTransient = true
			// The abort undo re-fetches pages, so run it with the injector
			// quiet: abort-under-fault returns an error and leaves the undo
			// pending, which is out of scope here.
			inj.Rearm(clean)
			if err := txn.Abort(ctx); err != nil {
				t.Fatalf("abort after transient fault: %v", err)
			}
			continue
		}
		if err := txn.Commit(ctx); err != nil {
			t.Fatalf("commit op %d iter %d: %v", op, i, err)
		}
		committed[op]++
		switch op {
		case 0:
			model[k] = v
			nextVal++
		case 1:
			model[k] = v
			live = append(live, k)
			nextKey++
			nextVal++
		case 2:
			delete(model, k)
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if !sawTransient {
		t.Fatal("no operation hit an injected fault; geometry no longer exercises the fault path")
	}
	for op, n := range committed {
		if n == 0 {
			t.Fatalf("op %d never committed; mixed-phase schedule lost coverage", op)
		}
	}

	// Clean phase: the secondary index must mirror the committed state
	// exactly — same cardinality, every model entry resolvable both ways,
	// and no dangling entries pointing at dead or rewritten rows.
	inj.Rearm(clean)
	if ix.Len() != len(model) {
		t.Fatalf("secondary holds %d entries, committed state has %d", ix.Len(), len(model))
	}
	buf := make([]byte, testTupleSize)
	for k, v := range model {
		primary, ok := ix.Lookup(v)
		if !ok || primary != k {
			t.Fatalf("Lookup(%d) = %d, %v; want %d", v, primary, ok, k)
		}
		txn := db.Begin()
		err := tb.Read(ctx, txn, k, buf)
		txn.Commit(ctx)
		if err != nil {
			t.Fatalf("read key %d after faults cleared: %v", k, err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != v {
			t.Fatalf("key %d payload value %d, want %d", k, got, v)
		}
	}
	seen := 0
	ix.Scan(0, func(v uint64, primary uint64) bool {
		seen++
		if model[primary] != v {
			t.Fatalf("dangling secondary entry %d -> %d (model has %d)", v, primary, model[primary])
		}
		return true
	})
	if seen != len(model) {
		t.Fatalf("scan visited %d entries, want %d", seen, len(model))
	}
}
