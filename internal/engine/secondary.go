package engine

import (
	"cmp"
	"fmt"
	"sync"

	"github.com/spitfire-db/spitfire/internal/btree"
)

// SecondaryIndex maps a derived key (extracted from the tuple's primary key
// and payload) back to the primary key. Spitfire's evaluation workloads
// need them — TPC-C looks customers up by last name and orders up by
// customer — and the engine maintains them alongside writes:
//
//   - bulk loads and inserts add entries;
//   - updates whose derived key changes move the entry;
//   - deletes drop the entry at commit (like the primary index);
//   - aborts restore whatever the transaction changed.
//
// Like the primary index, secondary indexes are volatile (rebuilt by
// recovery's page scan) and single-version: a reader with an old snapshot
// may see entries for newer tuples, which MVCC visibility on the base
// table then filters.
type SecondaryIndex[K cmp.Ordered] struct {
	name    string
	tree    *btree.Tree[K]
	extract func(primary uint64, payload []byte) K
	mu      sync.Mutex // serializes move operations on one derived key
}

// secondary is the untyped maintenance interface tables hold.
type secondary interface {
	secName() string
	onInsert(txn *Txn, primary uint64, payload []byte)
	onUpdate(txn *Txn, primary uint64, before, after []byte)
	onDelete(txn *Txn, primary uint64, payload []byte)
	onLoad(primary uint64, payload []byte)
}

// AddSecondaryIndex registers a secondary index on the table. It must be
// called before any rows are loaded or written.
func AddSecondaryIndex[K cmp.Ordered](tb *Table, name string, extract func(primary uint64, payload []byte) K) (*SecondaryIndex[K], error) {
	ix := &SecondaryIndex[K]{name: name, tree: btree.New[K](), extract: extract}
	<-tb.allocMu
	defer func() { tb.allocMu <- struct{}{} }()
	if len(tb.pageList) > 0 {
		return nil, fmt.Errorf("engine: %s: secondary index %q added after data was loaded", tb.name, name)
	}
	for _, s := range tb.secondaries {
		if s.secName() == name {
			return nil, fmt.Errorf("engine: %s: duplicate secondary index %q", tb.name, name)
		}
	}
	tb.secondaries = append(tb.secondaries, ix)
	return ix, nil
}

// Lookup returns the primary key stored under derived key k.
func (ix *SecondaryIndex[K]) Lookup(k K) (uint64, bool) { return ix.tree.Get(k) }

// Scan visits entries with derived key >= from in ascending order until fn
// returns false.
func (ix *SecondaryIndex[K]) Scan(from K, fn func(k K, primary uint64) bool) {
	ix.tree.Scan(from, fn)
}

// Len returns the number of entries.
func (ix *SecondaryIndex[K]) Len() int { return ix.tree.Len() }

func (ix *SecondaryIndex[K]) secName() string { return ix.name }

func (ix *SecondaryIndex[K]) onLoad(primary uint64, payload []byte) {
	ix.tree.Insert(ix.extract(primary, payload), primary)
}

func (ix *SecondaryIndex[K]) onInsert(txn *Txn, primary uint64, payload []byte) {
	k := ix.extract(primary, payload)
	ix.tree.Insert(k, primary)
	txn.secUndos = append(txn.secUndos, func() { ix.tree.Delete(k) })
}

func (ix *SecondaryIndex[K]) onUpdate(txn *Txn, primary uint64, before, after []byte) {
	oldK := ix.extract(primary, before)
	newK := ix.extract(primary, after)
	if oldK == newK {
		return
	}
	ix.mu.Lock()
	ix.tree.Delete(oldK)
	ix.tree.Insert(newK, primary)
	ix.mu.Unlock()
	txn.secUndos = append(txn.secUndos, func() {
		ix.mu.Lock()
		ix.tree.Delete(newK)
		ix.tree.Insert(oldK, primary)
		ix.mu.Unlock()
	})
}

func (ix *SecondaryIndex[K]) onDelete(txn *Txn, primary uint64, payload []byte) {
	k := ix.extract(primary, payload)
	// Like the primary index, removal happens at commit so older snapshots
	// can still find the row; aborts need no action.
	txn.secDeletes = append(txn.secDeletes, func() { ix.tree.Delete(k) })
}
