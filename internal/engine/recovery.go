package engine

import (
	"fmt"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/vclock"
	"github.com/spitfire-db/spitfire/internal/wal"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// TableDef describes a table for recovery (schemas are code, not data, so
// the caller re-declares them).
type TableDef struct {
	ID        uint32
	Name      string
	TupleSize int
}

// RecoverOptions configures database recovery after a crash.
type RecoverOptions struct {
	// BM is a buffer manager already rebuilt over the surviving NVM arena
	// (core.Recover).
	BM *core.BufferManager
	// WAL carries the surviving NVM log buffer and the SSD log file.
	WAL wal.Options
	// Schema lists the tables to re-register.
	Schema []TableDef
	// Prepare, if non-nil, runs after the schema is created and before the
	// log replay and rebuild scan — the place to re-attach secondary
	// indexes so the scan repopulates them.
	Prepare func(db *DB) error
	// ComputeCost and GCEvery as in Options.
	ComputeCost int64
	GCEvery     int64
}

// applier adapts the engine to wal.Applier for the redo/undo passes.
// Records are full slot images, so redo is a blind physical replay in LSN
// order and undo restores before-images directly.
type applier struct {
	db  *DB
	ctx *core.Ctx
}

func (a *applier) handleFor(c *vclock.Clock, rec *wal.Record) (*core.Handle, *Table, error) {
	tb := a.db.Table(rec.TableID)
	if tb == nil {
		return nil, nil, fmt.Errorf("engine: recovery: unknown table %d", rec.TableID)
	}
	h, err := a.db.bm.MaterializePage(a.ctx, rec.PageID)
	if err != nil {
		return nil, nil, err
	}
	// Fresh pages need their header re-established.
	var hdr [pageHeaderSize]byte
	if err := h.ReadAt(a.ctx, 0, hdr[:]); err != nil {
		h.Release()
		return nil, nil, err
	}
	if _, _, ok := decodePageHeader(hdr[:]); !ok {
		encodePageHeader(hdr[:], tb.id, tb.tupleSize)
		if err := h.WriteAt(a.ctx, 0, hdr[:]); err != nil {
			h.Release()
			return nil, nil, err
		}
	}
	return h, tb, nil
}

// ApplyRedo implements wal.Applier.
func (a *applier) ApplyRedo(c *vclock.Clock, rec *wal.Record) error {
	h, tb, err := a.handleFor(c, rec)
	if err != nil {
		return err
	}
	defer h.Release()
	return h.WriteAt(a.ctx, slotOffset(tb.tupleSize, int(rec.Slot)), rec.After)
}

// ApplyUndo implements wal.Applier.
func (a *applier) ApplyUndo(c *vclock.Clock, rec *wal.Record) error {
	h, tb, err := a.handleFor(c, rec)
	if err != nil {
		return err
	}
	defer h.Release()
	return h.WriteAt(a.ctx, slotOffset(tb.tupleSize, int(rec.Slot)), rec.Before)
}

// Recover rebuilds a database after a crash, per §5.2 of the paper:
//
//  1. The buffer manager has already reconstructed the NVM buffer's mapping
//     table (core.Recover) — the caller passes it in.
//  2. The log is completed (NVM log-buffer tail appended to the SSD file)
//     and analysis/redo/undo run (wal.Recover).
//  3. Page directories and in-memory indexes are rebuilt by scanning every
//     page (NVM-resident pages may be newer than their SSD counterparts,
//     which is exactly why step 1 must precede this scan).
//  4. A closing checkpoint flushes the undo results out of volatile DRAM.
func Recover(ctx *core.Ctx, opt RecoverOptions) (*DB, *wal.RecoveredLog, error) {
	db, err := Open(Options{BM: opt.BM, ComputeCost: opt.ComputeCost, GCEvery: opt.GCEvery})
	if err != nil {
		return nil, nil, err
	}
	for _, def := range opt.Schema {
		if _, err := db.CreateTable(def.ID, def.Name, def.TupleSize); err != nil {
			return nil, nil, err
		}
	}
	if opt.Prepare != nil {
		if err := opt.Prepare(db); err != nil {
			return nil, nil, err
		}
	}

	walMgr, rl, err := wal.Recover(ctx.Clock, opt.WAL, &applier{db: db, ctx: ctx})
	if err != nil {
		return nil, nil, err
	}
	db.wal = walMgr

	if err := db.rebuildDirectories(ctx); err != nil {
		return nil, nil, err
	}
	if _, err := db.bm.FlushDirtyDRAM(ctx); err != nil {
		return nil, nil, err
	}
	return db, rl, nil
}

// rebuildDirectories scans every known page, re-registers it with its
// table, and rebuilds the primary indexes from live tuples.
func (db *DB) rebuildDirectories(ctx *core.Ctx) error {
	maxPID := db.bm.NextPageID()
	if diskMax, ok := db.bm.Disk().MaxPageID(); ok && diskMax+1 > maxPID {
		maxPID = diskMax + 1
		db.bm.SetNextPageID(maxPID)
	}
	hdr := make([]byte, pageHeaderSize)
	for pid := core.PageID(0); pid < maxPID; pid++ {
		h, err := db.bm.FetchPage(ctx, pid, core.ReadIntent)
		if err != nil {
			continue // hole in the page-id space
		}
		if err := h.ReadAt(ctx, 0, hdr); err != nil {
			h.Release()
			return err
		}
		tableID, tupleSize, ok := decodePageHeader(hdr)
		if !ok {
			h.Release()
			continue // not an engine page (e.g. never initialized)
		}
		tb := db.Table(tableID)
		if tb == nil || tb.tupleSize != tupleSize {
			h.Release()
			return fmt.Errorf("engine: recovery: page %d references unknown table %d (tuple size %d)", pid, tableID, tupleSize)
		}
		tb.registerPage(pid)
		ss := slotSize(tb.tupleSize)
		raw := make([]byte, ss)
		for slot := 0; slot < tb.slots; slot++ {
			if err := h.ReadAt(ctx, slotOffset(tb.tupleSize, slot), raw); err != nil {
				h.Release()
				return err
			}
			img := parseSlot(raw)
			wts, occupied, tomb := parseTupleHeader(img.header)
			if occupied {
				// Every surviving version is committed state; future
				// transactions must be ordered after it.
				db.tm.AdvanceTS(wts)
			}
			if occupied && !tomb {
				tb.index.Insert(img.key, makeRID(pid, slot))
				for _, sec := range tb.secondaries {
					sec.onLoad(img.key, img.payload)
				}
			}
		}
		h.Release()
	}
	return nil
}

// NewRecoveryCtx builds a worker context suitable for single-threaded
// recovery work.
func NewRecoveryCtx() *core.Ctx {
	return &core.Ctx{Clock: vclock.New(), RNG: zipf.NewRand(0xEC0)}
}
