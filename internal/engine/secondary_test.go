package engine

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/wal"
)

// nameOf derives a string key from the payload's first 8 bytes.
func nameOf(primary uint64, payload []byte) string {
	return fmt.Sprintf("name-%03d", binary.LittleEndian.Uint64(payload)%1000)
}

func newSecDB(t *testing.T) (*DB, *Table, *SecondaryIndex[string]) {
	t.Helper()
	db := newTestDB(t, true)
	tb, err := db.CreateTable(1, "people", testTupleSize)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := AddSecondaryIndex(tb, "by-name", nameOf)
	if err != nil {
		t.Fatal(err)
	}
	return db, tb, ix
}

func namePayload(v uint64) []byte {
	p := make([]byte, testTupleSize)
	binary.LittleEndian.PutUint64(p, v)
	return p
}

func TestSecondaryMaintainedOnLoad(t *testing.T) {
	_, tb, ix := newSecDB(t)
	ctx := newCtx(80)
	if err := tb.Load(ctx, 10, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, i)
		return i
	}); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 10 {
		t.Fatalf("secondary has %d entries", ix.Len())
	}
	if primary, ok := ix.Lookup("name-007"); !ok || primary != 7 {
		t.Fatalf("Lookup = %d, %v", primary, ok)
	}
}

func TestSecondaryInsertAndAbort(t *testing.T) {
	db, tb, ix := newSecDB(t)
	ctx := newCtx(81)

	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 1, namePayload(42)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-042"); !ok {
		t.Fatal("secondary entry missing before commit")
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Aborted insert removes the entry.
	txn = db.Begin()
	if err := tb.Insert(ctx, txn, 2, namePayload(99)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-099"); ok {
		t.Fatal("aborted insert left a secondary entry")
	}
	if _, ok := ix.Lookup("name-042"); !ok {
		t.Fatal("committed entry lost")
	}
}

func TestSecondaryUpdateMovesEntry(t *testing.T) {
	db, tb, ix := newSecDB(t)
	ctx := newCtx(82)
	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 1, namePayload(10)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	txn = db.Begin()
	if err := tb.Update(ctx, txn, 1, namePayload(20)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-010"); ok {
		t.Fatal("old derived key still indexed")
	}
	if primary, ok := ix.Lookup("name-020"); !ok || primary != 1 {
		t.Fatalf("new derived key = %d, %v", primary, ok)
	}

	// Aborted update restores the old entry.
	txn = db.Begin()
	if err := tb.Update(ctx, txn, 1, namePayload(30)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-020"); !ok {
		t.Fatal("aborted update lost the old entry")
	}
	if _, ok := ix.Lookup("name-030"); ok {
		t.Fatal("aborted update left the new entry")
	}
}

func TestSecondaryDeleteAtCommit(t *testing.T) {
	db, tb, ix := newSecDB(t)
	ctx := newCtx(83)
	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 1, namePayload(5)); err != nil {
		t.Fatal(err)
	}
	txn.Commit(ctx)

	// Delete: the entry survives until commit, vanishes after; abort keeps.
	txn = db.Begin()
	if err := tb.Delete(ctx, txn, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-005"); !ok {
		t.Fatal("entry removed before commit")
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-005"); !ok {
		t.Fatal("aborted delete removed the entry")
	}

	txn = db.Begin()
	if err := tb.Delete(ctx, txn, 1); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Lookup("name-005"); ok {
		t.Fatal("committed delete left the entry")
	}
}

func TestSecondaryRegistrationRules(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(1, "t", testTupleSize)
	if _, err := AddSecondaryIndex(tb, "a", nameOf); err != nil {
		t.Fatal(err)
	}
	if _, err := AddSecondaryIndex(tb, "a", nameOf); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	ctx := newCtx(84)
	tb.Load(ctx, 1, func(i uint64, p []byte) uint64 { return i })
	if _, err := AddSecondaryIndex(tb, "b", nameOf); err == nil {
		t.Fatal("index added after load accepted")
	}
}

func TestSecondaryScanOrder(t *testing.T) {
	_, tb, ix := newSecDB(t)
	ctx := newCtx(85)
	tb.Load(ctx, 20, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, 19-i) // reversed derived order
		return i
	})
	var prev string
	n := 0
	ix.Scan("", func(k string, primary uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = k
		n++
		return true
	})
	if n != 20 {
		t.Fatalf("scan visited %d entries", n)
	}
}

func TestTableScanVisibility(t *testing.T) {
	db := newTestDB(t, false)
	tb, _ := db.CreateTable(2, "scan", testTupleSize)
	ctx := newCtx(86)
	tb.Load(ctx, 10, func(i uint64, p []byte) uint64 { p[0] = byte(i); return i })

	// Delete key 3 (committed) and insert key 20 in an uncommitted txn.
	del := db.Begin()
	if err := tb.Delete(ctx, del, 3); err != nil {
		t.Fatal(err)
	}
	del.Commit(ctx)

	// A snapshot begun BEFORE the pending insert must see keys 0..9 \ {3}:
	// the younger in-flight insert is invisible (its before-image is an
	// empty slot), not a conflict.
	reader := db.Begin()
	pendingCtx := core.NewCtx(87)
	pending := db.Begin()
	if err := tb.Insert(pendingCtx, pending, 20, payloadFor(20, 1)); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	err := tb.Scan(ctx, reader, 0, func(key uint64, payload []byte) bool {
		if payload[0] != byte(key) {
			t.Fatalf("key %d wrong payload", key)
		}
		got = append(got, key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	reader.Commit(ctx)
	pending.Abort(pendingCtx)

	// Early termination.
	count := 0
	audit := db.Begin()
	if err := tb.Scan(ctx, audit, 5, func(uint64, []byte) bool { count++; return count < 2 }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("early-terminated scan visited %d", count)
	}
	audit.Commit(ctx)
}

func TestSecondaryRebuiltByRecovery(t *testing.T) {
	dataArena := pmem.New(pmem.Options{Size: 16 * (core.PageSize + 64), TrackCrashes: true})
	logArena := pmem.New(pmem.Options{Size: 1 << 17, TrackCrashes: true})
	disk := ssd.NewMem(nil)
	logStore := wal.NewMemLog(nil)

	mkDB := func() (*DB, *Table, *SecondaryIndex[string]) {
		bm, err := core.New(core.Config{
			DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
			Policy: policy.SpitfireLazy, PMem: dataArena, SSD: disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := wal.New(wal.Options{Buffer: logArena, Store: logStore})
		if err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{BM: bm, WAL: w})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := db.CreateTable(1, "people", testTupleSize)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := AddSecondaryIndex(tb, "by-name", nameOf)
		if err != nil {
			t.Fatal(err)
		}
		return db, tb, ix
	}

	db, tb, _ := mkDB()
	ctx := newCtx(88)
	tb.Load(ctx, 4, func(i uint64, p []byte) uint64 {
		binary.LittleEndian.PutUint64(p, i*100)
		return i
	})
	txn := db.Begin()
	if err := tb.Insert(ctx, txn, 9, namePayload(777)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	dataArena.Crash()
	logArena.Crash()

	bm2, err := core.Recover(core.Config{
		DRAMBytes: 4 * core.PageSize, NVMBytes: dataArena.Size(),
		Policy: policy.SpitfireLazy, PMem: dataArena, SSD: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery re-declares the schema, and the Prepare hook re-attaches
	// the secondary index so the rebuild scan repopulates it.
	rctx := NewRecoveryCtx()
	var ix3 *SecondaryIndex[string]
	db3, _, err := Recover(rctx, RecoverOptions{
		BM:     bm2,
		WAL:    wal.Options{Buffer: logArena, Store: logStore},
		Schema: []TableDef{{ID: 1, Name: "people", TupleSize: testTupleSize}},
		Prepare: func(db *DB) error {
			var perr error
			ix3, perr = AddSecondaryIndex(db.Table(1), "by-name", nameOf)
			return perr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = db3
	if ix3.Len() != 5 {
		t.Fatalf("recovered secondary has %d entries, want 5", ix3.Len())
	}
	if primary, ok := ix3.Lookup("name-777"); !ok || primary != 9 {
		t.Fatalf("committed insert's secondary entry missing after recovery: %d %v", primary, ok)
	}
	if primary, ok := ix3.Lookup("name-300"); !ok || primary != 3 {
		t.Fatalf("loaded row's secondary entry missing: %d %v", primary, ok)
	}
}
