package wal

import (
	"fmt"
	"sort"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// Applier applies redo/undo images to pages. The storage engine implements
// it on top of the (already reconstructed) buffer manager; redo must be
// idempotent via page-LSN comparison.
type Applier interface {
	// ApplyRedo reinstalls rec's after-image if the page's LSN is older
	// than rec.LSN.
	ApplyRedo(c *vclock.Clock, rec *Record) error
	// ApplyUndo restores rec's before-image unconditionally (recovery is
	// single-threaded and runs undo exactly once, newest first).
	ApplyUndo(c *vclock.Clock, rec *Record) error
}

// RecoveryStats surfaces what the log scans had to tolerate. A clean
// shutdown recovers with every damage counter at zero; after injected
// faults, these counters are how a torture harness distinguishes "recovery
// coped with the mess" from "the mess never happened".
type RecoveryStats struct {
	// BufferRecords / FileRecords count records recovered from the NVM
	// buffer tail and the SSD log file respectively.
	BufferRecords int
	FileRecords   int
	// ChecksumMismatches counts damaged regions encountered: torn records
	// in the buffer tail and corrupt stretches of the file the resync scan
	// skipped past.
	ChecksumMismatches int
	// SkippedBytes counts file bytes skipped to resync past damage (a torn
	// store.Append whose batch a later retry re-appended in full).
	SkippedBytes int
	// TruncatedTailBytes counts trailing bytes discarded as a torn tail
	// (buffer or file) with no valid record after them.
	TruncatedTailBytes int
	// DuplicateLSNs counts records dropped because they appeared twice —
	// the signature of a retried flush or a crash between the SSD append
	// and the buffer reset.
	DuplicateLSNs int
}

// RecoveredLog is the completed, parsed log plus the analysis-pass outcome.
type RecoveredLog struct {
	Records   []Record
	Committed map[uint64]bool // txn id -> reached a commit record
	Aborted   map[uint64]bool
	Losers    map[uint64]bool // began but neither committed nor aborted
	MaxLSN    uint64
	Stats     RecoveryStats
}

// ScanBuffer parses the surviving NVM log buffer (used by Recover and by
// tests). It assumes the original single-shard layout; sharded buffers are
// scanned region by region inside Recover.
func ScanBuffer(c *vclock.Clock, pm *pmem.PMem) []Record {
	var st RecoveryStats
	return ScanBufferStats(c, pm, &st)
}

// ScanBufferStats parses a surviving single-shard NVM log buffer,
// accumulating damage counts into st.
func ScanBufferStats(c *vclock.Clock, pm *pmem.PMem, st *RecoveryStats) []Record {
	return scanShardRegion(c, pm, 0, pm.Size(), st)
}

// scanShardRegion parses the live records of one shard region [base, limit).
// The scan stops at the first bad frame rather than resyncing: records are
// appended strictly in order within a shard and each is persisted before the
// extent advances, so the only record a crash can tear is the last one —
// anything after the first failure is a torn tail, and resyncing into it
// could resurrect stale pre-truncate bytes.
func scanShardRegion(c *vclock.Clock, pm *pmem.PMem, base, limit int64, st *RecoveryStats) []Record {
	if limit-base < bufHeaderSize {
		return nil
	}
	var hdr [16]byte
	pm.Read(c, base, hdr[:])
	if le64(hdr[0:]) != walBufMagic {
		return nil
	}
	off := int64(le64(hdr[8:]))
	if off < base+bufHeaderSize || off > limit {
		return nil
	}
	live := make([]byte, off-(base+bufHeaderSize))
	pm.Read(c, base+bufHeaderSize, live)
	var recs []Record
	for len(live) > 0 {
		rec, n, status := decodeOne(live)
		if status != decodeOK {
			if status == decodeCorrupt {
				st.ChecksumMismatches++
			}
			st.TruncatedTailBytes += len(live)
			break
		}
		recs = append(recs, rec)
		live = live[n:]
	}
	st.BufferRecords += len(recs)
	return recs
}

// scanResync parses every record it can find in raw, skipping damaged
// regions byte-by-byte until a later valid frame appears. The SSD log file
// needs this (unlike the buffer): a torn store.Append leaves a partial batch
// mid-file, and the successful retry that follows re-appends the batch in
// full — the good copies sit *after* the damage. The 32-bit frame checksum
// makes a false resync (a "valid" record materializing out of garbage)
// vanishingly unlikely, and LSN dedup in Recover drops the duplicates.
func scanResync(raw []byte, st *RecoveryStats) []Record {
	var recs []Record
	i, lastGood := 0, 0
	inBad := false
	for i < len(raw) {
		rec, n, status := decodeOne(raw[i:])
		if status == decodeOK {
			if i > lastGood {
				st.SkippedBytes += i - lastGood
			}
			recs = append(recs, rec)
			i += n
			lastGood = i
			inBad = false
			continue
		}
		if !inBad {
			inBad = true
			if status == decodeCorrupt {
				st.ChecksumMismatches++
			}
		}
		i++
	}
	if tail := len(raw) - lastGood; tail > 0 {
		st.TruncatedTailBytes += tail
	}
	return recs
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Recover runs the paper's recovery sequence against a surviving NVM log
// buffer and SSD log file:
//
//  1. complete the log: records still in the (persistent) NVM buffer's
//     shard regions are appended to the SSD log file;
//  2. analysis: classify transactions into winners and losers;
//  3. redo: repeat history for all records in LSN order;
//  4. undo: roll back losers' updates in reverse LSN order.
//
// opt.Shards must match what the crashed buffer was initialized with: the
// shard regions are fixed slices of the arena, and recovery scans each
// region's extent independently before merging the tails by LSN (the
// sort-by-LSN below is that merge — within a shard records are already
// ordered, across shards they interleave).
//
// It returns a fresh Manager positioned after the recovered log, plus the
// recovered-log summary.
func Recover(c *vclock.Clock, opt Options, app Applier) (*Manager, *RecoveredLog, error) {
	var stats RecoveryStats

	// Step 1: complete the log, one shard tail at a time.
	var tail []Record
	for _, reg := range shardRegions(opt.Buffer.Size(), normalizeShards(opt.Shards)) {
		tail = append(tail, scanShardRegion(c, opt.Buffer, reg[0], reg[1], &stats)...)
	}
	var tailBytes []byte
	for i := range tail {
		tailBytes = tail[i].encode(tailBytes)
	}
	if len(tailBytes) > 0 {
		if err := opt.Store.Append(c, tailBytes); err != nil {
			return nil, nil, fmt.Errorf("wal: completing log: %w", err)
		}
	}

	// Parse the full log, resyncing past any damage a torn append left.
	raw, err := opt.Store.ReadAll(c)
	if err != nil {
		return nil, nil, err
	}
	rl := &RecoveredLog{
		Committed: make(map[uint64]bool),
		Aborted:   make(map[uint64]bool),
		Losers:    make(map[uint64]bool),
	}
	rl.Records = scanResync(raw, &stats)
	stats.FileRecords = len(rl.Records)
	sort.SliceStable(rl.Records, func(i, j int) bool { return rl.Records[i].LSN < rl.Records[j].LSN })

	// Drop duplicate LSNs: a retried flush (or a crash between the SSD
	// append and the buffer reset) appends the same records twice. The
	// copies are byte-identical, so keeping the first of each LSN is exact.
	// LSN 0 is never assigned by Append and is exempt (hand-built records
	// in tests use it).
	if len(rl.Records) > 1 {
		out := rl.Records[:0]
		havePrev := false
		var prev uint64
		for _, rec := range rl.Records {
			if havePrev && rec.LSN != 0 && rec.LSN == prev {
				stats.DuplicateLSNs++
				continue
			}
			prev, havePrev = rec.LSN, true
			out = append(out, rec)
		}
		rl.Records = out
	}
	rl.Stats = stats

	// Step 2: analysis.
	for i := range rl.Records {
		rec := &rl.Records[i]
		if rec.LSN > rl.MaxLSN {
			rl.MaxLSN = rec.LSN
		}
		switch rec.Type {
		case RecBegin:
			rl.Losers[rec.TxnID] = true
		case RecCommit:
			rl.Committed[rec.TxnID] = true
			delete(rl.Losers, rec.TxnID)
		case RecAbort:
			rl.Aborted[rec.TxnID] = true
			delete(rl.Losers, rec.TxnID)
		}
	}

	// Step 3: redo (repeating history, including losers, so undo sees the
	// exact state the crash left).
	for i := range rl.Records {
		rec := &rl.Records[i]
		switch rec.Type {
		case RecUpdate, RecInsert, RecDelete:
			if rl.Aborted[rec.TxnID] {
				// Aborted transactions were rolled back in place before
				// the abort record; their updates must not be redone.
				continue
			}
			if err := app.ApplyRedo(c, rec); err != nil {
				return nil, nil, fmt.Errorf("wal: redo LSN %d: %w", rec.LSN, err)
			}
		}
	}

	// Step 4: undo losers, newest first.
	for i := len(rl.Records) - 1; i >= 0; i-- {
		rec := &rl.Records[i]
		if !rl.Losers[rec.TxnID] {
			continue
		}
		switch rec.Type {
		case RecUpdate, RecInsert, RecDelete:
			if err := app.ApplyUndo(c, rec); err != nil {
				return nil, nil, fmt.Errorf("wal: undo LSN %d: %w", rec.LSN, err)
			}
		}
	}

	// Build a fresh manager positioned after the log. The buffer restarts
	// empty (its records are now in the SSD log file).
	m, err := New(opt)
	if err != nil {
		return nil, nil, err
	}
	m.nextLSN.Store(rl.MaxLSN + 1)

	// Close out losers in the log so a second crash doesn't re-undo.
	for txn := range rl.Losers {
		if _, err := m.Append(c, &Record{TxnID: txn, Type: RecAbort}); err != nil {
			return nil, nil, err
		}
	}
	return m, rl, nil
}
