package wal

import (
	"fmt"
	"sort"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// Applier applies redo/undo images to pages. The storage engine implements
// it on top of the (already reconstructed) buffer manager; redo must be
// idempotent via page-LSN comparison.
type Applier interface {
	// ApplyRedo reinstalls rec's after-image if the page's LSN is older
	// than rec.LSN.
	ApplyRedo(c *vclock.Clock, rec *Record) error
	// ApplyUndo restores rec's before-image unconditionally (recovery is
	// single-threaded and runs undo exactly once, newest first).
	ApplyUndo(c *vclock.Clock, rec *Record) error
}

// RecoveredLog is the completed, parsed log plus the analysis-pass outcome.
type RecoveredLog struct {
	Records   []Record
	Committed map[uint64]bool // txn id -> reached a commit record
	Aborted   map[uint64]bool
	Losers    map[uint64]bool // began but neither committed nor aborted
	MaxLSN    uint64
}

// ScanBuffer parses the surviving NVM log buffer (used by RecoverManager
// and by tests).
func ScanBuffer(c *vclock.Clock, pm *pmem.PMem) []Record {
	if pm.Size() < bufHeaderSize {
		return nil
	}
	var hdr [16]byte
	pm.Read(c, 0, hdr[:])
	if le64(hdr[0:]) != 0x53504657414C3031 {
		return nil
	}
	off := int64(le64(hdr[8:]))
	if off < bufHeaderSize || off > pm.Size() {
		return nil
	}
	live := make([]byte, off-bufHeaderSize)
	pm.Read(c, bufHeaderSize, live)
	var recs []Record
	for len(live) > 0 {
		rec, n, ok := decodeOne(live)
		if !ok {
			break
		}
		recs = append(recs, rec)
		live = live[n:]
	}
	return recs
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Recover runs the paper's recovery sequence against a surviving NVM log
// buffer and SSD log file:
//
//  1. complete the log: records still in the (persistent) NVM buffer are
//     appended to the SSD log file;
//  2. analysis: classify transactions into winners and losers;
//  3. redo: repeat history for all records in LSN order;
//  4. undo: roll back losers' updates in reverse LSN order.
//
// It returns a fresh Manager positioned after the recovered log, plus the
// recovered-log summary.
func Recover(c *vclock.Clock, opt Options, app Applier) (*Manager, *RecoveredLog, error) {
	// Step 1: complete the log.
	tail := ScanBuffer(c, opt.Buffer)
	var tailBytes []byte
	for i := range tail {
		tailBytes = tail[i].encode(tailBytes)
	}
	if len(tailBytes) > 0 {
		if err := opt.Store.Append(c, tailBytes); err != nil {
			return nil, nil, fmt.Errorf("wal: completing log: %w", err)
		}
	}

	// Parse the full log.
	raw, err := opt.Store.ReadAll(c)
	if err != nil {
		return nil, nil, err
	}
	rl := &RecoveredLog{
		Committed: make(map[uint64]bool),
		Aborted:   make(map[uint64]bool),
		Losers:    make(map[uint64]bool),
	}
	for len(raw) > 0 {
		rec, n, ok := decodeOne(raw)
		if !ok {
			break
		}
		rl.Records = append(rl.Records, rec)
		raw = raw[n:]
	}
	sort.SliceStable(rl.Records, func(i, j int) bool { return rl.Records[i].LSN < rl.Records[j].LSN })

	// Step 2: analysis.
	for i := range rl.Records {
		rec := &rl.Records[i]
		if rec.LSN > rl.MaxLSN {
			rl.MaxLSN = rec.LSN
		}
		switch rec.Type {
		case RecBegin:
			rl.Losers[rec.TxnID] = true
		case RecCommit:
			rl.Committed[rec.TxnID] = true
			delete(rl.Losers, rec.TxnID)
		case RecAbort:
			rl.Aborted[rec.TxnID] = true
			delete(rl.Losers, rec.TxnID)
		}
	}

	// Step 3: redo (repeating history, including losers, so undo sees the
	// exact state the crash left).
	for i := range rl.Records {
		rec := &rl.Records[i]
		switch rec.Type {
		case RecUpdate, RecInsert, RecDelete:
			if rl.Aborted[rec.TxnID] {
				// Aborted transactions were rolled back in place before
				// the abort record; their updates must not be redone.
				continue
			}
			if err := app.ApplyRedo(c, rec); err != nil {
				return nil, nil, fmt.Errorf("wal: redo LSN %d: %w", rec.LSN, err)
			}
		}
	}

	// Step 4: undo losers, newest first.
	for i := len(rl.Records) - 1; i >= 0; i-- {
		rec := &rl.Records[i]
		if !rl.Losers[rec.TxnID] {
			continue
		}
		switch rec.Type {
		case RecUpdate, RecInsert, RecDelete:
			if err := app.ApplyUndo(c, rec); err != nil {
				return nil, nil, fmt.Errorf("wal: undo LSN %d: %w", rec.LSN, err)
			}
		}
	}

	// Build a fresh manager positioned after the log. The buffer restarts
	// empty (its records are now in the SSD log file).
	m, err := New(opt)
	if err != nil {
		return nil, nil, err
	}
	m.nextLSN.Store(rl.MaxLSN + 1)

	// Close out losers in the log so a second crash doesn't re-undo.
	for txn := range rl.Losers {
		if _, err := m.Append(c, &Record{TxnID: txn, Type: RecAbort}); err != nil {
			return nil, nil, err
		}
	}
	return m, rl, nil
}
