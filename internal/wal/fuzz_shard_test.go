package wal

import (
	"encoding/binary"
	"testing"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// FuzzRecoverShards drives a sharded WAL through a byte-coded op script —
// appends from several worker clocks, forced flushes, torn shard tails, and
// garbage injected into the SSD log — then crashes and recovers. Recovery
// must never error or panic, and the merged log must come back in strict
// LSN order with every pre-damage commit intact.
//
// Script format: byte 0 picks the shard count (1–4); each following byte is
// one op — low 3 bits select append/flush/tear/garbage, high bits pick the
// worker and payload size.
func FuzzRecoverShards(f *testing.F) {
	f.Add([]byte{1, 0x10, 0x21, 0x32, 0x06})             // single shard, appends + flush
	f.Add([]byte{3, 0x10, 0x21, 0x32, 0x43, 0x07})       // 4 shards, appends + torn tail
	f.Add([]byte{2, 0x05, 0x16, 0x27, 0x06, 0x15, 0x07}) // flush-heavy with damage
	f.Add([]byte{0})                                     // no ops at all
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			return
		}
		nShards := 1 + int(script[0])%4
		pm := pmem.New(pmem.Options{Size: 1 << 16, TrackCrashes: true})
		store := NewMemLog(nil)
		opt := Options{Buffer: pm, Store: store, Shards: nShards}
		m, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		clocks := [3]*vclock.Clock{vclock.New(), vclock.New(), vclock.New()}
		committed := map[uint64]bool{} // txns whose commit was acked pre-damage
		damaged := false               // script injected damage after this point
		nextTxn := uint64(1)
		for _, b := range script[1:] {
			c := clocks[int(b>>3)%len(clocks)]
			switch b % 8 {
			case 6: // force a combined flush
				if err := m.Flush(c); err != nil {
					t.Fatalf("flush: %v", err)
				}
			case 7: // tear a shard tail: garbage covered by the extent word
				sh := m.shards[int(b>>3)%nShards]
				m.lockShard(sh)
				garbage := make([]byte, 8+60)
				garbage[0] = 60
				garbage[8] = b // vary the garbage so corpus entries differ
				if sh.bufOff+int64(len(garbage)) <= sh.limit {
					pm.Write(c, sh.bufOff, garbage)
					pm.Persist(c, sh.bufOff, len(garbage))
					var word [8]byte
					binary.LittleEndian.PutUint64(word[:], uint64(sh.bufOff+int64(len(garbage))))
					pm.Write(c, sh.base+8, word[:])
					pm.Persist(c, sh.base+8, len(word))
					damaged = true
				}
				m.unlockShard(sh)
			case 5: // torn store.Append: a partial batch mid-file
				if err := store.Append(c, make([]byte, 1+int(b>>3))); err != nil {
					t.Fatalf("store append: %v", err)
				}
				damaged = true
			default: // append a small transaction
				txn := nextTxn
				nextTxn++
				if _, err := m.Append(c, &Record{TxnID: txn, Type: RecUpdate, PageID: uint64(b), Slot: 1, Before: []byte{0}, After: []byte{b}}); err != nil {
					t.Fatalf("append: %v", err)
				}
				if _, err := m.Append(c, &Record{TxnID: txn, Type: RecCommit}); err != nil {
					t.Fatalf("commit: %v", err)
				}
				if !damaged {
					committed[txn] = true
				}
			}
		}

		pm.Crash()

		m2, rl, err := Recover(vclock.New(), opt, newApplierMap())
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		// The merged log is strictly LSN-ordered with no duplicates left.
		for i := 1; i < len(rl.Records); i++ {
			prev, cur := rl.Records[i-1].LSN, rl.Records[i].LSN
			if prev != 0 && cur != 0 && cur <= prev {
				t.Fatalf("merged log not strictly LSN-ordered at %d: %d then %d", i, prev, cur)
			}
		}
		// Torn tails and garbage never swallow an acked commit. (Commits
		// acked after the first damage op may sit beyond a torn extent, so
		// only pre-damage commits are asserted.)
		for txn := range committed {
			if !rl.Committed[txn] {
				t.Fatalf("acked commit of txn %d lost (shards=%d)", txn, nShards)
			}
		}
		if m2.NextLSN() <= rl.MaxLSN {
			t.Fatalf("NextLSN %d not past recovered max %d", m2.NextLSN(), rl.MaxLSN)
		}
	})
}
