package wal

import (
	"encoding/binary"
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

func newShardedManager(t *testing.T, bufSize int64, shards int) (*Manager, *pmem.PMem, *MemLog) {
	t.Helper()
	pm := pmem.New(pmem.Options{Size: bufSize, TrackCrashes: true})
	store := NewMemLog(nil)
	m, err := New(Options{Buffer: pm, Store: store, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return m, pm, store
}

func TestShardRegionsLayout(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		size := int64(1 << 18)
		regs := shardRegions(size, n)
		if len(regs) != n {
			t.Fatalf("n=%d: got %d regions", n, len(regs))
		}
		if regs[0][0] != 0 {
			t.Fatalf("n=%d: first region starts at %d", n, regs[0][0])
		}
		if regs[n-1][1] != size {
			t.Fatalf("n=%d: last region ends at %d, want %d", n, regs[n-1][1], size)
		}
		for i, r := range regs {
			if r[0]%pmem.CacheLineSize != 0 {
				t.Fatalf("n=%d: region %d base %d not cache-line aligned", n, i, r[0])
			}
			if i > 0 && r[0] != regs[i-1][1] {
				t.Fatalf("n=%d: region %d base %d != previous limit %d", n, i, r[0], regs[i-1][1])
			}
		}
	}
	// n=1 must be the original single-buffer layout exactly.
	regs := shardRegions(12345, 1)
	if regs[0][0] != 0 || regs[0][1] != 12345 {
		t.Fatalf("single-shard region = %v, want [0, 12345)", regs[0])
	}
}

func TestShardedAppendsSpreadAcrossShards(t *testing.T) {
	m, _, _ := newShardedManager(t, 1<<18, 4)
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", m.Shards())
	}
	clocks := make([]*vclock.Clock, 4)
	for i := range clocks {
		clocks[i] = vclock.New()
		if _, err := m.Append(clocks[i], &Record{TxnID: uint64(i), Type: RecUpdate, After: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin affinity: four fresh clocks land on four distinct shards,
	// and a clock stays pinned to its shard.
	seen := map[*walShard]bool{}
	for _, c := range clocks {
		seen[m.shardFor(c)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 clocks landed on %d shards, want 4", len(seen))
	}
	for _, c := range clocks {
		if m.shardFor(c) != m.shardFor(c) {
			t.Fatal("shard affinity not sticky")
		}
	}
}

func TestShardedConcurrentAppends(t *testing.T) {
	m, _, store := newShardedManager(t, 1<<18, 4)
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vclock.New()
			for i := 0; i < each; i++ {
				if _, err := m.Append(c, &Record{TxnID: uint64(w), Type: RecCommit, After: []byte{byte(w)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c := vclock.New()
	if err := m.Flush(c); err != nil {
		t.Fatal(err)
	}
	raw, err := store.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	n := 0
	for len(raw) > 0 {
		rec, sz, status := decodeOne(raw)
		if status != decodeOK {
			t.Fatal("log contains a torn record")
		}
		if seen[rec.LSN] {
			t.Fatalf("duplicate LSN %d", rec.LSN)
		}
		seen[rec.LSN] = true
		raw = raw[sz:]
		n++
	}
	if n != workers*each {
		t.Fatalf("log holds %d records, want %d", n, workers*each)
	}
	appends, _, commits := m.Stats()
	if appends != workers*each || commits != workers*each {
		t.Fatalf("Stats = %d appends / %d commits, want %d / %d", appends, commits, workers*each, workers*each)
	}
}

func TestGroupCommitWatermarkAdvances(t *testing.T) {
	m, _, _ := newShardedManager(t, 1<<16, 2)
	c := vclock.New()
	var last uint64
	for i := 0; i < 20; i++ {
		lsn, err := m.Append(c, &Record{TxnID: 1, Type: RecCommit, After: make([]byte, 64)})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if wm := m.DurableLSN(); wm != 0 {
		// Below the threshold nothing flushes; a non-zero watermark would
		// mean a flush ran early.
		t.Fatalf("watermark %d before any flush", wm)
	}
	if err := m.Flush(c); err != nil {
		t.Fatal(err)
	}
	if wm := m.DurableLSN(); wm < last {
		t.Fatalf("watermark %d below flushed LSN %d", wm, last)
	}
}

func TestGroupCommitFollowerSkipsFlush(t *testing.T) {
	// Threshold of 1 byte: every append wants a flush. The combined flush
	// drains both shards at once, so a second worker whose LSN is under the
	// leader's watermark must skip instead of flushing an empty buffer.
	pm := pmem.New(pmem.Options{Size: 1 << 16})
	store := NewMemLog(nil)
	m, err := New(Options{Buffer: pm, Store: store, Shards: 2, FlushThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := vclock.New(), vclock.New()
	if _, err := m.Append(c1, &Record{TxnID: 1, Type: RecUpdate, After: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(c2, &Record{TxnID: 2, Type: RecUpdate, After: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	_, flushes, _ := m.Stats()
	if flushes == 0 {
		t.Fatal("threshold of 1 byte never flushed")
	}
	// Both records must have reached the store despite any skipped flushes.
	raw, err := store.ReadAll(c1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for len(raw) > 0 {
		_, sz, status := decodeOne(raw)
		if status != decodeOK {
			t.Fatal("torn record in store")
		}
		raw = raw[sz:]
		n++
	}
	if got := int(flushes); got > 2 {
		t.Fatalf("%d flushes for 2 appends, watermark skip not working", got)
	}
	if n != 2 {
		t.Fatalf("store holds %d records, want 2", n)
	}
}

func TestShardedRecoveryMergesByLSN(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 16, TrackCrashes: true})
	store := NewMemLog(nil)
	opt := Options{Buffer: pm, Store: store, Shards: 4}
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave appends from four worker clocks so the shard tails hold
	// interleaved LSN ranges.
	clocks := [4]*vclock.Clock{vclock.New(), vclock.New(), vclock.New(), vclock.New()}
	for txn := uint64(1); txn <= 4; txn++ {
		c := clocks[txn-1]
		appendAll := func(recs ...*Record) {
			for _, r := range recs {
				if _, err := m.Append(c, r); err != nil {
					t.Fatal(err)
				}
			}
		}
		appendAll(
			&Record{TxnID: txn, Type: RecBegin},
			&Record{TxnID: txn, Type: RecUpdate, PageID: 10, Slot: uint16(txn), Before: []byte("old"), After: []byte("new")},
		)
	}
	for txn := uint64(1); txn <= 3; txn++ {
		if _, err := m.Append(clocks[txn-1], &Record{TxnID: txn, Type: RecCommit}); err != nil {
			t.Fatal(err)
		}
	}

	pm.Crash()

	app := newApplierMap()
	for txn := uint64(1); txn <= 4; txn++ {
		app.vals[10<<16|uint64(uint16(txn))] = []byte("new")
	}
	m2, rl, err := Recover(clocks[0], opt, app)
	if err != nil {
		t.Fatal(err)
	}
	for txn := uint64(1); txn <= 3; txn++ {
		if !rl.Committed[txn] {
			t.Fatalf("txn %d not recognized as committed", txn)
		}
	}
	if !rl.Losers[4] {
		t.Fatal("txn 4 not recognized as a loser")
	}
	if got := string(app.vals[10<<16|4]); got != "old" {
		t.Fatalf("loser value = %q, want rolled back to old", got)
	}
	// The merge must deliver the records in strict LSN order with no gaps
	// introduced by the per-shard scans.
	for i := 1; i < len(rl.Records); i++ {
		if rl.Records[i].LSN <= rl.Records[i-1].LSN {
			t.Fatalf("records not LSN-sorted at %d: %d then %d", i, rl.Records[i-1].LSN, rl.Records[i].LSN)
		}
	}
	if m2.NextLSN() <= rl.MaxLSN {
		t.Fatalf("NextLSN %d not past recovered max %d", m2.NextLSN(), rl.MaxLSN)
	}
}

func TestShardedRecoveryIgnoresTornShardTails(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 16, TrackCrashes: true})
	store := NewMemLog(nil)
	opt := Options{Buffer: pm, Store: store, Shards: 2}
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := vclock.New(), vclock.New()
	if _, err := m.Append(c1, &Record{TxnID: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(c2, &Record{TxnID: 2, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	// Tear shard 1's tail: garbage bytes covered by the extent word, the
	// signature of a crash mid-append on that shard.
	sh := m.shardFor(c2)
	garbage := make([]byte, 8+60)
	garbage[0] = 60
	pm.Write(c2, sh.bufOff, garbage)
	pm.Persist(c2, sh.bufOff, len(garbage))
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(sh.bufOff+int64(len(garbage))))
	pm.Write(c2, sh.base+8, word[:])
	pm.Persist(c2, sh.base+8, len(word))

	pm.Crash()

	_, rl, err := Recover(c1, opt, newApplierMap())
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Committed[1] || !rl.Committed[2] {
		t.Fatalf("committed txns lost: %v", rl.Committed)
	}
	if rl.Stats.ChecksumMismatches == 0 {
		t.Fatal("torn shard tail not counted as damage")
	}
	if rl.Stats.TruncatedTailBytes != len(garbage) {
		t.Fatalf("TruncatedTailBytes = %d, want %d", rl.Stats.TruncatedTailBytes, len(garbage))
	}
}

func TestNewRejectsUndersizedShardedBuffer(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 4096})
	_, err := New(Options{Buffer: pm, Store: NewMemLog(nil), Shards: 8})
	if err == nil {
		t.Fatal("8 shards over 4 KiB accepted; each region would be under the minimum")
	}
}

func TestShardCountClamped(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 20})
	m, err := New(Options{Buffer: pm, Store: NewMemLog(nil), Shards: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != MaxShards {
		t.Fatalf("Shards() = %d, want clamp to %d", m.Shards(), MaxShards)
	}
	m, err = New(Options{Buffer: pm, Store: NewMemLog(nil), Shards: -3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", m.Shards())
	}
}
