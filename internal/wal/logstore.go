package wal

import (
	"fmt"
	"os"
	"sync"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// MemLog is an in-memory LogStore charged against an SSD device model. The
// experiments use it; the recovery example uses FileLog.
type MemLog struct {
	dev *device.Device
	mu  sync.Mutex
	buf []byte
}

// NewMemLog creates an in-memory SSD log. A nil device gets Table 1 SSD
// parameters.
func NewMemLog(dev *device.Device) *MemLog {
	if dev == nil {
		dev = device.New(device.SSDParams)
	}
	return &MemLog{dev: dev}
}

// Device returns the cost model in use.
func (l *MemLog) Device() *device.Device { return l.dev }

// Append implements LogStore. An injected torn write genuinely appends only
// the torn prefix of data (the log is byte-appended, so a partial batch is
// exactly what a mid-flush crash leaves behind); recovery's resync scan and
// LSN dedup are what make that safe.
func (l *MemLog) Append(c *vclock.Clock, data []byte) error {
	if _, err := l.dev.WriteErr(c, len(data)); err != nil {
		if frac, torn := device.IsTorn(err); torn {
			if n := int(frac * float64(len(data))); n > 0 && n <= len(data) {
				l.mu.Lock()
				l.buf = append(l.buf, data[:n]...)
				l.mu.Unlock()
			}
		}
		return err
	}
	l.mu.Lock()
	l.buf = append(l.buf, data...)
	l.mu.Unlock()
	return nil
}

// ReadAll implements LogStore.
func (l *MemLog) ReadAll(c *vclock.Clock) ([]byte, error) {
	l.mu.Lock()
	out := append([]byte(nil), l.buf...)
	l.mu.Unlock()
	if _, err := l.dev.ReadErr(c, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// Truncate implements LogStore.
func (l *MemLog) Truncate(c *vclock.Clock) error {
	if _, err := l.dev.WriteErr(c, 1); err != nil {
		return err
	}
	l.mu.Lock()
	l.buf = l.buf[:0]
	l.mu.Unlock()
	return nil
}

// Len returns the current log size in bytes.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// FileLog is a file-backed LogStore for examples that survive process
// restarts.
type FileLog struct {
	dev *device.Device
	mu  sync.Mutex
	f   *os.File
}

// NewFileLog opens (creating if necessary) a log file at path.
func NewFileLog(path string, dev *device.Device) (*FileLog, error) {
	if dev == nil {
		dev = device.New(device.SSDParams)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log %s: %w", path, err)
	}
	return &FileLog{dev: dev, f: f}, nil
}

// Append implements LogStore.
func (l *FileLog) Append(c *vclock.Clock, data []byte) error {
	l.dev.Write(c, len(data))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, 2); err != nil {
		return err
	}
	if _, err := l.f.Write(data); err != nil {
		return err
	}
	return l.f.Sync()
}

// ReadAll implements LogStore.
func (l *FileLog) ReadAll(c *vclock.Clock) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return nil, err
	}
	out := make([]byte, st.Size())
	if _, err := l.f.ReadAt(out, 0); err != nil && st.Size() > 0 {
		return nil, err
	}
	l.dev.Read(c, len(out))
	return out, nil
}

// Truncate implements LogStore.
func (l *FileLog) Truncate(c *vclock.Clock) error {
	l.dev.Write(c, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Truncate(0)
}

// Close closes the underlying file.
func (l *FileLog) Close() error { return l.f.Close() }
