// Package wal implements Spitfire's NVM-aware write-ahead logging and
// recovery protocol (§5.2 of the paper).
//
// Log records are first persisted in a *shared NVM log buffer*, exploiting
// NVM's persistence and latency: once a transaction's commit record is
// persisted there (clwb+sfence), the transaction is durable — no synchronous
// SSD write sits on the commit path. When the buffer fills past a threshold
// its contents are appended to an on-SSD log file and the buffer is reset.
//
// The NVM buffer is split into Options.Shards independent append regions
// with worker-affine assignment, so concurrent appenders contend only on
// their own shard's mutex; LSNs come from one atomic counter and stay
// globally unique and monotone. A combining flusher (group commit) drains
// every shard under a single flushMu, coalescing the shard contents into one
// ordered SSD append and publishing an LSN watermark: a committer whose LSN
// is already below the watermark skips the flush entirely. With Shards=1
// (the default) the layout and behavior match the original single-buffer
// manager.
//
// A record carries: transaction and page identifiers, the record type, the
// LSN of the transaction's previous record, and before/after images —
// exactly the fields §5.2 lists.
//
// Recovery completes the log (each persistent NVM shard's tail is appended
// to the SSD log file and merged by LSN) and then runs the traditional
// analysis / redo / undo passes. Redo re-applies after-images to pages whose
// page LSN is older; undo restores before-images of loser transactions in
// reverse LSN order.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/lockcheck"
	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	RecBegin RecordType = iota + 1
	RecUpdate
	RecInsert
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// Record is one log record.
type Record struct {
	LSN     uint64
	TxnID   uint64
	PrevLSN uint64
	Type    RecordType
	TableID uint32
	PageID  uint64
	Slot    uint16
	Before  []byte // before image (undo)
	After   []byte // after image (redo)
}

const recHeaderSize = 8 + 8 + 8 + 1 + 4 + 8 + 2 + 4 + 4 // body header fields

func (r *Record) bodyLen() int { return recHeaderSize + len(r.Before) + len(r.After) }

// encode appends the framed record (length + checksum + body) to dst. It
// encodes in place with no intermediate buffer, so appending into a slice
// with enough capacity performs zero allocations (the WAL hot path reuses a
// per-shard scratch buffer).
func (r *Record) encode(dst []byte) []byte {
	base := len(dst)
	le := binary.LittleEndian
	var frame [8]byte
	dst = append(dst, frame[:]...) // length + checksum, patched below
	dst = le.AppendUint64(dst, r.LSN)
	dst = le.AppendUint64(dst, r.TxnID)
	dst = le.AppendUint64(dst, r.PrevLSN)
	dst = append(dst, byte(r.Type))
	dst = le.AppendUint32(dst, r.TableID)
	dst = le.AppendUint64(dst, r.PageID)
	dst = le.AppendUint16(dst, r.Slot)
	dst = le.AppendUint32(dst, uint32(len(r.Before)))
	dst = le.AppendUint32(dst, uint32(len(r.After)))
	dst = append(dst, r.Before...)
	dst = append(dst, r.After...)
	body := dst[base+8:]
	le.PutUint32(dst[base:], uint32(len(body)))
	le.PutUint32(dst[base+4:], checksum(body))
	return dst
}

// decodeStatus classifies why a frame failed to decode, so recovery can
// distinguish a clean end of log from damage it skipped past.
type decodeStatus int

const (
	decodeOK      decodeStatus = iota
	decodeShort                // not enough bytes: clean end of log / zeroed tail
	decodeCorrupt              // bytes present but damaged (checksum or length lies)
)

// decodeOne parses one framed record from b, returning the record, the bytes
// consumed, and a status: decodeShort when b ends before a whole frame could
// exist (the normal end of a scan), decodeCorrupt when a frame-sized extent
// is present but fails validation (a torn or overwritten record).
func decodeOne(b []byte) (rec Record, n int, status decodeStatus) {
	le := binary.LittleEndian
	if len(b) < 8 {
		return rec, 0, decodeShort
	}
	bodyLen := int(le.Uint32(b[0:]))
	if bodyLen == 0 {
		return rec, 0, decodeShort // zeroed tail
	}
	if bodyLen < recHeaderSize {
		return rec, 0, decodeCorrupt
	}
	if len(b) < 8+bodyLen {
		return rec, 0, decodeShort
	}
	body := b[8 : 8+bodyLen]
	if checksum(body) != le.Uint32(b[4:]) {
		return rec, 0, decodeCorrupt
	}
	rec.LSN = le.Uint64(body[0:])
	rec.TxnID = le.Uint64(body[8:])
	rec.PrevLSN = le.Uint64(body[16:])
	rec.Type = RecordType(body[24])
	rec.TableID = le.Uint32(body[25:])
	rec.PageID = le.Uint64(body[29:])
	rec.Slot = le.Uint16(body[37:])
	beforeLen := int(le.Uint32(body[39:]))
	afterLen := int(le.Uint32(body[43:]))
	if recHeaderSize+beforeLen+afterLen != bodyLen {
		return rec, 0, decodeCorrupt
	}
	rec.Before = append([]byte(nil), body[recHeaderSize:recHeaderSize+beforeLen]...)
	rec.After = append([]byte(nil), body[recHeaderSize+beforeLen:]...)
	return rec, 8 + bodyLen, decodeOK
}

// checksum is a simple FNV-1a over the body; it lets recovery detect torn
// records in the NVM buffer's tail and resync past damaged regions of the
// SSD log file.
func checksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// LogStore is the SSD-resident log file.
type LogStore interface {
	// Append durably appends data to the log, charging the worker.
	Append(c *vclock.Clock, data []byte) error
	// ReadAll returns the full log contents.
	ReadAll(c *vclock.Clock) ([]byte, error)
	// Truncate discards the log (after a checkpoint).
	Truncate(c *vclock.Clock) error
}

// MaxShards caps Options.Shards; beyond this the per-shard regions stop
// paying for their header overhead on any plausible buffer size.
const MaxShards = 64

// Options configures a Manager.
type Options struct {
	// Buffer is the NVM arena holding the log buffer. Required.
	Buffer *pmem.PMem
	// Store is the SSD log file. Required.
	Store LogStore
	// Shards splits the NVM buffer into this many independent append
	// regions with worker-affine assignment, taking the append mutex off
	// the multi-worker commit path. 0 or 1 (the default) keeps the original
	// single-buffer layout; values above MaxShards are clamped. Recovery
	// must be given the same shard count the buffer was written with.
	Shards int
	// FlushThreshold triggers an asynchronous append of a shard's contents
	// to the SSD log once the shard holds this many bytes. Defaults to half
	// the shard region.
	FlushThreshold int64

	// MaxRetries bounds how many times a faulting buffer write or log
	// append is retried before the error is surfaced (default 4; negative
	// disables retries). Each retry charges RetryBackoffNs simulated
	// nanoseconds to the appending worker's clock, doubling per attempt.
	MaxRetries     int
	RetryBackoffNs int64

	// Obs attaches the observability layer: append/flush latency histograms
	// and tracer events. Nil disables both.
	Obs *obs.Obs
}

// bufHeaderSize reserves space at the front of each shard region for the
// persisted write offset, so recovery knows how much of the region is live.
const bufHeaderSize = pmem.CacheLineSize

// walBufMagic ("SPFWAL01") marks an initialized NVM log buffer region.
const walBufMagic = 0x53504657414C3031

// normalizeShards clamps a configured shard count to [1, MaxShards].
func normalizeShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return n
}

// shardRegions carves an arena of size bytes into n [base, limit) regions.
// Bases are cache-line aligned (the extent word at base+8 must be an aligned
// 8-byte store for torn-atomicity); the last region absorbs the remainder,
// so with n=1 the single region is exactly [0, size) — the original layout.
func shardRegions(size int64, n int) [][2]int64 {
	region := size / int64(n)
	region -= region % pmem.CacheLineSize
	out := make([][2]int64, n)
	for i := 0; i < n; i++ {
		base := int64(i) * region
		limit := base + region
		if i == n-1 {
			limit = size
		}
		out[i] = [2]int64{base, limit}
	}
	return out
}

// walShard is one independent append region of the NVM log buffer. Its
// fields are guarded by mu except base/limit (immutable) and the
// histograms/ring (internally synchronized; the ring additionally relies on
// mu for its single-producer guarantee).
type walShard struct {
	mu    sync.Mutex
	base  int64 // region start: magic at base, extent word at base+8
	limit int64 // region end (exclusive)

	bufOff  int64  // next free byte (absolute arena offset), under mu
	scratch []byte // record-encoding buffer reused across appends (under mu)

	// Per-shard traffic counters, under mu: counting inside the append
	// critical section costs nothing extra, while manager-global atomics
	// would put two more contended cache-line RMWs on every commit.
	appends int64
	commits int64

	// Observability: the ring is only touched under mu (for appends) or
	// with every shard mutex held (for flush events on shard 0), so events
	// serialize onto one track per shard.
	ring    *obs.Ring
	hAppend *metrics.Histogram // per-shard append latency; nil unless Shards > 1
	hFlush  *metrics.Histogram // per-shard flush latency; nil unless Shards > 1

	// Pad shards out of each other's cache lines: they are allocated
	// back-to-back at New, and cross-shard false sharing on mu/bufOff would
	// re-serialize the very appenders the sharding separates.
	_ [64]byte
}

// Manager is the write-ahead log manager.
type Manager struct {
	pm        *pmem.PMem
	store     LogStore
	threshold int64 // per-shard flush trigger
	retries   int
	backoffNs int64

	shards []*walShard

	// flushMu serializes combined flushes: the appender that trips a
	// shard's threshold becomes the group-commit leader, and committers
	// blocked behind it become followers who re-check durableLSN on entry.
	// Lock order is flushMu → shard mu (every shard, in index order);
	// appenders never take flushMu while holding a shard mutex.
	flushMu sync.Mutex

	// durableLSN is the group-commit watermark: every LSN ≤ durableLSN was
	// covered by a completed combined flush. It exists purely to let
	// followers skip redundant flushes — records above it that are already
	// persisted in an NVM shard are just as durable (NVM is the commit
	// point; the SSD flush is buffer-space management).
	durableLSN atomic.Uint64

	// affinity pins each worker clock to a shard; rr deals shards
	// round-robin to clocks seen for the first time.
	affinity sync.Map // *vclock.Clock -> int
	rr       atomic.Uint64

	// nextLSN is the lock-free LSN allocator — the one shared word every
	// committer must touch. Padding keeps that RMW from false-sharing with
	// the read-mostly fields around it.
	_       [64]byte
	nextLSN atomic.Uint64
	_       [56]byte

	flushes atomic.Int64

	obs     *obs.Obs
	hAppend *metrics.Histogram
	hFlush  *metrics.Histogram
}

// New creates a WAL manager over an empty log buffer.
func New(opt Options) (*Manager, error) {
	if opt.Buffer == nil || opt.Store == nil {
		return nil, errors.New("wal: Buffer and Store are required")
	}
	n := normalizeShards(opt.Shards)
	if n == 1 {
		if opt.Buffer.Size() < bufHeaderSize+1024 {
			return nil, fmt.Errorf("wal: NVM log buffer of %d bytes is too small", opt.Buffer.Size())
		}
	} else if opt.Buffer.Size()/int64(n) < bufHeaderSize+1024 {
		return nil, fmt.Errorf("wal: NVM log buffer of %d bytes is too small for %d shards", opt.Buffer.Size(), n)
	}
	retries := opt.MaxRetries
	if retries == 0 {
		retries = 4
	}
	if retries < 0 {
		retries = 0
	}
	backoff := opt.RetryBackoffNs
	if backoff <= 0 {
		backoff = 20_000 // 20µs simulated
	}
	m := &Manager{
		pm: opt.Buffer, store: opt.Store,
		retries: retries, backoffNs: backoff,
	}
	for i, reg := range shardRegions(opt.Buffer.Size(), n) {
		sh := &walShard{base: reg[0], limit: reg[1], bufOff: reg[0] + bufHeaderSize}
		if opt.Obs != nil {
			label := "wal"
			if i > 0 {
				label = fmt.Sprintf("wal%d", i)
			}
			sh.ring = opt.Obs.NewRing(label)
			if n > 1 {
				sh.hAppend = opt.Obs.NamedHist(fmt.Sprintf("wal_shard%d_append", i))
				sh.hFlush = opt.Obs.NamedHist(fmt.Sprintf("wal_shard%d_flush", i))
			}
		}
		m.shards = append(m.shards, sh)
	}
	m.threshold = opt.FlushThreshold
	if m.threshold <= 0 {
		m.threshold = (m.shards[0].limit - m.shards[0].base) / 2
	}
	if opt.Obs != nil {
		m.obs = opt.Obs
		m.hAppend = opt.Obs.Hist(obs.HWALAppend)
		m.hFlush = opt.Obs.Hist(obs.HWALFlush)
	}
	m.nextLSN.Store(1)
	ctx := vclock.New()
	for _, sh := range m.shards {
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:], walBufMagic)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(sh.bufOff))
		base := sh.base
		if err := m.retry(ctx, func() error {
			if err := m.pm.WriteErr(ctx, base, hdr[:]); err != nil {
				return err
			}
			return m.pm.PersistErr(ctx, base, len(hdr))
		}); err != nil {
			return nil, fmt.Errorf("wal: initializing log buffer: %w", err)
		}
	}
	return m, nil
}

// Shards reports the number of append shards the buffer is split into.
func (m *Manager) Shards() int { return len(m.shards) }

// shardFor returns the appending worker's shard. Clocks are dealt to shards
// round-robin on first use and stay pinned (worker affinity keeps a worker's
// records batched in one region and its cache lines hot).
func (m *Manager) shardFor(c *vclock.Clock) *walShard {
	if len(m.shards) == 1 {
		return m.shards[0]
	}
	if v, ok := m.affinity.Load(c); ok {
		return m.shards[v.(int)]
	}
	i := int((m.rr.Add(1) - 1) % uint64(len(m.shards)))
	v, _ := m.affinity.LoadOrStore(c, i)
	return m.shards[v.(int)]
}

// Lock shims: WAL mutex acquisitions route through these so the
// -tags lockcheck runtime checker sees the flushMu → shard-mu order (and
// that appenders treat the shard mutex as a leaf).

func (m *Manager) lockShard(sh *walShard) {
	lockcheck.Acquire(sh, lockcheck.RankWALShard)
	sh.mu.Lock()
}

func (m *Manager) unlockShard(sh *walShard) {
	sh.mu.Unlock()
	lockcheck.Release(sh, lockcheck.RankWALShard)
}

func (m *Manager) lockFlush() {
	lockcheck.Acquire(m, lockcheck.RankWALFlush)
	m.flushMu.Lock()
}

func (m *Manager) tryLockFlush() bool {
	if !m.flushMu.TryLock() {
		return false
	}
	lockcheck.Acquired(m, lockcheck.RankWALFlush)
	return true
}

func (m *Manager) unlockFlush() {
	m.flushMu.Unlock()
	lockcheck.Release(m, lockcheck.RankWALFlush)
}

// retry runs op, retrying transient faults with exponential backoff charged
// to the worker's virtual clock. Permanent and crash faults abort at once.
func (m *Manager) retry(c *vclock.Clock, op func() error) error {
	back := m.backoffNs
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if errors.Is(err, device.ErrPermanent) || errors.Is(err, device.ErrCrashed) {
			return err
		}
		if attempt >= m.retries {
			return err
		}
		c.Advance(back)
		if back *= 2; back > 2_000_000 {
			back = 2_000_000
		}
	}
}

// NextLSN returns the LSN the next appended record will receive.
func (m *Manager) NextLSN() uint64 { return m.nextLSN.Load() }

// DurableLSN returns the group-commit watermark: the highest LSN covered by
// a completed combined flush to the SSD log.
func (m *Manager) DurableLSN() uint64 { return m.durableLSN.Load() }

// persistShardOffset persists sh's live-region extent. Caller holds sh.mu
// (or is single-threaded setup/recovery). Only the 8-byte offset word is
// written — an aligned 8-byte pmem store is torn-atomic, so a crash leaves
// either the old or the new extent, never a garbled one (the magic word is
// written once at New and never touched again).
func (m *Manager) persistShardOffset(c *vclock.Clock, sh *walShard) error {
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(sh.bufOff))
	off := sh.base + 8
	return m.retry(c, func() error {
		if err := m.pm.WriteErr(c, off, word[:]); err != nil {
			return err
		}
		return m.pm.PersistErr(c, off, len(word))
	})
}

// Append assigns the record an LSN, persists it in the worker's NVM shard,
// and returns the LSN. The record is durable once this returns: persistence
// in the NVM buffer is the commit point. If the shard passes the flush
// threshold the appender joins a group commit — it becomes the combining
// flusher, or skips out if a concurrent leader's watermark already covers
// its LSN (the paper flushes asynchronously; here the leading worker pays,
// which charges the same total I/O).
func (m *Manager) Append(c *vclock.Clock, rec *Record) (uint64, error) {
	sh := m.shardFor(c)
	m.lockShard(sh)
	var start int64
	if m.obs != nil {
		start = c.Now()
	}
	rec.LSN = m.nextLSN.Add(1) - 1
	// Encode into the shard's scratch buffer: zero allocations once it has
	// grown to the steady-state record size. Re-encoded after an overflow
	// drain, since the scratch is unprotected while the shard lock is down.
	var frame []byte
	for {
		sh.scratch = rec.encode(sh.scratch[:0])
		frame = sh.scratch
		if sh.bufOff+int64(len(frame)) <= sh.limit {
			break
		}
		if sh.bufOff == sh.base+bufHeaderSize {
			m.unlockShard(sh)
			return 0, fmt.Errorf("wal: record of %d bytes exceeds the log buffer", len(frame))
		}
		// Shard full: drain it via a combined flush. The shard lock drops
		// first — flushMu → shard mu is the only legal order.
		m.unlockShard(sh)
		if err := m.groupFlush(c); err != nil {
			return 0, err
		}
		m.lockShard(sh)
	}
	off := sh.bufOff
	// Record bytes persist before the extent word advances past them: a
	// crash mid-append leaves the extent pointing at the last whole record,
	// so a torn record is invisible to recovery and the append is simply
	// unacknowledged. A torn write retries by rewriting the full frame.
	if err := m.retry(c, func() error {
		if err := m.pm.WriteErr(c, off, frame); err != nil {
			return err
		}
		return m.pm.PersistErr(c, off, len(frame))
	}); err != nil {
		m.unlockShard(sh)
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	sh.bufOff = off + int64(len(frame))
	if err := m.persistShardOffset(c, sh); err != nil {
		sh.bufOff = off // record never became visible
		m.unlockShard(sh)
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	needFlush := sh.bufOff-(sh.base+bufHeaderSize) >= m.threshold
	if m.obs != nil {
		now := c.Now()
		m.hAppend.Observe(now - start)
		if sh.hAppend != nil {
			sh.hAppend.Observe(now - start)
		}
		sh.ring.Emit(obs.Event{
			TS: now, Dur: now - start,
			Type: obs.EvWALAppend, From: obs.TierNVM, Outcome: obs.OutOK,
			Page: obs.NoPage, Arg: int64(rec.LSN),
		})
	}
	sh.appends++
	if rec.Type == RecCommit {
		sh.commits++
	}
	m.unlockShard(sh)
	var err error
	if needFlush {
		err = m.maybeGroupFlush(c, rec.LSN)
	}
	return rec.LSN, err
}

// maybeGroupFlush is the group-commit ticket check: if a concurrent leader's
// watermark already covers lsn the flush is skipped (the follower's records
// are on SSD, or still NVM-durable in a shard — either way safe); otherwise
// the caller tries to become the leader. If another leader already holds
// flushMu the caller skips out instead of convoying behind it: the record is
// NVM-durable (commit happened at Append), the threshold flush is only
// buffer-space management, and any bytes the in-flight flush misses retrigger
// it from the next append over the threshold.
func (m *Manager) maybeGroupFlush(c *vclock.Clock, lsn uint64) error {
	if m.durableLSN.Load() >= lsn {
		return nil
	}
	if !m.tryLockFlush() {
		return nil
	}
	if m.durableLSN.Load() >= lsn {
		m.unlockFlush()
		return nil
	}
	err := m.combinedFlush(c)
	m.unlockFlush()
	return err
}

// groupFlush runs a combined flush unconditionally (overflow drains and the
// public Flush need space freed or data on SSD regardless of the watermark).
func (m *Manager) groupFlush(c *vclock.Clock) error {
	m.lockFlush()
	err := m.combinedFlush(c)
	m.unlockFlush()
	return err
}

// Flush forces the NVM buffer's contents onto the SSD log.
func (m *Manager) Flush(c *vclock.Clock) error {
	return m.groupFlush(c)
}

// combinedFlush drains every shard's live bytes to the SSD log and resets
// the shards. Caller holds flushMu. The watermark is captured before any
// shard lock: every LSN allocated before the capture is either persisted in
// a shard this flush drains (LSN allocation and frame persist share one
// shard critical section, and each shard is locked after the capture),
// rolled back by a failed append, or — in the rare overflow-drain race —
// left in a shard, where NVM persistence keeps it durable anyway.
//
// On failure the drained shards keep their contents, so no record is lost:
// a torn append leaves a partial batch in the file that a later successful
// flush re-appends in full — recovery's resync scan plus LSN dedup
// reconcile the duplicates.
func (m *Manager) combinedFlush(c *vclock.Clock) error {
	wm := m.nextLSN.Load() - 1
	var start int64
	if m.obs != nil {
		start = c.Now()
	}
	// Drain one shard at a time: lock it, ship its live bytes as one SSD
	// segment, reset its extent, unlock, move on. Appenders on the other
	// shards keep committing while a shard drains — recovery merges the
	// per-shard file segments by LSN, so segment order in the file does not
	// matter. Aborting on the first error leaves the remaining shards
	// untouched (their records stay NVM-durable) and the watermark behind,
	// so a later flush retries them.
	total := int64(0)
	for _, sh := range m.shards {
		n, err := m.drainShard(c, sh)
		total += n
		if err != nil {
			return err
		}
	}
	if total <= 0 {
		return nil
	}
	m.flushes.Add(1)
	if m.durableLSN.Load() < wm {
		m.durableLSN.Store(wm) // flushMu serializes writers
	}
	if m.obs != nil {
		now := c.Now()
		m.hFlush.Observe(now - start)
		ring := m.shards[0].ring
		ring.Emit(obs.Event{
			TS: now, Dur: now - start,
			Type: obs.EvWALFlush, From: obs.TierNVM, To: obs.TierSSD,
			Page: obs.NoPage, Arg: total,
		})
		ring.Emit(obs.Event{
			TS: now, Dur: now - start,
			Type: obs.EvWALGroupCommit, From: obs.TierNVM, To: obs.TierSSD,
			Page: obs.NoPage, Arg: int64(wm),
		})
	}
	return nil
}

// drainShard ships one shard's live bytes to the SSD log and resets its
// extent, holding only that shard's mutex. Returns the number of bytes
// drained. A failed extent reset leaves the shard's records both in the
// file and in the buffer; recovery dedups by LSN, and the next flush
// retries the reset.
func (m *Manager) drainShard(c *vclock.Clock, sh *walShard) (int64, error) {
	m.lockShard(sh)
	defer m.unlockShard(sh)
	n := sh.bufOff - (sh.base + bufHeaderSize)
	if n <= 0 {
		return 0, nil
	}
	var start int64
	if m.obs != nil {
		start = c.Now()
	}
	data := make([]byte, n)
	src := sh.base + bufHeaderSize
	if err := m.retry(c, func() error { return m.pm.ReadErr(c, src, data) }); err != nil {
		return 0, fmt.Errorf("wal: flush: %w", err)
	}
	if err := m.retry(c, func() error { return m.store.Append(c, data) }); err != nil {
		return 0, fmt.Errorf("wal: flush: %w", err)
	}
	old := sh.bufOff
	sh.bufOff = sh.base + bufHeaderSize
	if err := m.persistShardOffset(c, sh); err != nil {
		sh.bufOff = old
		return n, fmt.Errorf("wal: flush: %w", err)
	}
	if m.obs != nil && sh.hFlush != nil {
		sh.hFlush.Observe(c.Now() - start)
	}
	return n, nil
}

// Truncate flushes and then discards the SSD log. Call only after a
// checkpoint has made all logged changes durable in place.
func (m *Manager) Truncate(c *vclock.Clock) error {
	m.lockFlush()
	defer m.unlockFlush()
	for _, sh := range m.shards {
		m.lockShard(sh)
	}
	defer func() {
		for i := len(m.shards) - 1; i >= 0; i-- {
			m.unlockShard(m.shards[i])
		}
	}()
	for _, sh := range m.shards {
		if old := sh.bufOff; old > sh.base+bufHeaderSize {
			sh.bufOff = sh.base + bufHeaderSize
			if err := m.persistShardOffset(c, sh); err != nil {
				sh.bufOff = old
				return fmt.Errorf("wal: truncate: %w", err)
			}
		}
	}
	if err := m.retry(c, func() error { return m.store.Truncate(c) }); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return nil
}

// Stats reports append/flush/commit counts, summing the per-shard counters.
func (m *Manager) Stats() (appends, flushes, commits int64) {
	for _, sh := range m.shards {
		m.lockShard(sh)
		appends += sh.appends
		commits += sh.commits
		m.unlockShard(sh)
	}
	return appends, m.flushes.Load(), commits
}
