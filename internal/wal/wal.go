// Package wal implements Spitfire's NVM-aware write-ahead logging and
// recovery protocol (§5.2 of the paper).
//
// Log records are first persisted in a *shared NVM log buffer*, exploiting
// NVM's persistence and latency: once a transaction's commit record is
// persisted there (clwb+sfence), the transaction is durable — no synchronous
// SSD write sits on the commit path. When the buffer fills past a threshold
// its contents are appended to an on-SSD log file and the buffer is reset.
//
// A record carries: transaction and page identifiers, the record type, the
// LSN of the transaction's previous record, and before/after images —
// exactly the fields §5.2 lists.
//
// Recovery completes the log (the persistent NVM buffer's tail is appended
// to the SSD log file) and then runs the traditional analysis / redo / undo
// passes. Redo re-applies after-images to pages whose page LSN is older;
// undo restores before-images of loser transactions in reverse LSN order.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	RecBegin RecordType = iota + 1
	RecUpdate
	RecInsert
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// Record is one log record.
type Record struct {
	LSN     uint64
	TxnID   uint64
	PrevLSN uint64
	Type    RecordType
	TableID uint32
	PageID  uint64
	Slot    uint16
	Before  []byte // before image (undo)
	After   []byte // after image (redo)
}

const recHeaderSize = 8 + 8 + 8 + 1 + 4 + 8 + 2 + 4 + 4 // body header fields

func (r *Record) bodyLen() int { return recHeaderSize + len(r.Before) + len(r.After) }

// encode appends the framed record (length + checksum + body) to dst. It
// encodes in place with no intermediate buffer, so appending into a slice
// with enough capacity performs zero allocations (the WAL hot path reuses a
// per-manager scratch buffer).
func (r *Record) encode(dst []byte) []byte {
	base := len(dst)
	le := binary.LittleEndian
	var frame [8]byte
	dst = append(dst, frame[:]...) // length + checksum, patched below
	dst = le.AppendUint64(dst, r.LSN)
	dst = le.AppendUint64(dst, r.TxnID)
	dst = le.AppendUint64(dst, r.PrevLSN)
	dst = append(dst, byte(r.Type))
	dst = le.AppendUint32(dst, r.TableID)
	dst = le.AppendUint64(dst, r.PageID)
	dst = le.AppendUint16(dst, r.Slot)
	dst = le.AppendUint32(dst, uint32(len(r.Before)))
	dst = le.AppendUint32(dst, uint32(len(r.After)))
	dst = append(dst, r.Before...)
	dst = append(dst, r.After...)
	body := dst[base+8:]
	le.PutUint32(dst[base:], uint32(len(body)))
	le.PutUint32(dst[base+4:], checksum(body))
	return dst
}

// decodeOne parses one framed record from b, returning the record and the
// bytes consumed. A zero length, short frame, or checksum mismatch yields
// ok=false: the scan has reached the end of valid log.
func decodeOne(b []byte) (rec Record, n int, ok bool) {
	le := binary.LittleEndian
	if len(b) < 8 {
		return rec, 0, false
	}
	bodyLen := int(le.Uint32(b[0:]))
	if bodyLen < recHeaderSize || len(b) < 8+bodyLen {
		return rec, 0, false
	}
	body := b[8 : 8+bodyLen]
	if checksum(body) != le.Uint32(b[4:]) {
		return rec, 0, false
	}
	rec.LSN = le.Uint64(body[0:])
	rec.TxnID = le.Uint64(body[8:])
	rec.PrevLSN = le.Uint64(body[16:])
	rec.Type = RecordType(body[24])
	rec.TableID = le.Uint32(body[25:])
	rec.PageID = le.Uint64(body[29:])
	rec.Slot = le.Uint16(body[37:])
	beforeLen := int(le.Uint32(body[39:]))
	afterLen := int(le.Uint32(body[43:]))
	if recHeaderSize+beforeLen+afterLen != bodyLen {
		return rec, 0, false
	}
	rec.Before = append([]byte(nil), body[recHeaderSize:recHeaderSize+beforeLen]...)
	rec.After = append([]byte(nil), body[recHeaderSize+beforeLen:]...)
	return rec, 8 + bodyLen, true
}

// checksum is a simple FNV-1a over the body; it exists to stop recovery
// scans at the first torn record, not to defend against corruption.
func checksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// LogStore is the SSD-resident log file.
type LogStore interface {
	// Append durably appends data to the log, charging the worker.
	Append(c *vclock.Clock, data []byte) error
	// ReadAll returns the full log contents.
	ReadAll(c *vclock.Clock) ([]byte, error)
	// Truncate discards the log (after a checkpoint).
	Truncate(c *vclock.Clock) error
}

// Options configures a Manager.
type Options struct {
	// Buffer is the NVM arena holding the log buffer. Required.
	Buffer *pmem.PMem
	// Store is the SSD log file. Required.
	Store LogStore
	// FlushThreshold triggers an asynchronous append of the NVM buffer to
	// the SSD log once the buffer holds this many bytes. Defaults to half
	// the buffer.
	FlushThreshold int64
}

// bufHeaderSize reserves space at the front of the NVM buffer for the
// persisted write offset, so recovery knows how much of the buffer is live.
const bufHeaderSize = pmem.CacheLineSize

// Manager is the write-ahead log manager.
type Manager struct {
	pm        *pmem.PMem
	store     LogStore
	threshold int64

	mu      sync.Mutex
	bufOff  int64  // next free byte in the NVM buffer
	scratch []byte // record-encoding buffer reused across appends (under mu)

	nextLSN atomic.Uint64

	appends atomic.Int64
	flushes atomic.Int64
	commits atomic.Int64
}

// New creates a WAL manager over an empty log buffer.
func New(opt Options) (*Manager, error) {
	if opt.Buffer == nil || opt.Store == nil {
		return nil, errors.New("wal: Buffer and Store are required")
	}
	if opt.Buffer.Size() < bufHeaderSize+1024 {
		return nil, fmt.Errorf("wal: NVM log buffer of %d bytes is too small", opt.Buffer.Size())
	}
	th := opt.FlushThreshold
	if th <= 0 {
		th = opt.Buffer.Size() / 2
	}
	m := &Manager{pm: opt.Buffer, store: opt.Store, threshold: th, bufOff: bufHeaderSize}
	m.nextLSN.Store(1)
	ctx := vclock.New()
	m.persistOffset(ctx)
	return m, nil
}

// NextLSN returns the LSN the next appended record will receive.
func (m *Manager) NextLSN() uint64 { return m.nextLSN.Load() }

// persistOffset persists the live-buffer extent. Caller holds mu (or is
// single-threaded setup/recovery).
func (m *Manager) persistOffset(c *vclock.Clock) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], 0x53504657414C3031) // "SPFWAL01"
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.bufOff))
	m.pm.Write(c, 0, hdr[:])
	m.pm.Persist(c, 0, len(hdr))
}

// Append assigns the record an LSN, persists it in the NVM log buffer, and
// returns the LSN. If the buffer passes the flush threshold its contents
// are appended to the SSD log (the paper does this asynchronously; here the
// appending worker pays for it, which charges the same total I/O).
func (m *Manager) Append(c *vclock.Clock, rec *Record) (uint64, error) {
	m.mu.Lock()
	rec.LSN = m.nextLSN.Add(1) - 1
	// Encode into the manager's scratch buffer: zero allocations once it
	// has grown to the steady-state record size.
	m.scratch = rec.encode(m.scratch[:0])
	frame := m.scratch
	if m.bufOff+int64(len(frame)) > m.pm.Size() {
		if err := m.flushLocked(c); err != nil {
			m.mu.Unlock()
			return 0, err
		}
		if m.bufOff+int64(len(frame)) > m.pm.Size() {
			m.mu.Unlock()
			return 0, fmt.Errorf("wal: record of %d bytes exceeds the log buffer", len(frame))
		}
	}
	off := m.bufOff
	m.pm.Write(c, off, frame)
	m.pm.Persist(c, off, len(frame))
	m.bufOff = off + int64(len(frame))
	m.persistOffset(c)
	needFlush := m.bufOff-bufHeaderSize >= m.threshold
	var err error
	if needFlush {
		err = m.flushLocked(c)
	}
	m.mu.Unlock()
	m.appends.Add(1)
	if rec.Type == RecCommit {
		m.commits.Add(1)
	}
	return rec.LSN, err
}

// Flush forces the NVM buffer's contents onto the SSD log.
func (m *Manager) Flush(c *vclock.Clock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked(c)
}

// flushLocked appends buffer contents to the SSD log and resets the buffer.
// Caller holds mu.
func (m *Manager) flushLocked(c *vclock.Clock) error {
	n := m.bufOff - bufHeaderSize
	if n <= 0 {
		return nil
	}
	data := make([]byte, n)
	m.pm.Read(c, bufHeaderSize, data)
	if err := m.store.Append(c, data); err != nil {
		return err
	}
	m.bufOff = bufHeaderSize
	m.persistOffset(c)
	m.flushes.Add(1)
	return nil
}

// Truncate flushes and then discards the SSD log. Call only after a
// checkpoint has made all logged changes durable in place.
func (m *Manager) Truncate(c *vclock.Clock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.bufOff - bufHeaderSize
	if n > 0 {
		m.bufOff = bufHeaderSize
		m.persistOffset(c)
	}
	return m.store.Truncate(c)
}

// Stats reports append/flush/commit counts.
func (m *Manager) Stats() (appends, flushes, commits int64) {
	return m.appends.Load(), m.flushes.Load(), m.commits.Load()
}
