// Package wal implements Spitfire's NVM-aware write-ahead logging and
// recovery protocol (§5.2 of the paper).
//
// Log records are first persisted in a *shared NVM log buffer*, exploiting
// NVM's persistence and latency: once a transaction's commit record is
// persisted there (clwb+sfence), the transaction is durable — no synchronous
// SSD write sits on the commit path. When the buffer fills past a threshold
// its contents are appended to an on-SSD log file and the buffer is reset.
//
// A record carries: transaction and page identifiers, the record type, the
// LSN of the transaction's previous record, and before/after images —
// exactly the fields §5.2 lists.
//
// Recovery completes the log (the persistent NVM buffer's tail is appended
// to the SSD log file) and then runs the traditional analysis / redo / undo
// passes. Redo re-applies after-images to pages whose page LSN is older;
// undo restores before-images of loser transactions in reverse LSN order.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// RecordType enumerates log record kinds.
type RecordType uint8

const (
	RecBegin RecordType = iota + 1
	RecUpdate
	RecInsert
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// Record is one log record.
type Record struct {
	LSN     uint64
	TxnID   uint64
	PrevLSN uint64
	Type    RecordType
	TableID uint32
	PageID  uint64
	Slot    uint16
	Before  []byte // before image (undo)
	After   []byte // after image (redo)
}

const recHeaderSize = 8 + 8 + 8 + 1 + 4 + 8 + 2 + 4 + 4 // body header fields

func (r *Record) bodyLen() int { return recHeaderSize + len(r.Before) + len(r.After) }

// encode appends the framed record (length + checksum + body) to dst. It
// encodes in place with no intermediate buffer, so appending into a slice
// with enough capacity performs zero allocations (the WAL hot path reuses a
// per-manager scratch buffer).
func (r *Record) encode(dst []byte) []byte {
	base := len(dst)
	le := binary.LittleEndian
	var frame [8]byte
	dst = append(dst, frame[:]...) // length + checksum, patched below
	dst = le.AppendUint64(dst, r.LSN)
	dst = le.AppendUint64(dst, r.TxnID)
	dst = le.AppendUint64(dst, r.PrevLSN)
	dst = append(dst, byte(r.Type))
	dst = le.AppendUint32(dst, r.TableID)
	dst = le.AppendUint64(dst, r.PageID)
	dst = le.AppendUint16(dst, r.Slot)
	dst = le.AppendUint32(dst, uint32(len(r.Before)))
	dst = le.AppendUint32(dst, uint32(len(r.After)))
	dst = append(dst, r.Before...)
	dst = append(dst, r.After...)
	body := dst[base+8:]
	le.PutUint32(dst[base:], uint32(len(body)))
	le.PutUint32(dst[base+4:], checksum(body))
	return dst
}

// decodeStatus classifies why a frame failed to decode, so recovery can
// distinguish a clean end of log from damage it skipped past.
type decodeStatus int

const (
	decodeOK      decodeStatus = iota
	decodeShort                // not enough bytes: clean end of log / zeroed tail
	decodeCorrupt              // bytes present but damaged (checksum or length lies)
)

// decodeOne parses one framed record from b, returning the record, the bytes
// consumed, and a status: decodeShort when b ends before a whole frame could
// exist (the normal end of a scan), decodeCorrupt when a frame-sized extent
// is present but fails validation (a torn or overwritten record).
func decodeOne(b []byte) (rec Record, n int, status decodeStatus) {
	le := binary.LittleEndian
	if len(b) < 8 {
		return rec, 0, decodeShort
	}
	bodyLen := int(le.Uint32(b[0:]))
	if bodyLen == 0 {
		return rec, 0, decodeShort // zeroed tail
	}
	if bodyLen < recHeaderSize {
		return rec, 0, decodeCorrupt
	}
	if len(b) < 8+bodyLen {
		return rec, 0, decodeShort
	}
	body := b[8 : 8+bodyLen]
	if checksum(body) != le.Uint32(b[4:]) {
		return rec, 0, decodeCorrupt
	}
	rec.LSN = le.Uint64(body[0:])
	rec.TxnID = le.Uint64(body[8:])
	rec.PrevLSN = le.Uint64(body[16:])
	rec.Type = RecordType(body[24])
	rec.TableID = le.Uint32(body[25:])
	rec.PageID = le.Uint64(body[29:])
	rec.Slot = le.Uint16(body[37:])
	beforeLen := int(le.Uint32(body[39:]))
	afterLen := int(le.Uint32(body[43:]))
	if recHeaderSize+beforeLen+afterLen != bodyLen {
		return rec, 0, decodeCorrupt
	}
	rec.Before = append([]byte(nil), body[recHeaderSize:recHeaderSize+beforeLen]...)
	rec.After = append([]byte(nil), body[recHeaderSize+beforeLen:]...)
	return rec, 8 + bodyLen, decodeOK
}

// checksum is a simple FNV-1a over the body; it lets recovery detect torn
// records in the NVM buffer's tail and resync past damaged regions of the
// SSD log file.
func checksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// LogStore is the SSD-resident log file.
type LogStore interface {
	// Append durably appends data to the log, charging the worker.
	Append(c *vclock.Clock, data []byte) error
	// ReadAll returns the full log contents.
	ReadAll(c *vclock.Clock) ([]byte, error)
	// Truncate discards the log (after a checkpoint).
	Truncate(c *vclock.Clock) error
}

// Options configures a Manager.
type Options struct {
	// Buffer is the NVM arena holding the log buffer. Required.
	Buffer *pmem.PMem
	// Store is the SSD log file. Required.
	Store LogStore
	// FlushThreshold triggers an asynchronous append of the NVM buffer to
	// the SSD log once the buffer holds this many bytes. Defaults to half
	// the buffer.
	FlushThreshold int64

	// MaxRetries bounds how many times a faulting buffer write or log
	// append is retried before the error is surfaced (default 4; negative
	// disables retries). Each retry charges RetryBackoffNs simulated
	// nanoseconds to the appending worker's clock, doubling per attempt.
	MaxRetries     int
	RetryBackoffNs int64

	// Obs attaches the observability layer: append/flush latency histograms
	// and tracer events. Nil disables both.
	Obs *obs.Obs
}

// bufHeaderSize reserves space at the front of the NVM buffer for the
// persisted write offset, so recovery knows how much of the buffer is live.
const bufHeaderSize = pmem.CacheLineSize

// walBufMagic ("SPFWAL01") marks an initialized NVM log buffer.
const walBufMagic = 0x53504657414C3031

// Manager is the write-ahead log manager.
type Manager struct {
	pm        *pmem.PMem
	store     LogStore
	threshold int64
	retries   int
	backoffNs int64

	mu      sync.Mutex
	bufOff  int64  // next free byte in the NVM buffer
	scratch []byte // record-encoding buffer reused across appends (under mu)

	nextLSN atomic.Uint64

	appends atomic.Int64
	flushes atomic.Int64
	commits atomic.Int64

	// Observability: the ring is only touched under mu (the append mutex is
	// what provides the single-producer guarantee), so events from all
	// appending workers serialize onto one "wal" track.
	obs     *obs.Obs
	hAppend *metrics.Histogram
	hFlush  *metrics.Histogram
	ring    *obs.Ring
}

// New creates a WAL manager over an empty log buffer.
func New(opt Options) (*Manager, error) {
	if opt.Buffer == nil || opt.Store == nil {
		return nil, errors.New("wal: Buffer and Store are required")
	}
	if opt.Buffer.Size() < bufHeaderSize+1024 {
		return nil, fmt.Errorf("wal: NVM log buffer of %d bytes is too small", opt.Buffer.Size())
	}
	th := opt.FlushThreshold
	if th <= 0 {
		th = opt.Buffer.Size() / 2
	}
	retries := opt.MaxRetries
	if retries == 0 {
		retries = 4
	}
	if retries < 0 {
		retries = 0
	}
	backoff := opt.RetryBackoffNs
	if backoff <= 0 {
		backoff = 20_000 // 20µs simulated
	}
	m := &Manager{
		pm: opt.Buffer, store: opt.Store, threshold: th,
		retries: retries, backoffNs: backoff, bufOff: bufHeaderSize,
	}
	if opt.Obs != nil {
		m.obs = opt.Obs
		m.hAppend = opt.Obs.Hist(obs.HWALAppend)
		m.hFlush = opt.Obs.Hist(obs.HWALFlush)
		m.ring = opt.Obs.NewRing("wal")
	}
	m.nextLSN.Store(1)
	ctx := vclock.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], walBufMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.bufOff))
	if err := m.retry(ctx, func() error {
		if err := m.pm.WriteErr(ctx, 0, hdr[:]); err != nil {
			return err
		}
		return m.pm.PersistErr(ctx, 0, len(hdr))
	}); err != nil {
		return nil, fmt.Errorf("wal: initializing log buffer: %w", err)
	}
	return m, nil
}

// retry runs op, retrying transient faults with exponential backoff charged
// to the worker's virtual clock. Permanent and crash faults abort at once.
func (m *Manager) retry(c *vclock.Clock, op func() error) error {
	back := m.backoffNs
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if errors.Is(err, device.ErrPermanent) || errors.Is(err, device.ErrCrashed) {
			return err
		}
		if attempt >= m.retries {
			return err
		}
		c.Advance(back)
		if back *= 2; back > 2_000_000 {
			back = 2_000_000
		}
	}
}

// NextLSN returns the LSN the next appended record will receive.
func (m *Manager) NextLSN() uint64 { return m.nextLSN.Load() }

// persistOffset persists the live-buffer extent. Caller holds mu (or is
// single-threaded setup/recovery). Only the 8-byte offset word is written —
// an aligned 8-byte pmem store is torn-atomic, so a crash leaves either the
// old or the new extent, never a garbled one (the magic word is written once
// at New and never touched again).
func (m *Manager) persistOffset(c *vclock.Clock) error {
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(m.bufOff))
	return m.retry(c, func() error {
		if err := m.pm.WriteErr(c, 8, word[:]); err != nil {
			return err
		}
		return m.pm.PersistErr(c, 8, len(word))
	})
}

// Append assigns the record an LSN, persists it in the NVM log buffer, and
// returns the LSN. If the buffer passes the flush threshold its contents
// are appended to the SSD log (the paper does this asynchronously; here the
// appending worker pays for it, which charges the same total I/O).
func (m *Manager) Append(c *vclock.Clock, rec *Record) (uint64, error) {
	m.mu.Lock()
	var start int64
	if m.obs != nil {
		start = c.Now()
	}
	rec.LSN = m.nextLSN.Add(1) - 1
	// Encode into the manager's scratch buffer: zero allocations once it
	// has grown to the steady-state record size.
	m.scratch = rec.encode(m.scratch[:0])
	frame := m.scratch
	if m.bufOff+int64(len(frame)) > m.pm.Size() {
		if err := m.flushLocked(c); err != nil {
			m.mu.Unlock()
			return 0, err
		}
		if m.bufOff+int64(len(frame)) > m.pm.Size() {
			m.mu.Unlock()
			return 0, fmt.Errorf("wal: record of %d bytes exceeds the log buffer", len(frame))
		}
	}
	off := m.bufOff
	// Record bytes persist before the extent word advances past them: a
	// crash mid-append leaves the extent pointing at the last whole record,
	// so a torn record is invisible to recovery and the append is simply
	// unacknowledged. A torn write retries by rewriting the full frame.
	if err := m.retry(c, func() error {
		if err := m.pm.WriteErr(c, off, frame); err != nil {
			return err
		}
		return m.pm.PersistErr(c, off, len(frame))
	}); err != nil {
		m.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	m.bufOff = off + int64(len(frame))
	if err := m.persistOffset(c); err != nil {
		m.bufOff = off // record never became visible
		m.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	needFlush := m.bufOff-bufHeaderSize >= m.threshold
	var err error
	if needFlush {
		err = m.flushLocked(c)
	}
	if m.obs != nil {
		now := c.Now()
		m.hAppend.Observe(now - start)
		out := obs.OutOK
		if err != nil {
			out = obs.OutError
		}
		m.ring.Emit(obs.Event{
			TS: now, Dur: now - start,
			Type: obs.EvWALAppend, From: obs.TierNVM, Outcome: out,
			Page: obs.NoPage, Arg: int64(rec.LSN),
		})
	}
	m.mu.Unlock()
	m.appends.Add(1)
	if rec.Type == RecCommit {
		m.commits.Add(1)
	}
	return rec.LSN, err
}

// Flush forces the NVM buffer's contents onto the SSD log.
func (m *Manager) Flush(c *vclock.Clock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked(c)
}

// flushLocked appends buffer contents to the SSD log and resets the buffer.
// Caller holds mu. On failure the buffer is kept intact, so no record is
// lost: a torn append leaves a partial batch in the file that a later
// successful flush re-appends in full — recovery's resync scan plus LSN
// dedup reconcile the duplicates.
func (m *Manager) flushLocked(c *vclock.Clock) error {
	n := m.bufOff - bufHeaderSize
	if n <= 0 {
		return nil
	}
	var start int64
	if m.obs != nil {
		start = c.Now()
	}
	data := make([]byte, n)
	if err := m.retry(c, func() error { return m.pm.ReadErr(c, bufHeaderSize, data) }); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := m.retry(c, func() error { return m.store.Append(c, data) }); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	old := m.bufOff
	m.bufOff = bufHeaderSize
	if err := m.persistOffset(c); err != nil {
		// The records are in the file AND still visible in the buffer;
		// recovery dedups, and the next flush retries the reset.
		m.bufOff = old
		return fmt.Errorf("wal: flush: %w", err)
	}
	m.flushes.Add(1)
	if m.obs != nil {
		now := c.Now()
		m.hFlush.Observe(now - start)
		m.ring.Emit(obs.Event{
			TS: now, Dur: now - start,
			Type: obs.EvWALFlush, From: obs.TierNVM, To: obs.TierSSD,
			Page: obs.NoPage, Arg: n,
		})
	}
	return nil
}

// Truncate flushes and then discards the SSD log. Call only after a
// checkpoint has made all logged changes durable in place.
func (m *Manager) Truncate(c *vclock.Clock) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old := m.bufOff; old > bufHeaderSize {
		m.bufOff = bufHeaderSize
		if err := m.persistOffset(c); err != nil {
			m.bufOff = old
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	if err := m.retry(c, func() error { return m.store.Truncate(c) }); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return nil
}

// Stats reports append/flush/commit counts.
func (m *Manager) Stats() (appends, flushes, commits int64) {
	return m.appends.Load(), m.flushes.Load(), m.commits.Load()
}
