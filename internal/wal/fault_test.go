package wal

import (
	"encoding/binary"
	"testing"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// TestScanBufferStatsCountsDamage stages a damaged buffer tail — the extent
// word covering a corrupt frame — and checks the scan reports it in the
// recovery stats instead of silently stopping.
func TestScanBufferStatsCountsDamage(t *testing.T) {
	m, pm, _ := newTestManager(t, 1<<14)
	c := vclock.New()
	for txn := uint64(1); txn <= 3; txn++ {
		if _, err := m.Append(c, &Record{Type: RecCommit, TxnID: txn}); err != nil {
			t.Fatal(err)
		}
	}

	// Garbage that decodes as a frame-sized extent with a lying checksum:
	// bodyLen = 60 (>= the record header), body all zeros.
	garbage := make([]byte, 8+60)
	garbage[0] = 60
	off := m.shards[0].bufOff
	pm.Write(c, off, garbage)
	pm.Persist(c, off, len(garbage))
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(off+int64(len(garbage))))
	pm.Write(c, 8, word[:])
	pm.Persist(c, 8, len(word))

	var st RecoveryStats
	recs := ScanBufferStats(c, pm, &st)
	if len(recs) != 3 {
		t.Fatalf("scanned %d records, want 3", len(recs))
	}
	if st.ChecksumMismatches != 1 {
		t.Errorf("ChecksumMismatches = %d, want 1", st.ChecksumMismatches)
	}
	if st.TruncatedTailBytes != len(garbage) {
		t.Errorf("TruncatedTailBytes = %d, want %d", st.TruncatedTailBytes, len(garbage))
	}
	if st.BufferRecords != 3 {
		t.Errorf("BufferRecords = %d, want 3", st.BufferRecords)
	}
}

// TestRecoverAfterCrashTornAppend kills the machine at a randomized write
// inside an Append stream (the crash-point write tears) and checks recovery
// keeps exactly the acknowledged commits: nothing acked is lost, nothing
// unacked materializes.
func TestRecoverAfterCrashTornAppend(t *testing.T) {
	walDev := device.New(device.NVMParams)
	inj := device.NewInjector(device.FaultConfig{Seed: 11})
	sw := device.NewCrashSwitch()
	inj.AttachCrash(sw)
	walDev.SetFaults(inj)
	pm := pmem.New(pmem.Options{Size: 1 << 14, Device: walDev, TrackCrashes: true})
	store := NewMemLog(nil)
	m, err := New(Options{Buffer: pm, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	c := vclock.New()
	sw.Arm(25) // mid-stream: each append is two checked buffer writes
	acked := map[uint64]bool{}
	for txn := uint64(1); txn <= 20; txn++ {
		if _, err := m.Append(c, &Record{Type: RecBegin, TxnID: txn}); err != nil {
			break
		}
		after := make([]byte, 100)
		for i := range after {
			after[i] = byte(txn)
		}
		if _, err := m.Append(c, &Record{Type: RecUpdate, TxnID: txn, PageID: txn, After: after}); err != nil {
			break
		}
		if _, err := m.Append(c, &Record{Type: RecCommit, TxnID: txn}); err != nil {
			break
		}
		acked[txn] = true
	}
	if !sw.Tripped() {
		t.Fatal("crash switch never tripped")
	}
	if len(acked) == 0 {
		t.Fatal("no transaction committed before the crash point")
	}

	pm.Crash() // roll back unpersisted lines
	sw.Arm(0)  // reboot
	inj.Rearm(device.FaultConfig{Seed: 11})

	m2, rl, err := Recover(c, Options{Buffer: pm, Store: store}, newApplierMap())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for txn := range acked {
		if !rl.Committed[txn] {
			t.Errorf("acknowledged commit of txn %d lost", txn)
		}
	}
	for txn := range rl.Committed {
		if !acked[txn] {
			t.Errorf("phantom commit of txn %d (append was never acknowledged)", txn)
		}
	}
	if m2.NextLSN() <= rl.MaxLSN {
		t.Errorf("NextLSN %d not past recovered MaxLSN %d", m2.NextLSN(), rl.MaxLSN)
	}
}

// TestRecoverTornFlushDuplicates tears a flush's SSD append (a partial batch
// lands mid-file), retries it in full, and checks recovery resyncs past the
// damage and dedups the re-appended records — counting what it tolerated.
func TestRecoverTornFlushDuplicates(t *testing.T) {
	logDev := device.New(device.SSDParams)
	inj := device.NewInjector(device.FaultConfig{Seed: 21})
	logDev.SetFaults(inj)
	store := NewMemLog(logDev)
	pm := pmem.New(pmem.Options{Size: 1 << 16, TrackCrashes: true})
	// MaxRetries < 0 disables the manager's own retry so the test controls
	// exactly one torn append followed by one full re-append.
	m, err := New(Options{Buffer: pm, Store: store, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}

	c := vclock.New()
	for txn := uint64(1); txn <= 8; txn++ {
		after := make([]byte, 150)
		for i := range after {
			after[i] = byte(txn * 7)
		}
		if _, err := m.Append(c, &Record{Type: RecBegin, TxnID: txn}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Append(c, &Record{Type: RecUpdate, TxnID: txn, PageID: txn, After: after}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Append(c, &Record{Type: RecCommit, TxnID: txn}); err != nil {
			t.Fatal(err)
		}
	}

	inj.Rearm(device.FaultConfig{Seed: 21, TornWriteProb: 1})
	if err := m.Flush(c); err == nil {
		t.Fatal("torn flush reported success")
	}
	inj.Rearm(device.FaultConfig{Seed: 21})
	if err := m.Flush(c); err != nil {
		t.Fatalf("retried flush: %v", err)
	}

	pm.Crash()
	_, rl, err := Recover(c, Options{Buffer: pm, Store: store}, newApplierMap())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for txn := uint64(1); txn <= 8; txn++ {
		if !rl.Committed[txn] {
			t.Errorf("txn %d lost across the torn flush", txn)
		}
	}
	seen := map[uint64]bool{}
	for _, rec := range rl.Records {
		if seen[rec.LSN] {
			t.Errorf("LSN %d survived twice after dedup", rec.LSN)
		}
		seen[rec.LSN] = true
	}
	st := rl.Stats
	if st.DuplicateLSNs == 0 {
		t.Error("no duplicate LSNs dropped; the torn prefix held no whole record (pick another seed)")
	}
	if st.ChecksumMismatches+st.SkippedBytes+st.TruncatedTailBytes == 0 {
		t.Error("no damage counted; the resync scan saw a clean file")
	}
	t.Logf("stats=%+v", st)
}
