package wal

import (
	"strings"
	"testing"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

func TestRecordTypeStrings(t *testing.T) {
	want := map[RecordType]string{
		RecBegin: "BEGIN", RecUpdate: "UPDATE", RecInsert: "INSERT",
		RecDelete: "DELETE", RecCommit: "COMMIT", RecAbort: "ABORT",
		RecCheckpoint: "CHECKPOINT",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if !strings.Contains(RecordType(99).String(), "99") {
		t.Fatal("unknown record type string unhelpful")
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	tiny := pmem.New(pmem.Options{Size: 128})
	if _, err := New(Options{Buffer: tiny, Store: NewMemLog(nil)}); err == nil {
		t.Fatal("tiny buffer accepted")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	m, _, _ := newTestManager(t, 1<<12+1024+64)
	c := vclock.New()
	huge := &Record{Type: RecUpdate, After: make([]byte, 1<<13)}
	if _, err := m.Append(c, huge); err == nil {
		t.Fatal("record larger than the buffer accepted")
	}
}

func TestExplicitFlushThreshold(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 16})
	store := NewMemLog(nil)
	m, err := New(Options{Buffer: pm, Store: store, FlushThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	c := vclock.New()
	if _, err := m.Append(c, &Record{Type: RecUpdate, After: make([]byte, 300)}); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("explicit threshold did not trigger a flush")
	}
}

func TestScanBufferHandlesGarbage(t *testing.T) {
	// An arena that never held a log yields no records.
	pm := pmem.New(pmem.Options{Size: 1 << 12})
	if recs := ScanBuffer(vclock.New(), pm); recs != nil {
		t.Fatalf("garbage arena scanned %d records", len(recs))
	}
	// Too-small arenas are rejected gracefully.
	small := pmem.New(pmem.Options{Size: 8})
	if recs := ScanBuffer(vclock.New(), small); recs != nil {
		t.Fatal("undersized arena produced records")
	}
}

func TestRecoverOnEmptyLog(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 14, TrackCrashes: true})
	store := NewMemLog(nil)
	if _, err := New(Options{Buffer: pm, Store: store}); err != nil {
		t.Fatal(err)
	}
	pm.Crash()
	m, rl, err := Recover(vclock.New(), Options{Buffer: pm, Store: store}, newApplierMap())
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Records) != 0 || len(rl.Losers) != 0 {
		t.Fatalf("empty log recovered %d records, %d losers", len(rl.Records), len(rl.Losers))
	}
	if m.NextLSN() != 1 {
		t.Fatalf("fresh manager NextLSN = %d", m.NextLSN())
	}
}

func TestStatsCounters(t *testing.T) {
	m, _, _ := newTestManager(t, 1<<16)
	c := vclock.New()
	m.Append(c, &Record{Type: RecBegin, TxnID: 1})
	m.Append(c, &Record{Type: RecCommit, TxnID: 1})
	m.Flush(c)
	appends, flushes, commits := m.Stats()
	if appends != 2 || commits != 1 || flushes == 0 {
		t.Fatalf("stats = %d appends, %d flushes, %d commits", appends, flushes, commits)
	}
}
