package wal

import (
	"bytes"
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

func newTestManager(t *testing.T, bufSize int64) (*Manager, *pmem.PMem, *MemLog) {
	t.Helper()
	pm := pmem.New(pmem.Options{Size: bufSize, TrackCrashes: true})
	store := NewMemLog(nil)
	m, err := New(Options{Buffer: pm, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return m, pm, store
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := Record{
		LSN: 42, TxnID: 7, PrevLSN: 40, Type: RecUpdate,
		TableID: 3, PageID: 99, Slot: 12,
		Before: []byte("old-bytes"), After: []byte("new-bytes!"),
	}
	frame := rec.encode(nil)
	got, n, status := decodeOne(frame)
	if status != decodeOK || n != len(frame) {
		t.Fatalf("decode failed: status=%d n=%d len=%d", status, n, len(frame))
	}
	if got.LSN != rec.LSN || got.TxnID != rec.TxnID || got.PrevLSN != rec.PrevLSN ||
		got.Type != rec.Type || got.TableID != rec.TableID || got.PageID != rec.PageID ||
		got.Slot != rec.Slot || !bytes.Equal(got.Before, rec.Before) || !bytes.Equal(got.After, rec.After) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rec := Record{LSN: 1, Type: RecCommit}
	frame := rec.encode(nil)
	frame[10] ^= 0xFF
	if _, _, status := decodeOne(frame); status != decodeCorrupt {
		t.Fatalf("corrupted frame: status=%d, want decodeCorrupt", status)
	}
	if _, _, status := decodeOne(frame[:4]); status != decodeShort {
		t.Fatalf("short frame: status=%d, want decodeShort", status)
	}
	if _, _, status := decodeOne(make([]byte, 64)); status != decodeShort {
		t.Fatalf("zero frame: status=%d, want decodeShort", status)
	}
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	m, _, _ := newTestManager(t, 1<<16)
	c := vclock.New()
	var last uint64
	for i := 0; i < 100; i++ {
		lsn, err := m.Append(c, &Record{TxnID: 1, Type: RecUpdate, After: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= last {
			t.Fatalf("LSN %d not greater than %d", lsn, last)
		}
		last = lsn
	}
}

func TestThresholdFlushMovesRecordsToSSD(t *testing.T) {
	m, _, store := newTestManager(t, 1<<14)
	c := vclock.New()
	payload := make([]byte, 512)
	for i := 0; i < 32; i++ {
		if _, err := m.Append(c, &Record{TxnID: 1, Type: RecUpdate, After: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() == 0 {
		t.Fatal("threshold never flushed the buffer to SSD")
	}
	if _, flushes, _ := m.Stats(); flushes == 0 {
		t.Fatal("no flushes counted")
	}
}

func TestScanBufferFindsPersistedTail(t *testing.T) {
	m, pm, _ := newTestManager(t, 1<<16)
	c := vclock.New()
	for i := 0; i < 5; i++ {
		if _, err := m.Append(c, &Record{TxnID: 9, Type: RecUpdate, After: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	pm.Crash() // appends were persisted; the tail must survive
	recs := ScanBuffer(c, pm)
	if len(recs) != 5 {
		t.Fatalf("scan found %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.After[0] != byte(i) {
			t.Fatalf("record %d has payload %d", i, r.After[0])
		}
	}
}

func TestConcurrentAppends(t *testing.T) {
	m, _, store := newTestManager(t, 1<<18)
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vclock.New()
			for i := 0; i < each; i++ {
				if _, err := m.Append(c, &Record{TxnID: uint64(w), Type: RecUpdate, After: []byte{byte(w)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c := vclock.New()
	if err := m.Flush(c); err != nil {
		t.Fatal(err)
	}
	raw, err := store.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	n := 0
	for len(raw) > 0 {
		rec, sz, status := decodeOne(raw)
		if status != decodeOK {
			t.Fatal("log contains a torn record")
		}
		if seen[rec.LSN] {
			t.Fatalf("duplicate LSN %d", rec.LSN)
		}
		seen[rec.LSN] = true
		raw = raw[sz:]
		n++
	}
	if n != workers*each {
		t.Fatalf("log holds %d records, want %d", n, workers*each)
	}
}

// applierMap applies redo/undo to an in-memory "database" of slot values,
// with per-slot LSNs for idempotence.
type applierMap struct {
	vals map[uint64][]byte
	lsns map[uint64]uint64
}

func newApplierMap() *applierMap {
	return &applierMap{vals: map[uint64][]byte{}, lsns: map[uint64]uint64{}}
}

func (a *applierMap) key(rec *Record) uint64 { return rec.PageID<<16 | uint64(rec.Slot) }

func (a *applierMap) ApplyRedo(c *vclock.Clock, rec *Record) error {
	k := a.key(rec)
	if a.lsns[k] >= rec.LSN {
		return nil
	}
	a.vals[k] = append([]byte(nil), rec.After...)
	a.lsns[k] = rec.LSN
	return nil
}

func (a *applierMap) ApplyUndo(c *vclock.Clock, rec *Record) error {
	k := a.key(rec)
	a.vals[k] = append([]byte(nil), rec.Before...)
	return nil
}

func TestRecoverRedoesCommittedAndUndoesLosers(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 16, TrackCrashes: true})
	store := NewMemLog(nil)
	m, err := New(Options{Buffer: pm, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	c := vclock.New()

	// Txn 1 commits an update; txn 2 updates but never commits.
	appendAll := func(recs ...*Record) {
		for _, r := range recs {
			if _, err := m.Append(c, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendAll(
		&Record{TxnID: 1, Type: RecBegin},
		&Record{TxnID: 1, Type: RecUpdate, PageID: 10, Slot: 1, Before: []byte("A0"), After: []byte("A1")},
		&Record{TxnID: 1, Type: RecCommit},
		&Record{TxnID: 2, Type: RecBegin},
		&Record{TxnID: 2, Type: RecUpdate, PageID: 10, Slot: 2, Before: []byte("B0"), After: []byte("B1")},
	)

	pm.Crash()

	app := newApplierMap()
	// Simulate the crash-time page state: both updates had been applied.
	app.vals[10<<16|1] = []byte("A1")
	app.vals[10<<16|2] = []byte("B1")

	m2, rl, err := Recover(c, Options{Buffer: pm, Store: store}, app)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Committed[1] {
		t.Fatal("txn 1 not recognized as committed")
	}
	if !rl.Losers[2] {
		t.Fatal("txn 2 not recognized as a loser")
	}
	if got := string(app.vals[10<<16|1]); got != "A1" {
		t.Fatalf("committed value = %q, want A1", got)
	}
	if got := string(app.vals[10<<16|2]); got != "B0" {
		t.Fatalf("loser value = %q, want rolled back to B0", got)
	}
	// The new manager resumes past the recovered LSNs.
	if m2.NextLSN() <= rl.MaxLSN {
		t.Fatalf("NextLSN %d not past recovered max %d", m2.NextLSN(), rl.MaxLSN)
	}
}

func TestRecoverSkipsRolledBackTransactions(t *testing.T) {
	pm := pmem.New(pmem.Options{Size: 1 << 16, TrackCrashes: true})
	store := NewMemLog(nil)
	m, _ := New(Options{Buffer: pm, Store: store})
	c := vclock.New()
	// Txn 3 updated and aborted (rollback already applied in place).
	for _, r := range []*Record{
		{TxnID: 3, Type: RecBegin},
		{TxnID: 3, Type: RecUpdate, PageID: 5, Slot: 0, Before: []byte("X0"), After: []byte("X1")},
		{TxnID: 3, Type: RecAbort},
	} {
		if _, err := m.Append(c, r); err != nil {
			t.Fatal(err)
		}
	}
	pm.Crash()
	app := newApplierMap()
	app.vals[5<<16|0] = []byte("X0") // rollback happened before the crash
	_, rl, err := Recover(c, Options{Buffer: pm, Store: store}, app)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Aborted[3] || rl.Losers[3] {
		t.Fatalf("txn 3 misclassified: %+v", rl)
	}
	if got := string(app.vals[5<<16|0]); got != "X0" {
		t.Fatalf("aborted txn's update redone: %q", got)
	}
}

func TestTruncate(t *testing.T) {
	m, _, store := newTestManager(t, 1<<16)
	c := vclock.New()
	if _, err := m.Append(c, &Record{TxnID: 1, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(c); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("flush wrote nothing")
	}
	if err := m.Truncate(c); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("truncate left data")
	}
	raw, _ := store.ReadAll(c)
	if len(raw) != 0 {
		t.Fatal("ReadAll after truncate returned data")
	}
}

func TestCommitDurability(t *testing.T) {
	// The core durability property: a commit record persisted in the NVM
	// buffer survives a crash even though it never reached SSD.
	m, pm, store := newTestManager(t, 1<<16)
	c := vclock.New()
	if _, err := m.Append(c, &Record{TxnID: 77, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(c, &Record{TxnID: 77, Type: RecUpdate, PageID: 1, Before: []byte("a"), After: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(c, &Record{TxnID: 77, Type: RecCommit}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Skip("buffer flushed early; durability path not exercised")
	}
	pm.Crash()
	app := newApplierMap()
	_, rl, err := Recover(c, Options{Buffer: pm, Store: store}, app)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Committed[77] {
		t.Fatal("commit persisted only in the NVM buffer was lost")
	}
	if got := string(app.vals[1<<16|0]); got != "b" {
		t.Fatalf("committed after-image not redone: %q", got)
	}
}
