package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeOne: arbitrary bytes must never panic the record decoder, and
// any frame it accepts must re-encode to the same bytes.
func FuzzDecodeOne(f *testing.F) {
	rec := Record{LSN: 3, TxnID: 9, Type: RecUpdate, PageID: 4, Slot: 2,
		Before: []byte("b"), After: []byte("a")}
	f.Add(rec.encode(nil))
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, n, status := decodeOne(data)
		if status != decodeOK {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		round := got.encode(nil)
		if !bytes.Equal(round, data[:n]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
