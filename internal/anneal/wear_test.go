package anneal

import (
	"math"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

func TestWearAwareCostDefaults(t *testing.T) {
	c := WearAwareCost{}
	// λ = 0 recovers the paper's costT = γ/T with γ = 10.
	if got := c.Cost(1000, 1e9); got != 10.0/1000 {
		t.Fatalf("Cost = %v, want %v", got, 10.0/1000)
	}
	if got := c.Cost(0, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero throughput cost = %v", got)
	}
}

func TestWearPenaltyOrdersPolicies(t *testing.T) {
	// Two candidates: fast-but-wearing vs slower-but-gentle. With λ = 0
	// the fast one wins; with a large λ the gentle one wins.
	fast := struct{ t, w float64 }{1_000_000, 500e6} // 500 B/op
	gentle := struct{ t, w float64 }{800_000, 8e6}   // 10 B/op

	plain := WearAwareCost{}
	if plain.Cost(fast.t, fast.w) >= plain.Cost(gentle.t, gentle.w) {
		t.Fatal("λ=0 should prefer the faster policy")
	}
	weary := WearAwareCost{Lambda: 1}
	if weary.Cost(fast.t, fast.w) <= weary.Cost(gentle.t, gentle.w) {
		t.Fatal("large λ should prefer the gentler policy")
	}
}

// A synthetic landscape where the highest-throughput policy also writes
// the most to NVM: the wear-aware tuner must settle elsewhere.
func TestObserveWearConvergesAwayFromWearyOptimum(t *testing.T) {
	model := func(p policy.Policy) (tput, writeRate float64) {
		// Eager N maximizes throughput but writes heavily.
		tput = 500_000 + 500_000*p.Nr
		writeRate = 1e6 + 2e9*p.Nr
		return tput, writeRate
	}
	run := func(lambda float64) policy.Policy {
		tn := New(Options{Initial: policy.Uniform(0.5), Seed: 4, LockstepD: true, LockstepN: true})
		cost := WearAwareCost{Lambda: lambda}
		p := tn.Propose()
		for i := 0; i < 300; i++ {
			tput, wr := model(p)
			p = tn.ObserveWear(cost, tput, wr)
		}
		return tn.Best()
	}
	plain := run(0)
	weary := run(0.001)
	if plain.Nr < 0.5 {
		t.Fatalf("λ=0 best policy %v should chase throughput (high Nr)", plain)
	}
	if weary.Nr > plain.Nr {
		t.Fatalf("wear-aware best %v is not gentler than plain %v", weary, plain)
	}
	if weary.Nr > 0.1 {
		t.Fatalf("wear-aware tuner stayed at Nr=%v despite heavy write penalty", weary.Nr)
	}
}
