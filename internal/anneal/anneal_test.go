package anneal

import (
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

// syntheticCost is a made-up workload response: throughput peaks at the
// lazy corner (D = 0.01, N = 0.2), mimicking the paper's YCSB-RO result.
func syntheticThroughput(p policy.Policy) float64 {
	base := 1_000_000.0
	penalty := 0.0
	penalty += 400_000 * abs(p.Dr-0.01)
	penalty += 400_000 * abs(p.Dw-0.01)
	penalty += 200_000 * abs(p.Nr-0.2)
	penalty += 100_000 * abs(p.Nw-1.0)
	return base - penalty
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestConvergesTowardOptimum(t *testing.T) {
	tn := New(Options{Initial: policy.SpitfireEager, Seed: 42})
	p := tn.Propose()
	for i := 0; i < 400; i++ {
		p = tn.Observe(syntheticThroughput(p))
	}
	best := tn.Best()
	gotT := syntheticThroughput(best)
	eagerT := syntheticThroughput(policy.SpitfireEager)
	if gotT <= eagerT {
		t.Fatalf("annealing did not improve: best %v -> %v, eager -> %v", best, gotT, eagerT)
	}
	// Must land near the lazy corner for D.
	if best.Dr > 0.1 || best.Dw > 0.1 {
		t.Fatalf("best policy %v far from the lazy-D optimum", best)
	}
}

func TestTemperatureCools(t *testing.T) {
	tn := New(Options{Initial: policy.SpitfireEager, Seed: 1})
	t0 := tn.Temperature()
	p := tn.Propose()
	for i := 0; i < 50; i++ {
		p = tn.Observe(syntheticThroughput(p))
	}
	if tn.Temperature() >= t0 {
		t.Fatalf("temperature did not cool: %v -> %v", t0, tn.Temperature())
	}
	// Cooling is floored at TMin.
	for i := 0; i < 1000; i++ {
		p = tn.Observe(syntheticThroughput(p))
	}
	if tn.Temperature() < 0.00008 {
		t.Fatalf("temperature fell below TMin: %v", tn.Temperature())
	}
	if tn.Epochs() != 1050 {
		t.Fatalf("epochs = %d, want 1050", tn.Epochs())
	}
}

func TestNeighborsStayOnLadder(t *testing.T) {
	tn := New(Options{Initial: policy.SpitfireLazy, Seed: 7})
	onLadder := func(v float64) bool {
		for _, r := range policy.Ladder {
			if v == r {
				return true
			}
		}
		return false
	}
	p := tn.Propose()
	for i := 0; i < 200; i++ {
		p = tn.Observe(1000)
		// The initial policy may be off-ladder (0.01 and 0.2 are rungs,
		// so SpitfireLazy is on it); all neighbors must be rungs.
		for _, v := range []float64{p.Dr, p.Dw, p.Nr, p.Nw} {
			if !onLadder(v) {
				t.Fatalf("epoch %d produced off-ladder policy %v", i, p)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLockstepKeepsPairsEqual(t *testing.T) {
	tn := New(Options{Initial: policy.Uniform(1), Seed: 9, LockstepD: true, LockstepN: true})
	p := tn.Propose()
	for i := 0; i < 100; i++ {
		p = tn.Observe(1000)
		if p.Dr != p.Dw {
			t.Fatalf("lockstep D violated: %v", p)
		}
		if p.Nr != p.Nw {
			t.Fatalf("lockstep N violated: %v", p)
		}
	}
}

func TestZeroThroughputNeverAdopted(t *testing.T) {
	tn := New(Options{Initial: policy.SpitfireEager, Seed: 3})
	tn.Observe(1000) // incumbent established
	incumbent := tn.Current()
	for i := 0; i < 20; i++ {
		tn.Observe(0) // dead candidate
		if tn.Current() != incumbent {
			// The incumbent may only change to a finite-cost policy.
			t.Fatalf("zero-throughput candidate adopted: %v", tn.Current())
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() []policy.Policy {
		tn := New(Options{Initial: policy.SpitfireEager, Seed: 11})
		p := tn.Propose()
		var seq []policy.Policy
		for i := 0; i < 50; i++ {
			p = tn.Observe(syntheticThroughput(p))
			seq = append(seq, p)
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}
