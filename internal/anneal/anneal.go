// Package anneal implements Spitfire's adaptive data-migration mechanism
// (§4 of the paper): a simulated-annealing search over the policy space
// ⟨Dr, Dw, Nr, Nw⟩ that converges to a near-optimal policy for an arbitrary
// workload and storage hierarchy without manual tuning.
//
// The tuner tracks one target metric — transactional throughput T — per
// epoch and minimizes the cost function cost(P) = γ/T. Candidate policies
// are produced by moving one probability to an adjacent rung of the
// discrete ladder {0, 0.01, 0.05, 0.1, 0.2, 0.5, 1}. A worse candidate is
// still accepted with probability exp(−Δcost/t); the temperature t cools
// geometrically (t ← α·t) from T0 toward Tmin, so exploration gives way to
// exploitation exactly as in Kirkpatrick et al.'s original scheme.
package anneal

import (
	"math"

	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/zipf"
)

// Options configures a Tuner. The defaults mirror §6.4 of the paper:
// α = 0.9, γ = 10, T0 = 800, Tmin = 0.00008.
type Options struct {
	Initial policy.Policy // starting policy (the paper starts eager)
	Alpha   float64       // cooling rate α ∈ (0, 1)
	Gamma   float64       // cost scale γ: cost = γ/throughput
	T0      float64       // initial temperature
	TMin    float64       // final temperature; cooling stops here
	// LockstepD couples Dr and Dw (and LockstepN couples Nr and Nw) so the
	// tuner explores the same reduced space as the paper's sweeps. Both
	// default to false (full four-dimensional search).
	LockstepD bool
	LockstepN bool
	Seed      uint64

	// OnEpoch, when non-nil, is invoked once per Observe call with the
	// outcome of that annealing step. The observability layer uses it to
	// trace the policy search (EvPolicyStep events) without coupling this
	// package to the tracer.
	OnEpoch func(EpochStep)
}

// EpochStep describes one completed annealing epoch for observers.
type EpochStep struct {
	Epoch       int           // 1-based epoch count
	Proposed    policy.Policy // policy whose throughput was measured
	Throughput  float64       // measured target metric
	Cost        float64       // γ/throughput
	Accepted    bool          // whether Proposed became the incumbent
	Current     policy.Policy // incumbent after the acceptance decision
	Best        policy.Policy // lowest-cost policy so far
	Temperature float64       // temperature after cooling
	Next        policy.Policy // candidate proposed for the next epoch
}

// Tuner drives one simulated-annealing search. It is not safe for
// concurrent use; drive it from the coordinator between epochs.
type Tuner struct {
	opt  Options
	rng  *zipf.Rand
	temp float64

	current     policy.Policy
	currentCost float64
	best        policy.Policy
	bestCost    float64

	candidate policy.Policy
	epochs    int
	haveCost  bool
}

// New creates a tuner. The first call to Propose returns the initial policy
// so its cost can be measured before any perturbation.
func New(opt Options) *Tuner {
	if opt.Alpha == 0 {
		opt.Alpha = 0.9
	}
	if opt.Gamma == 0 {
		opt.Gamma = 10
	}
	if opt.T0 == 0 {
		opt.T0 = 800
	}
	if opt.TMin == 0 {
		opt.TMin = 0.00008
	}
	return &Tuner{
		opt:       opt,
		rng:       zipf.NewRand(opt.Seed + 0xA11EA1),
		temp:      opt.T0,
		current:   opt.Initial,
		candidate: opt.Initial,
		bestCost:  math.Inf(1),
	}
}

// Temperature returns the current annealing temperature.
func (t *Tuner) Temperature() float64 { return t.temp }

// Epochs returns how many Observe calls have completed.
func (t *Tuner) Epochs() int { return t.epochs }

// Best returns the lowest-cost policy observed so far.
func (t *Tuner) Best() policy.Policy { return t.best }

// Current returns the policy the search currently sits on.
func (t *Tuner) Current() policy.Policy { return t.current }

// Propose returns the policy to run for the next epoch.
func (t *Tuner) Propose() policy.Policy { return t.candidate }

// Observe feeds back the throughput measured while running the proposed
// policy, applies the Metropolis acceptance rule, cools the temperature,
// and computes the next candidate. It returns the policy to run next.
func (t *Tuner) Observe(throughput float64) policy.Policy {
	t.epochs++
	cost := math.Inf(1)
	if throughput > 0 {
		cost = t.opt.Gamma / throughput
	}

	measured := t.candidate
	accepted := false
	if !t.haveCost {
		// First measurement: the initial policy becomes the incumbent.
		t.haveCost = true
		t.current, t.currentCost = t.candidate, cost
		accepted = true
	} else if t.accept(cost) {
		t.current, t.currentCost = t.candidate, cost
		accepted = true
	}
	if cost < t.bestCost {
		t.best, t.bestCost = t.candidate, cost
	}

	if t.temp > t.opt.TMin {
		t.temp *= t.opt.Alpha
		if t.temp < t.opt.TMin {
			t.temp = t.opt.TMin
		}
	}

	t.candidate = t.neighbor(t.current)
	if t.opt.OnEpoch != nil {
		t.opt.OnEpoch(EpochStep{
			Epoch: t.epochs, Proposed: measured,
			Throughput: throughput, Cost: cost, Accepted: accepted,
			Current: t.current, Best: t.best,
			Temperature: t.temp, Next: t.candidate,
		})
	}
	return t.candidate
}

// accept applies the Metropolis criterion at the current temperature.
func (t *Tuner) accept(cost float64) bool {
	if cost <= t.currentCost {
		return true
	}
	if math.IsInf(cost, 1) {
		return false
	}
	// Costs are tiny (γ/T with T in the hundreds of thousands); scale the
	// delta by the incumbent cost so the temperature schedule is
	// magnitude-independent.
	delta := (cost - t.currentCost) / math.Max(t.currentCost, 1e-12)
	return t.rng.Float64() < math.Exp(-delta*1000/math.Max(t.temp, 1e-12))
}

// neighbor perturbs one coordinate of p to an adjacent ladder rung.
func (t *Tuner) neighbor(p policy.Policy) policy.Policy {
	coords := 4
	if t.opt.LockstepD {
		coords--
	}
	if t.opt.LockstepN {
		coords--
	}
	which := t.rng.Intn(coords)
	// Map the chosen index onto the active coordinates.
	type coord int
	var active []coord
	if t.opt.LockstepD {
		active = append(active, 0) // D (r+w together)
	} else {
		active = append(active, 1, 2) // Dr, Dw
	}
	if t.opt.LockstepN {
		active = append(active, 3) // N (r+w together)
	} else {
		active = append(active, 4, 5) // Nr, Nw
	}
	c := active[which]

	step := func(v float64) float64 {
		i := policy.LadderIndex(v)
		if t.rng.Intn(2) == 0 {
			if i > 0 {
				i--
			} else {
				i++
			}
		} else {
			if i < len(policy.Ladder)-1 {
				i++
			} else {
				i--
			}
		}
		return policy.Ladder[i]
	}

	q := p
	switch c {
	case 0:
		v := step(p.Dr)
		q.Dr, q.Dw = v, v
	case 1:
		q.Dr = step(p.Dr)
	case 2:
		q.Dw = step(p.Dw)
	case 3:
		v := step(p.Nr)
		q.Nr, q.Nw = v, v
	case 4:
		q.Nr = step(p.Nr)
	case 5:
		q.Nw = step(p.Nw)
	}
	return q
}
