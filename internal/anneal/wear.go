package anneal

import (
	"math"

	"github.com/spitfire-db/spitfire/internal/policy"
)

// WearAwareCost extends the paper's throughput-only cost function (§4) to
// the endurance-aware policy selection its §6.3 calls for: "the optimal
// policy must be chosen depending on the performance requirements and
// write endurance characteristics of NVM."
//
// The cost of a candidate policy combines the reciprocal of throughput
// with a penalty proportional to the NVM write rate:
//
//	cost(P) = γ/T + λ · W/T
//
// where T is throughput (ops/s) and W the NVM write volume per second of
// the same epoch, so W/T is bytes written to NVM per operation. λ = 0
// recovers the paper's costT exactly; larger λ trades throughput for
// device lifetime (the Figure 8 trade-off, automated).
type WearAwareCost struct {
	// Gamma scales the throughput term (the paper's γ, default 10).
	Gamma float64
	// Lambda prices NVM wear in cost units per byte-per-op (default 0).
	Lambda float64
}

// Cost evaluates a measured epoch.
func (w WearAwareCost) Cost(throughput, nvmBytesPerSec float64) float64 {
	if throughput <= 0 {
		return math.Inf(1)
	}
	g := w.Gamma
	if g == 0 {
		g = 10
	}
	return g/throughput + w.Lambda*(nvmBytesPerSec/throughput)
}

// ObserveWear feeds a wear-aware measurement into the tuner: it converts
// the (throughput, write-rate) pair into a synthetic throughput whose
// reciprocal equals the wear-aware cost, then delegates to Observe. This
// keeps the annealing mechanics identical while changing what "better"
// means. It returns the next candidate policy to run.
func (t *Tuner) ObserveWear(cost WearAwareCost, throughput, nvmBytesPerSec float64) policy.Policy {
	c := cost.Cost(throughput, nvmBytesPerSec)
	if math.IsInf(c, 1) || c <= 0 {
		return t.Observe(0)
	}
	// Observe computes cost = γ/T with the tuner's gamma; feed a synthetic
	// throughput T' = γ/c so the resulting cost equals c.
	return t.Observe(t.opt.Gamma / c)
}
