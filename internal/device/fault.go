package device

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/zipf"
)

// Fault classes. Every injected error wraps exactly one of these sentinels,
// so consumers classify with errors.Is and never string-match.
var (
	// ErrTransient marks a fault that may succeed on retry (a flaky read,
	// a failed write, a torn write whose payload can be rewritten).
	ErrTransient = errors.New("transient I/O fault (injected)")
	// ErrPermanent marks a device that has failed for good; retrying is
	// useless and the tier should be taken out of the hierarchy.
	ErrPermanent = errors.New("permanent device failure (injected)")
	// ErrCrashed marks operations refused because the simulated machine
	// crashed: a CrashSwitch tripped and all subsequent I/O on attached
	// devices fails until the harness "reboots" (rearms the injectors).
	ErrCrashed = errors.New("machine crashed (injected)")
	// ErrTorn marks a write of which only a prefix reached media.
	ErrTorn = errors.New("torn write (injected)")
)

// TornError reports an injected torn write: only the leading Frac of the
// payload reached media before the fault hit. It matches both ErrTorn and
// ErrTransient under errors.Is — a torn write can be retried in full unless
// the tear came from a machine crash (in which case the operation that
// follows it fails with ErrCrashed anyway).
type TornError struct {
	Frac float64 // fraction of the payload that reached media, in [0,1)
}

func (e *TornError) Error() string {
	return fmt.Sprintf("torn write: %.0f%% of payload reached media (injected)", e.Frac*100)
}

// Is lets errors.Is(err, ErrTorn) and errors.Is(err, ErrTransient) both hold.
func (e *TornError) Is(target error) bool {
	return target == ErrTorn || target == ErrTransient
}

// IsTorn extracts the torn fraction from an error chain.
func IsTorn(err error) (frac float64, ok bool) {
	var te *TornError
	if errors.As(err, &te) {
		return te.Frac, true
	}
	return 0, false
}

// CrashSwitch models a whole-machine crash point shared by every injector of
// a simulated host. Arm it with a write countdown; the Nth checked write
// anywhere on the machine tears (a prefix reaches media as power dies) and
// trips the switch, after which every checked operation on attached devices
// returns ErrCrashed until the switch is rearmed. Torture harnesses use this
// to kill the manager at a randomized I/O boundary, then roll volatile state
// back and drive recovery.
type CrashSwitch struct {
	remaining atomic.Int64
	armed     atomic.Bool
	tripped   atomic.Bool
}

// NewCrashSwitch returns a disarmed, untripped switch.
func NewCrashSwitch() *CrashSwitch { return &CrashSwitch{} }

// Arm schedules the crash afterWrites checked writes from now and clears any
// previous trip. afterWrites <= 0 leaves the switch disarmed (but still
// clears the trip), which is how a harness "reboots" the machine.
func (s *CrashSwitch) Arm(afterWrites int64) {
	s.tripped.Store(false)
	s.remaining.Store(afterWrites)
	s.armed.Store(afterWrites > 0)
}

// Trip crashes the machine immediately.
func (s *CrashSwitch) Trip() { s.armed.Store(false); s.tripped.Store(true) }

// Tripped reports whether the machine has crashed.
func (s *CrashSwitch) Tripped() bool { return s.tripped.Load() }

// countdown decrements the write budget and reports whether this write is
// the crash point. Exactly one writer observes true per arming.
func (s *CrashSwitch) countdown() bool {
	if !s.armed.Load() {
		return false
	}
	if s.remaining.Add(-1) == 0 {
		s.armed.Store(false)
		return true
	}
	return false
}

// FaultConfig describes the fault mix an Injector draws from. The zero value
// injects nothing. All probabilities are per checked operation.
type FaultConfig struct {
	// Seed makes the fault sequence deterministic for a given op order.
	Seed uint64

	// ReadErrProb / WriteErrProb inject transient errors.
	ReadErrProb  float64
	WriteErrProb float64

	// TornWriteProb injects torn writes outside crash points: the write
	// fails with a TornError after a random prefix reached media.
	TornWriteProb float64

	// StallProb charges StallNs extra simulated nanoseconds to the calling
	// worker's virtual clock (a latency spike) before the operation runs.
	StallProb float64
	StallNs   int64

	// FailAfterReads / FailAfterWrites fail the device permanently once it
	// has served that many checked reads/writes. Zero means never.
	FailAfterReads  int64
	FailAfterWrites int64
}

// FaultStats counts what an injector actually did.
type FaultStats struct {
	Reads, Writes           int64 // checked operations seen
	ReadErrors, WriteErrors int64 // transient errors injected
	TornWrites              int64
	Stalls                  int64
	Failed                  bool // permanent failure reached
	Crashed                 bool // attached crash switch tripped
}

// Injector is a seeded-deterministic fault source for one device. Attach it
// with Device.SetFaults; only the checked ReadErr/WriteErr entry points
// consult it, so legacy Read/Write call sites are unaffected.
type Injector struct {
	mu  sync.Mutex
	cfg FaultConfig
	rng *zipf.Rand

	reads  atomic.Int64
	writes atomic.Int64
	failed atomic.Bool
	crash  *CrashSwitch // optional, shared machine-wide

	injReadErrs  atomic.Int64
	injWriteErrs atomic.Int64
	injTorn      atomic.Int64
	injStalls    atomic.Int64
}

// NewInjector creates an injector with the given fault mix.
func NewInjector(cfg FaultConfig) *Injector {
	return &Injector{cfg: cfg, rng: zipf.NewRand(cfg.Seed | 1)}
}

// AttachCrash shares a machine-wide crash switch with this injector. Call
// before concurrent use.
func (in *Injector) AttachCrash(s *CrashSwitch) { in.crash = s }

// Rearm swaps in a new fault mix, clears the permanent-failure latch and op
// counters, and reseeds the fault sequence. Harnesses call it between
// crash-recover cycles. The attached crash switch is kept (rearm it
// separately via CrashSwitch.Arm).
func (in *Injector) Rearm(cfg FaultConfig) {
	in.mu.Lock()
	in.cfg = cfg
	in.rng = zipf.NewRand(cfg.Seed | 1)
	in.mu.Unlock()
	in.failed.Store(false)
	in.reads.Store(0)
	in.writes.Store(0)
}

// FailNow latches the device permanently failed.
func (in *Injector) FailNow() { in.failed.Store(true) }

// Failed reports whether the device is permanently failed.
func (in *Injector) Failed() bool { return in.failed.Load() }

// Crashed reports whether the attached crash switch (if any) has tripped.
func (in *Injector) Crashed() bool { return in.crash != nil && in.crash.Tripped() }

// Stats snapshots the injector's counters.
func (in *Injector) Stats() FaultStats {
	return FaultStats{
		Reads:       in.reads.Load(),
		Writes:      in.writes.Load(),
		ReadErrors:  in.injReadErrs.Load(),
		WriteErrors: in.injWriteErrs.Load(),
		TornWrites:  in.injTorn.Load(),
		Stalls:      in.injStalls.Load(),
		Failed:      in.failed.Load(),
		Crashed:     in.Crashed(),
	}
}

// clockAdvancer is the subset of vclock.Clock the injector needs to charge
// latency spikes (an interface so this file has no vclock import).
type clockAdvancer interface{ Advance(ns int64) }

// draw rolls the stall, error and torn-write dice under the injector's lock
// so the fault sequence is deterministic for a deterministic op order.
func (in *Injector) draw(isWrite bool) (stallNs int64, errHit, tornHit bool, tornFrac float64) {
	in.mu.Lock()
	cfg := in.cfg
	if cfg.StallProb > 0 && in.rng.Float64() < cfg.StallProb {
		stallNs = cfg.StallNs
	}
	errProb := cfg.ReadErrProb
	if isWrite {
		errProb = cfg.WriteErrProb
	}
	if errProb > 0 && in.rng.Float64() < errProb {
		errHit = true
	} else if isWrite && cfg.TornWriteProb > 0 && in.rng.Float64() < cfg.TornWriteProb {
		tornHit = true
		tornFrac = in.rng.Float64()
	}
	in.mu.Unlock()
	return
}

// tornFracDraw draws a crash-point tear fraction.
func (in *Injector) tornFracDraw() float64 {
	in.mu.Lock()
	f := in.rng.Float64()
	in.mu.Unlock()
	return f
}

func (in *Injector) failAfter(isWrite bool) int64 {
	in.mu.Lock()
	n := in.cfg.FailAfterReads
	if isWrite {
		n = in.cfg.FailAfterWrites
	}
	in.mu.Unlock()
	return n
}

// beforeRead decides the fate of one checked read, charging any injected
// stall to the caller's clock. A non-nil result fails the read.
func (in *Injector) beforeRead(c clockAdvancer) error {
	if in.Crashed() {
		return ErrCrashed
	}
	if in.failed.Load() {
		return ErrPermanent
	}
	n := in.reads.Add(1)
	if fa := in.failAfter(false); fa > 0 && n > fa {
		in.failed.Store(true)
		return ErrPermanent
	}
	stall, errHit, _, _ := in.draw(false)
	if stall > 0 {
		in.injStalls.Add(1)
		if c != nil {
			c.Advance(stall)
		}
	}
	if errHit {
		in.injReadErrs.Add(1)
		return ErrTransient
	}
	return nil
}

// beforeWrite decides the fate of one checked write.
func (in *Injector) beforeWrite(c clockAdvancer) error {
	if in.Crashed() {
		return ErrCrashed
	}
	if in.failed.Load() {
		return ErrPermanent
	}
	n := in.writes.Add(1)
	if fa := in.failAfter(true); fa > 0 && n > fa {
		in.failed.Store(true)
		return ErrPermanent
	}
	if in.crash != nil && in.crash.countdown() {
		// The crash-point write tears: a random prefix reaches media as
		// the machine dies; everything after it sees ErrCrashed.
		frac := in.tornFracDraw()
		in.crash.Trip()
		in.injTorn.Add(1)
		return &TornError{Frac: frac}
	}
	stall, errHit, tornHit, frac := in.draw(true)
	if stall > 0 {
		in.injStalls.Add(1)
		if c != nil {
			c.Advance(stall)
		}
	}
	if errHit {
		in.injWriteErrs.Add(1)
		return ErrTransient
	}
	if tornHit {
		in.injTorn.Add(1)
		return &TornError{Frac: frac}
	}
	return nil
}
