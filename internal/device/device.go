// Package device simulates the three storage devices of Spitfire's
// hierarchy — DRAM, Optane DC PMM (NVM), and an Optane SSD — using the
// characteristics reported in Table 1 of the paper.
//
// A Device charges simulated time to per-worker virtual clocks. Each access
// pays a fixed latency plus a bandwidth term. Bandwidth is a shared resource:
// the device keeps a "horizon" (the virtual time at which it next becomes
// free), so concurrent workers queue behind one another and the device
// saturates exactly as a real one does. This is what produces the paper's
// multi-threaded effects (e.g. the SSD becoming the bottleneck at 16 workers
// in Figures 6 and 7).
//
// Devices also count media-level traffic: bytes are rounded up to the media
// access granularity (64 B for DRAM, 256 B for Optane PMMs, 16 KB for the
// SSD), which is how the paper accounts for I/O amplification (Figure 11)
// and NVM wear (Figures 8 and 13).
package device

import (
	"fmt"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/vclock"
)

// Kind identifies the tier a device belongs to.
type Kind int

const (
	DRAM Kind = iota
	NVM
	SSD
)

// String returns the conventional name of the device kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	case SSD:
		return "SSD"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Params describes the performance characteristics of a device. Bandwidths
// are in bytes per nanosecond (1 GB/s == 1 byte/ns), latencies in
// nanoseconds, granularity in bytes.
type Params struct {
	Kind           Kind
	ReadLatency    int64   // latency charged once per read operation
	WriteLatency   int64   // latency charged once per write operation
	ReadBandwidth  float64 // bytes per nanosecond
	WriteBandwidth float64
	Granularity    int     // media access granularity; transfers round up to it
	PricePerGB     float64 // used by the storage-system design experiments
}

// Table 1 of the paper, converted to simulator parameters. Bandwidths use
// the random-access figures since buffer-pool traffic is random at page
// granularity; the NVM read figure is between the random (28.8 GB/s) and
// sequential (91.2 GB/s) numbers because 16 KB page copies are sequential
// within the page.
var (
	DRAMParams = Params{
		Kind: DRAM, ReadLatency: 80, WriteLatency: 80,
		ReadBandwidth: 180, WriteBandwidth: 180,
		Granularity: 64, PricePerGB: 10,
	}
	NVMParams = Params{
		Kind: NVM, ReadLatency: 320, WriteLatency: 200,
		ReadBandwidth: 30, WriteBandwidth: 8,
		Granularity: 256, PricePerGB: 4.5,
	}
	SSDParams = Params{
		Kind: SSD, ReadLatency: 12_000, WriteLatency: 12_000,
		ReadBandwidth: 2.5, WriteBandwidth: 2.4,
		Granularity: 16384, PricePerGB: 2.8,
	}
)

// Device is a simulated storage device shared by all workers.
type Device struct {
	p Params

	horizon atomic.Int64 // virtual time at which the device next becomes free

	readOps      atomic.Int64
	writeOps     atomic.Int64
	bytesRead    atomic.Int64 // media-granularity bytes
	bytesWritten atomic.Int64 // media-granularity bytes

	faults atomic.Pointer[Injector]

	// Optional per-operation latency histograms (observed in simulated
	// nanoseconds, including queueing behind the bandwidth horizon). Nil
	// unless an observability layer attached them.
	hRead  atomic.Pointer[metrics.Histogram]
	hWrite atomic.Pointer[metrics.Histogram]
}

// New creates a device with the given parameters.
func New(p Params) *Device {
	if p.Granularity <= 0 {
		p.Granularity = 1
	}
	return &Device{p: p}
}

// Params returns the device's configured parameters.
func (d *Device) Params() Params { return d.p }

// Kind returns the device's tier.
func (d *Device) Kind() Kind { return d.p.Kind }

func (d *Device) roundUp(n int) int64 {
	g := int64(d.p.Granularity)
	return (int64(n) + g - 1) / g * g
}

// occupy reserves the device for busy nanoseconds starting no earlier than
// the worker's current virtual time, and returns the completion time of the
// transfer. This is a conservative single-queue model: requests are serviced
// in the order workers issue them. The horizon advances by lock-free CAS —
// a mutex here would put one lock hand-off per simulated transfer on every
// worker's commit path, serializing the real machine where only the modeled
// device should serialize.
func (d *Device) occupy(now, busy int64) int64 {
	for {
		h := d.horizon.Load()
		start := h
		if now > start {
			start = now
		}
		end := start + busy
		if d.horizon.CompareAndSwap(h, end) {
			return end
		}
	}
}

// Read charges a read of n bytes to the worker's clock and returns the
// media-level bytes transferred.
func (d *Device) Read(c *vclock.Clock, n int) int64 {
	media := d.roundUp(n)
	busy := int64(float64(media) / d.p.ReadBandwidth)
	start := c.Now()
	end := d.occupy(start, busy)
	c.AdvanceTo(end + d.p.ReadLatency)
	d.readOps.Add(1)
	d.bytesRead.Add(media)
	if h := d.hRead.Load(); h != nil {
		h.Observe(c.Now() - start)
	}
	return media
}

// Write charges a write of n bytes to the worker's clock and returns the
// media-level bytes transferred.
func (d *Device) Write(c *vclock.Clock, n int) int64 {
	media := d.roundUp(n)
	busy := int64(float64(media) / d.p.WriteBandwidth)
	start := c.Now()
	end := d.occupy(start, busy)
	c.AdvanceTo(end + d.p.WriteLatency)
	d.writeOps.Add(1)
	d.bytesWritten.Add(media)
	if h := d.hWrite.Load(); h != nil {
		h.Observe(c.Now() - start)
	}
	return media
}

// SetLatencyHistograms attaches (or with nils detaches) per-operation
// latency histograms. Every Read/Write — including each attempt of a
// retried checked operation — observes its simulated duration: queueing
// behind the shared bandwidth horizon plus the device latency.
func (d *Device) SetLatencyHistograms(read, write *metrics.Histogram) {
	d.hRead.Store(read)
	d.hWrite.Store(write)
}

// SetFaults attaches (or, with nil, detaches) a fault injector. Only the
// checked ReadErr/WriteErr entry points consult it; the legacy Read/Write
// paths below are deliberately fault-free so pricing-only call sites (memory
// chargers, recovery cost accounting) never fail.
func (d *Device) SetFaults(in *Injector) { d.faults.Store(in) }

// Faults returns the attached fault injector, if any.
func (d *Device) Faults() *Injector { return d.faults.Load() }

// ReadErr is the checked variant of Read: it consults the attached fault
// injector (charging injected stalls to the worker's clock) before charging
// the transfer. Injected errors wrap ErrTransient, ErrPermanent or
// ErrCrashed and name the tier.
func (d *Device) ReadErr(c *vclock.Clock, n int) (int64, error) {
	if in := d.faults.Load(); in != nil {
		if err := in.beforeRead(c); err != nil {
			return 0, fmt.Errorf("%s read: %w", d.p.Kind, err)
		}
	}
	return d.Read(c, n), nil
}

// WriteErr is the checked variant of Write. A torn write (TornError in the
// chain) still charges the full transfer — the bus traffic happened — and
// the caller is responsible for applying only the torn prefix to media.
func (d *Device) WriteErr(c *vclock.Clock, n int) (int64, error) {
	if in := d.faults.Load(); in != nil {
		if err := in.beforeWrite(c); err != nil {
			if _, torn := IsTorn(err); torn {
				media := d.Write(c, n)
				return media, fmt.Errorf("%s write: %w", d.p.Kind, err)
			}
			return 0, fmt.Errorf("%s write: %w", d.p.Kind, err)
		}
	}
	return d.Write(c, n), nil
}

// Stats is a point-in-time snapshot of a device's counters.
type Stats struct {
	ReadOps, WriteOps       int64
	BytesRead, BytesWritten int64 // media-granularity bytes
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	return Stats{
		ReadOps:      d.readOps.Load(),
		WriteOps:     d.writeOps.Load(),
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
	}
}

// ResetStats zeroes the traffic counters (the bandwidth horizon is kept, as
// resetting it would let a fresh measurement interval travel back in time).
func (d *Device) ResetStats() {
	d.readOps.Store(0)
	d.writeOps.Store(0)
	d.bytesRead.Store(0)
	d.bytesWritten.Store(0)
}
