package device

import (
	"sync"
	"testing"

	"github.com/spitfire-db/spitfire/internal/vclock"
)

func TestReadChargesLatencyAndBandwidth(t *testing.T) {
	d := New(Params{Kind: SSD, ReadLatency: 10_000, WriteLatency: 10_000,
		ReadBandwidth: 2, WriteBandwidth: 2, Granularity: 16384})
	c := vclock.New()
	d.Read(c, 16384)
	// 16384 bytes at 2 B/ns = 8192 ns busy + 10000 ns latency.
	if want := int64(8192 + 10_000); c.Now() != want {
		t.Fatalf("clock after read = %d, want %d", c.Now(), want)
	}
}

func TestGranularityRounding(t *testing.T) {
	d := New(Params{Kind: NVM, ReadLatency: 0, WriteLatency: 0,
		ReadBandwidth: 1, WriteBandwidth: 1, Granularity: 256})
	c := vclock.New()
	if media := d.Read(c, 1); media != 256 {
		t.Fatalf("1-byte read transferred %d media bytes, want 256", media)
	}
	if media := d.Write(c, 257); media != 512 {
		t.Fatalf("257-byte write transferred %d media bytes, want 512", media)
	}
	st := d.Stats()
	if st.BytesRead != 256 || st.BytesWritten != 512 {
		t.Fatalf("stats = %+v, want 256 read / 512 written", st)
	}
}

func TestSharedBandwidthQueues(t *testing.T) {
	// Two workers issuing back-to-back transfers must queue behind each
	// other: the second completes no earlier than 2*busy.
	d := New(Params{Kind: SSD, ReadLatency: 0, WriteLatency: 0,
		ReadBandwidth: 1, WriteBandwidth: 1, Granularity: 1})
	c1, c2 := vclock.New(), vclock.New()
	d.Read(c1, 1000)
	d.Read(c2, 1000)
	if c1.Now() != 1000 {
		t.Fatalf("first worker at %d, want 1000", c1.Now())
	}
	if c2.Now() != 2000 {
		t.Fatalf("second worker at %d, want 2000 (queued)", c2.Now())
	}
}

func TestSaturationUnderConcurrency(t *testing.T) {
	// N workers each transfer B bytes; with bandwidth bw the max virtual
	// completion time must be at least N*B/bw (the device serializes), and
	// not wildly more.
	const workers, transfers, bytes = 8, 50, 4096
	d := New(Params{Kind: SSD, ReadLatency: 0, WriteLatency: 0,
		ReadBandwidth: 1, WriteBandwidth: 1, Granularity: 1})
	var wg sync.WaitGroup
	times := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vclock.New()
			for i := 0; i < transfers; i++ {
				d.Read(c, bytes)
			}
			times[w] = c.Now()
		}(w)
	}
	wg.Wait()
	var max int64
	for _, ts := range times {
		if ts > max {
			max = ts
		}
	}
	want := int64(workers * transfers * bytes) // total busy time at 1 B/ns
	if max < want {
		t.Fatalf("max completion %d < serialized busy time %d", max, want)
	}
	if max > want*2 {
		t.Fatalf("max completion %d implausibly larger than busy time %d", max, want)
	}
}

func TestResetStats(t *testing.T) {
	d := New(DRAMParams)
	c := vclock.New()
	d.Write(c, 100)
	d.ResetStats()
	if st := d.Stats(); st.WriteOps != 0 || st.BytesWritten != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{DRAM: "DRAM", NVM: "NVM", SSD: "SSD"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestTable1Defaults(t *testing.T) {
	// Sanity-check the calibration constants against Table 1 of the paper.
	if DRAMParams.ReadLatency != 80 || NVMParams.ReadLatency != 320 {
		t.Fatal("DRAM/NVM read latencies diverge from Table 1")
	}
	if SSDParams.Granularity != 16384 || NVMParams.Granularity != 256 || DRAMParams.Granularity != 64 {
		t.Fatal("media access granularities diverge from Table 1")
	}
	if !(DRAMParams.PricePerGB > NVMParams.PricePerGB && NVMParams.PricePerGB > SSDParams.PricePerGB) {
		t.Fatal("price ordering DRAM > NVM > SSD violated")
	}
}
