package device

import (
	"errors"
	"testing"

	"github.com/spitfire-db/spitfire/internal/vclock"
)

// drive runs n alternating checked reads/writes and records which ops failed
// and with what class, as a compact signature string.
func drive(d *Device, n int) string {
	c := vclock.New()
	sig := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		var err error
		if i%2 == 0 {
			_, err = d.ReadErr(c, 4096)
		} else {
			_, err = d.WriteErr(c, 4096)
		}
		switch {
		case err == nil:
			sig = append(sig, '.')
		case errors.Is(err, ErrTorn):
			sig = append(sig, 'T')
		case errors.Is(err, ErrTransient):
			sig = append(sig, 't')
		case errors.Is(err, ErrPermanent):
			sig = append(sig, 'P')
		case errors.Is(err, ErrCrashed):
			sig = append(sig, 'C')
		default:
			sig = append(sig, '?')
		}
	}
	return string(sig)
}

// TestInjectorDeterminism: the same seed and op order must produce the same
// fault pattern, and a different seed a different one.
func TestInjectorDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ReadErrProb: 0.1, WriteErrProb: 0.1, TornWriteProb: 0.05}
	mk := func(seed uint64) *Device {
		d := New(NVMParams)
		c := cfg
		c.Seed = seed
		d.SetFaults(NewInjector(c))
		return d
	}
	a, b := drive(mk(42), 400), drive(mk(42), 400)
	if a != b {
		t.Fatalf("same seed produced different fault sequences:\n%s\n%s", a, b)
	}
	if c := drive(mk(1000), 400); c == a {
		t.Error("different seed produced an identical fault sequence")
	}
	var fails int
	for _, ch := range a {
		if ch != '.' {
			fails++
		}
	}
	if fails == 0 {
		t.Error("no faults injected at 10% probability over 400 ops")
	}
}

// TestCrashSwitch: the armed countdown tears exactly the Nth checked write,
// trips the machine, fails everything afterwards with ErrCrashed, and Arm(0)
// reboots.
func TestCrashSwitch(t *testing.T) {
	d := New(SSDParams)
	in := NewInjector(FaultConfig{Seed: 7})
	sw := NewCrashSwitch()
	in.AttachCrash(sw)
	d.SetFaults(in)
	sw.Arm(3)

	c := vclock.New()
	for i := 0; i < 2; i++ {
		if _, err := d.WriteErr(c, 512); err != nil {
			t.Fatalf("write %d before the crash point failed: %v", i, err)
		}
	}
	_, err := d.WriteErr(c, 512)
	if err == nil {
		t.Fatal("crash-point write succeeded")
	}
	if !errors.Is(err, ErrTorn) || !errors.Is(err, ErrTransient) {
		t.Errorf("crash-point write error %v should match both ErrTorn and ErrTransient", err)
	}
	if frac, ok := IsTorn(err); !ok || frac < 0 || frac >= 1 {
		t.Errorf("IsTorn(%v) = %v, %v; want a fraction in [0,1)", err, frac, ok)
	}
	if !sw.Tripped() || !in.Crashed() {
		t.Fatal("crash switch did not trip at the crash point")
	}
	if _, err := d.WriteErr(c, 512); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write error = %v, want ErrCrashed", err)
	}
	if _, err := d.ReadErr(c, 512); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash read error = %v, want ErrCrashed", err)
	}

	sw.Arm(0) // reboot: clears the trip, leaves the switch disarmed
	if sw.Tripped() {
		t.Fatal("Arm(0) did not clear the trip")
	}
	if _, err := d.WriteErr(c, 512); err != nil {
		t.Errorf("write after reboot failed: %v", err)
	}
	if st := in.Stats(); st.TornWrites != 1 {
		t.Errorf("TornWrites = %d, want 1", st.TornWrites)
	}
}

// TestFailAfterLatch: the device fails permanently after the configured write
// budget, stays failed for reads too, and Rearm clears the latch.
func TestFailAfterLatch(t *testing.T) {
	d := New(NVMParams)
	in := NewInjector(FaultConfig{Seed: 1, FailAfterWrites: 2})
	d.SetFaults(in)
	c := vclock.New()

	for i := 0; i < 2; i++ {
		if _, err := d.WriteErr(c, 256); err != nil {
			t.Fatalf("write %d within budget failed: %v", i, err)
		}
	}
	if _, err := d.WriteErr(c, 256); !errors.Is(err, ErrPermanent) {
		t.Fatalf("write past budget error = %v, want ErrPermanent", err)
	}
	if !in.Failed() {
		t.Fatal("injector did not latch Failed")
	}
	if _, err := d.ReadErr(c, 256); !errors.Is(err, ErrPermanent) {
		t.Errorf("read on failed device error = %v, want ErrPermanent", err)
	}

	in.Rearm(FaultConfig{Seed: 1})
	if in.Failed() {
		t.Fatal("Rearm did not clear the permanent-failure latch")
	}
	if _, err := d.WriteErr(c, 256); err != nil {
		t.Errorf("write after Rearm failed: %v", err)
	}
}

// TestFailNow latches immediately without any budget.
func TestFailNow(t *testing.T) {
	d := New(NVMParams)
	in := NewInjector(FaultConfig{Seed: 1})
	d.SetFaults(in)
	in.FailNow()
	if _, err := d.WriteErr(vclock.New(), 64); !errors.Is(err, ErrPermanent) {
		t.Fatalf("write after FailNow error = %v, want ErrPermanent", err)
	}
}

// TestStallChargesClock: an injected latency spike is simulated time on the
// caller's virtual clock, not wall time.
func TestStallChargesClock(t *testing.T) {
	const stall = 123_456
	base := New(SSDParams)
	spiky := New(SSDParams)
	spiky.SetFaults(NewInjector(FaultConfig{Seed: 9, StallProb: 1, StallNs: stall}))

	cb, cs := vclock.New(), vclock.New()
	if _, err := base.ReadErr(cb, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := spiky.ReadErr(cs, 4096); err != nil {
		t.Fatal(err)
	}
	if got := cs.Now() - cb.Now(); got != stall {
		t.Errorf("stall charged %d ns to the clock, want %d", got, stall)
	}
	if st := spiky.Faults().Stats(); st.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", st.Stalls)
	}
}

// TestIsTornOnPlainError: IsTorn must not match non-torn chains.
func TestIsTornOnPlainError(t *testing.T) {
	if _, ok := IsTorn(ErrTransient); ok {
		t.Error("IsTorn matched a plain transient error")
	}
	if _, ok := IsTorn(nil); ok {
		t.Error("IsTorn matched nil")
	}
}
