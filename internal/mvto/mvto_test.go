package mvto

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

// pageSim simulates one tuple slot on a page: the in-place version.
type pageSim struct {
	wts  uint64
	data []byte
}

func (p *pageSim) readWTS() uint64 { return p.wts }

func (p *pageSim) write(txn *Txn, newData []byte) func() ([]byte, error) {
	return func() ([]byte, error) {
		before := append([]byte(nil), p.data...)
		p.data = append([]byte(nil), newData...)
		p.wts = txn.TS
		return before, nil
	}
}

func (p *pageSim) read(t *testing.T, want string) func([]byte) error {
	return func(hist []byte) error {
		got := p.data
		if hist != nil {
			got = hist
		}
		if string(got) != want {
			t.Errorf("read %q, want %q", got, want)
		}
		return nil
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	txn := m.Begin()
	if err := m.Write(txn, 1, p.readWTS, p.write(txn, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(txn, 1, p.readWTS, p.read(t, "v1")); err != nil {
		t.Fatal(err)
	}
	m.Commit(txn)
	if c, _ := m.Stats(); c != 1 {
		t.Fatalf("commits = %d", c)
	}
}

func TestOlderReaderSeesHistory(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	older := m.Begin() // ts 1
	writer := m.Begin()
	if err := m.Write(writer, 1, p.readWTS, p.write(writer, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	m.Commit(writer)
	// The page now holds v1 (wts 2); the older txn must see v0.
	if err := m.Read(older, 1, p.readWTS, p.read(t, "v0")); err != nil {
		t.Fatal(err)
	}
	// A new txn sees v1.
	newer := m.Begin()
	if err := m.Read(newer, 1, p.readWTS, p.read(t, "v1")); err != nil {
		t.Fatal(err)
	}
}

func TestReaderAbortsOnInflightOlderWriter(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	writer := m.Begin()
	reader := m.Begin() // younger
	if err := m.Write(writer, 1, p.readWTS, p.write(writer, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	err := m.Read(reader, 1, p.readWTS, p.read(t, ""))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("read against in-flight older writer: %v", err)
	}
}

func TestYoungerReaderBlocksOlderWriter(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	writer := m.Begin() // older
	reader := m.Begin() // younger
	if err := m.Read(reader, 1, p.readWTS, p.read(t, "v0")); err != nil {
		t.Fatal(err)
	}
	err := m.Write(writer, 1, p.readWTS, p.write(writer, []byte("v1")))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("write under younger read: %v", err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	t1 := m.Begin()
	t2 := m.Begin()
	if err := m.Write(t1, 1, p.readWTS, p.write(t1, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	err := m.Write(t2, 1, p.readWTS, p.write(t2, []byte("v2")))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent write allowed: %v", err)
	}
}

func TestStaleWriterAborts(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	older := m.Begin()
	newer := m.Begin()
	if err := m.Write(newer, 1, p.readWTS, p.write(newer, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	m.Commit(newer)
	err := m.Write(older, 1, p.readWTS, p.write(older, []byte("v-stale")))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale write allowed: %v", err)
	}
}

func TestAbortRestoresState(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	txn := m.Begin()
	if err := m.Write(txn, 1, p.readWTS, p.write(txn, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	undos := m.AbortStart(txn)
	if len(undos) != 1 || string(undos[0].Before) != "v0" {
		t.Fatalf("undo set = %+v", undos)
	}
	// Engine restores.
	p.data = append([]byte(nil), undos[0].Before...)
	p.wts = undos[0].BeforeWTS
	m.AbortFinish(txn)

	// A fresh txn can now write again.
	fresh := m.Begin()
	if err := m.Write(fresh, 1, p.readWTS, p.write(fresh, []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(fresh, 1, p.readWTS, p.read(t, "v2")); err != nil {
		t.Fatal(err)
	}
	if txn.State() != TxnAborted {
		t.Fatal("aborted txn state wrong")
	}
}

func TestDoubleWriteSameTupleKeepsFirstImage(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	txn := m.Begin()
	if err := m.Write(txn, 1, p.readWTS, p.write(txn, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(txn, 1, p.readWTS, p.write(txn, []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	undos := m.AbortStart(txn)
	if len(undos) != 1 || string(undos[0].Before) != "v0" {
		t.Fatalf("rollback image = %+v, want the pre-transaction v0", undos)
	}
}

func TestGCDropsInvisibleVersions(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	for i := 1; i <= 5; i++ {
		txn := m.Begin()
		if err := m.Write(txn, 1, p.readWTS, p.write(txn, []byte{byte('0' + i)})); err != nil {
			t.Fatal(err)
		}
		m.Commit(txn)
	}
	// No active transactions: only the newest history entry can matter.
	dropped := m.GC()
	if dropped == 0 {
		t.Fatal("GC dropped nothing despite a 5-deep chain")
	}
	e := m.metaFor(1)
	depth := 0
	for v := e.history; v != nil; v = v.prev {
		depth++
	}
	if depth > 1 {
		t.Fatalf("chain depth %d after GC", depth)
	}
}

func TestGCPreservesVisibleVersions(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: []byte("v0")}
	older := m.Begin() // stays active; must keep seeing v0
	for i := 0; i < 3; i++ {
		txn := m.Begin()
		if err := m.Write(txn, 1, p.readWTS, p.write(txn, []byte("new"))); err != nil {
			t.Fatal(err)
		}
		m.Commit(txn)
	}
	m.GC()
	if err := m.Read(older, 1, p.readWTS, p.read(t, "v0")); err != nil {
		t.Fatalf("GC destroyed a visible version: %v", err)
	}
}

func TestConcurrentDisjointTuples(t *testing.T) {
	m := NewManager()
	const workers = 8
	pages := make([]*pageSim, workers)
	for i := range pages {
		pages[i] = &pageSim{data: []byte("v0")}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := pages[w]
			for i := 0; i < 500; i++ {
				txn := m.Begin()
				if err := m.Write(txn, uint64(w), p.readWTS, p.write(txn, []byte("vX"))); err != nil {
					m.AbortFinish(txn)
					continue
				}
				m.Commit(txn)
			}
		}(w)
	}
	wg.Wait()
	commits, _ := m.Stats()
	if commits != workers*500 {
		t.Fatalf("commits = %d, want %d (disjoint tuples never conflict)", commits, workers*500)
	}
}

func TestConcurrentSameTupleSerializes(t *testing.T) {
	m := NewManager()
	p := &pageSim{data: make([]byte, 8)}
	var mu sync.Mutex // guards the apply counter; mvto serializes page access
	applied := uint64(0)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				txn := m.Begin()
				err := m.Write(txn, 7, p.readWTS, func() ([]byte, error) {
					before := append([]byte(nil), p.data...)
					v := binary.LittleEndian.Uint64(p.data)
					binary.LittleEndian.PutUint64(p.data, v+1)
					p.wts = txn.TS
					mu.Lock()
					applied++
					mu.Unlock()
					return before, nil
				})
				if err != nil {
					m.AbortFinish(txn)
					continue
				}
				m.Commit(txn)
			}
		}()
	}
	wg.Wait()
	commits, aborts := m.Stats()
	if commits == 0 {
		t.Fatal("no transaction ever committed under contention")
	}
	got := binary.LittleEndian.Uint64(p.data)
	if uint64(commits) != got {
		t.Fatalf("page counter %d != commits %d (lost or phantom update)", got, commits)
	}
	mu.Lock()
	a := applied
	mu.Unlock()
	if a != uint64(commits) {
		t.Fatalf("applies %d != commits %d", a, commits)
	}
	t.Logf("commits=%d aborts=%d", commits, aborts)
}
