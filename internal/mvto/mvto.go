// Package mvto implements multi-version timestamp-ordering concurrency
// control (Wu et al., "An Empirical Evaluation of In-Memory Multi-Version
// Concurrency Control"), the protocol Spitfire uses for transactions
// (§5.2 of the paper).
//
// Every transaction receives a start timestamp. The latest version of each
// tuple lives *in place* on its buffer-managed page (whose tuple header
// carries the version's write timestamp); older versions live in a
// DRAM-resident version store, like a rollback segment. This keeps reads
// flowing through the buffer manager — which is what the paper measures —
// while giving readers a consistent snapshot.
//
// Rules (for transaction T with timestamp ts):
//
//   - read(X): the visible version is the newest one with wts ≤ ts. An
//     in-flight *older* writer forces an abort (its outcome would determine
//     what T must see; timestamp ordering does not wait). Reads record ts
//     in X's read timestamp.
//   - write(X): T aborts if X was read by a younger transaction
//     (readTS > ts), overwritten by a younger one (wts > ts), or has a
//     concurrent writer. Otherwise T installs its update in place and parks
//     the before-image in the version store for older readers and rollback.
//
// All tuple-level page access happens inside callbacks invoked under the
// tuple's latch, so visibility decisions and the reads/writes they justify
// are atomic with respect to each other.
package mvto

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/cht"
)

// ErrConflict aborts a transaction that lost a timestamp-ordering race.
// Callers roll back and retry with a fresh timestamp.
var ErrConflict = errors.New("mvto: timestamp-ordering conflict")

// TxnState tracks a transaction's lifecycle.
type TxnState int32

const (
	TxnActive TxnState = iota
	TxnCommitted
	TxnAborted
)

// Txn is a transaction handle, owned by one worker.
type Txn struct {
	TS    uint64 // start timestamp; also the write timestamp of its versions
	state atomic.Int32

	writes  []uint64 // RIDs written, in first-write order
	written map[uint64]bool
}

// State returns the transaction's current state.
func (t *Txn) State() TxnState { return TxnState(t.state.Load()) }

// Writes returns the RIDs this transaction has written.
func (t *Txn) Writes() []uint64 { return t.writes }

// version is an immutable before-image in the version store.
type version struct {
	wts  uint64
	data []byte
	prev *version // next-older version
}

// tupleMeta is the version-store entry for one tuple.
type tupleMeta struct {
	mu      sync.Mutex
	readTS  uint64 // max timestamp that has read this tuple
	writer  *Txn   // in-flight writer, if any
	history *version
}

// Manager issues timestamps and tracks tuple metadata.
type Manager struct {
	nextTS atomic.Uint64
	active *cht.Map[uint64, *Txn]
	meta   *cht.Map[uint64, *tupleMeta]

	aborts  atomic.Int64
	commits atomic.Int64
}

// NewManager creates a transaction manager.
func NewManager() *Manager {
	m := &Manager{
		active: cht.New[uint64, *Txn](cht.Uint64Hash),
		meta:   cht.New[uint64, *tupleMeta](cht.Uint64Hash),
	}
	m.nextTS.Store(1)
	return m
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	t := &Txn{TS: m.nextTS.Add(1) - 1, written: make(map[uint64]bool)}
	m.active.Put(t.TS, t)
	return t
}

func (m *Manager) metaFor(rid uint64) *tupleMeta {
	e, _ := m.meta.GetOrInsert(rid, func() *tupleMeta { return &tupleMeta{} })
	return e
}

// Read performs a visibility-checked read of tuple rid. pageWTS must read
// the tuple's in-place write timestamp; serve must perform the read —
// from the page when historyData is nil, from historyData otherwise. Both
// callbacks run under the tuple latch, so the page cannot change between
// the visibility decision and the read.
func (m *Manager) Read(txn *Txn, rid uint64, pageWTS func() uint64, serve func(historyData []byte) error) error {
	e := m.metaFor(rid)
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.writer != nil && e.writer != txn && e.writer.TS < txn.TS {
		m.aborts.Add(1)
		return fmt.Errorf("%w: tuple %d has in-flight older writer", ErrConflict, rid)
	}
	wts := pageWTS()
	if wts <= txn.TS {
		// In-place version visible. (A registered younger writer cannot
		// have applied yet, or wts would exceed txn.TS.)
		if txn.TS > e.readTS {
			e.readTS = txn.TS
		}
		return serve(nil)
	}
	// Page too new: walk history for the newest version with wts <= ts.
	for v := e.history; v != nil; v = v.prev {
		if v.wts <= txn.TS {
			if txn.TS > e.readTS {
				e.readTS = txn.TS
			}
			return serve(v.data)
		}
	}
	m.aborts.Add(1)
	return fmt.Errorf("%w: no version of tuple %d visible at ts %d", ErrConflict, rid, txn.TS)
}

// Write performs a visibility-checked in-place update of tuple rid. apply
// runs under the tuple latch and must: capture the tuple's before-image,
// write the new data (with txn.TS as the new in-place write timestamp),
// and return the before-image. The before-image is parked in the version
// store the first time txn writes rid.
func (m *Manager) Write(txn *Txn, rid uint64, pageWTS func() uint64, apply func() (before []byte, err error)) error {
	e := m.metaFor(rid)
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.writer != nil && e.writer != txn {
		m.aborts.Add(1)
		return fmt.Errorf("%w: tuple %d has concurrent writer", ErrConflict, rid)
	}
	if e.readTS > txn.TS {
		m.aborts.Add(1)
		return fmt.Errorf("%w: tuple %d read at ts %d > %d", ErrConflict, rid, e.readTS, txn.TS)
	}
	wts := pageWTS()
	if wts > txn.TS {
		m.aborts.Add(1)
		return fmt.Errorf("%w: tuple %d written at ts %d > %d", ErrConflict, rid, wts, txn.TS)
	}

	before, err := apply()
	if err != nil {
		return err
	}
	e.writer = txn
	if !txn.written[rid] {
		txn.written[rid] = true
		txn.writes = append(txn.writes, rid)
		img := append([]byte(nil), before...)
		e.history = &version{wts: wts, data: img, prev: e.history}
	}
	return nil
}

// Commit finalizes txn: its in-place versions become the committed state.
func (m *Manager) Commit(txn *Txn) {
	for _, rid := range txn.writes {
		e := m.metaFor(rid)
		e.mu.Lock()
		if e.writer == txn {
			e.writer = nil
		}
		e.mu.Unlock()
	}
	txn.state.Store(int32(TxnCommitted))
	m.active.Delete(txn.TS)
	m.commits.Add(1)
}

// Undo describes one rollback action: restore `Before` (whose write
// timestamp was BeforeWTS) as tuple RID's in-place version.
type Undo struct {
	RID       uint64
	BeforeWTS uint64
	Before    []byte
}

// AbortStart returns txn's undo actions, newest write last. The writer
// registrations stay in place, so no other transaction can observe the
// pages while the engine restores them.
func (m *Manager) AbortStart(txn *Txn) []Undo {
	undos := make([]Undo, 0, len(txn.writes))
	for _, rid := range txn.writes {
		e := m.metaFor(rid)
		e.mu.Lock()
		if e.history != nil {
			undos = append(undos, Undo{RID: rid, BeforeWTS: e.history.wts, Before: e.history.data})
		}
		e.mu.Unlock()
	}
	return undos
}

// AbortFinish pops txn's parked before-images (now restored in place by the
// engine) and releases its writer registrations.
func (m *Manager) AbortFinish(txn *Txn) {
	for _, rid := range txn.writes {
		e := m.metaFor(rid)
		e.mu.Lock()
		if e.history != nil {
			e.history = e.history.prev
		}
		if e.writer == txn {
			e.writer = nil
		}
		e.mu.Unlock()
	}
	txn.state.Store(int32(TxnAborted))
	m.active.Delete(txn.TS)
	m.aborts.Add(1)
}

// AdvanceTS ensures future timestamps exceed ts. Recovery calls it with the
// largest write timestamp found on any page, so post-recovery transactions
// order correctly after pre-crash ones.
func (m *Manager) AdvanceTS(ts uint64) {
	for {
		cur := m.nextTS.Load()
		if cur > ts {
			return
		}
		if m.nextTS.CompareAndSwap(cur, ts+1) {
			return
		}
	}
}

// MinActiveTS returns the smallest timestamp among active transactions, or
// the next timestamp if none are active.
func (m *Manager) MinActiveTS() uint64 {
	min := m.nextTS.Load()
	m.active.Range(func(ts uint64, _ *Txn) bool {
		if ts < min {
			min = ts
		}
		return true
	})
	return min
}

// GC prunes version history no active (or future) transaction can see:
// in each chain, everything older than the newest version with
// wts < MinActiveTS is unreachable. Returns the number of versions dropped.
func (m *Manager) GC() int {
	minTS := m.MinActiveTS()
	dropped := 0
	m.meta.Range(func(_ uint64, e *tupleMeta) bool {
		e.mu.Lock()
		for v := e.history; v != nil; v = v.prev {
			if v.wts < minTS {
				for cut := v.prev; cut != nil; cut = cut.prev {
					dropped++
				}
				v.prev = nil
				break
			}
		}
		e.mu.Unlock()
		return true
	})
	return dropped
}

// Stats reports commit and abort counts.
func (m *Manager) Stats() (commits, aborts int64) {
	return m.commits.Load(), m.aborts.Load()
}
