package admission

import (
	"sync"
	"testing"
)

func TestSecondChanceAdmission(t *testing.T) {
	q := New(4)
	if q.Admit(1) {
		t.Fatal("first sighting admitted")
	}
	if !q.Contains(1) {
		t.Fatal("denied page not remembered")
	}
	if !q.Admit(1) {
		t.Fatal("second sighting not admitted")
	}
	if q.Contains(1) {
		t.Fatal("admitted page still queued")
	}
	// Third sighting starts over.
	if q.Admit(1) {
		t.Fatal("third sighting admitted without a fresh denial")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	q := New(2)
	q.Admit(1) // queue: [1]
	q.Admit(2) // queue: [1 2]
	q.Admit(3) // queue: [2 3], 1 evicted
	if q.Contains(1) {
		t.Fatal("oldest entry not evicted at capacity")
	}
	if !q.Contains(2) || !q.Contains(3) {
		t.Fatal("newer entries lost")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	// 1 was forgotten, so it is denied again.
	if q.Admit(1) {
		t.Fatal("evicted page admitted on re-sighting")
	}
}

func TestForget(t *testing.T) {
	q := New(4)
	q.Admit(9)
	q.Forget(9)
	if q.Contains(9) {
		t.Fatal("Forget left page queued")
	}
	q.Forget(9) // no-op on absent key
	if q.Admit(9) {
		t.Fatal("forgotten page admitted")
	}
}

func TestFIFOOrderAcrossRemovals(t *testing.T) {
	q := New(3)
	q.Admit(1)
	q.Admit(2)
	q.Admit(3)
	q.Admit(2) // removes 2 from the middle; queue: [1 3]
	q.Admit(4) // queue: [1 3 4]
	q.Admit(5) // over capacity: 1 evicted; queue: [3 4 5]
	if q.Contains(1) {
		t.Fatal("FIFO order broken: 1 should be the eviction victim")
	}
	for _, pid := range []uint64{3, 4, 5} {
		if !q.Contains(pid) {
			t.Fatalf("page %d lost", pid)
		}
	}
}

func TestMinimumCapacity(t *testing.T) {
	q := New(0)
	if q.Capacity() != 1 {
		t.Fatalf("capacity = %d, want clamped to 1", q.Capacity())
	}
	q.Admit(1)
	q.Admit(2) // evicts 1
	if !q.Admit(2) {
		t.Fatal("page 2 should be admitted on second sighting")
	}
}

func TestConcurrentAdmit(t *testing.T) {
	q := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				q.Admit(uint64(i % 64))
			}
		}(w)
	}
	wg.Wait()
	if q.Len() > 128 {
		t.Fatalf("queue overflowed capacity: %d", q.Len())
	}
}
