// Package admission implements HyMem's NVM admission queue (§1, §6.5 of the
// paper).
//
// HyMem decides NVM admission by remembering recently *denied* pages: each
// time a DRAM-evicted page is considered for the NVM buffer, the queue is
// consulted. If the page is already queued it is removed and admitted;
// otherwise it is enqueued and the page bypasses NVM (going straight to
// SSD). The effect is that only pages evicted from DRAM at least twice
// within the queue's horizon land on NVM — a second-chance filter for warm
// pages.
//
// The paper determined empirically (§6.5) that a capacity of half the number
// of NVM buffer pages works well; callers size the queue accordingly.
package admission

import "sync"

type node struct {
	pid        uint64
	prev, next *node
}

// Queue is a fixed-capacity FIFO of page identifiers with O(1) membership
// tests and removal. It is safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	capacity int
	byPID    map[uint64]*node
	head     *node // oldest
	tail     *node // newest
}

// New creates a queue that remembers up to capacity denied pages.
func New(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{
		capacity: capacity,
		byPID:    make(map[uint64]*node, capacity),
	}
}

// Capacity returns the configured capacity.
func (q *Queue) Capacity() int { return q.capacity }

// Len returns the number of queued pages.
func (q *Queue) Len() int {
	q.mu.Lock()
	n := len(q.byPID)
	q.mu.Unlock()
	return n
}

// Admit runs HyMem's admission check for pid and reports whether the page
// should be admitted to the NVM buffer. If the page was queued it is removed
// and admitted (returns true); otherwise it is enqueued — evicting the
// oldest entry if the queue is full — and denied (returns false).
func (q *Queue) Admit(pid uint64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()

	if n, ok := q.byPID[pid]; ok {
		q.remove(n)
		delete(q.byPID, pid)
		return true
	}

	if len(q.byPID) >= q.capacity {
		oldest := q.head
		q.remove(oldest)
		delete(q.byPID, oldest.pid)
	}
	n := &node{pid: pid}
	q.pushTail(n)
	q.byPID[pid] = n
	return false
}

// Contains reports whether pid is currently queued.
func (q *Queue) Contains(pid uint64) bool {
	q.mu.Lock()
	_, ok := q.byPID[pid]
	q.mu.Unlock()
	return ok
}

// Forget drops pid from the queue if present (used when a page is freed).
func (q *Queue) Forget(pid uint64) {
	q.mu.Lock()
	if n, ok := q.byPID[pid]; ok {
		q.remove(n)
		delete(q.byPID, pid)
	}
	q.mu.Unlock()
}

// remove unlinks n from the list. Caller holds q.mu.
func (q *Queue) remove(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushTail appends n as the newest entry. Caller holds q.mu.
func (q *Queue) pushTail(n *node) {
	n.prev = q.tail
	if q.tail != nil {
		q.tail.next = n
	} else {
		q.head = n
	}
	q.tail = n
}
