package harness

import (
	"strconv"
	"strings"
	"testing"

	"github.com/spitfire-db/spitfire/internal/policy"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig5", "table2", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"extra-wear", "extra-cleaner", "extra-admit"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, name := range want {
		if exps[i].Name != name {
			t.Fatalf("experiment %d is %q, want %q", i, exps[i].Name, name)
		}
		if _, ok := Lookup(name); !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

func TestTable1Static(t *testing.T) {
	tb, err := Table1(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("table1 has %d rows", len(tb.Rows))
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"DRAM", "NVM", "SSD", "256 B", "$4.5/GB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table1 missing %q:\n%s", want, out)
		}
	}
}

// TestInclusivityMonotoneInD verifies the Table 2 mechanism at small
// scale: duplication across buffers grows with the migration probability.
func TestInclusivityMonotoneInD(t *testing.T) {
	inc := func(d float64) float64 {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: 2 * MB,
			NVMBytes:  8 * MB,
			Policy:    policy.Policy{Dr: d, Dw: d, Nr: 1, Nw: 1},
			Workload:  YCSBRO,
			DBBytes:   16 * MB,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := measure(e, 4, 2000, 3000, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Inclusivity
	}
	i0, i1 := inc(0), inc(1)
	if i0 != 0 {
		t.Fatalf("D=0 inclusivity = %v, want 0 (nothing ever migrates up)", i0)
	}
	if i1 <= 0.05 {
		t.Fatalf("D=1 inclusivity = %v, want substantial duplication", i1)
	}
}

// TestNVMWritesDropWithLazyN verifies the Figure 8 mechanism: a lazy N
// policy writes far less to NVM than the eager one.
func TestNVMWritesDropWithLazyN(t *testing.T) {
	vol := func(n float64) int64 {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: 2 * MB,
			NVMBytes:  8 * MB,
			Policy:    policy.Policy{Dr: 1, Dw: 1, Nr: n, Nw: n},
			Workload:  YCSBRO,
			DBBytes:   16 * MB,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(4, 3000, 9) // cold: includes population writes
		if err != nil {
			t.Fatal(err)
		}
		return res.NVMBytesWritten
	}
	lazy, eager := vol(0.01), vol(1)
	if lazy*2 >= eager {
		t.Fatalf("lazy N wrote %d bytes vs eager %d; expected far fewer", lazy, eager)
	}
}

// TestAdaptiveImproves verifies the Figure 10 mechanism: annealing from
// the eager policy finds a better one.
func TestAdaptiveImproves(t *testing.T) {
	o := Opts{Quick: true}
	tb, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "best" {
		t.Fatalf("missing summary row: %v", last)
	}
	// The "+X% over eager" cells must not be negative for YCSB-RO.
	if strings.HasPrefix(last[2], "(+-") {
		t.Fatalf("adaptation regressed on YCSB-RO: %v", last)
	}
}

// TestFig11Shape verifies that 64 B loading units move more NVM media
// bytes than 256 B units (the I/O amplification of §6.5).
func TestFig11Shape(t *testing.T) {
	tb, err := Fig11(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("fig11 rows = %d", len(tb.Rows))
	}
	var r64, r256 float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "64":
			r64 = parseF(t, row[2])
		case "256":
			r256 = parseF(t, row[2])
		}
	}
	if r64 <= r256 {
		t.Fatalf("64 B units read %.2f MB <= 256 B units %.2f MB; amplification missing", r64, r256)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
