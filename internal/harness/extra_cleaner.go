package harness

import (
	"fmt"
	"time"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// ExtraCleaner is an extension beyond the paper: it sweeps the background
// page cleaner's watermark/batch settings on a churny write-heavy workload
// and reports, alongside throughput, how much eviction work moved off the
// foreground path (pre-cleaned frames vs foreground-evict fallbacks).
//
// Unlike the paper-shape experiments the cleaner runs on wall-clock time, so
// the simulated-throughput column is observational rather than a
// reproduction target: the cleaner's benefit is wall-clock (see
// BenchmarkFetchChurnCleaner); in virtual time it pays the same device
// traffic from a different clock. The sweep's job is to show the watermark
// protocol working: higher watermarks and bigger batches shift evictions
// from the ForegroundEvicts column into the cleaned/batches columns.
func ExtraCleaner(o Opts) (*Table, error) {
	workers := 4
	ops := o.ops(2000)

	frames := func(bytes int64) int { return int(bytes / core.PageSize) }
	dramBytes := o.sz(2.5)
	nvmBytes := o.sz(10)
	df := frames(dramBytes)

	settings := []struct {
		name string
		cc   core.CleanerConfig
	}{
		{"off (inline eviction)", core.CleanerConfig{}},
		{"defaults (low=n/8 high=n/4 batch=8)", core.CleanerConfig{Enable: true}},
		{"aggressive (low=n/4 high=n/2 batch=8)", core.CleanerConfig{
			Enable: true, LowWater: df / 4, HighWater: df / 2,
		}},
		{"big batches (defaults, batch=32)", core.CleanerConfig{
			Enable: true, BatchSize: 32,
		}},
		{"fast poll (defaults, 50µs interval)", core.CleanerConfig{
			Enable: true, Interval: 50 * time.Microsecond,
		}},
	}

	t := &Table{
		ID:     "extra-cleaner",
		Title:  "Background cleaner watermark/batch sweep on YCSB-WH (beyond the paper)",
		Header: []string{"cleaner", "kops/s", "pre-cleaned", "batches", "fg evicts", "stalls"},
	}
	for _, s := range settings {
		e, err := NewEnv(EnvConfig{
			DRAMBytes: dramBytes,
			NVMBytes:  nvmBytes,
			Policy:    policy.SpitfireLazy,
			Workload:  YCSBWH,
			DBBytes:   o.sz(40),
			Cleaner:   s.cc,
		})
		if err != nil {
			return nil, err
		}
		res, err := measure(e, workers, 1500, ops, o.seed())
		e.Close()
		if err != nil {
			return nil, err
		}
		st := res.Stats
		t.Rows = append(t.Rows, []string{
			s.name,
			kops(res.Throughput),
			fmt.Sprintf("%d", st.CleanerCleanedDRAM+st.CleanerCleanedNVM),
			fmt.Sprintf("%d", st.CleanerBatches),
			fmt.Sprintf("%d", st.ForegroundEvicts),
			fmt.Sprintf("%d", st.CleanerStalls),
		})
	}
	return t, nil
}
