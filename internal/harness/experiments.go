package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// Table is one reproduced table or figure, as rows of formatted cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header row first), for plotting the
// figures outside the terminal.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Opts tunes experiment scale. Quick shrinks database/buffer sizes and
// operation counts for tests and testing.B benchmarks; the CLI runs full
// scale by default.
type Opts struct {
	Quick bool
	// Seed offsets workload randomness (default 1).
	Seed uint64
}

func (o Opts) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// shrink divides sizes in quick mode, preserving every capacity ratio.
func (o Opts) shrink() int64 {
	if o.Quick {
		return 4
	}
	return 1
}

// sz converts "paper GB" to simulated bytes at the current scale.
func (o Opts) sz(gb float64) int64 {
	b := int64(gb * float64(MB))
	b /= o.shrink()
	if b < int64(64)*1024 {
		b = 64 * 1024
	}
	return b
}

// ops scales a per-worker operation count.
func (o Opts) ops(full int) int {
	if o.Quick {
		n := full / 8
		if n < 200 {
			n = 200
		}
		return n
	}
	return full
}

func kops(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

func mbs(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/float64(MB)) }

// measure warms an environment up and runs one measured interval. The
// requested warm-up is a floor; it is raised until the buffers can actually
// fill (see WarmupOps).
func measure(e *Env, workers, warmup, ops int, seed uint64) (PointResult, error) {
	if err := e.Warmup(workers, e.WarmupOps(workers, warmup), seed); err != nil {
		return PointResult{}, err
	}
	return e.Run(workers, ops, seed+7)
}

// ---- Table 1 ---------------------------------------------------------------

// Table1 reports the device characteristics the simulator is calibrated to.
func Table1(o Opts) (*Table, error) {
	row := func(p device.Params) []string {
		return []string{
			p.Kind.String(),
			fmt.Sprintf("%d ns", p.ReadLatency),
			fmt.Sprintf("%d ns", p.WriteLatency),
			fmt.Sprintf("%.1f GB/s", p.ReadBandwidth),
			fmt.Sprintf("%.1f GB/s", p.WriteBandwidth),
			fmt.Sprintf("%d B", p.Granularity),
			fmt.Sprintf("$%.1f/GB", p.PricePerGB),
		}
	}
	return &Table{
		ID:     "table1",
		Title:  "Device characteristics (simulator calibration)",
		Header: []string{"device", "read lat", "write lat", "read bw", "write bw", "granularity", "price"},
		Rows: [][]string{
			row(device.DRAMParams),
			row(device.NVMParams),
			row(device.SSDParams),
		},
	}, nil
}

// ---- Figure 5 ---------------------------------------------------------------

// Fig5 compares equi-cost NVM-SSD (app direct) and DRAM-SSD (memory mode)
// hierarchies while the database grows from cacheable to uncacheable
// (§6.2). Memory mode: a 140 "GB" buffer pool backed by 96 "GB" of real
// DRAM caching NVM; app direct: a 340 "GB" NVM buffer.
func Fig5(o Opts) (*Table, error) {
	sizes := []float64{5, 20, 40, 80, 140, 200, 260, 305}
	if o.Quick {
		sizes = []float64{5, 40, 140, 260}
	}
	workers := 16
	if o.Quick {
		workers = 4
	}
	workloads := []WorkloadKind{YCSBRO, YCSBBA, TPCC}

	t := &Table{
		ID:     "fig5",
		Title:  "NVM-SSD (app direct) vs DRAM-SSD (memory mode), throughput (kops/s) by DB size (paper-GB)",
		Header: []string{"workload", "system"},
	}
	for _, s := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%g", s))
	}

	for _, wl := range workloads {
		nvmRow := []string{wl.String(), "NVM-SSD"}
		memRow := []string{wl.String(), "DRAM-SSD(mem)"}
		for _, s := range sizes {
			db := o.sz(s)
			// App-direct NVM-SSD: 340 GB NVM buffer.
			e, err := NewEnv(EnvConfig{
				NVMBytes: o.sz(340),
				Policy:   policy.SpitfireEager,
				Workload: wl,
				DBBytes:  db,
			})
			if err != nil {
				return nil, err
			}
			res, err := measure(e, workers, o.ops(1200), o.ops(2500), o.seed())
			if err != nil {
				return nil, err
			}
			nvmRow = append(nvmRow, kops(res.Throughput))

			// Memory mode: 140 GB pool, 96 GB hardware DRAM cache.
			e, err = NewEnv(EnvConfig{
				DRAMBytes:      o.sz(140),
				MemoryModeDRAM: o.sz(96),
				Policy:         policy.Policy{Dr: 1, Dw: 1},
				Workload:       wl,
				DBBytes:        db,
			})
			if err != nil {
				return nil, err
			}
			res, err = measure(e, workers, o.ops(1200), o.ops(2500), o.seed())
			if err != nil {
				return nil, err
			}
			memRow = append(memRow, kops(res.Throughput))
		}
		t.Rows = append(t.Rows, nvmRow, memRow)
	}
	return t, nil
}

// ---- Table 2 / Figures 6-8 ---------------------------------------------------

// sweepProbs are the migration probabilities swept in §6.3.
var sweepProbs = []float64{0, 0.01, 0.1, 1}

// policyPoint builds the policy for a D- or N-lockstep sweep point.
func policyPoint(sweepD bool, p float64) policy.Policy {
	if sweepD {
		return policy.Policy{Dr: p, Dw: p, Nr: 1, Nw: 1}
	}
	return policy.Policy{Dr: 1, Dw: 1, Nr: p, Nw: p}
}

// runSweepPoint measures one §6.3 configuration: 12.5 GB DRAM + 50 GB NVM
// over a 100 GB database.
func runSweepPoint(o Opts, wl WorkloadKind, pol policy.Policy, workers int) (PointResult, error) {
	e, err := NewEnv(EnvConfig{
		DRAMBytes: o.sz(12.5),
		NVMBytes:  o.sz(50),
		Policy:    pol,
		Workload:  wl,
		DBBytes:   o.sz(100),
	})
	if err != nil {
		return PointResult{}, err
	}
	warm := o.ops(2500)
	meas := o.ops(5000)
	if workers == 1 {
		warm, meas = warm*4, meas*4
	}
	return measure(e, workers, warm, meas, o.seed())
}

var sweepWorkloads = []WorkloadKind{YCSBRO, YCSBBA, YCSBWH, TPCC}

// Table2 reports the inclusivity ratio of the DRAM and NVM buffers across
// lockstep D and N sweeps (§3.3, Table 2 of the paper).
func Table2(o Opts) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Inclusivity ratio of DRAM & NVM buffers",
		Header: []string{"sweep", "workload", "0", "0.01", "0.1", "1"},
	}
	for _, sweepD := range []bool{true, false} {
		name := "bypass DRAM (D)"
		if !sweepD {
			name = "bypass NVM (N)"
		}
		for _, wl := range sweepWorkloads {
			row := []string{name, wl.String()}
			for _, p := range sweepProbs {
				res, err := runSweepPoint(o, wl, policyPoint(sweepD, p), 8)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3f", res.Inclusivity))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// figSweep implements Figures 6 and 7: throughput across a lockstep
// D or N sweep for 1 and 16 workers.
func figSweep(o Opts, id, title string, sweepD bool) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"workers", "workload", "0", "0.01", "0.1", "1"},
	}
	for _, workers := range []int{1, 16} {
		for _, wl := range sweepWorkloads {
			row := []string{fmt.Sprintf("%d", workers), wl.String()}
			for _, p := range sweepProbs {
				res, err := runSweepPoint(o, wl, policyPoint(sweepD, p), workers)
				if err != nil {
					return nil, err
				}
				row = append(row, kops(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig6 sweeps the DRAM migration probabilities (Dr = Dw) with eager NVM.
func Fig6(o Opts) (*Table, error) {
	return figSweep(o, "fig6", "Bypassing DRAM: throughput (kops/s) vs D (N=1)", true)
}

// Fig7 sweeps the NVM migration probabilities (Nr = Nw) with eager DRAM.
func Fig7(o Opts) (*Table, error) {
	return figSweep(o, "fig7", "Bypassing NVM: throughput (kops/s) vs N (D=1)", false)
}

// Fig8 measures the NVM write volume across the N sweep (§6.3, NVM device
// lifetime).
func Fig8(o Opts) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "NVM write volume (paper-GB, i.e. simulated MB) vs N (D=1)",
		Header: []string{"workload", "0", "0.01", "0.1", "1"},
	}
	for _, wl := range []WorkloadKind{YCSBRO, YCSBBA, YCSBWH} {
		row := []string{wl.String()}
		for _, p := range sweepProbs {
			res, err := runSweepPoint(o, wl, policyPoint(false, p), 8)
			if err != nil {
				return nil, err
			}
			row = append(row, mbs(res.NVMBytesWritten))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 varies the DRAM:NVM capacity ratio (1:8, 1:4, 1:2) on YCSB-RO and
// sweeps D, showing that the optimal policy depends on the hierarchy
// (§6.3, "Impact of Storage Hierarchy").
func Fig9(o Opts) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "YCSB-RO throughput (kops/s) vs D across DRAM:NVM ratios (10 GB NVM)",
		Header: []string{"ratio", "DRAM", "0", "0.01", "0.1", "1"},
	}
	for _, cfg := range []struct {
		ratio string
		dram  float64
	}{{"1:8", 1.25}, {"1:4", 2.5}, {"1:2", 5}} {
		row := []string{cfg.ratio, fmt.Sprintf("%g", cfg.dram)}
		for _, p := range sweepProbs {
			e, err := NewEnv(EnvConfig{
				DRAMBytes: o.sz(cfg.dram),
				NVMBytes:  o.sz(10),
				Policy:    policyPoint(true, p),
				Workload:  YCSBRO,
				DBBytes:   o.sz(20),
			})
			if err != nil {
				return nil, err
			}
			res, err := measure(e, 8, o.ops(3000), o.ops(6000), o.seed())
			if err != nil {
				return nil, err
			}
			row = append(row, kops(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
