// Package harness builds and drives the experiments of the paper's
// evaluation (§6): it assembles a storage hierarchy (simulated devices,
// buffer manager, WAL, engine), loads a workload at the reproduction's
// 1 GB → 1 MB scale, and measures throughput in operations per *simulated*
// second. One entry point exists per table and figure; see experiments.go.
package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spitfire-db/spitfire/internal/core"
	"github.com/spitfire-db/spitfire/internal/device"
	"github.com/spitfire-db/spitfire/internal/engine"
	"github.com/spitfire-db/spitfire/internal/memmode"
	"github.com/spitfire-db/spitfire/internal/metrics"
	"github.com/spitfire-db/spitfire/internal/obs"
	"github.com/spitfire-db/spitfire/internal/pmem"
	"github.com/spitfire-db/spitfire/internal/policy"
	"github.com/spitfire-db/spitfire/internal/ssd"
	"github.com/spitfire-db/spitfire/internal/tpcc"
	"github.com/spitfire-db/spitfire/internal/vclock"
	"github.com/spitfire-db/spitfire/internal/wal"
	"github.com/spitfire-db/spitfire/internal/ycsb"
)

// MB scales the paper's GB figures to the reproduction's MB.
const MB = int64(1) << 20

// WorkloadKind selects the benchmark.
type WorkloadKind int

const (
	YCSBRO WorkloadKind = iota
	YCSBBA
	YCSBWH
	TPCC
)

// String names the workload.
func (k WorkloadKind) String() string {
	switch k {
	case YCSBRO:
		return "YCSB-RO"
	case YCSBBA:
		return "YCSB-BA"
	case YCSBWH:
		return "YCSB-WH"
	case TPCC:
		return "TPC-C"
	}
	return fmt.Sprintf("WorkloadKind(%d)", int(k))
}

func (k WorkloadKind) mix() ycsb.Mix {
	switch k {
	case YCSBRO:
		return ycsb.ReadOnly
	case YCSBBA:
		return ycsb.Balanced
	default:
		return ycsb.WriteHeavy
	}
}

// EnvConfig describes one experimental setup.
type EnvConfig struct {
	// Buffer capacities (either may be zero to disable the tier).
	DRAMBytes, NVMBytes int64
	Policy              policy.Policy

	// HyMem optimizations.
	FineGrained bool
	LoadingUnit int
	MiniPages   bool

	// MemoryModeDRAM > 0 prices the DRAM buffer as Optane memory mode: a
	// hardware DRAM cache of this size in front of NVM (§6.2). The buffer
	// *capacity* stays DRAMBytes.
	MemoryModeDRAM int64

	// Workload and database size.
	Workload WorkloadKind
	DBBytes  int64
	Theta    float64 // YCSB skew (default 0.3)

	// WAL and checkpointing. WALBuffer defaults to 1 MB; CheckpointEvery
	// flushes dirty DRAM pages after that many commits (default 20000,
	// negative disables). DisableWAL turns logging off entirely (pure
	// buffer-manager experiments). WALShards splits the NVM log buffer into
	// worker-affine append shards with group commit (default 1, the
	// single-buffer layout, so paper-shape experiments stay deterministic).
	WALBuffer       int64
	WALShards       int
	CheckpointEvery int64
	DisableWAL      bool

	// ComputeCost per tuple operation in simulated ns (default 200).
	ComputeCost int64

	// Cleaner configures the background page cleaner. Paper-shape
	// experiments leave it zero (disabled) so simulated-time results stay
	// deterministic; the extra-cleaner sweep turns it on explicitly.
	Cleaner core.CleanerConfig

	// Obs attaches the observability layer to every subsystem the Env
	// assembles (buffer manager, devices, WAL) and installs the Env as the
	// live counter/gauge source. Nil falls back to the package default set
	// with SetDefaultObs (used by the cmd binaries so experiment code needs
	// no plumbing); when both are nil, observability is off and the hot
	// paths take their nil-check fast path.
	Obs *obs.Obs
}

// Env is a loaded experimental environment.
type Env struct {
	cfg EnvConfig

	nvmDev *device.Device // shared by data arena and WAL buffer (may be nil)
	ssdDev *device.Device // shared by page store and log file
	dataPM *pmem.PMem
	walPM  *pmem.PMem
	mem    *memmode.Device

	BM *core.BufferManager
	DB *engine.DB

	ycsbW *ycsb.Workload
	tpccW *tpcc.Workload

	commits  atomic.Int64 // for checkpoint pacing
	nextCkpt atomic.Int64
	ckptMu   sync.Mutex

	// vbase is the simulated-time frontier: the maximum virtual completion
	// time any previous run's workers reached. New workers start their
	// clocks here so they never measure time that belongs to earlier
	// intervals (device bandwidth horizons are global and monotonic).
	vbase atomic.Int64
}

// NewEnv builds the hierarchy and loads the workload.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.DBBytes <= 0 {
		return nil, errors.New("harness: DBBytes must be positive")
	}
	if cfg.Theta == 0 {
		cfg.Theta = ycsb.DefaultTheta
	}
	if cfg.WALBuffer == 0 {
		cfg.WALBuffer = 1 * MB
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 20000
	}
	if cfg.Obs == nil {
		cfg.Obs = DefaultObs()
	}

	e := &Env{cfg: cfg}
	e.ssdDev = device.New(device.SSDParams)
	disk := ssd.NewMem(e.ssdDev)

	bmCfg := core.Config{
		DRAMBytes:   cfg.DRAMBytes,
		NVMBytes:    cfg.NVMBytes,
		Policy:      cfg.Policy,
		FineGrained: cfg.FineGrained,
		LoadingUnit: cfg.LoadingUnit,
		MiniPages:   cfg.MiniPages,
		SSD:         disk,
		Cleaner:     cfg.Cleaner,
	}
	if cfg.NVMBytes > 0 {
		e.nvmDev = device.New(device.NVMParams)
	}
	if cfg.NVMBytes > 0 {
		e.dataPM = pmem.New(pmem.Options{Size: cfg.NVMBytes, Device: e.nvmDev})
		bmCfg.PMem = e.dataPM
	}
	if cfg.MemoryModeDRAM > 0 {
		e.mem = memmode.New(memmode.Options{DRAMBytes: cfg.MemoryModeDRAM})
		bmCfg.DRAMCharger = memChargerAdapter{e.mem}
	}
	if o := cfg.Obs; o != nil {
		bmCfg.Obs = o
		e.ssdDev.SetLatencyHistograms(o.Hist(obs.HDevSSDRead), o.Hist(obs.HDevSSDWrite))
		if e.nvmDev != nil {
			e.nvmDev.SetLatencyHistograms(o.Hist(obs.HDevNVMRead), o.Hist(obs.HDevNVMWrite))
		}
	}
	bm, err := core.New(bmCfg)
	if err != nil {
		return nil, err
	}
	e.BM = bm

	var w *wal.Manager
	if !cfg.DisableWAL {
		walOpts := wal.Options{Store: wal.NewMemLog(e.ssdDev), Obs: cfg.Obs, Shards: cfg.WALShards}
		if cfg.NVMBytes > 0 {
			// NVM-equipped hierarchies keep the log buffer on NVM: a
			// persisted append *is* the commit (§5.2).
			e.walPM = pmem.New(pmem.Options{Size: cfg.WALBuffer, Device: e.nvmDev})
		} else {
			// Pure DRAM-SSD systems have no persistent buffer: they batch
			// log records in DRAM and group-commit to SSD (§3.2). Model
			// the buffer at DRAM cost and flush in small batches so the
			// SSD carries the commit traffic.
			dramLogDev := device.New(device.DRAMParams)
			e.walPM = pmem.New(pmem.Options{Size: cfg.WALBuffer, Device: dramLogDev})
			walOpts.FlushThreshold = 64 * 1024
		}
		walOpts.Buffer = e.walPM
		w, err = wal.New(walOpts)
		if err != nil {
			return nil, err
		}
	}
	db, err := engine.Open(engine.Options{BM: bm, WAL: w, ComputeCost: cfg.ComputeCost})
	if err != nil {
		return nil, err
	}
	e.DB = db

	switch cfg.Workload {
	case TPCC:
		warehouses := tpcc.DefaultScale.WarehousesForBytes(cfg.DBBytes)
		e.tpccW, err = tpcc.Setup(db, warehouses, tpcc.DefaultScale)
	default:
		e.ycsbW, err = ycsb.Setup(db, ycsb.RecordsForBytes(cfg.DBBytes), cfg.Theta)
	}
	if err != nil {
		return nil, err
	}
	e.nextCkpt.Store(cfg.CheckpointEvery)
	if cfg.Obs != nil {
		cfg.Obs.SetSource(e)
	}
	return e, nil
}

// memChargerAdapter prices DRAM-buffer traffic through the memory-mode
// model.
type memChargerAdapter struct{ d *memmode.Device }

func (a memChargerAdapter) ChargeRead(c *vclock.Clock, off int64, n int)  { a.d.Read(c, off, n) }
func (a memChargerAdapter) ChargeWrite(c *vclock.Clock, off int64, n int) { a.d.Write(c, off, n) }

// SetPolicy swaps the migration policy between measured points.
func (e *Env) SetPolicy(p policy.Policy) error { return e.BM.SetPolicy(p) }

// Close stops the environment's background goroutines (the page cleaners,
// when enabled). Experiments that enable the cleaner must call it so one
// point's cleaner never bleeds into the next.
func (e *Env) Close() { e.BM.Close() }

// deviceSnapshot captures traffic counters for delta measurements.
type deviceSnapshot struct {
	nvmWrites, nvmReads int64
	ssdWrites, ssdReads int64
}

func (e *Env) snapshot() deviceSnapshot {
	var s deviceSnapshot
	if e.nvmDev != nil {
		st := e.nvmDev.Stats()
		s.nvmWrites, s.nvmReads = st.BytesWritten, st.BytesRead
	}
	st := e.ssdDev.Stats()
	s.ssdWrites, s.ssdReads = st.BytesWritten, st.BytesRead
	return s
}

// PointResult is one measured data point.
type PointResult struct {
	Committed, Aborted int64
	ElapsedSec         float64 // mean per-worker simulated elapsed time
	Throughput         float64 // committed ops per simulated second
	NVMBytesWritten    int64
	NVMBytesRead       int64
	SSDBytesWritten    int64
	SSDBytesRead       int64
	Inclusivity        float64
	Stats              core.Stats

	// Per-operation latency in simulated ns (upper-bounded percentiles
	// from a power-of-two histogram). An extension beyond the paper, which
	// reports only throughput.
	LatencyMeanNs float64
	LatencyP50Ns  int64
	LatencyP99Ns  int64
}

// Run executes opsPerWorker transactions on each of `workers` goroutines
// and measures virtual-time throughput. Call Warmup first for steady-state
// numbers. The run is marked as the "measure" phase on the obs layer, so
// /snapshot.json can report its histogram window separately from warmup.
func (e *Env) Run(workers, opsPerWorker int, seed uint64) (PointResult, error) {
	if o := e.cfg.Obs; o != nil {
		o.BeginPhase("measure")
		defer o.EndPhase()
	}
	return e.run(workers, opsPerWorker, seed, true)
}

// Warmup drives the workload without measuring (the paper warms until the
// buffer pool is full), marked as the "warmup" phase on the obs layer.
func (e *Env) Warmup(workers, opsPerWorker int, seed uint64) error {
	if o := e.cfg.Obs; o != nil {
		o.BeginPhase("warmup")
		defer o.EndPhase()
	}
	_, err := e.run(workers, opsPerWorker, seed^0xFACE, false)
	return err
}

// WarmupOps sizes a warm-up so the buffers actually fill before measuring
// (the paper warms until the pool is full): roughly eight page touches per
// buffer frame, with floors and a cap that keep small and huge
// configurations reasonable. Two corrections matter:
//
//   - TPC-C transactions touch ~25 tuples each, so far fewer of them fill
//     the same buffer.
//   - A lazy Nr installs only that fraction of misses into the NVM buffer,
//     so filling it needs proportionally more operations (Nr = 0.01 would
//     otherwise leave NVM cold for the whole measurement, hiding the
//     paper's steady-state result).
//
// Returned per worker.
func (e *Env) WarmupOps(workers, requested int) int {
	frames := e.BM.DRAMFrames() + e.BM.NVMFrames()
	total := 8 * frames
	// Lazy-Nr population correction for the NVM tier.
	if nr := e.BM.Policy().Nr; nr > 0 && nr < 1 && e.BM.NVMFrames() > 0 {
		if nr < 0.02 {
			nr = 0.02
		}
		fill := int(float64(8*e.BM.NVMFrames()) / nr)
		if fill > total {
			total = fill
		}
	}
	if e.cfg.Workload == TPCC {
		total /= 16
	}
	if min := requested * workers; total < min {
		total = min
	}
	const capTotal = 1_000_000
	if total > capTotal {
		total = capTotal
	}
	per := total / workers
	if per < 1 {
		per = 1
	}
	return per
}

func (e *Env) run(workers, opsPerWorker int, seed uint64, measured bool) (PointResult, error) {
	if workers < 1 {
		return PointResult{}, errors.New("harness: need at least one worker")
	}
	before := e.snapshot()

	type workerResult struct {
		committed, aborted int64
		elapsed            int64
		err                error
	}
	results := make([]workerResult, workers)
	var lat *metrics.Histogram
	if measured {
		lat = metrics.NewHistogram()
	}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			r := &results[wi]
			wseed := seed + uint64(wi)*0x9E37
			var ctx *core.Ctx
			var op func() (bool, error)
			switch e.cfg.Workload {
			case TPCC:
				wk := e.tpccW.NewWorker(wseed)
				ctx = wk.Ctx()
				op = wk.Op
				defer func() { r.committed, r.aborted = wk.Committed, wk.Aborted }()
			default:
				wk := e.ycsbW.NewWorker(wseed)
				ctx = wk.Ctx()
				mix := e.cfg.Workload.mix()
				op = func() (bool, error) { return wk.Op(mix) }
				defer func() { r.committed, r.aborted = wk.Committed, wk.Aborted }()
			}
			// Start at the global virtual-time frontier so this interval
			// does not absorb earlier intervals' device-queue horizons.
			ctx.Clock.AdvanceTo(e.vbase.Load())
			start := ctx.Clock.Now()
			for i := 0; i < opsPerWorker; i++ {
				opStart := ctx.Clock.Now()
				ok, err := op()
				if err != nil {
					r.err = err
					return
				}
				if lat != nil {
					lat.Observe(ctx.Clock.Now() - opStart)
				}
				if ok {
					if err := e.maybeCheckpoint(ctx); err != nil {
						r.err = err
						return
					}
				}
			}
			r.elapsed = ctx.Clock.Now() - start
			for {
				cur := e.vbase.Load()
				now := ctx.Clock.Now()
				if now <= cur || e.vbase.CompareAndSwap(cur, now) {
					break
				}
			}
		}(wi)
	}
	wg.Wait()

	var out PointResult
	var sumElapsed int64
	for i := range results {
		if results[i].err != nil {
			return out, results[i].err
		}
		out.Committed += results[i].committed
		out.Aborted += results[i].aborted
		sumElapsed += results[i].elapsed
	}
	if !measured {
		return out, nil
	}
	after := e.snapshot()
	// Mean worker elapsed, not max: with fixed ops per worker, the max is
	// set by the unluckiest straggler (who, on real hardware, would simply
	// have completed fewer ops in the shared window) and carries large
	// scheduling-induced variance at small op counts.
	out.ElapsedSec = float64(sumElapsed) / float64(workers) / 1e9
	if out.ElapsedSec > 0 {
		out.Throughput = float64(out.Committed) / out.ElapsedSec
	}
	out.NVMBytesWritten = after.nvmWrites - before.nvmWrites
	out.NVMBytesRead = after.nvmReads - before.nvmReads
	out.SSDBytesWritten = after.ssdWrites - before.ssdWrites
	out.SSDBytesRead = after.ssdReads - before.ssdReads
	out.Inclusivity = e.BM.Inclusivity()
	out.Stats = e.BM.Stats()
	if lat != nil {
		out.LatencyMeanNs = lat.Mean()
		out.LatencyP50Ns = lat.Percentile(50)
		out.LatencyP99Ns = lat.Percentile(99)
	}
	return out, nil
}

// maybeCheckpoint runs the paper's background dirty-page flushing: after
// every CheckpointEvery commits, one worker flushes dirty DRAM pages so the
// log can be truncated and recovery stays bounded (§5.2). NVM-resident
// pages are never flushed. The flushing worker pays the simulated cost,
// which is how the "performance bumps ... caused by dirty page flushes"
// (§6.4) arise.
func (e *Env) maybeCheckpoint(ctx *core.Ctx) error {
	every := e.cfg.CheckpointEvery
	if every <= 0 || e.cfg.DisableWAL {
		return nil
	}
	n := e.commits.Add(1)
	if n < e.nextCkpt.Load() {
		return nil
	}
	if !e.ckptMu.TryLock() {
		return nil // another worker is already checkpointing
	}
	defer e.ckptMu.Unlock()
	if n < e.nextCkpt.Load() {
		return nil
	}
	e.nextCkpt.Add(every)
	if _, err := e.BM.FlushDirtyDRAM(ctx); err != nil {
		return fmt.Errorf("checkpoint flush: %w", err)
	}
	if e.DB.WAL() != nil {
		if err := e.DB.WAL().Flush(ctx.Clock); err != nil {
			return fmt.Errorf("checkpoint wal flush: %w", err)
		}
	}
	return nil
}
