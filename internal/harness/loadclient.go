package harness

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spitfire-db/spitfire/internal/zipf"
)

// LoadOpts configures DriveLoad, the socket-side load driver for
// spitfire-serve. Unlike the simulated-time experiment harness, this drives
// a real HTTP server over real sockets, so everything here is wall-clock.
type LoadOpts struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Clients is the number of concurrent client goroutines (default 8);
	// each sends its own X-Client-ID so the server's per-client admission
	// gates see distinct principals.
	Clients int
	// Ops is the total request budget across all clients (default 1000).
	Ops int
	// Keys is the key-space size (default 1024). ReadFrac is the fraction
	// of GETs (default 0.8; the rest are PUTs). ValueSize bounds PUT
	// payloads (default 32).
	Keys      int
	ReadFrac  float64
	ValueSize int
	// DeadlineMS, when non-zero, attaches an explicit deadline_ms to every
	// request. Seed makes the key/op sequence reproducible.
	DeadlineMS int
	Seed       uint64
}

func (o *LoadOpts) setDefaults() {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	if o.Keys <= 0 {
		o.Keys = 1024
	}
	if o.ReadFrac <= 0 || o.ReadFrac > 1 {
		o.ReadFrac = 0.8
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// LoadResult tallies one DriveLoad run by response class. The load-shedding
// contract the blackbox suite asserts: Other5xx stays zero (refusals are
// 429/503, never an uncontrolled 500) and NetErrors stays zero while the
// server is up.
type LoadResult struct {
	Ops         int64         // requests actually sent
	OK          int64         // 200/204 — accepted and completed
	NotFound    int64         // 404 — missing key (expected for random gets)
	Rejected429 int64         // admission queue full
	Busy503     int64         // shed / draining / deadline / read-only
	Conflict409 int64         // MVTO conflict after server-side retries
	Other4xx    int64         // unexpected client errors
	Other5xx    int64         // unexpected server errors (must stay 0)
	NetErrors   int64         // transport-level failures
	RetryAfter  int64         // refusals that carried a Retry-After hint
	Elapsed     time.Duration // wall time for the whole run
	MaxLatency  time.Duration // slowest single request
}

// String renders the tally as a one-line summary.
func (r LoadResult) String() string {
	return fmt.Sprintf(
		"ops=%d ok=%d notfound=%d 429=%d 503=%d 409=%d other4xx=%d other5xx=%d neterr=%d retry_after=%d elapsed=%s max_latency=%s",
		r.Ops, r.OK, r.NotFound, r.Rejected429, r.Busy503, r.Conflict409,
		r.Other4xx, r.Other5xx, r.NetErrors, r.RetryAfter,
		r.Elapsed.Round(time.Millisecond), r.MaxLatency.Round(time.Millisecond))
}

// DriveLoad fires Ops requests at a running spitfire-serve from Clients
// concurrent goroutines and tallies the response classes. It is the
// harness-side partner of internal/server's admission control: the CI smoke
// and the blackbox suite use it to prove overload turns into clean 429/503
// refusals rather than timeouts or 500s.
func DriveLoad(opts LoadOpts) LoadResult {
	opts.setDefaults()
	var res LoadResult
	var maxLat atomic.Int64
	tally := func(code int, hdr http.Header) {
		switch {
		case code == http.StatusOK || code == http.StatusNoContent:
			atomic.AddInt64(&res.OK, 1)
		case code == http.StatusNotFound:
			atomic.AddInt64(&res.NotFound, 1)
		case code == http.StatusTooManyRequests:
			atomic.AddInt64(&res.Rejected429, 1)
		case code == http.StatusServiceUnavailable:
			atomic.AddInt64(&res.Busy503, 1)
		case code == http.StatusConflict:
			atomic.AddInt64(&res.Conflict409, 1)
		case code >= 500:
			atomic.AddInt64(&res.Other5xx, 1)
		default:
			atomic.AddInt64(&res.Other4xx, 1)
		}
		if (code == 429 || code == 503) && hdr.Get("Retry-After") != "" {
			atomic.AddInt64(&res.RetryAfter, 1)
		}
	}

	perClient := opts.Ops / opts.Clients
	extra := opts.Ops % opts.Clients
	start := time.Now() //vet:allow determinism DriveLoad drives real sockets; its latencies are wall-clock by definition
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		n := perClient
		if c < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			rng := zipf.NewRand(opts.Seed + uint64(c))
			client := &http.Client{}
			id := fmt.Sprintf("loadclient-%d", c)
			val := bytes.Repeat([]byte{'a' + byte(c%26)}, opts.ValueSize)
			for i := 0; i < n; i++ {
				key := rng.Uint64n(uint64(opts.Keys))
				var req *http.Request
				var err error
				url := fmt.Sprintf("%s/kv/get?key=%d", opts.BaseURL, key)
				method := http.MethodGet
				var body io.Reader
				if rng.Float64() >= opts.ReadFrac {
					url = fmt.Sprintf("%s/kv/put?key=%d", opts.BaseURL, key)
					method = http.MethodPut
					body = bytes.NewReader(val)
				}
				if opts.DeadlineMS > 0 {
					url += fmt.Sprintf("&deadline_ms=%d", opts.DeadlineMS)
				}
				req, err = http.NewRequest(method, url, body)
				if err != nil {
					atomic.AddInt64(&res.NetErrors, 1)
					continue
				}
				req.Header.Set("X-Client-ID", id)
				atomic.AddInt64(&res.Ops, 1)
				t0 := time.Now() //vet:allow determinism DriveLoad drives real sockets; its latencies are wall-clock by definition
				resp, err := client.Do(req)
				if lat := time.Since(t0).Nanoseconds(); lat > maxLat.Load() { //vet:allow determinism DriveLoad drives real sockets; its latencies are wall-clock by definition
					maxLat.Store(lat)
				}
				if err != nil {
					atomic.AddInt64(&res.NetErrors, 1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tally(resp.StatusCode, resp.Header)
			}
		}(c, n)
	}
	wg.Wait()
	res.Elapsed = time.Since(start) //vet:allow determinism DriveLoad drives real sockets; its latencies are wall-clock by definition
	res.MaxLatency = time.Duration(maxLat.Load())
	return res
}
