package harness

import (
	"fmt"
	"strings"

	"github.com/spitfire-db/spitfire/internal/anneal"
	"github.com/spitfire-db/spitfire/internal/policy"
)

// Claim is one qualitative statement from the paper's evaluation that the
// reproduction must uphold (direction/ordering, not absolute numbers).
type Claim struct {
	ID        string
	Statement string
	Check     func(o Opts) (detail string, ok bool, err error)
}

// Verify runs every claim at quick scale and reports PASS/FAIL. Because
// short multi-worker runs carry scheduling-induced variance (real goroutine
// interleaving perturbs virtual device-queue ordering), each claim is tried
// on three seeds and passes on a majority. It returns ok=false if any claim
// fails.
func Verify(o Opts) (*Table, bool, error) {
	t := &Table{
		ID:     "verify",
		Title:  "Paper-claim verification (quick scale, best 2 of 3 seeds)",
		Header: []string{"claim", "status", "statement", "measured"},
	}
	allOK := true
	for _, c := range Claims() {
		passes := 0
		var details []string
		for trial := uint64(0); trial < 3; trial++ {
			to := o
			to.Seed = o.seed() + trial*1000003
			detail, ok, err := c.Check(to)
			if err != nil {
				return nil, false, fmt.Errorf("claim %s: %w", c.ID, err)
			}
			if ok {
				passes++
			}
			details = append(details, detail)
			if passes == 2 || passes+int(3-trial-1) < 2 {
				break // outcome decided
			}
		}
		status := "PASS"
		if passes < 2 {
			status = "FAIL"
			allOK = false
		}
		t.Rows = append(t.Rows, []string{c.ID, status, c.Statement, strings.Join(details, " | ")})
	}
	return t, allOK, nil
}

// quickPoint is a small helper: build, warm, measure.
func quickPoint(o Opts, cfg EnvConfig, workers, ops int) (PointResult, error) {
	e, err := NewEnv(cfg)
	if err != nil {
		return PointResult{}, err
	}
	return measure(e, workers, o.ops(2000), o.ops(ops), o.seed())
}

// Claims lists the checks in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "C1-fig5",
			Statement: "memory-mode DRAM-SSD competitive while cacheable (paper: wins by <=1.12x); NVM-SSD wins clearly once the DB outgrows it (§6.2)",
			Check: func(o Opts) (string, bool, error) {
				point := func(memMode bool, db float64) (float64, error) {
					cfg := EnvConfig{Workload: YCSBRO, DBBytes: o.sz(db)}
					if memMode {
						cfg.DRAMBytes = o.sz(140)
						cfg.MemoryModeDRAM = o.sz(96)
						cfg.Policy = policy.Policy{Dr: 1, Dw: 1}
					} else {
						cfg.NVMBytes = o.sz(340)
						cfg.Policy = policy.SpitfireEager
					}
					res, err := quickPoint(o, cfg, 8, 3000)
					return res.Throughput, err
				}
				memSmall, err := point(true, 20)
				if err != nil {
					return "", false, err
				}
				nvmSmall, err := point(false, 20)
				if err != nil {
					return "", false, err
				}
				memBig, err := point(true, 280)
				if err != nil {
					return "", false, err
				}
				nvmBig, err := point(false, 280)
				if err != nil {
					return "", false, err
				}
				detail := fmt.Sprintf("cacheable mem/nvm=%.2f, uncacheable nvm/mem=%.2f",
					memSmall/nvmSmall, nvmBig/memBig)
				return detail, memSmall > 0.8*nvmSmall && nvmBig > 1.5*memBig, nil
			},
		},
		{
			ID:        "C2-table2",
			Statement: "inclusivity is 0 at D=0 and grows monotonically with D (§3.3)",
			Check: func(o Opts) (string, bool, error) {
				inc := func(d float64) (float64, error) {
					res, err := runSweepPoint(o, YCSBRO, policyPoint(true, d), 8)
					return res.Inclusivity, err
				}
				i0, err := inc(0)
				if err != nil {
					return "", false, err
				}
				iLazy, err := inc(0.01)
				if err != nil {
					return "", false, err
				}
				iEager, err := inc(1)
				if err != nil {
					return "", false, err
				}
				detail := fmt.Sprintf("0 -> %.3f -> %.3f", iLazy, iEager)
				return detail, i0 == 0 && iLazy > 0 && iEager > iLazy, nil
			},
		},
		{
			ID:        "C3-fig6",
			Statement: "lazy D beats eager D=1, and D=0 trails the lazy peak (YCSB-RO, §6.3)",
			Check: func(o Opts) (string, bool, error) {
				tput := func(d float64) (float64, error) {
					res, err := runSweepPoint(o, YCSBRO, policyPoint(true, d), 8)
					return res.Throughput, err
				}
				t0, err := tput(0)
				if err != nil {
					return "", false, err
				}
				tLazy1, err := tput(0.01)
				if err != nil {
					return "", false, err
				}
				tLazy2, err := tput(0.1)
				if err != nil {
					return "", false, err
				}
				t1, err := tput(1)
				if err != nil {
					return "", false, err
				}
				peak := tLazy1
				if tLazy2 > peak {
					peak = tLazy2
				}
				detail := fmt.Sprintf("peak/eager=%.2f, D0/peak=%.2f", peak/t1, t0/peak)
				return detail, peak > t1 && t0 < peak, nil
			},
		},
		{
			ID:        "C4-fig7",
			Statement: "lazy N beats N=0 (disabled NVM shrinks the buffer 6x, §6.3)",
			Check: func(o Opts) (string, bool, error) {
				r0, err := runSweepPoint(o, YCSBRO, policyPoint(false, 0), 8)
				if err != nil {
					return "", false, err
				}
				rLazy, err := runSweepPoint(o, YCSBRO, policyPoint(false, 0.01), 8)
				if err != nil {
					return "", false, err
				}
				detail := fmt.Sprintf("lazy/N0=%.2f", rLazy.Throughput/r0.Throughput)
				return detail, rLazy.Throughput > r0.Throughput, nil
			},
		},
		{
			ID:        "C5-fig8",
			Statement: "lazy N slashes NVM writes on YCSB-RO (paper: ~92x; require >=5x, §6.3)",
			Check: func(o Opts) (string, bool, error) {
				rLazy, err := runSweepPoint(o, YCSBRO, policyPoint(false, 0.01), 8)
				if err != nil {
					return "", false, err
				}
				rEager, err := runSweepPoint(o, YCSBRO, policyPoint(false, 1), 8)
				if err != nil {
					return "", false, err
				}
				ratio := float64(rEager.NVMBytesWritten) / float64(maxi64(rLazy.NVMBytesWritten, 1))
				return fmt.Sprintf("eager/lazy=%.1fx", ratio), ratio >= 5, nil
			},
		},
		{
			ID:        "C7-fig10",
			Statement: "annealing from the eager policy improves YCSB-RO throughput (paper: +52%, require >=20%, §6.4)",
			Check: func(o Opts) (string, bool, error) {
				e, err := NewEnv(EnvConfig{
					DRAMBytes: o.sz(2.5), NVMBytes: o.sz(10),
					Policy: policy.SpitfireEager, Workload: YCSBRO, DBBytes: o.sz(20),
				})
				if err != nil {
					return "", false, err
				}
				if err := e.Warmup(1, e.WarmupOps(1, o.ops(1500)), o.seed()); err != nil {
					return "", false, err
				}
				tn := anneal.New(anneal.Options{Initial: policy.SpitfireEager,
					LockstepD: true, LockstepN: true, Seed: o.seed()})
				cand := tn.Propose()
				epochOps := o.ops(3000)
				if epochOps < 1500 {
					epochOps = 1500
				}
				first, best := 0.0, 0.0
				for ep := 0; ep < 40; ep++ {
					if err := e.SetPolicy(cand); err != nil {
						return "", false, err
					}
					res, err := e.Run(1, epochOps, o.seed()+uint64(ep)*13)
					if err != nil {
						return "", false, err
					}
					if ep == 0 {
						first = res.Throughput
					}
					if res.Throughput > best {
						best = res.Throughput
					}
					cand = tn.Observe(res.Throughput)
				}
				return fmt.Sprintf("best/first=%.2f", best/first), best >= 1.2*first, nil
			},
		},
		{
			ID:        "C8-fig11",
			Statement: "64 B loading units move more NVM media bytes than 256 B (I/O amplification, §6.5)",
			Check: func(o Opts) (string, bool, error) {
				read := func(unit int) (int64, error) {
					res, err := quickPoint(o, EnvConfig{
						DRAMBytes: o.sz(8), NVMBytes: o.sz(32),
						Policy: policy.Hymem, FineGrained: true, LoadingUnit: unit,
						Workload: YCSBRO, DBBytes: o.sz(20),
					}, 8, 4000)
					return res.NVMBytesRead, err
				}
				r64, err := read(64)
				if err != nil {
					return "", false, err
				}
				r256, err := read(256)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("64B/256B media reads = %.2fx", float64(r64)/float64(maxi64(r256, 1))), r64 > r256, nil
			},
		},
		{
			ID:        "C9-fig12",
			Statement: "the migration policy dominates: lazy without optimizations beats HyMem with all of them (§6.5)",
			Check: func(o Opts) (string, bool, error) {
				lazyPlain, err := quickPoint(o, EnvConfig{
					DRAMBytes: o.sz(8), NVMBytes: o.sz(32),
					Policy: policy.SpitfireLazy, Workload: YCSBRO, DBBytes: o.sz(20),
				}, 8, 4000)
				if err != nil {
					return "", false, err
				}
				hymemFull, err := quickPoint(o, EnvConfig{
					DRAMBytes: o.sz(8), NVMBytes: o.sz(32),
					Policy: policy.Hymem, FineGrained: true, LoadingUnit: 256, MiniPages: true,
					Workload: YCSBRO, DBBytes: o.sz(20),
				}, 8, 4000)
				if err != nil {
					return "", false, err
				}
				ratio := lazyPlain.Throughput / hymemFull.Throughput
				return fmt.Sprintf("lazy-plain/hymem-full=%.2f", ratio), ratio > 1, nil
			},
		},
		{
			ID:        "C10-fig15",
			Statement: "equi-cost NVM-SSD overtakes DRAM-SSD once the DB outgrows DRAM (§6.7)",
			Check: func(o Opts) (string, bool, error) {
				point := func(nvm bool, db float64) (float64, error) {
					cfg := EnvConfig{Workload: YCSBWH, DBBytes: o.sz(db)}
					if nvm {
						cfg.NVMBytes = o.sz(104)
						cfg.Policy = policy.SpitfireEager
					} else {
						cfg.DRAMBytes = o.sz(46)
						cfg.Policy = policy.Policy{Dr: 1, Dw: 1}
					}
					res, err := quickPoint(o, cfg, 8, 3000)
					return res.Throughput, err
				}
				dramSmall, err := point(false, 5)
				if err != nil {
					return "", false, err
				}
				nvmSmall, err := point(true, 5)
				if err != nil {
					return "", false, err
				}
				dramBig, err := point(false, 140)
				if err != nil {
					return "", false, err
				}
				nvmBig, err := point(true, 140)
				if err != nil {
					return "", false, err
				}
				detail := fmt.Sprintf("small dram/nvm=%.2f, big nvm/dram=%.2f",
					dramSmall/nvmSmall, nvmBig/dramBig)
				return detail, nvmBig > dramBig && dramSmall > nvmSmall*0.8, nil
			},
		},
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
